module ntga

go 1.22
