package query

import "fmt"

// JoinOrder returns the star visit order behind a join sequence: the first
// join's left star, then each join's right star. For a query with a single
// star it is [0].
func JoinOrder(joins []Join, nStars int) []int {
	if nStars <= 1 {
		return []int{0}
	}
	order := make([]int, 0, nStars)
	if len(joins) > 0 {
		order = append(order, joins[0].Left.Star)
	}
	for _, j := range joins {
		order = append(order, j.Right.Star)
	}
	return order
}

// JoinsForOrder derives the inter-star join sequence that folds the query's
// stars in the given visit order. order must be a permutation of the star
// indices; order[0] seeds the plan, and every later star must connect to
// the already-visited set through exactly one shared variable (the same
// acyclicity constraint the default compile-time order enforces). The
// returned joins are independent of q.Joins — assign them to reorder the
// query's execution plan.
func (q *Query) JoinsForOrder(order []int) ([]Join, error) {
	if len(order) != len(q.Stars) {
		return nil, fmt.Errorf("query: order names %d stars, query has %d", len(order), len(q.Stars))
	}
	seen := make(map[int]bool, len(order))
	for _, s := range order {
		if s < 0 || s >= len(q.Stars) || seen[s] {
			return nil, fmt.Errorf("query: order %v is not a permutation of the star indices", order)
		}
		seen[s] = true
	}
	if len(q.Stars) <= 1 {
		return nil, nil
	}
	uses := q.varUses()
	shared := sharedJoinVars(uses)
	visited := map[int]bool{order[0]: true}
	joins := make([]Join, 0, len(order)-1)
	for _, next := range order[1:] {
		j, ok, err := foldJoin(uses, shared, visited, next)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("query: order %v folds star %d before any star it shares a variable with", order, next)
		}
		joins = append(joins, j)
		visited[next] = true
	}
	return joins, nil
}
