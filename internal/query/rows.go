package query

import (
	"fmt"
	"sort"
	"strings"

	"ntga/internal/rdf"
)

// Row is one result binding: Row[i] is the ID bound to Query.AllVars[i].
// Basic graph patterns always bind every variable, so NoID never appears in
// a complete row.
type Row []rdf.ID

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Less orders rows lexicographically.
func (r Row) Less(o Row) bool {
	n := len(r)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if r[i] != o[i] {
			return r[i] < o[i]
		}
	}
	return len(r) < len(o)
}

// Equal reports element-wise equality.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// SortRows orders rows lexicographically in place.
func SortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Less(rows[j]) })
}

// CanonicalRows returns a sorted copy, with exact duplicates removed when
// distinct is set — the canonical form used to compare engine outputs.
func CanonicalRows(rows []Row, distinct bool) []Row {
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = r.Clone()
	}
	SortRows(out)
	if !distinct {
		return out
	}
	dedup := out[:0]
	for i, r := range out {
		if i > 0 && r.Equal(out[i-1]) {
			continue
		}
		dedup = append(dedup, r)
	}
	return dedup
}

// RowsEqual compares two row multisets (order-insensitive).
func RowsEqual(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	ca := CanonicalRows(a, false)
	cb := CanonicalRows(b, false)
	for i := range ca {
		if !ca[i].Equal(cb[i]) {
			return false
		}
	}
	return true
}

// DiffRows returns a short human-readable description of the first
// differences between two canonicalized row multisets (for test failures).
func DiffRows(a, b []Row, limit int) string {
	ca := CanonicalRows(a, false)
	cb := CanonicalRows(b, false)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d vs %d rows", len(ca), len(cb))
	i, j, shown := 0, 0, 0
	for (i < len(ca) || j < len(cb)) && shown < limit {
		switch {
		case j >= len(cb) || (i < len(ca) && ca[i].Less(cb[j])):
			fmt.Fprintf(&sb, "\n  only in A: %v", ca[i])
			i++
			shown++
		case i >= len(ca) || cb[j].Less(ca[i]):
			fmt.Fprintf(&sb, "\n  only in B: %v", cb[j])
			j++
			shown++
		default:
			i++
			j++
		}
	}
	return sb.String()
}

// Project reduces a full row to the query's selected variables.
func (q *Query) Project(r Row) Row {
	out := make(Row, len(q.Select))
	for i, v := range q.Select {
		out[i] = r[q.VarIdx[v]]
	}
	return out
}

// ProjectAll projects every row and applies DISTINCT if the query asks
// for it.
func (q *Query) ProjectAll(rows []Row) []Row {
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = q.Project(r)
	}
	if q.Distinct {
		out = CanonicalRows(out, true)
	}
	return out
}

// FormatRow renders a projected row with decoded terms, for display.
func (q *Query) FormatRow(r Row) string {
	parts := make([]string, len(r))
	for i, id := range r {
		if id == rdf.NoID {
			parts[i] = "_"
			continue
		}
		parts[i] = q.Dict.Decode(id).String()
	}
	return strings.Join(parts, "\t")
}
