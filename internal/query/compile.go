package query

import (
	"fmt"

	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

// Compile resolves a parsed query against a dataset dictionary, decomposes
// it into star subpatterns, pushes filters down to term predicates, and
// derives the left-deep inter-star join plan.
//
// Supported shape (covers the paper's full query catalog): acyclic
// conjunctive graph patterns whose inter-star connections are equi-joins on
// shared variables; each object variable appears at most once per star;
// property variables appear in exactly one pattern.
func Compile(src *sparql.Query, dict *rdf.Dict) (*Query, error) {
	q := &Query{
		Src:      src,
		Dict:     dict,
		VarIdx:   make(map[string]int),
		Distinct: src.Distinct,
	}
	q.AllVars = src.Vars()
	for i, v := range q.AllVars {
		q.VarIdx[v] = i
	}
	q.Select = src.Select
	if len(q.Select) == 0 {
		q.Select = q.AllVars
	}

	if err := q.buildStars(); err != nil {
		return nil, err
	}
	if err := q.validateVarUse(); err != nil {
		return nil, err
	}
	if err := q.buildJoins(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustCompile is Compile for statically-known queries; it panics on error.
func MustCompile(src *sparql.Query, dict *rdf.Dict) *Query {
	q, err := Compile(src, dict)
	if err != nil {
		panic(err)
	}
	return q
}

func subjectKey(t sparql.PatternTerm) string {
	if t.IsVar {
		return "v:" + t.Var
	}
	return "c:" + t.Term.Key()
}

func (q *Query) buildStars() error {
	src := q.Src
	starOf := make(map[string]*Star)
	for pi, tp := range src.Where {
		key := subjectKey(tp.S)
		st, ok := starOf[key]
		if !ok {
			subjPred, err := compilePred(q.Dict, tp.S, src.Filters)
			if err != nil {
				return err
			}
			st = &Star{Index: len(q.Stars), Subj: subjPred}
			if tp.S.IsVar {
				st.SubjVar = tp.S.Var
			}
			starOf[key] = st
			q.Stars = append(q.Stars, st)
		}
		objPred, err := compilePred(q.Dict, tp.O, src.Filters)
		if err != nil {
			return err
		}
		oVar := ""
		if tp.O.IsVar {
			oVar = tp.O.Var
		}
		if tp.P.IsVar {
			propPred, err := compilePred(q.Dict, tp.P, src.Filters)
			if err != nil {
				return err
			}
			st.Slots = append(st.Slots, UnboundSlot{
				PVar: tp.P.Var, Prop: propPred, OVar: oVar, Obj: objPred, PatIdx: pi,
			})
		} else {
			prop, _ := q.Dict.Lookup(tp.P.Term) // NoID marks a property absent from the data
			st.Bound = append(st.Bound, BoundPattern{
				Prop: prop, OVar: oVar, Obj: objPred, PatIdx: pi,
			})
		}
	}
	return nil
}

// varUse tracks every structural position a variable occupies.
type varUse struct {
	subjectOf []int // star indices where it is the subject
	objectAt  []Pos // object positions
	propAt    []Pos // property (unbound-slot) positions; Idx is the slot
}

func (q *Query) varUses() map[string]*varUse {
	uses := make(map[string]*varUse)
	get := func(v string) *varUse {
		u, ok := uses[v]
		if !ok {
			u = &varUse{}
			uses[v] = u
		}
		return u
	}
	for _, st := range q.Stars {
		if st.SubjVar != "" {
			get(st.SubjVar).subjectOf = append(get(st.SubjVar).subjectOf, st.Index)
		}
		for bi, b := range st.Bound {
			if b.OVar != "" {
				get(b.OVar).objectAt = append(get(b.OVar).objectAt,
					Pos{Star: st.Index, Role: RoleBoundObj, Idx: bi})
			}
		}
		for si, sl := range st.Slots {
			get(sl.PVar).propAt = append(get(sl.PVar).propAt,
				Pos{Star: st.Index, Role: RoleSlotObj /* placeholder role */, Idx: si})
			if sl.OVar != "" {
				get(sl.OVar).objectAt = append(get(sl.OVar).objectAt,
					Pos{Star: st.Index, Role: RoleSlotObj, Idx: si})
			}
		}
	}
	return uses
}

func (q *Query) validateVarUse() error {
	for v, u := range q.varUses() {
		if len(u.propAt) > 1 {
			return fmt.Errorf("query: property variable ?%s used in %d patterns (unsupported)", v, len(u.propAt))
		}
		if len(u.propAt) == 1 && (len(u.subjectOf) > 0 || len(u.objectAt) > 0) {
			return fmt.Errorf("query: property variable ?%s also used in subject/object position (unsupported)", v)
		}
		// One object occurrence per star.
		perStar := make(map[int]int)
		for _, p := range u.objectAt {
			perStar[p.Star]++
			if perStar[p.Star] > 1 {
				return fmt.Errorf("query: variable ?%s used as object twice in star %d (unsupported)", v, p.Star)
			}
		}
		// Subject-of and object-in the same star is a self-loop.
		for _, si := range u.subjectOf {
			if perStar[si] > 0 {
				return fmt.Errorf("query: variable ?%s used as both subject and object of star %d (unsupported)", v, si)
			}
		}
	}
	return nil
}

// positions returns every joinable position of a variable.
func positionsOf(u *varUse) []Pos {
	var out []Pos
	for _, si := range u.subjectOf {
		out = append(out, Pos{Star: si, Role: RoleSubject})
	}
	out = append(out, u.objectAt...)
	return out
}

// sharedJoinVars maps star pairs {a,b} (a<b) to the variables connecting
// them (property variables excluded — they never join).
func sharedJoinVars(uses map[string]*varUse) map[[2]int][]string {
	shared := make(map[[2]int][]string)
	addShared := func(a, b int, v string) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		for _, existing := range shared[key] {
			if existing == v {
				return
			}
		}
		shared[key] = append(shared[key], v)
	}
	for v, u := range uses {
		if len(u.propAt) > 0 {
			continue
		}
		pos := positionsOf(u)
		for i := 0; i < len(pos); i++ {
			for j := i + 1; j < len(pos); j++ {
				addShared(pos[i].Star, pos[j].Star, v)
			}
		}
	}
	return shared
}

// foldJoin derives the join that folds star next into the visited set, or
// ok=false when they share no variable. It errors on multi-variable
// connections (cyclic join graphs).
func foldJoin(uses map[string]*varUse, shared map[[2]int][]string, visited map[int]bool, next int) (Join, bool, error) {
	var connVars []string
	leftStarFor := make(map[string]int)
	for vs := range visited {
		a, b := vs, next
		if a > b {
			a, b = b, a
		}
		for _, v := range shared[[2]int{a, b}] {
			if _, seen := leftStarFor[v]; !seen {
				connVars = append(connVars, v)
				leftStarFor[v] = vs
			} else if leftStarFor[v] > vs {
				leftStarFor[v] = vs
			}
		}
	}
	if len(connVars) == 0 {
		return Join{}, false, nil
	}
	if len(connVars) > 1 {
		return Join{}, false, fmt.Errorf("query: star %d connects to the plan via %d variables (cyclic join graphs unsupported)",
			next, len(connVars))
	}
	v := connVars[0]
	left, err := findPos(uses[v], leftStarFor[v], visited)
	if err != nil {
		return Join{}, false, err
	}
	right, err := findPosInStar(uses[v], next)
	if err != nil {
		return Join{}, false, err
	}
	return Join{Var: v, Left: left, Right: right}, true, nil
}

func (q *Query) buildJoins() error {
	if len(q.Stars) == 1 {
		return nil
	}
	uses := q.varUses()
	shared := sharedJoinVars(uses)

	visited := map[int]bool{0: true}
	joinedOn := make(map[int]string) // star -> var it was folded in on
	for len(visited) < len(q.Stars) {
		progressed := false
		for next := 1; next < len(q.Stars); next++ {
			if visited[next] {
				continue
			}
			j, ok, err := foldJoin(uses, shared, visited, next)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			q.Joins = append(q.Joins, j)
			visited[next] = true
			joinedOn[next] = j.Var
			progressed = true
		}
		if !progressed {
			return fmt.Errorf("query: join graph is disconnected (cartesian products unsupported)")
		}
	}
	return nil
}

// findPos returns the position of the variable in the preferred star, or in
// any visited star.
func findPos(u *varUse, preferred int, visited map[int]bool) (Pos, error) {
	if p, err := findPosInStar(u, preferred); err == nil {
		return p, nil
	}
	for _, p := range positionsOf(u) {
		if visited[p.Star] {
			return p, nil
		}
	}
	return Pos{}, fmt.Errorf("query: internal error: no visited position for join variable")
}

func findPosInStar(u *varUse, star int) (Pos, error) {
	for _, p := range positionsOf(u) {
		if p.Star == star {
			return p, nil
		}
	}
	return Pos{}, fmt.Errorf("query: internal error: variable not in star %d", star)
}
