// Package query compiles a parsed SPARQL query against a dataset dictionary
// into the logical form shared by every execution engine: star subpatterns
// (grouped by subject), bound patterns vs unbound-property slots, pushed-down
// term predicates, and the inter-star join graph.
package query

import (
	"fmt"
	"sort"
	"strings"

	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

// Pred is a compiled predicate over dictionary IDs: the conjunction of an
// optional equality, a set of exclusions, and an optional membership set
// (from CONTAINS filters, precomputed against the dictionary).
type Pred struct {
	// None, when set, makes the predicate unsatisfiable (e.g. an equality
	// filter against a term absent from the dataset).
	None bool
	// Eq, when non-zero, requires the ID to equal it.
	Eq rdf.ID
	// Neq lists excluded IDs.
	Neq []rdf.ID
	// In, when non-nil, requires membership.
	In map[rdf.ID]struct{}
}

// Any reports whether the predicate accepts every ID.
func (p Pred) Any() bool {
	return !p.None && p.Eq == rdf.NoID && len(p.Neq) == 0 && p.In == nil
}

// Exact reports whether the predicate pins the position to a single ID
// (a constant term or an equality filter), returning that ID.
func (p Pred) Exact() (rdf.ID, bool) {
	if p.None || p.Eq == rdf.NoID {
		return rdf.NoID, false
	}
	return p.Eq, true
}

// Selective reports whether the predicate restricts the position at all —
// the paper's "partially bound" notion (a filter or constant narrows the
// matches of an unbound-property pattern's object).
func (p Pred) Selective() bool { return !p.Any() }

// Match evaluates the predicate.
func (p Pred) Match(id rdf.ID) bool {
	if p.None {
		return false
	}
	if p.Eq != rdf.NoID && id != p.Eq {
		return false
	}
	for _, n := range p.Neq {
		if id == n {
			return false
		}
	}
	if p.In != nil {
		if _, ok := p.In[id]; !ok {
			return false
		}
	}
	return true
}

func (p Pred) String() string {
	if p.None {
		return "⊥"
	}
	var parts []string
	if p.Eq != rdf.NoID {
		parts = append(parts, fmt.Sprintf("=%d", p.Eq))
	}
	for _, n := range p.Neq {
		parts = append(parts, fmt.Sprintf("≠%d", n))
	}
	if p.In != nil {
		ids := make([]int, 0, len(p.In))
		for id := range p.In {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		strs := make([]string, len(ids))
		for i, id := range ids {
			strs[i] = fmt.Sprint(id)
		}
		parts = append(parts, "∈{"+strings.Join(strs, ",")+"}")
	}
	if len(parts) == 0 {
		return "*"
	}
	return strings.Join(parts, "∧")
}

// compilePred folds a constant term (if the position is not a variable) and
// all filters on the position's variable into one Pred.
func compilePred(dict *rdf.Dict, pos sparql.PatternTerm, filters []sparql.Filter) (Pred, error) {
	var p Pred
	if !pos.IsVar {
		id, ok := dict.Lookup(pos.Term)
		if !ok {
			return Pred{None: true}, nil
		}
		p.Eq = id
		return p, nil
	}
	for _, f := range filters {
		if f.Var != pos.Var {
			continue
		}
		switch f.Op {
		case sparql.FilterEq:
			id, ok := dict.Lookup(f.Value)
			if !ok {
				return Pred{None: true}, nil
			}
			if p.Eq != rdf.NoID && p.Eq != id {
				return Pred{None: true}, nil
			}
			p.Eq = id
		case sparql.FilterNeq:
			if id, ok := dict.Lookup(f.Value); ok {
				p.Neq = append(p.Neq, id)
			}
		case sparql.FilterContains:
			sub := f.Value.Value
			in := make(map[rdf.ID]struct{})
			dict.Range(func(id rdf.ID, t rdf.Term) bool {
				if strings.Contains(t.Value, sub) {
					in[id] = struct{}{}
				}
				return true
			})
			if p.In == nil {
				p.In = in
			} else {
				for id := range p.In {
					if _, ok := in[id]; !ok {
						delete(p.In, id)
					}
				}
			}
		default:
			return Pred{}, fmt.Errorf("query: unsupported filter op %v", f.Op)
		}
	}
	return p, nil
}
