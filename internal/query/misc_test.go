package query

import (
	"strings"
	"testing"

	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

func TestMustCompile(t *testing.T) {
	g := testGraph()
	q := MustCompile(sparql.MustParse(`SELECT * WHERE { ?s ?p ?o . }`), g.Dict)
	if len(q.Stars) != 1 {
		t.Errorf("stars = %d", len(q.Stars))
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompile on unsupported shape did not panic")
		}
	}()
	MustCompile(sparql.MustParse(
		`SELECT * WHERE { ?a <http://ex/label> ?x . ?b <http://ex/type> ?y . }`), g.Dict)
}

func TestIsCount(t *testing.T) {
	g := testGraph()
	q := MustCompile(sparql.MustParse(`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }`), g.Dict)
	if !q.IsCount() {
		t.Error("count query not flagged")
	}
	q = MustCompile(sparql.MustParse(`SELECT * WHERE { ?s ?p ?o . }`), g.Dict)
	if q.IsCount() {
		t.Error("plain query flagged as count")
	}
}

func TestProjectAllDistinct(t *testing.T) {
	g := testGraph()
	q := MustCompile(sparql.MustParse(`
PREFIX ex: <http://ex/>
SELECT DISTINCT ?g WHERE { ?g ex:xGO ?go . }`), g.Dict)
	rows := []Row{{1, 10}, {1, 20}, {2, 10}}
	proj := q.ProjectAll(rows)
	if len(proj) != 2 {
		t.Errorf("distinct projection = %v", proj)
	}
	// Without DISTINCT, duplicates survive projection.
	q2 := MustCompile(sparql.MustParse(`
PREFIX ex: <http://ex/>
SELECT ?g WHERE { ?g ex:xGO ?go . }`), g.Dict)
	if got := q2.ProjectAll(rows); len(got) != 3 {
		t.Errorf("plain projection = %v", got)
	}
}

func TestFormatRow(t *testing.T) {
	g := testGraph()
	q := MustCompile(sparql.MustParse(`
PREFIX ex: <http://ex/>
SELECT ?g ?l WHERE { ?g ex:label ?l . }`), g.Dict)
	gene := g.Dict.MustLookup(rdf.NewIRI("http://ex/gene9"))
	lit := g.Dict.MustLookup(rdf.NewLiteral("retinoid X receptor"))
	out := q.FormatRow(Row{gene, lit})
	if !strings.Contains(out, "gene9") || !strings.Contains(out, "retinoid") {
		t.Errorf("FormatRow = %q", out)
	}
	if got := q.FormatRow(Row{rdf.NoID}); got != "_" {
		t.Errorf("unbound cell = %q", got)
	}
}

func TestPredStringForms(t *testing.T) {
	cases := []struct {
		p    Pred
		want string
	}{
		{Pred{}, "*"},
		{Pred{None: true}, "⊥"},
		{Pred{Eq: 3}, "=3"},
		{Pred{Neq: []rdf.ID{4, 5}}, "≠4∧≠5"},
		{Pred{In: map[rdf.ID]struct{}{2: {}, 1: {}}}, "∈{1,2}"},
		{Pred{Eq: 1, Neq: []rdf.ID{2}}, "=1∧≠2"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Pred.String() = %q, want %q", got, c.want)
		}
	}
}

func TestPredExact(t *testing.T) {
	if _, ok := (Pred{}).Exact(); ok {
		t.Error("Any pred reported exact")
	}
	if _, ok := (Pred{None: true}).Exact(); ok {
		t.Error("None pred reported exact")
	}
	if id, ok := (Pred{Eq: 9}).Exact(); !ok || id != 9 {
		t.Errorf("Exact = %d, %v", id, ok)
	}
}

func TestPosAndJoinString(t *testing.T) {
	p := Pos{Star: 1, Role: RoleSubject}
	if p.String() != "star1.subject" {
		t.Errorf("Pos = %q", p)
	}
	p = Pos{Star: 0, Role: RoleBoundObj, Idx: 2}
	if !strings.Contains(p.String(), "bound-object[2]") {
		t.Errorf("Pos = %q", p)
	}
	j := Join{Var: "x", Left: p, Right: Pos{Star: 1, Role: RoleSubject}}
	if !strings.Contains(j.String(), "?x") || !strings.Contains(j.String(), "star1.subject") {
		t.Errorf("Join = %q", j)
	}
	if !strings.Contains(Role(9).String(), "9") {
		t.Error("unknown role string")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{1, 2, 3}
	c := r.Clone()
	c[0] = 9
	if r[0] != 1 {
		t.Error("Clone shares storage")
	}
}
