package query

import (
	"fmt"
	"strings"

	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

// BoundPattern is a triple pattern with a concrete property inside a star.
type BoundPattern struct {
	// Prop is the dictionary ID of the bound property. NoID means the
	// property IRI does not occur in the dataset, so the pattern (and its
	// whole star) matches nothing.
	Prop rdf.ID
	// OVar is the object variable name, or "" when the object is constant.
	OVar string
	// Obj is the pushed-down predicate on the object position.
	Obj Pred
	// PatIdx is the index of the source pattern in the parsed WHERE clause.
	PatIdx int
}

// UnboundSlot is an unbound-property triple pattern inside a star: the
// property position is a variable ("don't care" edge label).
type UnboundSlot struct {
	// PVar is the property variable name.
	PVar string
	// Prop is the pushed-down predicate on the property position (from
	// FILTERs on PVar).
	Prop Pred
	// OVar is the object variable name, or "" when the object is constant.
	OVar string
	// Obj is the pushed-down predicate on the object position. A selective
	// Obj makes this a "partially-bound object" pattern in the paper's
	// terminology.
	Obj Pred
	// PatIdx is the index of the source pattern in the parsed WHERE clause.
	PatIdx int
}

// Star is a star subpattern: all patterns sharing one subject.
type Star struct {
	// Index is the star's position in Query.Stars and doubles as its
	// equivalence-class tag in the NTGA engines.
	Index int
	// SubjVar is the shared subject variable, or "" for a constant subject.
	SubjVar string
	// Subj is the pushed-down predicate on the subject position.
	Subj Pred
	// Bound and Slots partition the star's patterns by property boundness.
	Bound []BoundPattern
	Slots []UnboundSlot
}

// BoundProps returns the star's bound property IDs (the paper's P_bnd set).
func (s *Star) BoundProps() []rdf.ID {
	out := make([]rdf.ID, len(s.Bound))
	for i, b := range s.Bound {
		out[i] = b.Prop
	}
	return out
}

// HasUnbound reports whether the star contains any unbound-property pattern.
func (s *Star) HasUnbound() bool { return len(s.Slots) > 0 }

// NPatterns returns the total number of triple patterns in the star.
func (s *Star) NPatterns() int { return len(s.Bound) + len(s.Slots) }

// TripleMatchesStar reports whether a triple could play any role in the
// star: a bound-pattern match or an unbound-slot candidate. Subject
// constraints are NOT checked here (the caller routes by subject).
func (s *Star) TripleMatchesStar(t rdf.Triple) bool {
	for _, b := range s.Bound {
		if t.P == b.Prop && b.Obj.Match(t.O) {
			return true
		}
	}
	for _, sl := range s.Slots {
		if sl.Prop.Match(t.P) && sl.Obj.Match(t.O) {
			return true
		}
	}
	return false
}

// Role says where in a star a join variable surfaces.
type Role int

// Join-variable roles.
const (
	// RoleSubject: the variable is the star's subject.
	RoleSubject Role = iota
	// RoleBoundObj: the variable is the object of bound pattern Idx.
	RoleBoundObj
	// RoleSlotObj: the variable is the object of unbound slot Idx. Joins in
	// this role force β-unnesting of the slot (the paper's hard case).
	RoleSlotObj
)

func (r Role) String() string {
	switch r {
	case RoleSubject:
		return "subject"
	case RoleBoundObj:
		return "bound-object"
	case RoleSlotObj:
		return "unbound-object"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Pos locates one occurrence of a join variable.
type Pos struct {
	Star int
	Role Role
	Idx  int // bound-pattern or slot index within the star; unused for RoleSubject
}

func (p Pos) String() string {
	if p.Role == RoleSubject {
		return fmt.Sprintf("star%d.subject", p.Star)
	}
	return fmt.Sprintf("star%d.%s[%d]", p.Star, p.Role, p.Idx)
}

// Join is one inter-star equi-join edge of the left-deep execution plan:
// the partial result containing Left.Star is joined with Right.Star on Var.
type Join struct {
	Var   string
	Left  Pos
	Right Pos
}

func (j Join) String() string {
	return fmt.Sprintf("⋈[?%s] %s = %s", j.Var, j.Left, j.Right)
}

// Query is the compiled logical query.
type Query struct {
	Src  *sparql.Query
	Dict *rdf.Dict
	// Stars lists the star subpatterns in first-appearance order.
	Stars []*Star
	// Joins is the left-deep join sequence: Joins[i].Right.Star is the
	// (i+1)-th star folded into the running result.
	Joins []Join
	// AllVars lists every variable in first-use order; binding Rows are
	// indexed by this order.
	AllVars []string
	// VarIdx maps a variable name to its Row index.
	VarIdx map[string]int
	// Select lists projected variables (empty = all).
	Select   []string
	Distinct bool
}

// IsCount reports whether this is a COUNT(*) aggregation query.
func (q *Query) IsCount() bool { return q.Src.IsCount() }

// Empty reports whether the query provably has no results against the
// dataset (a constant term missing from the dictionary, or a bound property
// absent from the data).
func (q *Query) Empty() bool {
	for _, st := range q.Stars {
		if st.Subj.None {
			return true
		}
		for _, b := range st.Bound {
			if b.Prop == rdf.NoID || b.Obj.None {
				return true
			}
		}
		for _, sl := range st.Slots {
			if sl.Prop.None || sl.Obj.None {
				return true
			}
		}
	}
	return false
}

// TripleRelevant reports whether a triple can participate in any star —
// the map-side pushdown every engine applies when scanning the triple
// relation.
func (q *Query) TripleRelevant(t rdf.Triple) bool {
	for _, st := range q.Stars {
		if !st.Subj.Match(t.S) {
			continue
		}
		if st.TripleMatchesStar(t) {
			return true
		}
	}
	return false
}

// Explain renders a human-readable description of the compiled query.
func (q *Query) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %d star(s), %d join(s), %d var(s)\n",
		len(q.Stars), len(q.Joins), len(q.AllVars))
	for _, st := range q.Stars {
		subj := "?" + st.SubjVar
		if st.SubjVar == "" {
			subj = fmt.Sprintf("const(%s)", st.Subj)
		} else if !st.Subj.Any() {
			subj += "(" + st.Subj.String() + ")"
		}
		fmt.Fprintf(&sb, "  star %d: subject %s\n", st.Index, subj)
		for i, b := range st.Bound {
			obj := "?" + b.OVar
			if b.OVar == "" {
				obj = "const"
			}
			fmt.Fprintf(&sb, "    bound[%d]: prop=%d obj=%s pred=%s\n", i, b.Prop, obj, b.Obj)
		}
		for i, sl := range st.Slots {
			obj := "?" + sl.OVar
			if sl.OVar == "" {
				obj = "const"
			}
			fmt.Fprintf(&sb, "    slot[%d]: ?%s(%s) obj=%s pred=%s\n", i, sl.PVar, sl.Prop, obj, sl.Obj)
		}
	}
	for _, j := range q.Joins {
		fmt.Fprintf(&sb, "  %s\n", j)
	}
	return sb.String()
}
