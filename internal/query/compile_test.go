package query

import (
	"strings"
	"testing"

	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

// testGraph builds a small dataset whose dictionary the compiler resolves
// against.
func testGraph() *rdf.Graph {
	g := rdf.NewGraph()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }
	g.Add(ex("gene9"), ex("label"), rdf.NewLiteral("retinoid X receptor"))
	g.Add(ex("gene9"), ex("xGO"), ex("go1"))
	g.Add(ex("gene9"), ex("xGO"), ex("go9"))
	g.Add(ex("gene9"), ex("synonym"), rdf.NewLiteral("RCoR-1"))
	g.Add(ex("gene9"), ex("xRef"), ex("hs2131"))
	g.Add(ex("go1"), ex("label"), rdf.NewLiteral("transcription"))
	g.Add(ex("go1"), ex("type"), ex("GOTerm"))
	g.Add(ex("hexokinase"), ex("label"), rdf.NewLiteral("hexokinase enzyme"))
	return g
}

func compile(t *testing.T, src string) *Query {
	t.Helper()
	g := testGraph()
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := Compile(pq, g.Dict)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return q
}

func TestCompileStarDecomposition(t *testing.T) {
	q := compile(t, `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?l .
  ?g ex:xGO ?go .
  ?g ?p ?o .
  ?go ex:type ?t .
}`)
	if len(q.Stars) != 2 {
		t.Fatalf("stars = %d, want 2", len(q.Stars))
	}
	s0, s1 := q.Stars[0], q.Stars[1]
	if s0.SubjVar != "g" || s1.SubjVar != "go" {
		t.Errorf("subjects = %q, %q", s0.SubjVar, s1.SubjVar)
	}
	if len(s0.Bound) != 2 || len(s0.Slots) != 1 {
		t.Errorf("star0: %d bound, %d slots", len(s0.Bound), len(s0.Slots))
	}
	if !s0.HasUnbound() || s1.HasUnbound() {
		t.Errorf("HasUnbound: s0=%v s1=%v", s0.HasUnbound(), s1.HasUnbound())
	}
	if len(s1.Bound) != 1 || s1.NPatterns() != 1 {
		t.Errorf("star1: %d bound, %d patterns", len(s1.Bound), s1.NPatterns())
	}
	if len(s0.BoundProps()) != 2 {
		t.Errorf("BoundProps = %v", s0.BoundProps())
	}
	// Join: star0's xGO object var ?go = star1's subject.
	if len(q.Joins) != 1 {
		t.Fatalf("joins = %d, want 1", len(q.Joins))
	}
	j := q.Joins[0]
	if j.Var != "go" {
		t.Errorf("join var = %q", j.Var)
	}
	if j.Left != (Pos{Star: 0, Role: RoleBoundObj, Idx: 1}) {
		t.Errorf("join left = %v", j.Left)
	}
	if j.Right != (Pos{Star: 1, Role: RoleSubject}) {
		t.Errorf("join right = %v", j.Right)
	}
}

func TestCompileJoinOnUnboundObject(t *testing.T) {
	// B1-style: the unbound-property pattern's object joins to star 2.
	q := compile(t, `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?l .
  ?g ?p ?x .
  ?x ex:type ?t .
}`)
	if len(q.Joins) != 1 {
		t.Fatalf("joins = %d", len(q.Joins))
	}
	j := q.Joins[0]
	if j.Left != (Pos{Star: 0, Role: RoleSlotObj, Idx: 0}) {
		t.Errorf("join left = %v, want slot-object", j.Left)
	}
}

func TestCompileConstantsAndFilters(t *testing.T) {
	q := compile(t, `
PREFIX ex: <http://ex/>
SELECT ?g WHERE {
  ?g ex:label "retinoid X receptor" .
  ?g ?p ?o .
  FILTER(?o != ex:go1)
  FILTER(?p != ex:label)
}`)
	st := q.Stars[0]
	if st.Bound[0].OVar != "" {
		t.Errorf("constant object has OVar %q", st.Bound[0].OVar)
	}
	if _, exact := st.Bound[0].Obj.Exact(); !exact {
		t.Errorf("constant object pred = %v, want exact", st.Bound[0].Obj)
	}
	sl := st.Slots[0]
	if sl.Prop.Any() {
		t.Error("slot property pred should carry the != filter")
	}
	if sl.Obj.Any() {
		t.Error("slot object pred should carry the != filter")
	}
	if !sl.Obj.Selective() {
		t.Error("filtered slot object should be Selective (partially bound)")
	}
	// The predicate excludes go1 but admits others.
	g := testGraph()
	go1 := g.Dict.MustLookup(rdf.NewIRI("http://ex/go1"))
	go9 := g.Dict.MustLookup(rdf.NewIRI("http://ex/go9"))
	qsl := q.Stars[0].Slots[0]
	if qsl.Obj.Match(go1) {
		t.Error("pred admits excluded ID")
	}
	if !qsl.Obj.Match(go9) {
		t.Error("pred rejects allowed ID")
	}
}

func TestCompileContainsFilter(t *testing.T) {
	q := compile(t, `
PREFIX ex: <http://ex/>
SELECT ?s WHERE {
  ?s ?p ?o .
  FILTER(CONTAINS(?o, "hexokinase"))
}`)
	sl := q.Stars[0].Slots[0]
	if sl.Obj.In == nil {
		t.Fatal("CONTAINS did not compile to a membership set")
	}
	g := testGraph()
	hexLabel := g.Dict.MustLookup(rdf.NewLiteral("hexokinase enzyme"))
	hexIRI := g.Dict.MustLookup(rdf.NewIRI("http://ex/hexokinase"))
	if !sl.Obj.Match(hexLabel) {
		t.Error("CONTAINS set misses matching literal")
	}
	if !sl.Obj.Match(hexIRI) {
		t.Error("CONTAINS set misses matching IRI (STR semantics)")
	}
	other := g.Dict.MustLookup(rdf.NewIRI("http://ex/go1"))
	if sl.Obj.Match(other) {
		t.Error("CONTAINS set admits non-matching term")
	}
}

func TestCompileMissingTermsMakeQueryEmpty(t *testing.T) {
	cases := []string{
		// Bound property absent from the data.
		`SELECT * WHERE { ?s <http://ex/nosuch> ?o . }`,
		// Equality filter against an absent term.
		`SELECT * WHERE { ?s ?p ?o . FILTER(?o = <http://ex/nosuch>) }`,
		// Constant object absent.
		`SELECT ?s WHERE { ?s <http://ex/label> "no such label" . }`,
		// Constant subject absent.
		`SELECT ?p WHERE { <http://ex/nosuch> ?p ?o . }`,
	}
	for _, src := range cases {
		q := compile(t, src)
		if !q.Empty() {
			t.Errorf("query %q should be Empty", src)
		}
	}
	q := compile(t, `SELECT * WHERE { ?s <http://ex/label> ?l . }`)
	if q.Empty() {
		t.Error("satisfiable query reported Empty")
	}
}

func TestCompileConstantSubjectStar(t *testing.T) {
	q := compile(t, `SELECT ?p ?o WHERE { <http://ex/gene9> ?p ?o . }`)
	st := q.Stars[0]
	if st.SubjVar != "" {
		t.Errorf("SubjVar = %q, want constant", st.SubjVar)
	}
	if _, ok := st.Subj.Exact(); !ok {
		t.Errorf("Subj pred = %v, want exact", st.Subj)
	}
}

func TestCompileUnsupportedShapes(t *testing.T) {
	g := testGraph()
	cases := []struct {
		name, src, wantErr string
	}{
		{"cartesian",
			`SELECT * WHERE { ?a <http://ex/label> ?x . ?b <http://ex/type> ?y . }`,
			"disconnected"},
		{"property var reused",
			`SELECT * WHERE { ?a ?p ?x . ?b ?p ?y . ?a <http://ex/xGO> ?b . }`,
			"property variable"},
		{"property var as object",
			`SELECT * WHERE { ?a ?p ?x . ?a <http://ex/xGO> ?p . }`,
			"property variable"},
		{"object var twice in star",
			`SELECT * WHERE { ?a <http://ex/label> ?x . ?a <http://ex/synonym> ?x . }`,
			"twice in star"},
		{"self loop",
			`SELECT * WHERE { ?a <http://ex/xGO> ?a . }`,
			"subject and object"},
		{"cycle",
			`SELECT * WHERE { ?a <http://ex/xGO> ?x . ?a <http://ex/xRef> ?y . ?b <http://ex/label> ?x . ?b <http://ex/synonym> ?y . }`,
			"cyclic"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pq, err := sparql.Parse(c.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Compile(pq, g.Dict)
			if err == nil {
				t.Fatalf("Compile(%q) succeeded, want error containing %q", c.src, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestTripleRelevant(t *testing.T) {
	q := compile(t, `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?l .
  ?g ex:xGO ?go .
}`)
	g := testGraph()
	label := g.Dict.MustLookup(rdf.NewIRI("http://ex/label"))
	synonym := g.Dict.MustLookup(rdf.NewIRI("http://ex/synonym"))
	gene9 := g.Dict.MustLookup(rdf.NewIRI("http://ex/gene9"))
	lit := g.Dict.MustLookup(rdf.NewLiteral("RCoR-1"))
	if !q.TripleRelevant(rdf.Triple{S: gene9, P: label, O: lit}) {
		t.Error("bound-property triple reported irrelevant")
	}
	if q.TripleRelevant(rdf.Triple{S: gene9, P: synonym, O: lit}) {
		t.Error("non-matching property reported relevant for bound-only query")
	}
	// With an unbound slot, any property matches.
	q2 := compile(t, `SELECT * WHERE { ?g ?p ?o . }`)
	if !q2.TripleRelevant(rdf.Triple{S: gene9, P: synonym, O: lit}) {
		t.Error("triple irrelevant under pure unbound pattern")
	}
}

func TestThreeStarChainJoinOrder(t *testing.T) {
	q := compile(t, `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?a ex:xGO ?b .
  ?b ex:label ?l .
  ?b ex:type ?c .
  ?c ex:label ?cl .
}`)
	if len(q.Stars) != 3 {
		t.Fatalf("stars = %d", len(q.Stars))
	}
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %d", len(q.Joins))
	}
	if q.Joins[0].Var != "b" || q.Joins[1].Var != "c" {
		t.Errorf("join vars = %q, %q", q.Joins[0].Var, q.Joins[1].Var)
	}
}

func TestExplainMentionsStructure(t *testing.T) {
	q := compile(t, `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?l .
  ?g ?p ?o .
  ?o ex:type ?t .
}`)
	out := q.Explain()
	for _, want := range []string{"2 star(s)", "1 join(s)", "slot[0]", "bound[0]", "unbound-object"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
}

func TestPredMatchCombinations(t *testing.T) {
	in := map[rdf.ID]struct{}{3: {}, 4: {}}
	cases := []struct {
		pred Pred
		id   rdf.ID
		want bool
	}{
		{Pred{}, 7, true},
		{Pred{None: true}, 7, false},
		{Pred{Eq: 7}, 7, true},
		{Pred{Eq: 7}, 8, false},
		{Pred{Neq: []rdf.ID{7}}, 7, false},
		{Pred{Neq: []rdf.ID{7}}, 8, true},
		{Pred{In: in}, 3, true},
		{Pred{In: in}, 7, false},
		{Pred{Eq: 3, In: in}, 3, true},
		{Pred{Eq: 7, In: in}, 7, false},
		{Pred{In: map[rdf.ID]struct{}{}}, 1, false},
	}
	for i, c := range cases {
		if got := c.pred.Match(c.id); got != c.want {
			t.Errorf("case %d: %v.Match(%d) = %v, want %v", i, c.pred, c.id, got, c.want)
		}
	}
	if !(Pred{}).Any() || (Pred{Eq: 1}).Any() || (Pred{None: true}).Any() {
		t.Error("Any misreports")
	}
	if (Pred{}).Selective() || !(Pred{Eq: 1}).Selective() {
		t.Error("Selective misreports")
	}
}

func TestRowsHelpers(t *testing.T) {
	a := []Row{{3, 1}, {1, 2}, {1, 2}}
	b := []Row{{1, 2}, {3, 1}, {1, 2}}
	if !RowsEqual(a, b) {
		t.Error("equal multisets reported unequal")
	}
	c := []Row{{1, 2}, {3, 1}}
	if RowsEqual(a, c) {
		t.Error("different cardinalities reported equal")
	}
	if d := DiffRows(a, c, 5); !strings.Contains(d, "only in A") {
		t.Errorf("DiffRows = %q", d)
	}
	can := CanonicalRows(a, true)
	if len(can) != 2 {
		t.Errorf("CanonicalRows distinct = %v", can)
	}
	// Projection.
	q := compile(t, `SELECT ?o WHERE { ?s ?p ?o . }`)
	full := Row{10, 20, 30} // s, p, o
	proj := q.Project(full)
	if len(proj) != 1 || proj[0] != 30 {
		t.Errorf("Project = %v", proj)
	}
}
