// Package explain renders the planner's view of a query: for every engine,
// the physical plan it would run and the catalog-estimated cost (MR cycles,
// full scans of the triple relation, shuffle bytes). It needs only a
// statistics catalog and a compiled query — no dataset, no execution — so
// `ntga-explain -stats` can price plans from a persisted catalog alone.
package explain

import (
	"encoding/json"
	"fmt"
	"strings"

	"ntga/internal/engine"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
	"ntga/internal/ntgamr"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/relmr"
)

// Input is the DFS name plans are built against for inspection. Summary()
// renders it as "T" regardless, so the choice never shows.
const Input = "T"

// NodeCost mirrors plan.NodeCost for JSON output.
type NodeCost struct {
	Name            string `json:"name"`
	Kind            string `json:"kind"`
	EstShuffleBytes int64  `json:"est_shuffle_bytes"`
	EstOutRecords   int64  `json:"est_out_records"`
}

// EngineCost is one engine's plan and estimated cost for a query.
type EngineCost struct {
	Engine    string `json:"engine"`
	Supported bool   `json:"supported"`
	// Reason says why the engine cannot plan the query (Supported=false).
	Reason          string     `json:"reason,omitempty"`
	Cycles          int        `json:"cycles,omitempty"`
	Scans           int        `json:"scans,omitempty"`
	EstShuffleBytes int64      `json:"est_shuffle_bytes,omitempty"`
	Plan            string     `json:"plan,omitempty"`
	Nodes           []NodeCost `json:"nodes,omitempty"`
}

// Engines returns the default engine lineup, in the fixed order the
// goldens pin down.
func Engines() []engine.QueryEngine {
	return []engine.QueryEngine{
		relmr.NewPig(),
		relmr.NewHive(),
		relmr.NewSelSJFirst(),
		ntgamr.NewEager(),
		ntgamr.NewLazy(),
	}
}

// ForQuery plans the query on every engine and prices each plan against
// the catalog. Engines that cannot plan the shape report Supported=false
// with the planner's reason.
func ForQuery(cat *plan.Catalog, q *query.Query, engines []engine.QueryEngine) []EngineCost {
	return ForQueryPartitioned(cat, q, nil, engines)
}

// ForQueryPartitioned is ForQuery over a hash-partitioned input layout:
// engines that understand the physical data property plan their map-only
// variants (visible as map-only/part/part-miss attributes in the plan
// text); the rest plan exactly as they would flat.
func ForQueryPartitioned(cat *plan.Catalog, q *query.Query, part *plan.Partitioning, engines []engine.QueryEngine) []EngineCost {
	out := make([]EngineCost, 0, len(engines))
	for _, e := range engines {
		var cl engine.Cleaner
		ec := EngineCost{Engine: e.Name()}
		p, err := engine.PlanMaybePartitioned(e, q, Input, part, &cl, nil)
		if err != nil {
			ec.Reason = err.Error()
			out = append(out, ec)
			continue
		}
		ec.Supported = true
		cost, nodes := plan.Estimate(cat, q, p)
		ec.Cycles = cost.Cycles
		ec.Scans = cost.Scans
		ec.EstShuffleBytes = cost.ShuffleBytes
		ec.Plan = p.Summary()
		for _, n := range nodes {
			ec.Nodes = append(ec.Nodes, NodeCost{
				Name: n.Name, Kind: n.Kind.String(),
				EstShuffleBytes: n.EstShuffleBytes, EstOutRecords: n.EstOutRecords,
			})
		}
		out = append(out, ec)
	}
	return out
}

// Render produces the text form: an estimated-cost table over all engines,
// then each supported engine's plan. The output is deterministic — it is
// what the EXPLAIN goldens record.
func Render(costs []EngineCost) string {
	var sb strings.Builder
	sb.WriteString("== estimated cost ==\n")
	fmt.Fprintf(&sb, "%-14s %-7s %-6s %s\n", "engine", "cycles", "scans", "shuffle(est)")
	for _, ec := range costs {
		if !ec.Supported {
			fmt.Fprintf(&sb, "%-14s (unsupported: %s)\n", ec.Engine, ec.Reason)
			continue
		}
		fmt.Fprintf(&sb, "%-14s %-7d %-6d %d\n", ec.Engine, ec.Cycles, ec.Scans, ec.EstShuffleBytes)
	}
	for _, ec := range costs {
		if !ec.Supported {
			continue
		}
		fmt.Fprintf(&sb, "\n== %s plan ==\n%s", ec.Engine, ec.Plan)
	}
	return sb.String()
}

// RenderJSON produces the machine-readable form (-json).
func RenderJSON(costs []EngineCost) (string, error) {
	b, err := json.MarshalIndent(costs, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// RunCost is EngineCost plus the measured values from actually executing
// the plan — the EXPLAIN ANALYZE view. Estimated fields come from the
// catalog; Act* fields from the run's workflow metrics.
type RunCost struct {
	EngineCost
	Ran             bool   `json:"ran"`
	RunErr          string `json:"run_err,omitempty"`
	ActCycles       int    `json:"act_cycles,omitempty"`
	ActScans        int    `json:"act_scans,omitempty"`
	ActShuffleBytes int64  `json:"act_shuffle_bytes,omitempty"`
	Rows            int64  `json:"rows,omitempty"`
}

// Analyze executes the query with every supported engine on a fresh
// in-memory cluster and pairs each estimate with the measured cycle count,
// triple-relation scans, and shuffle volume.
func Analyze(cat *plan.Catalog, g *rdf.Graph, q *query.Query, engines []engine.QueryEngine) ([]RunCost, error) {
	return AnalyzePartitioned(cat, g, q, 0, engines)
}

// AnalyzePartitioned is Analyze over a hash-of-subject bucketed layout:
// each engine's cluster additionally gets the partitioned layout built
// (buckets > 0), the plan estimates come from the partitioned planner, and
// execution goes through the engine's map-only path where it applies.
func AnalyzePartitioned(cat *plan.Catalog, g *rdf.Graph, q *query.Query, buckets int, engines []engine.QueryEngine) ([]RunCost, error) {
	var estPart *plan.Partitioning
	if buckets > 0 {
		var err error
		estPart, err = plan.NewPartitioning(plan.PartitionKeySubject, buckets, "part/T", g.Version())
		if err != nil {
			return nil, err
		}
	}
	costs := ForQueryPartitioned(cat, q, estPart, engines)
	out := make([]RunCost, 0, len(costs))
	for i, ec := range costs {
		rc := RunCost{EngineCost: ec}
		if !ec.Supported {
			out = append(out, rc)
			continue
		}
		mr := mapreduce.NewEngine(
			hdfs.New(hdfs.Config{Nodes: 4, BlockSize: 1 << 16}),
			mapreduce.EngineConfig{SplitRecords: 4096, DefaultReducers: 4},
		)
		const input = "data/triples"
		if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
			return nil, err
		}
		var part *plan.Partitioning
		if buckets > 0 {
			var err error
			part, err = plan.BuildPartitionLayout(mr, input, "part/T", buckets, g.Version())
			if err != nil {
				return nil, err
			}
		}
		res, err := engine.RunMaybePartitioned(engines[i], mr, q, input, part)
		if err != nil {
			rc.RunErr = err.Error()
			out = append(out, rc)
			continue
		}
		rc.Ran = true
		rc.ActCycles = res.Workflow.Cycles
		rc.ActScans = res.Workflow.FullScans
		rc.ActShuffleBytes = res.Workflow.TotalMapOutputBytes()
		if res.IsCount {
			rc.Rows = res.Count
		} else {
			rc.Rows = int64(len(res.Rows))
		}
		out = append(out, rc)
	}
	return out, nil
}

// RenderAnalyze produces the estimated-vs-measured comparison table.
func RenderAnalyze(costs []RunCost) string {
	var sb strings.Builder
	sb.WriteString("== estimated vs actual ==\n")
	fmt.Fprintf(&sb, "%-14s %-12s %-10s %-22s %s\n",
		"engine", "cycles(e/a)", "scans(e/a)", "shuffle(est/actual)", "rows")
	for _, rc := range costs {
		if !rc.Supported {
			fmt.Fprintf(&sb, "%-14s (unsupported: %s)\n", rc.Engine, rc.Reason)
			continue
		}
		if !rc.Ran {
			fmt.Fprintf(&sb, "%-14s (failed: %s)\n", rc.Engine, rc.RunErr)
			continue
		}
		fmt.Fprintf(&sb, "%-14s %-12s %-10s %-22s %d\n", rc.Engine,
			fmt.Sprintf("%d/%d", rc.Cycles, rc.ActCycles),
			fmt.Sprintf("%d/%d", rc.Scans, rc.ActScans),
			fmt.Sprintf("%d/%d", rc.EstShuffleBytes, rc.ActShuffleBytes),
			rc.Rows)
	}
	return sb.String()
}

// RenderAnalyzeJSON is the machine-readable form of RenderAnalyze.
func RenderAnalyzeJSON(costs []RunCost) (string, error) {
	b, err := json.MarshalIndent(costs, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}
