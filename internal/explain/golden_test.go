package explain_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ntga/internal/bench"
	"ntga/internal/explain"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

var update = flag.Bool("update", false, "rewrite the EXPLAIN golden files")

// TestExplainGoldens pins the rendered EXPLAIN output — the estimated-cost
// table and every engine's plan — for every benchmark query, against the
// statistics catalog of the seeded CI-scale datasets. Regenerate with
// `make goldens` (go test ./internal/explain -update) after intentional
// planner or cost-model changes.
//
// Each query is priced twice: once compiled against the dataset dictionary
// (the execution path) and once against an empty dictionary (the
// `ntga-explain -stats` path, where only the persisted catalog exists).
// Both renderings must match the golden byte for byte — the planner's view
// may not depend on having the data loaded.
func TestExplainGoldens(t *testing.T) {
	graphs := map[string]*rdf.Graph{}
	cats := map[string]*plan.Catalog{}
	for _, cq := range bench.Catalog() {
		cq := cq
		t.Run(cq.ID, func(t *testing.T) {
			g, ok := graphs[cq.Dataset]
			if !ok {
				var err error
				g, err = bench.Dataset(cq.Dataset, 1, 42)
				if err != nil {
					t.Fatal(err)
				}
				graphs[cq.Dataset] = g
				cats[cq.Dataset] = plan.FromGraph(g)
			}
			cat := cats[cq.Dataset]

			// The partitioned view plans against an 8-bucket hash-of-subject
			// layout; the version is empty exactly as in a stats-only plan,
			// and String() does not render it, so the goldens stay stable.
			part, err := plan.NewPartitioning(plan.PartitionKeySubject, 8, "part/T", "")
			if err != nil {
				t.Fatal(err)
			}
			for _, variant := range []struct {
				suffix string
				part   *plan.Partitioning
			}{{".golden", nil}, {".part.golden", part}} {
				full := renderWith(t, cq.Src, cat, g.Dict, variant.part)
				statsOnly := renderWith(t, cq.Src, cat, rdf.NewDict(), variant.part)
				if full != statsOnly {
					t.Errorf("stats-only explain diverges from full-graph explain (%s):\n--- full ---\n%s--- stats-only ---\n%s",
						variant.suffix, full, statsOnly)
				}

				path := filepath.Join("testdata", cq.ID+variant.suffix)
				if *update {
					if err := os.WriteFile(path, []byte(full), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run `make goldens`): %v", err)
				}
				if full != string(want) {
					t.Errorf("EXPLAIN output drifted from %s (run `make goldens` if intentional):\n--- got ---\n%s--- want ---\n%s",
						path, full, want)
				}
			}
		})
	}
}

func renderWith(t *testing.T, src string, cat *plan.Catalog, dict *rdf.Dict, part *plan.Partitioning) string {
	t.Helper()
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Compile(pq, dict)
	if err != nil {
		t.Fatal(err)
	}
	return explain.Render(explain.ForQueryPartitioned(cat, q, part, explain.Engines()))
}
