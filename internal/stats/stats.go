// Package stats provides the derived metrics and table formatting the
// benchmark harness uses to report experiments in the paper's terms.
package stats

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// RedundancyFactor quantifies how much of a representation is redundant
// relative to a minimal (concisely nested) representation of the same
// information: 1 − minimal/actual. It is 0 when the representation is as
// small as the minimal one and approaches 1 as redundancy grows — matching
// the paper's in-text redundancy factors (e.g. "C4 ... redundancy factor
// close to 0.89").
func RedundancyFactor(minimalBytes, actualBytes int64) float64 {
	if actualBytes <= 0 || minimalBytes >= actualBytes {
		return 0
	}
	return 1 - float64(minimalBytes)/float64(actualBytes)
}

// Gain reports the relative improvement of measured over baseline
// (positive = measured is better/smaller/faster), as a fraction: 0.25 means
// "25% less/faster than baseline".
func Gain(baseline, measured float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - measured) / baseline
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n < 0:
		return "-" + FormatBytes(-n)
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	}
}

// FormatRatio renders a dimensionless ratio (straggler ratio, skew) with two
// decimals; zero — "no data" for these metrics — renders as "-".
func FormatRatio(r float64) string {
	if r == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", r)
}

// FormatCount renders a record count compactly (1234567 → "1.23M").
func FormatCount(n int64) string {
	switch {
	case n < 0:
		return "-" + FormatCount(-n)
	case n < 1000:
		return fmt.Sprintf("%d", n)
	case n < 1000000:
		return fmt.Sprintf("%.1fK", float64(n)/1000)
	default:
		return fmt.Sprintf("%.2fM", float64(n)/1000000)
	}
}

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	// Column widths are display widths: count runes, not bytes, so cells
	// like "∞" align.
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}
