package stats

import (
	"math"
	"strings"
	"testing"
)

func TestRedundancyFactor(t *testing.T) {
	cases := []struct {
		minimal, actual int64
		want            float64
	}{
		{100, 1000, 0.9},
		{1000, 1000, 0},
		{2000, 1000, 0}, // clamped
		{0, 0, 0},
		{100, 0, 0},
		{11, 100, 0.89},
	}
	for _, c := range cases {
		if got := RedundancyFactor(c.minimal, c.actual); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("RedundancyFactor(%d,%d) = %v, want %v", c.minimal, c.actual, got, c.want)
		}
	}
}

func TestGain(t *testing.T) {
	if g := Gain(100, 75); math.Abs(g-0.25) > 1e-9 {
		t.Errorf("Gain = %v, want 0.25", g)
	}
	if g := Gain(0, 10); g != 0 {
		t.Errorf("Gain with zero baseline = %v", g)
	}
	if g := Gain(100, 150); math.Abs(g+0.5) > 1e-9 {
		t.Errorf("negative gain = %v, want -0.5", g)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0B"}, {512, "512B"}, {2048, "2.0KB"},
		{3 << 20, "3.0MB"}, {5 << 30, "5.00GB"}, {-2048, "-2.0KB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0"}, {999, "999"}, {6300, "6.3K"}, {1230000, "1.23M"}, {-6300, "-6.3K"},
	}
	for _, c := range cases {
		if got := FormatCount(c.n); got != c.want {
			t.Errorf("FormatCount(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"query", "time", "writes"}}
	tb.AddRow("B1", "12ms", "3.0KB")
	tb.AddRow("B1-long-name", 7, 42)
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "B1-long-name") {
		t.Errorf("Render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns must align: "time" starts at the same offset in all rows.
	idx := strings.Index(lines[1], "time")
	for _, ln := range lines[2:] {
		if len(ln) < idx {
			t.Errorf("row shorter than header: %q", ln)
		}
	}
}
