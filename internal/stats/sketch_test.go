package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// distinctSets builds two overlapping element sets and their union.
func distinctSets(seed int64, nA, nB, universe int) (a, b []uint64, union map[uint64]bool) {
	rng := rand.New(rand.NewSource(seed))
	union = make(map[uint64]bool)
	draw := func(n int) []uint64 {
		out := make([]uint64, 0, n)
		for len(out) < n {
			v := uint64(rng.Intn(universe)) + 1
			out = append(out, v)
		}
		return out
	}
	a, b = draw(nA), draw(nB)
	for _, v := range a {
		union[v] = true
	}
	for _, v := range b {
		union[v] = true
	}
	return a, b, union
}

// TestSketchMergeEqualsUnion is the mergeability contract: the merged bitmap
// is bit-for-bit identical to the bitmap of the union stream, so
// merge(sketch(A), sketch(B)) and sketch(A ∪ B) agree exactly — not merely
// within error bounds.
func TestSketchMergeEqualsUnion(t *testing.T) {
	const logM = 14
	a, b, _ := distinctSets(1, 3000, 2500, 8000)

	sa, sb, su := NewSketch(logM), NewSketch(logM), NewSketch(logM)
	for _, v := range a {
		sa.Add(v)
		su.Add(v)
	}
	for _, v := range b {
		sb.Add(v)
		su.Add(v)
	}
	merged := sa.Clone()
	if err := merged.Merge(sb); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if !merged.Equal(su) {
		t.Fatalf("merge(sketch(A), sketch(B)) bitmap differs from sketch(A∪B)")
	}
	if merged.Estimate() != su.Estimate() {
		t.Fatalf("merged estimate %d != union estimate %d", merged.Estimate(), su.Estimate())
	}
}

// TestSketchMergeWithinErrorBound checks the estimate of the merged sketch
// against the exact distinct count of A ∪ B, allowing 4 standard deviations
// of the linear-counting error.
func TestSketchMergeWithinErrorBound(t *testing.T) {
	const logM = 14
	for seed := int64(1); seed <= 5; seed++ {
		a, b, union := distinctSets(seed, 4000, 3000, 10000)
		sa, sb := NewSketch(logM), NewSketch(logM)
		for _, v := range a {
			sa.Add(v)
		}
		for _, v := range b {
			sb.Add(v)
		}
		if err := sa.Merge(sb); err != nil {
			t.Fatalf("Merge: %v", err)
		}
		exact := int64(len(union))
		got := sa.Estimate()
		bound := 4 * sa.ErrorBound(exact)
		if math.Abs(float64(got-exact)) > bound {
			t.Errorf("seed %d: merged estimate %d vs exact %d exceeds 4σ bound %.1f",
				seed, got, exact, bound)
		}
	}
}

// TestSketchMergeOrderIndependent: merging in any order (and any grouping)
// yields the same bitmap and the same estimate.
func TestSketchMergeOrderIndependent(t *testing.T) {
	const logM = 12
	parts := make([]*Sketch, 4)
	rng := rand.New(rand.NewSource(7))
	for i := range parts {
		parts[i] = NewSketch(logM)
		for j := 0; j < 1000; j++ {
			parts[i].Add(uint64(rng.Intn(5000)))
		}
	}
	fold := func(order []int) *Sketch {
		acc := NewSketch(logM)
		for _, i := range order {
			if err := acc.Merge(parts[i]); err != nil {
				t.Fatalf("Merge: %v", err)
			}
		}
		return acc
	}
	ref := fold([]int{0, 1, 2, 3})
	for _, order := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		got := fold(order)
		if !got.Equal(ref) {
			t.Errorf("merge order %v produced a different bitmap", order)
		}
		if got.Estimate() != ref.Estimate() {
			t.Errorf("merge order %v: estimate %d != %d", order, got.Estimate(), ref.Estimate())
		}
	}
}

// TestSketchMergeSizeMismatch: merging differently sized sketches is refused.
func TestSketchMergeSizeMismatch(t *testing.T) {
	if err := NewSketch(10).Merge(NewSketch(12)); err == nil {
		t.Fatal("expected an error merging 2^10-bit and 2^12-bit sketches")
	}
}

// TestSketchJSONRoundTrip: the persisted form reproduces the exact bitmap.
func TestSketchJSONRoundTrip(t *testing.T) {
	s := NewSketch(10)
	for i := uint64(0); i < 700; i++ {
		s.Add(i * 31)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Sketch
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !back.Equal(s) {
		t.Fatal("round-tripped sketch bitmap differs")
	}
}

// TestSketchEstimateSingleStream sanity-checks the plain estimator against
// an exact count within the documented bound.
func TestSketchEstimateSingleStream(t *testing.T) {
	s := NewSketch(14)
	seen := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6000; i++ {
		v := uint64(rng.Intn(9000)) + 1
		s.Add(v)
		seen[v] = true
	}
	exact := int64(len(seen))
	if diff := math.Abs(float64(s.Estimate() - exact)); diff > 4*s.ErrorBound(exact) {
		t.Errorf("estimate %d vs exact %d: |diff| %.0f > 4σ %.1f",
			s.Estimate(), exact, diff, 4*s.ErrorBound(exact))
	}
}
