package stats

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
)

// Sketch is a linear-counting distinct sketch (Whang et al.): a bitmap
// indexed by a hash of the element, with the distinct count estimated from
// the fraction of zero bits. Two properties make it the backbone of the
// incremental statistics catalog:
//
//   - order independence: any interleaving of Add calls yields the same
//     bitmap, so concurrent map tasks and retried attempts agree;
//   - mergeability by construction: the bitmap of A ∪ B is exactly the
//     bitwise OR of the bitmaps of A and B, so merge(sketch(A), sketch(B))
//     equals sketch(A ∪ B) bit for bit — not merely within error bounds.
//
// At the scales the catalog builder sees relative to the bitmap size the
// estimate is within a couple of percent of exact (see ErrorBound).
type Sketch struct {
	bits []uint64
	m    uint64 // bitmap size in bits (power of two)
}

// NewSketch returns an empty sketch over a 2^logM-bit bitmap.
func NewSketch(logM uint) *Sketch {
	m := uint64(1) << logM
	return &Sketch{bits: make([]uint64, m/64), m: m}
}

// Add records one element by its 64-bit value.
func (s *Sketch) Add(v uint64) {
	h := Mix64(v)
	i := h & (s.m - 1)
	s.bits[i/64] |= 1 << (i % 64)
}

// Estimate returns the linear-counting estimate n̂ = m·ln(m/z), where z is
// the number of zero bits. A saturated bitmap (z = 0) returns m — the
// caller chose m too small.
func (s *Sketch) Estimate() int64 {
	ones := 0
	for _, w := range s.bits {
		ones += bits.OnesCount64(w)
	}
	zeros := s.m - uint64(ones)
	if zeros == 0 {
		return int64(s.m)
	}
	if ones == 0 {
		return 0
	}
	return int64(math.Round(float64(s.m) * math.Log(float64(s.m)/float64(zeros))))
}

// Bits reports the bitmap size in bits.
func (s *Sketch) Bits() uint64 { return s.m }

// Merge ORs another sketch's bitmap into this one. Both sketches must have
// the same bitmap size; after the merge this sketch represents the union of
// the two element sets exactly (the merged bitmap is identical to the one a
// single sketch fed both streams would hold).
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil {
		return nil
	}
	if s.m != o.m {
		return fmt.Errorf("stats: cannot merge sketches of %d and %d bits", s.m, o.m)
	}
	for i, w := range o.bits {
		s.bits[i] |= w
	}
	return nil
}

// Clone returns an independent copy.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{bits: make([]uint64, len(s.bits)), m: s.m}
	copy(c.bits, s.bits)
	return c
}

// Equal reports whether two sketches hold identical bitmaps.
func (s *Sketch) Equal(o *Sketch) bool {
	if s.m != o.m {
		return false
	}
	for i, w := range s.bits {
		if w != o.bits[i] {
			return false
		}
	}
	return true
}

// ErrorBound returns the expected standard deviation of the estimate for a
// true cardinality n, in elements: sqrt(m·(e^t − t − 1)) with t = n/m
// (Whang et al., eq. for Var(n̂)). Callers asserting estimate quality
// should allow a few multiples of this.
func (s *Sketch) ErrorBound(n int64) float64 {
	if n <= 0 {
		return 1
	}
	t := float64(n) / float64(s.m)
	return math.Sqrt(float64(s.m) * (math.Exp(t) - t - 1))
}

// Mix64 is SplitMix64's finalizer — a cheap, deterministic bijection that
// spreads small dictionary IDs across the hash space.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sketchJSON is the persisted form: the bitmap as base64 little-endian
// bytes, so a merged catalog state round-trips through the DFS manifest.
type sketchJSON struct {
	LogM uint   `json:"log_m"`
	Bits string `json:"bits"`
}

// MarshalJSON implements json.Marshaler.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 8*len(s.bits))
	for i, w := range s.bits {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	logM := uint(bits.TrailingZeros64(s.m))
	return json.Marshal(sketchJSON{LogM: logM, Bits: base64.StdEncoding.EncodeToString(buf)})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var sj sketchJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return err
	}
	raw, err := base64.StdEncoding.DecodeString(sj.Bits)
	if err != nil {
		return fmt.Errorf("stats: bad sketch bitmap: %w", err)
	}
	m := uint64(1) << sj.LogM
	if uint64(len(raw)) != m/8 {
		return fmt.Errorf("stats: sketch bitmap is %d bytes, want %d", len(raw), m/8)
	}
	s.m = m
	s.bits = make([]uint64, m/64)
	for i := range s.bits {
		s.bits[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return nil
}
