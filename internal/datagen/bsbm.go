// Package datagen builds the seeded synthetic datasets that stand in for
// the paper's testbeds:
//
//   - BSBM — the Berlin SPARQL Benchmark shape (products, producers,
//     features, offers, reviews) used for the B-series scalability queries;
//     productFeature is multi-valued, which drives the redundancy the
//     B-queries measure;
//   - LifeSci — a Bio2RDF-like life-sciences warehouse (genes, GO terms,
//     cross-references) with configurable high-multiplicity properties, for
//     the A-series queries;
//   - Infobox — a DBpedia-Infobox/BTC-like typed-entity dataset (scientists,
//     TV shows, cities) where >45% of properties are multi-valued, for the
//     C-series exploration queries.
//
// All generators are deterministic for a given seed and scale linearly with
// their size parameter.
package datagen

import (
	"fmt"
	"math/rand"

	"ntga/internal/rdf"
)

// BSBM namespace properties.
const (
	BSBMNS        = "http://bsbm.example.org/"
	RDFTypeIRI    = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSLabel     = BSBMNS + "label"
	BSBMComment   = BSBMNS + "comment"
	BSBMFeature   = BSBMNS + "productFeature"
	BSBMProducer  = BSBMNS + "producer"
	BSBMPropNum   = BSBMNS + "propertyNum"
	BSBMPropTex   = BSBMNS + "propertyTex"
	BSBMCountry   = BSBMNS + "country"
	BSBMProduct   = BSBMNS + "product"
	BSBMPrice     = BSBMNS + "price"
	BSBMVendor    = BSBMNS + "vendor"
	BSBMValidTo   = BSBMNS + "validTo"
	BSBMReviewFor = BSBMNS + "reviewFor"
	BSBMReviewer  = BSBMNS + "reviewer"
	BSBMRating    = BSBMNS + "rating"
	BSBMTitle     = BSBMNS + "title"
)

// BSBMConfig scales the BSBM-like generator.
type BSBMConfig struct {
	// Products is the primary scale factor (the paper's 1M/2M products are
	// scaled down to laptop size).
	Products int
	// FeaturesPerProduct is the multiplicity of the multi-valued
	// productFeature property (paper datasets average ~18; the redundancy
	// the B-queries measure grows with it). Zero defaults to 6.
	FeaturesPerProduct int
	// OffersPerProduct / ReviewsPerProduct: zero defaults to 2 / 1.
	OffersPerProduct  int
	ReviewsPerProduct int
	// Seed makes the dataset reproducible.
	Seed int64
}

func (c BSBMConfig) withDefaults() BSBMConfig {
	if c.Products == 0 {
		c.Products = 100
	}
	if c.FeaturesPerProduct == 0 {
		c.FeaturesPerProduct = 6
	}
	if c.OffersPerProduct == 0 {
		c.OffersPerProduct = 2
	}
	if c.ReviewsPerProduct == 0 {
		c.ReviewsPerProduct = 1
	}
	return c
}

// BSBM generates a BSBM-like graph.
func BSBM(cfg BSBMConfig) *rdf.Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := rdf.NewGraph()

	iri := func(kind string, n int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("%s%s%d", BSBMNS, kind, n))
	}
	prop := func(p string) rdf.Term { return rdf.NewIRI(p) }
	lit := func(format string, args ...any) rdf.Term {
		return rdf.NewLiteral(fmt.Sprintf(format, args...))
	}

	nProducers := cfg.Products/10 + 1
	nFeatures := cfg.Products*4 + 8
	nVendors := cfg.Products/20 + 2
	nPersons := cfg.Products/5 + 2
	nTypes := cfg.Products/25 + 3

	for i := 0; i < nProducers; i++ {
		p := iri("Producer", i)
		g.Add(p, prop(RDFSLabel), lit("producer %d", i))
		g.Add(p, prop(BSBMCountry), iri("Country", i%7))
		g.Add(p, prop(RDFTypeIRI), rdf.NewIRI(BSBMNS+"ProducerType"))
	}
	for i := 0; i < nFeatures; i++ {
		f := iri("Feature", i)
		g.Add(f, prop(RDFSLabel), lit("feature %d", i))
		g.Add(f, prop(RDFTypeIRI), rdf.NewIRI(BSBMNS+"FeatureType"))
	}

	for i := 0; i < cfg.Products; i++ {
		p := iri("Product", i)
		g.Add(p, prop(RDFSLabel), lit("product %d", i))
		g.Add(p, prop(BSBMComment), lit("comment for product %d lorem ipsum", i))
		g.Add(p, prop(RDFTypeIRI), iri("ProductType", i%nTypes))
		g.Add(p, prop(BSBMProducer), iri("Producer", rng.Intn(nProducers)))
		nf := 1 + rng.Intn(2*cfg.FeaturesPerProduct-1) // avg ≈ FeaturesPerProduct
		for j := 0; j < nf; j++ {
			g.Add(p, prop(BSBMFeature), iri("Feature", rng.Intn(nFeatures)))
		}
		for j := 1; j <= 3; j++ {
			g.Add(p, prop(fmt.Sprintf("%s%d", BSBMPropNum, j)), lit("%d", rng.Intn(2000)))
			g.Add(p, prop(fmt.Sprintf("%s%d", BSBMPropTex, j)), lit("tex %d-%d", i, j))
		}
	}

	offerID := 0
	for i := 0; i < cfg.Products; i++ {
		for j := 0; j < cfg.OffersPerProduct; j++ {
			o := iri("Offer", offerID)
			offerID++
			g.Add(o, prop(BSBMProduct), iri("Product", i))
			g.Add(o, prop(BSBMVendor), iri("Vendor", rng.Intn(nVendors)))
			g.Add(o, prop(BSBMPrice), lit("%d.%02d", 1+rng.Intn(999), rng.Intn(100)))
			g.Add(o, prop(BSBMValidTo), lit("2015-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)))
		}
	}

	reviewID := 0
	for i := 0; i < cfg.Products; i++ {
		for j := 0; j < cfg.ReviewsPerProduct; j++ {
			r := iri("Review", reviewID)
			reviewID++
			g.Add(r, prop(BSBMReviewFor), iri("Product", i))
			g.Add(r, prop(BSBMReviewer), iri("Person", rng.Intn(nPersons)))
			g.Add(r, prop(BSBMRating), lit("%d", 1+rng.Intn(10)))
			g.Add(r, prop(BSBMTitle), lit("review %d title", reviewID))
		}
	}
	for i := 0; i < nPersons; i++ {
		p := iri("Person", i)
		g.Add(p, prop(RDFSLabel), lit("person %d", i))
		g.Add(p, prop(BSBMCountry), iri("Country", i%7))
	}

	g.Dedup()
	return g
}
