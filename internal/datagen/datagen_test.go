package datagen

import (
	"testing"

	"ntga/internal/rdf"
)

func TestBSBMDeterministic(t *testing.T) {
	a := BSBM(BSBMConfig{Products: 50, Seed: 7})
	b := BSBM(BSBMConfig{Products: 50, Seed: 7})
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	c := BSBM(BSBMConfig{Products: 50, Seed: 8})
	if a.Len() == 0 || c.Len() == 0 {
		t.Fatal("empty graphs")
	}
}

func TestBSBMScales(t *testing.T) {
	small := BSBM(BSBMConfig{Products: 20, Seed: 1})
	large := BSBM(BSBMConfig{Products: 200, Seed: 1})
	if large.Len() < 5*small.Len() {
		t.Errorf("scaling too shallow: %d vs %d", small.Len(), large.Len())
	}
}

func TestBSBMShape(t *testing.T) {
	g := BSBM(BSBMConfig{Products: 40, Seed: 3})
	// productFeature must be multi-valued on average.
	feat, ok := g.Dict.Lookup(rdf.NewIRI(BSBMFeature))
	if !ok {
		t.Fatal("productFeature absent")
	}
	mult := g.PropertyMultiplicity()
	if mult[feat] < 3 {
		t.Errorf("productFeature max multiplicity = %d, want >= 3", mult[feat])
	}
	// Offers must reference products (O-S join support).
	prodProp := g.Dict.MustLookup(rdf.NewIRI(BSBMProduct))
	found := false
	bySubject := make(map[rdf.ID]bool)
	for _, tr := range g.Triples {
		bySubject[tr.S] = true
	}
	for _, tr := range g.Triples {
		if tr.P == prodProp && bySubject[tr.O] {
			found = true
			break
		}
	}
	if !found {
		t.Error("no offer→product link resolves to a product subject")
	}
}

func TestLifeSciAnchorsAndMultiplicity(t *testing.T) {
	g := LifeSci(LifeSciConfig{Genes: 60, MaxMultiplicity: 12, Seed: 2})
	for _, anchor := range []string{"nur77", "hexokinase"} {
		if _, ok := g.Dict.Lookup(rdf.NewLiteral(anchor)); !ok {
			t.Errorf("anchor literal %q missing", anchor)
		}
	}
	xgo := g.Dict.MustLookup(rdf.NewIRI(BioXGO))
	if got := g.PropertyMultiplicity()[xgo]; got != 12 {
		t.Errorf("xGO max multiplicity = %d, want 12", got)
	}
}

func TestLifeSciDeterministic(t *testing.T) {
	a := LifeSci(LifeSciConfig{Genes: 30, Seed: 5})
	b := LifeSci(LifeSciConfig{Genes: 30, Seed: 5})
	if a.Len() != b.Len() {
		t.Errorf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
}

func TestInfoboxShape(t *testing.T) {
	g := Infobox(InfoboxConfig{Entities: 120, Seed: 4})
	// C2's constant subject must exist with several properties.
	sop, ok := g.Dict.Lookup(rdf.NewIRI(DBSopranos))
	if !ok {
		t.Fatal("The_Sopranos missing")
	}
	n := 0
	for _, tr := range g.Triples {
		if tr.S == sop {
			n++
		}
	}
	if n < 5 {
		t.Errorf("Sopranos has %d triples, want >= 5", n)
	}
	// Scientists must exist and link to cities.
	if _, ok := g.Dict.Lookup(rdf.NewIRI(DBScientistType)); !ok {
		t.Error("Scientist type missing")
	}
	// The paper: >45% of properties multi-valued.
	if share := MultiValuedShare(g); share < 0.45 {
		t.Errorf("multi-valued property share = %.2f, want >= 0.45", share)
	}
}

func TestMultiValuedShareEdgeCases(t *testing.T) {
	g := rdf.NewGraph()
	if MultiValuedShare(g) != 0 {
		t.Error("empty graph share != 0")
	}
	g.Add(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o1"))
	g.Add(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o2"))
	g.Add(rdf.NewIRI("s"), rdf.NewIRI("q"), rdf.NewIRI("o1"))
	if got := MultiValuedShare(g); got != 0.5 {
		t.Errorf("share = %v, want 0.5", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	if g := BSBM(BSBMConfig{}); g.Len() == 0 {
		t.Error("default BSBM empty")
	}
	if g := LifeSci(LifeSciConfig{}); g.Len() == 0 {
		t.Error("default LifeSci empty")
	}
	if g := Infobox(InfoboxConfig{}); g.Len() == 0 {
		t.Error("default Infobox empty")
	}
}
