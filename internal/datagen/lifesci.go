package datagen

import (
	"fmt"
	"math/rand"

	"ntga/internal/rdf"
)

// LifeSci namespace properties (Bio2RDF-flavoured).
const (
	BioNS        = "http://bio2rdf.example.org/"
	BioLabel     = BioNS + "label"
	BioSynonym   = BioNS + "synonym"
	BioXGO       = BioNS + "xGO"
	BioXRef      = BioNS + "xRef"
	BioOrganism  = BioNS + "organism"
	BioNamespace = BioNS + "namespace"
	BioSource    = BioNS + "source"
	BioInteracts = BioNS + "interactsWith"
	BioEncodedBy = BioNS + "encodedBy"
	BioGeneType  = BioNS + "Gene"
	BioGOType    = BioNS + "GOTerm"
	BioRefType   = BioNS + "Reference"
)

// LifeSciConfig scales the Bio2RDF-like generator.
type LifeSciConfig struct {
	// Genes is the primary scale factor.
	Genes int
	// MaxMultiplicity bounds the per-gene multiplicity of the xGO and xRef
	// properties. The paper reports Uniprot multiplicities up to 13K; the
	// redundancy of unbound-property queries grows with this knob. Zero
	// defaults to 8.
	MaxMultiplicity int
	// Seed makes the dataset reproducible.
	Seed int64
}

func (c LifeSciConfig) withDefaults() LifeSciConfig {
	if c.Genes == 0 {
		c.Genes = 100
	}
	if c.MaxMultiplicity == 0 {
		c.MaxMultiplicity = 8
	}
	return c
}

// LifeSci generates a Bio2RDF-like life-sciences graph. Two named genes
// anchor the paper's A-series queries: "nur77" (A5) and "hexokinase" (A6).
func LifeSci(cfg LifeSciConfig) *rdf.Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := rdf.NewGraph()

	iri := func(kind string, n int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("%s%s%d", BioNS, kind, n))
	}
	prop := func(p string) rdf.Term { return rdf.NewIRI(p) }
	lit := func(format string, args ...any) rdf.Term {
		return rdf.NewLiteral(fmt.Sprintf(format, args...))
	}

	nGO := cfg.Genes/2 + 10
	nRefs := cfg.Genes + 10
	nOrganisms := 5

	for i := 0; i < nGO; i++ {
		t := iri("go", i)
		g.Add(t, prop(BioLabel), lit("go term %d biological process", i))
		g.Add(t, prop(RDFTypeIRI), rdf.NewIRI(BioGOType))
		g.Add(t, prop(BioNamespace), rdf.NewIRI(BioNS+"ns/"+[]string{"process", "function", "component"}[i%3]))
	}
	for i := 0; i < nRefs; i++ {
		r := iri("ref", i)
		g.Add(r, prop(BioSource), rdf.NewIRI(BioNS+"db/"+[]string{"uniprot", "embl", "pdb", "omim"}[i%4]))
		g.Add(r, prop(RDFTypeIRI), rdf.NewIRI(BioRefType))
		if i%2 == 0 {
			g.Add(r, prop(BioLabel), lit("reference %d", i))
		}
	}

	geneName := func(i int) string {
		switch i {
		case 0:
			return "nur77"
		case 1:
			return "hexokinase"
		default:
			return fmt.Sprintf("gene %d", i)
		}
	}
	for i := 0; i < cfg.Genes; i++ {
		gene := iri("gene", i)
		g.Add(gene, prop(BioLabel), lit("%s", geneName(i)))
		g.Add(gene, prop(RDFTypeIRI), rdf.NewIRI(BioGeneType))
		g.Add(gene, prop(BioOrganism), iri("taxon", i%nOrganisms))
		for j := 0; j < 1+rng.Intn(3); j++ {
			g.Add(gene, prop(BioSynonym), lit("syn-%d-%d", i, j))
		}
		// High-multiplicity cross-references: a few genes get the maximum,
		// the rest a random slice — the skew real warehouses exhibit.
		mult := 1 + rng.Intn(cfg.MaxMultiplicity)
		if i%17 == 0 {
			mult = cfg.MaxMultiplicity
		}
		for j := 0; j < mult; j++ {
			g.Add(gene, prop(BioXGO), iri("go", rng.Intn(nGO)))
		}
		for j := 0; j < 1+mult/2; j++ {
			g.Add(gene, prop(BioXRef), iri("ref", rng.Intn(nRefs)))
		}
		if i > 0 && rng.Intn(3) == 0 {
			g.Add(gene, prop(BioInteracts), iri("gene", rng.Intn(i)))
		}
		// The anchor genes — gene0 ("nur77", query A5) and gene1
		// ("hexokinase", query A6) — get guaranteed inbound relations so
		// those queries are never vacuously empty at any seed.
		if i > 1 && i%5 == 2 {
			g.Add(gene, prop(BioInteracts), iri("gene", 1))
		}
		if i > 1 && i%7 == 3 {
			g.Add(gene, prop(BioInteracts), iri("gene", 0))
		}
	}
	// Some proteins encoded by genes, giving unbound patterns an extra
	// property type to discover.
	for i := 0; i < cfg.Genes/3; i++ {
		p := iri("protein", i)
		g.Add(p, prop(BioEncodedBy), iri("gene", rng.Intn(cfg.Genes)))
		g.Add(p, prop(BioLabel), lit("protein %d", i))
	}

	g.Dedup()
	return g
}
