package datagen

import (
	"fmt"
	"math/rand"

	"ntga/internal/rdf"
)

// Infobox namespace properties (DBpedia-flavoured).
const (
	DBNS            = "http://dbpedia.example.org/"
	DBName          = DBNS + "name"
	DBBirthPlace    = DBNS + "birthPlace"
	DBField         = DBNS + "field"
	DBKnownFor      = DBNS + "knownFor"
	DBAward         = DBNS + "award"
	DBStarring      = DBNS + "starring"
	DBGenre         = DBNS + "genre"
	DBNetwork       = DBNS + "network"
	DBCountry       = DBNS + "country"
	DBPopulation    = DBNS + "population"
	DBScientistType = DBNS + "Scientist"
	DBTVShowType    = DBNS + "TVShow"
	DBCityType      = DBNS + "City"
	DBPersonType    = DBNS + "Person"
	// DBSopranos is the constant-subject entity of query C2.
	DBSopranos = DBNS + "The_Sopranos"
)

// InfoboxConfig scales the DBpedia-Infobox-like generator.
type InfoboxConfig struct {
	// Entities is the primary scale factor (scientists + shows + misc).
	Entities int
	// Seed makes the dataset reproducible.
	Seed int64
}

func (c InfoboxConfig) withDefaults() InfoboxConfig {
	if c.Entities == 0 {
		c.Entities = 150
	}
	return c
}

// Infobox generates a DBpedia-Infobox-like typed-entity graph. More than
// 45% of its properties are multi-valued (knownFor, award, starring,
// genre), matching the paper's characterization of DBInfobox and BTC-09.
func Infobox(cfg InfoboxConfig) *rdf.Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := rdf.NewGraph()

	iri := func(kind string, n int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("%s%s%d", DBNS, kind, n))
	}
	prop := func(p string) rdf.Term { return rdf.NewIRI(p) }
	lit := func(format string, args ...any) rdf.Term {
		return rdf.NewLiteral(fmt.Sprintf(format, args...))
	}

	nCities := cfg.Entities/10 + 5
	nScientists := cfg.Entities / 3
	nShows := cfg.Entities / 10
	nActors := cfg.Entities / 5

	for i := 0; i < nCities; i++ {
		c := iri("City", i)
		g.Add(c, prop(DBName), lit("city %d", i))
		g.Add(c, prop(RDFTypeIRI), rdf.NewIRI(DBCityType))
		g.Add(c, prop(DBCountry), iri("Country", i%9))
		g.Add(c, prop(DBPopulation), lit("%d", 10000+rng.Intn(5000000)))
		for j := 0; j < 1+i%3; j++ { // twin cities are multi-valued
			g.Add(c, prop(DBNS+"twinCity"), iri("City", (i+j+1)%nCities))
		}
	}
	for i := 0; i < nActors; i++ {
		a := iri("Actor", i)
		g.Add(a, prop(DBName), lit("actor %d", i))
		g.Add(a, prop(RDFTypeIRI), rdf.NewIRI(DBPersonType))
		g.Add(a, prop(DBBirthPlace), iri("City", rng.Intn(nCities)))
	}
	for i := 0; i < nScientists; i++ {
		s := iri("Scientist", i)
		g.Add(s, prop(DBName), lit("scientist %d", i))
		g.Add(s, prop(RDFTypeIRI), rdf.NewIRI(DBScientistType))
		g.Add(s, prop(DBBirthPlace), iri("City", rng.Intn(nCities)))
		g.Add(s, prop(DBField), rdf.NewIRI(DBNS+"field/"+[]string{"physics", "biology", "chemistry", "math"}[i%4]))
		if i%3 == 0 { // interdisciplinary scientists have several fields
			g.Add(s, prop(DBField), rdf.NewIRI(DBNS+"field/"+[]string{"biology", "chemistry", "math", "physics"}[i%4]))
		}
		for j := 0; j < 1+rng.Intn(3); j++ {
			g.Add(s, prop(DBKnownFor), lit("discovery %d-%d", i, j))
		}
		for j := 0; j < rng.Intn(3); j++ {
			g.Add(s, prop(DBAward), iri("Award", rng.Intn(12)))
		}
	}
	// The Sopranos, with the full infobox C2 retrieves.
	sop := rdf.NewIRI(DBSopranos)
	g.Add(sop, prop(DBName), lit("The Sopranos"))
	g.Add(sop, prop(RDFTypeIRI), rdf.NewIRI(DBTVShowType))
	g.Add(sop, prop(DBGenre), rdf.NewIRI(DBNS+"genre/drama"))
	g.Add(sop, prop(DBGenre), rdf.NewIRI(DBNS+"genre/crime"))
	g.Add(sop, prop(DBNetwork), rdf.NewIRI(DBNS+"HBO"))
	for j := 0; j < 6; j++ {
		g.Add(sop, prop(DBStarring), iri("Actor", j%nActors))
	}
	for i := 0; i < nShows; i++ {
		sh := iri("Show", i)
		g.Add(sh, prop(DBName), lit("show %d", i))
		g.Add(sh, prop(RDFTypeIRI), rdf.NewIRI(DBTVShowType))
		g.Add(sh, prop(DBGenre), rdf.NewIRI(DBNS+"genre/"+[]string{"drama", "comedy", "news"}[i%3]))
		for j := 0; j < 1+rng.Intn(4); j++ {
			g.Add(sh, prop(DBStarring), iri("Actor", rng.Intn(nActors)))
		}
	}
	// Untyped misc entities: exploration queries must cope with noise.
	for i := 0; i < cfg.Entities/4; i++ {
		m := iri("Misc", i)
		g.Add(m, prop(DBName), lit("misc %d", i))
		for j := 0; j < 1+rng.Intn(3); j++ {
			g.Add(m, prop(DBNS+"related"), iri("Misc", rng.Intn(cfg.Entities/4+1)))
		}
	}

	g.Dedup()
	return g
}

// MultiValuedShare reports the fraction of (subject, property) pairs with
// more than one object — the paper's "more than 45% of properties are
// multi-valued" statistic.
func MultiValuedShare(g *rdf.Graph) float64 {
	counts := make(map[[2]rdf.ID]int)
	for _, t := range g.Triples {
		counts[[2]rdf.ID{t.S, t.P}]++
	}
	if len(counts) == 0 {
		return 0
	}
	multi := 0
	props := make(map[rdf.ID]bool)
	multiProps := make(map[rdf.ID]bool)
	for sp, n := range counts {
		props[sp[1]] = true
		if n > 1 {
			multi++
			multiProps[sp[1]] = true
		}
	}
	return float64(len(multiProps)) / float64(len(props))
}
