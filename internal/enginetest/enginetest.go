// Package enginetest provides shared helpers for testing the distributed
// query engines against the reference engine: deterministic datasets,
// random graph generation, and a run-and-compare harness.
package enginetest

import (
	"fmt"
	"math/rand"
	"testing"

	"ntga/internal/engine"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/refengine"
	"ntga/internal/sparql"
)

// Ex returns an IRI in the test namespace.
func Ex(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

// BioGraph builds a small life-sciences-flavoured dataset exercising
// multi-valued properties, typed objects, literals, and cross-links — rich
// enough that every catalog query shape has non-trivial results.
func BioGraph() *rdf.Graph {
	g := rdf.NewGraph()
	add := func(s, p string, o rdf.Term) { g.Add(Ex(s), Ex(p), o) }
	for i := 0; i < 8; i++ {
		gene := fmt.Sprintf("gene%d", i)
		add(gene, "label", rdf.NewLiteral(fmt.Sprintf("gene %d label", i)))
		add(gene, "type", Ex("Gene"))
		// Multi-valued xGO with varying multiplicity (0..3).
		for j := 0; j < i%4; j++ {
			add(gene, "xGO", Ex(fmt.Sprintf("go%d", (i+j)%5)))
		}
		if i%2 == 0 {
			add(gene, "synonym", rdf.NewLiteral(fmt.Sprintf("syn-%d", i)))
		}
		if i%3 == 0 {
			add(gene, "xRef", Ex(fmt.Sprintf("ref%d", i)))
		}
	}
	for i := 0; i < 5; i++ {
		goTerm := fmt.Sprintf("go%d", i)
		add(goTerm, "label", rdf.NewLiteral(fmt.Sprintf("go term %d", i)))
		add(goTerm, "type", Ex("GOTerm"))
		if i%2 == 0 {
			add(goTerm, "namespace", Ex("biological_process"))
		}
	}
	add("gene1", "label", rdf.NewLiteral("hexokinase"))
	add("ref0", "source", Ex("uniprot"))
	add("ref3", "source", Ex("uniprot"))
	add("ref6", "source", Ex("embl"))
	g.Dedup()
	return g
}

// RandomGraph builds a seeded random graph with tunable shape.
func RandomGraph(seed int64, nTriples, nSubj, nProp, nObj int) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	for i := 0; i < nTriples; i++ {
		g.Add(
			Ex(fmt.Sprintf("s%d", rng.Intn(nSubj))),
			Ex(fmt.Sprintf("p%d", rng.Intn(nProp))),
			Ex(fmt.Sprintf("o%d", rng.Intn(nObj))),
		)
	}
	// Cross-link some objects as subjects so O-S joins have matches.
	for i := 0; i < nObj; i += 2 {
		g.Add(Ex(fmt.Sprintf("o%d", i)), Ex("p0"), Ex(fmt.Sprintf("o%d", (i+1)%nObj)))
		g.Add(Ex(fmt.Sprintf("o%d", i)), Ex(fmt.Sprintf("p%d", rng.Intn(nProp))), Ex("leaf"))
	}
	g.Dedup()
	return g
}

// NewMR builds a MapReduce engine over a roomy in-memory cluster.
func NewMR() *mapreduce.Engine {
	return mapreduce.NewEngine(
		hdfs.New(hdfs.Config{Nodes: 4, BlockSize: 1 << 16}),
		mapreduce.EngineConfig{SplitRecords: 64, DefaultReducers: 4},
	)
}

// NewSpillMR builds an engine like NewMR but with a bounded map sort buffer,
// so map output spills sorted runs to node-local disk and reducers consume an
// external merge. Used to prove the bounded-memory path is behaviorally
// identical to the in-memory one.
func NewSpillMR(sortBufferBytes int64) *mapreduce.Engine {
	return mapreduce.NewEngine(
		hdfs.New(hdfs.Config{Nodes: 4, BlockSize: 1 << 16}),
		mapreduce.EngineConfig{SplitRecords: 64, DefaultReducers: 4,
			SortBufferBytes: sortBufferBytes},
	)
}

// NewTinyMR builds an engine over a capacity-limited cluster for failure
// injection.
func NewTinyMR(capacityPerNode int64, replication int) *mapreduce.Engine {
	return mapreduce.NewEngine(
		hdfs.New(hdfs.Config{Nodes: 2, CapacityPerNode: capacityPerNode,
			BlockSize: 512, Replication: replication}),
		mapreduce.EngineConfig{SplitRecords: 64, DefaultReducers: 4},
	)
}

// Compile parses and compiles a query against the graph's dictionary.
func Compile(t *testing.T, g *rdf.Graph, src string) *query.Query {
	t.Helper()
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	q, err := query.Compile(pq, g.Dict)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return q
}

// RunAndCompare loads the graph, runs the engine, and fails the test if the
// engine's rows differ from the reference engine's. The result is returned
// for metric assertions.
func RunAndCompare(t *testing.T, eng engine.QueryEngine, g *rdf.Graph, src string) *engine.Result {
	t.Helper()
	return RunAndCompareOn(t, NewMR(), eng, g, src)
}

// RunAndCompareOn is RunAndCompare over a caller-built cluster (e.g. one with
// a bounded sort buffer from NewSpillMR).
func RunAndCompareOn(t *testing.T, mr *mapreduce.Engine, eng engine.QueryEngine, g *rdf.Graph, src string) *engine.Result {
	t.Helper()
	const input = "data/triples"
	if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}
	q := Compile(t, g, src)
	want := refengine.Evaluate(q, g)
	res, err := eng.Run(mr, q, input)
	if err != nil {
		t.Fatalf("%s.Run: %v", eng.Name(), err)
	}
	if !query.RowsEqual(want, res.Rows) {
		t.Errorf("%s rows differ from reference on %q:\n%s",
			eng.Name(), src, query.DiffRows(want, res.Rows, 8))
	}
	// Engines must clean up their intermediates: only the input remains.
	if files := mr.DFS().List(); len(files) != 1 || files[0] != input {
		t.Errorf("%s left files behind: %v", eng.Name(), files)
	}
	return res
}
