package bench

import (
	"fmt"
	"time"

	"ntga/internal/datagen"
	"ntga/internal/engine"
	"ntga/internal/ntgamr"
	"ntga/internal/query"
	"ntga/internal/relmr"
	"ntga/internal/sparql"
	"ntga/internal/stats"
)

// AblationPhiM sweeps the partial β-unnest partition range φ_m on the
// unbound-object join query B1 (the paper fixes φ_m = 1K; this shows the
// trade-off it navigates: small m → fewer, bigger partial TGs but more
// reduce-side work per bucket; large m → degenerates to full unnest).
func AblationPhiM(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	var engines []engine.QueryEngine
	for _, m := range []int{1, 16, 256, 1024, 8192} {
		e := ntgamr.New(ntgamr.LazyPartial, m)
		engines = append(engines, named{QueryEngine: e, name: fmt.Sprintf("φ%d", m)})
	}
	engines = append(engines, named{QueryEngine: ntgamr.New(ntgamr.LazyFull, 0), name: "full-unnest"})
	reports, err := runSeries(ClusterSpec{}, "bsbm", opt, []string{"B1"}, engines)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{Title: "Ablation — φ_m partition range on B1",
		Header: []string{"engine", "time", "join shuffle", "join time", "partial TGs"}}
	for _, qr := range reports {
		for _, r := range qr.Runs {
			last := lastJob(qr, r.Engine)
			t.AddRow(r.Engine, okOrX(r, ms(r.Duration)), stats.FormatBytes(last.shuffle),
				ms(last.dur), stats.FormatCount(r.Counters[ntgamr.CounterPartialTGs]))
		}
	}
	return &Report{ID: "abl-phim", Title: "Partial β-unnest partition-range sweep",
		Tables: []*stats.Table{t}, Queries: reports,
		Notes: []string{"expected shape: shuffle bytes grow with φ_m toward the full-unnest volume"}}, nil
}

// AblationMultiplicity varies the LifeSci high-multiplicity knob and
// contrasts eager vs lazy unnesting — redundancy (and the lazy advantage)
// should grow with multiplicity.
func AblationMultiplicity(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	cq, err := Lookup("A4")
	if err != nil {
		return nil, err
	}
	t := &stats.Table{Title: "Ablation — property multiplicity (query A4)",
		Header: []string{"max mult", "engine", "time", "HDFS writes", "out recs"}}
	var all []QueryReport
	for _, mult := range []int{2, 8, 32} {
		g := datagen.LifeSci(datagen.LifeSciConfig{
			Genes: 120 * opt.Scale, MaxMultiplicity: mult, Seed: opt.Seed})
		qr, err := RunQuery(ClusterSpec{}, g, cq, NTGAEngines())
		if err != nil {
			return nil, err
		}
		all = append(all, qr)
		for _, r := range qr.Runs {
			t.AddRow(mult, r.Engine, okOrX(r, ms(r.Duration)),
				okOrX(r, stats.FormatBytes(r.WriteBytes)), okOrX(r, stats.FormatCount(r.OutputRecords)))
		}
	}
	return &Report{ID: "abl-mult", Title: "Eager vs lazy under growing property multiplicity",
		Tables: []*stats.Table{t}, Queries: all,
		Notes: []string{"expected shape: eager writes grow superlinearly with multiplicity; lazy stays near-flat"}}, nil
}

// AblationReplication varies dfs.replication and reports physical write
// amplification for one representative query per engine family.
func AblationReplication(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	cq, err := Lookup("B1")
	if err != nil {
		return nil, err
	}
	g, err := Dataset("bsbm", opt.Scale, opt.Seed)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{Title: "Ablation — replication factor (query B1)",
		Header: []string{"replication", "engine", "logical writes", "peak disk"}}
	var all []QueryReport
	for _, rep := range []int{1, 2, 3} {
		qr, err := RunQuery(ClusterSpec{Replication: rep}, g, cq, AllEngines())
		if err != nil {
			return nil, err
		}
		all = append(all, qr)
		for _, r := range qr.Runs {
			t.AddRow(rep, r.Engine, okOrX(r, stats.FormatBytes(r.WriteBytes)),
				okOrX(r, stats.FormatBytes(r.PeakDFS)))
		}
	}
	return &Report{ID: "abl-repl", Title: "Write amplification under replication",
		Tables: []*stats.Table{t}, Queries: all,
		Notes: []string{"expected shape: peak disk scales with replication; relational engines amplify the most bytes"}}, nil
}

// AblationSelectivity contrasts the selective and unselective variants of
// the case-study queries (Q*a vs Q*b) across the three groupings.
func AblationSelectivity(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	reports, err := runSeries(ClusterSpec{}, "bsbm", opt,
		[]string{"Q2a", "Q2b", "Q3a", "Q3b"}, Fig3Engines())
	if err != nil {
		return nil, err
	}
	t := &stats.Table{Title: "Ablation — join selectivity (filtered vs unfiltered case-study queries)",
		Header: []string{"query", "engine", "time", "shuffle", "out recs"}}
	for _, qr := range reports {
		for _, r := range qr.Runs {
			t.AddRow(qr.Query.ID, r.Engine, okOrX(r, ms(r.Duration)),
				okOrX(r, stats.FormatBytes(r.ShuffleBytes)), okOrX(r, stats.FormatCount(r.OutputRecords)))
		}
	}
	return &Report{ID: "abl-select", Title: "Selectivity sensitivity of the three groupings",
		Tables: []*stats.Table{t}, Queries: reports,
		Notes: []string{"expected shape: selective filters shrink every engine's footprint; grouping advantages persist"}}, nil
}

// AblationAggregation implements the paper's stated future work —
// "unbound-property queries with aggregation constraints" — and measures
// its natural NTGA advantage: COUNT(*) over a lazily-nested result needs no
// β-unnest at all (the count is the product of candidate-set sizes), while
// the relational engines must materialize every expanded tuple just to
// count it.
func AblationAggregation(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	g, err := Dataset("bsbm", opt.Scale, opt.Seed)
	if err != nil {
		return nil, err
	}
	countB4 := CatalogQuery{
		ID: "B4-count", Dataset: "bsbm",
		Description: "COUNT(*) over B4 (non-joining unbound pattern)",
		Src: bsbmPrefix + `SELECT (COUNT(*) AS ?n) WHERE {
  ?o bsbm:product ?prod . ?o bsbm:price ?price . ?o bsbm:vendor ?v .
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f . ?prod ?p ?any .
}`,
	}
	countB1 := CatalogQuery{
		ID: "B1-count", Dataset: "bsbm",
		Description: "COUNT(*) over B1 (join on unbound object)",
		Src: bsbmPrefix + `SELECT (COUNT(*) AS ?n) WHERE {
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f . ?prod ?p ?x .
  ?x bsbm:label ?xl . ?x rdf:type bsbm:FeatureType .
}`,
	}
	t := &stats.Table{Title: "Ablation — COUNT(*) aggregation over unbound-property queries",
		Header: []string{"query", "engine", "count", "time", "HDFS writes", "out recs"}}
	var all []QueryReport
	for _, cq := range []CatalogQuery{countB1, countB4} {
		qr, err := RunQuery(ClusterSpec{}, g, cq, AllEnginesScaled(opt.Scale))
		if err != nil {
			return nil, err
		}
		all = append(all, qr)
		for _, r := range qr.Runs {
			t.AddRow(cq.ID, r.Engine, okOrX(r, stats.FormatCount(r.Rows)), okOrX(r, ms(r.Duration)),
				okOrX(r, stats.FormatBytes(r.WriteBytes)), okOrX(r, stats.FormatCount(r.OutputRecords)))
		}
	}
	return &Report{ID: "abl-agg", Title: "Aggregation over the implicit representation (paper future work)",
		Tables: []*stats.Table{t}, Queries: all,
		Notes: []string{"expected shape: identical counts everywhere; NTGA-Lazy materializes orders of magnitude fewer records"}}, nil
}

// AblationSortBuffer sweeps the map-side sort-buffer budget on B1: an
// unbounded buffer never touches local disk, while shrinking budgets force
// sorted spill runs and external merge passes — trading task memory for
// local-disk I/O exactly as Hadoop's io.sort.mb does. Results must be
// identical at every budget; only the spill profile moves.
func AblationSortBuffer(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	cq, err := Lookup("B1")
	if err != nil {
		return nil, err
	}
	g, err := Dataset("bsbm", opt.Scale, opt.Seed)
	if err != nil {
		return nil, err
	}
	engines := []engine.QueryEngine{
		relmr.NewHive(),
		ntgamr.New(ntgamr.LazyAuto, PhiMForScale(opt.Scale)),
	}
	t := &stats.Table{Title: "Ablation — map sort-buffer budget (query B1)",
		Header: []string{"sort buffer", "engine", "time", "spilled", "spilled recs", "merge passes", "peak buffer"}}
	var all []QueryReport
	baseline := make(map[string]uint64) // engine -> rows hash at unbounded budget
	for _, budget := range []int64{0, 256 << 10, 64 << 10, 16 << 10} {
		qr, err := RunQuery(ClusterSpec{SortBufferBytes: budget}, g, cq, engines)
		if err != nil {
			return nil, err
		}
		all = append(all, qr)
		label := "∞"
		if budget > 0 {
			label = stats.FormatBytes(budget)
		}
		for _, r := range qr.Runs {
			if !r.OK {
				return nil, fmt.Errorf("bench: abl-sort %s failed at budget %d: %s", r.Engine, budget, r.Err)
			}
			if budget == 0 {
				baseline[r.Engine] = r.RowsHash
				if r.SpilledBytes != 0 || r.MergePasses != 0 {
					return nil, fmt.Errorf("bench: abl-sort %s spilled %d bytes with an unbounded buffer",
						r.Engine, r.SpilledBytes)
				}
			} else if r.RowsHash != baseline[r.Engine] {
				return nil, fmt.Errorf("bench: abl-sort %s results changed under budget %d", r.Engine, budget)
			}
			t.AddRow(label, r.Engine, ms(r.Duration), stats.FormatBytes(r.SpilledBytes),
				stats.FormatCount(r.SpilledRecords), r.MergePasses, stats.FormatBytes(r.PeakSortBuffer))
		}
	}
	return &Report{ID: "abl-sort", Title: "Bounded-memory shuffle: sort-buffer sweep",
		Tables: []*stats.Table{t}, Queries: all,
		Notes: []string{"expected shape: identical results at every budget; spill bytes and merge passes grow as the buffer shrinks while peak task memory falls"}}, nil
}

// AblationScanSharing contrasts running the A-series exploration queries
// individually against a single shared-scan batch (ntgamr.RunBatch): the
// batch scans the triple relation once for all queries, extending the
// NTGA scan-sharing idea across queries.
func AblationScanSharing(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	g, err := Dataset("lifesci", opt.Scale, opt.Seed)
	if err != nil {
		return nil, err
	}
	ids := []string{"A1", "A2", "A3", "A4", "A5", "A6"}
	var qs []*query.Query
	for _, id := range ids {
		cq, err := Lookup(id)
		if err != nil {
			return nil, err
		}
		pq, err := sparql.Parse(cq.Src)
		if err != nil {
			return nil, err
		}
		q, err := query.Compile(pq, g.Dict)
		if err != nil {
			return nil, err
		}
		qs = append(qs, q)
	}
	lazy := ntgamr.New(ntgamr.LazyAuto, PhiMForScale(opt.Scale))

	spec := ClusterSpec{}.withDefaults()
	mr := spec.newCluster(GraphBytes(g))
	const input = "data/triples"
	if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
		return nil, err
	}

	// Individual runs.
	var sepReads, sepShuffle, sepWrites int64
	var sepCycles int
	var sepDur time.Duration
	sepRows := make([]int64, len(qs))
	for qi, q := range qs {
		res, err := lazy.Run(mr, q, input)
		if err != nil {
			return nil, fmt.Errorf("bench: separate run %s: %w", ids[qi], err)
		}
		sepReads += res.Workflow.TotalMapInputBytes()
		sepShuffle += res.Workflow.TotalMapOutputBytes()
		sepWrites += res.Workflow.TotalReduceOutputBytes()
		sepCycles += res.Workflow.Cycles
		sepDur += res.Workflow.Duration
		sepRows[qi] = int64(len(res.Rows))
	}

	// Shared-scan batch.
	batch, err := lazy.RunBatch(mr, qs, input)
	if err != nil {
		return nil, fmt.Errorf("bench: batch run: %w", err)
	}
	for qi := range qs {
		got := int64(len(batch.Results[qi].Rows))
		if got != sepRows[qi] {
			return nil, fmt.Errorf("bench: batch %s returned %d rows, separate run %d",
				ids[qi], got, sepRows[qi])
		}
	}

	t := &stats.Table{Title: "Ablation — shared-scan batch vs individual runs (A1–A6, NTGA-Lazy)",
		Header: []string{"mode", "MR cycles", "HDFS reads", "shuffle", "HDFS writes", "time"}}
	t.AddRow("separate", sepCycles, stats.FormatBytes(sepReads), stats.FormatBytes(sepShuffle),
		stats.FormatBytes(sepWrites), ms(sepDur))
	t.AddRow("batch", batch.Workflow.Cycles, stats.FormatBytes(batch.Workflow.TotalMapInputBytes()),
		stats.FormatBytes(batch.Workflow.TotalMapOutputBytes()),
		stats.FormatBytes(batch.Workflow.TotalReduceOutputBytes()), ms(batch.Workflow.Duration))
	return &Report{ID: "abl-share", Title: "Multi-query scan sharing",
		Tables: []*stats.Table{t},
		Notes:  []string{"expected shape: the batch scans the triple relation once instead of six times and needs fewer total cycles"}}, nil
}

// named wraps an engine with a display name override (for sweeps where the
// same engine type appears with different parameters).
type named struct {
	engine.QueryEngine
	name string
}

// Name implements engine.QueryEngine.
func (n named) Name() string { return n.name }
