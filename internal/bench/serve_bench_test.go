package bench

import (
	"fmt"
	"testing"
	"time"
)

// benchmarkServe drives b.N requests from `clients` concurrent workers over
// the serving workload, reporting throughput (qps) and p50/p95 latency in
// milliseconds alongside the standard ns/op.
func benchmarkServe(b *testing.B, clients int, noCache bool) {
	s, qs, err := newServeHarness(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if !noCache {
		// Warm the result cache so the sweep measures the hit path.
		if _, _, err := driveServe(s, qs, 1, len(qs), false); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	lats, wall, err := driveServe(s, qs, clients, b.N, noCache)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/wall.Seconds(), "qps")
	b.ReportMetric(float64(percentile(lats, 50))/float64(time.Millisecond), "p50-ms")
	b.ReportMetric(float64(percentile(lats, 95))/float64(time.Millisecond), "p95-ms")
}

func BenchmarkServe_NoCache(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients-%d", clients), func(b *testing.B) {
			benchmarkServe(b, clients, true)
		})
	}
}

func BenchmarkServe_Cached(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients-%d", clients), func(b *testing.B) {
			benchmarkServe(b, clients, false)
		})
	}
}
