package bench

import (
	"fmt"
	"sort"
	"time"

	"ntga/internal/engine"
	"ntga/internal/ntgamr"
	"ntga/internal/relmr"
	"ntga/internal/stats"
)

// Options tunes an experiment run.
type Options struct {
	// Scale multiplies dataset sizes (1 = CI scale, seconds per figure).
	Scale int
	// Seed feeds the dataset generators.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Report is one reproduced figure/table.
type Report struct {
	ID      string
	Title   string
	Notes   []string
	Tables  []*stats.Table
	Queries []QueryReport
}

// Render returns the report as text.
func (r *Report) Render() string {
	out := fmt.Sprintf("==== %s: %s ====\n", r.ID, r.Title)
	for _, n := range r.Notes {
		out += "  note: " + n + "\n"
	}
	for _, t := range r.Tables {
		out += "\n" + t.Render()
	}
	return out
}

// Figures lists every reproducible experiment id, in paper order.
func Figures() []string {
	ids := make([]string, 0, len(figureRunners))
	for id := range figureRunners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

var figureRunners = map[string]func(Options) (*Report, error){
	"fig3":       Fig3,
	"fig9a":      Fig9a,
	"fig9a-text": Fig9aText,
	"fig9b":      Fig9b,
	"fig9c":      Fig9c,
	"fig10":      Fig10,
	"fig11":      Fig11,
	"fig12":      Fig12,
	"fig13":      Fig13,
	"fig14":      Fig14,
	"abl-agg":    AblationAggregation,
	"abl-phim":   AblationPhiM,
	"abl-mult":   AblationMultiplicity,
	"abl-repl":   AblationReplication,
	"abl-select": AblationSelectivity,
	"abl-share":  AblationScanSharing,
	"abl-sort":   AblationSortBuffer,
	"partition":  PartitionFigure,
	"serve":      ServeFigure,
	"trace":      TraceFigure,
}

// RunFigure runs one experiment by id.
func RunFigure(id string, opt Options) (*Report, error) {
	fn, ok := figureRunners[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown figure %q (have %v)", id, Figures())
	}
	return fn(opt)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

func okOrX(r EngineRun, s string) string {
	if !r.OK {
		return "X"
	}
	return s
}

// runSeries runs a list of catalog queries over one dataset/cluster with
// the given engines.
func runSeries(spec ClusterSpec, dataset string, opt Options, ids []string,
	engines []engine.QueryEngine) ([]QueryReport, error) {
	opt = opt.withDefaults()
	g, err := Dataset(dataset, opt.Scale, opt.Seed)
	if err != nil {
		return nil, err
	}
	qs, err := Series(ids...)
	if err != nil {
		return nil, err
	}
	var out []QueryReport
	for _, cq := range qs {
		qr, err := RunQuery(spec, g, cq, engines)
		if err != nil {
			return nil, err
		}
		out = append(out, qr)
	}
	return out, nil
}

// timeAndIOTable renders the standard per-query × per-engine comparison,
// including the load-balance columns (worst straggler ratio and per-reducer
// key/byte skew across the workflow's jobs).
func timeAndIOTable(title string, reports []QueryReport) *stats.Table {
	t := &stats.Table{Title: title,
		Header: []string{"query", "engine", "time", "cycles", "HDFS reads", "shuffle", "HDFS writes", "out recs", "peak disk", "straggler", "key skew", "byte skew"}}
	for _, qr := range reports {
		for _, r := range qr.Runs {
			if !r.OK {
				t.AddRow(qr.Query.ID, r.Engine, "X", r.Cycles, "-", "-", "-", "-", "-", "-", "-", "-")
				continue
			}
			t.AddRow(qr.Query.ID, r.Engine, ms(r.Duration), r.Cycles,
				stats.FormatBytes(r.ReadBytes), stats.FormatBytes(r.ShuffleBytes),
				stats.FormatBytes(r.WriteBytes), stats.FormatCount(r.OutputRecords),
				stats.FormatBytes(r.PeakDFS),
				stats.FormatRatio(r.StragglerRatio), stats.FormatRatio(r.ReduceKeySkew),
				stats.FormatRatio(r.ReduceByteSkew))
		}
	}
	return t
}

// Fig3 reproduces the Figure 3 case study: MR cycles, full scans of the
// triple relation, and execution time for the six bound 2-star queries
// under SJ-per-cycle, Sel-SJ-first, and NTGA grouping.
func Fig3(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	reports, err := runSeries(ClusterSpec{}, "bsbm", opt,
		[]string{"Q1a", "Q1b", "Q2a", "Q2b", "Q3a", "Q3b"}, Fig3Engines())
	if err != nil {
		return nil, err
	}
	t := &stats.Table{Title: "Figure 3 — groupings of star-joins (MR cycles / full scans / time / HDFS reads)",
		Header: []string{"query", "engine", "MR", "FS", "time", "HDFS reads"}}
	// Full scans are a plan property; recompute per engine family.
	scans := map[string]map[string]int{ // engine -> join kind -> scans
		"SJ-per-cycle": {"OS": 2, "OO": 2},
		"Sel-SJ-first": {"OS": 2, "OO": 3},
		"NTGA-Lazy":    {"OS": 1, "OO": 1},
	}
	kind := map[string]string{"Q1a": "OS", "Q1b": "OS", "Q2a": "OS", "Q2b": "OS", "Q3a": "OO", "Q3b": "OO"}
	for _, qr := range reports {
		for _, r := range qr.Runs {
			fs := scans[r.Engine][kind[qr.Query.ID]]
			t.AddRow(qr.Query.ID, r.Engine, r.Cycles, fs,
				okOrX(r, ms(r.Duration)), okOrX(r, stats.FormatBytes(r.ReadBytes)))
		}
	}
	return &Report{ID: "fig3",
		Title:   "Evaluation of different groupings of star-joins (BSBM)",
		Tables:  []*stats.Table{t},
		Queries: reports,
		Notes: []string{
			"expected shape: NTGA needs fewest cycles (2) and one full scan; Sel-SJ-first needs 3 full scans for O-O joins",
		},
	}, nil
}

// The capacity-limited cluster regimes of Figures 9 and 12: node disks
// sized (as a multiple of the input's physical size) so that relational
// intermediate results do not fit. The ratios were calibrated against the
// measured peak-disk footprints at scale 2 (see EXPERIMENTS.md):
//
//	query   Pig    Hive   Eager  Lazy   (peak disk ÷ physical input)
//	B0       4.0    3.5    1.9    1.9
//	B1      18.1   17.1    6.1    3.2
//	B2      12.2   11.8    4.1    3.1
//	B3      39.8   38.8   11.7    3.4
//	B4      49.7   48.7   14.0    2.5
//	B5      63.8   62.8   17.6    6.8
//	B6      56.8   55.8   53.5    8.3
//
// fig9aSpec (ratio 8, rep 2): Pig/Hive fail every unbound query B1–B4,
// Eager fails the heavy B3/B4, Lazy fits everything. (Divergence from the
// paper: B0's bound-only footprint is only ~4× input under dictionary
// encoding, so Pig/Hive survive B0 here while the paper's runs did not.)
// fig9bSpec (ratio 24, rep 1): Pig/Hive fail only B3/B4.
// fig9cSpec (ratio 25.3, rep 1): Pig's extra SPLIT copy pushes it over the
// wall from 4 bound properties on (as in the paper); Hive follows one
// arity step later (divergence: the paper's Hive fit throughout), while
// the NTGA engines stay far below the wall.
// fig12Spec (ratio 26, rep 2): Pig/Hive fail B3–B6; Eager fails B6 only.
var (
	fig9aSpec = ClusterSpec{Nodes: 8, Replication: 2, CapacityRatio: 8}
	fig9bSpec = ClusterSpec{Nodes: 8, Replication: 1, CapacityRatio: 24}
	fig9cSpec = ClusterSpec{Nodes: 8, Replication: 1, CapacityRatio: 25.3}
	fig12Spec = ClusterSpec{Nodes: 8, Replication: 2, CapacityRatio: 26}
)

// Fig9a reproduces Figure 9(a): B0–B4 on the larger BSBM dataset with
// dfs.replication = 2 on a capacity-limited cluster.
func Fig9a(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	opt.Scale *= 2 // BSBM-2M is the larger dataset
	reports, err := runSeries(fig9aSpec, "bsbm", opt,
		[]string{"B0", "B1", "B2", "B3", "B4"}, AllEnginesScaled(opt.Scale*2))
	if err != nil {
		return nil, err
	}
	return &Report{ID: "fig9a",
		Title:   "BSBM-2M (scaled), replication 2, capacity-limited: execution times (X = failed)",
		Tables:  []*stats.Table{timeAndIOTable("Figure 9(a)", reports)},
		Queries: reports,
		Notes: []string{
			"expected shape: Pig/Hive fail on disk space; EagerUnnest fails B3/B4; LazyUnnest completes everything",
		},
	}, nil
}

// Fig9aText reruns Figure 9(a) with the relational engines using the text
// wire format (tab-separated N-Triples terms — what Pig/Hive actually
// materialize between jobs). Under text serialization even the bound-only
// B0's intermediates overflow the capacity-limited cluster, closing the one
// divergence the dictionary-encoded run has from the paper: Pig/Hive fail
// *all five* queries.
func Fig9aText(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	opt.Scale *= 2
	engines := []engine.QueryEngine{relmr.NewPigText(), relmr.NewHiveText()}
	engines = append(engines, NTGAEnginesPhi(PhiMForScale(opt.Scale))...)
	reports, err := runSeries(fig9aSpec, "bsbm", opt,
		[]string{"B0", "B1", "B2", "B3", "B4"}, engines)
	if err != nil {
		return nil, err
	}
	return &Report{ID: "fig9a-text",
		Title:   "Figure 9(a) with text-serialized relational intermediates (X = failed)",
		Tables:  []*stats.Table{timeAndIOTable("Figure 9(a), text wire", reports)},
		Queries: reports,
		Notes: []string{
			"expected shape: text-wire Pig/Hive fail all five queries (the paper's exact pattern); Eager fails B3/B4; Lazy completes everything",
		},
	}, nil
}

// Fig9b reproduces Figure 9(b): the same workload with replication 1.
func Fig9b(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	opt.Scale *= 2
	reports, err := runSeries(fig9bSpec, "bsbm", opt,
		[]string{"B0", "B1", "B2", "B3", "B4"}, AllEnginesScaled(opt.Scale*2))
	if err != nil {
		return nil, err
	}
	return &Report{ID: "fig9b",
		Title:   "BSBM-2M (scaled), replication 1: execution times (X = failed)",
		Tables:  []*stats.Table{timeAndIOTable("Figure 9(b)", reports)},
		Queries: reports,
		Notes: []string{
			"expected shape: Pig/Hive fail B3/B4 only; lazy β-unnesting beats eager on B1/B3/B4",
		},
	}, nil
}

// Fig9c reproduces Figure 9(c): execution time with 3–6 bound properties.
func Fig9c(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	opt.Scale *= 2
	reports, err := runSeries(fig9cSpec, "bsbm", opt,
		[]string{"B1-3bnd", "B1-4bnd", "B1-5bnd", "B1-6bnd"}, AllEnginesScaled(opt.Scale))
	if err != nil {
		return nil, err
	}
	return &Report{ID: "fig9c",
		Title:   "Varying bound-property arity: execution times (X = failed)",
		Tables:  []*stats.Table{timeAndIOTable("Figure 9(c)", reports)},
		Queries: reports,
		Notes: []string{
			"expected shape: relational cost grows with arity; NTGA output stays nearly flat; LazyUnnest fastest",
		},
	}, nil
}

// Fig10 reproduces Figure 10: total HDFS writes for the arity series on an
// unbounded cluster (byte accounting without failures).
func Fig10(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	reports, err := runSeries(ClusterSpec{}, "bsbm", opt,
		[]string{"B1-3bnd", "B1-4bnd", "B1-5bnd", "B1-6bnd"}, AllEnginesScaled(opt.Scale))
	if err != nil {
		return nil, err
	}
	t := &stats.Table{Title: "Figure 10 — total HDFS writes (and final output size)",
		Header: []string{"query", "engine", "HDFS writes", "final out", "out recs"}}
	for _, qr := range reports {
		for _, r := range qr.Runs {
			t.AddRow(qr.Query.ID, r.Engine, okOrX(r, stats.FormatBytes(r.WriteBytes)),
				okOrX(r, stats.FormatBytes(r.OutputBytes)), okOrX(r, stats.FormatCount(r.OutputRecords)))
		}
	}
	// Relative savings of lazy vs Hive, per query.
	s := &stats.Table{Title: "LazyUnnest HDFS-write savings vs Hive (paper: 80–86%)",
		Header: []string{"query", "Hive writes", "Lazy writes", "savings"}}
	for _, qr := range reports {
		h, okH := qr.Run("Hive")
		l, okL := qr.Run("NTGA-Lazy")
		if okH && okL && h.OK && l.OK {
			s.AddRow(qr.Query.ID, stats.FormatBytes(h.WriteBytes), stats.FormatBytes(l.WriteBytes),
				fmt.Sprintf("%.0f%%", 100*stats.Gain(float64(h.WriteBytes), float64(l.WriteBytes))))
		}
	}
	return &Report{ID: "fig10",
		Title:   "Total HDFS writes, varying bound-property arity",
		Tables:  []*stats.Table{t, s},
		Queries: reports,
		Notes:   []string{"expected shape: NTGA writes a small fraction of the relational bytes, nearly flat in arity"},
	}, nil
}

// Fig11 reproduces Figure 11: the last MR cycle (the join involving the
// unbound-property pattern) under lazy full vs lazy partial β-unnest.
func Fig11(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	engines := []engine.QueryEngine{
		ntgamr.New(ntgamr.LazyFull, 0),
		ntgamr.New(ntgamr.LazyPartial, PhiMForScale(opt.Scale)),
	}
	reports, err := runSeries(ClusterSpec{}, "bsbm", opt,
		[]string{"B1", "B2", "B3"}, engines)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{Title: "Figure 11 — last MR cycle (join on unbound pattern)",
		Header: []string{"query", "engine", "join time", "join shuffle", "join out"}}
	for _, qr := range reports {
		for _, r := range qr.Runs {
			if !r.OK {
				t.AddRow(qr.Query.ID, r.Engine, "X", "-", "-")
				continue
			}
			last := lastJob(qr, r.Engine)
			t.AddRow(qr.Query.ID, r.Engine, ms(last.dur), stats.FormatBytes(last.shuffle),
				stats.FormatBytes(last.out))
		}
	}
	return &Report{ID: "fig11",
		Title:   "Lazy full vs lazy partial β-unnest, join-cycle zoom",
		Tables:  []*stats.Table{t},
		Queries: reports,
		Notes: []string{
			"expected shape: partial β-unnest ships fewer shuffle bytes for unbound-object B1; full suffices for partially-bound B2/B3",
		},
	}, nil
}

type lastJobMetrics struct {
	dur     time.Duration
	shuffle int64
	out     int64
}

// lastJob digs the final job's metrics out of a run. The harness stores
// workflow metrics per run inside QueryReport via runLastJobs (populated by
// RunQuery callers that need it); to keep RunQuery lean, Fig11 re-derives
// the last job from the aggregate counters when per-job data is absent.
func lastJob(qr QueryReport, engineName string) lastJobMetrics {
	for _, r := range qr.Runs {
		if r.Engine == engineName && len(r.JobMetrics) > 0 {
			j := r.JobMetrics[len(r.JobMetrics)-1]
			return lastJobMetrics{dur: j.Duration, shuffle: j.MapOutputBytes, out: j.ReduceOutputBytes}
		}
	}
	return lastJobMetrics{}
}

// Fig12 reproduces Figure 12: the full B-series on the smaller BSBM dataset
// with replication 2 on the capacity-limited cluster.
func Fig12(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	reports, err := runSeries(fig12Spec, "bsbm", opt,
		[]string{"B1", "B2", "B3", "B4", "B5", "B6"}, AllEnginesScaled(opt.Scale))
	if err != nil {
		return nil, err
	}
	return &Report{ID: "fig12",
		Title:   "BSBM-1M (scaled), replication 2: execution times (X = failed)",
		Tables:  []*stats.Table{timeAndIOTable("Figure 12", reports)},
		Queries: reports,
		Notes: []string{
			"expected shape: Pig/Hive fail B3–B6; LazyUnnest outperforms EagerUnnest on the unbound-heavy queries",
		},
	}, nil
}

// Fig13 reproduces Figure 13: the Bio2RDF-style A-series, including the
// A1 output-cardinality comparison (paper: ~63K tuples vs ~7K vs ~3K
// triplegroups).
func Fig13(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	reports, err := runSeries(ClusterSpec{}, "lifesci", opt,
		[]string{"A1", "A2", "A3", "A4", "A5", "A6"}, AllEnginesScaled(opt.Scale))
	if err != nil {
		return nil, err
	}
	t := timeAndIOTable("Figure 13 — Bio2RDF-style queries", reports)
	counts := &stats.Table{Title: "A-series output representation (paper A1: 63K tuples / 7K eager TGs / 3K lazy TGs)",
		Header: []string{"query", "Hive tuples", "Eager TGs", "Lazy TGs", "rf(Hive)"}}
	for _, qr := range reports {
		h, _ := qr.Run("Hive")
		e, _ := qr.Run("NTGA-Eager")
		l, _ := qr.Run("NTGA-Lazy")
		rf := "-"
		if h.OK && l.OK {
			rf = fmt.Sprintf("%.2f", stats.RedundancyFactor(l.OutputBytes, h.OutputBytes))
		}
		counts.AddRow(qr.Query.ID, okOrX(h, stats.FormatCount(h.OutputRecords)),
			okOrX(e, stats.FormatCount(e.OutputRecords)), okOrX(l, stats.FormatCount(l.OutputRecords)), rf)
	}
	return &Report{ID: "fig13",
		Title:   "Real-world unbound-property queries (LifeSci / Bio2RDF-style)",
		Tables:  []*stats.Table{t, counts},
		Queries: reports,
		Notes: []string{
			"expected shape: lazy TG count < eager TG count < relational tuple count; NTGA writes a fraction of Hive's bytes",
		},
	}, nil
}

// Fig14 reproduces Figure 14: the C-series exploration queries on the
// Infobox dataset at two scales (DBInfobox-like and BTC-like).
func Fig14(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	small, err := runSeries(ClusterSpec{Nodes: 5}, "infobox", opt,
		[]string{"C1", "C2", "C3", "C4"}, AllEnginesScaled(opt.Scale))
	if err != nil {
		return nil, err
	}
	bigOpt := opt
	bigOpt.Scale *= 4
	big, err := runSeries(ClusterSpec{Nodes: 40}, "infobox", bigOpt,
		[]string{"C1", "C2", "C3", "C4"}, AllEnginesScaled(opt.Scale))
	if err != nil {
		return nil, err
	}
	rfTable := func(title string, reports []QueryReport) *stats.Table {
		t := &stats.Table{Title: title,
			Header: []string{"query", "engine", "time", "HDFS reads", "HDFS writes", "rf"}}
		for _, qr := range reports {
			l, _ := qr.Run("NTGA-Lazy")
			for _, r := range qr.Runs {
				rf := "-"
				if r.OK && l.OK && r.Engine != "NTGA-Lazy" {
					rf = fmt.Sprintf("%.2f", stats.RedundancyFactor(l.OutputBytes, r.OutputBytes))
				}
				t.AddRow(qr.Query.ID, r.Engine, okOrX(r, ms(r.Duration)),
					okOrX(r, stats.FormatBytes(r.ReadBytes)), okOrX(r, stats.FormatBytes(r.WriteBytes)), rf)
			}
		}
		return t
	}
	return &Report{ID: "fig14",
		Title: "DBpedia-Infobox-like and BTC-like exploration queries",
		Tables: []*stats.Table{
			rfTable("Figure 14 (top) — DBInfobox-scaled, 5 nodes", small),
			rfTable("Figure 14 (bottom) — BTC-scaled, 40 nodes", big),
		},
		Queries: append(small, big...),
		Notes: []string{
			"expected shape: little NTGA benefit on tiny C1/C2; C3/C4 show large write savings; C4 redundancy factor highest",
		},
	}, nil
}
