package bench

import (
	"fmt"
	"hash/fnv"
	"time"

	"ntga/internal/codec"
	"ntga/internal/datagen"
	"ntga/internal/engine"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
	"ntga/internal/ntgamr"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/relmr"
	"ntga/internal/sparql"
)

// Dataset builds the named generator's graph at the given scale factor
// (scale 1 ≈ a few thousand triples — CI size; the paper's datasets are
// reproduced in shape, not in absolute size).
func Dataset(name string, scale int, seed int64) (*rdf.Graph, error) {
	if scale <= 0 {
		scale = 1
	}
	switch name {
	case "bsbm":
		return datagen.BSBM(datagen.BSBMConfig{Products: 120 * scale, Seed: seed}), nil
	case "lifesci":
		return datagen.LifeSci(datagen.LifeSciConfig{Genes: 150 * scale, MaxMultiplicity: 10, Seed: seed}), nil
	case "infobox":
		return datagen.Infobox(datagen.InfoboxConfig{Entities: 200 * scale, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("bench: unknown dataset %q", name)
	}
}

// GraphBytes returns the encoded size of the triple relation — the "input
// size" capacity ratios are expressed against.
func GraphBytes(g *rdf.Graph) int64 {
	var total int64
	for _, t := range g.Triples {
		total += int64(len(codec.EncodeTriple(t)))
	}
	return total
}

// ClusterSpec describes the simulated cluster an experiment runs on.
type ClusterSpec struct {
	// Nodes is the data-node count (the paper used 5–80 nodes).
	Nodes int
	// Replication is dfs.replication (the paper contrasts 1 and 2).
	Replication int
	// CapacityRatio bounds total cluster capacity as a multiple of the
	// input's physical size (input bytes × replication). Zero means
	// unbounded. The paper's clusters had fixed 20GB/node disks that sat
	// between the NTGA and relational footprints — the ratio reproduces
	// that regime at any scale.
	CapacityRatio float64
	// Reducers per job; zero defaults to 8.
	Reducers int
	// SortBufferBytes bounds each map task's in-memory sort buffer
	// (Hadoop's io.sort.mb): when map output exceeds it, sorted runs spill
	// to node-local disk and are merge-sorted into the reduce phase. Zero
	// means unbounded (no spilling).
	SortBufferBytes int64
}

func (c ClusterSpec) withDefaults() ClusterSpec {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.Replication == 0 {
		c.Replication = 1
	}
	if c.Reducers == 0 {
		c.Reducers = 8
	}
	return c
}

// newCluster builds the MR engine for a dataset of the given encoded size.
func (c ClusterSpec) newCluster(inputBytes int64) *mapreduce.Engine {
	c = c.withDefaults()
	var capacity int64
	if c.CapacityRatio > 0 {
		physical := float64(inputBytes) * float64(c.Replication)
		capacity = int64(physical*c.CapacityRatio) / int64(c.Nodes)
		if capacity < 1 {
			capacity = 1
		}
	}
	// Fine-grained blocks keep placement smooth relative to the scaled-down
	// node capacities (the paper's 256MB blocks vs 20GB disks ≈ 1:80).
	dfs := hdfs.New(hdfs.Config{
		Nodes:           c.Nodes,
		CapacityPerNode: capacity,
		BlockSize:       4 << 10,
		Replication:     c.Replication,
	})
	return mapreduce.NewEngine(dfs, mapreduce.EngineConfig{
		DefaultReducers: c.Reducers,
		SplitRecords:    4096,
		SortBufferBytes: c.SortBufferBytes,
	})
}

// EngineRun is one engine's measured execution of one query.
type EngineRun struct {
	Engine        string
	OK            bool
	Err           string
	FailedJob     string
	Duration      time.Duration
	Cycles        int
	ReadBytes     int64 // map input (HDFS reads)
	ShuffleBytes  int64 // map output
	WriteBytes    int64 // reduce output (HDFS writes, pre-replication)
	OutputRecords int64
	OutputBytes   int64
	PeakDFS       int64
	// Bounded-memory shuffle profile (all zero when SortBufferBytes is
	// unbounded, except PeakSortBuffer which always reports the largest
	// in-memory map-output buffer).
	SpilledBytes   int64
	SpilledRecords int64
	MergePasses    int64
	PeakSortBuffer int64
	// Load-balance profile: the workflow's worst task-duration straggler
	// ratio and worst per-reducer key/byte skew across all jobs (1.0 =
	// perfectly balanced; see mapreduce.TaskSummary and JobMetrics).
	StragglerRatio float64
	ReduceKeySkew  float64
	ReduceByteSkew float64
	Rows           int64
	RowsHash       uint64
	Counters       map[string]int64
	// JobMetrics carries the per-cycle breakdown (Figure 11 zooms into the
	// final join cycle).
	JobMetrics []mapreduce.JobMetrics
	// Planner estimates for the same execution, from the statistics
	// catalog: compare against Cycles and ShuffleBytes to judge the cost
	// model's accuracy.
	EstCycles       int
	EstShuffleBytes int64
}

// QueryReport gathers every engine's run of one query.
type QueryReport struct {
	Query CatalogQuery
	Runs  []EngineRun
}

// Run returns the named engine's run, if present.
func (qr *QueryReport) Run(engineName string) (EngineRun, bool) {
	for _, r := range qr.Runs {
		if r.Engine == engineName {
			return r, true
		}
	}
	return EngineRun{}, false
}

func rowsHash(rows []query.Row) uint64 {
	canon := query.CanonicalRows(rows, false)
	h := fnv.New64a()
	var buf [8]byte
	for _, r := range canon {
		for _, id := range r {
			buf[0] = byte(id)
			buf[1] = byte(id >> 8)
			buf[2] = byte(id >> 16)
			buf[3] = byte(id >> 24)
			buf[4] = 0xFE
			h.Write(buf[:5])
		}
		buf[0] = 0xFF
		h.Write(buf[:1])
	}
	return h.Sum64()
}

// RunQuery loads the graph onto a fresh cluster and runs every engine over
// it in turn. Engine failures (e.g. disk full) are recorded, not returned;
// only harness-level problems (input does not fit, inconsistent results
// across successful engines) produce an error.
func RunQuery(spec ClusterSpec, g *rdf.Graph, cq CatalogQuery, engines []engine.QueryEngine) (QueryReport, error) {
	report := QueryReport{Query: cq}
	mr := spec.newCluster(GraphBytes(g))
	const input = "data/triples"
	if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
		return report, fmt.Errorf("bench: loading input for %s: %w", cq.ID, err)
	}
	pq, err := sparql.Parse(cq.Src)
	if err != nil {
		return report, fmt.Errorf("bench: parsing %s: %w", cq.ID, err)
	}
	q, err := query.Compile(pq, g.Dict)
	if err != nil {
		return report, fmt.Errorf("bench: compiling %s: %w", cq.ID, err)
	}

	cat := plan.FromGraph(g)
	var refHash uint64
	var refRows int64 = -1
	for _, eng := range engines {
		estCycles, estShuffle := estimateRun(cat, eng, q, input)
		res, runErr := eng.Run(mr, q, input)
		run := EngineRun{
			Engine:          eng.Name(),
			OK:              runErr == nil,
			Cycles:          res.Workflow.Cycles,
			Duration:        res.Workflow.Duration,
			ReadBytes:       res.Workflow.TotalMapInputBytes(),
			ShuffleBytes:    res.Workflow.TotalMapOutputBytes(),
			WriteBytes:      res.Workflow.TotalReduceOutputBytes(),
			OutputRecords:   res.OutputRecords,
			OutputBytes:     res.OutputBytes,
			PeakDFS:         res.PeakDFSUsed,
			SpilledBytes:    res.Workflow.TotalSpilledBytes(),
			SpilledRecords:  res.Workflow.TotalSpilledRecords(),
			MergePasses:     res.Workflow.TotalMergePasses(),
			PeakSortBuffer:  res.Workflow.MaxPeakSortBufferBytes(),
			StragglerRatio:  res.Workflow.MaxStragglerRatio(),
			ReduceKeySkew:   res.Workflow.MaxReduceKeySkew(),
			ReduceByteSkew:  res.Workflow.MaxReduceByteSkew(),
			Counters:        res.Counters,
			JobMetrics:      res.Workflow.Jobs,
			EstCycles:       estCycles,
			EstShuffleBytes: estShuffle,
		}
		if runErr != nil {
			run.Err = runErr.Error()
			run.FailedJob = res.Workflow.FailedJob
		} else if res.IsCount {
			run.Rows = res.Count
			run.RowsHash = uint64(res.Count)
			if refRows < 0 {
				refRows, refHash = run.Rows, run.RowsHash
			} else if run.Rows != refRows {
				return report, fmt.Errorf("bench: %s on %s counted %d rows, earlier engine counted %d",
					eng.Name(), cq.ID, run.Rows, refRows)
			}
		} else {
			run.Rows = int64(len(res.Rows))
			run.RowsHash = rowsHash(res.Rows)
			if refRows < 0 {
				refRows, refHash = run.Rows, run.RowsHash
			} else if run.Rows != refRows || run.RowsHash != refHash {
				return report, fmt.Errorf("bench: %s on %s returned %d rows (hash %x), earlier engine returned %d (hash %x)",
					eng.Name(), cq.ID, run.Rows, run.RowsHash, refRows, refHash)
			}
		}
		report.Runs = append(report.Runs, run)
	}
	return report, nil
}

// Standard engine line-ups.

// PhiMForScale scales the paper's φ1K partition range to the shrunken
// datasets: partial β-unnest only pays off when several of one group's
// candidates share a bucket, so φ_m must stay proportional to property
// multiplicity × dataset size (at the paper's 10⁹-triple scale, φ1K).
func PhiMForScale(scale int) int {
	if scale < 1 {
		scale = 1
	}
	m := 16 * scale
	if m > ntgamr.DefaultPhiM {
		m = ntgamr.DefaultPhiM
	}
	return m
}

// RelationalEngines returns the Pig- and Hive-style baselines.
func RelationalEngines() []engine.QueryEngine {
	return []engine.QueryEngine{relmr.NewPig(), relmr.NewHive()}
}

// NTGAEngines returns the paper's two NTGA variants at default φ_m.
func NTGAEngines() []engine.QueryEngine {
	return NTGAEnginesPhi(ntgamr.DefaultPhiM)
}

// NTGAEnginesPhi returns the NTGA variants with an explicit φ_m.
func NTGAEnginesPhi(phiM int) []engine.QueryEngine {
	return []engine.QueryEngine{ntgamr.NewEager(), ntgamr.New(ntgamr.LazyAuto, phiM)}
}

// AllEngines returns the full four-engine line-up of Figures 9–14 at
// default φ_m.
func AllEngines() []engine.QueryEngine {
	return append(RelationalEngines(), NTGAEngines()...)
}

// AllEnginesScaled returns the four-engine line-up with φ_m scaled to the
// dataset size.
func AllEnginesScaled(scale int) []engine.QueryEngine {
	return append(RelationalEngines(), NTGAEnginesPhi(PhiMForScale(scale))...)
}

// Fig3Engines returns the case-study line-up.
func Fig3Engines() []engine.QueryEngine {
	return []engine.QueryEngine{relmr.NewSJPerCycle(), relmr.NewSelSJFirst(), ntgamr.NewLazy()}
}

// EngineByName resolves a CLI engine name. phiM <= 0 selects the default
// partition range for the NTGA engines that use one.
func EngineByName(name string, phiM int) (engine.QueryEngine, error) {
	switch name {
	case "pig":
		return relmr.NewPig(), nil
	case "hive":
		return relmr.NewHive(), nil
	case "sj-per-cycle":
		return relmr.NewSJPerCycle(), nil
	case "sel-sj-first":
		return relmr.NewSelSJFirst(), nil
	case "ntga-eager":
		return ntgamr.NewEager(), nil
	case "ntga-lazy":
		return ntgamr.New(ntgamr.LazyAuto, phiM), nil
	case "ntga-lazy-full":
		return ntgamr.New(ntgamr.LazyFull, phiM), nil
	case "ntga-lazy-partial":
		return ntgamr.New(ntgamr.LazyPartial, phiM), nil
	default:
		return nil, fmt.Errorf("bench: unknown engine %q (want pig, hive, sj-per-cycle, sel-sj-first, ntga-eager, ntga-lazy, ntga-lazy-full, ntga-lazy-partial)", name)
	}
}

// estimateRun plans the query with a throwaway cleaner and prices the plan
// against the catalog, so each EngineRun carries the planner's predicted
// cycle count and shuffle volume next to the measured ones. Planning
// failures (an engine rejecting the query shape) yield zero estimates; the
// subsequent Run records the real error.
func estimateRun(cat *plan.Catalog, eng engine.QueryEngine, q *query.Query, input string) (int, int64) {
	var cl engine.Cleaner
	p, err := eng.Plan(q, input, &cl, nil)
	if err != nil {
		return 0, 0
	}
	cost, _ := plan.Estimate(cat, q, p)
	return cost.Cycles, cost.ShuffleBytes
}
