package bench

import (
	"fmt"

	"ntga/internal/engine"
	"ntga/internal/ntgamr"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/relmr"
	"ntga/internal/sparql"
	"ntga/internal/stats"
)

// partitionWorkload is the repeat-joined slice of the catalog the layout
// experiment replays: subject-bound O-S chains (Q1a, B0), the unbound-object
// join (B1), and the three-star chains (B5, B7). These are the queries whose
// join keys land on the subject hash the bucketed layout is built over.
var partitionWorkload = []string{"Q1a", "B0", "B1", "B5", "B7"}

// PartitionRow is one (query, engine) cell of the layout experiment: the
// same query run over the flat triple file and over the hash-of-subject
// bucketed layout, on the same cluster. These rows are what
// BENCH_partition.json persists across commits.
type PartitionRow struct {
	Query  string `json:"query"`
	Engine string `json:"engine"`
	// Flat-layout measurements.
	FlatCycles       int   `json:"flat_cycles"`
	FlatShuffleBytes int64 `json:"flat_shuffle_bytes"`
	// Partitioned-layout measurements.
	PartCycles       int   `json:"part_cycles"`
	PartShuffleBytes int64 `json:"part_shuffle_bytes"`
	// MapOnlyJobs counts the partitioned workflow's shuffle-free cycles.
	MapOnlyJobs int   `json:"map_only_jobs"`
	Rows        int64 `json:"rows"`
}

// PartitionDoc is the persisted layout comparison (BENCH_partition.json):
// enough identity to compare across history, plus the per-cell rows.
type PartitionDoc struct {
	Commit  string         `json:"commit"`
	Dataset string         `json:"dataset"`
	Scale   int            `json:"scale"`
	Seed    int64          `json:"seed"`
	Buckets int            `json:"buckets"`
	Rows    []PartitionRow `json:"rows"`
}

// ComparePartitionBaseline fails if any cell lost its zero-shuffle property
// or regressed its partitioned shuffle volume more than tolerance against
// the matching baseline cell. Cells are matched by (query, engine); cells
// missing from either side are ignored, so extending the workload never
// breaks the gate.
func ComparePartitionBaseline(baseline, current *PartitionDoc, tolerance float64) error {
	base := make(map[string]PartitionRow, len(baseline.Rows))
	for _, r := range baseline.Rows {
		base[r.Query+"/"+r.Engine] = r
	}
	for _, r := range current.Rows {
		b, ok := base[r.Query+"/"+r.Engine]
		if !ok {
			continue
		}
		if b.PartShuffleBytes == 0 && r.PartShuffleBytes != 0 {
			return fmt.Errorf("partition gate %s/%s: layout no longer shuffle-free (%d bytes; baseline commit %s)",
				r.Query, r.Engine, r.PartShuffleBytes, baseline.Commit)
		}
		if limit := float64(b.PartShuffleBytes) * (1 + tolerance); b.PartShuffleBytes > 0 && float64(r.PartShuffleBytes) > limit {
			return fmt.Errorf("partition gate %s/%s: partitioned shuffle %d vs baseline %d (>%.0f%% worse; baseline commit %s)",
				r.Query, r.Engine, r.PartShuffleBytes, b.PartShuffleBytes, tolerance*100, baseline.Commit)
		}
	}
	return nil
}

// partitionEngines is the layout experiment's line-up: both engine families
// that can serve work map-side from the bucketed layout.
func partitionEngines(phiM int) []engine.QueryEngine {
	return []engine.QueryEngine{relmr.NewHive(), ntgamr.New(ntgamr.LazyAuto, phiM)}
}

// partitionRun is the experiment body behind PartitionFigure/PartitionResult:
// load once, build the bucketed layout once, then run every (query, engine)
// cell flat and partitioned on the same cluster and demand identical rows.
func partitionRun(opt Options, buckets int) (*Report, *PartitionDoc, error) {
	opt = opt.withDefaults()
	g, err := Dataset("bsbm", opt.Scale, opt.Seed)
	if err != nil {
		return nil, nil, err
	}
	qs, err := Series(partitionWorkload...)
	if err != nil {
		return nil, nil, err
	}
	doc := &PartitionDoc{Dataset: "bsbm", Scale: opt.Scale, Seed: opt.Seed, Buckets: buckets}

	t := &stats.Table{
		Title:  fmt.Sprintf("Partitioned layout — %d hash-of-subject buckets, flat vs bucketed on one cluster", buckets),
		Header: []string{"query", "engine", "layout", "cycles", "map-only", "shuffle", "HDFS reads", "time", "rows"},
	}
	savings := &stats.Table{
		Title:  "Shuffle-byte savings from the bucketed layout",
		Header: []string{"query", "engine", "flat shuffle", "partitioned shuffle", "savings"},
	}

	phiM := PhiMForScale(opt.Scale)
	const input = "data/triples"
	for _, cq := range qs {
		mr := ClusterSpec{}.newCluster(GraphBytes(g))
		if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
			return nil, nil, fmt.Errorf("bench: loading input for %s: %w", cq.ID, err)
		}
		part, err := plan.BuildPartitionLayout(mr, input, "part/T", buckets, g.Version())
		if err != nil {
			return nil, nil, fmt.Errorf("bench: building layout for %s: %w", cq.ID, err)
		}
		q, err := compileCatalogQuery(g, cq)
		if err != nil {
			return nil, nil, err
		}
		for _, eng := range partitionEngines(phiM) {
			flat, err := eng.Run(mr, q, input)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s flat on %s: %w", eng.Name(), cq.ID, err)
			}
			bucketed, err := engine.RunMaybePartitioned(eng, mr, q, input, part)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s partitioned on %s: %w", eng.Name(), cq.ID, err)
			}
			if rowsHash(flat.Rows) != rowsHash(bucketed.Rows) || len(flat.Rows) != len(bucketed.Rows) {
				return nil, nil, fmt.Errorf("bench: %s on %s: partitioned rows diverge from flat (%d vs %d rows)",
					eng.Name(), cq.ID, len(bucketed.Rows), len(flat.Rows))
			}
			mapOnly := 0
			for _, jm := range bucketed.Workflow.Jobs {
				if jm.MapOnly {
					mapOnly++
				}
			}
			row := PartitionRow{
				Query: cq.ID, Engine: eng.Name(),
				FlatCycles:       flat.Workflow.Cycles,
				FlatShuffleBytes: flat.Workflow.TotalMapOutputBytes(),
				PartCycles:       bucketed.Workflow.Cycles,
				PartShuffleBytes: bucketed.Workflow.TotalMapOutputBytes(),
				MapOnlyJobs:      mapOnly,
				Rows:             int64(len(bucketed.Rows)),
			}
			doc.Rows = append(doc.Rows, row)
			t.AddRow(cq.ID, eng.Name(), "flat", row.FlatCycles, 0,
				stats.FormatBytes(row.FlatShuffleBytes), stats.FormatBytes(flat.Workflow.TotalMapInputBytes()),
				ms(flat.Workflow.Duration), row.Rows)
			t.AddRow(cq.ID, eng.Name(), "partitioned", row.PartCycles, row.MapOnlyJobs,
				stats.FormatBytes(row.PartShuffleBytes), stats.FormatBytes(bucketed.Workflow.TotalMapInputBytes()),
				ms(bucketed.Workflow.Duration), row.Rows)
			savings.AddRow(cq.ID, eng.Name(),
				stats.FormatBytes(row.FlatShuffleBytes), stats.FormatBytes(row.PartShuffleBytes),
				fmt.Sprintf("%.0f%%", 100*stats.Gain(float64(row.FlatShuffleBytes), float64(row.PartShuffleBytes))))
		}
	}

	rep := &Report{ID: "partition",
		Title:  "Hash-of-subject bucketed layout: shuffle elimination on repeat-joined queries",
		Tables: []*stats.Table{t, savings},
		Notes: []string{
			"expected shape: NTGA-Lazy's O-S chains drop to zero shuffle bytes (fully map-side); Hive eliminates the star-join cycles' shuffle but still shuffles the tuple joins",
			"rows are asserted identical between the flat and partitioned runs of every cell",
		},
	}
	return rep, doc, nil
}

// compileCatalogQuery parses and compiles one catalog query against the
// graph's dictionary.
func compileCatalogQuery(g *rdf.Graph, cq CatalogQuery) (*query.Query, error) {
	pq, err := sparql.Parse(cq.Src)
	if err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", cq.ID, err)
	}
	q, err := query.Compile(pq, g.Dict)
	if err != nil {
		return nil, fmt.Errorf("bench: compiling %s: %w", cq.ID, err)
	}
	return q, nil
}

// PartitionResult runs the layout experiment and returns both the rendered
// report and the persistable document (ntga-bench -partition-out).
func PartitionResult(opt Options) (*Report, *PartitionDoc, error) {
	return partitionRun(opt, 8)
}

// PartitionFigure is the figureRunners entry for -fig partition.
func PartitionFigure(opt Options) (*Report, error) {
	rep, _, err := PartitionResult(opt)
	return rep, err
}
