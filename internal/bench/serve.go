package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ntga/internal/server"
	"ntga/internal/stats"
)

// serveWorkload is the catalog slice the serving experiment multiplexes: a
// mix of bound-only stars, unbound-property joins, and the 3-star optimizer
// query, all on the BSBM-flavoured dataset.
var serveWorkload = []string{"Q1a", "Q2a", "Q3a", "B0", "B1", "B2", "B5", "B7"}

// newServeHarness builds the resident service the serving experiment and the
// BenchmarkServe_* benchmarks share: one server over the scaled BSBM graph
// with an admission window wide enough that the sweep measures execution,
// not shedding.
func newServeHarness(opt Options) (*server.Server, []CatalogQuery, error) {
	opt = opt.withDefaults()
	g, err := Dataset("bsbm", opt.Scale, opt.Seed)
	if err != nil {
		return nil, nil, err
	}
	qs, err := Series(serveWorkload...)
	if err != nil {
		return nil, nil, err
	}
	s, err := server.New(server.Config{
		MaxInflight: 16,
		MaxQueue:    1024,
	}, g)
	if err != nil {
		return nil, nil, err
	}
	return s, qs, nil
}

// driveServe issues total requests from `clients` concurrent workers
// round-robin over the workload and returns every request's latency plus the
// sweep's wall clock. noCache forces real MapReduce execution per request;
// with caching on the workload should be pre-warmed so the sweep measures
// the hit path.
func driveServe(s *server.Server, qs []CatalogQuery, clients, total int, noCache bool) ([]time.Duration, time.Duration, error) {
	lats := make([]time.Duration, total)
	errs := make([]error, clients)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				cq := qs[i%len(qs)]
				t0 := time.Now()
				_, err := s.Evaluate(context.Background(), server.Request{Query: cq.Src, NoCache: noCache})
				lats[i] = time.Since(t0)
				if err != nil {
					errs[c] = fmt.Errorf("%s: %w", cq.ID, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return lats, wall, nil
}

// percentile returns the p-th percentile (0 < p <= 100) of the sorted-copy
// latencies (nearest-rank).
func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(float64(len(sorted))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// ServeFigure measures the resident query service: queries-per-second and
// p50/p95 latency across a 1/4/16-client sweep, once forcing every request
// through MapReduce (cache off) and once serving a warmed workload from the
// result cache.
func ServeFigure(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	s, qs, err := newServeHarness(opt)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	const passes = 4 // each client walks the workload this many times
	t := &stats.Table{Title: "Serving sweep — clients × result cache (workload: " + fmt.Sprint(serveWorkload) + ")",
		Header: []string{"clients", "cache", "requests", "qps", "p50", "p95"}}
	for _, cache := range []bool{false, true} {
		if cache {
			// Pre-warm so the cached sweep measures pure hits.
			if _, _, err := driveServe(s, qs, 1, len(qs), false); err != nil {
				return nil, err
			}
		}
		for _, clients := range []int{1, 4, 16} {
			total := clients * passes * len(qs)
			lats, wall, err := driveServe(s, qs, clients, total, !cache)
			if err != nil {
				return nil, err
			}
			label := "off"
			if cache {
				label = "on"
			}
			qps := float64(total) / wall.Seconds()
			t.AddRow(clients, label, total, fmt.Sprintf("%.0f", qps),
				ms(percentile(lats, 50)), ms(percentile(lats, 95)))
		}
	}
	m := s.Snapshot()
	return &Report{ID: "serve",
		Title:  "Resident query service: concurrent throughput and latency",
		Tables: []*stats.Table{t},
		Notes: []string{
			"expected shape: cached rows serve orders of magnitude more qps than executing sweeps; qps grows with clients until the slot pool saturates",
			fmt.Sprintf("service totals: %d queries, %d MR cycles, result cache %d/%d hits/misses",
				m.Queries, m.MRCycles, m.ResultCache.Hits, m.ResultCache.Misses),
		},
	}, nil
}
