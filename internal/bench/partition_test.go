package bench

import (
	"strings"
	"testing"
)

// TestPartitionFigurePattern pins the layout experiment's headline claim:
// on the repeat-joined subject-hash workload, the NTGA engine's partitioned
// runs of the O-S chains move zero shuffle bytes while the flat runs of the
// same queries do not, and Hive's star cycles go map-only without ever
// shuffling more than its flat run.
func TestPartitionFigurePattern(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	rep, doc, err := PartitionResult(Options{Scale: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "partition" || len(doc.Rows) != len(partitionWorkload)*2 {
		t.Fatalf("report %q with %d rows, want partition with %d", rep.ID, len(doc.Rows), len(partitionWorkload)*2)
	}
	zeroShuffle := map[string]bool{"Q1a": true, "B0": true, "B1": true, "B5": true}
	for _, r := range doc.Rows {
		if r.Rows == 0 {
			t.Errorf("%s/%s returned no rows; cell is vacuous", r.Query, r.Engine)
		}
		if r.FlatShuffleBytes == 0 {
			t.Errorf("%s/%s flat run moved no shuffle bytes; cell is vacuous", r.Query, r.Engine)
		}
		if r.MapOnlyJobs == 0 {
			t.Errorf("%s/%s partitioned run has no map-only cycles", r.Query, r.Engine)
		}
		if r.PartShuffleBytes > r.FlatShuffleBytes {
			t.Errorf("%s/%s partitioned shuffled MORE than flat (%d vs %d)",
				r.Query, r.Engine, r.PartShuffleBytes, r.FlatShuffleBytes)
		}
		if strings.HasPrefix(r.Engine, "NTGA") && zeroShuffle[r.Query] && r.PartShuffleBytes != 0 {
			t.Errorf("%s/%s partitioned shuffle = %d bytes, want 0", r.Query, r.Engine, r.PartShuffleBytes)
		}
	}
}

func TestComparePartitionBaseline(t *testing.T) {
	base := &PartitionDoc{Commit: "aaa", Rows: []PartitionRow{
		{Query: "Q1a", Engine: "NTGA-Lazy", PartShuffleBytes: 0},
		{Query: "B7", Engine: "Hive", PartShuffleBytes: 1000},
	}}
	ok := &PartitionDoc{Rows: []PartitionRow{
		{Query: "Q1a", Engine: "NTGA-Lazy", PartShuffleBytes: 0},
		{Query: "B7", Engine: "Hive", PartShuffleBytes: 1100},
		{Query: "new", Engine: "Hive", PartShuffleBytes: 99999}, // unmatched cells are ignored
	}}
	if err := ComparePartitionBaseline(base, ok, 0.20); err != nil {
		t.Errorf("within-tolerance doc rejected: %v", err)
	}
	lostZero := &PartitionDoc{Rows: []PartitionRow{
		{Query: "Q1a", Engine: "NTGA-Lazy", PartShuffleBytes: 5},
	}}
	if err := ComparePartitionBaseline(base, lostZero, 0.20); err == nil {
		t.Error("lost zero-shuffle cell accepted")
	}
	regressed := &PartitionDoc{Rows: []PartitionRow{
		{Query: "B7", Engine: "Hive", PartShuffleBytes: 1300},
	}}
	if err := ComparePartitionBaseline(base, regressed, 0.20); err == nil {
		t.Error(">20% shuffle regression accepted")
	}
}
