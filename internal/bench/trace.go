package bench

import (
	"context"
	"fmt"
	"time"

	"ntga/internal/server"
	"ntga/internal/stats"
	"ntga/internal/workload"
)

// TraceRow is one cell of the serve-latency trajectory: a closed-loop
// replay of a seeded Zipf multi-tenant trace at one client count and cache
// mix. These rows are what BENCH_serve_trace.json persists across commits.
type TraceRow struct {
	Clients  int     `json:"clients"`
	Mix      string  `json:"mix"` // "cached" (warm result cache) or "uncached" (every request executes MR)
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P999MS   float64 `json:"p999_ms"`
	ShedRate float64 `json:"shed_rate"`
}

// OverloadRow is one admission policy's rollup from the open-loop overload
// segment: the same over-capacity Poisson trace replayed against a fixed
// window and the p95-adaptive controller.
type OverloadRow struct {
	Policy     string  `json:"policy"` // "fixed" or "adaptive"
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Shed       int     `json:"shed"`
	Deadline   int     `json:"deadline"`
	GoodputQPS float64 `json:"goodput_qps"`
	P95MS      float64 `json:"p95_ms"`
	P999MS     float64 `json:"p999_ms"`
}

// TraceDoc is the persisted serve-latency trajectory (BENCH_serve_trace.json):
// enough identity (commit, dataset, engine) to compare across history, plus
// the sweep rows and the overload segment.
type TraceDoc struct {
	Commit   string        `json:"commit"`
	Dataset  string        `json:"dataset"`
	Engine   string        `json:"engine"`
	Scale    int           `json:"scale"`
	Seed     int64         `json:"seed"`
	Rows     []TraceRow    `json:"rows"`
	Overload []OverloadRow `json:"overload,omitempty"`
}

// CompareTraceBaseline fails if any sweep cell's p95 regressed more than
// tolerance (e.g. 0.20 = +20%) against the matching baseline cell. Cells
// are matched by (clients, mix); cells missing from either side are
// ignored, so adding sweep points never breaks the gate.
func CompareTraceBaseline(baseline, current *TraceDoc, tolerance float64) error {
	base := make(map[string]TraceRow, len(baseline.Rows))
	for _, r := range baseline.Rows {
		base[fmt.Sprintf("%d/%s", r.Clients, r.Mix)] = r
	}
	for _, r := range current.Rows {
		b, ok := base[fmt.Sprintf("%d/%s", r.Clients, r.Mix)]
		if !ok || b.P95MS <= 0 {
			continue
		}
		if r.P95MS > b.P95MS*(1+tolerance) {
			return fmt.Errorf("trace p95 regression at %d clients/%s: %.3fms vs baseline %.3fms (>%.0f%% worse; baseline commit %s)",
				r.Clients, r.Mix, r.P95MS, b.P95MS, tolerance*100, baseline.Commit)
		}
	}
	return nil
}

// traceParams sizes the experiment; tests shrink it, TraceResult uses the
// defaults.
type traceParams struct {
	clients           []int
	cachedPerClient   int // cached-mix requests per client (floor cachedMin)
	cachedMin         int
	uncachedPerClient int
	uncachedMin       int
	overloadRequests  int
	overloadRateQPS   float64
	overloadDeadline  int64 // ms
}

func defaultTraceParams() traceParams {
	return traceParams{
		clients:           []int{1, 16, 256},
		cachedPerClient:   16,
		cachedMin:         512,
		uncachedPerClient: 4,
		uncachedMin:       128,
		overloadRequests:  500,
		overloadRateQPS:   2000,
		overloadDeadline:  250,
	}
}

// traceTenants is the client mix every trace cell replays: three weighted
// scheduling classes, so the sweep exercises the slot pool's fair-share
// path, not just a single queue.
var traceTenants = []workload.TenantSpec{
	{Name: "gold", Weight: 3, Share: 0.5},
	{Name: "silver", Weight: 2, Share: 0.3},
	{Name: "bronze", Weight: 1, Share: 0.2},
}

// traceQueries adapts the serving workload's catalog slice to the
// generator's query list (slice order = Zipf popularity rank).
func traceQueries(qs []CatalogQuery) []workload.Query {
	out := make([]workload.Query, len(qs))
	for i, cq := range qs {
		out[i] = workload.Query{ID: cq.ID, Src: cq.Src}
	}
	return out
}

func mf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// traceRun is the experiment body behind TraceFigure/TraceResult.
func traceRun(opt Options, p traceParams) (*Report, *TraceDoc, error) {
	opt = opt.withDefaults()
	g, err := Dataset("bsbm", opt.Scale, opt.Seed)
	if err != nil {
		return nil, nil, err
	}
	qs, err := Series(serveWorkload...)
	if err != nil {
		return nil, nil, err
	}
	wqs := traceQueries(qs)
	ctx := context.Background()

	doc := &TraceDoc{Dataset: "bsbm", Engine: "ntga-lazy", Scale: opt.Scale, Seed: opt.Seed}
	sweep := &stats.Table{
		Title:  "Trace replay sweep — closed loop, Zipf(1.1) over " + fmt.Sprint(serveWorkload) + ", tenants gold/silver/bronze",
		Header: []string{"clients", "mix", "requests", "qps", "p50", "p95", "p99.9", "shed"},
	}

	// Closed-loop capacity sweep: one resident server per mix (the cached
	// mix must not inherit the uncached mix's cold LRU churn, and vice
	// versa), clients × {cached, uncached}.
	for _, mix := range []string{"cached", "uncached"} {
		s, err := server.New(server.Config{MaxInflight: 16, MaxQueue: 4096}, g)
		if err != nil {
			return nil, nil, err
		}
		if mix == "cached" {
			// Pre-warm every workload query so the sweep measures pure hits.
			for _, q := range wqs {
				if _, err := s.Evaluate(ctx, server.Request{Query: q.Src}); err != nil {
					s.Close()
					return nil, nil, fmt.Errorf("trace warmup %s: %w", q.ID, err)
				}
			}
		}
		for _, clients := range p.clients {
			requests := clients * p.cachedPerClient
			cold := 0.0
			if mix == "uncached" {
				requests = clients * p.uncachedPerClient
				cold = 1.0
			}
			if min := p.cachedMin; mix == "cached" && requests < min {
				requests = min
			}
			if min := p.uncachedMin; mix == "uncached" && requests < min {
				requests = min
			}
			tr, err := workload.Generate(workload.Config{
				Seed:         opt.Seed + int64(clients),
				Requests:     requests,
				ZipfS:        1.1,
				Tenants:      traceTenants,
				ColdFraction: cold,
			}, wqs)
			if err != nil {
				s.Close()
				return nil, nil, err
			}
			res, err := workload.Replay(ctx, tr, workload.ServerTarget{S: s}, workload.Options{Closed: true, Clients: clients})
			if err != nil {
				s.Close()
				return nil, nil, err
			}
			if n := len(res.Errs); n > 0 {
				s.Close()
				return nil, nil, fmt.Errorf("trace sweep %d clients/%s: %d hard errors, first: %s", clients, mix, n, res.Errs[0])
			}
			q := res.Hist.Summary()
			row := TraceRow{
				Clients: clients, Mix: mix, Requests: res.Requests,
				QPS: res.QPS(), P50MS: mf(q.P50), P95MS: mf(q.P95), P999MS: mf(q.P999),
				ShedRate: res.ShedRate(),
			}
			doc.Rows = append(doc.Rows, row)
			sweep.AddRow(clients, mix, res.Requests, fmt.Sprintf("%.0f", row.QPS),
				ms(q.P50), ms(q.P95), ms(q.P999), fmt.Sprintf("%.1f%%", row.ShedRate*100))
		}
		s.Close()
	}

	// Open-loop overload segment: the same over-capacity Poisson trace
	// against a deliberately narrow service (2 executors), once with the
	// fixed MaxInflight+MaxQueue window and once with the p95-adaptive
	// controller. The fixed window queues admitted requests deep enough to
	// blow their deadlines; the controller sheds at admission instead, so
	// the requests it does answer keep a short tail.
	overTrace, err := workload.Generate(workload.Config{
		Seed:         opt.Seed,
		Requests:     p.overloadRequests,
		RateQPS:      p.overloadRateQPS,
		ZipfS:        1.1,
		Tenants:      traceTenants,
		ColdFraction: 1, // every request executes: overload must be real work
		DeadlineMS:   p.overloadDeadline,
	}, wqs)
	if err != nil {
		return nil, nil, err
	}
	over := &stats.Table{
		Title: fmt.Sprintf("Open-loop overload — %d req at %.0f qps, deadline %dms, 2 executors: fixed vs p95-adaptive admission",
			p.overloadRequests, p.overloadRateQPS, p.overloadDeadline),
		Header: []string{"policy", "requests", "ok", "shed", "deadline", "goodput qps", "p95", "p99.9"},
	}
	warmTrace, err := workload.Generate(workload.Config{
		Seed:         opt.Seed + 1,
		Requests:     p.overloadRequests,
		RateQPS:      p.overloadRateQPS,
		ZipfS:        1.1,
		Tenants:      traceTenants,
		ColdFraction: 1,
		DeadlineMS:   p.overloadDeadline,
	}, wqs)
	if err != nil {
		return nil, nil, err
	}
	for _, policy := range []string{"fixed", "adaptive"} {
		cfg := server.Config{MaxInflight: 2, MaxQueue: 64}
		if policy == "adaptive" {
			cfg.Admission = &server.AdmissionConfig{
				TargetQueueWait: 15 * time.Millisecond,
				SampleWindow:    8,
				Gain:            0.5,
			}
		}
		s, err := server.New(cfg, g)
		if err != nil {
			return nil, nil, err
		}
		// Steady-state measurement: one unmeasured warm segment drives the
		// adaptive controller to its converged window (and, for the fixed
		// policy, fills the queue to its standing depth) before the measured
		// replay of the identical overload trace.
		if _, err := workload.Replay(ctx, warmTrace, workload.ServerTarget{S: s}, workload.Options{}); err != nil {
			s.Close()
			return nil, nil, err
		}
		res, err := workload.Replay(ctx, overTrace, workload.ServerTarget{S: s}, workload.Options{})
		s.Close()
		if err != nil {
			return nil, nil, err
		}
		q := res.Hist.Summary()
		row := OverloadRow{
			Policy:     policy,
			Requests:   res.Requests,
			OK:         res.Outcomes[workload.OutcomeOK],
			Shed:       res.Outcomes[workload.OutcomeShed],
			Deadline:   res.Outcomes[workload.OutcomeDeadline],
			GoodputQPS: res.QPS(),
			P95MS:      mf(q.P95),
			P999MS:     mf(q.P999),
		}
		doc.Overload = append(doc.Overload, row)
		over.AddRow(policy, row.Requests, row.OK, row.Shed, row.Deadline,
			fmt.Sprintf("%.0f", row.GoodputQPS), ms(q.P95), ms(q.P999))
	}

	rep := &Report{ID: "trace",
		Title:  "Trace-replay serving trajectory: Zipf multi-tenant load, cache mixes, and admission policies",
		Tables: []*stats.Table{sweep, over},
		Notes: []string{
			"expected shape: cached rows serve orders of magnitude more qps than uncached; qps grows with clients until the executors saturate",
			"expected shape: under open-loop overload the adaptive policy sheds earlier, so answered requests keep a far shorter tail (p99.9) than the fixed deep queue",
		},
	}
	return rep, doc, nil
}

// TraceResult runs the trace experiment and returns both the rendered
// report and the persistable trajectory document (ntga-bench -trace-out).
func TraceResult(opt Options) (*Report, *TraceDoc, error) {
	return traceRun(opt, defaultTraceParams())
}

// TraceFigure is the figureRunners entry for -fig trace.
func TraceFigure(opt Options) (*Report, error) {
	rep, _, err := TraceResult(opt)
	return rep, err
}
