package bench

import (
	"strings"
	"testing"

	"ntga/internal/query"
	"ntga/internal/refengine"
	"ntga/internal/sparql"
)

func TestCatalogLookupAndSeries(t *testing.T) {
	if len(Catalog()) < 20 {
		t.Errorf("catalog has %d queries, expected the full Q/B/A/C series", len(Catalog()))
	}
	q, err := Lookup("B1")
	if err != nil || q.ID != "B1" {
		t.Errorf("Lookup(B1) = %+v, %v", q, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup(nope) succeeded")
	}
	s, err := Series("A1", "A2")
	if err != nil || len(s) != 2 {
		t.Errorf("Series = %v, %v", s, err)
	}
	if _, err := Series("A1", "nope"); err == nil {
		t.Error("Series with unknown id succeeded")
	}
}

func TestDatasets(t *testing.T) {
	for _, name := range []string{"bsbm", "lifesci", "infobox"} {
		g, err := Dataset(name, 1, 1)
		if err != nil || g.Len() == 0 {
			t.Errorf("Dataset(%s) = len %d, %v", name, g.Len(), err)
		}
	}
	if _, err := Dataset("nope", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// TestCatalogAgainstReference is the harness-level ground-truth check:
// every catalog query, on its dataset, must give identical rows across all
// four engines AND match the in-memory reference engine.
func TestCatalogAgainstReference(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	for _, cq := range Catalog() {
		cq := cq
		t.Run(cq.ID, func(t *testing.T) {
			g, err := Dataset(cq.Dataset, 1, 42)
			if err != nil {
				t.Fatal(err)
			}
			qr, err := RunQuery(ClusterSpec{}, g, cq, AllEnginesScaled(1))
			if err != nil {
				t.Fatalf("RunQuery: %v", err)
			}
			pq, err := sparql.Parse(cq.Src)
			if err != nil {
				t.Fatal(err)
			}
			q, err := query.Compile(pq, g.Dict)
			if err != nil {
				t.Fatal(err)
			}
			want := refengine.Evaluate(q, g)
			for _, r := range qr.Runs {
				if !r.OK {
					t.Errorf("%s failed: %s", r.Engine, r.Err)
					continue
				}
				if r.Rows != int64(len(want)) {
					t.Errorf("%s rows = %d, reference = %d", r.Engine, r.Rows, len(want))
				}
			}
			// The evaluation queries must not be vacuous (except deliberately
			// selective ones may still be small).
			if len(want) == 0 {
				t.Errorf("catalog query %s has no results on its dataset", cq.ID)
			}
		})
	}
}

func runFigure(t *testing.T, id string) *Report {
	t.Helper()
	rep, err := RunFigure(id, Options{})
	if err != nil {
		t.Fatalf("RunFigure(%s): %v", id, err)
	}
	return rep
}

func requireRun(t *testing.T, rep *Report, queryID, engineName string) EngineRun {
	t.Helper()
	for _, qr := range rep.Queries {
		if qr.Query.ID != queryID {
			continue
		}
		if r, ok := qr.Run(engineName); ok {
			return r
		}
	}
	t.Fatalf("%s: no run for %s/%s", rep.ID, queryID, engineName)
	return EngineRun{}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	rep := runFigure(t, "fig3")
	for _, qid := range []string{"Q1a", "Q1b", "Q2a", "Q2b", "Q3a", "Q3b"} {
		sj := requireRun(t, rep, qid, "SJ-per-cycle")
		ntga := requireRun(t, rep, qid, "NTGA-Lazy")
		if !sj.OK || !ntga.OK {
			t.Fatalf("%s: runs failed (%v, %v)", qid, sj.Err, ntga.Err)
		}
		if sj.Cycles != 3 {
			t.Errorf("%s SJ-per-cycle cycles = %d, want 3", qid, sj.Cycles)
		}
		if ntga.Cycles != 2 {
			t.Errorf("%s NTGA cycles = %d, want 2", qid, ntga.Cycles)
		}
		if ntga.ReadBytes >= sj.ReadBytes {
			t.Errorf("%s NTGA reads (%d) not below SJ-per-cycle (%d)", qid, ntga.ReadBytes, sj.ReadBytes)
		}
	}
	// O-S queries: Sel-SJ-first saves a cycle; O-O: it costs a full scan.
	for _, qid := range []string{"Q1a", "Q2a"} {
		sel := requireRun(t, rep, qid, "Sel-SJ-first")
		if sel.Cycles != 2 {
			t.Errorf("%s Sel-SJ-first cycles = %d, want 2", qid, sel.Cycles)
		}
	}
	for _, qid := range []string{"Q3a", "Q3b"} {
		sel := requireRun(t, rep, qid, "Sel-SJ-first")
		sj := requireRun(t, rep, qid, "SJ-per-cycle")
		if sel.Cycles != 3 {
			t.Errorf("%s Sel-SJ-first cycles = %d, want 3", qid, sel.Cycles)
		}
		if sel.ReadBytes <= sj.ReadBytes {
			t.Errorf("%s Sel-SJ-first reads (%d) should exceed SJ-per-cycle (%d): extra full scan",
				qid, sel.ReadBytes, sj.ReadBytes)
		}
	}
}

// TestFig9aFailurePattern asserts the paper's headline failure pattern
// (modulo the documented B0 divergence).
func TestFig9aFailurePattern(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	rep := runFigure(t, "fig9a")
	wantOK := map[string]map[string]bool{
		"B0": {"Pig": true, "Hive": true, "NTGA-Eager": true, "NTGA-Lazy": true},
		"B1": {"Pig": false, "Hive": false, "NTGA-Eager": true, "NTGA-Lazy": true},
		"B2": {"Pig": false, "Hive": false, "NTGA-Eager": true, "NTGA-Lazy": true},
		"B3": {"Pig": false, "Hive": false, "NTGA-Eager": false, "NTGA-Lazy": true},
		"B4": {"Pig": false, "Hive": false, "NTGA-Eager": false, "NTGA-Lazy": true},
	}
	for qid, engines := range wantOK {
		for eng, want := range engines {
			r := requireRun(t, rep, qid, eng)
			if r.OK != want {
				t.Errorf("fig9a %s/%s OK = %v, want %v (err: %s)", qid, eng, r.OK, want, r.Err)
			}
			if !r.OK && !strings.Contains(r.Err, "disk") {
				t.Errorf("fig9a %s/%s failed for a non-disk reason: %s", qid, eng, r.Err)
			}
		}
	}
}

func TestFig9bFailurePattern(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	rep := runFigure(t, "fig9b")
	for _, qid := range []string{"B0", "B1", "B2"} {
		for _, eng := range []string{"Pig", "Hive", "NTGA-Eager", "NTGA-Lazy"} {
			if r := requireRun(t, rep, qid, eng); !r.OK {
				t.Errorf("fig9b %s/%s failed: %s", qid, eng, r.Err)
			}
		}
	}
	for _, qid := range []string{"B3", "B4"} {
		for _, eng := range []string{"Pig", "Hive"} {
			if r := requireRun(t, rep, qid, eng); r.OK {
				t.Errorf("fig9b %s/%s should fail on disk space", qid, eng)
			}
		}
		for _, eng := range []string{"NTGA-Eager", "NTGA-Lazy"} {
			if r := requireRun(t, rep, qid, eng); !r.OK {
				t.Errorf("fig9b %s/%s failed: %s", qid, eng, r.Err)
			}
		}
		eager := requireRun(t, rep, qid, "NTGA-Eager")
		lazy := requireRun(t, rep, qid, "NTGA-Lazy")
		if lazy.WriteBytes >= eager.WriteBytes {
			t.Errorf("fig9b %s: lazy writes (%d) not below eager (%d)", qid, lazy.WriteBytes, eager.WriteBytes)
		}
	}
}

func TestFig9cPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	rep := runFigure(t, "fig9c")
	for _, qid := range []string{"B1-3bnd", "B1-4bnd", "B1-5bnd", "B1-6bnd"} {
		for _, eng := range []string{"NTGA-Eager", "NTGA-Lazy"} {
			if r := requireRun(t, rep, qid, eng); !r.OK {
				t.Errorf("fig9c %s/%s failed: %s", qid, eng, r.Err)
			}
		}
	}
	if r := requireRun(t, rep, "B1-3bnd", "Pig"); !r.OK {
		t.Errorf("fig9c Pig should survive 3 bound properties: %s", r.Err)
	}
	for _, qid := range []string{"B1-4bnd", "B1-5bnd", "B1-6bnd"} {
		if r := requireRun(t, rep, qid, "Pig"); r.OK {
			t.Errorf("fig9c Pig should fail at %s (paper: fails beyond 3 bound)", qid)
		}
	}
}

func TestFig10LazySavings(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	rep := runFigure(t, "fig10")
	var lazyWrites []int64
	for _, qid := range []string{"B1-3bnd", "B1-4bnd", "B1-5bnd", "B1-6bnd"} {
		hive := requireRun(t, rep, qid, "Hive")
		lazy := requireRun(t, rep, qid, "NTGA-Lazy")
		if !hive.OK || !lazy.OK {
			t.Fatalf("%s failed: %s / %s", qid, hive.Err, lazy.Err)
		}
		saving := 1 - float64(lazy.WriteBytes)/float64(hive.WriteBytes)
		if saving < 0.5 {
			t.Errorf("%s lazy write saving = %.0f%%, want > 50%% (paper: 80-86%%)", qid, saving*100)
		}
		lazyWrites = append(lazyWrites, lazy.WriteBytes)
	}
	// NTGA output stays nearly flat as arity grows (paper: "almost constant").
	growth := float64(lazyWrites[len(lazyWrites)-1]) / float64(lazyWrites[0])
	if growth > 1.5 {
		t.Errorf("lazy writes grew %.2fx from 3bnd to 6bnd, want < 1.5x", growth)
	}
}

func TestFig11PartialBeatsFullOnUnboundObject(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	rep := runFigure(t, "fig11")
	full := requireRun(t, rep, "B1", "NTGA-LazyFull")
	part := requireRun(t, rep, "B1", "NTGA-LazyPartial")
	if !full.OK || !part.OK {
		t.Fatalf("fig11 runs failed: %s / %s", full.Err, part.Err)
	}
	lastShuffle := func(r EngineRun) int64 {
		return r.JobMetrics[len(r.JobMetrics)-1].MapOutputBytes
	}
	if lastShuffle(part) >= lastShuffle(full) {
		t.Errorf("partial join shuffle (%d) not below full (%d) on B1",
			lastShuffle(part), lastShuffle(full))
	}
}

func TestFig12Pattern(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	rep := runFigure(t, "fig12")
	for _, qid := range []string{"B3", "B4", "B5", "B6"} {
		for _, eng := range []string{"Pig", "Hive"} {
			if r := requireRun(t, rep, qid, eng); r.OK {
				t.Errorf("fig12 %s/%s should fail (paper: Pig/Hive fail B3-B6)", qid, eng)
			}
		}
		if r := requireRun(t, rep, qid, "NTGA-Lazy"); !r.OK {
			t.Errorf("fig12 %s/NTGA-Lazy failed: %s", qid, r.Err)
		}
	}
	for _, qid := range []string{"B3", "B4"} {
		eager := requireRun(t, rep, qid, "NTGA-Eager")
		lazy := requireRun(t, rep, qid, "NTGA-Lazy")
		if !eager.OK {
			t.Errorf("fig12 %s/NTGA-Eager failed: %s", qid, eager.Err)
			continue
		}
		if lazy.WriteBytes >= eager.WriteBytes {
			t.Errorf("fig12 %s: lazy writes not below eager", qid)
		}
	}
}

func TestFig13OutputCardinalities(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	rep := runFigure(t, "fig13")
	// The paper's A1 triad: relational tuples > eager TGs > lazy TGs.
	hive := requireRun(t, rep, "A1", "Hive")
	eager := requireRun(t, rep, "A1", "NTGA-Eager")
	lazy := requireRun(t, rep, "A1", "NTGA-Lazy")
	if !(lazy.OutputRecords < eager.OutputRecords && eager.OutputRecords < hive.OutputRecords) {
		t.Errorf("A1 cardinalities: hive=%d eager=%d lazy=%d, want strictly decreasing",
			hive.OutputRecords, eager.OutputRecords, lazy.OutputRecords)
	}
	// Every A-query must succeed everywhere and produce results.
	for _, qid := range []string{"A1", "A2", "A3", "A4", "A5", "A6"} {
		for _, eng := range []string{"Pig", "Hive", "NTGA-Eager", "NTGA-Lazy"} {
			r := requireRun(t, rep, qid, eng)
			if !r.OK {
				t.Errorf("fig13 %s/%s failed: %s", qid, eng, r.Err)
			}
			if r.OK && r.Rows == 0 {
				t.Errorf("fig13 %s/%s returned no rows", qid, eng)
			}
		}
	}
	// A4: NTGA writes a fraction of Hive's (paper: 1.8GB/0.6GB vs 152GB).
	h4 := requireRun(t, rep, "A4", "Hive")
	l4 := requireRun(t, rep, "A4", "NTGA-Lazy")
	if float64(l4.WriteBytes) > 0.5*float64(h4.WriteBytes) {
		t.Errorf("A4 lazy writes %d vs hive %d, want < 50%%", l4.WriteBytes, h4.WriteBytes)
	}
}

func TestFig14RedundancyFactors(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	rep := runFigure(t, "fig14")
	// C4 (unbound in each star): highest redundancy; lazy writes far less.
	// rep.Queries holds small-scale then big-scale runs; check both C4s.
	n := 0
	for _, qr := range rep.Queries {
		if qr.Query.ID != "C4" {
			continue
		}
		n++
		hive, _ := qr.Run("Hive")
		lazy, _ := qr.Run("NTGA-Lazy")
		if !hive.OK || !lazy.OK {
			t.Fatalf("C4 failed: %s / %s", hive.Err, lazy.Err)
		}
		if float64(lazy.OutputBytes) > 0.35*float64(hive.OutputBytes) {
			t.Errorf("C4 lazy output %d vs hive %d: redundancy factor below paper's ~0.89 ballpark",
				lazy.OutputBytes, hive.OutputBytes)
		}
	}
	if n != 2 {
		t.Errorf("expected C4 at both scales, saw %d", n)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	for _, id := range []string{"abl-phim", "abl-mult", "abl-repl", "abl-select", "abl-agg", "abl-share", "abl-sort"} {
		rep := runFigure(t, id)
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) == 0 {
			t.Errorf("%s produced no table rows", id)
		}
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if _, err := RunFigure("nope", Options{}); err == nil {
		t.Error("unknown figure accepted")
	}
	if len(Figures()) < 10 {
		t.Errorf("Figures() = %v", Figures())
	}
}

func TestReportRender(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	rep := runFigure(t, "fig10")
	out := rep.Render()
	for _, want := range []string{"fig10", "B1-3bnd", "NTGA-Lazy", "savings"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

// TestFig9aTextExactPaperPattern: under the text wire the relational
// engines fail all five queries — the paper's exact Figure 9(a).
func TestFig9aTextExactPaperPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	rep := runFigure(t, "fig9a-text")
	for _, qid := range []string{"B0", "B1", "B2", "B3", "B4"} {
		for _, eng := range []string{"Pig-text", "Hive-text"} {
			r := requireRun(t, rep, qid, eng)
			if r.OK {
				t.Errorf("fig9a-text %s/%s should fail on disk space", qid, eng)
			} else if !strings.Contains(r.Err, "disk") {
				t.Errorf("fig9a-text %s/%s failed for non-disk reason: %s", qid, eng, r.Err)
			}
		}
		if r := requireRun(t, rep, qid, "NTGA-Lazy"); !r.OK {
			t.Errorf("fig9a-text %s/NTGA-Lazy failed: %s", qid, r.Err)
		}
	}
	for _, qid := range []string{"B0", "B1", "B2"} {
		if r := requireRun(t, rep, qid, "NTGA-Eager"); !r.OK {
			t.Errorf("fig9a-text %s/NTGA-Eager failed: %s", qid, r.Err)
		}
	}
	for _, qid := range []string{"B3", "B4"} {
		if r := requireRun(t, rep, qid, "NTGA-Eager"); r.OK {
			t.Errorf("fig9a-text %s/NTGA-Eager should fail", qid)
		}
	}
}

func TestEngineByName(t *testing.T) {
	for _, name := range []string{"pig", "hive", "sj-per-cycle", "sel-sj-first",
		"ntga-eager", "ntga-lazy", "ntga-lazy-full", "ntga-lazy-partial"} {
		eng, err := EngineByName(name, 0)
		if err != nil || eng == nil {
			t.Errorf("EngineByName(%q) = %v, %v", name, eng, err)
		}
	}
	if _, err := EngineByName("nope", 0); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestPhiMForScale(t *testing.T) {
	if PhiMForScale(0) != 16 || PhiMForScale(1) != 16 {
		t.Errorf("small scale = %d/%d", PhiMForScale(0), PhiMForScale(1))
	}
	if PhiMForScale(1000) != 1024 {
		t.Errorf("large scale = %d, want clamp at 1024", PhiMForScale(1000))
	}
}
