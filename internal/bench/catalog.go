// Package bench is the experiment harness: it holds the query catalog
// (the Q/B/A/C series of the paper's evaluation), builds the scaled-down
// datasets and clusters, runs every engine, and formats per-figure reports.
package bench

import (
	"fmt"
)

// CatalogQuery is one benchmark query.
type CatalogQuery struct {
	// ID is the paper's query name (B1, A3, Q1a, C4, B1-4bnd, ...).
	ID string
	// Dataset names the generator the query runs on: bsbm, lifesci, infobox.
	Dataset string
	// Src is the SPARQL text.
	Src string
	// Description summarizes the query's structural role in the evaluation.
	Description string
}

const bsbmPrefix = `PREFIX bsbm: <http://bsbm.example.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
`

const bioPrefix = `PREFIX bio: <http://bio2rdf.example.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
`

const dbPrefix = `PREFIX db: <http://dbpedia.example.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
`

// catalog lists every benchmark query. Order within a series matches the
// paper's figures.
var catalog = []CatalogQuery{
	// ---- Figure 3 case study: bound-only 2-star queries ----
	{ID: "Q1a", Dataset: "bsbm", Description: "O-S join product→producer",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?prod bsbm:label ?l . ?prod bsbm:producer ?pr .
  ?pr bsbm:label ?prl . ?pr bsbm:country ?c .
}`},
	{ID: "Q1b", Dataset: "bsbm", Description: "Q1a with selective object filters",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?prod bsbm:label ?l . ?prod bsbm:producer ?pr .
  ?pr bsbm:label ?prl . ?pr bsbm:country ?c .
  FILTER(CONTAINS(?l, "product 1"))
  FILTER(?c = bsbm:Country3)
}`},
	{ID: "Q2a", Dataset: "bsbm", Description: "O-S join offer→product",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?o bsbm:product ?prod . ?o bsbm:vendor ?v . ?o bsbm:price ?price .
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f .
}`},
	{ID: "Q2b", Dataset: "bsbm", Description: "Q2a with selective object filters",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?o bsbm:product ?prod . ?o bsbm:vendor ?v . ?o bsbm:price ?price .
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f .
  FILTER(?v = bsbm:Vendor1)
  FILTER(CONTAINS(?l, "product 1"))
}`},
	{ID: "Q3a", Dataset: "bsbm", Description: "O-O join on shared feature",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?a bsbm:productFeature ?f . ?a bsbm:label ?al .
  ?b bsbm:productFeature ?f . ?b bsbm:comment ?bc .
}`},
	{ID: "Q3b", Dataset: "bsbm", Description: "Q3a with selective object filters",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?a bsbm:productFeature ?f . ?a bsbm:label ?al .
  ?b bsbm:productFeature ?f . ?b bsbm:comment ?bc .
  FILTER(CONTAINS(?al, "product 1"))
  FILTER(CONTAINS(?bc, "product 2"))
}`},

	// ---- B series: varying unbound-property join structures (Figs 9, 12) ----
	{ID: "B0", Dataset: "bsbm", Description: "baseline: two bound stars, O-S join",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?o bsbm:product ?prod . ?o bsbm:price ?price . ?o bsbm:vendor ?v .
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f .
}`},
	{ID: "B1", Dataset: "bsbm", Description: "join on unbound-property object",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f . ?prod ?p ?x .
  ?x bsbm:label ?xl . ?x rdf:type bsbm:FeatureType .
}`},
	{ID: "B2", Dataset: "bsbm", Description: "unbound property with partially-bound object",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f . ?prod ?p ?x .
  ?x bsbm:label ?xl . ?x rdf:type bsbm:FeatureType .
  FILTER(CONTAINS(?x, "Feature"))
}`},
	{ID: "B3", Dataset: "bsbm", Description: "two unbound patterns in one star, one partially bound",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f . ?prod ?p ?x . ?prod ?q ?y .
  ?x bsbm:label ?xl . ?x rdf:type bsbm:FeatureType .
  FILTER(CONTAINS(?y, "Pro"))
}`},
	{ID: "B4", Dataset: "bsbm", Description: "unbound pattern not participating in the join",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?o bsbm:product ?prod . ?o bsbm:price ?price . ?o bsbm:vendor ?v .
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f . ?prod ?p ?any .
}`},
	{ID: "B5", Dataset: "bsbm", Description: "three stars, unbound join in the middle",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?o bsbm:product ?prod . ?o bsbm:vendor ?v .
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f . ?prod ?p ?x .
  ?x bsbm:label ?xl . ?x rdf:type bsbm:FeatureType .
}`},
	{ID: "B6", Dataset: "bsbm", Description: "O-O join with an unbound pattern in each star",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?a bsbm:productFeature ?f . ?a bsbm:label ?al . ?a ?p ?x .
  ?b bsbm:productFeature ?f . ?b bsbm:comment ?bc . ?b ?q ?y .
  FILTER(CONTAINS(?y, "Producer"))
}`},

	{ID: "B7", Dataset: "bsbm", Description: "three stars on one join variable, selective review star last in syntax order",
		Src: bsbmPrefix + `SELECT * WHERE {
  ?o bsbm:product ?prod . ?o bsbm:vendor ?v . ?o bsbm:price ?price .
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f .
  ?r bsbm:reviewFor ?prod . ?r bsbm:rating ?rt .
  FILTER(?rt = "10")
}`},

	// ---- B1 with varying bound-property arity (Figs 9c, 10) ----
	{ID: "B1-3bnd", Dataset: "bsbm", Description: "B1 with 3 bound properties", Src: b1Bnd(3)},
	{ID: "B1-4bnd", Dataset: "bsbm", Description: "B1 with 4 bound properties", Src: b1Bnd(4)},
	{ID: "B1-5bnd", Dataset: "bsbm", Description: "B1 with 5 bound properties", Src: b1Bnd(5)},
	{ID: "B1-6bnd", Dataset: "bsbm", Description: "B1 with 6 bound properties", Src: b1Bnd(6)},

	// ---- A series: Bio2RDF-style real-world queries (Fig 13) ----
	{ID: "A1", Dataset: "lifesci", Description: "single star, unbound property with partially-bound object",
		Src: bioPrefix + `SELECT * WHERE {
  ?g rdf:type bio:Gene . ?g bio:label ?l . ?g bio:synonym ?syn . ?g ?p ?x .
  FILTER(CONTAINS(?x, "go"))
}`},
	{ID: "A2", Dataset: "lifesci", Description: "single star, unbound property narrowed to references",
		Src: bioPrefix + `SELECT * WHERE {
  ?g rdf:type bio:Gene . ?g bio:organism ?org . ?g ?p ?x .
  FILTER(CONTAINS(?x, "ref"))
}`},
	{ID: "A3", Dataset: "lifesci", Description: "two stars, unbound in each (one partially bound)",
		Src: bioPrefix + `SELECT * WHERE {
  ?g rdf:type bio:Gene . ?g ?p ?x .
  ?x rdf:type bio:GOTerm . ?x ?q ?y .
  FILTER(CONTAINS(?y, "ns/"))
}`},
	{ID: "A4", Dataset: "lifesci", Description: "two stars joined on unbound object, unbound in second",
		Src: bioPrefix + `SELECT * WHERE {
  ?g bio:label ?l . ?g bio:synonym ?s . ?g ?p ?x .
  ?x bio:source ?src . ?x ?q ?y .
}`},
	{ID: "A5", Dataset: "lifesci", Description: "star with two unbound patterns, one object pinned to nur77",
		Src: bioPrefix + `SELECT * WHERE {
  ?s ?p ?g . ?s ?q ?x .
  ?x bio:label ?xl .
  FILTER(?g = bio:gene0)
}`},
	{ID: "A6", Dataset: "lifesci", Description: "entities related to the hexokinase gene via any property",
		Src: bioPrefix + `SELECT * WHERE {
  ?g ?p ?x . ?g rdf:type bio:Gene .
  ?x bio:label ?hl .
  FILTER(CONTAINS(?hl, "hexokinase"))
}`},

	// ---- C series: DBpedia/BTC exploration queries (Fig 14) ----
	{ID: "C1", Dataset: "infobox", Description: "all information about Scientists",
		Src: dbPrefix + `SELECT * WHERE {
  ?s rdf:type db:Scientist . ?s ?p ?o .
}`},
	{ID: "C2", Dataset: "infobox", Description: "all information about The Sopranos",
		Src: dbPrefix + `SELECT * WHERE {
  db:The_Sopranos ?p ?o .
}`},
	{ID: "C3", Dataset: "infobox", Description: "unknown relationship between scientists and cities",
		Src: dbPrefix + `SELECT * WHERE {
  ?a rdf:type db:Scientist . ?a db:knownFor ?k . ?a ?p ?x .
  ?x rdf:type db:City . ?x db:name ?n .
}`},
	{ID: "C4", Dataset: "infobox", Description: "unbound property in each star",
		Src: dbPrefix + `SELECT * WHERE {
  ?a rdf:type db:Scientist . ?a db:knownFor ?k . ?a ?p ?x .
  ?x rdf:type db:City . ?x ?q ?y .
}`},
}

// b1Bnd builds the B1 variant with n bound properties in the product star.
func b1Bnd(n int) string {
	bound := []string{
		"?prod bsbm:label ?l .",
		"?prod bsbm:productFeature ?f .",
		"?prod bsbm:comment ?c .",
		"?prod bsbm:propertyNum1 ?n1 .",
		"?prod bsbm:propertyTex1 ?t1 .",
		"?prod bsbm:propertyNum2 ?n2 .",
	}
	src := bsbmPrefix + "SELECT * WHERE {\n"
	for i := 0; i < n; i++ {
		src += "  " + bound[i] + "\n"
	}
	src += "  ?prod ?p ?x .\n  ?x bsbm:label ?xl . ?x rdf:type bsbm:FeatureType .\n}"
	return src
}

// Catalog returns every benchmark query.
func Catalog() []CatalogQuery {
	out := make([]CatalogQuery, len(catalog))
	copy(out, catalog)
	return out
}

// Lookup returns the catalog query with the given ID.
func Lookup(id string) (CatalogQuery, error) {
	for _, q := range catalog {
		if q.ID == id {
			return q, nil
		}
	}
	return CatalogQuery{}, fmt.Errorf("bench: unknown query %q", id)
}

// Series returns the catalog queries whose IDs are listed, in order.
func Series(ids ...string) ([]CatalogQuery, error) {
	out := make([]CatalogQuery, 0, len(ids))
	for _, id := range ids {
		q, err := Lookup(id)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}
