package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ChromeEvent is one trace_event record as consumed by chrome://tracing and
// Perfetto. Only the duration-event subset is emitted: "B"/"E" pairs plus
// "M" metadata events naming processes and threads.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since the tracer epoch
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of the format ("[...]"
// bare-array traces are also legal; the object form lets viewers attach
// display units).
type chromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track assignment: the workflow span lives on (pid 1, tid 1); every job
// gets its own pid (jobs within a stage run concurrently, and duration
// events on one track must nest); a job's span and its commit live on the
// job's tid 1 while task spans (and their phase children) live on tid
// 2+taskIndex. Map task i and reduce task i may share a tid because the
// phases never overlap — the reduce phase starts only after every map task
// has finished.
const (
	workflowPid = 1
	controlTid  = 1
)

// ChromeEvents flattens span trees into balanced B/E duration events plus
// process/thread-naming metadata, timestamped in microseconds relative to
// epoch.
func ChromeEvents(roots []*Span, epoch time.Time) []ChromeEvent {
	var events []ChromeEvent
	nextJobPid := workflowPid + 1
	ts := func(t time.Time) float64 {
		return float64(t.Sub(epoch).Nanoseconds()) / 1e3
	}
	named := map[[2]int]bool{}
	var emit func(s *Span, pid, tid int)
	emit = func(s *Span, pid, tid int) {
		switch s.Kind {
		case KindJob:
			pid = nextJobPid
			nextJobPid++
			tid = controlTid
			events = append(events, ChromeEvent{Name: "process_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": "job " + s.Name}})
		case KindTask:
			tid = 2 + s.Task
			if !named[[2]int{pid, tid}] {
				named[[2]int{pid, tid}] = true
				events = append(events, ChromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": fmt.Sprintf("task %d", s.Task)}})
			}
		}
		args := map[string]any{}
		if s.Task >= 0 {
			args["task"] = s.Task
			args["node"] = s.Node
			args["attempt"] = s.Attempt
		}
		if s.Records != 0 {
			args["records"] = s.Records
		}
		if s.Bytes != 0 {
			args["bytes"] = s.Bytes
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, ChromeEvent{Name: s.Name, Cat: string(s.Kind), Ph: "B",
			Ts: ts(s.Start), Pid: pid, Tid: tid, Args: args})
		for _, c := range s.children {
			emit(c, pid, tid)
		}
		events = append(events, ChromeEvent{Name: s.Name, Cat: string(s.Kind), Ph: "E",
			Ts: ts(s.End), Pid: pid, Tid: tid})
	}
	for _, r := range roots {
		emit(r, workflowPid, controlTid)
	}
	return events
}

// WriteChrome exports the tracer's span trees as Chrome trace_event JSON,
// loadable in chrome://tracing and https://ui.perfetto.dev. A nil tracer
// writes an empty (but valid) trace.
func (t *Tracer) WriteChrome(w io.Writer) error {
	trace := chromeTrace{TraceEvents: []ChromeEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		trace.TraceEvents = ChromeEvents(t.Roots(), t.epoch)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
