package trace

import (
	"fmt"
	"strings"
	"time"

	"ntga/internal/stats"
)

// Timeline renders span trees as plain-text per-job timeline tables: one
// table per job with a row per task attempt — start offset (relative to the
// job), duration, an ASCII gantt bar, I/O counts, and the task's phase
// breakdown. Commit spans and nested workflows render as ordinary rows.
func Timeline(roots []*Span) string {
	var sb strings.Builder
	for _, r := range roots {
		r.Walk(func(s *Span, _ int) {
			if s.Kind == KindJob {
				sb.WriteString(jobTimeline(s))
			}
		})
	}
	return sb.String()
}

const ganttWidth = 24

func jobTimeline(job *Span) string {
	t := &stats.Table{
		Title:  fmt.Sprintf("-- timeline: job %s (%s) --", job.Name, fmtDur(job.Duration())),
		Header: []string{"span", "node", "start", "dur", "timeline", "records", "bytes", "phases"},
	}
	jobDur := job.Duration()
	for _, c := range job.Children() {
		name := c.Name
		if c.Task >= 0 {
			name = fmt.Sprintf("%s[%d]", c.Name, c.Task)
			if c.Attempt > 0 {
				name += fmt.Sprintf("#%d", c.Attempt)
			}
		}
		node := "-"
		if c.Node >= 0 {
			node = fmt.Sprintf("n%d", c.Node)
		}
		t.AddRow(name, node,
			fmtDur(c.Start.Sub(job.Start)), fmtDur(c.Duration()),
			gantt(job.Start, jobDur, c),
			c.Records, stats.FormatBytes(c.Bytes), phaseSummary(c))
	}
	return t.Render() + "\n"
}

// gantt draws the span's interval as a bar within the job's extent.
func gantt(jobStart time.Time, jobDur time.Duration, s *Span) string {
	if jobDur <= 0 {
		return strings.Repeat("·", ganttWidth)
	}
	frac := func(t time.Time) int {
		f := float64(t.Sub(jobStart)) / float64(jobDur)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return int(f * ganttWidth)
	}
	from, to := frac(s.Start), frac(s.End)
	if to <= from {
		to = from + 1
		if to > ganttWidth {
			from, to = ganttWidth-1, ganttWidth
		}
	}
	return strings.Repeat("·", from) + strings.Repeat("#", to-from) + strings.Repeat("·", ganttWidth-to)
}

// phaseSummary compacts a task's phase children into "scan 1.2ms | map
// 3.4ms | spill×2 0.8ms" form, merging repeated kinds.
func phaseSummary(task *Span) string {
	type agg struct {
		kind  Kind
		n     int
		total time.Duration
	}
	var order []Kind
	byKind := map[Kind]*agg{}
	for _, c := range task.Children() {
		a, ok := byKind[c.Kind]
		if !ok {
			a = &agg{kind: c.Kind}
			byKind[c.Kind] = a
			order = append(order, c.Kind)
		}
		a.n++
		a.total += c.Duration()
	}
	parts := make([]string, 0, len(order))
	for _, k := range order {
		a := byKind[k]
		label := string(k)
		if a.n > 1 {
			label = fmt.Sprintf("%s×%d", k, a.n)
		}
		parts = append(parts, fmt.Sprintf("%s %s", label, fmtDur(a.total)))
	}
	return strings.Join(parts, " | ")
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d.Microseconds()))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
