package trace

import (
	"strings"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.Start(KindJob, "j")
	if s != nil {
		t.Fatalf("nil tracer Start returned %v, want nil", s)
	}
	// Every span method must be a silent no-op on nil.
	c := s.Child(KindCommit, "c", 0)
	if c != nil {
		t.Fatalf("nil span Child returned %v, want nil", c)
	}
	if ct := s.ChildTask("m", 0, 0, 0, 0); ct != nil {
		t.Fatalf("nil span ChildTask returned %v, want nil", ct)
	}
	s.AddPhase(KindScan, "scan", time.Millisecond, 1, 2)
	s.SetIO(1, 2)
	s.Finish()
	s.Walk(func(*Span, int) { t.Fatal("nil span Walk visited a node") })
	if d := s.Duration(); d != 0 {
		t.Fatalf("nil span Duration = %v, want 0", d)
	}
	if ch := s.Children(); ch != nil {
		t.Fatalf("nil span Children = %v, want nil", ch)
	}
	if roots := tr.Roots(); roots != nil {
		t.Fatalf("nil tracer Roots = %v, want nil", roots)
	}
	if !tr.Epoch().IsZero() {
		t.Fatal("nil tracer Epoch should be zero")
	}
}

func TestRootsSortSiblingsByGroup(t *testing.T) {
	tr := New()
	w := tr.Start(KindWorkflow, "wf")
	// Created out of group order, as a goroutine pool would.
	w.Child(KindJob, "third", 2).Finish()
	w.Child(KindJob, "first", 0).Finish()
	w.Child(KindJob, "second", 1).Finish()
	w.Finish()
	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	var names []string
	for _, c := range roots[0].Children() {
		names = append(names, c.Name)
	}
	want := []string{"first", "second", "third"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sorted children = %v, want %v", names, want)
		}
	}
}

func TestRootsSortTaskAttempts(t *testing.T) {
	tr := New()
	j := tr.Start(KindJob, "job")
	// Same group (one task, two attempts), reverse creation order plus a
	// different task in a lower group created last.
	j.ChildTask("map", 1, 1, 0, 1).Finish()
	j.ChildTask("map", 1, 1, 0, 0).Finish()
	j.ChildTask("map", 0, 0, 0, 0).Finish()
	j.Finish()
	ch := tr.Roots()[0].Children()
	got := []int{ch[0].Task, ch[1].Attempt, ch[2].Attempt}
	if ch[0].Task != 0 || ch[1].Task != 1 || ch[1].Attempt != 0 || ch[2].Attempt != 1 {
		t.Fatalf("sorted (task, attempt) order wrong: %v", got)
	}
}

func TestPhasesMaterializeSequentially(t *testing.T) {
	tr := New()
	s := tr.Start(KindTask, "map")
	s.AddPhase(KindScan, "scan", time.Millisecond, 10, 100)
	s.AddPhase(KindMap, "map", 2*time.Millisecond, 20, 200)
	time.Sleep(5 * time.Millisecond) // ensure the span outlasts its phases
	s.Finish()
	ch := tr.Roots()[0].Children()
	if len(ch) != 2 {
		t.Fatalf("materialized %d phases, want 2", len(ch))
	}
	if ch[0].Kind != KindScan || ch[1].Kind != KindMap {
		t.Fatalf("phase kinds = %v, %v", ch[0].Kind, ch[1].Kind)
	}
	if !ch[0].Start.Equal(s.Start) {
		t.Error("first phase must start at the span start")
	}
	if !ch[1].Start.Equal(ch[0].End) {
		t.Error("phases must be laid out back to back")
	}
	if ch[1].End.After(s.End) {
		t.Error("phases must not extend past the span end")
	}
	if ch[0].Records != 10 || ch[0].Bytes != 100 {
		t.Errorf("phase IO = (%d, %d), want (10, 100)", ch[0].Records, ch[0].Bytes)
	}
}

func TestPhasesClampToSpanEnd(t *testing.T) {
	tr := New()
	s := tr.Start(KindTask, "map")
	// A phase longer than the span itself (measurement jitter) must clamp.
	s.AddPhase(KindScan, "scan", time.Hour, 0, 0)
	s.AddPhase(KindMap, "map", time.Hour, 0, 0)
	s.Finish()
	for _, c := range tr.Roots()[0].Children() {
		if c.Start.Before(s.Start) || c.End.After(s.End) {
			t.Fatalf("phase [%v, %v] escapes span [%v, %v]", c.Start, c.End, s.Start, s.End)
		}
		if c.End.Before(c.Start) {
			t.Fatalf("phase end precedes start")
		}
	}
}

func TestTreeStringOmitsTimestamps(t *testing.T) {
	tr := New()
	j := tr.Start(KindJob, "job")
	m := j.ChildTask("map", 0, 0, 2, 0)
	m.AddPhase(KindScan, "scan", time.Millisecond, 5, 50)
	m.SetIO(7, 70)
	m.Finish()
	j.Finish()
	got := TreeString(tr.Roots())
	want := "job \"job\"\n" +
		"  task \"map\" task=0 node=2 attempt=0 records=7 bytes=70\n" +
		"    scan \"scan\" task=0 node=2 attempt=0 records=5 bytes=50\n"
	if got != want {
		t.Fatalf("TreeString =\n%s\nwant\n%s", got, want)
	}
	if strings.Contains(got, ":") {
		t.Fatalf("TreeString must not contain timestamps:\n%s", got)
	}
}
