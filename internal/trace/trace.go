// Package trace records the execution timeline of MapReduce workflows as a
// tree of typed spans: a workflow span contains job spans, a job span
// contains task spans (one per map/reduce task attempt) plus a commit span,
// and each task span contains phase spans (scan, map, sort, spill, merge
// pass, reduce, DFS write) with wall-clock intervals and record/byte
// counts.
//
// The package is designed around two constraints of the engine it
// instruments:
//
//   - Zero overhead when disabled. Every method is safe on a nil *Tracer or
//     nil *Span and does nothing, so the engine calls the API
//     unconditionally; with no tracer configured the calls reduce to a nil
//     check.
//   - Deterministic trees under concurrency. Tasks run on a goroutine pool,
//     so spans are appended to their parent in a nondeterministic order;
//     every span carries an engine-assigned ordering group and Roots()
//     sorts siblings by (group, task, attempt) before returning the tree.
//     Two runs of the same seeded workload therefore produce identical
//     trees up to timestamps (see TreeString).
//
// Phases inside one task are recorded as *accumulated* durations (AddPhase)
// rather than live sub-spans: the engine's scan/map and reduce/write loops
// are fused — one streaming pass interleaves the phases record by record —
// so the per-phase time is summed across the loop and laid out sequentially
// inside the task span when it ends. This keeps intervals properly nested
// for Chrome trace_event export while still reporting where the task's time
// went.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies a span.
type Kind string

// Span kinds, mirroring the lifecycle of a Hadoop-style MR workflow.
const (
	KindWorkflow Kind = "workflow"
	KindJob      Kind = "job"
	KindTask     Kind = "task"
	KindScan     Kind = "scan"   // reading input records from the DFS
	KindMap      Kind = "map"    // user map function
	KindSort     Kind = "sort"   // sorting (and combining) the final in-memory segment
	KindSpill    Kind = "spill"  // sorting + writing one run to node-local disk
	KindMerge    Kind = "merge"  // one external merge pass over spilled runs
	KindReduce   Kind = "reduce" // merge-group iteration + user reduce function
	KindWrite    Kind = "write"  // streaming output records into the DFS
	KindCommit   Kind = "commit" // splicing part files into the job outputs
)

// Span is one node of the execution tree. Exported fields are read-only
// once the span has ended; a Span must only be mutated by the goroutine
// that started it.
type Span struct {
	Kind Kind
	Name string
	// Task is the task index within the job (-1 for non-task spans).
	Task int
	// Node is the simulated data node the task ran on (-1 when not
	// task-scoped).
	Node int
	// Attempt is the task attempt number (0 = first attempt).
	Attempt int
	// Group orders siblings deterministically (engine-assigned; creation
	// order is nondeterministic under the task goroutine pool).
	Group int

	Start, End time.Time
	// Records and Bytes describe the span's dominant data flow (input
	// records scanned, bytes spilled, output bytes written, ... — see the
	// engine's instrumentation for the per-kind meaning).
	Records int64
	Bytes   int64

	tracer   *Tracer
	children []*Span
	phases   []phase
}

// phase is one accumulated in-task phase, materialized as a child span
// when the task span ends.
type phase struct {
	kind    Kind
	name    string
	dur     time.Duration
	records int64
	bytes   int64
}

// Tracer collects span trees. The zero value is not usable; construct with
// New. A nil *Tracer is a valid no-op sink.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	roots []*Span
}

// New returns an empty tracer whose epoch (the zero timestamp of exported
// traces) is the moment of creation.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Epoch returns the tracer's zero timestamp.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Start opens a root span. Returns nil when the tracer is nil.
func (t *Tracer) Start(kind Kind, name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Kind: kind, Name: name, Task: -1, Node: -1, Start: time.Now(), tracer: t}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Child opens a sub-span with an explicit ordering group. Safe on a nil
// receiver (returns nil).
func (s *Span) Child(kind Kind, name string, group int) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Kind: kind, Name: name, Task: -1, Node: -1, Group: group,
		Start: time.Now(), tracer: s.tracer}
	s.tracer.mu.Lock()
	s.children = append(s.children, c)
	s.tracer.mu.Unlock()
	return c
}

// ChildTask opens a task sub-span carrying task index, simulated node, and
// attempt number. The ordering group must be unique per task within the
// parent (attempts of one task share it and stay in creation order).
func (s *Span) ChildTask(name string, group, task, node, attempt int) *Span {
	c := s.Child(KindTask, name, group)
	if c == nil {
		return nil
	}
	c.Task = task
	c.Node = node
	c.Attempt = attempt
	return c
}

// AddPhase accumulates one in-task phase. Phases are laid out sequentially
// inside the span's interval when End is called, in AddPhase order. Safe on
// a nil receiver.
func (s *Span) AddPhase(kind Kind, name string, d time.Duration, records, bytes int64) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.phases = append(s.phases, phase{kind: kind, name: name, dur: d, records: records, bytes: bytes})
}

// SetIO records the span's record/byte counts. Safe on a nil receiver.
func (s *Span) SetIO(records, bytes int64) {
	if s == nil {
		return
	}
	s.Records = records
	s.Bytes = bytes
}

// Finish closes the span, stamping its end time and materializing
// accumulated phases as sequential child spans clamped to the span's
// interval. Safe on a nil receiver.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.End = time.Now()
	s.materializePhases()
}

func (s *Span) materializePhases() {
	if len(s.phases) == 0 {
		return
	}
	cursor := s.Start
	for _, p := range s.phases {
		start := cursor
		end := start.Add(p.dur)
		if end.After(s.End) {
			end = s.End // clamp: measurement jitter must not break nesting
			if start.After(end) {
				start = end
			}
		}
		c := &Span{Kind: p.kind, Name: p.name, Task: s.Task, Node: s.Node,
			Group: len(s.children), Start: start, End: end,
			Records: p.records, Bytes: p.bytes, tracer: s.tracer}
		s.children = append(s.children, c)
		cursor = end
	}
	s.phases = nil
}

// Roots returns the tracer's span trees with every sibling list sorted
// deterministically by (Group, Task, Attempt), creation order breaking
// ties. Call after the traced run has completed; the returned spans are the
// tracer's own (not copies).
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.roots {
		r.sortTree()
	}
	return t.roots
}

func (s *Span) sortTree() {
	sort.SliceStable(s.children, func(i, j int) bool {
		a, b := s.children[i], s.children[j]
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		return a.Attempt < b.Attempt
	})
	for _, c := range s.children {
		c.sortTree()
	}
}

// Children returns the span's sub-spans (sorted if obtained via Roots).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Duration is the span's wall-clock extent.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Walk visits the span and its descendants depth-first, pre-order.
func (s *Span) Walk(fn func(*Span, int)) {
	if s == nil {
		return
	}
	s.walk(fn, 0)
}

func (s *Span) walk(fn func(*Span, int), depth int) {
	fn(s, depth)
	for _, c := range s.children {
		c.walk(fn, depth+1)
	}
}

// TreeString renders span trees as indented text with every
// timing-independent attribute (kind, name, task, node, attempt, records,
// bytes) and no timestamps — the canonical form the determinism tests
// compare across runs.
func TreeString(roots []*Span) string {
	var sb strings.Builder
	for _, r := range roots {
		r.Walk(func(s *Span, depth int) {
			sb.WriteString(strings.Repeat("  ", depth))
			fmt.Fprintf(&sb, "%s %q", s.Kind, s.Name)
			if s.Task >= 0 {
				fmt.Fprintf(&sb, " task=%d node=%d attempt=%d", s.Task, s.Node, s.Attempt)
			}
			if s.Records != 0 || s.Bytes != 0 {
				fmt.Fprintf(&sb, " records=%d bytes=%d", s.Records, s.Bytes)
			}
			sb.WriteByte('\n')
		})
	}
	return sb.String()
}
