package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// buildSampleTrace assembles a tracer shaped like a real run: a workflow
// containing two jobs (as from one concurrent stage), each with task spans
// carrying phase children, plus a commit span.
func buildSampleTrace() *Tracer {
	tr := New()
	w := tr.Start(KindWorkflow, "wf")
	for j := 0; j < 2; j++ {
		job := w.Child(KindJob, "job", j)
		for i := 0; i < 3; i++ {
			m := job.ChildTask("map", i, i, i%2, 0)
			m.AddPhase(KindScan, "scan", time.Microsecond, 4, 40)
			m.AddPhase(KindMap, "map", time.Microsecond, 8, 80)
			m.Finish()
		}
		r := job.ChildTask("reduce", 3, 0, 0, 0)
		r.AddPhase(KindReduce, "reduce", time.Microsecond, 8, 80)
		r.AddPhase(KindWrite, "write", time.Microsecond, 2, 20)
		r.Finish()
		job.Child(KindCommit, "commit", 4).Finish()
		job.Finish()
	}
	w.Finish()
	return tr
}

// checkChromeSchema decodes trace_event JSON and validates the invariants a
// viewer depends on: the traceEvents container, required fields on every
// event, and strictly balanced B/E pairs per (pid, tid) track with matching
// names and non-decreasing timestamps.
func checkChromeSchema(t *testing.T, raw []byte) map[string]int {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.TraceEvents == nil {
		t.Fatal("trace has no traceEvents array")
	}
	type frame struct {
		name string
		ts   float64
	}
	stacks := map[[2]int][]frame{}
	phases := map[string]int{}
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, field, ev)
			}
		}
		ph := ev["ph"].(string)
		phases[ph]++
		if ph == "M" {
			continue
		}
		if ph != "B" && ph != "E" {
			t.Fatalf("event %d has unexpected phase %q", i, ph)
		}
		track := [2]int{int(ev["pid"].(float64)), int(ev["tid"].(float64))}
		name := ev["name"].(string)
		ts := ev["ts"].(float64)
		if ph == "B" {
			stacks[track] = append(stacks[track], frame{name, ts})
			continue
		}
		st := stacks[track]
		if len(st) == 0 {
			t.Fatalf("event %d: E %q on track %v with no open B", i, name, track)
		}
		top := st[len(st)-1]
		if top.name != name {
			t.Fatalf("event %d: E %q closes B %q on track %v (improper nesting)", i, name, top.name, track)
		}
		if ts < top.ts {
			t.Fatalf("event %d: E %q at ts %v precedes its B at %v", i, name, ts, top.ts)
		}
		stacks[track] = st[:len(st)-1]
	}
	for track, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("track %v has %d unclosed B events (first: %q)", track, len(st), st[0].name)
		}
	}
	return phases
}

func TestWriteChromeSchema(t *testing.T) {
	tr := buildSampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	phases := checkChromeSchema(t, buf.Bytes())
	if phases["B"] == 0 || phases["B"] != phases["E"] {
		t.Fatalf("B/E counts = %d/%d, want equal and nonzero", phases["B"], phases["E"])
	}
	// workflow + 2×(job + 3 map tasks×(1+2 phases) + reduce×(1+2 phases) + commit)
	wantPairs := 1 + 2*(1+3*3+3+1)
	if phases["B"] != wantPairs {
		t.Fatalf("B events = %d, want %d", phases["B"], wantPairs)
	}
	if phases["M"] == 0 {
		t.Fatal("expected process/thread naming metadata events")
	}
}

func TestWriteChromeDistinctJobPids(t *testing.T) {
	tr := buildSampleTrace()
	events := ChromeEvents(tr.Roots(), tr.Epoch())
	jobPids := map[int]bool{}
	for _, ev := range events {
		if ev.Ph == "B" && ev.Cat == string(KindJob) {
			jobPids[ev.Pid] = true
		}
	}
	if len(jobPids) != 2 {
		t.Fatalf("2 concurrent jobs must get 2 distinct pids, got %v", jobPids)
	}
	if jobPids[workflowPid] {
		t.Fatal("a job must not share the workflow's pid")
	}
}

func TestWriteChromeNilTracer(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil tracer WriteChrome: %v", err)
	}
	checkChromeSchema(t, buf.Bytes())
}
