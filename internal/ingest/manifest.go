// Package ingest is the warehouse's write path: it turns the read-only,
// load-once triple store into an incrementally maintained one. New data
// arrives as validated N-Triples batches and is appended as immutable
// delta blocks in the DFS under a monotonically versioned dataset manifest
// (base relation + ordered delta chain, content-hashed per block). Queries
// overlay base ∪ deltas (plan.ApplyDeltaOverlay); a compaction MR job folds
// the chain back into the base relation. The manifest mirrors the partition
// layout manifest's discipline: typed staleness errors, deleted-first /
// written-last updates, and a version string that is bit-compatible with
// rdf.Graph.Version so every existing dataset handshake keeps working.
package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"

	"ntga/internal/hdfs"
)

// ErrManifestStale reports a dataset manifest whose version does not match
// the dataset the caller holds — the ingest-path sibling of
// hdfs.ErrLayoutStale.
var ErrManifestStale = errors.New("ingest: dataset manifest stale")

// ErrNoManifest reports a dataset directory with no (or an unreadable)
// manifest: the dataset predates the write path or the manifest write was
// interrupted.
var ErrNoManifest = errors.New("ingest: no dataset manifest")

// ErrBadBatch reports an N-Triples batch that failed validation; nothing
// was written. The wrapped error carries the line-level parse failure.
var ErrBadBatch = errors.New("ingest: invalid N-Triples batch")

// ManifestSuffix is appended to the dataset's logical input name to form
// the manifest's DFS file name.
const ManifestSuffix = ".manifest"

// ManifestName returns the manifest file for a logical dataset name.
func ManifestName(input string) string { return input + ManifestSuffix }

// DeltaName returns the immutable delta-block file for sequence number seq.
// The name is a pure function of (input, seq) so every process that follows
// the same manifest agrees on the chain's file names without coordination.
func DeltaName(input string, seq int) string {
	return fmt.Sprintf("%s.delta-%05d", input, seq)
}

// BaseName returns the base-relation file for compaction generation gen.
// Generation 0 is the logical input name itself (the file the loader wrote);
// each compaction writes a fresh generation so readers pinned to the old
// base keep a consistent view while the manifest moves on.
func BaseName(input string, gen int) string {
	if gen == 0 {
		return input
	}
	return fmt.Sprintf("%s.base-%05d", input, gen)
}

// DeltaBlock describes one immutable delta in the chain.
type DeltaBlock struct {
	// File is the block's DFS file (binary triple records, same codec as
	// the base relation).
	File string `json:"file"`
	// Hash content-hashes the block's triples alone ("%016x" fnv64a over
	// the same per-triple stream rdf.Graph.Version hashes).
	Hash string `json:"hash"`
	// Triples and Bytes describe the block's payload.
	Triples int   `json:"triples"`
	Bytes   int64 `json:"bytes"`
}

// Manifest is the versioned dataset descriptor: the current base relation
// plus the ordered delta chain, with a monotonic sequence number and the
// running dataset version. It is persisted as a single JSON record,
// deleted-first and written-last like the layout manifest, so a crashed
// update surfaces as ErrNoManifest rather than a stale-but-valid manifest.
type Manifest struct {
	// Input is the logical dataset name every plan refers to ("data/triples").
	Input string `json:"input"`
	// Base is the current base-relation file (BaseName(Input, Gen)).
	Base string `json:"base"`
	// Gen counts compactions (base-relation generations).
	Gen int `json:"gen"`
	// Seq increases by one on every manifest update (ingest or compaction);
	// delta blocks are named after the Seq that created them.
	Seq int `json:"seq"`
	// Version is the dataset content-hash version: the running fnv64a over
	// every triple of base plus deltas in load order, rendered "%016x" —
	// numerically equal to rdf.Graph.Version() of the same triples.
	// Compaction does not change it (the content is unchanged).
	Version string `json:"version"`
	// BaseVersion is Version as of the current base relation alone (the
	// version the partition layout was stamped with, when one was built
	// before any uncompacted delta).
	BaseVersion string `json:"base_version"`
	// Deltas is the ordered, uncompacted delta chain.
	Deltas []DeltaBlock `json:"deltas"`
}

// Validate checks the manifest against the dataset version the caller
// holds, returning ErrManifestStale on mismatch.
func (m Manifest) Validate(datasetVersion string) error {
	if m.Version != datasetVersion {
		return fmt.Errorf("%w: manifest at version %s, caller at %s",
			ErrManifestStale, m.Version, datasetVersion)
	}
	return nil
}

// DeltaFiles returns the chain's file names in order.
func (m Manifest) DeltaFiles() []string {
	out := make([]string, len(m.Deltas))
	for i, d := range m.Deltas {
		out[i] = d.File
	}
	return out
}

// runningHash parses the Version back into the resumable fnv64a state.
func (m Manifest) runningHash() (uint64, error) {
	v, err := strconv.ParseUint(m.Version, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("ingest: bad manifest version %q: %w", m.Version, err)
	}
	return v, nil
}

// WriteManifest persists the manifest: delete-first, single-record-last, so
// a crash mid-update yields a missing manifest, never a stale one that
// validates.
func WriteManifest(dfs *hdfs.DFS, m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	name := ManifestName(m.Input)
	dfs.DeleteIfExists(name)
	return dfs.WriteFile(name, [][]byte{data})
}

// ReadManifest loads the manifest for a logical dataset name. A missing or
// corrupt manifest surfaces as ErrNoManifest.
func ReadManifest(dfs *hdfs.DFS, input string) (Manifest, error) {
	name := ManifestName(input)
	if !dfs.Exists(name) {
		return Manifest{}, fmt.Errorf("%w: %s", ErrNoManifest, name)
	}
	recs, err := dfs.ReadAll(name)
	if err != nil {
		return Manifest{}, fmt.Errorf("%w: %s: %v", ErrNoManifest, name, err)
	}
	if len(recs) != 1 {
		return Manifest{}, fmt.Errorf("%w: %s has %d records, want 1", ErrNoManifest, name, len(recs))
	}
	var m Manifest
	if err := json.Unmarshal(recs[0], &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: %s: %v", ErrNoManifest, name, err)
	}
	return m, nil
}
