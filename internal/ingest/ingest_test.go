package ingest

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"ntga/internal/codec"
	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
	"ntga/internal/plan"
	"ntga/internal/rdf"
)

const testInput = "data/triples"

const baseNT = `<http://ex/s1> <http://ex/p1> <http://ex/o1> .
<http://ex/s2> <http://ex/p1> <http://ex/o2> .
<http://ex/s2> <http://ex/p2> <http://ex/s1> .
<http://ex/s3> <http://ex/p2> <http://ex/o1> .
`

const delta1NT = `# a comment and a blank line must be skipped

<http://ex/s4> <http://ex/p1> <http://ex/o1> .
<http://ex/s1> <http://ex/p3> "label one" .
`

const delta2NT = `<http://ex/s2> <http://ex/p3> <http://ex/o9> .
<http://ex/s5> <http://ex/p4> <http://ex/s1> .
`

// setup loads the base graph into a fresh DFS and opens a store over it.
func setup(t *testing.T) (*mapreduce.Engine, *Store) {
	t.Helper()
	g, err := rdf.ReadNTriples(strings.NewReader(baseNT))
	if err != nil {
		t.Fatalf("read base: %v", err)
	}
	mr := enginetest.NewMR()
	if err := engine.LoadGraph(mr.DFS(), testInput, g); err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}
	st, err := Init(mr.DFS(), testInput, g)
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	return mr, st
}

// freshReload parses the concatenation of the given N-Triples sources from
// scratch — the oracle every incremental path must match exactly.
func freshReload(t *testing.T, srcs ...string) *rdf.Graph {
	t.Helper()
	g, err := rdf.ReadNTriples(strings.NewReader(strings.Join(srcs, "")))
	if err != nil {
		t.Fatalf("fresh reload: %v", err)
	}
	return g
}

// TestIngestVersionMatchesFreshReload is the core invariant: the running
// manifest version after any number of ingests equals rdf.Graph.Version()
// of a from-scratch parse of base+deltas, and the in-memory graph (IDs and
// order) is identical to that fresh parse.
func TestIngestVersionMatchesFreshReload(t *testing.T) {
	mr, st := setup(t)
	if _, err := st.Ingest(strings.NewReader(delta1NT)); err != nil {
		t.Fatalf("ingest delta1: %v", err)
	}
	res, err := st.Ingest(strings.NewReader(delta2NT))
	if err != nil {
		t.Fatalf("ingest delta2: %v", err)
	}
	fresh := freshReload(t, baseNT, delta1NT, delta2NT)
	if st.Version() != fresh.Version() {
		t.Errorf("incremental version %s != fresh reload version %s", st.Version(), fresh.Version())
	}
	if res.Version != st.Version() {
		t.Errorf("result version %s != store version %s", res.Version, st.Version())
	}
	g := st.Graph()
	if !reflect.DeepEqual(g.Triples, fresh.Triples) {
		t.Errorf("incremental graph triples differ from fresh reload")
	}
	if g.Dict.Len() != fresh.Dict.Len() {
		t.Errorf("dict size %d != fresh %d", g.Dict.Len(), fresh.Dict.Len())
	}

	// The persisted manifest round-trips and validates only at the current
	// version.
	man, err := ReadManifest(mr.DFS(), testInput)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if !reflect.DeepEqual(man, st.Manifest()) {
		t.Errorf("persisted manifest differs from in-memory one:\n%+v\nvs\n%+v", man, st.Manifest())
	}
	if err := man.Validate(fresh.Version()); err != nil {
		t.Errorf("Validate(current) = %v, want nil", err)
	}
	if err := man.Validate("0000000000000000"); !errors.Is(err, ErrManifestStale) {
		t.Errorf("Validate(stale) = %v, want ErrManifestStale", err)
	}
	if len(man.Deltas) != 2 || man.Seq != 2 || man.Gen != 0 {
		t.Errorf("manifest chain = %+v, want 2 deltas at seq 2 gen 0", man)
	}
}

// TestIngestDeltaBlockContents: the block file holds exactly the batch's
// triples in the base codec, and the block metadata matches.
func TestIngestDeltaBlockContents(t *testing.T) {
	mr, st := setup(t)
	res, err := st.Ingest(strings.NewReader(delta1NT))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if res.Block.File != DeltaName(testInput, 1) {
		t.Errorf("block file %q, want %q", res.Block.File, DeltaName(testInput, 1))
	}
	recs, err := mr.DFS().ReadAll(res.Block.File)
	if err != nil {
		t.Fatalf("ReadAll(%s): %v", res.Block.File, err)
	}
	if len(recs) != 2 || res.Block.Triples != 2 {
		t.Fatalf("block holds %d records (meta %d), want 2", len(recs), res.Block.Triples)
	}
	var total int64
	for i, rec := range recs {
		got, err := codec.DecodeTriple(rec)
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		if got != res.Triples[i] {
			t.Errorf("record %d = %+v, want %+v", i, got, res.Triples[i])
		}
		total += int64(len(rec))
	}
	if res.Block.Bytes != total {
		t.Errorf("block bytes %d, want %d", res.Block.Bytes, total)
	}
}

// TestIngestBadBatchAtomic: a batch with any invalid line is rejected as
// ErrBadBatch with zero side effects — dictionary, graph, manifest, and DFS
// all untouched — so a later valid ingest still matches the fresh-reload
// oracle exactly.
func TestIngestBadBatchAtomic(t *testing.T) {
	mr, st := setup(t)
	g := st.Graph()
	dictBefore, triplesBefore := g.Dict.Len(), len(g.Triples)
	bad := "<http://ex/snew> <http://ex/pnew> <http://ex/onew> .\nthis is not a triple\n"
	_, err := st.Ingest(strings.NewReader(bad))
	if !errors.Is(err, ErrBadBatch) {
		t.Fatalf("Ingest(bad) = %v, want ErrBadBatch", err)
	}
	if g.Dict.Len() != dictBefore {
		t.Errorf("failed batch grew the dictionary: %d -> %d", dictBefore, g.Dict.Len())
	}
	if len(g.Triples) != triplesBefore {
		t.Errorf("failed batch grew the graph: %d -> %d", triplesBefore, len(g.Triples))
	}
	if man := st.Manifest(); man.Seq != 0 || len(man.Deltas) != 0 {
		t.Errorf("failed batch moved the manifest: %+v", man)
	}
	if mr.DFS().Exists(DeltaName(testInput, 1)) {
		t.Errorf("failed batch left a delta block behind")
	}

	// The next valid ingest is unaffected by the failed one.
	if _, err := st.Ingest(strings.NewReader(delta1NT)); err != nil {
		t.Fatalf("ingest after failure: %v", err)
	}
	if fresh := freshReload(t, baseNT, delta1NT); st.Version() != fresh.Version() {
		t.Errorf("version after failed batch %s != fresh %s", st.Version(), fresh.Version())
	}
}

// TestIngestEmptyBatch: comments and blank lines only — accepted, no-op.
func TestIngestEmptyBatch(t *testing.T) {
	_, st := setup(t)
	before := st.Version()
	res, err := st.Ingest(strings.NewReader("# nothing here\n\n"))
	if err != nil {
		t.Fatalf("Ingest(empty) = %v", err)
	}
	if res.Seq != 0 || res.Version != before || res.Block.File != "" {
		t.Errorf("empty batch was not a no-op: %+v", res)
	}
}

// TestReadManifestMissing: a dataset without a manifest is ErrNoManifest.
func TestReadManifestMissing(t *testing.T) {
	dfs := hdfs.New(hdfs.Config{Nodes: 1, BlockSize: 1 << 16})
	if _, err := ReadManifest(dfs, "no/such/dataset"); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("ReadManifest(missing) = %v, want ErrNoManifest", err)
	}
}

// TestCompactProducesMergedBase: compaction folds the chain into a new base
// generation whose records are byte-identical to a from-scratch load of the
// merged dataset, leaves the version untouched, and (with Prune) removes the
// consumed files.
func TestCompactProducesMergedBase(t *testing.T) {
	mr, st := setup(t)
	for _, d := range []string{delta1NT, delta2NT} {
		if _, err := st.Ingest(strings.NewReader(d)); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	before := st.Version()
	res, err := st.Compact(mr, CompactOptions{Prune: true})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if res.Base != BaseName(testInput, 1) || res.Gen != 1 || res.Folded != 2 || res.FoldedTriples != 4 {
		t.Errorf("compact result %+v", res)
	}
	if st.Version() != before || res.Version != before {
		t.Errorf("compaction changed the version: %s -> %s", before, st.Version())
	}
	man := st.Manifest()
	if man.Base != res.Base || len(man.Deltas) != 0 || man.BaseVersion != before {
		t.Errorf("post-compact manifest %+v", man)
	}

	// Oracle: load the merged dataset from scratch and compare files.
	fresh := freshReload(t, baseNT, delta1NT, delta2NT)
	oracle := enginetest.NewMR()
	if err := engine.LoadGraph(oracle.DFS(), testInput, fresh); err != nil {
		t.Fatalf("oracle LoadGraph: %v", err)
	}
	want, err := oracle.DFS().ReadAll(testInput)
	if err != nil {
		t.Fatalf("oracle ReadAll: %v", err)
	}
	got, err := mr.DFS().ReadAll(res.Base)
	if err != nil {
		t.Fatalf("ReadAll(new base): %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("compacted base differs from a fresh load of the merged dataset (%d vs %d records)", len(got), len(want))
	}

	// Prune removed the old generation and the folded blocks.
	for _, f := range []string{testInput, DeltaName(testInput, 1), DeltaName(testInput, 2)} {
		if mr.DFS().Exists(f) {
			t.Errorf("pruned file %s still exists", f)
		}
	}

	// A second compaction with an empty chain is a no-op.
	res2, err := st.Compact(mr, CompactOptions{})
	if err != nil {
		t.Fatalf("empty Compact: %v", err)
	}
	if res2.Gen != 1 || res2.Folded != 0 {
		t.Errorf("empty compact moved the manifest: %+v", res2)
	}
}

// TestCompactRetainsOldGenerationByDefault: without Prune the previous base
// and the folded delta blocks stay on the DFS for pinned readers.
func TestCompactRetainsOldGenerationByDefault(t *testing.T) {
	mr, st := setup(t)
	if _, err := st.Ingest(strings.NewReader(delta1NT)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if _, err := st.Compact(mr, CompactOptions{}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for _, f := range []string{testInput, DeltaName(testInput, 1)} {
		if !mr.DFS().Exists(f) {
			t.Errorf("retained file %s was deleted", f)
		}
	}
}

// TestCompactMaintainsPartitionLayout: with a layout built at the base
// version, ingest makes it stale (hdfs.ErrLayoutStale), and compaction with
// LayoutDir rebuilds exactly the affected buckets and re-stamps the manifest
// so the layout validates at the current dataset version again — with every
// bucket byte-identical to a full layout rebuild over the merged dataset.
func TestCompactMaintainsPartitionLayout(t *testing.T) {
	const dir = "data/part"
	const buckets = 4
	mr, st := setup(t)
	if _, err := plan.BuildPartitionLayout(mr, testInput, dir, buckets, st.Version()); err != nil {
		t.Fatalf("BuildPartitionLayout: %v", err)
	}
	if _, err := st.Ingest(strings.NewReader(delta1NT)); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	// The un-compacted delta flips the layout to stale.
	if _, err := plan.LoadPartitioning(mr.DFS(), dir, st.Version()); !errors.Is(err, hdfs.ErrLayoutStale) {
		t.Fatalf("LoadPartitioning after ingest = %v, want ErrLayoutStale", err)
	}

	res, err := st.Compact(mr, CompactOptions{LayoutDir: dir})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if res.BucketsRewritten == 0 || res.BucketsRewritten > buckets {
		t.Errorf("BucketsRewritten = %d", res.BucketsRewritten)
	}
	if _, err := plan.LoadPartitioning(mr.DFS(), dir, st.Version()); err != nil {
		t.Fatalf("LoadPartitioning after compact = %v, want valid", err)
	}

	// Oracle: full layout rebuild over a fresh load of the merged dataset.
	fresh := freshReload(t, baseNT, delta1NT)
	oracle := enginetest.NewMR()
	if err := engine.LoadGraph(oracle.DFS(), testInput, fresh); err != nil {
		t.Fatalf("oracle LoadGraph: %v", err)
	}
	if _, err := plan.BuildPartitionLayout(oracle, testInput, dir, buckets, fresh.Version()); err != nil {
		t.Fatalf("oracle BuildPartitionLayout: %v", err)
	}
	wantLayout, err := oracle.DFS().ReadLayout(dir)
	if err != nil {
		t.Fatalf("oracle ReadLayout: %v", err)
	}
	for b := 0; b < buckets; b++ {
		name := wantLayout.BucketFile(b)
		want, _ := oracle.DFS().ReadAll(name)
		got, _ := mr.DFS().ReadAll(name)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("bucket %d differs from full rebuild (%d vs %d records)", b, len(got), len(want))
		}
	}
}
