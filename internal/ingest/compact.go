package ingest

import (
	"fmt"

	"ntga/internal/mapreduce"
	"ntga/internal/plan"
)

// CompactOptions controls a delta-merge compaction.
type CompactOptions struct {
	// LayoutDir, when non-empty, names a partition layout directory to
	// maintain: the buckets the delta subjects hash into are rebuilt and the
	// layout manifest is re-stamped at the (unchanged) dataset version, so
	// map-only plans keep validating after the merge.
	LayoutDir string
	// Prune deletes the previous base generation and the folded delta blocks
	// after the manifest moves. The default retains them: readers pinned to
	// the old chain (in-flight queries in a resident daemon) keep a
	// consistent view without any locking, because every file they hold is
	// immutable and still present.
	Prune bool
}

// CompactResult describes one compaction.
type CompactResult struct {
	// Base and Gen are the new base relation and its generation.
	Base string `json:"base"`
	Gen  int    `json:"gen"`
	// Folded and FoldedTriples count the delta blocks merged in.
	Folded        int `json:"folded"`
	FoldedTriples int `json:"folded_triples"`
	// BucketsRewritten counts partition-layout buckets rebuilt (0 when no
	// LayoutDir was given or no bucket was affected).
	BucketsRewritten int `json:"buckets_rewritten"`
	// Version is the dataset version — compaction never changes it, the
	// content is the same.
	Version string `json:"version"`
}

// Compact folds the whole delta chain into a fresh base-relation generation
// with a map-only identity MR job over [base, delta...] in chain order. The
// MR engine assembles map-only output from per-task parts in input order, so
// the new base is byte-identical to the file a from-scratch load of the
// merged dataset would write — which is what keeps every downstream consumer
// (plans, parity oracles, bucket layouts) oblivious to whether data arrived
// by load or by ingest. Content is unchanged, so the dataset version is too;
// only Gen, Seq, Base, and BaseVersion move. An empty chain is a no-op.
func (s *Store) Compact(mr *mapreduce.Engine, opts CompactOptions) (*CompactResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := &CompactResult{Base: s.man.Base, Gen: s.man.Gen, Version: s.man.Version}
	if len(s.man.Deltas) == 0 {
		return res, nil
	}
	dfs := mr.DFS()
	man := s.snapshotLocked()
	newGen := man.Gen + 1
	newBase := BaseName(man.Input, newGen)
	job := &mapreduce.Job{
		Name:   "delta-compact",
		Inputs: append([]string{man.Base}, man.DeltaFiles()...),
		Output: newBase,
		MapOnly: mapreduce.MapOnlyFunc(func(_ string, rec []byte, out mapreduce.Collector) error {
			return out.Collect(rec)
		}),
	}
	if _, err := mr.RunWorkflowNamed("delta-compact", []mapreduce.Stage{{job}}); err != nil {
		return nil, err
	}
	if rc, err := dfs.RecordCount(newBase); err != nil {
		return nil, err
	} else if rc != len(s.g.Triples) {
		dfs.DeleteIfExists(newBase)
		return nil, fmt.Errorf("ingest: compaction wrote %d records, graph holds %d", rc, len(s.g.Triples))
	}

	// Maintain the partition layout before the manifest moves. A crash after
	// the bucket rewrite but before the manifest write is still consistent:
	// the layout (now stamped at the dataset version) serves map-only plans
	// over merged buckets, while the old manifest still describes the same
	// content as base plus deltas.
	if opts.LayoutDir != "" {
		n, err := plan.RewritePartitionBuckets(mr, opts.LayoutDir, man.DeltaFiles(), man.Version)
		if err != nil {
			return nil, err
		}
		res.BucketsRewritten = n
	}

	for _, d := range man.Deltas {
		res.FoldedTriples += d.Triples
	}
	res.Folded = len(man.Deltas)
	oldBase, oldDeltas := man.Base, man.DeltaFiles()
	man.Gen = newGen
	man.Base = newBase
	man.Seq++
	man.BaseVersion = man.Version
	man.Deltas = nil
	if err := WriteManifest(dfs, man); err != nil {
		return nil, err
	}
	s.man = man
	res.Base = newBase
	res.Gen = newGen

	if opts.Prune {
		dfs.DeleteIfExists(oldBase)
		for _, d := range oldDeltas {
			dfs.DeleteIfExists(d)
		}
	}
	return res, nil
}
