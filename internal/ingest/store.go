package ingest

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"

	"ntga/internal/codec"
	"ntga/internal/core/hash64"
	"ntga/internal/hdfs"
	"ntga/internal/rdf"
)

// Store manages one versioned dataset: the in-memory graph (dictionary +
// triples, shared with the process's query path), the DFS-resident base
// relation and delta chain, and the persisted manifest. All mutation goes
// through the store, serialized by its lock; readers take cheap snapshot
// copies (Manifest, Version, DeltaFiles).
type Store struct {
	mu  sync.Mutex
	dfs *hdfs.DFS
	g   *rdf.Graph
	man Manifest
}

// Init creates a fresh manifest over an already-loaded dataset: g is the
// in-memory graph and input the DFS file the loader wrote it to (the base
// relation, generation 0). The manifest's version starts at g.Version().
func Init(dfs *hdfs.DFS, input string, g *rdf.Graph) (*Store, error) {
	v := g.Version()
	man := Manifest{
		Input:       input,
		Base:        input,
		Version:     v,
		BaseVersion: v,
	}
	if err := WriteManifest(dfs, man); err != nil {
		return nil, err
	}
	return &Store{dfs: dfs, g: g, man: man}, nil
}

// Graph returns the store's in-memory graph (shared, not a copy).
func (s *Store) Graph() *rdf.Graph { return s.g }

// Manifest returns a snapshot of the current manifest.
func (s *Store) Manifest() Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() Manifest {
	m := s.man
	m.Deltas = append([]DeltaBlock(nil), s.man.Deltas...)
	return m
}

// Version returns the current dataset version.
func (s *Store) Version() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Version
}

// Base returns the current base-relation file name.
func (s *Store) Base() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Base
}

// DeltaFiles returns the uncompacted delta chain's file names in order.
func (s *Store) DeltaFiles() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.DeltaFiles()
}

// Result describes one accepted ingest batch.
type Result struct {
	// Block is the appended delta block ({} when the batch was empty and
	// nothing was written).
	Block DeltaBlock
	// Seq is the manifest sequence after the ingest.
	Seq int
	// Version is the dataset version after the ingest.
	Version string
	// Triples are the batch's triples encoded against the store's
	// dictionary, in batch order — the cache-maintenance predicate and the
	// incremental catalog fold consume these without re-reading the block.
	Triples []rdf.Triple
}

// Ingest validates an N-Triples batch and appends it as one immutable
// delta block. Validation is all-or-nothing and happens before any state
// changes: a batch with a syntax error returns ErrBadBatch (wrapping the
// line-level failure) without touching the dictionary, the graph, or the
// DFS — so a failed batch can never shift the IDs later batches intern,
// and the incremental version stays equal to a from-scratch reload's.
// An empty batch (only comments/blank lines) is a no-op success.
func (s *Store) Ingest(r io.Reader) (*Result, error) {
	terms, err := parseBatch(r)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(terms) == 0 {
		return &Result{Seq: s.man.Seq, Version: s.man.Version}, nil
	}

	// Intern and append exactly as a continued ReadNTriplesInto would.
	triples := make([]rdf.Triple, len(terms))
	for i, tt := range terms {
		triples[i] = rdf.Triple{
			S: s.g.Dict.Encode(tt[0]),
			P: s.g.Dict.Encode(tt[1]),
			O: s.g.Dict.Encode(tt[2]),
		}
	}

	seq := s.man.Seq + 1
	file := DeltaName(s.man.Input, seq)
	blockHash := hash64.New()
	prev, err := s.man.runningHash()
	if err != nil {
		return nil, err
	}
	running := hash64.Resume(prev)

	w, err := s.dfs.Create(file)
	if err != nil {
		return nil, err
	}
	var buf codec.Buffer
	for _, t := range triples {
		buf.Reset()
		buf.PutTriple(t)
		if err := w.Append(buf.Bytes()); err != nil {
			w.Abort()
			return nil, err
		}
		blockHash.Addf("%d,%d,%d;", t.S, t.P, t.O)
		running.Addf("%d,%d,%d;", t.S, t.P, t.O)
	}
	if err := w.Close(); err != nil {
		w.Abort()
		return nil, err
	}
	recs, bytes := w.Written()
	_ = recs

	block := DeltaBlock{File: file, Hash: blockHash.Hex(), Triples: len(triples), Bytes: bytes}
	man := s.snapshotLocked()
	man.Seq = seq
	man.Version = running.Hex()
	man.Deltas = append(man.Deltas, block)
	// Block first, manifest last: a crash in between leaves an orphan block
	// the manifest never references.
	if err := WriteManifest(s.dfs, man); err != nil {
		s.dfs.DeleteIfExists(file)
		return nil, err
	}
	s.man = man

	// The in-memory graph mirrors the DFS chain (the dictionary was already
	// extended by the Encodes above).
	for _, t := range triples {
		s.g.AddID(t)
	}
	return &Result{Block: block, Seq: seq, Version: man.Version, Triples: triples}, nil
}

// ValidateBatch checks an N-Triples batch without applying anything,
// returning the number of triples it would ingest. A server fronting a
// cluster master uses it to reject bad batches with the typed ErrBadBatch
// before forwarding — an RPC round trip would flatten the error to a string.
func ValidateBatch(r io.Reader) (int, error) {
	terms, err := parseBatch(r)
	return len(terms), err
}

// parseBatch validates a whole N-Triples batch without touching any
// dictionary: it mirrors rdf.ReadNTriplesInto's line handling (trim, skip
// blank and '#' lines, 4MB max line) but stops at the term level.
func parseBatch(r io.Reader) ([][3]rdf.Term, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out [][3]rdf.Term
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		st, pt, ot, err := rdf.ParseTriple(line)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadBatch,
				&rdf.ParseError{Line: lineNo, Msg: err.Error()})
		}
		out = append(out, [3]rdf.Term{st, pt, ot})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBatch, err)
	}
	return out, nil
}
