// Package engine defines the interface every distributed query engine in
// this repository implements (the relational-style baselines in relmr and
// the NTGA engines in ntgamr), plus the shared result type the benchmark
// harness consumes.
package engine

import (
	"fmt"
	"sync/atomic"

	"ntga/internal/mapreduce"
	"ntga/internal/plan"
	"ntga/internal/query"
)

// Result is the outcome of running one query through one engine.
type Result struct {
	// Engine is the name of the engine that produced the result.
	Engine string
	// Rows are the full binding rows (indexed by query.AllVars) decoded
	// from the final output file. Nil if the workflow failed or if the
	// query is a COUNT(*) aggregation (see Count).
	Rows []query.Row
	// IsCount marks a COUNT(*) aggregation result; Count holds the answer.
	// The NTGA engines compute it from the implicit (nested) representation
	// without β-unnesting.
	IsCount bool
	Count   int64
	// Workflow carries the per-job cost metrics.
	Workflow mapreduce.WorkflowMetrics
	// Counters are engine-specific counters (e.g. triplegroups unnested).
	Counters map[string]int64
	// OutputRecords / OutputBytes describe the final output file: the
	// number of physical records (n-tuples or triplegroups — the paper's
	// "63K tuples vs 7K vs 3K triplegroups" comparison) and their size.
	OutputRecords int64
	OutputBytes   int64
	// PeakDFSUsed is the cluster's disk high-water mark during the run
	// (physical bytes, including replication).
	PeakDFSUsed int64
}

// QueryEngine plans and executes compiled queries as MapReduce workflows.
type QueryEngine interface {
	// Name identifies the engine in reports ("Pig", "Hive", "NTGA-Eager", ...).
	Name() string
	// Plan builds the engine's physical plan for the query over the triple
	// relation stored in the DFS file named input, without executing
	// anything. Intermediate file names are registered with cl for later
	// cleanup; engines that maintain run counters draw them from counters
	// (nil selects a throwaway set). The plan's typed nodes drive the cost
	// model and EXPLAIN; Physical.Lower yields the executable stages.
	Plan(q *query.Query, input string, cl *Cleaner, counters *mapreduce.Counters) (*plan.Physical, error)
	// Run plans and executes the query. Implementations must clean up every
	// intermediate and output file they create, even on failure, and
	// return a Result whose Workflow reflects the executed jobs. The
	// returned error is non-nil when the workflow failed (e.g. disk full);
	// the partial Result is still returned for metric inspection.
	Run(mr *mapreduce.Engine, q *query.Query, input string) (*Result, error)
}

// PartitionedRunner is the optional capability of engines that can exploit a
// partitioned triple layout (plan.BuildPartitionLayout). A nil or mismatched
// partitioning must behave exactly like Run.
type PartitionedRunner interface {
	QueryEngine
	// RunPartitioned plans and executes the query, rewriting eligible cycles
	// to their no-shuffle map-only form over the layout's bucket files.
	RunPartitioned(mr *mapreduce.Engine, q *query.Query, input string, part *plan.Partitioning) (*Result, error)
}

// PartitionedPlanner is the planning half of PartitionedRunner: engines that
// can rewrite their physical plan against a layout without executing it
// (EXPLAIN, and the cluster workers' deterministic plan rebuild).
type PartitionedPlanner interface {
	QueryEngine
	PlanPartitioned(q *query.Query, input string, part *plan.Partitioning, cl *Cleaner, counters *mapreduce.Counters) (*plan.Physical, error)
}

// PlanMaybePartitioned plans e over the layout when it supports it, falling
// back to the flat plan otherwise.
func PlanMaybePartitioned(e QueryEngine, q *query.Query, input string,
	part *plan.Partitioning, cl *Cleaner, counters *mapreduce.Counters) (*plan.Physical, error) {
	if pp, ok := e.(PartitionedPlanner); ok {
		return pp.PlanPartitioned(q, input, part, cl, counters)
	}
	return e.Plan(q, input, cl, counters)
}

// RunMaybePartitioned runs e over the layout when it supports it, falling
// back to the flat path otherwise — the seam the parity suite and the CLIs
// dispatch through.
func RunMaybePartitioned(e QueryEngine, mr *mapreduce.Engine, q *query.Query,
	input string, part *plan.Partitioning) (*Result, error) {
	if pr, ok := e.(PartitionedRunner); ok {
		return pr.RunPartitioned(mr, q, input, part)
	}
	return e.Run(mr, q, input)
}

// DeltaRunner is the optional capability of engines that can overlay an
// uncompacted delta chain on the base relation (plan.ApplyDeltaOverlay):
// every scan of T reads base ∪ deltas, with results byte-identical to
// running over the compacted (merged) relation. An empty chain must behave
// exactly like Run.
type DeltaRunner interface {
	QueryEngine
	RunDeltas(mr *mapreduce.Engine, q *query.Query, input string, deltas []string) (*Result, error)
}

// RunWithDeltas dispatches a query over a dataset that may carry an
// uncompacted delta chain and/or a partition layout — the serve-path and
// CLI seam for the ingest subsystem. With no deltas it defers to
// RunMaybePartitioned (a layout, when valid, is usable only then: any
// uncompacted delta makes it stale by definition, so part and deltas are
// mutually exclusive here). With deltas it requires a DeltaRunner.
func RunWithDeltas(e QueryEngine, mr *mapreduce.Engine, q *query.Query,
	input string, deltas []string, part *plan.Partitioning) (*Result, error) {
	if len(deltas) == 0 {
		return RunMaybePartitioned(e, mr, q, input, part)
	}
	dr, ok := e.(DeltaRunner)
	if !ok {
		return nil, fmt.Errorf("engine: %s cannot query an uncompacted delta chain (no DeltaRunner); compact first", e.Name())
	}
	return dr.RunDeltas(mr, q, input, deltas)
}

var tempSeq atomic.Int64

// TempName returns a unique DFS path for an intermediate file.
func TempName(engine, kind string) string {
	return fmt.Sprintf("tmp/%s/%s-%d", engine, kind, tempSeq.Add(1))
}

// Cleaner tracks files created during a run for removal afterwards.
type Cleaner struct {
	names []string
}

// Track registers a file for cleanup and returns its name unchanged.
func (c *Cleaner) Track(name string) string {
	c.names = append(c.names, name)
	return name
}

// Clean removes every tracked file that exists.
func (c *Cleaner) Clean(mr *mapreduce.Engine) {
	for _, n := range c.names {
		mr.DFS().DeleteIfExists(n)
	}
	c.names = nil
}
