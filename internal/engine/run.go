package engine

import (
	"io"

	"ntga/internal/codec"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
)

// LoadGraph writes a graph's triples into the DFS as the binary triple
// relation every engine scans.
func LoadGraph(dfs *hdfs.DFS, name string, g *rdf.Graph) error {
	w, err := dfs.Create(name)
	if err != nil {
		return err
	}
	var buf codec.Buffer
	for _, t := range g.Triples {
		buf.Reset()
		buf.PutTriple(t)
		if err := w.Append(buf.Bytes()); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Close(); err != nil {
		w.Abort()
		return err
	}
	return nil
}

// DecodeFunc turns one of an engine's final output records into binding
// rows. Execute streams the final file through it record by record, so the
// client never materializes the full output.
type DecodeFunc func(record []byte) ([]query.Row, error)

// ExecutePlan lowers a physical plan and executes it — the shared tail of
// every engine's Run. Beyond Execute it fills in the plan-derived workflow
// metrics: Workflow.FullScans is set from the plan's scan count (the
// Figure 3 "full scans of T" accounting).
func ExecutePlan(mr *mapreduce.Engine, name string, p *plan.Physical,
	cleaner *Cleaner, counters *mapreduce.Counters, decode DecodeFunc) (*Result, error) {
	stages, err := p.Lower()
	if err != nil {
		cleaner.Clean(mr)
		return &Result{Engine: name}, err
	}
	res, err := Execute(mr, name, stages, p.Final, cleaner, counters, decode)
	res.Workflow.FullScans = p.ScanCount()
	return res, err
}

// Execute runs a planned workflow, decodes the final output, fills in the
// Result, and removes every tracked intermediate file. It is the shared
// tail of every engine's Run method. On workflow failure the partial
// Result (metrics only) and the error are returned. The final file is
// streamed, not read wholesale: records are decoded one at a time and the
// output counters accumulate as they are consumed.
func Execute(mr *mapreduce.Engine, name string, stages []mapreduce.Stage,
	finalFile string, cleaner *Cleaner, counters *mapreduce.Counters,
	decode DecodeFunc) (*Result, error) {

	dfs := mr.DFS()
	dfs.ResetPeak()
	res := &Result{Engine: name}
	defer cleaner.Clean(mr)

	wf, err := mr.RunWorkflowNamed(name, stages)
	res.Workflow = wf
	res.PeakDFSUsed = dfs.PeakUsed()
	if counters != nil {
		res.Counters = counters.Snapshot()
	}
	if err != nil {
		return res, err
	}

	r, err := dfs.Open(finalFile)
	if err != nil {
		return res, err
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		res.OutputRecords++
		res.OutputBytes += int64(len(rec))
		rows, err := decode(rec)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}
