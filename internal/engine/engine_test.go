package engine

import (
	"errors"
	"strings"
	"testing"

	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
	"ntga/internal/rdf"
)

func TestLoadGraphRoundtrip(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o"))
	g.Add(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewLiteral("v"))
	dfs := hdfs.New(hdfs.Config{Nodes: 2})
	if err := LoadGraph(dfs, "t", g); err != nil {
		t.Fatal(err)
	}
	n, err := dfs.RecordCount("t")
	if err != nil || n != 2 {
		t.Errorf("RecordCount = %d, %v", n, err)
	}
}

func TestLoadGraphDiskFull(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 10000; i++ {
		g.Add(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewLiteral(strings.Repeat("x", i%50)))
	}
	dfs := hdfs.New(hdfs.Config{Nodes: 1, CapacityPerNode: 64, BlockSize: 32})
	err := LoadGraph(dfs, "t", g)
	if !errors.Is(err, hdfs.ErrDiskFull) {
		t.Fatalf("err = %v, want disk full", err)
	}
	if dfs.Exists("t") {
		t.Error("failed load left the file behind")
	}
}

func TestTempNameUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		n := TempName("e", "k")
		if seen[n] {
			t.Fatalf("duplicate temp name %q", n)
		}
		seen[n] = true
	}
}

func TestCleanerRemovesTracked(t *testing.T) {
	dfs := hdfs.New(hdfs.Config{Nodes: 1})
	mr := mapreduce.NewEngine(dfs, mapreduce.EngineConfig{})
	var cl Cleaner
	name := cl.Track("tmp/x")
	if err := dfs.WriteFile(name, nil); err != nil {
		t.Fatal(err)
	}
	cl.Track("tmp/never-created") // cleaning a missing file must not panic
	cl.Clean(mr)
	if dfs.Exists(name) {
		t.Error("Clean left tracked file")
	}
	cl.Clean(mr) // idempotent
}

func TestExecuteFailurePath(t *testing.T) {
	dfs := hdfs.New(hdfs.Config{Nodes: 1})
	mr := mapreduce.NewEngine(dfs, mapreduce.EngineConfig{})
	var cl Cleaner
	job := &mapreduce.Job{
		Name: "boom", Inputs: []string{"missing"}, Output: cl.Track("out"),
		MapOnly: mapreduce.MapOnlyFunc(func(_ string, r []byte, c mapreduce.Collector) error {
			return c.Collect(r)
		}),
	}
	res, err := Execute(mr, "test", []mapreduce.Stage{{job}}, "out", &cl, nil,
		func([]byte) ([]query.Row, error) { return nil, nil })
	if err == nil {
		t.Fatal("Execute of failing workflow succeeded")
	}
	if !res.Workflow.Failed {
		t.Error("metrics not marked failed")
	}
	if res.Rows != nil {
		t.Error("failed run returned rows")
	}
}

func TestExecuteDecodeErrorPath(t *testing.T) {
	dfs := hdfs.New(hdfs.Config{Nodes: 1})
	mr := mapreduce.NewEngine(dfs, mapreduce.EngineConfig{})
	if err := dfs.WriteFile("in", [][]byte{[]byte("rec")}); err != nil {
		t.Fatal(err)
	}
	var cl Cleaner
	job := &mapreduce.Job{
		Name: "copy", Inputs: []string{"in"}, Output: cl.Track("out"),
		MapOnly: mapreduce.MapOnlyFunc(func(_ string, r []byte, c mapreduce.Collector) error {
			return c.Collect(r)
		}),
	}
	boom := errors.New("bad record")
	_, err := Execute(mr, "test", []mapreduce.Stage{{job}}, "out", &cl, nil,
		func([]byte) ([]query.Row, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want decode error", err)
	}
	if dfs.Exists("out") {
		t.Error("Execute did not clean up after decode failure")
	}
}

func TestExecuteCollectsCounters(t *testing.T) {
	dfs := hdfs.New(hdfs.Config{Nodes: 1})
	mr := mapreduce.NewEngine(dfs, mapreduce.EngineConfig{})
	if err := dfs.WriteFile("in", [][]byte{[]byte("rec")}); err != nil {
		t.Fatal(err)
	}
	counters := mapreduce.NewCounters()
	var cl Cleaner
	job := &mapreduce.Job{
		Name: "copy", Inputs: []string{"in"}, Output: cl.Track("out"),
		MapOnly: mapreduce.MapOnlyFunc(func(_ string, r []byte, c mapreduce.Collector) error {
			counters.Inc("records", 1)
			return c.Collect(r)
		}),
	}
	res, err := Execute(mr, "test", []mapreduce.Stage{{job}}, "out", &cl, counters,
		func([]byte) ([]query.Row, error) { return make([]query.Row, 1), nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters["records"] != 1 {
		t.Errorf("counters = %v", res.Counters)
	}
	if res.OutputRecords != 1 || res.OutputBytes == 0 {
		t.Errorf("output stats = %d records, %d bytes", res.OutputRecords, res.OutputBytes)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}
