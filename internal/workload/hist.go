package workload

import (
	"math/bits"
	"sync"
	"time"
)

// histSubBuckets is the sub-bucket count per power-of-two octave. 32
// sub-buckets bound the relative quantization error of any recorded value
// by 1/32 ≈ 3%, which is far below run-to-run latency noise while keeping
// the whole histogram a few KB.
const histSubBuckets = 32

// histOctaves covers durations up to 2^63-1 ns; values are nanoseconds.
const histOctaves = 64

// Histogram is a log-bucketed latency histogram: O(1) lock-striped
// inserts, exact rank-based percentile extraction over the buckets (each
// reported percentile is the representative value of the bucket holding
// that rank, so the error is bounded by the 3% bucket width, never by
// sampling). Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts [histOctaves * histSubBuckets]uint64
	total  uint64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{min: -1} }

// bucketIndex maps a nanosecond value to its bucket: the octave is the
// position of the highest set bit, subdivided linearly into
// histSubBuckets slices.
func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < histSubBuckets {
		// The first octaves are exact: one bucket per nanosecond.
		return int(v)
	}
	octave := bits.Len64(v) - 1 // highest set bit
	shift := octave - 5         // 2^5 = histSubBuckets
	sub := int((v >> uint(shift)) & (histSubBuckets - 1))
	return octave*histSubBuckets + sub
}

// bucketValue is the representative (midpoint) value of a bucket.
func bucketValue(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	octave := idx / histSubBuckets
	sub := idx % histSubBuckets
	shift := octave - 5
	lo := (uint64(1) << uint(octave)) | (uint64(sub) << uint(shift))
	width := uint64(1) << uint(shift)
	return int64(lo + width/2)
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.mu.Lock()
	h.counts[bucketIndex(ns)]++
	h.total++
	h.sum += ns
	if h.min < 0 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
	h.mu.Unlock()
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the exact arithmetic mean of the recorded values.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.total))
}

// Min and Max are exact (tracked outside the buckets).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.min < 0 {
		return 0
	}
	return time.Duration(h.min)
}

func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Percentile returns the p-th percentile (0 < p <= 100) by nearest-rank
// over the buckets. The true rank-holding value lies inside the returned
// bucket, so the result is exact to the bucket's ≤3% width; min and max
// are returned exactly.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := uint64(float64(h.total)*p/100 + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			v := bucketValue(i)
			// Clamp to the exact extremes so p≈0/p≈100 report them.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Quantiles extracts the standard latency summary in one pass.
type Quantiles struct {
	Count               uint64
	Mean                time.Duration
	P50, P95, P99, P999 time.Duration
	Min, Max            time.Duration
}

// Summary returns the histogram's quantile rollup.
func (h *Histogram) Summary() Quantiles {
	return Quantiles{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}
