// Package workload is the trace-replay load harness for the resident
// query service: a deterministic, seeded generator of production-shaped
// query traces (Zipf-distributed query popularity, a weighted multi-tenant
// client mix, hot/cold cache-buster variants, Poisson open-loop arrivals,
// per-query deadlines) plus a replay driver (replay.go) that runs the
// trace against a server.Server in-process or over HTTP and records
// latencies into log-bucketed histograms (hist.go) with per-outcome
// counts. The same seed always yields the byte-identical trace, so a
// replayed run is reproducible end to end and its answers can be diffed
// against a serial reference execution.
package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Query is one replayable catalog entry. Rank in the slice passed to
// Generate is popularity rank: index 0 is the hottest query under the
// Zipf draw.
type Query struct {
	ID  string
	Src string
}

// TenantSpec is one scheduling class in the client mix.
type TenantSpec struct {
	// Name is the tenant the request is attributed to (slot-pool class).
	Name string
	// Weight is the tenant's slot-pool fair-share weight (<=0 means 1).
	Weight int
	// Share is the tenant's fraction of the request stream; shares are
	// normalized over all tenants, so absolute magnitudes don't matter.
	Share float64
}

// Config shapes one generated trace.
type Config struct {
	// Seed drives every random draw. Same seed + same config + same query
	// list => byte-identical trace.
	Seed int64
	// Requests is the number of events to generate (required, > 0).
	Requests int
	// RateQPS is the aggregate Poisson arrival rate in events/second for
	// open-loop replay; inter-arrival gaps are exponential with mean
	// 1/RateQPS. <= 0 defaults to 1000 qps worth of timestamps (closed-loop
	// replay ignores them entirely).
	RateQPS float64
	// ZipfS is the Zipf exponent s: query popularity of rank k is
	// proportional to 1/k^s. <= 0 defaults to 1.1 (a typical skewed
	// production mix).
	ZipfS float64
	// Tenants is the client mix; empty defaults to one "default" tenant
	// with weight 1.
	Tenants []TenantSpec
	// ColdFraction is the probability a request is a cache buster: it
	// carries NoCache and must execute real MapReduce cycles no matter how
	// hot its query is. 0 = all requests may hit the cache, 1 = none.
	ColdFraction float64
	// DeadlineMS attaches a per-query deadline to every event (0 = none;
	// the server's default applies).
	DeadlineMS int64
}

func (c Config) withDefaults() Config {
	if c.RateQPS <= 0 {
		c.RateQPS = 1000
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.1
	}
	if len(c.Tenants) == 0 {
		c.Tenants = []TenantSpec{{Name: "default", Weight: 1, Share: 1}}
	}
	return c
}

// Event is one request in the trace.
type Event struct {
	// Seq is the event's position in arrival order.
	Seq int
	// At is the arrival offset from trace start (Poisson open-loop).
	At time.Duration
	// Tenant/Weight select the slot-pool scheduling class.
	Tenant string
	Weight int
	// QueryID / Src are the drawn catalog query.
	QueryID string
	Src     string
	// NoCache marks a cold (cache-buster) request.
	NoCache bool
	// DeadlineMS is the per-query deadline (0 = server default).
	DeadlineMS int64
}

// Trace is one generated workload.
type Trace struct {
	Cfg     Config
	Queries []Query
	Events  []Event
}

// Generate builds the trace for the given config over the query list
// (popularity rank = slice order). It is fully deterministic in
// (cfg, queries).
func Generate(cfg Config, queries []Query) (*Trace, error) {
	cfg = cfg.withDefaults()
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("workload: Requests must be positive (got %d)", cfg.Requests)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("workload: no queries to draw from")
	}
	if cfg.ColdFraction < 0 || cfg.ColdFraction > 1 {
		return nil, fmt.Errorf("workload: ColdFraction %v outside [0,1]", cfg.ColdFraction)
	}
	var shareSum float64
	for _, t := range cfg.Tenants {
		if t.Share < 0 {
			return nil, fmt.Errorf("workload: tenant %q has negative share", t.Name)
		}
		shareSum += t.Share
	}
	if shareSum <= 0 {
		return nil, fmt.Errorf("workload: tenant shares sum to zero")
	}

	zipf := zipfCDF(len(queries), cfg.ZipfS)
	tenantCDF := make([]float64, len(cfg.Tenants))
	acc := 0.0
	for i, t := range cfg.Tenants {
		acc += t.Share / shareSum
		tenantCDF[i] = acc
	}

	r := newRNG(uint64(cfg.Seed))
	tr := &Trace{Cfg: cfg, Queries: append([]Query(nil), queries...)}
	tr.Events = make([]Event, cfg.Requests)
	var at time.Duration
	for i := 0; i < cfg.Requests; i++ {
		// Poisson process: exponential inter-arrival gaps.
		gap := -math.Log(1-r.float64()) / cfg.RateQPS
		at += time.Duration(gap * float64(time.Second))
		q := queries[searchCDF(zipf, r.float64())]
		ti := searchCDF(tenantCDF, r.float64())
		t := cfg.Tenants[ti]
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		tr.Events[i] = Event{
			Seq:        i,
			At:         at,
			Tenant:     t.Name,
			Weight:     w,
			QueryID:    q.ID,
			Src:        q.Src,
			NoCache:    r.float64() < cfg.ColdFraction,
			DeadlineMS: cfg.DeadlineMS,
		}
	}
	return tr, nil
}

// zipfCDF precomputes the cumulative distribution of a Zipf(s) law over n
// ranks: P(rank k) ∝ 1/k^s, k = 1..n.
func zipfCDF(n int, s float64) []float64 {
	weights := make([]float64, n)
	var sum float64
	for k := 1; k <= n; k++ {
		weights[k-1] = 1 / math.Pow(float64(k), s)
		sum += weights[k-1]
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w / sum
		cdf[i] = acc
	}
	cdf[n-1] = 1 // guard against float drift
	return cdf
}

// Probabilities returns the exact Zipf(s) probability of each query rank —
// the distribution Generate draws from, for frequency-sanity checks.
func Probabilities(n int, s float64) []float64 {
	if s <= 0 {
		s = 1.1
	}
	cdf := zipfCDF(n, s)
	probs := make([]float64, n)
	prev := 0.0
	for i, c := range cdf {
		probs[i] = c - prev
		prev = c
	}
	return probs
}

// searchCDF maps a uniform draw u in [0,1) to the first index whose
// cumulative probability exceeds it.
func searchCDF(cdf []float64, u float64) int {
	return sort.SearchFloat64s(cdf, math.Nextafter(u, math.Inf(1)))
}

// Encode renders the trace as one canonical text blob (one line per
// event), the determinism tests' byte-comparison format.
func (t *Trace) Encode() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace seed=%d requests=%d rate=%g zipf=%g cold=%g deadline=%d queries=%d\n",
		t.Cfg.Seed, t.Cfg.Requests, t.Cfg.RateQPS, t.Cfg.ZipfS, t.Cfg.ColdFraction, t.Cfg.DeadlineMS, len(t.Queries))
	for _, e := range t.Events {
		fmt.Fprintf(&sb, "%d\t%d\t%s\t%d\t%s\t%v\t%d\n",
			e.Seq, e.At.Nanoseconds(), e.Tenant, e.Weight, e.QueryID, e.NoCache, e.DeadlineMS)
	}
	return sb.String()
}

// Frequencies counts how often each query rank was drawn.
func (t *Trace) Frequencies() map[string]int {
	out := make(map[string]int, len(t.Queries))
	for _, e := range t.Events {
		out[e.QueryID]++
	}
	return out
}

// rng is a splitmix64 generator: tiny, seedable, and stable across Go
// releases (the trace format must never drift under a toolchain bump, so
// math/rand is deliberately not used).
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }
