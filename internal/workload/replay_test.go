package workload

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ntga/internal/server"
)

// scriptTarget is a fake service: per-query scripted answers, latencies,
// and failures, so the driver's accounting is testable without a server.
type scriptTarget struct {
	answers map[string]string
	delay   time.Duration
	fail    map[string]error
	calls   atomic.Int64
}

func (s *scriptTarget) Do(_ context.Context, ev Event) (string, error) {
	s.calls.Add(1)
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	if err, ok := s.fail[ev.QueryID]; ok {
		return "", err
	}
	return s.answers[ev.QueryID], nil
}

func scriptFor(qs []Query) *scriptTarget {
	answers := make(map[string]string, len(qs))
	for _, q := range qs {
		answers[q.ID] = "rows-of-" + q.ID
	}
	return &scriptTarget{answers: answers, fail: map[string]error{}}
}

func TestReplayClosedLoopOutcomes(t *testing.T) {
	qs := testQueries(6)
	tr, err := Generate(Config{Seed: 3, Requests: 400}, qs)
	if err != nil {
		t.Fatal(err)
	}
	tgt := scriptFor(qs)
	tgt.fail["Q01"] = fmt.Errorf("refused: %w", server.ErrOverloaded)
	tgt.fail["Q02"] = fmt.Errorf("slow: %w", context.DeadlineExceeded)
	tgt.fail["Q03"] = errors.New("disk on fire")

	res, err := Replay(context.Background(), tr, tgt, Options{Closed: true, Clients: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 400 {
		t.Fatalf("requests = %d, want 400", res.Requests)
	}
	freq := tr.Frequencies()
	if got := res.Outcomes[OutcomeShed]; got != freq["Q01"] {
		t.Errorf("shed = %d, want %d", got, freq["Q01"])
	}
	if got := res.Outcomes[OutcomeDeadline]; got != freq["Q02"] {
		t.Errorf("deadline = %d, want %d", got, freq["Q02"])
	}
	if got := res.Outcomes[OutcomeError]; got != freq["Q03"] {
		t.Errorf("error = %d, want %d", got, freq["Q03"])
	}
	wantOK := 400 - freq["Q01"] - freq["Q02"] - freq["Q03"]
	if got := res.Outcomes[OutcomeOK]; got != wantOK {
		t.Errorf("ok = %d, want %d", got, wantOK)
	}
	if got := res.Hist.Count(); got != uint64(wantOK) {
		t.Errorf("histogram holds %d latencies, want %d (OK only)", got, wantOK)
	}
	if res.QPS() <= 0 {
		t.Error("QPS = 0 on a successful replay")
	}
	if len(res.Errs) == 0 {
		t.Error("no error details retained")
	}
	if res.PerTenant["default"] == nil || res.PerTenant["default"].Outcomes[OutcomeOK] != wantOK {
		t.Errorf("per-tenant rollup missing or wrong: %+v", res.PerTenant)
	}
}

func TestReplayVerifyCountsDiffs(t *testing.T) {
	qs := testQueries(4)
	tr, err := Generate(Config{Seed: 9, Requests: 100}, qs)
	if err != nil {
		t.Fatal(err)
	}
	tgt := scriptFor(qs)
	want := map[string]string{}
	for _, q := range qs {
		want[q.ID] = tgt.answers[q.ID]
	}
	// Corrupt one query's reference: every OK reply for it must count as a diff.
	want["Q02"] = "something-else"

	res, err := Replay(context.Background(), tr, tgt, Options{Closed: true, Clients: 2, Verify: want})
	if err != nil {
		t.Fatal(err)
	}
	if wantDiffs := tr.Frequencies()["Q02"]; res.Diffs != wantDiffs {
		t.Errorf("diffs = %d, want %d", res.Diffs, wantDiffs)
	}
	if len(res.DiffDetails) == 0 {
		t.Error("no diff details retained")
	}
}

func TestReplayOpenLoopDispatchesAll(t *testing.T) {
	qs := testQueries(3)
	// 2000 qps for 200 events ≈ 100ms of trace; open loop must finish fast
	// and dispatch everything.
	tr, err := Generate(Config{Seed: 11, Requests: 200, RateQPS: 2000}, qs)
	if err != nil {
		t.Fatal(err)
	}
	tgt := scriptFor(qs)
	res, err := Replay(context.Background(), tr, tgt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 || res.Outcomes[OutcomeOK] != 200 {
		t.Fatalf("open-loop replay: %d requests, %d ok, want 200/200", res.Requests, res.Outcomes[OutcomeOK])
	}
	if tgt.calls.Load() != 200 {
		t.Fatalf("target saw %d calls, want 200", tgt.calls.Load())
	}
	// The replay honours arrival pacing: wall clock at least the last offset.
	if last := tr.Events[len(tr.Events)-1].At; res.Wall < last {
		t.Errorf("wall %v shorter than trace span %v", res.Wall, last)
	}
}

func TestReplayOpenLoopTimescale(t *testing.T) {
	qs := testQueries(2)
	tr, err := Generate(Config{Seed: 13, Requests: 50, RateQPS: 100}, qs) // ≈500ms span
	if err != nil {
		t.Fatal(err)
	}
	tgt := scriptFor(qs)
	start := time.Now()
	if _, err := Replay(context.Background(), tr, tgt, Options{Timescale: 0.05}); err != nil {
		t.Fatal(err)
	}
	span := tr.Events[len(tr.Events)-1].At
	if took := time.Since(start); took > span {
		t.Errorf("timescale 0.05 replay took %v, trace span %v — not sped up", took, span)
	}
}

func TestReplayContextCancelStopsDispatch(t *testing.T) {
	qs := testQueries(2)
	tr, err := Generate(Config{Seed: 17, Requests: 100000, RateQPS: 10}, qs) // hours of trace
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res, err := Replay(ctx, tr, scriptFor(qs), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests >= 100000 {
		t.Errorf("cancelled replay still dispatched all %d events", res.Requests)
	}
}

func TestSerialReference(t *testing.T) {
	qs := testQueries(5)
	tr, err := Generate(Config{Seed: 19, Requests: 10}, qs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SerialReference(context.Background(), tr, scriptFor(qs))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 5 || ref["Q03"] != "rows-of-Q03" {
		t.Fatalf("reference = %v", ref)
	}
}
