package workload

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramPercentilesBounded(t *testing.T) {
	h := NewHistogram()
	// 1..10000 µs uniformly: percentiles are known exactly.
	for i := 1; i <= 10000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := h.Count(); got != 10000 {
		t.Fatalf("count = %d, want 10000", got)
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{50, 5000 * time.Microsecond},
		{95, 9500 * time.Microsecond},
		{99, 9900 * time.Microsecond},
		{99.9, 9990 * time.Microsecond},
	} {
		got := h.Percentile(tc.p)
		relErr := math.Abs(float64(got-tc.want)) / float64(tc.want)
		if relErr > 1.0/histSubBuckets+0.001 {
			t.Errorf("p%g = %v, want %v within %.1f%% bucket width (err %.2f%%)",
				tc.p, got, tc.want, 100.0/histSubBuckets, 100*relErr)
		}
	}
	if got := h.Min(); got != 1*time.Microsecond {
		t.Errorf("min = %v, want 1µs (exact)", got)
	}
	if got := h.Max(); got != 10000*time.Microsecond {
		t.Errorf("max = %v, want 10ms (exact)", got)
	}
	wantMean := time.Duration(5000500) * time.Nanosecond // exact: (1+10000)/2 µs
	if got := h.Mean(); got != wantMean {
		t.Errorf("mean = %v, want %v (exact)", got, wantMean)
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	// Values below one sub-bucket octave land in exact 1ns buckets.
	for _, ns := range []int64{0, 1, 5, 17, 31} {
		h.Observe(time.Duration(ns))
	}
	if got := h.Percentile(50); got != 5 {
		t.Errorf("p50 of {0,1,5,17,31}ns = %v, want 5ns exactly", got)
	}
	if got := h.Percentile(100); got != 31 {
		t.Errorf("p100 = %v, want 31ns", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(95) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for ns := int64(0); ns < 1<<22; ns += 97 {
		idx := bucketIndex(ns)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d — not monotonic", ns, idx, prev)
		}
		prev = idx
		// The representative value must stay within one bucket width.
		v := bucketValue(idx)
		if ns >= histSubBuckets {
			rel := math.Abs(float64(v-ns)) / float64(ns)
			if rel > 1.0/histSubBuckets {
				t.Fatalf("bucketValue(%d)=%d for ns=%d: rel err %.3f", idx, v, ns, rel)
			}
		} else if v != ns {
			t.Fatalf("small value %d not exact (got %d)", ns, v)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("concurrent count = %d, want 8000", got)
	}
	s := h.Summary()
	if s.P50 <= 0 || s.P999 < s.P50 || s.Max < s.P999 {
		t.Errorf("summary out of order: %+v", s)
	}
}
