package workload

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
	"time"
)

func testQueries(n int) []Query {
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = Query{ID: fmt.Sprintf("Q%02d", i), Src: fmt.Sprintf("SELECT * WHERE { ?s <p%d> ?o . }", i)}
	}
	return qs
}

// TestGenerateDeterministic: the same seed and config must yield the
// byte-identical trace — tenants, arrival times, query sequence, cold
// flags — and a different seed must not.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		Seed:     7,
		Requests: 2000,
		RateQPS:  500,
		ZipfS:    1.2,
		Tenants: []TenantSpec{
			{Name: "gold", Weight: 3, Share: 0.5},
			{Name: "silver", Weight: 2, Share: 0.3},
			{Name: "bronze", Weight: 1, Share: 0.2},
		},
		ColdFraction: 0.25,
		DeadlineMS:   1500,
	}
	qs := testQueries(28)
	a, err := Generate(cfg, qs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, qs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Encode() != b.Encode() {
		t.Fatal("same seed produced different traces")
	}

	cfg2 := cfg
	cfg2.Seed = 8
	c, err := Generate(cfg2, qs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Encode() == c.Encode() {
		t.Fatal("different seeds produced identical traces")
	}

	// Shape checks on the deterministic trace.
	if len(a.Events) != cfg.Requests {
		t.Fatalf("got %d events, want %d", len(a.Events), cfg.Requests)
	}
	var last time.Duration
	tenants := map[string]int{}
	cold := 0
	for _, e := range a.Events {
		if e.At < last {
			t.Fatalf("event %d arrives before its predecessor (%v < %v)", e.Seq, e.At, last)
		}
		last = e.At
		tenants[e.Tenant]++
		if e.NoCache {
			cold++
		}
		if e.DeadlineMS != cfg.DeadlineMS {
			t.Fatalf("event %d deadline=%d, want %d", e.Seq, e.DeadlineMS, cfg.DeadlineMS)
		}
	}
	for _, spec := range cfg.Tenants {
		got := float64(tenants[spec.Name]) / float64(cfg.Requests)
		if got < spec.Share-0.05 || got > spec.Share+0.05 {
			t.Errorf("tenant %s share = %.3f, want ≈ %.2f", spec.Name, got, spec.Share)
		}
	}
	if frac := float64(cold) / float64(cfg.Requests); frac < 0.2 || frac > 0.3 {
		t.Errorf("cold fraction = %.3f, want ≈ 0.25", frac)
	}
	// Mean Poisson inter-arrival must track 1/rate.
	mean := last.Seconds() / float64(cfg.Requests)
	if want := 1.0 / cfg.RateQPS; mean < want*0.9 || mean > want*1.1 {
		t.Errorf("mean inter-arrival = %.6fs, want ≈ %.6fs", mean, want)
	}
}

// TestGenerateStableAcrossBuilds pins the trace bytes to a fingerprint:
// the in-repo splitmix64 generator (not math/rand) guarantees the same
// seed replays the same trace on any toolchain, so checked-in baselines
// stay comparable.
func TestGenerateStableAcrossBuilds(t *testing.T) {
	tr, err := Generate(Config{Seed: 42, Requests: 256, RateQPS: 100, ZipfS: 1.1,
		Tenants:      []TenantSpec{{Name: "a", Weight: 2, Share: 2}, {Name: "b", Weight: 1, Share: 1}},
		ColdFraction: 0.5}, testQueries(12))
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write([]byte(tr.Encode()))
	const want = "3ce7b594a7d4d1c2"
	if got := fmt.Sprintf("%016x", h.Sum64()); got != want {
		t.Fatalf("trace fingerprint = %s, want %s (generator output drifted — this breaks replayable baselines)", got, want)
	}
}

// TestZipfFrequencies is the chi-squared sanity check: the empirical query
// frequencies of a generated trace must match the configured Zipf(s)
// probabilities within the df=27, α=0.001 critical value.
func TestZipfFrequencies(t *testing.T) {
	const n, requests = 28, 50000
	const s = 1.1
	tr, err := Generate(Config{Seed: 1234, Requests: requests, ZipfS: s}, testQueries(n))
	if err != nil {
		t.Fatal(err)
	}
	probs := Probabilities(n, s)
	freq := tr.Frequencies()
	chi2 := 0.0
	for i, q := range tr.Queries {
		exp := probs[i] * requests
		obs := float64(freq[q.ID])
		chi2 += (obs - exp) * (obs - exp) / exp
	}
	// χ²(df=27) critical value at α=0.001 is 55.48.
	if chi2 > 55.48 {
		t.Fatalf("chi-squared = %.2f > 55.48: empirical frequencies do not match Zipf(%g)", chi2, s)
	}
	// The Zipf skew must actually be visible: rank 0 dominates the tail.
	if freq[tr.Queries[0].ID] <= freq[tr.Queries[n-1].ID] {
		t.Errorf("hottest query drawn %d times, coldest %d — no Zipf skew",
			freq[tr.Queries[0].ID], freq[tr.Queries[n-1].ID])
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	qs := testQueries(4)
	for name, tc := range map[string]struct {
		cfg Config
		qs  []Query
	}{
		"zero requests":  {Config{Requests: 0}, qs},
		"no queries":     {Config{Requests: 10}, nil},
		"cold > 1":       {Config{Requests: 10, ColdFraction: 1.5}, qs},
		"negative share": {Config{Requests: 10, Tenants: []TenantSpec{{Name: "x", Share: -1}}}, qs},
		"zero shares":    {Config{Requests: 10, Tenants: []TenantSpec{{Name: "x", Share: 0}}}, qs},
	} {
		if _, err := Generate(tc.cfg, tc.qs); err == nil {
			t.Errorf("%s: Generate succeeded, want error", name)
		}
	}
}

func TestEncodeRoundTripShape(t *testing.T) {
	tr, err := Generate(Config{Seed: 5, Requests: 10}, testQueries(3))
	if err != nil {
		t.Fatal(err)
	}
	enc := tr.Encode()
	lines := strings.Split(strings.TrimRight(enc, "\n"), "\n")
	if len(lines) != 11 { // header + 10 events
		t.Fatalf("encoded trace has %d lines, want 11", len(lines))
	}
	if !strings.HasPrefix(lines[0], "trace seed=5 ") {
		t.Errorf("header line = %q", lines[0])
	}
}
