package workload

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"ntga/internal/server"
)

// Outcome classifies one replayed request.
type Outcome string

const (
	OutcomeOK       Outcome = "ok"       // answered with rows/count
	OutcomeShed     Outcome = "shed"     // refused at admission (ErrOverloaded)
	OutcomeDeadline Outcome = "deadline" // per-query deadline fired
	OutcomeError    Outcome = "error"    // anything else
)

// Target evaluates one trace event and returns the canonical rendering of
// its answer (RenderResponse) for correctness diffs.
type Target interface {
	Do(ctx context.Context, ev Event) (rendered string, err error)
}

// ServerTarget replays in-process against a server.Server — the whole
// serving stack (admission, caches, slot pool, engines) minus HTTP.
type ServerTarget struct{ S *server.Server }

func (t ServerTarget) Do(ctx context.Context, ev Event) (string, error) {
	resp, err := t.S.Evaluate(ctx, requestFor(ev))
	if err != nil {
		return "", err
	}
	return RenderResponse(resp), nil
}

// ClientTarget replays over HTTP against a running ntga-serve daemon.
type ClientTarget struct{ C *server.Client }

func (t ClientTarget) Do(ctx context.Context, ev Event) (string, error) {
	resp, err := t.C.Query(ctx, requestFor(ev))
	if err != nil {
		return "", err
	}
	return RenderResponse(resp), nil
}

// requestFor maps a trace event onto the serving API.
func requestFor(ev Event) server.Request {
	return server.Request{
		Query:     ev.Src,
		Tenant:    ev.Tenant,
		Weight:    ev.Weight,
		NoCache:   ev.NoCache,
		TimeoutMS: ev.DeadlineMS,
	}
}

// RenderResponse flattens a response to one comparable string: the byte
// identity the correctness-under-load suite asserts between concurrent
// replays and a serial reference run.
func RenderResponse(r *server.Response) string {
	if r.IsCount {
		return fmt.Sprintf("count:%d", r.Count)
	}
	return strings.Join(r.Header, "\t") + "\n" + strings.Join(r.Rows, "\n")
}

// Options shapes one replay run.
type Options struct {
	// Closed ignores the trace's arrival timestamps: Clients workers
	// consume events in arrival order as fast as the service answers
	// (throughput-capacity measurement). Open (default) dispatches every
	// event at its Poisson timestamp regardless of outstanding requests —
	// the production shape, where a slow server faces a growing backlog.
	Closed bool
	// Clients is the closed-loop worker count (default 1). Open-loop
	// replay spawns per event and ignores it.
	Clients int
	// Timescale multiplies open-loop arrival offsets (0 = 1.0). 0.5 plays
	// the trace at double speed.
	Timescale float64
	// Verify, when non-nil, compares every OK response against the
	// reference rendering keyed by query ID and counts mismatches.
	Verify map[string]string
	// MaxDiffDetails bounds the retained mismatch descriptions (default 8).
	MaxDiffDetails int
}

// TenantResult is one tenant's slice of the replay.
type TenantResult struct {
	Outcomes map[Outcome]int
	Hist     *Histogram // OK-request service latencies
}

// Result is the replay rollup.
type Result struct {
	Requests int
	Wall     time.Duration
	Outcomes map[Outcome]int
	// Hist holds OK-request latencies; ShedHist would be all-zero noise,
	// so refused requests only count.
	Hist      *Histogram
	PerTenant map[string]*TenantResult
	// Diffs counts OK responses that did not match Options.Verify.
	Diffs       int
	DiffDetails []string
	// Errs retains the first few non-shed, non-deadline error strings.
	Errs []string
}

// QPS is successfully-answered requests per wall-clock second (goodput).
func (r *Result) QPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Outcomes[OutcomeOK]) / r.Wall.Seconds()
}

// ShedRate is the fraction of requests refused at admission.
func (r *Result) ShedRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Outcomes[OutcomeShed]) / float64(r.Requests)
}

// classify maps a Target error to its outcome bucket.
func classify(err error) Outcome {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, server.ErrOverloaded):
		return OutcomeShed
	case errors.Is(err, context.DeadlineExceeded):
		return OutcomeDeadline
	default:
		return OutcomeError
	}
}

// Replay runs the trace against the target and aggregates outcomes.
// Open-loop mode fires each event at its arrival offset (scaled by
// Timescale) in its own goroutine; closed-loop mode drains events in
// arrival order through Options.Clients workers. ctx cancellation stops
// dispatching new events (in-flight ones finish with their own deadlines).
func Replay(ctx context.Context, tr *Trace, tgt Target, opts Options) (*Result, error) {
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	if opts.Timescale <= 0 {
		opts.Timescale = 1
	}
	if opts.MaxDiffDetails <= 0 {
		opts.MaxDiffDetails = 8
	}

	res := &Result{
		Requests:  len(tr.Events),
		Outcomes:  map[Outcome]int{},
		Hist:      NewHistogram(),
		PerTenant: map[string]*TenantResult{},
	}
	var mu sync.Mutex
	record := func(ev Event, lat time.Duration, rendered string, err error) {
		oc := classify(err)
		mu.Lock()
		defer mu.Unlock()
		res.Outcomes[oc]++
		t := res.PerTenant[ev.Tenant]
		if t == nil {
			t = &TenantResult{Outcomes: map[Outcome]int{}, Hist: NewHistogram()}
			res.PerTenant[ev.Tenant] = t
		}
		t.Outcomes[oc]++
		switch oc {
		case OutcomeOK:
			res.Hist.Observe(lat)
			t.Hist.Observe(lat)
			if opts.Verify != nil {
				if want, ok := opts.Verify[ev.QueryID]; ok && rendered != want {
					res.Diffs++
					if len(res.DiffDetails) < opts.MaxDiffDetails {
						res.DiffDetails = append(res.DiffDetails,
							fmt.Sprintf("event %d (%s): response differs from serial reference", ev.Seq, ev.QueryID))
					}
				}
			}
		case OutcomeError:
			if len(res.Errs) < opts.MaxDiffDetails {
				res.Errs = append(res.Errs, fmt.Sprintf("event %d (%s): %v", ev.Seq, ev.QueryID, err))
			}
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	if opts.Closed {
		feed := make(chan Event)
		for c := 0; c < opts.Clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ev := range feed {
					t0 := time.Now()
					rendered, err := tgt.Do(ctx, ev)
					record(ev, time.Since(t0), rendered, err)
				}
			}()
		}
	dispatch:
		for _, ev := range tr.Events {
			select {
			case feed <- ev:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(feed)
	} else {
		timer := time.NewTimer(0)
		if !timer.Stop() {
			<-timer.C
		}
	open:
		for _, ev := range tr.Events {
			due := time.Duration(float64(ev.At) * opts.Timescale)
			if wait := due - time.Since(start); wait > 0 {
				timer.Reset(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					break open
				}
			} else if ctx.Err() != nil {
				break open
			}
			wg.Add(1)
			go func(ev Event) {
				defer wg.Done()
				t0 := time.Now()
				rendered, err := tgt.Do(ctx, ev)
				record(ev, time.Since(t0), rendered, err)
			}(ev)
		}
		timer.Stop()
	}
	wg.Wait()
	res.Wall = time.Since(start)

	var dispatched int
	for _, n := range res.Outcomes {
		dispatched += n
	}
	res.Requests = dispatched
	return res, nil
}

// SerialReference evaluates every distinct query in the trace once,
// serially and cache-bypassing, and returns the rendering keyed by query
// ID — the byte-identity baseline Options.Verify consumes. The target
// should be an otherwise idle service over the same dataset.
func SerialReference(ctx context.Context, tr *Trace, tgt Target) (map[string]string, error) {
	out := make(map[string]string, len(tr.Queries))
	for _, q := range tr.Queries {
		rendered, err := tgt.Do(ctx, Event{QueryID: q.ID, Src: q.Src, NoCache: true})
		if err != nil {
			return nil, fmt.Errorf("workload: serial reference %s: %w", q.ID, err)
		}
		out[q.ID] = rendered
	}
	return out, nil
}
