package codec

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ntga/internal/rdf"
)

func TestTripleRoundtrip(t *testing.T) {
	cases := []rdf.Triple{
		{S: 1, P: 2, O: 3},
		{S: 0xFFFFFFFF, P: 1, O: 0xFFFFFFFF},
		{},
	}
	for _, tr := range cases {
		got, err := DecodeTriple(EncodeTriple(tr))
		if err != nil {
			t.Fatalf("DecodeTriple(%v): %v", tr, err)
		}
		if got != tr {
			t.Errorf("roundtrip %v -> %v", tr, got)
		}
	}
}

func TestTripleRoundtripQuick(t *testing.T) {
	f := func(s, p, o uint32) bool {
		tr := rdf.Triple{S: rdf.ID(s), P: rdf.ID(p), O: rdf.ID(o)}
		got, err := DecodeTriple(EncodeTriple(tr))
		return err == nil && got == tr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIDRoundtripQuick(t *testing.T) {
	f := func(v uint32) bool {
		id := rdf.ID(v)
		got, err := DecodeID(EncodeID(id))
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompositeRoundtrip(t *testing.T) {
	var e Buffer
	e.PutUvarint(42)
	e.PutID(7)
	e.PutTriple(rdf.Triple{S: 1, P: 2, O: 3})
	e.PutBytes([]byte("hello"))
	e.PutIDs([]rdf.ID{9, 8, 7})
	e.PutBytes(nil)

	r := NewReader(e.Bytes())
	if v, err := r.Uvarint(); err != nil || v != 42 {
		t.Fatalf("Uvarint = %d, %v", v, err)
	}
	if id, err := r.ID(); err != nil || id != 7 {
		t.Fatalf("ID = %d, %v", id, err)
	}
	if tr, err := r.Triple(); err != nil || tr != (rdf.Triple{S: 1, P: 2, O: 3}) {
		t.Fatalf("Triple = %v, %v", tr, err)
	}
	if b, err := r.Bytes(); err != nil || !bytes.Equal(b, []byte("hello")) {
		t.Fatalf("Bytes = %q, %v", b, err)
	}
	if ids, err := r.IDs(); err != nil || !reflect.DeepEqual(ids, []rdf.ID{9, 8, 7}) {
		t.Fatalf("IDs = %v, %v", ids, err)
	}
	if b, err := r.Bytes(); err != nil || len(b) != 0 {
		t.Fatalf("empty Bytes = %q, %v", b, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeTriple([]byte{1, 2}); err == nil {
		t.Error("truncated triple decoded without error")
	}
	if _, err := DecodeTriple(append(EncodeTriple(rdf.Triple{S: 1, P: 2, O: 3}), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeID(nil); err == nil {
		t.Error("empty ID decoded without error")
	}
	if _, err := DecodeID([]byte{0x80}); err == nil {
		t.Error("dangling varint decoded without error")
	}
	// ID overflow: varint > uint32.
	var e Buffer
	e.PutUvarint(1 << 40)
	if _, err := NewReader(e.Bytes()).ID(); err == nil {
		t.Error("overflowing ID accepted")
	}
	// Length prefix larger than remaining payload.
	e.Reset()
	e.PutUvarint(1000)
	if _, err := NewReader(e.Bytes()).Bytes(); err == nil {
		t.Error("oversized Bytes length accepted")
	}
	e.Reset()
	e.PutUvarint(1000)
	if _, err := NewReader(e.Bytes()).IDs(); err == nil {
		t.Error("oversized IDs length accepted")
	}
}

func TestBufferReset(t *testing.T) {
	e := NewBuffer(16)
	e.PutUvarint(5)
	if e.Len() == 0 {
		t.Fatal("Len = 0 after append")
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len = %d after Reset", e.Len())
	}
}

// TestFuzzReaderNoPanic feeds random bytes through every Reader method and
// checks none of them panic (they must return ErrCorrupt instead).
func TestFuzzReaderNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := make([]byte, rng.Intn(20))
		rng.Read(p)
		r := NewReader(p)
		for r.Remaining() > 0 {
			switch rng.Intn(4) {
			case 0:
				if _, err := r.Uvarint(); err != nil {
					r.pos = len(r.b)
				}
			case 1:
				if _, err := r.ID(); err != nil {
					r.pos = len(r.b)
				}
			case 2:
				if _, err := r.Triple(); err != nil {
					r.pos = len(r.b)
				}
			case 3:
				if _, err := r.Bytes(); err != nil {
					r.pos = len(r.b)
				}
			}
		}
	}
}
