// Package codec provides the compact binary encodings used for records that
// flow through the simulated DFS and the MapReduce shuffle: dictionary IDs,
// triples, n-tuples, and length-prefixed composites.
//
// All encodings are varint-based so that the byte counters maintained by the
// DFS and the shuffle reflect realistic, size-proportional costs (the paper's
// central metric is the intermediate-result byte footprint).
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ntga/internal/rdf"
)

// ErrCorrupt is returned when a buffer does not contain a well-formed record.
var ErrCorrupt = errors.New("codec: corrupt record")

// Buffer is a tiny append-only encoder. The zero value is ready to use.
type Buffer struct {
	b []byte
}

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer { return &Buffer{b: make([]byte, 0, capacity)} }

// Bytes returns the encoded bytes. The slice aliases the buffer's storage.
func (e *Buffer) Bytes() []byte { return e.b }

// Len reports the number of encoded bytes.
func (e *Buffer) Len() int { return len(e.b) }

// Reset truncates the buffer for reuse.
func (e *Buffer) Reset() { e.b = e.b[:0] }

// PutUvarint appends an unsigned varint.
func (e *Buffer) PutUvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}

// PutID appends a dictionary ID as a varint.
func (e *Buffer) PutID(id rdf.ID) { e.PutUvarint(uint64(id)) }

// PutTriple appends a triple as three varints.
func (e *Buffer) PutTriple(t rdf.Triple) {
	e.PutID(t.S)
	e.PutID(t.P)
	e.PutID(t.O)
}

// PutBytes appends a length-prefixed byte string.
func (e *Buffer) PutBytes(p []byte) {
	e.PutUvarint(uint64(len(p)))
	e.b = append(e.b, p...)
}

// PutIDs appends a length-prefixed slice of IDs.
func (e *Buffer) PutIDs(ids []rdf.ID) {
	e.PutUvarint(uint64(len(ids)))
	for _, id := range ids {
		e.PutID(id)
	}
}

// Reader decodes records produced by Buffer.
type Reader struct {
	b   []byte
	pos int
}

// NewReader returns a Reader over p.
func NewReader(p []byte) *Reader { return &Reader{b: p} }

// Remaining reports the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.pos }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.pos += n
	return v, nil
}

// ID reads a dictionary ID.
func (r *Reader) ID() (rdf.ID, error) {
	v, err := r.Uvarint()
	if err != nil {
		return rdf.NoID, err
	}
	if v > 0xFFFFFFFF {
		return rdf.NoID, fmt.Errorf("%w: ID %d overflows uint32", ErrCorrupt, v)
	}
	return rdf.ID(v), nil
}

// Triple reads a triple.
func (r *Reader) Triple() (rdf.Triple, error) {
	s, err := r.ID()
	if err != nil {
		return rdf.Triple{}, err
	}
	p, err := r.ID()
	if err != nil {
		return rdf.Triple{}, err
	}
	o, err := r.ID()
	if err != nil {
		return rdf.Triple{}, err
	}
	return rdf.Triple{S: s, P: p, O: o}, nil
}

// Bytes reads a length-prefixed byte string. The result aliases the
// underlying buffer.
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, ErrCorrupt
	}
	p := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return p, nil
}

// IDs reads a length-prefixed slice of IDs.
func (r *Reader) IDs() ([]rdf.ID, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) { // each ID is at least one byte
		return nil, ErrCorrupt
	}
	out := make([]rdf.ID, n)
	for i := range out {
		if out[i], err = r.ID(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EncodeTriple encodes a single triple as a standalone record.
func EncodeTriple(t rdf.Triple) []byte {
	var e Buffer
	e.PutTriple(t)
	return e.Bytes()
}

// DecodeTriple decodes a standalone triple record.
func DecodeTriple(p []byte) (rdf.Triple, error) {
	r := NewReader(p)
	t, err := r.Triple()
	if err != nil {
		return rdf.Triple{}, err
	}
	if r.Remaining() != 0 {
		return rdf.Triple{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Remaining())
	}
	return t, nil
}

// EncodeID encodes a single ID as a standalone key.
func EncodeID(id rdf.ID) []byte {
	var e Buffer
	e.PutID(id)
	return e.Bytes()
}

// DecodeID decodes a standalone ID key.
func DecodeID(p []byte) (rdf.ID, error) {
	r := NewReader(p)
	id, err := r.ID()
	if err != nil {
		return rdf.NoID, err
	}
	if r.Remaining() != 0 {
		return rdf.NoID, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Remaining())
	}
	return id, nil
}
