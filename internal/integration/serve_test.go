// Serving acceptance suite: the resident query service must keep its
// guarantees under real concurrency — byte-identical answers vs. serial
// execution (with and without chaos faults), a cluster-wide slot pool that
// in-flight tasks never exceed (proved from trace spans), bounded
// admission that sheds with ErrOverloaded instead of queueing without
// limit, result-cache hits that bypass MapReduce entirely, and cancelled
// queries that leak neither goroutines nor temp bytes.
package integration

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ntga/internal/bench"
	"ntga/internal/mapreduce"
	"ntga/internal/server"
	"ntga/internal/trace"
)

// serveQueryIDs is the benchmark-catalog slice the serving tests multiplex:
// a mix of bound-only stars, unbound-property joins, and the 3-star
// optimizer query, all on the BSBM-flavoured dataset.
var serveQueryIDs = []string{"Q1a", "Q2a", "Q3a", "B0", "B1", "B2", "B5", "B7"}

func serveQueries(t *testing.T) []bench.CatalogQuery {
	t.Helper()
	qs, err := bench.Series(serveQueryIDs...)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

func newServeServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	g, err := bench.Dataset("bsbm", 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// renderResponse flattens a response to one comparable string.
func renderResponse(r *server.Response) string {
	if r.IsCount {
		return fmt.Sprintf("count:%d", r.Count)
	}
	return strings.Join(r.Header, "\t") + "\n" + strings.Join(r.Rows, "\n")
}

// serialAnswers evaluates every query one at a time on its own fresh
// service and returns the rendered rows keyed by query ID.
func serialAnswers(t *testing.T, cfg server.Config, qs []bench.CatalogQuery) map[string]string {
	t.Helper()
	s := newServeServer(t, cfg)
	out := make(map[string]string, len(qs))
	for _, cq := range qs {
		r, err := s.Evaluate(context.Background(), server.Request{Query: cq.Src, NoCache: true})
		if err != nil {
			t.Fatalf("serial %s: %v", cq.ID, err)
		}
		out[cq.ID] = renderResponse(r)
	}
	return out
}

// taskIntervals collects every task span's [start, end] interval from the
// trace forest, split by task kind ("map" / "reduce").
func taskIntervals(roots []*trace.Span) map[string][][2]time.Time {
	out := map[string][][2]time.Time{}
	var walk func(s *trace.Span)
	walk = func(s *trace.Span) {
		if s.Kind == trace.KindTask {
			out[s.Name] = append(out[s.Name], [2]time.Time{s.Start, s.End})
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// maxOverlap sweeps the intervals and returns the peak number in flight at
// any instant. Ends sort before starts at equal timestamps: a slot released
// and re-granted in the same nanosecond is sequential, not concurrent.
func maxOverlap(intervals [][2]time.Time) int {
	type event struct {
		at    time.Time
		delta int
	}
	events := make([]event, 0, 2*len(intervals))
	for _, iv := range intervals {
		events = append(events, event{iv[0], +1}, event{iv[1], -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if !events[i].at.Equal(events[j].at) {
			return events[i].at.Before(events[j].at)
		}
		return events[i].delta < events[j].delta
	})
	cur, peak := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// TestServeConcurrentByteIdentical is the headline acceptance run: 16
// concurrent clients multiplex the catalog queries over one resident
// service and every answer must match its serial run byte for byte, while
// the shared slot pool's capacity is never exceeded (checked both from the
// pool's own accounting and independently from the task spans of a shared
// tracer), and a repeat query is served from the result cache with zero MR
// cycles.
func TestServeConcurrentByteIdentical(t *testing.T) {
	qs := serveQueries(t)
	want := serialAnswers(t, server.Config{}, qs)

	const mapSlots, reduceSlots, clients = 4, 4, 16
	tr := trace.New()
	s := newServeServer(t, server.Config{
		MapSlots:    mapSlots,
		ReduceSlots: reduceSlots,
		MaxInflight: clients,
		MaxQueue:    4 * clients,
		Tracer:      tr,
	})

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client walks the whole catalog, starting at its own
			// offset so distinct queries overlap in time.
			for i := range qs {
				cq := qs[(c+i)%len(qs)]
				r, err := s.Evaluate(context.Background(), server.Request{
					Query:   cq.Src,
					NoCache: true, // force real execution on every call
					Tenant:  fmt.Sprintf("tenant-%d", c%3),
					Weight:  1 + c%2,
				})
				if err != nil {
					errs[c] = fmt.Errorf("%s: %w", cq.ID, err)
					return
				}
				if got := renderResponse(r); got != want[cq.ID] {
					errs[c] = fmt.Errorf("%s: concurrent rows differ from serial run", cq.ID)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", c, err)
		}
	}

	// Slot pool never exceeded — once from the pool's own high-water mark…
	m := s.Snapshot()
	if got := m.Slots["map"].Peak; got > mapSlots {
		t.Errorf("pool map peak = %d, cap %d", got, mapSlots)
	}
	if got := m.Slots["reduce"].Peak; got > reduceSlots {
		t.Errorf("pool reduce peak = %d, cap %d", got, reduceSlots)
	}
	// …and once independently, from the task spans every workflow recorded.
	byKind := taskIntervals(tr.Roots())
	if len(byKind["map"]) == 0 || len(byKind["reduce"]) == 0 {
		t.Fatalf("tracer recorded %d map / %d reduce task spans, want both non-zero",
			len(byKind["map"]), len(byKind["reduce"]))
	}
	if got := maxOverlap(byKind["map"]); got > mapSlots {
		t.Errorf("trace spans show %d concurrent map tasks, slot cap %d", got, mapSlots)
	}
	if got := maxOverlap(byKind["reduce"]); got > reduceSlots {
		t.Errorf("trace spans show %d concurrent reduce tasks, slot cap %d", got, reduceSlots)
	}

	// The NoCache runs still populated the result cache: a plain repeat of
	// every query must now be a hit that runs zero MR cycles.
	cyclesBefore := s.Snapshot().MRCycles
	for _, cq := range qs {
		r, err := s.Evaluate(context.Background(), server.Request{Query: cq.Src})
		if err != nil {
			t.Fatalf("cached repeat %s: %v", cq.ID, err)
		}
		if r.Cache != "hit" || r.Cycles != 0 {
			t.Errorf("repeat %s: cache=%s cycles=%d, want hit with 0 cycles", cq.ID, r.Cache, r.Cycles)
		}
		if got := renderResponse(r); got != want[cq.ID] {
			t.Errorf("repeat %s: cached rows differ from serial run", cq.ID)
		}
	}
	if after := s.Snapshot().MRCycles; after != cyclesBefore {
		t.Errorf("cached repeats executed %d MR cycles, want 0", after-cyclesBefore)
	}
}

// TestServeConcurrentWithChaos reruns the concurrent sweep with the fault
// injector armed on every served workflow: attempts die mid-phase and are
// retried, yet every concurrent answer must still match the fault-free
// serial baseline.
func TestServeConcurrentWithChaos(t *testing.T) {
	qs := serveQueries(t)
	want := serialAnswers(t, server.Config{}, qs)

	s := newServeServer(t, server.Config{
		MapSlots:        6,
		ReduceSlots:     6,
		MaxInflight:     8,
		MaxQueue:        64,
		SortBufferBytes: 1 << 10, // force spills so faults hit partial state
		TaskMaxAttempts: 12,
		TaskFailureRate: 0.15, // legacy pre-body attempt kills
		TaskFailureSeed: 20260806,
		Faults: &mapreduce.FaultPlan{ // mid-phase kills holding partial state
			Rate:     0.01,
			Seed:     20260806,
			MidPhase: true,
		},
	})

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	retries := make([]int64, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range qs {
				cq := qs[(c+i)%len(qs)]
				r, err := s.Evaluate(context.Background(), server.Request{Query: cq.Src, NoCache: true})
				if err != nil {
					errs[c] = fmt.Errorf("%s: %w", cq.ID, err)
					return
				}
				retries[c] += r.TaskRetries
				if got := renderResponse(r); got != want[cq.ID] {
					errs[c] = fmt.Errorf("%s: chaos rows differ from fault-free serial run", cq.ID)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	var totalRetries int64
	for c, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", c, err)
		}
		totalRetries += retries[c]
	}
	if totalRetries == 0 {
		t.Error("chaos run recorded zero task retries — fault injection never fired")
	}
	if m := s.Snapshot(); m.TempBytesReclaimed == 0 {
		t.Error("TempBytesReclaimed = 0 under chaos, want failed attempts' bytes accounted")
	}
}

// TestServeOverloadSheds floods a deliberately tiny admission window and
// requires the overflow to be refused with ErrOverloaded — immediately,
// not after waiting — while admitted queries still succeed.
func TestServeOverloadSheds(t *testing.T) {
	qs := serveQueries(t)
	s := newServeServer(t, server.Config{MaxInflight: 1, MaxQueue: 1})

	const clients = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var succeeded, shed int
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			_, err := s.Evaluate(context.Background(), server.Request{Query: qs[c%len(qs)].Src, NoCache: true})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				succeeded++
			case errors.Is(err, server.ErrOverloaded):
				shed++
			default:
				t.Errorf("client %d: %v", c, err)
			}
		}(c)
	}
	close(start)
	wg.Wait()
	if succeeded == 0 {
		t.Error("no query survived admission")
	}
	if shed == 0 {
		t.Error("no query was shed by a window of 2 under 16 simultaneous clients")
	}
	if succeeded+shed != clients {
		t.Errorf("succeeded %d + shed %d != %d clients", succeeded, shed, clients)
	}
	if m := s.Snapshot(); m.Shed != int64(shed) {
		t.Errorf("metrics shed = %d, counted %d", m.Shed, shed)
	}
}

// TestServeCancellationLeaksNothing cancels a fleet of mid-flight queries
// via per-request deadlines and requires: the failures are deadline errors,
// swept attempt temporaries are accounted, zero temp files remain on the
// DFS, the goroutine count returns to baseline, and the service keeps
// serving afterwards.
func TestServeCancellationLeaksNothing(t *testing.T) {
	qs := serveQueries(t)
	// Slots exceed the client count so every query's tasks actually start
	// (a deadline that fires while a task is still queued for a slot is a
	// valid cancellation, but holds no partial state to sweep); the tiny
	// sort buffer guarantees running attempts hold spilled state.
	s := newServeServer(t, server.Config{
		MapSlots:        32,
		ReduceSlots:     32,
		MaxInflight:     16,
		MaxQueue:        64,
		SortBufferBytes: 1 << 10,
	})

	// Measure one full run to aim the deadlines at the middle of execution.
	warm := time.Now()
	if _, err := s.Evaluate(context.Background(), server.Request{Query: qs[len(qs)-1].Src, NoCache: true}); err != nil {
		t.Fatal(err)
	}
	warmMS := time.Since(warm).Milliseconds()

	baseline := runtime.NumGoroutine()
	const clients = 16
	var timedOut int
	// Deadlines laddered across (0, warmMS]: some land mid-execution and
	// sweep partial state. Retry with the survivors' budget halved until a
	// round both cancels mid-flight and accounts reclaimed bytes (bounded —
	// timer jitter means no single round is guaranteed to catch state).
	for round := 0; round < 8; round++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				timeoutMS := warmMS * int64(c%4+1) / (4 << round)
				if timeoutMS < 1 {
					timeoutMS = 1
				}
				_, err := s.Evaluate(context.Background(), server.Request{
					Query:     qs[c%len(qs)].Src,
					NoCache:   true,
					TimeoutMS: timeoutMS,
				})
				if err != nil {
					if !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("client %d: %v, want deadline or success", c, err)
						return
					}
					mu.Lock()
					timedOut++
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		if timedOut > 0 && s.Snapshot().TempBytesReclaimed > 0 {
			break
		}
	}

	if timedOut == 0 {
		t.Error("no client was cancelled mid-flight across every deadline ladder round")
	}
	m := s.Snapshot()
	if m.TempFiles != 0 {
		t.Errorf("%d temp files remain after cancellations, want 0", m.TempFiles)
	}
	if m.TempBytesReclaimed == 0 {
		t.Error("TempBytesReclaimed = 0 after mid-flight cancellations, want swept attempt bytes accounted")
	}

	// Goroutines wound down: slot waiters, task attempts, and admission
	// holders of the cancelled queries must all exit.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	r, err := s.Evaluate(context.Background(), server.Request{Query: qs[0].Src})
	if err != nil || r.TotalRows == 0 {
		t.Fatalf("post-cancellation Evaluate = (%v, %v), want working service", r, err)
	}
}
