// Cross-layout parity: every catalog query, on every engine family, run
// over the flat triple file and over the hash-of-subject bucketed layout —
// identical rows, counts, and canonical bytes; the same holds with the
// seeded fault plan armed and through the 3-worker loopback cluster. A
// stale layout manifest (dataset version mismatch) must be refused at load
// and the query must fall back to the shuffle path with correct rows.
package integration

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"ntga/internal/bench"
	"ntga/internal/cluster"
	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
	"ntga/internal/ntgamr"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/refengine"
	"ntga/internal/relmr"
)

const layoutBuckets = 8

// layoutEngines is the cross-layout line-up: the engines that rewrite onto
// the bucketed layout (Hive, both NTGA variants) plus Pig, which ignores it
// — the parity contract holds either way.
func layoutEngines() []engine.QueryEngine {
	return []engine.QueryEngine{
		relmr.NewPig(),
		relmr.NewHive(),
		ntgamr.NewEager(),
		ntgamr.NewLazy(),
	}
}

// canonicalEqual compares two row sets byte-for-byte in canonical order —
// stricter than the multiset check, it pins the exact binding values.
func canonicalEqual(a, b []query.Row) bool {
	ca, cb := query.CanonicalRows(a, false), query.CanonicalRows(b, false)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if len(ca[i]) != len(cb[i]) {
			return false
		}
		for j := range ca[i] {
			if ca[i][j] != cb[i][j] {
				return false
			}
		}
	}
	return true
}

func TestPartitionedLayoutCatalogParity(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-layout sweep")
	}
	graphs := map[string]*rdf.Graph{}
	for _, cq := range bench.Catalog() {
		cq := cq
		t.Run(cq.ID, func(t *testing.T) {
			g, ok := graphs[cq.Dataset]
			if !ok {
				var err error
				g, err = bench.Dataset(cq.Dataset, 1, 42)
				if err != nil {
					t.Fatal(err)
				}
				graphs[cq.Dataset] = g
			}
			q := enginetest.Compile(t, g, cq.Src)
			want := refengine.Evaluate(q, g)
			for _, eng := range layoutEngines() {
				mr := mapreduce.NewEngine(
					hdfs.New(hdfs.Config{Nodes: 6}),
					mapreduce.EngineConfig{DefaultReducers: 4, SplitRecords: 1024},
				)
				const input = "data/triples"
				if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
					t.Fatal(err)
				}
				part, err := plan.BuildPartitionLayout(mr, input, "part/T", layoutBuckets, g.Version())
				if err != nil {
					t.Fatalf("building layout: %v", err)
				}
				flat, err := eng.Run(mr, q, input)
				if err != nil {
					t.Fatalf("%s flat: %v", eng.Name(), err)
				}
				bucketed, err := engine.RunMaybePartitioned(eng, mr, q, input, part)
				if err != nil {
					t.Fatalf("%s partitioned: %v", eng.Name(), err)
				}
				if flat.IsCount != bucketed.IsCount || flat.Count != bucketed.Count {
					t.Errorf("%s count mismatch: flat %d, partitioned %d", eng.Name(), flat.Count, bucketed.Count)
				}
				if len(flat.Rows) != len(bucketed.Rows) {
					t.Errorf("%s row count: flat %d, partitioned %d", eng.Name(), len(flat.Rows), len(bucketed.Rows))
				}
				if !canonicalEqual(flat.Rows, bucketed.Rows) {
					t.Errorf("%s canonical rows differ between layouts:\n%s",
						eng.Name(), query.DiffRows(flat.Rows, bucketed.Rows, 6))
				}
				if !query.RowsEqual(want, bucketed.Rows) {
					t.Errorf("%s partitioned rows diverge from reference:\n%s",
						eng.Name(), query.DiffRows(want, bucketed.Rows, 6))
				}
			}
		})
	}
}

// TestPartitionedLayoutSurvivesFaults arms the seeded fault plan — attempt
// failures, mid-phase faults, node kills — on both the layout-building job
// and the map-only query run. Recovery must still produce the reference
// rows from the bucketed layout.
func TestPartitionedLayoutSurvivesFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos rounds")
	}
	engines := []engine.QueryEngine{relmr.NewHive(), ntgamr.NewLazy()}
	for qi, id := range []string{"Q1a", "B0", "B1", "B5", "B7"} {
		cq, err := bench.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		g, err := bench.Dataset(cq.Dataset, 1, 42)
		if err != nil {
			t.Fatal(err)
		}
		q := enginetest.Compile(t, g, cq.Src)
		want := refengine.Evaluate(q, g)
		for ei, eng := range engines {
			seed := int64(qi*17 + ei + 1)
			mr := newChaosMR(seed)
			const input = "data/triples"
			if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
				t.Fatal(err)
			}
			part, err := plan.BuildPartitionLayout(mr, input, "part/T", layoutBuckets, g.Version())
			if err != nil {
				t.Fatalf("%s on %s (seed %d): layout build failed under chaos: %v", eng.Name(), id, seed, err)
			}
			res, err := engine.RunMaybePartitioned(eng, mr, q, input, part)
			if err != nil {
				t.Fatalf("%s on %s (seed %d) failed under chaos: %v", eng.Name(), id, seed, err)
			}
			if !query.RowsEqual(want, res.Rows) {
				t.Fatalf("%s on %s (seed %d) differs from reference under chaos:\n%s",
					eng.Name(), id, seed, query.DiffRows(want, res.Rows, 6))
			}
		}
	}
}

// TestPartitionedLayoutClusterParity runs catalog queries through a real
// 3-worker loopback RPC cluster whose master built the bucketed layout at
// boot: the partitioned distributed answer must match the flat distributed
// answer and the reference engine.
func TestPartitionedLayoutClusterParity(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback cluster round")
	}
	g, err := bench.Dataset("bsbm", 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cluster.NewMaster(cluster.MasterConfig{
		Reducers:         4,
		SplitRecords:     1024,
		PartitionBuckets: layoutBuckets,
		HeartbeatTimeout: 400 * time.Millisecond,
		SweepEvery:       25 * time.Millisecond,
		HeartbeatEvery:   50 * time.Millisecond,
		LeaseEvery:       2 * time.Millisecond,
		LeaseTimeout:     5 * time.Second,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var workers []*cluster.Worker
	for i := 0; i < 3; i++ {
		w := cluster.NewWorker(cluster.WorkerConfig{MapSlots: 2, ReduceSlots: 2}, nil, m.Addr())
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	c, err := cluster.Dial(nil, m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	for _, id := range []string{"Q1a", "B1"} {
		cq, err := bench.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		q := enginetest.Compile(t, g, cq.Src)
		want := refengine.Evaluate(q, g)
		flat, err := c.Run(ctx, &cluster.RunArgs{Query: cq.Src, Engine: "ntga-lazy", TimeoutMS: 120_000, NoPartition: true})
		if err != nil {
			t.Fatalf("%s flat cluster run: %v", id, err)
		}
		part, err := c.Run(ctx, &cluster.RunArgs{Query: cq.Src, Engine: "ntga-lazy", TimeoutMS: 120_000})
		if err != nil {
			t.Fatalf("%s partitioned cluster run: %v", id, err)
		}
		if !query.RowsEqual(flat.Rows, part.Rows) || !query.RowsEqual(want, part.Rows) {
			t.Errorf("%s: partitioned cluster rows diverge:\n%s", id, query.DiffRows(want, part.Rows, 6))
		}
		ft, pt := append([]string(nil), flat.RowsText...), append([]string(nil), part.RowsText...)
		sort.Strings(ft)
		sort.Strings(pt)
		if len(ft) != len(pt) {
			t.Fatalf("%s: rendered row counts differ (%d vs %d)", id, len(ft), len(pt))
		}
		for i := range ft {
			if ft[i] != pt[i] {
				t.Fatalf("%s: rendered row %d differs:\n flat: %s\n part: %s", id, i, ft[i], pt[i])
			}
		}
		if part.Workflow.TotalMapOutputBytes() != 0 {
			t.Errorf("%s: partitioned cluster run shuffled %d bytes, want 0", id, part.Workflow.TotalMapOutputBytes())
		}
	}
}

// TestStaleLayoutFallsBackToShuffle pins the version-mismatch contract: a
// layout built from a different dataset version must be refused at load
// time with hdfs.ErrLayoutStale, and the query then runs the ordinary
// shuffle path against the flat file with correct rows.
func TestStaleLayoutFallsBackToShuffle(t *testing.T) {
	g, err := bench.Dataset("bsbm", 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	mr := mapreduce.NewEngine(
		hdfs.New(hdfs.Config{Nodes: 4}),
		mapreduce.EngineConfig{DefaultReducers: 4, SplitRecords: 1024},
	)
	const input = "data/triples"
	if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.BuildPartitionLayout(mr, input, "part/T", layoutBuckets, "stale-dataset-version"); err != nil {
		t.Fatal(err)
	}
	part, err := plan.LoadPartitioning(mr.DFS(), "part/T", g.Version())
	if !errors.Is(err, hdfs.ErrLayoutStale) {
		t.Fatalf("loading a stale layout: err = %v, want ErrLayoutStale", err)
	}
	if part != nil {
		t.Fatal("stale load returned a usable partitioning")
	}

	// The ntga-run fallback: part stays nil, the run takes the shuffle path.
	cq, err := bench.Lookup("Q1a")
	if err != nil {
		t.Fatal(err)
	}
	q := enginetest.Compile(t, g, cq.Src)
	eng := ntgamr.NewLazy()
	res, err := engine.RunMaybePartitioned(eng, mr, q, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !query.RowsEqual(refengine.Evaluate(q, g), res.Rows) {
		t.Error("fallback shuffle run diverges from reference")
	}
	if res.Workflow.TotalMapOutputBytes() == 0 {
		t.Error("fallback run moved no shuffle bytes; it did not take the shuffle path")
	}
}
