// Trace-replay acceptance suite: the workload harness drives a seeded
// 1000-request Zipf multi-tenant trace through the resident service with
// 32 concurrent clients, and every successfully answered request must be
// byte-identical to a serial reference execution — on a healthy service
// and on one with the chaos fault injector armed.
package integration

import (
	"context"
	"testing"
	"time"

	"ntga/internal/mapreduce"
	"ntga/internal/server"
	"ntga/internal/workload"
)

// traceWorkloadQueries adapts the serving catalog slice for the generator.
func traceWorkloadQueries(t *testing.T) []workload.Query {
	t.Helper()
	qs := serveQueries(t)
	out := make([]workload.Query, len(qs))
	for i, cq := range qs {
		out[i] = workload.Query{ID: cq.ID, Src: cq.Src}
	}
	return out
}

// traceUnderLoad replays the canonical 1000-request trace (Zipf 1.1, three
// weighted tenants, 30% cache busters) with 32 closed-loop clients against
// the given service config and fails on any response that differs from the
// serial reference.
func traceUnderLoad(t *testing.T, cfg server.Config) *workload.Result {
	t.Helper()
	wqs := traceWorkloadQueries(t)
	tr, err := workload.Generate(workload.Config{
		Seed:     20260808,
		Requests: 1000,
		ZipfS:    1.1,
		Tenants: []workload.TenantSpec{
			{Name: "gold", Weight: 3, Share: 0.5},
			{Name: "silver", Weight: 2, Share: 0.3},
			{Name: "bronze", Weight: 1, Share: 0.2},
		},
		ColdFraction: 0.3,
	}, wqs)
	if err != nil {
		t.Fatal(err)
	}

	s := newServeServer(t, cfg)
	tgt := workload.ServerTarget{S: s}
	// The reference runs on the same (still idle) service, serially and
	// cache-bypassing; the concurrent replay must reproduce it byte for
	// byte whether an answer came from MapReduce or the result cache.
	ref, err := workload.SerialReference(context.Background(), tr, tgt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.Replay(context.Background(), tr, tgt, workload.Options{
		Closed:  true,
		Clients: 32,
		Verify:  ref,
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.Requests != 1000 {
		t.Errorf("replayed %d requests, want 1000", res.Requests)
	}
	if got := res.Outcomes[workload.OutcomeOK]; got != 1000 {
		t.Errorf("ok outcomes = %d, want 1000 (outcomes %v, first errors %v)",
			got, res.Outcomes, res.Errs)
	}
	if res.Diffs != 0 {
		t.Errorf("%d concurrent responses differ from serial reference: %v", res.Diffs, res.DiffDetails)
	}
	return res
}

// TestTraceReplayByteIdentical is the correctness-under-load headline: a
// 1000-request seeded trace through 32 concurrent clients, every OK
// response byte-identical to the serial reference.
func TestTraceReplayByteIdentical(t *testing.T) {
	res := traceUnderLoad(t, server.Config{
		MaxInflight: 16,
		MaxQueue:    2048,
	})
	// The mix must have exercised both paths: cold requests executed real
	// cycles, hot requests hit the cache.
	for _, tenant := range []string{"gold", "silver", "bronze"} {
		if res.PerTenant[tenant] == nil || res.PerTenant[tenant].Outcomes[workload.OutcomeOK] == 0 {
			t.Errorf("tenant %s answered no requests", tenant)
		}
	}
}

// TestTraceReplayWithChaos reruns the same trace with mid-phase fault
// injection armed on every served workflow: attempts die holding partial
// state and are retried, yet all 1000 concurrent answers must still match
// the serial reference byte for byte.
func TestTraceReplayWithChaos(t *testing.T) {
	traceUnderLoad(t, server.Config{
		MaxInflight:     16,
		MaxQueue:        2048,
		SortBufferBytes: 1 << 10, // force spills so faults hit partial state
		TaskMaxAttempts: 12,
		TaskFailureRate: 0.15,
		TaskFailureSeed: 20260808,
		Faults: &mapreduce.FaultPlan{
			Rate:     0.01,
			Seed:     20260808,
			MidPhase: true,
		},
	})
}

// TestTraceReplayAdaptiveAdmissionParity replays the trace against the
// p95-adaptive admission controller (generous target, so nothing sheds)
// and requires the exact same byte-identity guarantee: the adaptive window
// changes when requests are refused, never what an admitted request
// answers.
func TestTraceReplayAdaptiveAdmissionParity(t *testing.T) {
	traceUnderLoad(t, server.Config{
		MaxInflight: 16,
		MaxQueue:    2048,
		Admission: &server.AdmissionConfig{
			TargetQueueWait: 10 * time.Second, // far above any real queue wait here
		},
	})
}

// TestTraceReplayQueueWaitMetrics drives a narrow service with the trace
// and asserts the per-tenant queue-wait rollup in /metrics is populated
// for every tenant in the mix.
func TestTraceReplayQueueWaitMetrics(t *testing.T) {
	wqs := traceWorkloadQueries(t)
	tr, err := workload.Generate(workload.Config{
		Seed:     7,
		Requests: 64,
		Tenants: []workload.TenantSpec{
			{Name: "gold", Weight: 2, Share: 0.5},
			{Name: "bronze", Weight: 1, Share: 0.5},
		},
		ColdFraction: 1, // every request must queue for an execution token
	}, wqs)
	if err != nil {
		t.Fatal(err)
	}
	s := newServeServer(t, server.Config{MaxInflight: 2, MaxQueue: 256})
	res, err := workload.Replay(context.Background(), tr, workload.ServerTarget{S: s},
		workload.Options{Closed: true, Clients: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outcomes[workload.OutcomeOK]; got != 64 {
		t.Fatalf("ok = %d, want 64 (outcomes %v, errs %v)", got, res.Outcomes, res.Errs)
	}
	qw := s.Snapshot().QueueWait
	for _, tenant := range []string{"gold", "bronze"} {
		st, ok := qw[tenant]
		if !ok || st.Count == 0 {
			t.Errorf("queue-wait metrics missing tenant %q (have %v)", tenant, qw)
		}
	}
}
