// End-to-end check of the cost-based join-order optimizer: on the B7
// benchmark query (three stars meeting on ?prod, with the selective review
// star written last) the optimizer must pick a different order than the
// compile-time one, every engine must return exactly the legacy rows under
// that order, and the measured shuffle volume must not regress.
package integration

import (
	"testing"

	"ntga/internal/bench"
	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/ntgamr"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/refengine"
	"ntga/internal/relmr"
	"ntga/internal/sparql"
)

func TestOptimizerReordersB7EndToEnd(t *testing.T) {
	cq, err := bench.Lookup("B7")
	if err != nil {
		t.Fatal(err)
	}
	g, err := bench.Dataset(cq.Dataset, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	cat := plan.FromGraph(g)

	compile := func() *query.Query {
		pq, err := sparql.Parse(cq.Src)
		if err != nil {
			t.Fatal(err)
		}
		q, err := query.Compile(pq, g.Dict)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	legacyQ := compile()
	optQ := compile()
	r, err := plan.Optimize(cat, optQ)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Changed {
		t.Fatalf("optimizer kept the legacy order %v for B7", r.Order)
	}
	if r.Est >= r.LegacyEst {
		t.Fatalf("chosen order %v estimated at %d, not below legacy %d", r.Order, r.Est, r.LegacyEst)
	}

	want := refengine.Evaluate(legacyQ, g)
	if len(want) == 0 {
		t.Fatal("B7 returns no rows on the seeded dataset — the comparison is vacuous")
	}
	engines := []engine.QueryEngine{relmr.NewPig(), relmr.NewHive(), ntgamr.NewEager(), ntgamr.NewLazy()}
	for _, eng := range engines {
		legacyShuffle := runMeasured(t, eng, g, legacyQ, want)
		optShuffle := runMeasured(t, eng, g, optQ, want)
		if optShuffle > legacyShuffle {
			t.Errorf("%s: optimized order shuffled %d bytes, legacy %d — optimizer made it worse",
				eng.Name(), optShuffle, legacyShuffle)
		} else {
			t.Logf("%s: shuffle %d -> %d bytes (estimated %d -> %d)",
				eng.Name(), legacyShuffle, optShuffle, r.LegacyEst, r.Est)
		}
	}
}

// runMeasured executes the query on a fresh cluster, checks the rows
// against the reference, and returns the measured shuffle bytes.
func runMeasured(t *testing.T, eng engine.QueryEngine, g *rdf.Graph, q *query.Query, want []query.Row) int64 {
	t.Helper()
	mr := enginetest.NewMR()
	const input = "data/triples"
	if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(mr, q, input)
	if err != nil {
		t.Fatalf("%s.Run: %v", eng.Name(), err)
	}
	if !query.RowsEqual(want, res.Rows) {
		t.Errorf("%s rows differ from reference:\n%s",
			eng.Name(), query.DiffRows(want, res.Rows, 8))
	}
	return res.Workflow.TotalMapOutputBytes()
}
