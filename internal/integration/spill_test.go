// Spill integration: every engine, run under a deliberately tiny map
// sort-buffer budget, must produce bindings identical to the in-memory
// reference evaluator — the bounded-memory shuffle (spill + external merge)
// is behavior-preserving all the way up the stack.
package integration

import (
	"testing"

	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/query"
	"ntga/internal/refengine"
)

// spillQuery joins two stars with an unbound-property slot and a filter —
// enough shuffle volume that a 256B sort buffer forces every map task to
// spill and every reduce partition to run an external merge.
const spillQuery = `PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?s ex:p0 ?o1 .
  ?s ?u ?x .
  ?o1 ex:p1 ?o2 .
  FILTER(?x != ex:o3)
}`

func TestSpillBoundedBufferMatchesReference(t *testing.T) {
	g := enginetest.RandomGraph(41, 400, 40, 4, 24)
	q := enginetest.Compile(t, g, spillQuery)
	want := refengine.Evaluate(q, g)
	if len(want) == 0 {
		t.Fatal("spill query has no reference results; pick a different seed")
	}
	for _, eng := range allEngines() {
		t.Run(eng.Name(), func(t *testing.T) {
			mr := enginetest.NewSpillMR(256)
			if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(mr, q, "in")
			if err != nil {
				t.Fatalf("%s under 256B sort buffer: %v", eng.Name(), err)
			}
			if !query.RowsEqual(want, res.Rows) {
				t.Errorf("%s rows differ from reference under spilling:\n%s",
					eng.Name(), query.DiffRows(want, res.Rows, 8))
			}
			if spilled := res.Workflow.TotalSpilledBytes(); spilled == 0 {
				t.Errorf("%s: TotalSpilledBytes = 0, want > 0 under a 256B budget", eng.Name())
			}
			if passes := res.Workflow.TotalMergePasses(); passes < 1 {
				t.Errorf("%s: TotalMergePasses = %d, want >= 1", eng.Name(), passes)
			}
			// The bounded run must not leak spill runs or part files.
			if files := mr.DFS().List(); len(files) != 1 || files[0] != "in" {
				t.Errorf("%s left files behind: %v", eng.Name(), files)
			}
			if disk := mr.DFS().SpillUsed(); disk != 0 {
				t.Errorf("%s left %d bytes of local spill in use", eng.Name(), disk)
			}
		})
	}
}

// TestSpillUnboundedIsZero pins the default regime: with no budget set,
// nothing spills and no merge passes run, for every engine.
func TestSpillUnboundedIsZero(t *testing.T) {
	g := enginetest.RandomGraph(41, 400, 40, 4, 24)
	q := enginetest.Compile(t, g, spillQuery)
	for _, eng := range allEngines() {
		mr := enginetest.NewMR()
		if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(mr, q, "in")
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if s := res.Workflow.TotalSpilledBytes(); s != 0 {
			t.Errorf("%s: spilled %d bytes with an unbounded buffer", eng.Name(), s)
		}
		if p := res.Workflow.TotalMergePasses(); p != 0 {
			t.Errorf("%s: %d merge passes with an unbounded buffer", eng.Name(), p)
		}
	}
}
