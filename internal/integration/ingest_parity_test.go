// Ingest parity: every catalog query, on every engine family, run over a
// base load plus ingested delta blocks (the query-time overlay) must be
// byte-identical to running the same engine over a from-scratch reload of
// the merged dataset — before and after compaction. The incremental dataset
// version must equal the fresh reload's graph version at every step.
package integration

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ntga/internal/bench"
	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/hdfs"
	"ntga/internal/ingest"
	"ntga/internal/mapreduce"
	"ntga/internal/ntgamr"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/refengine"
	"ntga/internal/relmr"
)

const ingestInput = "data/triples"

func ingestEngines() []engine.QueryEngine {
	return []engine.QueryEngine{
		relmr.NewPig(),
		relmr.NewHive(),
		ntgamr.NewEager(),
		ntgamr.NewLazy(),
	}
}

// splitNTSources renders a graph as N-Triples and splits the text into a
// base source plus nDeltas tail batches (the last ~10% of the lines), so a
// parse of base+deltas in order reproduces the full graph exactly.
func splitNTSources(t *testing.T, g *rdf.Graph, nDeltas int) (base string, deltas []string) {
	t.Helper()
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, g); err != nil {
		t.Fatalf("WriteNTriples: %v", err)
	}
	lines := strings.SplitAfter(strings.TrimRight(buf.String(), "\n"), "\n")
	tail := len(lines) / 10
	if tail < nDeltas {
		tail = nDeltas
	}
	cut := len(lines) - tail
	base = strings.Join(lines[:cut], "")
	per := tail / nDeltas
	for i := 0; i < nDeltas; i++ {
		from := cut + i*per
		to := from + per
		if i == nDeltas-1 {
			to = len(lines)
		}
		deltas = append(deltas, strings.Join(lines[from:to], ""))
	}
	return base, deltas
}

func newIngestMR() *mapreduce.Engine {
	return mapreduce.NewEngine(
		hdfs.New(hdfs.Config{Nodes: 6}),
		mapreduce.EngineConfig{DefaultReducers: 4, SplitRecords: 1024},
	)
}

// mustSameResult asserts two engine results are byte-identical: same count,
// same rows in the same order, same final-file record and byte sizes.
func mustSameResult(t *testing.T, label string, got, want *engine.Result) {
	t.Helper()
	if got.IsCount != want.IsCount || got.Count != want.Count {
		t.Errorf("%s: count mismatch: got %v/%d, want %v/%d",
			label, got.IsCount, got.Count, want.IsCount, want.Count)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("%s: rows differ from fresh-reload run:\n%s",
			label, query.DiffRows(want.Rows, got.Rows, 6))
	}
	if got.OutputRecords != want.OutputRecords || got.OutputBytes != want.OutputBytes {
		t.Errorf("%s: final output %d records / %d bytes, fresh reload %d / %d",
			label, got.OutputRecords, got.OutputBytes, want.OutputRecords, want.OutputBytes)
	}
}

func TestIngestOverlayCatalogParity(t *testing.T) {
	if testing.Short() {
		t.Skip("ingest parity sweep")
	}
	type prepared struct {
		gMerged *rdf.Graph
		base    string
		deltas  []string
	}
	cache := map[string]prepared{}
	for _, cq := range bench.Catalog() {
		cq := cq
		t.Run(cq.ID, func(t *testing.T) {
			pr, ok := cache[cq.Dataset]
			if !ok {
				g, err := bench.Dataset(cq.Dataset, 1, 42)
				if err != nil {
					t.Fatal(err)
				}
				base, deltas := splitNTSources(t, g, 2)
				gMerged, err := rdf.ReadNTriples(strings.NewReader(base + strings.Join(deltas, "")))
				if err != nil {
					t.Fatal(err)
				}
				pr = prepared{gMerged: gMerged, base: base, deltas: deltas}
				cache[cq.Dataset] = pr
			}
			q := enginetest.Compile(t, pr.gMerged, cq.Src)
			want := refengine.Evaluate(q, pr.gMerged)
			for _, eng := range ingestEngines() {
				// Fresh-reload oracle: the merged dataset loaded from scratch.
				oracle := newIngestMR()
				if err := engine.LoadGraph(oracle.DFS(), ingestInput, pr.gMerged); err != nil {
					t.Fatal(err)
				}
				fresh, err := eng.Run(oracle, q, ingestInput)
				if err != nil {
					t.Fatalf("%s fresh run: %v", eng.Name(), err)
				}
				if !fresh.IsCount && !query.RowsEqual(want, fresh.Rows) {
					t.Fatalf("%s fresh run diverges from reference:\n%s",
						eng.Name(), query.DiffRows(want, fresh.Rows, 6))
				}

				// Incremental path: base load, then the deltas ingested.
				mr := newIngestMR()
				gBase, err := rdf.ReadNTriples(strings.NewReader(pr.base))
				if err != nil {
					t.Fatal(err)
				}
				if err := engine.LoadGraph(mr.DFS(), ingestInput, gBase); err != nil {
					t.Fatal(err)
				}
				st, err := ingest.Init(mr.DFS(), ingestInput, gBase)
				if err != nil {
					t.Fatal(err)
				}
				for i, d := range pr.deltas {
					if _, err := st.Ingest(strings.NewReader(d)); err != nil {
						t.Fatalf("%s ingest delta %d: %v", eng.Name(), i, err)
					}
				}
				if st.Version() != pr.gMerged.Version() {
					t.Fatalf("%s: incremental version %s != fresh reload %s",
						eng.Name(), st.Version(), pr.gMerged.Version())
				}
				overlay, err := engine.RunWithDeltas(eng, mr, q, ingestInput, st.DeltaFiles(), nil)
				if err != nil {
					t.Fatalf("%s overlay run: %v", eng.Name(), err)
				}
				mustSameResult(t, eng.Name()+" overlay", overlay, fresh)

				// Compaction folds the chain; the same query over the new base
				// (no deltas left) must still match byte-for-byte.
				if _, err := st.Compact(mr, ingest.CompactOptions{Prune: true}); err != nil {
					t.Fatalf("%s compact: %v", eng.Name(), err)
				}
				if st.Version() != pr.gMerged.Version() {
					t.Fatalf("%s: compaction changed the version", eng.Name())
				}
				post, err := engine.RunWithDeltas(eng, mr, q, st.Base(), st.DeltaFiles(), nil)
				if err != nil {
					t.Fatalf("%s post-compact run: %v", eng.Name(), err)
				}
				mustSameResult(t, eng.Name()+" post-compact", post, fresh)
			}
		})
	}
}

// TestIngestOverlaySelSJFirst covers the completion-mapper path (the one
// engine whose mappers dispatch on input file names): both its O-S and O-O
// plan shapes over base+delta must match a fresh merged reload.
func TestIngestOverlaySelSJFirst(t *testing.T) {
	queries := []string{
		`PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ex:xGO ?go .
  ?go ex:label ?gol . ?go ex:type ?t .
}`,
		`PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?a ex:label ?al . ?a ex:xGO ?x .
  ?b ex:synonym ?bs . ?b ex:xGO ?x .
}`,
	}
	g := enginetest.BioGraph()
	base, deltas := splitNTSources(t, g, 2)
	gMerged, err := rdf.ReadNTriples(strings.NewReader(base + strings.Join(deltas, "")))
	if err != nil {
		t.Fatal(err)
	}
	eng := relmr.NewSelSJFirst()
	for qi, src := range queries {
		q := enginetest.Compile(t, gMerged, src)
		oracle := newIngestMR()
		if err := engine.LoadGraph(oracle.DFS(), ingestInput, gMerged); err != nil {
			t.Fatal(err)
		}
		fresh, err := eng.Run(oracle, q, ingestInput)
		if err != nil {
			t.Fatalf("query %d fresh: %v", qi, err)
		}

		mr := newIngestMR()
		gBase, err := rdf.ReadNTriples(strings.NewReader(base))
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.LoadGraph(mr.DFS(), ingestInput, gBase); err != nil {
			t.Fatal(err)
		}
		st, err := ingest.Init(mr.DFS(), ingestInput, gBase)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range deltas {
			if _, err := st.Ingest(strings.NewReader(d)); err != nil {
				t.Fatal(err)
			}
		}
		overlay, err := engine.RunWithDeltas(eng, mr, q, ingestInput, st.DeltaFiles(), nil)
		if err != nil {
			t.Fatalf("query %d overlay: %v", qi, err)
		}
		mustSameResult(t, eng.Name(), overlay, fresh)
		if !query.RowsEqual(refengine.Evaluate(q, gMerged), overlay.Rows) {
			t.Errorf("query %d overlay diverges from reference", qi)
		}
	}
}

// TestIngestMakesLayoutStale is the fallback contract (satellite): a layout
// valid at the base version flips to hdfs.ErrLayoutStale after one ingest —
// exactly the ntga-run path, which then warns and runs the flat shuffle
// overlay with correct rows. Compaction with layout maintenance restores a
// validating layout.
func TestIngestMakesLayoutStale(t *testing.T) {
	g, err := bench.Dataset("bsbm", 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	base, deltas := splitNTSources(t, g, 1)
	mr := newIngestMR()
	gBase, err := rdf.ReadNTriples(strings.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.LoadGraph(mr.DFS(), ingestInput, gBase); err != nil {
		t.Fatal(err)
	}
	st, err := ingest.Init(mr.DFS(), ingestInput, gBase)
	if err != nil {
		t.Fatal(err)
	}
	const dir = "part/T"
	if _, err := plan.BuildPartitionLayout(mr, ingestInput, dir, layoutBuckets, st.Version()); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.LoadPartitioning(mr.DFS(), dir, st.Version()); err != nil {
		t.Fatalf("layout should validate before ingest: %v", err)
	}
	if _, err := st.Ingest(strings.NewReader(deltas[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.LoadPartitioning(mr.DFS(), dir, st.Version()); !errors.Is(err, hdfs.ErrLayoutStale) {
		t.Fatalf("layout after ingest: err = %v, want ErrLayoutStale", err)
	}

	// The ntga-run fallback: part stays nil, the flat overlay runs instead.
	cq, err := bench.Lookup("Q1a")
	if err != nil {
		t.Fatal(err)
	}
	gMerged, err := rdf.ReadNTriples(strings.NewReader(base + deltas[0]))
	if err != nil {
		t.Fatal(err)
	}
	q := enginetest.Compile(t, gMerged, cq.Src)
	res, err := engine.RunWithDeltas(ntgamr.NewLazy(), mr, q, ingestInput, st.DeltaFiles(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !query.RowsEqual(refengine.Evaluate(q, gMerged), res.Rows) {
		t.Error("fallback overlay run diverges from reference")
	}
	if res.Workflow.TotalMapOutputBytes() == 0 {
		t.Error("fallback run moved no shuffle bytes; it did not take the shuffle path")
	}

	// Compacting with layout maintenance re-validates the layout and the
	// map-only path works again at the current version.
	if _, err := st.Compact(mr, ingest.CompactOptions{LayoutDir: dir}); err != nil {
		t.Fatal(err)
	}
	part, err := plan.LoadPartitioning(mr.DFS(), dir, st.Version())
	if err != nil {
		t.Fatalf("layout after compaction: %v", err)
	}
	res2, err := engine.RunWithDeltas(ntgamr.NewLazy(), mr, q, st.Base(), st.DeltaFiles(), part)
	if err != nil {
		t.Fatal(err)
	}
	if !query.RowsEqual(refengine.Evaluate(q, gMerged), res2.Rows) {
		t.Error("post-compaction map-only run diverges from reference")
	}
	if res2.Workflow.TotalMapOutputBytes() != 0 {
		t.Errorf("post-compaction partitioned run shuffled %d bytes, want 0",
			res2.Workflow.TotalMapOutputBytes())
	}
}
