// Chaos harness: every catalog query, on every engine family, executed on a
// cluster with the full fault plan armed — legacy pre-body attempt failures,
// mid-phase faults that interrupt attempts holding partial state, node
// deaths that destroy local spill disks, and speculative execution racing
// backup attempts against stragglers. The recovered runs must produce
// exactly the reference engine's rows and leave no attempt-scoped
// temporaries or spill bytes behind.
package integration

import (
	"testing"

	"ntga/internal/bench"
	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
	"ntga/internal/ntgamr"
	"ntga/internal/query"
	"ntga/internal/refengine"
	"ntga/internal/relmr"
)

// chaosEngines is the evaluation line-up: both relational baselines plus the
// paper's NTGA variants (eager unnest, full lazy unnest, and the auto
// lazy/partial planner).
func chaosEngines() []engine.QueryEngine {
	return []engine.QueryEngine{
		relmr.NewPig(),
		relmr.NewHive(),
		ntgamr.NewEager(),
		ntgamr.New(ntgamr.LazyFull, 0),
		ntgamr.NewLazy(),
	}
}

// newChaosMR builds a cluster with every fault mechanism armed: a 20%
// pre-body attempt failure rate, mid-phase faults (0.2% per checkpoint —
// the big joins' reduce attempts pass 40+ checkpoints through their merge
// passes and group loops, so the per-attempt failure probability compounds
// well beyond the nominal rate) that
// can escalate into killing the attempt's data node, a bounded sort buffer
// so map output actually lives on the node-local spill disks a node kill
// destroys, and speculative execution enabled.
func newChaosMR(seed int64) *mapreduce.Engine {
	return mapreduce.NewEngine(
		hdfs.New(hdfs.Config{Nodes: 6, BlockSize: 1 << 14}),
		mapreduce.EngineConfig{
			SplitRecords:    256,
			DefaultReducers: 4,
			SortBufferBytes: 1 << 10,
			MergeFactor:     4,
			TaskMaxAttempts: 12,
			TaskFailureRate: 0.2,
			TaskFailureSeed: seed,
			Speculation:     true,
			Faults: &mapreduce.FaultPlan{
				Rate:            0.002,
				Seed:            seed,
				MidPhase:        true,
				NodeFailureRate: 0.5,
				MaxNodeKills:    1,
			},
		})
}

func TestChaosCatalogQueriesSurviveFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep")
	}
	var nodeKills, recoveries, retries, killedAttempts, specWins int64
	for qi, cq := range bench.Catalog() {
		g, err := bench.Dataset(cq.Dataset, 1, 42)
		if err != nil {
			t.Fatal(err)
		}
		q := enginetest.Compile(t, g, cq.Src)
		want := refengine.Evaluate(q, g)
		for ei, eng := range chaosEngines() {
			seed := int64(qi*31 + ei + 1)
			mr := newChaosMR(seed)
			const input = "data/triples"
			if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(mr, q, input)
			if err != nil {
				t.Fatalf("%s on %s (seed %d) failed under chaos: %v", eng.Name(), cq.ID, seed, err)
			}
			if !query.RowsEqual(want, res.Rows) {
				t.Fatalf("%s on %s (seed %d) differs from reference under chaos:\n%s",
					eng.Name(), cq.ID, seed, query.DiffRows(want, res.Rows, 6))
			}
			// Recovery must leave no trace: no attempt temporaries, no
			// intermediate files, no residual spill bytes.
			if files := mr.DFS().List(); len(files) != 1 || files[0] != input {
				t.Fatalf("%s on %s (seed %d) left files behind: %v", eng.Name(), cq.ID, seed, files)
			}
			if used := mr.DFS().SpillUsed(); used != 0 {
				t.Fatalf("%s on %s (seed %d) left %d spill bytes on local disks", eng.Name(), cq.ID, seed, used)
			}
			nodeKills += res.Workflow.TotalNodeKills()
			recoveries += res.Workflow.TotalMapOutputRecoveries()
			retries += res.Workflow.TotalTaskRetries()
			killedAttempts += res.Workflow.TotalKilledAttempts()
			specWins += res.Workflow.TotalSpeculativeWins()
		}
	}
	// The sweep as a whole must actually have exercised the machinery it
	// claims to test.
	if retries == 0 {
		t.Error("chaos sweep recorded no task retries")
	}
	if nodeKills == 0 {
		t.Error("chaos sweep killed no nodes")
	}
	if recoveries == 0 {
		t.Error("chaos sweep never recovered lost map output")
	}
	t.Logf("chaos sweep: retries=%d nodeKills=%d mapRecoveries=%d killedAttempts=%d speculativeWins=%d",
		retries, nodeKills, recoveries, killedAttempts, specWins)
}
