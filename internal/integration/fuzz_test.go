// Package integration fuzz-tests the full stack: randomly generated
// unbound-property queries over randomly generated graphs, executed by
// every distributed engine and compared row-for-row against the in-memory
// reference evaluator.
package integration

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/mapreduce"
	"ntga/internal/ntgamr"
	"ntga/internal/query"
	"ntga/internal/refengine"
	"ntga/internal/relmr"
	"ntga/internal/sparql"
)

// genQuery builds a random acyclic star-tree query the planners accept:
// each star has 1–2 bound patterns and up to 2 unbound slots; every star
// after the first connects to an earlier star through exactly one shared
// variable (subject-side or object-side). Filters are sprinkled on object
// variables.
func genQuery(rng *rand.Rand, nProps, nObjs int) string {
	nStars := 1 + rng.Intn(3)
	totalSlots := 0 // bound the worst-case expansion: at most 2 unbound slots per query
	fresh := 0
	newVar := func(prefix string) string {
		fresh++
		return fmt.Sprintf("%s%d", prefix, fresh)
	}
	type star struct {
		subj     string
		patterns []string
		objVars  []string
	}
	stars := make([]*star, nStars)
	var filters []string
	for si := 0; si < nStars; si++ {
		st := &star{subj: newVar("s")}
		if si > 0 {
			// Connect to an earlier star: either this star's subject is an
			// object var over there (O-S), or they share an object var (O-O).
			parent := stars[rng.Intn(si)]
			if rng.Intn(2) == 0 || len(parent.objVars) == 0 {
				// O-S: parent gains a pattern pointing at our subject.
				if rng.Intn(2) == 0 {
					parent.patterns = append(parent.patterns,
						fmt.Sprintf("?%s ex:p%d ?%s .", parent.subj, rng.Intn(nProps), st.subj))
				} else {
					parent.patterns = append(parent.patterns,
						fmt.Sprintf("?%s ?%s ?%s .", parent.subj, newVar("u"), st.subj))
				}
			} else {
				// O-O: reuse one of the parent's object vars as ours.
				shared := parent.objVars[rng.Intn(len(parent.objVars))]
				st.patterns = append(st.patterns,
					fmt.Sprintf("?%s ex:p%d ?%s .", st.subj, rng.Intn(nProps), shared))
			}
		}
		nBound := 1 + rng.Intn(2)
		for b := 0; b < nBound; b++ {
			ov := newVar("o")
			st.objVars = append(st.objVars, ov)
			st.patterns = append(st.patterns,
				fmt.Sprintf("?%s ex:p%d ?%s .", st.subj, rng.Intn(nProps), ov))
		}
		nSlots := rng.Intn(3)
		if totalSlots+nSlots > 2 {
			nSlots = 2 - totalSlots
		}
		totalSlots += nSlots
		for u := 0; u < nSlots; u++ {
			ov := newVar("x")
			st.patterns = append(st.patterns,
				fmt.Sprintf("?%s ?%s ?%s .", st.subj, newVar("u"), ov))
			switch rng.Intn(3) {
			case 0:
				filters = append(filters, fmt.Sprintf("FILTER(?%s != ex:o%d)", ov, rng.Intn(nObjs)))
			case 1:
				filters = append(filters, fmt.Sprintf(`FILTER(CONTAINS(?%s, "o%d"))`, ov, rng.Intn(10)))
			}
		}
		stars[si] = st
	}
	var sb strings.Builder
	sb.WriteString("PREFIX ex: <http://ex/>\nSELECT * WHERE {\n")
	for _, st := range stars {
		for _, p := range st.patterns {
			sb.WriteString("  " + p + "\n")
		}
	}
	for _, f := range filters {
		sb.WriteString("  " + f + "\n")
	}
	sb.WriteString("}")
	return sb.String()
}

func allEngines() []engine.QueryEngine {
	return []engine.QueryEngine{
		relmr.NewPig(),
		relmr.NewHive(),
		relmr.NewPigText(),
		relmr.NewHiveText(),
		ntgamr.NewEager(),
		ntgamr.New(ntgamr.LazyFull, 0),
		ntgamr.New(ntgamr.LazyPartial, 4),
		ntgamr.NewLazy(),
	}
}

// clusterVariants are the MR configurations every fuzzed query runs under:
// the roomy in-memory cluster and a spilling one whose 192-byte sort buffer
// is far below any map task's output, forcing the spill/external-merge path
// on every job.
var clusterVariants = []struct {
	name string
	mk   func() *mapreduce.Engine
}{
	{"mem", enginetest.NewMR},
	{"spill", func() *mapreduce.Engine { return enginetest.NewSpillMR(192) }},
}

func TestFuzzEnginesAgainstReference(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	const rounds = 50
	rng := rand.New(rand.NewSource(20150323)) // EDBT 2015 start date as seed
	for round := 0; round < rounds; round++ {
		nProps := 3 + rng.Intn(4)
		nObjs := 10 + rng.Intn(20)
		// Many subjects relative to triples keeps per-subject multiplicity
		// (and therefore the worst-case expansion) bounded.
		g := enginetest.RandomGraph(rng.Int63(), 120+rng.Intn(80), 30+rng.Intn(10), nProps, nObjs)
		src := genQuery(rng, nProps, nObjs)
		pq, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("round %d: generated unparsable query:\n%s\n%v", round, src, err)
		}
		q, err := query.Compile(pq, g.Dict)
		if err != nil {
			// The generator can produce shapes the planner rejects (e.g. an
			// O-O reuse creating a second connection). Those are fine to
			// skip — the compiler's job is to reject them crisply.
			continue
		}
		want := refengine.Evaluate(q, g)
		if len(want) > 20000 {
			continue // pathological cross product; not informative
		}
		for _, eng := range allEngines() {
			for _, variant := range clusterVariants {
				mr := variant.mk()
				if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
					t.Fatal(err)
				}
				res, err := eng.Run(mr, q, "in")
				if err != nil {
					t.Fatalf("round %d: %s (%s) failed on\n%s\n%v", round, eng.Name(), variant.name, src, err)
				}
				if !query.RowsEqual(want, res.Rows) {
					t.Fatalf("round %d: %s (%s) differs from reference on\n%s\n%s",
						round, eng.Name(), variant.name, src, query.DiffRows(want, res.Rows, 6))
				}
			}
		}

		// The COUNT(*) variant of the same query must agree with the
		// reference row count on a spilling cluster (counting takes the
		// engines' no-expansion path, a separate code shape worth fuzzing).
		countSrc := strings.Replace(src, "SELECT *", "SELECT (COUNT(*) AS ?cnt)", 1)
		cq, err := query.Compile(mustParse(t, countSrc), g.Dict)
		if err != nil {
			continue
		}
		for _, eng := range allEngines() {
			mr := enginetest.NewSpillMR(192)
			if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(mr, cq, "in")
			if err != nil {
				t.Fatalf("round %d: %s failed on count variant of\n%s\n%v", round, eng.Name(), src, err)
			}
			if res.Count != int64(len(want)) {
				t.Fatalf("round %d: %s counted %d, reference %d, on\n%s",
					round, eng.Name(), res.Count, len(want), countSrc)
			}
		}
	}
}

func mustParse(t *testing.T, src string) *sparql.Query {
	t.Helper()
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("unparsable query:\n%s\n%v", src, err)
	}
	return pq
}

func TestFuzzCountAgainstReference(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	const rounds = 20
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < rounds; round++ {
		nProps := 3 + rng.Intn(3)
		g := enginetest.RandomGraph(rng.Int63(), 150, 30, nProps, 20)
		src := genQuery(rng, nProps, 20)
		src = strings.Replace(src, "SELECT *", "SELECT (COUNT(*) AS ?cnt)", 1)
		pq, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		q, err := query.Compile(pq, g.Dict)
		if err != nil {
			continue
		}
		want := int64(len(refengine.Evaluate(q, g)))
		for _, eng := range allEngines() {
			mr := enginetest.NewMR()
			if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(mr, q, "in")
			if err != nil {
				t.Fatalf("round %d: %s failed on\n%s\n%v", round, eng.Name(), src, err)
			}
			if res.Count != want {
				t.Fatalf("round %d: %s counted %d, reference %d, on\n%s",
					round, eng.Name(), res.Count, want, src)
			}
		}
	}
}
