package ntgamr

import (
	"fmt"

	"ntga/internal/codec"
	"ntga/internal/core"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
	"ntga/internal/rdf"
)

const (
	tagLeft  byte = 0
	tagRight byte = 1
)

// joinMode selects how a triplegroup join cycle is keyed.
type joinMode int

const (
	// directMode keys the shuffle by the join value itself: TG_Join, and
	// TG_UnbJoin when a map-side full β-unnest pins the joining slot.
	directMode joinMode = iota
	// bucketedMode keys the shuffle by φ_m(join value): TG_OptUnbJoin. The
	// joining slot stays nested through the shuffle inside partial
	// triplegroups and is unnested per-bucket in the reduce (Algorithm 3).
	bucketedMode
)

// tgJoinMapper is the map side of a triplegroup join cycle.
type tgJoinMapper struct {
	q         *query.Query
	join      query.Join
	mode      joinMode
	phiM      int
	leftFile  string // "" when both sides come from the single input file
	rightFile string
	counters  *mapreduce.Counters
}

func (m *tgJoinMapper) Map(input string, record []byte, out mapreduce.Emitter) error {
	comps, err := core.DecodeJoined(record)
	if err != nil {
		return err
	}
	if m.leftFile == "" {
		// First join: both sides live in Job1's output; route by EC.
		if len(comps) != 1 {
			return fmt.Errorf("ntgamr: expected singleton record in grouping output, got %d components", len(comps))
		}
		switch comps[0].EC {
		case m.join.Left.Star:
			return m.emitSide(comps, m.join.Left, tagLeft, out)
		case m.join.Right.Star:
			return m.emitSide(comps, m.join.Right, tagRight, out)
		default:
			return nil // a later join's star
		}
	}
	switch input {
	case m.leftFile:
		return m.emitSide(comps, m.join.Left, tagLeft, out)
	case m.rightFile:
		// The grouping output holds every EC; this join wants one.
		if len(comps) != 1 || comps[0].EC != m.join.Right.Star {
			return nil
		}
		return m.emitSide(comps, m.join.Right, tagRight, out)
	default:
		return fmt.Errorf("ntgamr: join mapper got unexpected input %q", input)
	}
}

func (m *tgJoinMapper) key(v rdf.ID) []byte {
	if m.mode == bucketedMode {
		var e codec.Buffer
		e.PutUvarint(uint64(core.Phi(v, m.phiM)))
		return e.Bytes()
	}
	return codec.EncodeID(v)
}

func bucketKey(b int) []byte {
	var e codec.Buffer
	e.PutUvarint(uint64(b))
	return e.Bytes()
}

func (m *tgJoinMapper) emit(out mapreduce.Emitter, key []byte, tag byte, comps []core.AnnTG) error {
	val := append([]byte{tag}, core.EncodeJoined(comps)...)
	return out.Emit(key, val)
}

// emitSide produces the map output for one record on one side of the join,
// pinning or partially unnesting the join position as the strategy demands.
func (m *tgJoinMapper) emitSide(comps []core.AnnTG, pos query.Pos, tag byte, out mapreduce.Emitter) error {
	ci := -1
	for i, c := range comps {
		if c.EC == pos.Star {
			ci = i
			break
		}
	}
	if ci < 0 {
		return fmt.Errorf("ntgamr: record lacks component for star %d", pos.Star)
	}
	st := m.q.Stars[pos.Star]
	comp := comps[ci]

	replace := func(c core.AnnTG) []core.AnnTG {
		cp := append([]core.AnnTG(nil), comps...)
		cp[ci] = c
		return cp
	}

	switch pos.Role {
	case query.RoleSubject:
		return m.emit(out, m.key(comp.Subject), tag, comps)

	case query.RoleBoundObj:
		if comp.BoundSel[pos.Idx] != core.Nested {
			v, err := core.JoinValue(st, comp, pos)
			if err != nil {
				return err
			}
			return m.emit(out, m.key(v), tag, comps)
		}
		for _, pinned := range core.PinBound(st, comp, pos.Idx) {
			v := pinned.Triples[pinned.BoundSel[pos.Idx]].O
			if err := m.emit(out, m.key(v), tag, replace(pinned)); err != nil {
				return err
			}
		}
		return nil

	case query.RoleSlotObj:
		if comp.SlotSel[pos.Idx] != core.Nested {
			v, err := core.JoinValue(st, comp, pos)
			if err != nil {
				return err
			}
			return m.emit(out, m.key(v), tag, comps)
		}
		if m.mode == bucketedMode {
			// TG_OptUnbJoin: partial β-unnest, keyed by bucket.
			for _, pt := range core.PartialBetaUnnest(st, comp, pos.Idx, m.phiM) {
				m.counters.Inc(CounterPartialTGs, 1)
				if err := m.emit(out, bucketKey(pt.Bucket), tag, replace(pt.TG)); err != nil {
					return err
				}
			}
			return nil
		}
		// TG_UnbJoin: map-side full β-unnest of the joining slot.
		for _, u := range core.UnnestSlot(st, comp, pos.Idx) {
			m.counters.Inc(CounterMapUnnest, 1)
			v := u.Triples[u.SlotSel[pos.Idx]].O
			if err := m.emit(out, m.key(v), tag, replace(u)); err != nil {
				return err
			}
		}
		return nil

	default:
		return fmt.Errorf("ntgamr: unknown join role %v", pos.Role)
	}
}

// tgJoinReducer joins the two sides of a group.
type tgJoinReducer struct {
	q        *query.Query
	join     query.Join
	mode     joinMode
	phiM     int
	counters *mapreduce.Counters
}

// resolved is one joinable record with its concrete join value.
type resolved struct {
	value rdf.ID
	comps []core.AnnTG
}

// resolveSide turns a shuffled record into joinable (value, record) pairs,
// finishing any deferred β-unnest within the reduce bucket.
func (r *tgJoinReducer) resolveSide(comps []core.AnnTG, pos query.Pos, bucket int) ([]resolved, error) {
	ci := -1
	for i, c := range comps {
		if c.EC == pos.Star {
			ci = i
			break
		}
	}
	if ci < 0 {
		return nil, fmt.Errorf("ntgamr: record lacks component for star %d", pos.Star)
	}
	st := r.q.Stars[pos.Star]
	comp := comps[ci]
	if pos.Role == query.RoleSlotObj && comp.SlotSel[pos.Idx] == core.Nested {
		if r.mode != bucketedMode {
			return nil, fmt.Errorf("ntgamr: nested slot reached a direct-mode reducer")
		}
		var out []resolved
		for _, u := range core.UnnestSlotInBucket(st, comp, pos.Idx, r.phiM, bucket) {
			r.counters.Inc(CounterReduceUnnest, 1)
			u = core.Compact(st, u)
			cp := append([]core.AnnTG(nil), comps...)
			cp[ci] = u
			out = append(out, resolved{value: u.Triples[u.SlotSel[pos.Idx]].O, comps: cp})
		}
		return out, nil
	}
	v, err := core.JoinValue(st, comp, pos)
	if err != nil {
		return nil, err
	}
	return []resolved{{value: v, comps: comps}}, nil
}

// Reduce streams the group. The side tag leads every value and the engine
// delivers values in sorted order, so every left (tag 0) arrives before the
// first right (tag 1): only the left side — indexed by join value — is
// buffered, and each right record joins and is emitted as it streams past.
func (r *tgJoinReducer) Reduce(key []byte, values mapreduce.ValueIter, out mapreduce.Collector) error {
	bucket := 0
	if r.mode == bucketedMode {
		b, err := codec.NewReader(key).Uvarint()
		if err != nil {
			return err
		}
		bucket = int(b)
	}
	leftsByValue := make(map[rdf.ID][]resolved)
	for {
		v, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if len(v) == 0 {
			return fmt.Errorf("ntgamr: empty join value")
		}
		comps, err := core.DecodeJoined(v[1:])
		if err != nil {
			return err
		}
		switch v[0] {
		case tagLeft:
			res, err := r.resolveSide(comps, r.join.Left, bucket)
			if err != nil {
				return err
			}
			for _, re := range res {
				leftsByValue[re.value] = append(leftsByValue[re.value], re)
			}
		case tagRight:
			res, err := r.resolveSide(comps, r.join.Right, bucket)
			if err != nil {
				return err
			}
			for _, re := range res {
				for _, l := range leftsByValue[re.value] {
					joined := make([]core.AnnTG, 0, len(l.comps)+len(re.comps))
					joined = append(joined, l.comps...)
					joined = append(joined, re.comps...)
					if err := out.Collect(core.EncodeJoined(joined)); err != nil {
						return err
					}
				}
			}
		default:
			return fmt.Errorf("ntgamr: unknown join tag %d", v[0])
		}
	}
}

// tgJoinJob builds one triplegroup join cycle. When leftFile equals
// rightFile (the first join), the job scans that file once and the mapper
// routes records by equivalence class.
func tgJoinJob(q *query.Query, name string, j query.Join, mode joinMode, phiM int,
	counters *mapreduce.Counters, leftFile, rightFile, output string) *mapreduce.Job {
	inputs := []string{leftFile, rightFile}
	mLeft := leftFile
	if leftFile == rightFile {
		inputs = []string{rightFile}
		mLeft = ""
	}
	return &mapreduce.Job{
		Name:   name,
		Inputs: inputs,
		Output: output,
		Mapper: &tgJoinMapper{q: q, join: j, mode: mode, phiM: phiM,
			leftFile: mLeft, rightFile: rightFile, counters: counters},
		StreamReducer: &tgJoinReducer{q: q, join: j, mode: mode, phiM: phiM, counters: counters},
	}
}
