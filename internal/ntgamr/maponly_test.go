package ntgamr

import (
	"testing"

	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/plan"
	"ntga/internal/query"
)

func TestMapOnlyPrefix(t *testing.T) {
	part, _ := plan.NewPartitioning(plan.PartitionKeySubject, 4, "part/T", "v")
	subj := query.Join{Right: query.Pos{Star: 1, Role: query.RoleSubject}}
	obj := query.Join{Right: query.Pos{Star: 2, Role: query.RoleBoundObj}}
	if got := MapOnlyPrefix(part, []query.Join{subj, subj}); got != 2 {
		t.Errorf("all-subject chain prefix = %d, want 2", got)
	}
	if got := MapOnlyPrefix(part, []query.Join{subj, obj, subj}); got != 1 {
		t.Errorf("broken chain prefix = %d, want 1", got)
	}
	if got := MapOnlyPrefix(part, []query.Join{obj}); got != 0 {
		t.Errorf("object-first chain prefix = %d, want 0", got)
	}
	if got := MapOnlyPrefix(nil, []query.Join{subj}); got != 0 {
		t.Errorf("nil partitioning prefix = %d, want 0", got)
	}
}

// TestPartitionedParity runs every test query under every strategy on the
// flat and the partitioned path and requires identical row multisets and
// counts — plus zero shuffle on the map-only cycles.
func TestPartitionedParity(t *testing.T) {
	g := enginetest.BioGraph()
	const buckets = 4
	for _, strat := range []Strategy{Eager, LazyFull, LazyPartial, LazyAuto} {
		eng := New(strat, 8)
		for _, tq := range testQueries {
			t.Run(strat.String()+"/"+tq.name, func(t *testing.T) {
				mr := enginetest.NewMR()
				const input = "data/triples"
				if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
					t.Fatal(err)
				}
				part, err := plan.BuildPartitionLayout(mr, input, "part/T", buckets, g.Version())
				if err != nil {
					t.Fatal(err)
				}
				q := enginetest.Compile(t, g, tq.src)
				flat, err := eng.Run(mr, q, input)
				if err != nil {
					t.Fatalf("flat run: %v", err)
				}
				q2 := enginetest.Compile(t, g, tq.src)
				pr, err := eng.RunPartitioned(mr, q2, input, part)
				if err != nil {
					t.Fatalf("partitioned run: %v", err)
				}
				if flat.IsCount != pr.IsCount || flat.Count != pr.Count {
					t.Errorf("count mismatch: flat %d, partitioned %d", flat.Count, pr.Count)
				}
				if !query.RowsEqual(flat.Rows, pr.Rows) {
					t.Errorf("rows differ:\n%s", query.DiffRows(flat.Rows, pr.Rows, 5))
				}
				// The grouping cycle never shuffles on the partitioned path,
				// and neither does any map-only join.
				prefix := MapOnlyPrefix(part, q2.Joins)
				for i, jm := range pr.Workflow.Jobs {
					if i == 0 || (i >= 1 && i-1 < prefix) {
						if !jm.MapOnly {
							t.Errorf("job %d (%s) not map-only", i, jm.Job)
						}
						if jm.MapOutputBytes != 0 {
							t.Errorf("job %d (%s) shuffled %d bytes", i, jm.Job, jm.MapOutputBytes)
						}
					}
				}
			})
		}
	}
}

// TestPartitionedFullyMapOnlyShuffleZero pins the headline property: a
// repeat-joined subject-bound query over the partitioned layout moves zero
// bytes through the shuffle (SELECT — COUNT adds a fold cycle).
func TestPartitionedFullyMapOnlyShuffleZero(t *testing.T) {
	g := enginetest.BioGraph()
	mr := enginetest.NewMR()
	const input = "data/triples"
	if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
		t.Fatal(err)
	}
	part, err := plan.BuildPartitionLayout(mr, input, "part/T", 4, g.Version())
	if err != nil {
		t.Fatal(err)
	}
	q := enginetest.Compile(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ex:xGO ?go .
  ?go ex:label ?gol . ?go ex:type ?t .
}`)
	eng := NewLazy()
	res, err := eng.RunPartitioned(mr, q, input, part)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Workflow.TotalMapOutputBytes(); got != 0 {
		t.Errorf("TotalMapOutputBytes = %d, want 0", got)
	}
	if len(res.Rows) == 0 {
		t.Error("query returned no rows")
	}
}

// TestPlanPartitionedShape checks the rewritten plan: map-only markers, the
// partitioning attribute, and the part-miss reason when the rewrite stops.
func TestPlanPartitionedShape(t *testing.T) {
	g := enginetest.BioGraph()
	part, err := plan.NewPartitioning(plan.PartitionKeySubject, 4, "part/T", "v")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewLazy()

	// Fully served: OS-join query.
	q := enginetest.Compile(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ex:xGO ?go .
  ?go ex:label ?gol . ?go ex:type ?t .
}`)
	var cl engine.Cleaner
	p, err := eng.PlanPartitioned(q, "data/triples", part, &cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range p.Nodes() {
		if !node.MapSide {
			t.Errorf("node %s not map-side", node.Name)
		}
		if node.Part == nil {
			t.Errorf("node %s lacks partitioning attribute", node.Name)
		}
	}
	if p.PartInput != part.Dir {
		t.Errorf("PartInput = %q, want %q", p.PartInput, part.Dir)
	}

	// OO join: the join cannot be served; the node says why.
	q2 := enginetest.Compile(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?a ex:label ?al . ?a ex:xGO ?x .
  ?b ex:synonym ?bs . ?b ex:xGO ?x .
}`)
	var cl2 engine.Cleaner
	p2, err := eng.PlanPartitioned(q2, "data/triples", part, &cl2, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := p2.Nodes()
	if !nodes[0].MapSide {
		t.Error("grouping node not map-side")
	}
	join := nodes[1]
	if join.MapSide {
		t.Error("unserved join marked map-side")
	}
	if join.PartReason == "" {
		t.Error("unserved join lacks a part-miss reason")
	}

	// Nil partitioning: identical to the flat plan.
	var cl3 engine.Cleaner
	p3, err := eng.PlanPartitioned(q2, "data/triples", nil, &cl3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var cl4 engine.Cleaner
	p4, err := eng.Plan(q2, "data/triples", &cl4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Summary() != p4.Summary() {
		t.Errorf("nil-partitioned plan differs from flat:\n%s\nvs\n%s", p3.Summary(), p4.Summary())
	}
}
