package ntgamr

import (
	"fmt"

	"ntga/internal/codec"
	"ntga/internal/core"
	"ntga/internal/core/hash64"
	"ntga/internal/engine"
	"ntga/internal/mapreduce"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
)

// This file is the no-shuffle execution path over a subject-partitioned
// layout (plan.Partitioning / hdfs.Layout): the grouping cycle and every
// join whose chain prefix keeps binding through star subjects run as
// map-only jobs over bucket-aligned whole-file tasks, so nothing crosses a
// shuffle. The flat path's byte-level semantics are reproduced exactly:
//
//   - bucket files are written by the loader's shuffle sorted by
//     (PutID(S), PutID(P)+PutID(O)) — the grouping cycle's own key/value
//     encoding — so a streaming scan sees each subject contiguously with its
//     (P,O) pairs in the flat reducer's sorted-value order;
//   - adjacent duplicate pairs are skipped, mirroring decodeSortedPairs;
//   - join i's left side is resolved (pinned / fully β-unnested) by the
//     producing job and routed to the bucket of its join value, so join i's
//     task b joins lefts and rights that both hash to b.
//
// Partial β-unnest (μ^β_φm) never appears on this path: it exists to shrink
// shuffled bytes, and here there are none — a nested joining slot is fully
// unnested instead, which yields the same rows.

// MapOnlyPrefix returns how many leading joins of the chain the partitioned
// layout can serve map-side: the unbroken prefix whose joins all bind the
// right star through its subject (the bucket key). The first shuffled join
// breaks bucket alignment for everything after it.
func MapOnlyPrefix(part *plan.Partitioning, joins []query.Join) int {
	n := 0
	for i := range joins {
		if !plan.PartitionServes(part, joins, i) {
			break
		}
		n++
	}
	return n
}

// partMissReason explains, for EXPLAIN, why the map-only rewrite stopped at
// this join.
func partMissReason(j query.Join) string {
	return fmt.Sprintf("join ?%s binds star %d through its %s, not its subject",
		j.Var, j.Right.Star, j.Right.Role)
}

// encodeResolved frames one routed left-side record: the concrete join value
// followed by the joined-components encoding.
func encodeResolved(value rdf.ID, comps []core.AnnTG) []byte {
	var b codec.Buffer
	b.PutID(value)
	return append(b.Bytes(), core.EncodeJoined(comps)...)
}

func decodeResolved(rec []byte) (rdf.ID, []core.AnnTG, error) {
	rd := codec.NewReader(rec)
	v, err := rd.ID()
	if err != nil {
		return 0, nil, err
	}
	comps, err := core.DecodeJoined(rec[len(rec)-rd.Remaining():])
	return v, comps, err
}

// resolveJoinSide turns one record into joinable (value, record) pairs for
// the given join position, map-side: bound positions pin, nested slots fully
// β-unnest (never partially — there is no reduce bucket to finish in).
// It is the direct-mode half of tgJoinMapper.emitSide.
func resolveJoinSide(q *query.Query, comps []core.AnnTG, pos query.Pos,
	counters *mapreduce.Counters) ([]resolved, error) {
	ci := -1
	for i, c := range comps {
		if c.EC == pos.Star {
			ci = i
			break
		}
	}
	if ci < 0 {
		return nil, fmt.Errorf("ntgamr: record lacks component for star %d", pos.Star)
	}
	st := q.Stars[pos.Star]
	comp := comps[ci]
	replace := func(c core.AnnTG) []core.AnnTG {
		cp := append([]core.AnnTG(nil), comps...)
		cp[ci] = c
		return cp
	}
	switch pos.Role {
	case query.RoleSubject:
		return []resolved{{value: comp.Subject, comps: comps}}, nil

	case query.RoleBoundObj:
		if comp.BoundSel[pos.Idx] != core.Nested {
			v, err := core.JoinValue(st, comp, pos)
			if err != nil {
				return nil, err
			}
			return []resolved{{value: v, comps: comps}}, nil
		}
		var out []resolved
		for _, pinned := range core.PinBound(st, comp, pos.Idx) {
			out = append(out, resolved{
				value: pinned.Triples[pinned.BoundSel[pos.Idx]].O,
				comps: replace(pinned),
			})
		}
		return out, nil

	case query.RoleSlotObj:
		if comp.SlotSel[pos.Idx] != core.Nested {
			v, err := core.JoinValue(st, comp, pos)
			if err != nil {
				return nil, err
			}
			return []resolved{{value: v, comps: comps}}, nil
		}
		var out []resolved
		for _, u := range core.UnnestSlot(st, comp, pos.Idx) {
			counters.Inc(CounterMapUnnest, 1)
			out = append(out, resolved{
				value: u.Triples[u.SlotSel[pos.Idx]].O,
				comps: replace(u),
			})
		}
		return out, nil

	default:
		return nil, fmt.Errorf("ntgamr: unknown join role %v", pos.Role)
	}
}

// jlRoute routes resolved left-side records of one upcoming map-only join to
// its bucket files.
type jlRoute struct {
	pos   query.Pos // the join's left position
	files []string  // bucket files, indexed by hash64.Bucket(join value)
}

func (r *jlRoute) emit(q *query.Query, comps []core.AnnTG, counters *mapreduce.Counters,
	nc mapreduce.NamedCollector) error {
	res, err := resolveJoinSide(q, comps, r.pos, counters)
	if err != nil {
		return err
	}
	for _, re := range res {
		b := hash64.Bucket(uint64(re.value), len(r.files))
		if err := nc.CollectTo(r.files[b], encodeResolved(re.value, re.comps)); err != nil {
			return err
		}
	}
	return nil
}

// groupTask is the map-only grouping operator for one bucket: a streaming
// TG_GroupByReduce + TG_UnbGrpFilter over the bucket file's
// subject-contiguous triples.
type groupTask struct {
	q         *query.Query
	eager     bool
	counters  *mapreduce.Counters
	grpBucket string   // this task's grouped bucket file ("" when unused)
	jl        *jlRoute // first map-only join's left routing (nil when unused)

	started  bool
	subject  rdf.ID
	pairs    []core.PO
	haveLast bool
	last     core.PO
}

func (g *groupTask) MapRecord(_ string, record []byte, out mapreduce.Collector) error {
	t, err := codec.DecodeTriple(record)
	if err != nil {
		return err
	}
	if !g.q.TripleRelevant(t) {
		return nil
	}
	if !g.started || t.S != g.subject {
		if err := g.flushGroup(out); err != nil {
			return err
		}
		g.started = true
		g.subject = t.S
		g.pairs = g.pairs[:0]
		g.haveLast = false
	}
	p := core.PO{P: t.P, O: t.O}
	// Adjacent duplicates collapse exactly as in decodeSortedPairs: the
	// loader's shuffle sorted equal triples next to each other.
	if g.haveLast && p == g.last {
		return nil
	}
	g.haveLast = true
	g.last = p
	g.pairs = append(g.pairs, p)
	return nil
}

func (g *groupTask) Flush(out mapreduce.Collector) error {
	return g.flushGroup(out)
}

func (g *groupTask) flushGroup(out mapreduce.Collector) error {
	if !g.started {
		return nil
	}
	pairs := make([]core.PO, len(g.pairs))
	copy(pairs, g.pairs)
	tg := core.NewTripleGroup(g.subject, pairs)
	g.counters.Inc(CounterGroups, 1)
	for _, a := range core.UnbGrpFilter(tg, g.q.Stars) {
		g.counters.Inc(CounterAnnTGs, 1)
		if g.eager {
			for _, p := range core.BetaUnnest(g.q.Stars[a.EC], a) {
				g.counters.Inc(CounterEagerUnnest, 1)
				if err := g.emitAnnTG(p, out); err != nil {
					return err
				}
			}
			continue
		}
		if err := g.emitAnnTG(a, out); err != nil {
			return err
		}
	}
	return nil
}

func (g *groupTask) emitAnnTG(a core.AnnTG, out mapreduce.Collector) error {
	comps := []core.AnnTG{a}
	rec := core.EncodeJoined(comps)
	if err := out.Collect(rec); err != nil {
		return err
	}
	if g.grpBucket == "" && g.jl == nil {
		return nil
	}
	nc, ok := out.(mapreduce.NamedCollector)
	if !ok {
		return fmt.Errorf("ntgamr: collector lacks MultipleOutputs support")
	}
	if g.grpBucket != "" {
		if err := nc.CollectTo(g.grpBucket, rec); err != nil {
			return err
		}
	}
	if g.jl != nil && a.EC == g.jl.pos.Star {
		return g.jl.emit(g.q, comps, g.counters, nc)
	}
	return nil
}

// groupTaskFactory builds the grouping operator per bucket task.
type groupTaskFactory struct {
	q        *query.Query
	eager    bool
	counters *mapreduce.Counters
	grpFiles []string // grouped bucket files, indexed by task (nil when unused)
	jl       *jlRoute // nil when the first join is not map-only
}

func (f *groupTaskFactory) NewTask(task int, _ [][]byte) (mapreduce.TaskMapper, error) {
	grp := ""
	if f.grpFiles != nil {
		if task >= len(f.grpFiles) {
			return nil, fmt.Errorf("ntgamr: group task %d beyond %d buckets", task, len(f.grpFiles))
		}
		grp = f.grpFiles[task]
	}
	return &groupTask{q: f.q, eager: f.eager, counters: f.counters, grpBucket: grp, jl: f.jl}, nil
}

// joinTask is the map-only join operator for one bucket: the side input
// holds every resolved left record whose join value hashes to this bucket,
// and the task streams the grouped bucket joining right-side records (whose
// subject is the join value — map-only joins always bind the right star
// through its subject, so right subjects co-hash with their lefts).
type joinTask struct {
	q        *query.Query
	join     query.Join
	counters *mapreduce.Counters
	lefts    map[rdf.ID][]resolved
	next     *jlRoute // the following map-only join's left routing (nil when last)
}

func (j *joinTask) MapRecord(_ string, record []byte, out mapreduce.Collector) error {
	comps, err := core.DecodeJoined(record)
	if err != nil {
		return err
	}
	if len(comps) != 1 || comps[0].EC != j.join.Right.Star {
		return nil // another star's group — a different join consumes it
	}
	value := comps[0].Subject
	lefts := j.lefts[value]
	if len(lefts) == 0 {
		return nil
	}
	for _, l := range lefts {
		joined := make([]core.AnnTG, 0, len(l.comps)+len(comps))
		joined = append(joined, l.comps...)
		joined = append(joined, comps...)
		if err := out.Collect(core.EncodeJoined(joined)); err != nil {
			return err
		}
		if j.next != nil {
			nc, ok := out.(mapreduce.NamedCollector)
			if !ok {
				return fmt.Errorf("ntgamr: collector lacks MultipleOutputs support")
			}
			if err := j.next.emit(j.q, joined, j.counters, nc); err != nil {
				return err
			}
		}
	}
	return nil
}

func (j *joinTask) Flush(mapreduce.Collector) error { return nil }

// joinTaskFactory builds the join operator per bucket task from its side
// input (the routed left records).
type joinTaskFactory struct {
	q        *query.Query
	join     query.Join
	counters *mapreduce.Counters
	next     *jlRoute
}

func (f *joinTaskFactory) NewTask(_ int, side [][]byte) (mapreduce.TaskMapper, error) {
	lefts := make(map[rdf.ID][]resolved, len(side))
	for _, rec := range side {
		v, comps, err := decodeResolved(rec)
		if err != nil {
			return nil, err
		}
		lefts[v] = append(lefts[v], resolved{value: v, comps: comps})
	}
	return &joinTask{q: f.q, join: f.join, counters: f.counters, lefts: lefts, next: f.next}, nil
}

// tempBuckets names (and tracks for cleanup) one intermediate bucket set.
func tempBuckets(cl *engine.Cleaner, base string, n int) []string {
	files := make([]string, n)
	for i := range files {
		files[i] = cl.Track(fmt.Sprintf("%s/bucket-%05d", base, i))
	}
	return files
}

// PlanPartitioned is Plan over a subject-partitioned layout: the grouping
// cycle always runs map-only over the bucket files, and the longest
// subject-bound prefix of the join chain runs map-only too (left sides
// pre-routed by join value). The first join the layout cannot serve — and
// everything after it — falls back to the flat shuffle cycles, with the
// reason recorded on the node for EXPLAIN. A nil (or mismatched)
// partitioning delegates to Plan exactly.
func (n *NTGA) PlanPartitioned(q *query.Query, input string, part *plan.Partitioning,
	cl *engine.Cleaner, counters *mapreduce.Counters) (*plan.Physical, error) {
	if !part.Matches(plan.PartitionKeySubject) {
		return n.Plan(q, input, cl, counters)
	}
	if err := plan.CheckBuckets(part.Buckets); err != nil {
		return nil, err
	}
	if len(q.Stars) == 0 {
		return nil, fmt.Errorf("ntgamr: query has no stars")
	}
	if counters == nil {
		counters = mapreduce.NewCounters()
	}
	prefix := MapOnlyPrefix(part, q.Joins)
	buckets := part.Buckets

	grouped := cl.Track(engine.TempName(n.name, "group"))
	groupUnnest := plan.UnnestNone
	if n.strategy == Eager {
		groupUnnest = plan.UnnestEager
	}
	var grpFiles []string
	var jl *jlRoute
	if prefix > 0 {
		grpFiles = tempBuckets(cl, engine.TempName(n.name, "group-b"), buckets)
		jl = &jlRoute{
			pos:   q.Joins[0].Left,
			files: tempBuckets(cl, engine.TempName(n.name, "jl0"), buckets),
		}
	}
	groupJob := &mapreduce.Job{
		Name:            "ntga-group",
		Inputs:          part.Files(),
		Output:          grouped,
		ExtraOutputs:    append(append([]string(nil), grpFiles...), jlFilesOf(jl)...),
		WholeFileSplits: true,
		MapOnlyFactory: &groupTaskFactory{
			q: q, eager: n.strategy == Eager, counters: counters,
			grpFiles: grpFiles, jl: jl,
		},
	}
	p := &plan.Physical{Engine: n.name, Input: input, PartInput: part.Dir, Final: grouped}
	p.Stages = append(p.Stages, plan.Stage{{
		Kind: plan.KindGroupFilter, Name: "ntga-group", Star: -1,
		Inputs: []string{part.Dir}, Output: grouped, Unnest: groupUnnest,
		MapSide: true, Part: part, Job: groupJob,
	}})

	acc := grouped
	for ji := range q.Joins {
		j := q.Joins[ji]
		out := cl.Track(engine.TempName(n.name, fmt.Sprintf("join%d", ji)))
		name := fmt.Sprintf("%s-join%d", n.name, ji)
		if ji < prefix {
			var next *jlRoute
			if ji+1 < prefix {
				next = &jlRoute{
					pos:   q.Joins[ji+1].Left,
					files: tempBuckets(cl, engine.TempName(n.name, fmt.Sprintf("jl%d", ji+1)), buckets),
				}
			}
			job := &mapreduce.Job{
				Name:            name,
				Inputs:          grpFiles,
				Output:          out,
				ExtraOutputs:    jlFilesOf(next),
				WholeFileSplits: true,
				TaskSideInputs:  jl.files,
				MapOnlyFactory:  &joinTaskFactory{q: q, join: j, counters: counters, next: next},
			}
			inputs := []string{grouped}
			if ji > 0 {
				inputs = []string{acc, grouped}
			}
			p.Stages = append(p.Stages, plan.Stage{{
				Kind: plan.KindTGJoin, Name: name, Star: -1,
				Inputs: inputs, Output: out, Join: &q.Joins[ji],
				Unnest:  n.unnestFor(j, directMode),
				MapSide: true, Part: part, Job: job,
			}})
			jl = next
			acc = out
			continue
		}
		// Shuffle fallback: the flat join cycle, reading the accumulated
		// result and the (flat) grouping output.
		mode := n.joinModeFor(q, j)
		job := tgJoinJob(q, name, j, mode, n.phiM, counters, acc, grouped, out)
		node := &plan.Node{
			Kind: plan.KindTGJoin, Name: name, Star: -1,
			Inputs: append([]string(nil), job.Inputs...), Output: out,
			Join: &q.Joins[ji], Unnest: n.unnestFor(j, mode), Job: job,
		}
		if node.Unnest == plan.UnnestPartial {
			node.PhiM = n.phiM
		}
		if ji == prefix {
			node.PartReason = partMissReason(j)
		}
		p.Stages = append(p.Stages, plan.Stage{node})
		acc = out
	}
	p.Final = acc
	if q.IsCount() {
		cntFile := cl.Track(engine.TempName(n.name, "count"))
		p.Stages = append(p.Stages, plan.Stage{{
			Kind: plan.KindCountFold, Name: "ntga-count", Star: -1,
			Inputs: []string{acc}, Output: cntFile,
			Job: countFoldJob(q, acc, cntFile),
		}})
		p.Final = cntFile
	}
	return p, nil
}

func jlFilesOf(r *jlRoute) []string {
	if r == nil {
		return nil
	}
	return r.files
}

// RunPartitioned is Run over a partitioned layout; a nil partitioning runs
// the flat path. Result rows are the same set as the flat run's (the map-only
// path emits them in bucket order rather than shuffle order).
func (n *NTGA) RunPartitioned(mr *mapreduce.Engine, q *query.Query, input string,
	part *plan.Partitioning) (*engine.Result, error) {
	var cl engine.Cleaner
	counters := mapreduce.NewCounters()
	p, err := n.PlanPartitioned(q, input, part, &cl, counters)
	if err != nil {
		cl.Clean(mr)
		return &engine.Result{Engine: n.name}, err
	}
	return n.executePlan(mr, q, p, &cl, counters)
}

// executePlan runs a bound NTGA plan: COUNT(*) queries fold the uvarint
// partial counts of the count cycle, everything else decodes triplegroup
// rows.
func (n *NTGA) executePlan(mr *mapreduce.Engine, q *query.Query, p *plan.Physical,
	cl *engine.Cleaner, counters *mapreduce.Counters) (*engine.Result, error) {
	if q.IsCount() {
		var count int64
		res, err := engine.ExecutePlan(mr, n.name, p, cl, counters,
			func(record []byte) ([]query.Row, error) {
				c, err := codec.NewReader(record).Uvarint()
				if err != nil {
					return nil, err
				}
				count += int64(c)
				return nil, nil
			})
		res.IsCount = true
		res.Count = count
		return res, err
	}
	return engine.ExecutePlan(mr, n.name, p, cl, counters, DecodeRows(q))
}
