package ntgamr

import (
	"bytes"
	"fmt"
	"io"

	"ntga/internal/codec"
	"ntga/internal/core"
	"ntga/internal/engine"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
)

// Multi-query scan sharing. NTGA's grouping operator is query-agnostic up
// to the relevance filter, so a batch of queries over the same triple
// relation can share one grouping cycle: the map side scans the input once
// (emitting triples relevant to any query in the batch), and the reduce
// side applies every query's β group-filter to each subject triplegroup,
// routing the resulting AnnTGs to one output file per query (Hadoop's
// MultipleOutputs). Subsequent join cycles are per-query but independent,
// so the workflow runs them concurrently — stage k holds the k-th join of
// every query that has one.
//
// This extends the NTGA scan-sharing idea the paper builds on (its
// reference [18]) across queries: for a batch of n queries the triple
// relation is scanned once instead of n times, and each query's join
// cycles read only that query's triplegroups.

// BatchResult is the outcome of a shared-scan batch execution.
type BatchResult struct {
	// Results holds one result per input query, in order. Rows (or Count)
	// are populated per query; the workflow metrics of the shared run live
	// in Workflow, not in the per-query results.
	Results []*engine.Result
	// Workflow carries the whole batch's cost profile: one grouping cycle
	// plus every query's join cycles.
	Workflow mapreduce.WorkflowMetrics
	// PeakDFSUsed is the batch's disk high-water mark.
	PeakDFSUsed int64
}

// batchGroupMapper emits triples relevant to any query in the batch.
type batchGroupMapper struct {
	qs []*query.Query
}

func (m *batchGroupMapper) Map(_ string, record []byte, out mapreduce.Emitter) error {
	t, err := codec.DecodeTriple(record)
	if err != nil {
		return err
	}
	for _, q := range m.qs {
		if q.TripleRelevant(t) {
			var val codec.Buffer
			val.PutID(t.P)
			val.PutID(t.O)
			return out.Emit(codec.EncodeID(t.S), val.Bytes())
		}
	}
	return nil
}

// batchGroupReducer applies every query's TG_UnbGrpFilter to the subject
// group, routing each query's AnnTGs to its own output file.
type batchGroupReducer struct {
	qs       []*query.Query
	outputs  []string // outputs[0] is the job's main output
	eager    bool
	counters *mapreduce.Counters
}

func (r *batchGroupReducer) Reduce(key []byte, values mapreduce.ValueIter, out mapreduce.Collector) error {
	subject, err := codec.DecodeID(key)
	if err != nil {
		return err
	}
	pairs, err := decodeSortedPairs(values)
	if err != nil {
		return err
	}
	tg := core.NewTripleGroup(subject, pairs)
	r.counters.Inc(CounterGroups, 1)
	emit := func(qid int, rec []byte) error {
		if qid == 0 {
			return out.Collect(rec)
		}
		nc, ok := out.(mapreduce.NamedCollector)
		if !ok {
			return fmt.Errorf("ntgamr: collector lacks MultipleOutputs support")
		}
		return nc.CollectTo(r.outputs[qid], rec)
	}
	for qid, q := range r.qs {
		for _, a := range core.UnbGrpFilter(tg, q.Stars) {
			r.counters.Inc(CounterAnnTGs, 1)
			if r.eager {
				for _, p := range core.BetaUnnest(q.Stars[a.EC], a) {
					r.counters.Inc(CounterEagerUnnest, 1)
					if err := emit(qid, core.EncodeJoined([]core.AnnTG{p})); err != nil {
						return err
					}
				}
				continue
			}
			if err := emit(qid, core.EncodeJoined([]core.AnnTG{a})); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunBatch executes a batch of compiled queries with one shared grouping
// cycle. Queries must be compiled against the same dictionary/input.
// COUNT(*) queries are answered from the implicit representation as in Run.
func (n *NTGA) RunBatch(mr *mapreduce.Engine, qs []*query.Query, input string) (*BatchResult, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("ntgamr: empty batch")
	}
	var cl engine.Cleaner
	defer cl.Clean(mr)
	counters := mapreduce.NewCounters()
	dfs := mr.DFS()
	dfs.ResetPeak()

	grouped := make([]string, len(qs))
	for qi := range qs {
		grouped[qi] = cl.Track(engine.TempName(n.name, fmt.Sprintf("batch-group-q%d", qi)))
	}
	groupJob := &mapreduce.Job{
		Name:         "ntga-batch-group",
		Inputs:       []string{input},
		Output:       grouped[0],
		ExtraOutputs: grouped[1:],
		Mapper:       &batchGroupMapper{qs: qs},
		StreamReducer: &batchGroupReducer{qs: qs, outputs: grouped,
			eager: n.strategy == Eager, counters: counters},
	}
	stages := []mapreduce.Stage{{groupJob}}

	// Per-query join chains; stage k+1 holds join k of every query.
	maxJoins := 0
	for _, q := range qs {
		if len(q.Joins) > maxJoins {
			maxJoins = len(q.Joins)
		}
	}
	accs := make([]string, len(qs))
	copy(accs, grouped)
	for ji := 0; ji < maxJoins; ji++ {
		var stage mapreduce.Stage
		for qi, q := range qs {
			if ji >= len(q.Joins) {
				continue
			}
			out := cl.Track(engine.TempName(n.name, fmt.Sprintf("batch-q%d-join%d", qi, ji)))
			j := q.Joins[ji]
			mode := n.joinModeFor(q, j)
			stage = append(stage, tgJoinJob(q, fmt.Sprintf("%s-batch-q%d-join%d", n.name, qi, ji),
				j, mode, n.phiM, counters, accs[qi], grouped[qi], out))
			accs[qi] = out
		}
		stages = append(stages, stage)
	}

	wf, err := mr.RunWorkflow(stages)
	res := &BatchResult{Workflow: wf, PeakDFSUsed: dfs.PeakUsed()}
	if err != nil {
		return res, err
	}

	for qi, q := range qs {
		r := &engine.Result{Engine: n.name, Counters: counters.Snapshot(), IsCount: q.IsCount()}
		rd, err := dfs.Open(accs[qi])
		if err != nil {
			return res, err
		}
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return res, err
			}
			r.OutputRecords++
			r.OutputBytes += int64(len(rec))
			comps, err := core.DecodeJoined(rec)
			if err != nil {
				return res, err
			}
			if q.IsCount() {
				r.Count += core.CountJoined(q, comps)
				continue
			}
			rows, err := core.ExpandJoined(q, comps)
			if err != nil {
				return res, err
			}
			r.Rows = append(r.Rows, rows...)
		}
		res.Results = append(res.Results, r)
	}
	return res, nil
}

// decodeSortedPairs streams, decodes, and de-duplicates the sorted (P,O)
// values of a grouping reduce call. Because the engine delivers values in
// sorted order, duplicates are adjacent and only the decoded pairs — not the
// raw value slices — are ever held in memory.
func decodeSortedPairs(values mapreduce.ValueIter) ([]core.PO, error) {
	var pairs []core.PO
	var prev []byte
	for {
		v, ok, err := values.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return pairs, nil
		}
		if prev != nil && bytes.Equal(v, prev) {
			continue
		}
		prev = v
		rd := codec.NewReader(v)
		p, err := rd.ID()
		if err != nil {
			return nil, err
		}
		o, err := rd.ID()
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, core.PO{P: p, O: o})
	}
}
