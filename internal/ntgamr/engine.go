package ntgamr

import (
	"fmt"

	"ntga/internal/codec"
	"ntga/internal/core"
	"ntga/internal/engine"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
)

// Strategy selects when intermediate triplegroups are β-unnested.
type Strategy int

// The evaluation strategies of §4.
const (
	// Eager β-unnests during the star-join computation (Job1 reduce) —
	// the paper's EagerUnnest baseline.
	Eager Strategy = iota
	// LazyFull delays β-unnest to the map phase of the join cycle that
	// needs the unbound pattern's object (TG_UnbJoin).
	LazyFull
	// LazyPartial always uses the partial β-unnest operator μ^β_φm
	// (TG_OptUnbJoin) for joins on an unbound pattern's object.
	LazyPartial
	// LazyAuto is the paper's final LazyUnnest policy: lazy full β-unnest
	// for unbound-property patterns with partially-bound objects, lazy
	// partial β-unnest for those with unbound objects.
	LazyAuto
)

func (s Strategy) String() string {
	switch s {
	case Eager:
		return "Eager"
	case LazyFull:
		return "LazyFull"
	case LazyPartial:
		return "LazyPartial"
	case LazyAuto:
		return "LazyAuto"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DefaultPhiM is the partition range the paper's experiments settle on
// (LazyUnnest(φ1K)).
const DefaultPhiM = 1024

// NTGA is the TripleGroup-algebra query engine.
type NTGA struct {
	strategy Strategy
	phiM     int
	name     string
}

// New returns an NTGA engine with the given strategy. phiM <= 0 selects
// DefaultPhiM.
func New(strategy Strategy, phiM int) *NTGA {
	if phiM <= 0 {
		phiM = DefaultPhiM
	}
	name := "NTGA-" + strategy.String()
	if strategy == LazyAuto {
		name = "NTGA-Lazy" // the paper's "LazyUnnest"
	}
	return &NTGA{strategy: strategy, phiM: phiM, name: name}
}

// NewEager returns the EagerUnnest engine.
func NewEager() *NTGA { return New(Eager, 0) }

// NewLazy returns the paper's LazyUnnest engine (auto policy, φ1K).
func NewLazy() *NTGA { return New(LazyAuto, 0) }

// Name implements engine.QueryEngine.
func (n *NTGA) Name() string { return n.name }

// Strategy returns the engine's unnesting strategy.
func (n *NTGA) Strategy() Strategy { return n.strategy }

// joinModeFor decides per join whether the cycle runs TG_OptUnbJoin
// (bucketed) or a direct-keyed join.
func (n *NTGA) joinModeFor(q *query.Query, j query.Join) joinMode {
	if n.strategy == Eager || n.strategy == LazyFull {
		return directMode
	}
	slotSide := func(pos query.Pos) (sel bool, isSlot bool) {
		if pos.Role != query.RoleSlotObj {
			return false, false
		}
		return q.Stars[pos.Star].Slots[pos.Idx].Obj.Selective(), true
	}
	lSel, lSlot := slotSide(j.Left)
	rSel, rSlot := slotSide(j.Right)
	if !lSlot && !rSlot {
		return directMode
	}
	if n.strategy == LazyPartial {
		return bucketedMode
	}
	// LazyAuto: partial β-unnest only pays off when the joining slot's
	// object is unbound (non-selective); partially-bound objects produce
	// few matches and a full unnest suffices (§5, Figure 11).
	if (lSlot && !lSel) || (rSlot && !rSel) {
		return bucketedMode
	}
	return directMode
}

// Plan builds the workflow: one grouping cycle computing every star
// subpattern, then one triplegroup-join cycle per inter-star join.
func (n *NTGA) Plan(q *query.Query, input string, cl *engine.Cleaner,
	counters *mapreduce.Counters) ([]mapreduce.Stage, string, error) {
	if len(q.Stars) == 0 {
		return nil, "", fmt.Errorf("ntgamr: query has no stars")
	}
	grouped := cl.Track(engine.TempName(n.name, "group"))
	stages := []mapreduce.Stage{{job1(q, n.strategy == Eager, counters, input, grouped)}}
	acc := grouped
	for ji, j := range q.Joins {
		out := cl.Track(engine.TempName(n.name, fmt.Sprintf("join%d", ji)))
		mode := n.joinModeFor(q, j)
		stages = append(stages, mapreduce.Stage{
			tgJoinJob(q, fmt.Sprintf("%s-join%d", n.name, ji), j, mode, n.phiM,
				counters, acc, grouped, out),
		})
		acc = out
	}
	return stages, acc, nil
}

// DecodeRows converts one final triplegroup record into binding rows by
// expanding its (possibly still nested) components.
func DecodeRows(q *query.Query) engine.DecodeFunc {
	return func(record []byte) ([]query.Row, error) {
		comps, err := core.DecodeJoined(record)
		if err != nil {
			return nil, err
		}
		return core.ExpandJoined(q, comps)
	}
}

// Run implements engine.QueryEngine.
func (n *NTGA) Run(mr *mapreduce.Engine, q *query.Query, input string) (*engine.Result, error) {
	var cl engine.Cleaner
	counters := mapreduce.NewCounters()
	stages, final, err := n.Plan(q, input, &cl, counters)
	if err != nil {
		return &engine.Result{Engine: n.name}, err
	}
	if q.IsCount() {
		// Aggregation pushdown over the implicit representation: an extra
		// count-fold cycle sums the expansion counts of the (still nested)
		// triplegroups — no β-unnest happens at all for non-joining slots,
		// and the sum Combiner folds partial counts at spill time.
		cntFile := cl.Track(engine.TempName(n.name, "count"))
		stages = append(stages, mapreduce.Stage{countFoldJob(q, final, cntFile)})
		var count int64
		res, err := engine.Execute(mr, n.name, stages, cntFile, &cl, counters,
			func(record []byte) ([]query.Row, error) {
				c, err := codec.NewReader(record).Uvarint()
				if err != nil {
					return nil, err
				}
				count += int64(c)
				return nil, nil
			})
		res.IsCount = true
		res.Count = count
		return res, err
	}
	return engine.Execute(mr, n.name, stages, final, &cl, counters, DecodeRows(q))
}
