package ntgamr

import (
	"fmt"

	"ntga/internal/core"
	"ntga/internal/engine"
	"ntga/internal/mapreduce"
	"ntga/internal/plan"
	"ntga/internal/query"
)

// Strategy selects when intermediate triplegroups are β-unnested.
type Strategy int

// The evaluation strategies of §4.
const (
	// Eager β-unnests during the star-join computation (Job1 reduce) —
	// the paper's EagerUnnest baseline.
	Eager Strategy = iota
	// LazyFull delays β-unnest to the map phase of the join cycle that
	// needs the unbound pattern's object (TG_UnbJoin).
	LazyFull
	// LazyPartial always uses the partial β-unnest operator μ^β_φm
	// (TG_OptUnbJoin) for joins on an unbound pattern's object.
	LazyPartial
	// LazyAuto is the paper's final LazyUnnest policy: lazy full β-unnest
	// for unbound-property patterns with partially-bound objects, lazy
	// partial β-unnest for those with unbound objects.
	LazyAuto
)

func (s Strategy) String() string {
	switch s {
	case Eager:
		return "Eager"
	case LazyFull:
		return "LazyFull"
	case LazyPartial:
		return "LazyPartial"
	case LazyAuto:
		return "LazyAuto"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DefaultPhiM is the partition range the paper's experiments settle on
// (LazyUnnest(φ1K)); it aliases the planner's canonical constant.
const DefaultPhiM = plan.DefaultPhiM

// NTGA is the TripleGroup-algebra query engine.
type NTGA struct {
	strategy Strategy
	phiM     int
	name     string
}

// New returns an NTGA engine with the given strategy. phiM <= 0 selects
// DefaultPhiM.
func New(strategy Strategy, phiM int) *NTGA {
	if phiM <= 0 {
		phiM = DefaultPhiM
	}
	name := "NTGA-" + strategy.String()
	if strategy == LazyAuto {
		name = "NTGA-Lazy" // the paper's "LazyUnnest"
	}
	return &NTGA{strategy: strategy, phiM: phiM, name: name}
}

// NewEager returns the EagerUnnest engine.
func NewEager() *NTGA { return New(Eager, 0) }

// NewLazy returns the paper's LazyUnnest engine (auto policy, φ1K).
func NewLazy() *NTGA { return New(LazyAuto, 0) }

// Name implements engine.QueryEngine.
func (n *NTGA) Name() string { return n.name }

// Strategy returns the engine's unnesting strategy.
func (n *NTGA) Strategy() Strategy { return n.strategy }

// joinModeFor decides per join whether the cycle runs TG_OptUnbJoin
// (bucketed) or a direct-keyed join.
func (n *NTGA) joinModeFor(q *query.Query, j query.Join) joinMode {
	if n.strategy == Eager || n.strategy == LazyFull {
		return directMode
	}
	slotSide := func(pos query.Pos) (sel bool, isSlot bool) {
		if pos.Role != query.RoleSlotObj {
			return false, false
		}
		return q.Stars[pos.Star].Slots[pos.Idx].Obj.Selective(), true
	}
	lSel, lSlot := slotSide(j.Left)
	rSel, rSlot := slotSide(j.Right)
	if !lSlot && !rSlot {
		return directMode
	}
	if n.strategy == LazyPartial {
		return bucketedMode
	}
	// LazyAuto: partial β-unnest only pays off when the joining slot's
	// object is unbound (non-selective); partially-bound objects produce
	// few matches and a full unnest suffices (§5, Figure 11).
	if (lSlot && !lSel) || (rSlot && !rSel) {
		return bucketedMode
	}
	return directMode
}

// unnestFor maps a join's evaluation mode to the plan-level UnnestMode: no
// unnesting for bound-position joins (or eager strategies, where the groups
// are already expanded), lazy full μ^β for direct-keyed slot joins, partial
// μ^β_φm for bucketed ones.
func (n *NTGA) unnestFor(j query.Join, mode joinMode) plan.UnnestMode {
	if n.strategy == Eager {
		return plan.UnnestNone
	}
	if j.Left.Role != query.RoleSlotObj && j.Right.Role != query.RoleSlotObj {
		return plan.UnnestNone
	}
	if mode == bucketedMode {
		return plan.UnnestPartial
	}
	return plan.UnnestLazy
}

// Plan implements engine.QueryEngine: one grouping cycle computing every
// star subpattern, one triplegroup-join cycle per inter-star join, and —
// for COUNT(*) queries — a final count-fold cycle over the implicit
// representation.
func (n *NTGA) Plan(q *query.Query, input string, cl *engine.Cleaner,
	counters *mapreduce.Counters) (*plan.Physical, error) {
	if len(q.Stars) == 0 {
		return nil, fmt.Errorf("ntgamr: query has no stars")
	}
	if counters == nil {
		counters = mapreduce.NewCounters()
	}
	grouped := cl.Track(engine.TempName(n.name, "group"))
	groupUnnest := plan.UnnestNone
	if n.strategy == Eager {
		groupUnnest = plan.UnnestEager
	}
	p := &plan.Physical{Engine: n.name, Input: input, Final: grouped}
	p.Stages = append(p.Stages, plan.Stage{{
		Kind: plan.KindGroupFilter, Name: "ntga-group", Star: -1,
		Inputs: []string{input}, Output: grouped, Unnest: groupUnnest,
		Job: job1(q, n.strategy == Eager, counters, input, grouped),
	}})
	acc := grouped
	for ji := range q.Joins {
		j := q.Joins[ji]
		out := cl.Track(engine.TempName(n.name, fmt.Sprintf("join%d", ji)))
		mode := n.joinModeFor(q, j)
		name := fmt.Sprintf("%s-join%d", n.name, ji)
		job := tgJoinJob(q, name, j, mode, n.phiM, counters, acc, grouped, out)
		node := &plan.Node{
			Kind: plan.KindTGJoin, Name: name, Star: -1,
			Inputs: append([]string(nil), job.Inputs...), Output: out,
			Join: &q.Joins[ji], Unnest: n.unnestFor(j, mode), Job: job,
		}
		if node.Unnest == plan.UnnestPartial {
			node.PhiM = n.phiM
		}
		p.Stages = append(p.Stages, plan.Stage{node})
		acc = out
	}
	p.Final = acc
	if q.IsCount() {
		cntFile := cl.Track(engine.TempName(n.name, "count"))
		p.Stages = append(p.Stages, plan.Stage{{
			Kind: plan.KindCountFold, Name: "ntga-count", Star: -1,
			Inputs: []string{acc}, Output: cntFile,
			Job: countFoldJob(q, acc, cntFile),
		}})
		p.Final = cntFile
	}
	return p, nil
}

// DecodeRows converts one final triplegroup record into binding rows by
// expanding its (possibly still nested) components.
func DecodeRows(q *query.Query) engine.DecodeFunc {
	return func(record []byte) ([]query.Row, error) {
		comps, err := core.DecodeJoined(record)
		if err != nil {
			return nil, err
		}
		return core.ExpandJoined(q, comps)
	}
}

// Run implements engine.QueryEngine. COUNT(*) queries use aggregation
// pushdown over the implicit representation: the plan's count-fold cycle
// sums the expansion counts of the (still nested) triplegroups — no β-unnest
// happens at all for non-joining slots, and the sum Combiner folds partial
// counts at spill time.
func (n *NTGA) Run(mr *mapreduce.Engine, q *query.Query, input string) (*engine.Result, error) {
	return n.RunPartitioned(mr, q, input, nil)
}

// RunDeltas implements engine.DeltaRunner: the flat plan with the ingest
// delta chain overlaid on every scan of the triple relation. The grouping
// mapper is input-name-agnostic, so the widened scan shuffles base and delta
// records through the same grouping — with outputs byte-identical to the
// compacted relation's, because the shuffle totally orders (key, value).
func (n *NTGA) RunDeltas(mr *mapreduce.Engine, q *query.Query, input string,
	deltas []string) (*engine.Result, error) {
	var cl engine.Cleaner
	counters := mapreduce.NewCounters()
	p, err := n.Plan(q, input, &cl, counters)
	if err != nil {
		cl.Clean(mr)
		return &engine.Result{Engine: n.name}, err
	}
	p.ApplyDeltaOverlay(deltas)
	return n.executePlan(mr, q, p, &cl, counters)
}
