package ntgamr

import (
	"fmt"
	"testing"

	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
	"ntga/internal/refengine"
	"ntga/internal/relmr"
)

// hdfsNew builds the default test DFS for fault-injection runs.
func hdfsNew() *hdfs.DFS {
	return hdfs.New(hdfs.Config{Nodes: 4, BlockSize: 1 << 16})
}

var testQueries = []struct {
	name string
	src  string
}{
	{"single bound star", `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?go . }`},
	{"single star with unbound", `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?go . ?g ?p ?o . }`},
	{"two stars OS join", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ex:xGO ?go .
  ?go ex:label ?gol . ?go ex:type ?t .
}`},
	{"B1: join on unbound object", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ?p ?x .
  ?x ex:type ?t . ?x ex:label ?xl .
}`},
	{"B2: unbound with partially bound object", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ?p ?x .
  ?x ex:type ?t .
  FILTER(?x != ex:go1)
}`},
	{"B3: double unbound in one star", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ?p ?x . ?g ?q ?y .
  ?x ex:type ?t .
  FILTER(?y != ex:go0)
}`},
	{"B4: non-joining unbound", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:xGO ?go . ?g ?p ?o .
  ?go ex:type ?t .
}`},
	{"OO join", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?a ex:label ?al . ?a ex:xGO ?x .
  ?b ex:synonym ?bs . ?b ex:xGO ?x .
}`},
	{"OO join on unbound objects both sides", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?a ex:label ?al . ?a ?p ?x .
  ?b ex:synonym ?bs . ?b ?q ?x .
}`},
	{"constant subject", `
PREFIX ex: <http://ex/>
SELECT ?p ?o WHERE { ex:gene2 ?p ?o . }`},
	{"constant subject joined to star", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ex:gene2 ?p ?x .
  ?x ex:label ?xl . ?x ex:type ?t .
}`},
	{"contains filter", `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ?p ?o . FILTER(CONTAINS(?o, "hexokinase")) }`},
	{"three star chain", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:xRef ?r . ?g ex:xGO ?go .
  ?go ex:type ?t .
  ?r ex:source ?src .
}`},
	{"three star chain via unbound", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ?p ?x .
  ?x ex:type ?t . ?x ex:namespace ?ns .
  ?g ex:xRef ?r .
  ?r ex:source ?src .
}`},
	{"empty result", `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:absentprop ?x . }`},
}

func allStrategies() []*NTGA {
	return []*NTGA{
		NewEager(),
		New(LazyFull, 0),
		New(LazyPartial, 8), // small φ_m to exercise bucket collisions
		NewLazy(),
	}
}

func TestNTGAMatchesReference(t *testing.T) {
	g := enginetest.BioGraph()
	for _, eng := range allStrategies() {
		for _, tc := range testQueries {
			t.Run(eng.Name()+"/"+tc.name, func(t *testing.T) {
				enginetest.RunAndCompare(t, eng, g, tc.src)
			})
		}
	}
}

func TestNTGAOnRandomGraphs(t *testing.T) {
	srcs := []string{
		`PREFIX ex: <http://ex/>
SELECT * WHERE { ?a ex:p0 ?x . ?a ?p ?y . ?x ex:p0 ?z . }`,
		`PREFIX ex: <http://ex/>
SELECT * WHERE { ?a ex:p1 ?v . ?a ?p ?x . ?x ?q ?w . ?x ex:p0 ?z . }`,
	}
	for seed := int64(0); seed < 4; seed++ {
		g := enginetest.RandomGraph(seed, 250, 15, 5, 25)
		for _, eng := range allStrategies() {
			for si, src := range srcs {
				t.Run(fmt.Sprintf("%s/seed%d/q%d", eng.Name(), seed, si), func(t *testing.T) {
					enginetest.RunAndCompare(t, eng, g, src)
				})
			}
		}
	}
}

func TestNTGAPhiMSweepAgreement(t *testing.T) {
	// The partial β-unnest must be correct for any partition range.
	g := enginetest.BioGraph()
	src := testQueries[3].src // B1: join on unbound object
	for _, m := range []int{1, 2, 16, 1024} {
		t.Run(fmt.Sprintf("phi%d", m), func(t *testing.T) {
			enginetest.RunAndCompare(t, New(LazyPartial, m), g, src)
		})
	}
}

func TestNTGAWorkflowShape(t *testing.T) {
	g := enginetest.BioGraph()
	twoStar := testQueries[2].src
	res := enginetest.RunAndCompare(t, NewLazy(), g, twoStar)
	// All star-joins in one grouping cycle + one join cycle = 2 (vs 3 for
	// Hive/Pig) — the headline of Figure 3.
	if res.Workflow.Cycles != 2 {
		t.Errorf("NTGA cycles = %d, want 2", res.Workflow.Cycles)
	}
	var cl engine.Cleaner
	p, err := NewLazy().Plan(enginetest.Compile(t, g, twoStar), "in", &cl, mapreduce.NewCounters())
	if err != nil {
		t.Fatal(err)
	}
	if scans := p.ScanCount(); scans != 1 {
		t.Errorf("NTGA full scans = %d, want 1", scans)
	}
}

func TestLazyBeatsEagerOnNonJoiningUnbound(t *testing.T) {
	// B4-style: the unbound pattern does not participate in the join, so
	// the lazy engine keeps it nested to the end; eager materializes every
	// combination. Output records and bytes must show it.
	g := enginetest.BioGraph()
	src := testQueries[6].src // B4
	eager := enginetest.RunAndCompare(t, NewEager(), g, src)
	lazy := enginetest.RunAndCompare(t, NewLazy(), g, src)
	if lazy.OutputRecords >= eager.OutputRecords {
		t.Errorf("lazy output records (%d) not below eager (%d)",
			lazy.OutputRecords, eager.OutputRecords)
	}
	if lazy.OutputBytes >= eager.OutputBytes {
		t.Errorf("lazy output bytes (%d) not below eager (%d)",
			lazy.OutputBytes, eager.OutputBytes)
	}
	if lazy.Workflow.TotalReduceOutputBytes() >= eager.Workflow.TotalReduceOutputBytes() {
		t.Errorf("lazy HDFS writes (%d) not below eager (%d)",
			lazy.Workflow.TotalReduceOutputBytes(), eager.Workflow.TotalReduceOutputBytes())
	}
}

func TestLazySingleStarKeepsOneTGPerSubject(t *testing.T) {
	// A1-style single unbound star: lazy emits exactly one AnnTG per
	// matching subject; eager emits one per unbound candidate.
	g := enginetest.BioGraph()
	src := testQueries[1].src
	eager := enginetest.RunAndCompare(t, NewEager(), g, src)
	lazy := enginetest.RunAndCompare(t, NewLazy(), g, src)
	if lazy.Counters[CounterAnnTGs] != lazy.OutputRecords {
		t.Errorf("lazy output records = %d, AnnTGs = %d — should be equal",
			lazy.OutputRecords, lazy.Counters[CounterAnnTGs])
	}
	if eager.Counters[CounterEagerUnnest] != eager.OutputRecords {
		t.Errorf("eager output records = %d, unnested = %d — should be equal",
			eager.OutputRecords, eager.Counters[CounterEagerUnnest])
	}
	if lazy.OutputRecords >= eager.OutputRecords {
		t.Errorf("lazy records (%d) not below eager (%d)", lazy.OutputRecords, eager.OutputRecords)
	}
}

func TestPartialUnnestReducesShuffleVolume(t *testing.T) {
	// B1 with an unbound-object join: the partial strategy must ship less
	// map output in the join cycle than the full unnest when bucket
	// collisions exist (φ_m small relative to candidate spread).
	g := enginetest.BioGraph()
	// Densify: many unbound candidates per subject sharing few buckets.
	for i := 0; i < 40; i++ {
		g.Add(enginetest.Ex("gene0"), enginetest.Ex(fmt.Sprintf("attr%d", i)),
			enginetest.Ex(fmt.Sprintf("go%d", i%5)))
	}
	g.Dedup()
	src := testQueries[3].src
	full := enginetest.RunAndCompare(t, New(LazyFull, 0), g, src)
	partial := enginetest.RunAndCompare(t, New(LazyPartial, 2), g, src)
	joinShuffle := func(r *engine.Result) int64 {
		return r.Workflow.Jobs[len(r.Workflow.Jobs)-1].MapOutputBytes
	}
	if joinShuffle(partial) >= joinShuffle(full) {
		t.Errorf("partial shuffle (%d) not below full (%d)",
			joinShuffle(partial), joinShuffle(full))
	}
	if partial.Counters[CounterPartialTGs] == 0 {
		t.Error("partial strategy produced no partial TGs")
	}
	if partial.Counters[CounterReduceUnnest] == 0 {
		t.Error("partial strategy did no reduce-side unnesting")
	}
}

func TestAutoPolicyPicksModes(t *testing.T) {
	g := enginetest.BioGraph()
	lazy := NewLazy()
	// Unbound-object join → bucketed.
	q := enginetest.Compile(t, g, testQueries[3].src)
	if got := lazy.joinModeFor(q, q.Joins[0]); got != bucketedMode {
		t.Errorf("unbound-object join mode = %v, want bucketed", got)
	}
	// Partially-bound object join → direct (full unnest suffices, §5).
	q = enginetest.Compile(t, g, testQueries[4].src)
	if got := lazy.joinModeFor(q, q.Joins[0]); got != directMode {
		t.Errorf("partially-bound join mode = %v, want direct", got)
	}
	// Bound-object join → direct regardless.
	q = enginetest.Compile(t, g, testQueries[2].src)
	if got := lazy.joinModeFor(q, q.Joins[0]); got != directMode {
		t.Errorf("bound join mode = %v, want direct", got)
	}
	// Eager engine never buckets.
	q = enginetest.Compile(t, g, testQueries[3].src)
	if got := NewEager().joinModeFor(q, q.Joins[0]); got != directMode {
		t.Errorf("eager join mode = %v, want direct", got)
	}
}

func TestNTGADiskFullFailure(t *testing.T) {
	// Same failure injection as the relational engines: eager unnesting on
	// a dense subject overflows a tiny cluster, lazy survives (the paper's
	// B3/B4 contrast).
	g := enginetest.BioGraph()
	for i := 0; i < 60; i++ {
		g.Add(enginetest.Ex("gene0"), enginetest.Ex(fmt.Sprintf("attr%d", i)),
			enginetest.Ex(fmt.Sprintf("val%d", i)))
	}
	g.Add(enginetest.Ex("val0"), enginetest.Ex("type"), enginetest.Ex("Thing"))
	src := `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ?p ?x . ?g ?q ?y .
  ?x ex:type ?t .
}`
	run := func(eng engine.QueryEngine) error {
		mr := enginetest.NewTinyMR(24*1024, 2)
		if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
			t.Fatal(err)
		}
		q := enginetest.Compile(t, g, src)
		_, err := eng.Run(mr, q, "in")
		return err
	}
	if err := run(NewEager()); err == nil {
		t.Error("eager run on tiny cluster should fail with disk full")
	} else if !mapreduce.ErrIsDiskFull(err) {
		t.Errorf("eager err = %v, want disk-full", err)
	}
	if err := run(NewLazy()); err != nil {
		t.Errorf("lazy run should survive the tiny cluster, got %v", err)
	}
}

func TestStrategyString(t *testing.T) {
	if Eager.String() != "Eager" || LazyAuto.String() != "LazyAuto" {
		t.Error("Strategy.String mismatch")
	}
	if New(LazyAuto, 0).Name() != "NTGA-Lazy" {
		t.Errorf("auto name = %q", New(LazyAuto, 0).Name())
	}
}

func TestCountAggregationAcrossEngines(t *testing.T) {
	// The future-work extension: COUNT(*) answered by every engine — the
	// NTGA engines from the implicit representation, the relational ones
	// by materializing. All must agree with the reference engine.
	g := enginetest.BioGraph()
	srcs := []string{
		`PREFIX ex: <http://ex/>
SELECT (COUNT(*) AS ?n) WHERE { ?g ex:label ?l . ?g ex:xGO ?go . ?g ?p ?o . }`,
		`PREFIX ex: <http://ex/>
SELECT (COUNT(*) AS ?n) WHERE {
  ?g ex:label ?gl . ?g ?p ?x .
  ?x ex:type ?t . ?x ex:label ?xl .
}`,
	}
	for _, src := range srcs {
		mr := enginetest.NewMR()
		if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
			t.Fatal(err)
		}
		q := enginetest.Compile(t, g, src)
		want := int64(len(refengine.Evaluate(q, g)))
		if want == 0 {
			t.Fatalf("count query %q is vacuous", src)
		}
		engines := []engine.QueryEngine{
			NewEager(), New(LazyFull, 0), New(LazyPartial, 4), NewLazy(),
			relmr.NewPig(), relmr.NewHive(),
		}
		for _, eng := range engines {
			res, err := eng.Run(mr, q, "in")
			if err != nil {
				t.Fatalf("%s: %v", eng.Name(), err)
			}
			if !res.IsCount {
				t.Errorf("%s did not flag a count result", eng.Name())
			}
			if res.Count != want {
				t.Errorf("%s count = %d, want %d", eng.Name(), res.Count, want)
			}
			if res.Rows != nil {
				t.Errorf("%s materialized rows for a count query", eng.Name())
			}
		}
	}
}

func TestCountLazyAvoidsUnnest(t *testing.T) {
	// For a single-star count, lazy ships one nested AnnTG per subject and
	// never β-unnests; eager materializes every perfect TG just to count.
	g := enginetest.BioGraph()
	src := `PREFIX ex: <http://ex/>
SELECT (COUNT(*) AS ?n) WHERE { ?g ex:label ?l . ?g ex:xGO ?go . ?g ?p ?o . }`
	run := func(eng engine.QueryEngine) *engine.Result {
		mr := enginetest.NewMR()
		if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
			t.Fatal(err)
		}
		q := enginetest.Compile(t, g, src)
		res, err := eng.Run(mr, q, "in")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lazy := run(NewLazy())
	eager := run(NewEager())
	if lazy.Count != eager.Count {
		t.Fatalf("counts differ: %d vs %d", lazy.Count, eager.Count)
	}
	// Both plans end in the count-fold cycle (whose output is one record),
	// so the materialization gap shows up as that cycle's map input: the
	// records the query plan proper produced.
	materialized := func(res *engine.Result) int64 {
		jobs := res.Workflow.Jobs
		if len(jobs) == 0 || jobs[len(jobs)-1].Job != "ntga-count" {
			t.Fatalf("%s plan did not end in the count-fold cycle: %+v", res.Engine, jobs)
		}
		return jobs[len(jobs)-1].MapInputRecords
	}
	if materialized(lazy) >= materialized(eager) {
		t.Errorf("lazy materialized records (%d) not below eager (%d)",
			materialized(lazy), materialized(eager))
	}
	if lazy.Counters[CounterEagerUnnest] != 0 {
		t.Errorf("lazy engine unnested %d TGs for a count query",
			lazy.Counters[CounterEagerUnnest])
	}
}

func TestStrategyAccessor(t *testing.T) {
	if NewEager().Strategy() != Eager || NewLazy().Strategy() != LazyAuto {
		t.Error("Strategy accessor mismatch")
	}
}

func TestNTGAResilientToTaskFailures(t *testing.T) {
	// The full NTGA workflow under injected task failures: with a retry
	// budget the run completes and the rows match a failure-free run.
	g := enginetest.BioGraph()
	src := testQueries[3].src // B1
	clean := enginetest.RunAndCompare(t, NewLazy(), g, src)

	faulty := mapreduce.NewEngine(
		hdfsNew(),
		mapreduce.EngineConfig{SplitRecords: 16, DefaultReducers: 4,
			TaskMaxAttempts: 8, TaskFailureRate: 0.15, TaskFailureSeed: 3},
	)
	if err := engine.LoadGraph(faulty.DFS(), "in", g); err != nil {
		t.Fatal(err)
	}
	q := enginetest.Compile(t, g, src)
	res, err := NewLazy().Run(faulty, q, "in")
	if err != nil {
		t.Fatalf("faulty run: %v", err)
	}
	if int64(len(res.Rows)) != int64(len(clean.Rows)) {
		t.Errorf("rows under failures = %d, clean = %d", len(res.Rows), len(clean.Rows))
	}
	var retries int64
	for _, j := range res.Workflow.Jobs {
		retries += j.TaskRetries
	}
	if retries == 0 {
		t.Error("no task retries recorded at 15% failure rate")
	}
}
