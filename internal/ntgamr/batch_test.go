package ntgamr

import (
	"testing"

	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/query"
	"ntga/internal/refengine"
)

// batchSources is a mixed batch: single star, unbound single star, two-star
// join on unbound object, and a three-star chain.
var batchSources = []string{
	`PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?go . }`,
	`PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?go . ?g ?p ?o . }`,
	`PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ?p ?x .
  ?x ex:type ?t . ?x ex:label ?xl .
}`,
	`PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:xRef ?r . ?g ex:xGO ?go .
  ?go ex:type ?t .
  ?r ex:source ?src .
}`,
}

func TestRunBatchMatchesIndividualRuns(t *testing.T) {
	g := enginetest.BioGraph()
	mr := enginetest.NewMR()
	if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
		t.Fatal(err)
	}
	var qs []*query.Query
	for _, src := range batchSources {
		qs = append(qs, enginetest.Compile(t, g, src))
	}
	for _, eng := range []*NTGA{NewLazy(), NewEager(), New(LazyPartial, 4)} {
		res, err := eng.RunBatch(mr, qs, "in")
		if err != nil {
			t.Fatalf("%s RunBatch: %v", eng.Name(), err)
		}
		if len(res.Results) != len(qs) {
			t.Fatalf("%s: %d results for %d queries", eng.Name(), len(res.Results), len(qs))
		}
		for qi, q := range qs {
			want := refengine.Evaluate(q, g)
			got := res.Results[qi].Rows
			if !query.RowsEqual(want, got) {
				t.Errorf("%s query %d rows differ:\n%s", eng.Name(), qi,
					query.DiffRows(want, got, 6))
			}
		}
		// Everything cleaned up.
		if files := mr.DFS().List(); len(files) != 1 {
			t.Errorf("%s left files: %v", eng.Name(), files)
		}
	}
}

func TestRunBatchSharesTheScan(t *testing.T) {
	g := enginetest.BioGraph()
	var qs []*query.Query
	mr := enginetest.NewMR()
	if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
		t.Fatal(err)
	}
	for _, src := range batchSources {
		qs = append(qs, enginetest.Compile(t, g, src))
	}
	inputSize, err := mr.DFS().FileSize("in")
	if err != nil {
		t.Fatal(err)
	}
	lazy := NewLazy()
	batch, err := lazy.RunBatch(mr, qs, "in")
	if err != nil {
		t.Fatal(err)
	}
	// The triple relation is scanned exactly once: the grouping job's map
	// input equals the input size.
	if got := batch.Workflow.Jobs[0].MapInputBytes; got != inputSize {
		t.Errorf("batch grouping scanned %d bytes, want %d (one full scan)", got, inputSize)
	}
	// Individually, every query scans the input once → 4× the read volume
	// on the triple relation.
	var individualInputReads int64
	for _, q := range qs {
		res, err := lazy.Run(mr, q, "in")
		if err != nil {
			t.Fatal(err)
		}
		individualInputReads += res.Workflow.Jobs[0].MapInputBytes
	}
	if individualInputReads != int64(len(qs))*inputSize {
		t.Errorf("individual runs scanned %d bytes, want %d", individualInputReads,
			int64(len(qs))*inputSize)
	}
}

func TestRunBatchCountQueries(t *testing.T) {
	g := enginetest.BioGraph()
	mr := enginetest.NewMR()
	if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
		t.Fatal(err)
	}
	srcs := []string{
		`PREFIX ex: <http://ex/>
SELECT (COUNT(*) AS ?n) WHERE { ?g ex:label ?l . ?g ex:xGO ?go . ?g ?p ?o . }`,
		`PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:synonym ?s . }`,
	}
	var qs []*query.Query
	for _, src := range srcs {
		qs = append(qs, enginetest.Compile(t, g, src))
	}
	res, err := NewLazy().RunBatch(mr, qs, "in")
	if err != nil {
		t.Fatal(err)
	}
	wantCount := int64(len(refengine.Evaluate(qs[0], g)))
	if !res.Results[0].IsCount || res.Results[0].Count != wantCount {
		t.Errorf("batch count = %d (isCount=%v), want %d",
			res.Results[0].Count, res.Results[0].IsCount, wantCount)
	}
	wantRows := refengine.Evaluate(qs[1], g)
	if !query.RowsEqual(wantRows, res.Results[1].Rows) {
		t.Errorf("batch rows differ: %s", query.DiffRows(wantRows, res.Results[1].Rows, 5))
	}
}

func TestRunBatchEmpty(t *testing.T) {
	mr := enginetest.NewMR()
	if _, err := NewLazy().RunBatch(mr, nil, "in"); err == nil {
		t.Error("empty batch accepted")
	}
}
