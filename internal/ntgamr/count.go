package ntgamr

import (
	"ntga/internal/codec"
	"ntga/internal/core"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
)

// Aggregation pushdown over the implicit representation, as an MR cycle.
// COUNT(*) never needs the expanded bindings: each joined record's
// contribution is the product of its candidate-set sizes (core.CountJoined),
// computed without β-unnesting. The count-fold job maps every final record
// to that number under a single key and sums; the sum Combiner folds partial
// counts on the map side — at every sort-buffer spill and before the shuffle
// — so under a bounded sort buffer the count query spills O(1) bytes per
// map task instead of one count record per joined triplegroup.

// countKey is the single shuffle key of the count-fold job.
var countKey = []byte("n")

// countFoldMapper emits each record's expansion count as a uvarint.
type countFoldMapper struct {
	q *query.Query
}

func (m *countFoldMapper) Map(_ string, record []byte, out mapreduce.Emitter) error {
	comps, err := core.DecodeJoined(record)
	if err != nil {
		return err
	}
	var b codec.Buffer
	b.PutUvarint(uint64(core.CountJoined(m.q, comps)))
	return out.Emit(countKey, b.Bytes())
}

// sumCounts is the shared fold: decode and add a batch of uvarint counts.
func sumCounts(values [][]byte) (uint64, error) {
	var sum uint64
	for _, v := range values {
		c, err := codec.NewReader(v).Uvarint()
		if err != nil {
			return 0, err
		}
		sum += c
	}
	return sum, nil
}

// countCombiner folds partial counts at spill time (sum is associative and
// commutative, as the Combiner contract requires).
type countCombiner struct{}

func (countCombiner) Combine(_ []byte, values [][]byte) ([][]byte, error) {
	sum, err := sumCounts(values)
	if err != nil {
		return nil, err
	}
	var b codec.Buffer
	b.PutUvarint(sum)
	return [][]byte{b.Bytes()}, nil
}

// countSumReducer streams the (already combined) partial counts into the
// single total record.
type countSumReducer struct{}

func (countSumReducer) Reduce(_ []byte, values mapreduce.ValueIter, out mapreduce.Collector) error {
	var sum uint64
	for {
		v, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		c, err := codec.NewReader(v).Uvarint()
		if err != nil {
			return err
		}
		sum += c
	}
	var b codec.Buffer
	b.PutUvarint(sum)
	return out.Collect(b.Bytes())
}

// countFoldJob builds the aggregation cycle appended to a COUNT(*) plan.
func countFoldJob(q *query.Query, input, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:          "ntga-count",
		Inputs:        []string{input},
		Output:        output,
		Mapper:        &countFoldMapper{q: q},
		Combiner:      countCombiner{},
		StreamReducer: countSumReducer{},
		NumReducers:   1,
	}
}
