package ntgamr

import (
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
)

// DataStats summarizes the dataset statistics the strategy advisor
// consumes. Build one with CollectStats; in a deployed system these come
// from the warehouse's statistics catalog.
type DataStats struct {
	Triples              int64
	Subjects             int64
	AvgTriplesPerSubject float64
	// MaxPropertyMultiplicity is the largest number of triples one subject
	// has for a single property (the paper reports Uniprot multiplicities
	// up to 13K).
	MaxPropertyMultiplicity int
	DistinctObjects         int64
}

// CollectStats scans a graph once and derives the advisor's statistics.
func CollectStats(g *rdf.Graph) DataStats {
	var s DataStats
	s.Triples = int64(g.Len())
	subjects := make(map[rdf.ID]int64)
	objects := make(map[rdf.ID]struct{})
	for _, t := range g.Triples {
		subjects[t.S]++
		objects[t.O] = struct{}{}
	}
	s.Subjects = int64(len(subjects))
	if s.Subjects > 0 {
		s.AvgTriplesPerSubject = float64(s.Triples) / float64(s.Subjects)
	}
	for _, m := range g.PropertyMultiplicity() {
		if m > s.MaxPropertyMultiplicity {
			s.MaxPropertyMultiplicity = m
		}
	}
	s.DistinctObjects = int64(len(objects))
	return s
}

// Advice is the advisor's recommendation, with the reasoning spelled out.
type Advice struct {
	Strategy Strategy
	PhiM     int
	Reasons  []string
}

// Engine builds the recommended NTGA engine.
func (a Advice) Engine() *NTGA { return New(a.Strategy, a.PhiM) }

// Advise recommends an unnesting strategy and partition range for a query
// over a dataset. It is a thin wrapper around the planner's unified
// advisor (plan.AdviseUnnest — see its comment for the §4.1 heuristics),
// mapping the recommendation onto the engine's Strategy values. Unlike the
// old behaviour of silently defaulting a non-positive reducer count, bad
// inputs (reducers <= 0, a nil or star-less query) are explicit errors.
func Advise(stats DataStats, q *query.Query, reducers int) (Advice, error) {
	ua, err := plan.AdviseUnnest(stats.AvgTriplesPerSubject, stats.DistinctObjects, q, reducers)
	if err != nil {
		return Advice{}, err
	}
	a := Advice{PhiM: ua.PhiM, Reasons: ua.Reasons, Strategy: Eager}
	if ua.Lazy {
		a.Strategy = LazyAuto
	}
	return a, nil
}
