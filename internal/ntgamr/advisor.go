package ntgamr

import (
	"fmt"

	"ntga/internal/query"
	"ntga/internal/rdf"
)

// DataStats summarizes the dataset statistics the strategy advisor
// consumes. Build one with CollectStats; in a deployed system these come
// from the warehouse's statistics catalog.
type DataStats struct {
	Triples              int64
	Subjects             int64
	AvgTriplesPerSubject float64
	// MaxPropertyMultiplicity is the largest number of triples one subject
	// has for a single property (the paper reports Uniprot multiplicities
	// up to 13K).
	MaxPropertyMultiplicity int
	DistinctObjects         int64
}

// CollectStats scans a graph once and derives the advisor's statistics.
func CollectStats(g *rdf.Graph) DataStats {
	var s DataStats
	s.Triples = int64(g.Len())
	subjects := make(map[rdf.ID]int64)
	objects := make(map[rdf.ID]struct{})
	for _, t := range g.Triples {
		subjects[t.S]++
		objects[t.O] = struct{}{}
	}
	s.Subjects = int64(len(subjects))
	if s.Subjects > 0 {
		s.AvgTriplesPerSubject = float64(s.Triples) / float64(s.Subjects)
	}
	for _, m := range g.PropertyMultiplicity() {
		if m > s.MaxPropertyMultiplicity {
			s.MaxPropertyMultiplicity = m
		}
	}
	s.DistinctObjects = int64(len(objects))
	return s
}

// Advice is the advisor's recommendation, with the reasoning spelled out.
type Advice struct {
	Strategy Strategy
	PhiM     int
	Reasons  []string
}

// Engine builds the recommended NTGA engine.
func (a Advice) Engine() *NTGA { return New(a.Strategy, a.PhiM) }

// Advise recommends an unnesting strategy and partition range for a query
// over a dataset, following §4.1 of the paper: "The partition factor used
// by φ depends on the size of input, potential redundancy factor, and
// average number of tuples that can be processed by a reducer."
//
// The heuristics:
//
//   - no unbound patterns, or unbound patterns whose expected candidate
//     sets are tiny (selective objects, low subject degree): the implicit
//     representation saves nothing, so Eager avoids the join-time unnest
//     machinery;
//   - otherwise LazyAuto — delay β-unnest, choosing partial unnest per
//     join exactly as the paper's final policy does;
//   - φ_m targets an average of ~2 slot candidates per (group, bucket):
//     fewer buckets than that forfeits no shuffle savings but concentrates
//     reducer work; more buckets degenerate toward full unnest. It is
//     clamped to [reducers, DefaultPhiM].
func Advise(stats DataStats, q *query.Query, reducers int) Advice {
	if reducers <= 0 {
		reducers = 8
	}
	var a Advice
	expected := expectedSlotCandidates(stats, q)
	switch {
	case expected == 0:
		a.Strategy = Eager
		a.Reasons = append(a.Reasons, "no unbound-property patterns: nothing to delay")
	case expected <= 1.5:
		a.Strategy = Eager
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"expected ≤%.1f candidates per unbound pattern: no redundancy to avoid", expected))
	default:
		a.Strategy = LazyAuto
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"expected ≈%.1f candidates per unbound pattern: delay β-unnest", expected))
	}

	// φ_m: distinct join keys spread so a group's candidates share buckets.
	phi := int(float64(stats.DistinctObjects) / maxf(1, expected/2))
	if phi < reducers {
		phi = reducers
	}
	if phi > DefaultPhiM {
		phi = DefaultPhiM
	}
	if phi < 1 {
		phi = 1
	}
	a.PhiM = phi
	a.Reasons = append(a.Reasons, fmt.Sprintf(
		"φ_m = %d for %d distinct objects across %d reducers", phi, stats.DistinctObjects, reducers))
	return a
}

// expectedSlotCandidates estimates the average candidate-set size of the
// query's unbound slots: the subject degree, discounted for selective
// object predicates (a CONTAINS/equality filter admits only its matching
// ID set).
func expectedSlotCandidates(stats DataStats, q *query.Query) float64 {
	var worst float64
	for _, st := range q.Stars {
		for _, sl := range st.Slots {
			est := stats.AvgTriplesPerSubject
			if id, ok := sl.Obj.Exact(); ok && id != rdf.NoID {
				est = 1
			} else if sl.Obj.In != nil && stats.DistinctObjects > 0 {
				frac := float64(len(sl.Obj.In)) / float64(stats.DistinctObjects)
				if frac > 1 {
					frac = 1
				}
				est *= frac
			}
			if est > worst {
				worst = est
			}
		}
	}
	return worst
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
