package ntgamr

import (
	"fmt"
	"testing"

	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/refengine"
)

func TestCollectStats(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(enginetest.Ex("s1"), enginetest.Ex("p"), enginetest.Ex("o1"))
	g.Add(enginetest.Ex("s1"), enginetest.Ex("p"), enginetest.Ex("o2"))
	g.Add(enginetest.Ex("s1"), enginetest.Ex("q"), enginetest.Ex("o1"))
	g.Add(enginetest.Ex("s2"), enginetest.Ex("p"), enginetest.Ex("o3"))
	s := CollectStats(g)
	if s.Triples != 4 || s.Subjects != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.AvgTriplesPerSubject != 2 {
		t.Errorf("avg = %v, want 2", s.AvgTriplesPerSubject)
	}
	if s.MaxPropertyMultiplicity != 2 {
		t.Errorf("max mult = %d, want 2", s.MaxPropertyMultiplicity)
	}
	if s.DistinctObjects != 3 {
		t.Errorf("objects = %d, want 3", s.DistinctObjects)
	}
	if empty := CollectStats(rdf.NewGraph()); empty.AvgTriplesPerSubject != 0 {
		t.Errorf("empty avg = %v", empty.AvgTriplesPerSubject)
	}
}

func TestAdviseStrategySelection(t *testing.T) {
	g := enginetest.BioGraph()
	stats := CollectStats(g)

	// Bound-only query: Eager (nothing to delay).
	q := enginetest.Compile(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?go . }`)
	a, err := Advise(stats, q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != Eager {
		t.Errorf("bound-only advice = %v, want Eager (%v)", a.Strategy, a.Reasons)
	}

	// Unbound with unrestricted object and real subject degree: LazyAuto.
	q = enginetest.Compile(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ?p ?o . }`)
	a, err = Advise(stats, q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != LazyAuto {
		t.Errorf("unbound advice = %v, want LazyAuto (%v)", a.Strategy, a.Reasons)
	}
	if a.PhiM < 8 || a.PhiM > DefaultPhiM {
		t.Errorf("PhiM = %d out of bounds", a.PhiM)
	}
	if len(a.Reasons) == 0 {
		t.Error("advice without reasons")
	}

	// Unbound with an exact object: Eager again (one candidate).
	q = enginetest.Compile(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ?p ?o . FILTER(?o = ex:go1) }`)
	a, err = Advise(stats, q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != Eager {
		t.Errorf("exact-object advice = %v, want Eager (%v)", a.Strategy, a.Reasons)
	}
}

func TestAdvisePhiMMonotoneInObjects(t *testing.T) {
	q := enginetest.Compile(t, enginetest.BioGraph(), `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ?p ?o . }`)
	prev := 0
	for _, objects := range []int64{10, 1000, 100000} {
		stats := DataStats{Triples: 10 * objects, Subjects: objects / 4,
			AvgTriplesPerSubject: 40, DistinctObjects: objects}
		a, err := Advise(stats, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if a.PhiM < prev {
			t.Errorf("PhiM decreased: %d after %d (objects=%d)", a.PhiM, prev, objects)
		}
		prev = a.PhiM
	}
	if prev != DefaultPhiM {
		t.Errorf("large dataset PhiM = %d, want clamp at %d", prev, DefaultPhiM)
	}
}

func TestAdvisedEngineIsCorrectAndLean(t *testing.T) {
	// The advised configuration must stay correct and must not ship more
	// join-shuffle bytes than the naive full unnest on a redundancy-heavy
	// workload.
	g := enginetest.BioGraph()
	for i := 0; i < 40; i++ {
		g.Add(enginetest.Ex("gene0"), enginetest.Ex(fmt.Sprintf("attr%d", i)),
			enginetest.Ex(fmt.Sprintf("go%d", i%5)))
	}
	g.Dedup()
	src := `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ?p ?x .
  ?x ex:type ?t . ?x ex:label ?xl .
}`
	q := enginetest.Compile(t, g, src)
	advice, err := Advise(CollectStats(g), q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if advice.Strategy != LazyAuto {
		t.Fatalf("advice = %v (%v)", advice.Strategy, advice.Reasons)
	}

	run := func(eng engine.QueryEngine) *engine.Result {
		mr := enginetest.NewMR()
		if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(mr, q, "in")
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		return res
	}
	advised := run(advice.Engine())
	want := refengine.Evaluate(q, g)
	if !query.RowsEqual(want, advised.Rows) {
		t.Fatalf("advised engine differs from reference:\n%s", query.DiffRows(want, advised.Rows, 5))
	}
	full := run(New(LazyFull, 0))
	joinShuffle := func(r *engine.Result) int64 {
		return r.Workflow.Jobs[len(r.Workflow.Jobs)-1].MapOutputBytes
	}
	if joinShuffle(advised) > joinShuffle(full) {
		t.Errorf("advised join shuffle (%d) exceeds full unnest (%d)",
			joinShuffle(advised), joinShuffle(full))
	}
}
