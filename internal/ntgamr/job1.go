// Package ntgamr lifts the NTGA operators of internal/core onto MapReduce
// as the paper's physical operators:
//
//   - Job1 (Algorithm 1): TG_GroupByMap tags every query-relevant triple by
//     subject; TG_GroupByReduce + TG_UnbGrpFilter (Algorithm 2) build the
//     annotated triplegroups for every star subpattern — all stars in a
//     single MR cycle, sharing one scan of the triple relation;
//   - join cycles (Algorithm 3): TG_Join for subject/bound-object joins,
//     TG_UnbJoin (map-side full β-unnest) and TG_OptUnbJoin (map-side
//     partial β-unnest μ^β_φm, completed in the reduce) for joins on an
//     unbound-property pattern's object.
//
// Three evaluation strategies are provided: Eager (β-unnest during Job1),
// LazyFull, LazyPartial, and the paper's final policy LazyAuto (partial
// β-unnest for unbound-object joins, full for partially-bound objects).
package ntgamr

import (
	"ntga/internal/codec"
	"ntga/internal/core"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
)

// Counter names exposed in engine results.
const (
	CounterGroups       = "ntga.job1.groups"         // subject triplegroups formed
	CounterAnnTGs       = "ntga.job1.anntgs"         // AnnTGs passing σ^βγ
	CounterEagerUnnest  = "ntga.job1.eager_unnested" // perfect TGs from eager μ^β
	CounterMapUnnest    = "ntga.join.map_unnested"   // TGs from map-side full μ^β
	CounterPartialTGs   = "ntga.join.partial_tgs"    // partial TGs from μ^β_φm
	CounterReduceUnnest = "ntga.join.reduce_unnested"
)

// groupByMapper is TG_GroupByMap: it keys every query-relevant triple by
// subject. One scan serves every star subpattern (NTGA's scan sharing).
type groupByMapper struct {
	q *query.Query
}

func (m *groupByMapper) Map(_ string, record []byte, out mapreduce.Emitter) error {
	t, err := codec.DecodeTriple(record)
	if err != nil {
		return err
	}
	if !m.q.TripleRelevant(t) {
		return nil
	}
	var val codec.Buffer
	val.PutID(t.P)
	val.PutID(t.O)
	return out.Emit(codec.EncodeID(t.S), val.Bytes())
}

// groupFilterReducer is TG_GroupByReduce + TG_UnbGrpFilter: it assembles
// the subject triplegroup, applies the β group-filter for every equivalence
// class, and — under the Eager strategy — β-unnests immediately.
type groupFilterReducer struct {
	q        *query.Query
	eager    bool
	counters *mapreduce.Counters
}

func (r *groupFilterReducer) Reduce(key []byte, values mapreduce.ValueIter, out mapreduce.Collector) error {
	subject, err := codec.DecodeID(key)
	if err != nil {
		return err
	}
	pairs, err := decodeSortedPairs(values)
	if err != nil {
		return err
	}
	tg := core.NewTripleGroup(subject, pairs)
	r.counters.Inc(CounterGroups, 1)
	for _, a := range core.UnbGrpFilter(tg, r.q.Stars) {
		r.counters.Inc(CounterAnnTGs, 1)
		if r.eager {
			for _, p := range core.BetaUnnest(r.q.Stars[a.EC], a) {
				r.counters.Inc(CounterEagerUnnest, 1)
				if err := out.Collect(core.EncodeJoined([]core.AnnTG{p})); err != nil {
					return err
				}
			}
		} else {
			if err := out.Collect(core.EncodeJoined([]core.AnnTG{a})); err != nil {
				return err
			}
		}
	}
	return nil
}

// job1 builds the grouping cycle.
func job1(q *query.Query, eager bool, counters *mapreduce.Counters, input, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:          "ntga-group",
		Inputs:        []string{input},
		Output:        output,
		Mapper:        &groupByMapper{q: q},
		StreamReducer: &groupFilterReducer{q: q, eager: eager, counters: counters},
	}
}
