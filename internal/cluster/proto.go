// Package cluster is the distributed execution substrate behind the
// mapreduce Cluster seam: a coordinator (Master) that owns the DFS and
// leases map/reduce task attempts to network-registered Workers over
// net/rpc + gob, with heartbeat-based liveness, lease deadlines, and
// re-execution of work (including committed map output) lost to dead
// workers.
//
// Jobs cross the wire as (query, engine, join order) specs, not closures:
// every worker deterministically rebuilds the same physical plan from the
// query text and the master-shipped dictionary, so a TaskSpec only needs to
// say *which* job of the plan and *which* slice of the input to run.
// Intermediate file names differ between processes (they come from a
// process-global counter), so specs carry the master's input names and
// workers translate them positionally into their own rebuilt plan.
package cluster

import (
	"time"

	"ntga/internal/ingest"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
	"ntga/internal/rdf"
)

// QuerySpec is everything a worker needs to rebuild one query's physical
// plan bit-for-bit: the SPARQL text, the resolved (never "auto") engine
// name, the partial-unnest range, the optimizer's join order when one was
// applied, and the DFS name of the base triple relation.
type QuerySpec struct {
	Query    string
	Engine   string
	PhiM     int
	Order    []int
	HasOrder bool
	Input    string
	// PartDir/PartBuckets describe the master's partitioned triple layout
	// when this query runs against it (PartBuckets 0 = flat). Workers
	// rebuild the same Partitioning — the bucket-file names are
	// deterministic under the dir — so their plans rewrite identically.
	PartDir     string
	PartBuckets int
	// Deltas is the uncompacted delta chain the master overlays on the base
	// relation (plan.ApplyDeltaOverlay). Delta-block names are
	// process-independent (they come from the manifest sequence, not a
	// process counter), so workers widen their rebuilt scans identically and
	// the positional JobInputs translation stays aligned.
	Deltas []string
	// DictLen is the master's dictionary size when the query was admitted: a
	// worker whose dictionary is shorter must sync the newly ingested terms
	// (Master.Sync) before rebuilding the plan, or the compile would miss
	// terms the delta blocks reference.
	DictLen int
}

// SplitSpec is one map task's input assignment: a record range of one
// master-side DFS file (N < 0 means "through the end"; a zero-record file
// still yields one empty split, mirroring the local planner).
type SplitSpec struct {
	Input string
	Off   int
	N     int
}

// MapLoc tells a reduce task where one map task's committed output lives.
type MapLoc struct {
	Task   int
	Worker int
	Addr   string
}

// TaskSpec is one leased task attempt.
type TaskSpec struct {
	QueryID string
	Spec    QuerySpec
	// JobID is the master's execution-scoped job instance ID; JobName is
	// the plan job's deterministic name the worker resolves against its
	// rebuilt plan.
	JobID   int64
	JobName string
	// Kind is "map", "maponly", or "reduce". Map-kind worker slots run
	// both "map" and "maponly" specs.
	Kind    string
	Task    int
	Attempt int
	// NumReducers is the resolved reduce partition count (map tasks
	// partition their output by it).
	NumReducers int
	// JobInputs are the master-side job input names, positionally aligned
	// with the worker's rebuilt job.Inputs — the name-translation table.
	JobInputs []string
	// Split is the map input range (map/maponly kinds).
	Split SplitSpec
	// SideInput is the master-side DFS file whose full contents the task
	// loads before its scan (whole-file map-only kinds; "" = none).
	SideInput string
	// Partition is the reduce partition index (reduce kind).
	Partition int
	// Maps locates every map task's committed output (reduce kind).
	Maps []MapLoc
}

// RegisterArgs announces a worker: the address its Fetch service listens on
// and how many concurrent tasks of each kind it runs. PrevWorker non-zero
// marks a *re*-registration after sustained master loss: a master that
// still remembers the ID revives the existing worker record (same ID, no
// double-counted slots); a master that does not (it restarted) assigns a
// fresh ID. Either way the worker keeps its committed map segments
// servable.
type RegisterArgs struct {
	Addr        string
	MapSlots    int
	ReduceSlots int
	PrevWorker  int
	// KnownVersion is the dataset version the worker currently holds ("" on
	// first registration). The master accepts any version in its ingest
	// lineage — the worker's dictionary is a prefix of the master's, and a
	// Sync brings it forward — but refuses a version it has never served:
	// that worker's dictionary belongs to a genuinely different dataset.
	KnownVersion string
}

// RegisterReply assigns the worker its ID and ships the dataset dictionary
// in ID order, so re-encoding the terms in order reproduces the master's
// IDs exactly.
type RegisterReply struct {
	Worker         int
	Terms          []rdf.Term
	DatasetVersion string
	Input          string
	HeartbeatEvery time.Duration
	LeaseEvery     time.Duration
}

// HeartbeatArgs is a worker liveness ping. The counter fields are the
// worker's cumulative transport-recovery totals (master-link retries,
// re-dials across master and peer links, and transient shuffle-fetch
// retries); the master max-merges them per worker — they only grow, and
// heartbeats can race reports — and sums them into StatusReply.
type HeartbeatArgs struct {
	Worker       int
	RPCRetries   int64
	Redials      int64
	FetchRetries int64
}

// HeartbeatReply carries the IDs of queries still in flight, so workers can
// drop cached plans and map outputs of settled queries, plus the master's
// current dataset version so the fleet tracks ingest-driven movement
// between queries.
type HeartbeatReply struct {
	LiveQueries    []string
	DatasetVersion string
}

// SyncArgs asks the master for dictionary terms from index Have onward —
// the incremental counterpart of RegisterReply.Terms after ingests minted
// new terms.
type SyncArgs struct {
	Have int
}

// SyncReply carries the master's terms from index From in ID order (From
// echoes the Have the reply was computed against, so a worker that raced
// another sync can skip the prefix it already applied) and the current
// dataset version.
type SyncReply struct {
	Terms          []rdf.Term
	From           int
	DatasetVersion string
}

// IngestArgs submits one raw N-Triples batch to the master's versioned
// dataset store.
type IngestArgs struct {
	Batch []byte
}

// IngestReply reports the accepted batch's effect.
type IngestReply struct {
	Triples        int
	Seq            int
	DatasetVersion string
	DeltaBlocks    int
}

// CompactArgs is empty.
type CompactArgs struct{}

// CompactReply carries the delta-merge compaction summary.
type CompactReply struct {
	Result ingest.CompactResult
}

// LeaseArgs asks for one task of the given kind ("map" or "reduce").
type LeaseArgs struct {
	Worker int
	Kind   string
}

// LeaseReply holds the granted task, or nil when nothing is pending.
type LeaseReply struct {
	Task *TaskSpec
}

// ReportArgs is a task attempt's outcome. Map results stay on the worker
// (only counts travel); reduce and map-only results ship their collected
// output records for the master to commit. Counters is the full snapshot of
// the worker's per-query engine counters — the master keeps the latest per
// worker and sums them at query end.
type ReportArgs struct {
	Worker  int
	QueryID string
	JobID   int64
	Kind    string
	Task    int
	Attempt int

	OK  bool
	Err string
	// LostMaps lists map tasks whose output could not be fetched; the
	// master re-queues them (and this reduce) — the "map output lost,
	// re-running map task" path.
	LostMaps []int

	// Outputs are the task's collected records per output base (reduce and
	// maponly kinds), ordered like Job.OutputBases.
	Outputs [][][]byte
	Groups  int64
	Records int64
	Bytes   int64
	// InPairs/InBytes count a reduce task's merged shuffle input (skew
	// accounting).
	InPairs int64
	InBytes int64

	Duration time.Duration
	Counters map[string]int64
}

// ReportReply is empty; acknowledgement is the RPC return itself.
type ReportReply struct{}

// ReadRangeArgs asks the master for a record range of a DFS file (a map
// task reading its split through the coordinator's DFS).
type ReadRangeArgs struct {
	Name string
	Off  int
	N    int
}

// ReadRangeReply carries the records.
type ReadRangeReply struct {
	Records [][]byte
}

// FetchArgs asks a worker for one map task's committed output segment for
// one reduce partition.
type FetchArgs struct {
	QueryID   string
	JobID     int64
	Task      int
	Partition int
}

// FetchReply carries the (key, value)-sorted, combiner-folded segment.
type FetchReply struct {
	KVs []mapreduce.KV
}

// RunArgs submits a query to the master. Engine "" selects the master's
// default; "auto" asks the master's catalog advisor. Order/HasOrder inject
// a join order decided by the caller (ntga-serve runs its own optimizer);
// without one the compiled order runs unchanged, matching a plain local
// run. Reducers/SplitRecords of 0 select the master's defaults.
type RunArgs struct {
	Query        string
	Engine       string
	PhiM         int
	Order        []int
	HasOrder     bool
	Reducers     int
	SplitRecords int
	TimeoutMS    int64
	// NoPartition forces the flat plan even when the master holds a
	// partitioned layout (parity baselines, A/B measurement).
	NoPartition bool
}

// RunReply is a completed query: the raw binding rows (for callers with a
// dictionary-equivalent view, e.g. ntga-serve's result cache) and the
// master-rendered header/text rows (for dictionary-less callers like
// ntga-run -cluster), plus the workflow metrics a local run would report.
type RunReply struct {
	Engine    string
	IsCount   bool
	Count     int64
	Rows      []query.Row
	Header    []string
	RowsText  []string
	TotalRows int

	Counters      map[string]int64
	OutputRecords int64
	OutputBytes   int64
	PeakDFSUsed   int64
	Workflow      mapreduce.WorkflowMetrics
}

// StatusArgs is empty.
type StatusArgs struct{}

// WorkerStatus is one worker's row in the master's status report.
type WorkerStatus struct {
	ID              int    `json:"id"`
	Addr            string `json:"addr"`
	Alive           bool   `json:"alive"`
	MapSlots        int    `json:"map_slots"`
	ReduceSlots     int    `json:"reduce_slots"`
	MapBusy         int    `json:"map_busy"`
	ReduceBusy      int    `json:"reduce_busy"`
	LastHeartbeatMS int64  `json:"last_heartbeat_ms"`
	TasksDone       int64  `json:"tasks_done"`
	TasksFailed     int64  `json:"tasks_failed"`
}

// StatusReply is the master's cluster snapshot. The four transport-recovery
// counters aggregate what the fleet's retrying RPC layer absorbed:
// RPCRetries/Redials/FetchTransientRetries sum the workers' shipped
// heartbeat totals, WorkerReregistrations counts re-registrations this
// master has accepted (returning workers after a healed partition, or a
// fleet re-joining a restarted master).
type StatusReply struct {
	Triples         int64
	DatasetVersion  string
	Workers         []WorkerStatus
	WorkersLost     int64
	ActiveQueries   int
	TasksDispatched int64

	RPCRetries            int64
	Redials               int64
	FetchTransientRetries int64
	WorkerReregistrations int64

	// AffineLeases counts bucket-affine task grants: whole-file map-only
	// tasks leased to the worker that already processed the same bucket
	// earlier in the query (warm-path scheduling over the layout).
	AffineLeases int64
}
