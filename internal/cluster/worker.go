package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ntga/internal/engine"
	"ntga/internal/mapreduce"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// Addr is the address the worker's shuffle/Fetch endpoint binds;
	// port 0 picks a free port. Workers behind one master must be
	// mutually reachable at these addresses.
	Addr string
	// MapSlots/ReduceSlots are the concurrent task executors per kind.
	MapSlots    int
	ReduceSlots int
	// TaskDelay stretches every task by a fixed sleep — a throttle for
	// fault-injection tests that need time to kill a worker mid-job.
	TaskDelay time.Duration
	// Retry shapes every master and peer RPC: re-dial on connection loss,
	// exponential backoff with full jitter between attempts (zero values
	// take the rclient defaults).
	Retry RetryPolicy
	// FetchRetries is the per-holder attempt budget of one shuffle fetch:
	// a delayed or flaky holder is retried this many times (with backoff)
	// before its map output is declared lost and the master re-executes
	// the map task — the transient-vs-dead-holder distinction (default 3).
	FetchRetries int
	// MasterLossThreshold is how many consecutive heartbeat failures
	// (each already retried per Retry) declare the master lost and start
	// re-registration (default 3).
	MasterLossThreshold int
	// MaxPeerConns bounds the pooled peer (shuffle) connections; beyond
	// it the least-recently-used peer is evicted and closed (default 4).
	MaxPeerConns int
	// PeerIdleTimeout closes pooled peer connections that have not served
	// a fetch recently, so long-lived workers do not hoard fds across a
	// large fleet (default 45s).
	PeerIdleTimeout time.Duration
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MapSlots == 0 {
		c.MapSlots = 2
	}
	if c.ReduceSlots == 0 {
		c.ReduceSlots = 2
	}
	if c.FetchRetries == 0 {
		c.FetchRetries = 3
	}
	if c.MasterLossThreshold == 0 {
		c.MasterLossThreshold = 3
	}
	if c.MaxPeerConns == 0 {
		c.MaxPeerConns = 4
	}
	if c.PeerIdleTimeout == 0 {
		c.PeerIdleTimeout = 45 * time.Second
	}
	return c
}

// outKey addresses one map task's committed output in the worker's store.
type outKey struct {
	qid   string
	jobID int64
	task  int
}

// queryPlan is a worker's rebuilt execution state for one query: the plan's
// jobs by name and the engine counters shared by every task of the query.
type queryPlan struct {
	jobs     map[string]*mapreduce.Job
	counters *mapreduce.Counters
}

// peerConn is one pooled shuffle connection with its LRU timestamp.
type peerConn struct {
	rc      *rclient
	lastUse time.Time
}

// Worker executes leased task attempts against the master's DFS and serves
// its committed map output to peer workers. Its master link is a retrying,
// re-dialing client: a broken connection (or a partition) is retried with
// backoff, and after sustained loss the worker re-registers — keeping its
// committed map segments servable — instead of polling a poisoned pipe
// forever.
type Worker struct {
	cfg        WorkerConfig
	tr         Transport
	masterAddr string
	master     *rclient
	ver        string
	input      string

	ln     net.Listener
	conns  *connSet
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu         sync.Mutex
	id         int
	dict       *rdf.Dict
	hbEvery    time.Duration
	leaseEvery time.Duration
	plans      map[string]*queryPlan
	outs       map[outKey][][]mapreduce.KV
	peers      map[string]*peerConn
	// retiredPeerRetries/-Redials carry evicted peers' counters forward so
	// the heartbeat totals never go backwards.
	retiredPeerRetries int64
	retiredPeerRedials int64
	fatalErr           error

	// regMu single-flights re-registration across the loops that notice
	// master loss; lastRereg debounces the burst of executors that all hit
	// "unknown worker" against one restarted master.
	regMu     sync.Mutex
	lastRereg time.Time
	reregs    atomic.Int64

	// syncMu single-flights dictionary syncs: concurrent executors planning
	// different queries must not interleave Extend calls.
	syncMu sync.Mutex

	jmu sync.Mutex
	rng *rand.Rand
}

// NewWorker prepares a worker that will register with the master at
// masterAddr over the transport (nil defaults to TCP).
func NewWorker(cfg WorkerConfig, tr Transport, masterAddr string) *Worker {
	if tr == nil {
		tr = TCP()
	}
	ctx, cancel := context.WithCancel(context.Background())
	seed := cfg.Retry.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Worker{
		cfg:        cfg.withDefaults(),
		tr:         tr,
		masterAddr: masterAddr,
		ctx:        ctx,
		cancel:     cancel,
		plans:      make(map[string]*queryPlan),
		outs:       make(map[outKey][][]mapreduce.KV),
		peers:      make(map[string]*peerConn),
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Start registers with the master, rebuilds the dataset dictionary from the
// shipped terms, opens the Fetch endpoint, and launches the heartbeat and
// executor loops. It returns once the worker is serving.
func (w *Worker) Start() error {
	ln, err := w.tr.Listen(w.cfg.Addr)
	if err != nil {
		return err
	}
	w.ln = ln
	w.master = newRClient(w.tr, w.masterAddr, w.cfg.Retry, w.ctx.Done())
	var reply RegisterReply
	err = w.master.Call(context.Background(), "Master.Register", &RegisterArgs{
		Addr:        ln.Addr().String(),
		MapSlots:    w.cfg.MapSlots,
		ReduceSlots: w.cfg.ReduceSlots,
	}, &reply)
	if err != nil {
		w.master.Close()
		ln.Close()
		return fmt.Errorf("cluster: registering with master %s: %w", w.masterAddr, err)
	}
	w.input = reply.Input
	// Re-encoding the terms in shipped (ID) order reproduces the master's
	// IDs exactly; freezing catches any accidental divergence loudly
	// (ingest-minted terms arrive later via Dict.Extend, which is exempt).
	dict := rdf.NewDict()
	for _, t := range reply.Terms {
		dict.Encode(t)
	}
	dict.Freeze()
	w.mu.Lock()
	w.ver = reply.DatasetVersion
	w.id = reply.Worker
	w.dict = dict
	w.hbEvery = reply.HeartbeatEvery
	w.leaseEvery = reply.LeaseEvery
	w.mu.Unlock()

	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &workerRPC{w}); err != nil {
		w.master.Close()
		ln.Close()
		return err
	}
	w.conns = newConnSet()
	go serveRPCTracked(srv, ln, w.conns)
	w.wg.Add(1)
	go w.heartbeatLoop()
	for i := 0; i < w.cfg.MapSlots; i++ {
		w.wg.Add(1)
		go w.executor("map")
	}
	for i := 0; i < w.cfg.ReduceSlots; i++ {
		w.wg.Add(1)
		go w.executor("reduce")
	}
	return nil
}

// ID is the master-assigned worker ID (valid after Start; it can change if
// the worker re-registers with a restarted master).
func (w *Worker) ID() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Addr is the worker's bound Fetch address (valid after Start).
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Err reports why the worker gave up permanently (nil while healthy) —
// e.g. a re-registration that found the master serving a different dataset.
func (w *Worker) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fatalErr
}

// Reregistrations counts successful re-registrations after master loss.
func (w *Worker) Reregistrations() int64 { return w.reregs.Load() }

// Close tears the worker down abruptly — the "kill -9" of the simulated
// cluster: loops stop, the Fetch listener closes, and every open RPC client
// fails its in-flight calls. No goodbye is sent; the master notices via
// missed heartbeats.
func (w *Worker) Close() {
	w.cancel()
	if w.ln != nil {
		w.ln.Close()
	}
	if w.conns != nil {
		w.conns.closeAll()
	}
	if w.master != nil {
		w.master.Close()
	}
	w.mu.Lock()
	peers := w.peers
	w.peers = make(map[string]*peerConn)
	w.mu.Unlock()
	for _, pc := range peers {
		pc.rc.Close()
	}
}

// Wait blocks until the worker's loops have exited (after Close, or after
// the worker failed permanently).
func (w *Worker) Wait() { w.wg.Wait() }

func (w *Worker) fail(err error) {
	w.mu.Lock()
	if w.fatalErr == nil {
		w.fatalErr = err
	}
	w.mu.Unlock()
	w.cancel()
}

// jitter draws a wait uniformly from [d/2, 3d/2): the mean stays d, but a
// fleet of workers that all lost (and regained) the master at the same
// instant spreads its polls instead of thundering onto it in lockstep.
func (w *Worker) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	w.jmu.Lock()
	j := w.rng.Int63n(int64(d))
	w.jmu.Unlock()
	return d/2 + time.Duration(j)
}

func (w *Worker) wid() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// version is the dataset version this worker currently tracks; it moves
// forward with ingest (heartbeats, syncs, re-registration).
func (w *Worker) version() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ver
}

func (w *Worker) setVersion(v string) {
	if v == "" {
		return
	}
	w.mu.Lock()
	w.ver = v
	w.mu.Unlock()
}

func (w *Worker) leaseWait() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.leaseEvery
}

func (w *Worker) hbWait() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hbEvery
}

// isUnknownWorker spots the master's "who are you?" — a master that
// restarted (or swept this worker away) answers method calls but does not
// recognize the ID; the only fix is re-registration, not retry.
func isUnknownWorker(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se) && strings.Contains(string(se), "unknown worker")
}

// heartbeatArgs snapshots the worker's transport-recovery counters for the
// master's fleet-wide rollup.
func (w *Worker) heartbeatArgs() *HeartbeatArgs {
	mret, mred := w.master.Stats()
	pret, pred := w.peerStats()
	return &HeartbeatArgs{
		Worker:       w.wid(),
		RPCRetries:   mret + pret,
		Redials:      mred + pred,
		FetchRetries: pret,
	}
}

// peerStats sums live and retired peer-link counters.
func (w *Worker) peerStats() (retries, redials int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	retries, redials = w.retiredPeerRetries, w.retiredPeerRedials
	for _, pc := range w.peers {
		ret, red := pc.rc.Stats()
		retries += ret
		redials += red
	}
	return retries, redials
}

func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	misses := 0
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-time.After(w.jitter(w.hbWait())):
		}
		var reply HeartbeatReply
		err := w.master.Call(context.Background(), "Master.Heartbeat", w.heartbeatArgs(), &reply)
		switch {
		case err == nil:
			misses = 0
			w.prune(reply.LiveQueries)
			w.setVersion(reply.DatasetVersion)
		case isUnknownWorker(err):
			if w.reregister() {
				misses = 0
			}
		default:
			misses++
			if misses >= w.cfg.MasterLossThreshold {
				// Sustained loss: the connection-level retries inside each
				// Call are exhausted too, so stop pinging a ghost and win
				// the master back via registration.
				if w.reregister() {
					misses = 0
				}
			}
		}
		w.evictIdlePeers(time.Now())
	}
}

// isDifferentDataset spots the master's lineage refusal: the version this
// worker holds was never served by the master, so its dictionary belongs to
// another dataset entirely — fatal, not retryable.
func isDifferentDataset(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se) && strings.Contains(string(se), "not in this master's version lineage")
}

// reregister re-dials the master and registers again, announcing the
// previous ID so a surviving master revives the same worker record (no
// double-counted slots) while a restarted one issues a fresh ID. Committed
// map segments stay servable either way. The announced KnownVersion lets
// the master vet lineage: a worker that missed ingests behind a partition
// holds an *ancestor* version — acceptable, the dictionary is a prefix and
// syncs forward — while a genuinely different dataset is refused and fatal
// (the worker's IDs would silently mean different terms). Returns true on
// success.
func (w *Worker) reregister() bool {
	w.regMu.Lock()
	defer w.regMu.Unlock()
	if w.ctx.Err() != nil {
		return false
	}
	if time.Since(w.lastRereg) < w.hbWait() {
		// Another loop just re-registered; the caller's failure predates it.
		return true
	}
	var reply RegisterReply
	err := w.master.Call(context.Background(), "Master.Register", &RegisterArgs{
		Addr:         w.ln.Addr().String(),
		MapSlots:     w.cfg.MapSlots,
		ReduceSlots:  w.cfg.ReduceSlots,
		PrevWorker:   w.wid(),
		KnownVersion: w.version(),
	}, &reply)
	if err != nil {
		if isDifferentDataset(err) {
			w.fail(fmt.Errorf("cluster: master %s refused re-registration: %w", w.masterAddr, err))
		}
		return false
	}
	w.mu.Lock()
	w.id = reply.Worker
	w.hbEvery = reply.HeartbeatEvery
	w.leaseEvery = reply.LeaseEvery
	if reply.DatasetVersion != "" {
		w.ver = reply.DatasetVersion
	}
	w.mu.Unlock()
	w.lastRereg = time.Now()
	w.reregs.Add(1)
	return true
}

// prune drops cached plans and map outputs of queries the master no longer
// tracks, bounding worker memory to the in-flight working set.
func (w *Worker) prune(live []string) {
	alive := make(map[string]bool, len(live))
	for _, q := range live {
		alive[q] = true
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for qid := range w.plans {
		if !alive[qid] {
			delete(w.plans, qid)
		}
	}
	for k := range w.outs {
		if !alive[k.qid] {
			delete(w.outs, k)
		}
	}
}

// executor is one task slot: lease, run, report, repeat. Map slots execute
// both "map" and "maponly" specs; the kind only selects the lease queue.
func (w *Worker) executor(kind string) {
	defer w.wg.Done()
	for {
		if w.ctx.Err() != nil {
			return
		}
		var reply LeaseReply
		err := w.master.Call(context.Background(), "Master.Lease", &LeaseArgs{Worker: w.wid(), Kind: kind}, &reply)
		if err != nil && isUnknownWorker(err) {
			w.reregister()
		}
		if err != nil || reply.Task == nil {
			select {
			case <-w.ctx.Done():
				return
			case <-time.After(w.jitter(w.leaseWait())):
			}
			continue
		}
		w.execute(reply.Task)
	}
}

// fetchError carries the map tasks whose output a reduce attempt could not
// retrieve — after the per-holder retry budget, so only sustained
// unavailability (not one delayed packet) escalates — and the report
// triggers map re-execution rather than a blind retry against the same
// dead holder.
type fetchError struct {
	lost []int
}

func (e *fetchError) Error() string {
	return fmt.Sprintf("cluster: map output unavailable for tasks %v", e.lost)
}

// execute runs one leased attempt and reports the outcome with the query's
// current counter snapshot attached.
func (w *Worker) execute(ts *TaskSpec) {
	if w.cfg.TaskDelay > 0 {
		select {
		case <-w.ctx.Done():
			return
		case <-time.After(w.cfg.TaskDelay):
		}
	}
	start := time.Now()
	rep := &ReportArgs{
		Worker:  w.wid(),
		QueryID: ts.QueryID,
		JobID:   ts.JobID,
		Kind:    ts.Kind,
		Task:    ts.Task,
		Attempt: ts.Attempt,
	}
	err := w.runTask(ts, rep)
	rep.Duration = time.Since(start)
	if err != nil {
		rep.OK = false
		rep.Err = err.Error()
		if fe, ok := err.(*fetchError); ok {
			rep.LostMaps = fe.lost
		}
		rep.Outputs = nil
	} else {
		rep.OK = true
	}
	if qp := w.planCached(ts.QueryID); qp != nil {
		rep.Counters = qp.counters.Snapshot()
	}
	var ack ReportReply
	// A lost report re-queues via lease expiry.
	w.master.Call(context.Background(), "Master.Report", rep, &ack)
}

func (w *Worker) planCached(qid string) *queryPlan {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.plans[qid]
}

// syncDict brings the worker's dictionary up to at least need terms by
// pulling the newly ingested tail from the master (Master.Sync). It runs
// outside w.mu — the RPC can block, and heartbeat bookkeeping takes w.mu —
// and single-flights under syncMu so concurrent executors cannot interleave
// Extend calls. A racing sync that already applied part of the reply is
// handled by skipping the prefix this dictionary already holds.
func (w *Worker) syncDict(need int) error {
	w.mu.Lock()
	dict := w.dict
	w.mu.Unlock()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if dict.Len() >= need {
		return nil
	}
	var reply SyncReply
	if err := w.master.Call(context.Background(), "Master.Sync", &SyncArgs{Have: dict.Len()}, &reply); err != nil {
		return fmt.Errorf("cluster: syncing dictionary: %w", err)
	}
	terms := reply.Terms
	if skip := dict.Len() - reply.From; skip > 0 {
		if skip >= len(terms) {
			terms = nil
		} else {
			terms = terms[skip:]
		}
	}
	if len(terms) > 0 {
		if err := dict.Extend(terms); err != nil {
			return fmt.Errorf("cluster: extending dictionary: %w", err)
		}
	}
	w.setVersion(reply.DatasetVersion)
	return nil
}

// planFor returns (building if needed) the worker's rebuilt plan for the
// query. The rebuild is deterministic given the query spec and the shipped
// dictionary, so every worker (and the master) agrees on each job's mapper,
// reducer, combiner, and partitioner semantics. When the spec was planned
// against a longer dictionary (ingest since this worker's last sync), the
// missing terms are pulled first — before w.mu is taken, since the sync is
// an RPC.
func (w *Worker) planFor(qid string, spec *QuerySpec) (*queryPlan, error) {
	if qp := w.planCached(qid); qp != nil {
		return qp, nil
	}
	if spec.DictLen > 0 {
		if err := w.syncDict(spec.DictLen); err != nil {
			return nil, err
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if qp, ok := w.plans[qid]; ok {
		return qp, nil
	}
	q, err := compileSpec(spec, w.dict)
	if err != nil {
		return nil, err
	}
	eng, err := engineByName(spec.Engine, spec.PhiM)
	if err != nil {
		return nil, err
	}
	var part *plan.Partitioning
	if spec.PartBuckets > 0 {
		part, err = plan.NewPartitioning(plan.PartitionKeySubject, spec.PartBuckets, spec.PartDir, w.ver)
		if err != nil {
			return nil, fmt.Errorf("cluster: rebuilding partitioning: %w", err)
		}
	}
	counters := mapreduce.NewCounters()
	var cl engine.Cleaner
	p, err := engine.PlanMaybePartitioned(eng, q, spec.Input, part, &cl, counters)
	if err != nil {
		return nil, fmt.Errorf("cluster: rebuilding plan: %w", err)
	}
	// Mirror the master's delta overlay: the widened scan inputs are
	// appended in chain order, so the positional JobInputs translation
	// stays aligned (delta-block names are process-independent).
	p.ApplyDeltaOverlay(spec.Deltas)
	stages, err := p.Lower()
	if err != nil {
		return nil, fmt.Errorf("cluster: lowering rebuilt plan: %w", err)
	}
	qp := &queryPlan{jobs: make(map[string]*mapreduce.Job), counters: counters}
	for _, st := range stages {
		for _, job := range st {
			if _, dup := qp.jobs[job.Name]; dup {
				return nil, fmt.Errorf("cluster: rebuilt plan has duplicate job name %q; cannot address tasks by name", job.Name)
			}
			qp.jobs[job.Name] = job
		}
	}
	w.plans[qid] = qp
	return qp, nil
}

// compileSpec rebuilds the compiled query from a spec against a dictionary.
func compileSpec(spec *QuerySpec, dict *rdf.Dict) (*query.Query, error) {
	pq, err := sparql.Parse(spec.Query)
	if err != nil {
		return nil, err
	}
	q, err := query.Compile(pq, dict)
	if err != nil {
		return nil, err
	}
	if spec.HasOrder {
		joins, err := q.JoinsForOrder(spec.Order)
		if err != nil {
			return nil, fmt.Errorf("cluster: applying join order: %w", err)
		}
		q.Joins = joins
	}
	return q, nil
}

// localInput translates a master-side input name into the worker's rebuilt
// job via position: intermediate file names differ per process (they come
// from a process-global counter), but each job's input list order is part
// of the deterministic plan.
func localInput(job *mapreduce.Job, ts *TaskSpec) (string, error) {
	for i, in := range ts.JobInputs {
		if in == ts.Split.Input {
			if i >= len(job.Inputs) {
				break
			}
			return job.Inputs[i], nil
		}
	}
	return "", fmt.Errorf("cluster: split input %q not in job %s's inputs %v (rebuilt %v)", ts.Split.Input, ts.JobName, ts.JobInputs, job.Inputs)
}

// runTask executes one attempt, filling the report's result fields.
func (w *Worker) runTask(ts *TaskSpec, rep *ReportArgs) error {
	qp, err := w.planFor(ts.QueryID, &ts.Spec)
	if err != nil {
		return err
	}
	job := qp.jobs[ts.JobName]
	if job == nil {
		return fmt.Errorf("cluster: rebuilt plan has no job %q", ts.JobName)
	}
	switch ts.Kind {
	case "map":
		input, err := localInput(job, ts)
		if err != nil {
			return err
		}
		recs, err := w.readSplit(ts.Split)
		if err != nil {
			return err
		}
		res, err := mapreduce.ExecMapTask(job, input, ts.NumReducers, mapreduce.SliceRecords(recs))
		if err != nil {
			return err
		}
		w.mu.Lock()
		w.outs[outKey{ts.QueryID, ts.JobID, ts.Task}] = res.Parts
		w.mu.Unlock()
		rep.Records = res.Records
		rep.Bytes = res.Bytes
		return nil
	case "maponly":
		input, err := localInput(job, ts)
		if err != nil {
			return err
		}
		recs, err := w.readSplit(ts.Split)
		if err != nil {
			return err
		}
		var side [][]byte
		if ts.SideInput != "" {
			side, err = w.readSplit(SplitSpec{Input: ts.SideInput, Off: 0, N: -1})
			if err != nil {
				return err
			}
		}
		out, err := mapreduce.ExecMapOnlyTaskN(job, ts.Task, input, side, mapreduce.SliceRecords(recs))
		if err != nil {
			return err
		}
		rep.Outputs = out.Outputs
		rep.Records = out.Records
		rep.Bytes = out.Bytes
		return nil
	case "reduce":
		parts := make([][]mapreduce.KV, len(ts.Maps))
		var lost []int
		for i, ml := range ts.Maps {
			kvs, err := w.fetchMap(ts, ml)
			if err != nil {
				lost = append(lost, ml.Task)
				continue
			}
			parts[i] = kvs
		}
		if len(lost) > 0 {
			return &fetchError{lost: lost}
		}
		out, err := mapreduce.ExecReduceTask(job, parts)
		if err != nil {
			return err
		}
		rep.Outputs = out.Outputs
		rep.Groups = out.Groups
		rep.Records = out.Records
		rep.Bytes = out.Bytes
		rep.InPairs = out.InPairs
		rep.InBytes = out.InBytes
		return nil
	default:
		return fmt.Errorf("cluster: unknown task kind %q", ts.Kind)
	}
}

// readSplit pulls a map split's records through the master's DFS, charging
// the master-side read counters exactly as a local streamed scan would
// (a retried task re-charges its re-read).
func (w *Worker) readSplit(sp SplitSpec) ([][]byte, error) {
	var reply ReadRangeReply
	if err := w.master.Call(context.Background(), "Master.ReadRange", &ReadRangeArgs{Name: sp.Input, Off: sp.Off, N: sp.N}, &reply); err != nil {
		return nil, fmt.Errorf("cluster: reading split %s[%d:+%d]: %w", sp.Input, sp.Off, sp.N, err)
	}
	return reply.Records, nil
}

// fetchMap retrieves one map task's segment for this reduce partition —
// from the local store when this worker ran the map, otherwise over the
// transport from the holder. Remote fetches retry transient transport
// failures FetchRetries times (with backoff and re-dial) before giving up;
// a holder that *answers* but has no output (it restarted, or pruned the
// query) fails immediately — retrying cannot conjure the segment back.
func (w *Worker) fetchMap(ts *TaskSpec, ml MapLoc) ([]mapreduce.KV, error) {
	key := outKey{ts.QueryID, ts.JobID, ml.Task}
	if ml.Worker == w.wid() {
		w.mu.Lock()
		parts := w.outs[key]
		w.mu.Unlock()
		if parts != nil {
			return parts[ts.Partition], nil
		}
		return nil, fmt.Errorf("cluster: own map output for task %d missing", ml.Task)
	}
	peer := w.peer(ml.Addr)
	var reply FetchReply
	err := peer.Call(context.Background(), "Worker.Fetch", &FetchArgs{
		QueryID:   ts.QueryID,
		JobID:     ts.JobID,
		Task:      ml.Task,
		Partition: ts.Partition,
	}, &reply)
	if err != nil {
		return nil, err
	}
	return reply.KVs, nil
}

// peer returns the pooled retrying client for a holder address, dialing
// lazily and evicting the least-recently-used peer beyond MaxPeerConns.
func (w *Worker) peer(addr string) *rclient {
	now := time.Now()
	w.mu.Lock()
	if pc, ok := w.peers[addr]; ok {
		pc.lastUse = now
		rc := pc.rc
		w.mu.Unlock()
		return rc
	}
	pol := w.cfg.Retry
	pol.MaxAttempts = w.cfg.FetchRetries
	rc := newRClient(w.tr, addr, pol, w.ctx.Done())
	w.peers[addr] = &peerConn{rc: rc, lastUse: now}
	evicted := w.evictPeersLocked(addr)
	w.mu.Unlock()
	for _, pc := range evicted {
		pc.rc.Close()
	}
	return rc
}

// evictPeersLocked trims the pool to MaxPeerConns, least-recently-used
// first, never evicting keep. Callers close the returned peers outside the
// lock; their counters are folded into the retired totals here.
func (w *Worker) evictPeersLocked(keep string) []*peerConn {
	var evicted []*peerConn
	for len(w.peers) > w.cfg.MaxPeerConns {
		oldest := ""
		for a, pc := range w.peers {
			if a == keep {
				continue
			}
			if oldest == "" || pc.lastUse.Before(w.peers[oldest].lastUse) {
				oldest = a
			}
		}
		if oldest == "" {
			break
		}
		pc := w.peers[oldest]
		delete(w.peers, oldest)
		ret, red := pc.rc.Stats()
		w.retiredPeerRetries += ret
		w.retiredPeerRedials += red
		evicted = append(evicted, pc)
	}
	return evicted
}

// evictIdlePeers closes pooled peer connections idle past the timeout —
// the fd-leak fix for long-lived workers that have fetched from many peers.
func (w *Worker) evictIdlePeers(now time.Time) {
	var idle []*peerConn
	w.mu.Lock()
	for a, pc := range w.peers {
		if now.Sub(pc.lastUse) > w.cfg.PeerIdleTimeout {
			delete(w.peers, a)
			ret, red := pc.rc.Stats()
			w.retiredPeerRetries += ret
			w.retiredPeerRedials += red
			idle = append(idle, pc)
		}
	}
	w.mu.Unlock()
	for _, pc := range idle {
		pc.rc.Close()
	}
}

// PeerConns reports the pooled peer connections (tests assert the bound).
func (w *Worker) PeerConns() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.peers)
}

// workerRPC is the worker's shuffle service.
type workerRPC struct {
	w *Worker
}

// Fetch serves one committed map task's sorted segment for one partition.
func (r *workerRPC) Fetch(args *FetchArgs, reply *FetchReply) error {
	w := r.w
	w.mu.Lock()
	parts := w.outs[outKey{args.QueryID, args.JobID, args.Task}]
	id := w.id
	w.mu.Unlock()
	if parts == nil {
		return fmt.Errorf("cluster: worker %d has no output for job %d task %d", id, args.JobID, args.Task)
	}
	if args.Partition < 0 || args.Partition >= len(parts) {
		return fmt.Errorf("cluster: partition %d out of range (%d)", args.Partition, len(parts))
	}
	reply.KVs = parts[args.Partition]
	return nil
}
