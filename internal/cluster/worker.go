package cluster

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"ntga/internal/engine"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// Addr is the address the worker's shuffle/Fetch endpoint binds;
	// port 0 picks a free port. Workers behind one master must be
	// mutually reachable at these addresses.
	Addr string
	// MapSlots/ReduceSlots are the concurrent task executors per kind.
	MapSlots    int
	ReduceSlots int
	// TaskDelay stretches every task by a fixed sleep — a throttle for
	// fault-injection tests that need time to kill a worker mid-job.
	TaskDelay time.Duration
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MapSlots == 0 {
		c.MapSlots = 2
	}
	if c.ReduceSlots == 0 {
		c.ReduceSlots = 2
	}
	return c
}

// outKey addresses one map task's committed output in the worker's store.
type outKey struct {
	qid   string
	jobID int64
	task  int
}

// queryPlan is a worker's rebuilt execution state for one query: the plan's
// jobs by name and the engine counters shared by every task of the query.
type queryPlan struct {
	jobs     map[string]*mapreduce.Job
	counters *mapreduce.Counters
}

// Worker executes leased task attempts against the master's DFS and serves
// its committed map output to peer workers.
type Worker struct {
	cfg        WorkerConfig
	tr         Transport
	masterAddr string
	master     *rpc.Client
	id         int
	dict       *rdf.Dict
	input      string
	hbEvery    time.Duration
	leaseEvery time.Duration

	ln     net.Listener
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu    sync.Mutex
	plans map[string]*queryPlan
	outs  map[outKey][][]mapreduce.KV
	peers map[string]*rpc.Client
}

// NewWorker prepares a worker that will register with the master at
// masterAddr over the transport (nil defaults to TCP).
func NewWorker(cfg WorkerConfig, tr Transport, masterAddr string) *Worker {
	if tr == nil {
		tr = TCP()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{
		cfg:        cfg.withDefaults(),
		tr:         tr,
		masterAddr: masterAddr,
		ctx:        ctx,
		cancel:     cancel,
		plans:      make(map[string]*queryPlan),
		outs:       make(map[outKey][][]mapreduce.KV),
		peers:      make(map[string]*rpc.Client),
	}
}

// Start registers with the master, rebuilds the dataset dictionary from the
// shipped terms, opens the Fetch endpoint, and launches the heartbeat and
// executor loops. It returns once the worker is serving.
func (w *Worker) Start() error {
	ln, err := w.tr.Listen(w.cfg.Addr)
	if err != nil {
		return err
	}
	w.ln = ln
	mc, err := dialRPC(w.tr, w.masterAddr)
	if err != nil {
		ln.Close()
		return fmt.Errorf("cluster: dialing master %s: %w", w.masterAddr, err)
	}
	w.master = mc
	var reply RegisterReply
	err = mc.Call("Master.Register", &RegisterArgs{
		Addr:        ln.Addr().String(),
		MapSlots:    w.cfg.MapSlots,
		ReduceSlots: w.cfg.ReduceSlots,
	}, &reply)
	if err != nil {
		mc.Close()
		ln.Close()
		return fmt.Errorf("cluster: registering with master: %w", err)
	}
	w.id = reply.Worker
	w.input = reply.Input
	w.hbEvery = reply.HeartbeatEvery
	w.leaseEvery = reply.LeaseEvery
	// Re-encoding the terms in shipped (ID) order reproduces the master's
	// IDs exactly; freezing catches any accidental divergence loudly.
	dict := rdf.NewDict()
	for _, t := range reply.Terms {
		dict.Encode(t)
	}
	dict.Freeze()
	w.dict = dict

	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &workerRPC{w}); err != nil {
		mc.Close()
		ln.Close()
		return err
	}
	go serveRPC(srv, ln)
	w.wg.Add(1)
	go w.heartbeatLoop()
	for i := 0; i < w.cfg.MapSlots; i++ {
		w.wg.Add(1)
		go w.executor("map")
	}
	for i := 0; i < w.cfg.ReduceSlots; i++ {
		w.wg.Add(1)
		go w.executor("reduce")
	}
	return nil
}

// ID is the master-assigned worker ID (valid after Start).
func (w *Worker) ID() int { return w.id }

// Addr is the worker's bound Fetch address (valid after Start).
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Close tears the worker down abruptly — the "kill -9" of the simulated
// cluster: loops stop, the Fetch listener closes, and every open RPC client
// fails its in-flight calls. No goodbye is sent; the master notices via
// missed heartbeats.
func (w *Worker) Close() {
	w.cancel()
	if w.ln != nil {
		w.ln.Close()
	}
	if w.master != nil {
		w.master.Close()
	}
	w.mu.Lock()
	peers := w.peers
	w.peers = make(map[string]*rpc.Client)
	w.mu.Unlock()
	for _, c := range peers {
		c.Close()
	}
}

// Wait blocks until the worker's loops have exited (after Close, or after
// the master became permanently unreachable).
func (w *Worker) Wait() { w.wg.Wait() }

func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.hbEvery)
	defer t.Stop()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-t.C:
			var reply HeartbeatReply
			if err := w.master.Call("Master.Heartbeat", &HeartbeatArgs{Worker: w.id}, &reply); err != nil {
				continue // master unreachable; keep trying until closed
			}
			w.prune(reply.LiveQueries)
		}
	}
}

// prune drops cached plans and map outputs of queries the master no longer
// tracks, bounding worker memory to the in-flight working set.
func (w *Worker) prune(live []string) {
	alive := make(map[string]bool, len(live))
	for _, q := range live {
		alive[q] = true
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for qid := range w.plans {
		if !alive[qid] {
			delete(w.plans, qid)
		}
	}
	for k := range w.outs {
		if !alive[k.qid] {
			delete(w.outs, k)
		}
	}
}

// executor is one task slot: lease, run, report, repeat. Map slots execute
// both "map" and "maponly" specs; the kind only selects the lease queue.
func (w *Worker) executor(kind string) {
	defer w.wg.Done()
	for {
		if w.ctx.Err() != nil {
			return
		}
		var reply LeaseReply
		err := w.master.Call("Master.Lease", &LeaseArgs{Worker: w.id, Kind: kind}, &reply)
		if err != nil || reply.Task == nil {
			select {
			case <-w.ctx.Done():
				return
			case <-time.After(w.leaseEvery):
			}
			continue
		}
		w.execute(reply.Task)
	}
}

// fetchError carries the map tasks whose output a reduce attempt could not
// retrieve, so the report triggers map re-execution rather than a blind
// retry against the same dead holder.
type fetchError struct {
	lost []int
}

func (e *fetchError) Error() string {
	return fmt.Sprintf("cluster: map output unavailable for tasks %v", e.lost)
}

// execute runs one leased attempt and reports the outcome with the query's
// current counter snapshot attached.
func (w *Worker) execute(ts *TaskSpec) {
	if w.cfg.TaskDelay > 0 {
		select {
		case <-w.ctx.Done():
			return
		case <-time.After(w.cfg.TaskDelay):
		}
	}
	start := time.Now()
	rep := &ReportArgs{
		Worker:  w.id,
		QueryID: ts.QueryID,
		JobID:   ts.JobID,
		Kind:    ts.Kind,
		Task:    ts.Task,
		Attempt: ts.Attempt,
	}
	err := w.runTask(ts, rep)
	rep.Duration = time.Since(start)
	if err != nil {
		rep.OK = false
		rep.Err = err.Error()
		if fe, ok := err.(*fetchError); ok {
			rep.LostMaps = fe.lost
		}
		rep.Outputs = nil
	} else {
		rep.OK = true
	}
	if qp := w.planCached(ts.QueryID); qp != nil {
		rep.Counters = qp.counters.Snapshot()
	}
	var ack ReportReply
	w.master.Call("Master.Report", rep, &ack) // a lost report re-queues via lease expiry
}

func (w *Worker) planCached(qid string) *queryPlan {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.plans[qid]
}

// planFor returns (building if needed) the worker's rebuilt plan for the
// query. The rebuild is deterministic given the query spec and the shipped
// dictionary, so every worker (and the master) agrees on each job's mapper,
// reducer, combiner, and partitioner semantics.
func (w *Worker) planFor(qid string, spec *QuerySpec) (*queryPlan, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if qp, ok := w.plans[qid]; ok {
		return qp, nil
	}
	q, err := compileSpec(spec, w.dict)
	if err != nil {
		return nil, err
	}
	eng, err := engineByName(spec.Engine, spec.PhiM)
	if err != nil {
		return nil, err
	}
	counters := mapreduce.NewCounters()
	var cl engine.Cleaner
	p, err := eng.Plan(q, spec.Input, &cl, counters)
	if err != nil {
		return nil, fmt.Errorf("cluster: rebuilding plan: %w", err)
	}
	stages, err := p.Lower()
	if err != nil {
		return nil, fmt.Errorf("cluster: lowering rebuilt plan: %w", err)
	}
	qp := &queryPlan{jobs: make(map[string]*mapreduce.Job), counters: counters}
	for _, st := range stages {
		for _, job := range st {
			if _, dup := qp.jobs[job.Name]; dup {
				return nil, fmt.Errorf("cluster: rebuilt plan has duplicate job name %q; cannot address tasks by name", job.Name)
			}
			qp.jobs[job.Name] = job
		}
	}
	w.plans[qid] = qp
	return qp, nil
}

// compileSpec rebuilds the compiled query from a spec against a dictionary.
func compileSpec(spec *QuerySpec, dict *rdf.Dict) (*query.Query, error) {
	pq, err := sparql.Parse(spec.Query)
	if err != nil {
		return nil, err
	}
	q, err := query.Compile(pq, dict)
	if err != nil {
		return nil, err
	}
	if spec.HasOrder {
		joins, err := q.JoinsForOrder(spec.Order)
		if err != nil {
			return nil, fmt.Errorf("cluster: applying join order: %w", err)
		}
		q.Joins = joins
	}
	return q, nil
}

// localInput translates a master-side input name into the worker's rebuilt
// job via position: intermediate file names differ per process (they come
// from a process-global counter), but each job's input list order is part
// of the deterministic plan.
func localInput(job *mapreduce.Job, ts *TaskSpec) (string, error) {
	for i, in := range ts.JobInputs {
		if in == ts.Split.Input {
			if i >= len(job.Inputs) {
				break
			}
			return job.Inputs[i], nil
		}
	}
	return "", fmt.Errorf("cluster: split input %q not in job %s's inputs %v (rebuilt %v)", ts.Split.Input, ts.JobName, ts.JobInputs, job.Inputs)
}

// runTask executes one attempt, filling the report's result fields.
func (w *Worker) runTask(ts *TaskSpec, rep *ReportArgs) error {
	qp, err := w.planFor(ts.QueryID, &ts.Spec)
	if err != nil {
		return err
	}
	job := qp.jobs[ts.JobName]
	if job == nil {
		return fmt.Errorf("cluster: rebuilt plan has no job %q", ts.JobName)
	}
	switch ts.Kind {
	case "map":
		input, err := localInput(job, ts)
		if err != nil {
			return err
		}
		recs, err := w.readSplit(ts.Split)
		if err != nil {
			return err
		}
		res, err := mapreduce.ExecMapTask(job, input, ts.NumReducers, mapreduce.SliceRecords(recs))
		if err != nil {
			return err
		}
		w.mu.Lock()
		w.outs[outKey{ts.QueryID, ts.JobID, ts.Task}] = res.Parts
		w.mu.Unlock()
		rep.Records = res.Records
		rep.Bytes = res.Bytes
		return nil
	case "maponly":
		input, err := localInput(job, ts)
		if err != nil {
			return err
		}
		recs, err := w.readSplit(ts.Split)
		if err != nil {
			return err
		}
		out, err := mapreduce.ExecMapOnlyTask(job, input, mapreduce.SliceRecords(recs))
		if err != nil {
			return err
		}
		rep.Outputs = out.Outputs
		rep.Records = out.Records
		rep.Bytes = out.Bytes
		return nil
	case "reduce":
		parts := make([][]mapreduce.KV, len(ts.Maps))
		var lost []int
		for i, ml := range ts.Maps {
			kvs, err := w.fetchMap(ts, ml)
			if err != nil {
				lost = append(lost, ml.Task)
				continue
			}
			parts[i] = kvs
		}
		if len(lost) > 0 {
			return &fetchError{lost: lost}
		}
		out, err := mapreduce.ExecReduceTask(job, parts)
		if err != nil {
			return err
		}
		rep.Outputs = out.Outputs
		rep.Groups = out.Groups
		rep.Records = out.Records
		rep.Bytes = out.Bytes
		rep.InPairs = out.InPairs
		rep.InBytes = out.InBytes
		return nil
	default:
		return fmt.Errorf("cluster: unknown task kind %q", ts.Kind)
	}
}

// readSplit pulls a map split's records through the master's DFS, charging
// the master-side read counters exactly as a local streamed scan would
// (a retried task re-charges its re-read).
func (w *Worker) readSplit(sp SplitSpec) ([][]byte, error) {
	var reply ReadRangeReply
	if err := w.master.Call("Master.ReadRange", &ReadRangeArgs{Name: sp.Input, Off: sp.Off, N: sp.N}, &reply); err != nil {
		return nil, fmt.Errorf("cluster: reading split %s[%d:+%d]: %w", sp.Input, sp.Off, sp.N, err)
	}
	return reply.Records, nil
}

// fetchMap retrieves one map task's segment for this reduce partition —
// from the local store when this worker ran the map, otherwise over the
// transport from the holder.
func (w *Worker) fetchMap(ts *TaskSpec, ml MapLoc) ([]mapreduce.KV, error) {
	key := outKey{ts.QueryID, ts.JobID, ml.Task}
	if ml.Worker == w.id {
		w.mu.Lock()
		parts := w.outs[key]
		w.mu.Unlock()
		if parts != nil {
			return parts[ts.Partition], nil
		}
		return nil, fmt.Errorf("cluster: own map output for task %d missing", ml.Task)
	}
	peer, err := w.peer(ml.Addr)
	if err != nil {
		return nil, err
	}
	var reply FetchReply
	err = peer.Call("Worker.Fetch", &FetchArgs{
		QueryID:   ts.QueryID,
		JobID:     ts.JobID,
		Task:      ml.Task,
		Partition: ts.Partition,
	}, &reply)
	if err != nil {
		w.dropPeer(ml.Addr, peer)
		return nil, err
	}
	return reply.KVs, nil
}

func (w *Worker) peer(addr string) (*rpc.Client, error) {
	w.mu.Lock()
	c := w.peers[addr]
	w.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := dialRPC(w.tr, addr)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	if old := w.peers[addr]; old != nil {
		w.mu.Unlock()
		c.Close()
		return old, nil
	}
	w.peers[addr] = c
	w.mu.Unlock()
	return c, nil
}

// dropPeer forgets a cached connection after a failed call, so the next
// fetch against the same address redials instead of reusing a dead pipe.
func (w *Worker) dropPeer(addr string, c *rpc.Client) {
	w.mu.Lock()
	if w.peers[addr] == c {
		delete(w.peers, addr)
	}
	w.mu.Unlock()
	c.Close()
}

// workerRPC is the worker's shuffle service.
type workerRPC struct {
	w *Worker
}

// Fetch serves one committed map task's sorted segment for one partition.
func (r *workerRPC) Fetch(args *FetchArgs, reply *FetchReply) error {
	w := r.w
	w.mu.Lock()
	parts := w.outs[outKey{args.QueryID, args.JobID, args.Task}]
	w.mu.Unlock()
	if parts == nil {
		return fmt.Errorf("cluster: worker %d has no output for job %d task %d", w.id, args.JobID, args.Task)
	}
	if args.Partition < 0 || args.Partition >= len(parts) {
		return fmt.Errorf("cluster: partition %d out of range (%d)", args.Partition, len(parts))
	}
	reply.KVs = parts[args.Partition]
	return nil
}
