package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"
)

// The retrying RPC client: net/rpc's Client is fatal-on-break (a severed
// connection poisons it with ErrShutdown forever), so every long-lived edge
// of the cluster — worker→master, worker→peer shuffle fetches, and the
// front-end client — calls through an rclient instead, which re-dials dead
// connections and retries transport failures with exponential backoff and
// full jitter under a per-call budget. Server-side method errors (the
// remote ran the call and said no) are never retried: the wire worked.

// RetryPolicy tunes one rclient's retry loop.
type RetryPolicy struct {
	// MaxAttempts bounds tries per call (first attempt included).
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the exponential backoff between
	// attempts; the actual sleep is drawn uniformly from (0, backoff] —
	// full jitter, so a healed partition is not greeted by a thundering
	// herd of synchronized retries.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Budget caps one call's total wall clock across attempts (0 = attempts
	// bound only).
	Budget time.Duration
	// Seed makes the jitter reproducible.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	return p
}

// errClientClosed marks calls abandoned because the owner shut down.
var errClientClosed = errors.New("cluster: rpc client closed")

// isTransportErr separates wire failures (retryable: the remote may never
// have seen the call) from everything the remote or the caller said
// (permanent). net/rpc wraps remote method errors as rpc.ServerError.
func isTransportErr(err error) bool {
	if err == nil {
		return false
	}
	var se rpc.ServerError
	if errors.As(err, &se) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, errClientClosed) {
		return false
	}
	return true
}

// rclient is a re-dialing RPC client for one remote address. Safe for
// concurrent use; all callers share one connection and any of them dropping
// it (after a transport error) makes the next attempt re-dial.
type rclient struct {
	tr   Transport
	addr string
	pol  RetryPolicy
	done <-chan struct{} // optional owner shutdown signal

	mu     sync.Mutex
	c      *rpc.Client
	rng    *rand.Rand
	dialed bool

	retries atomic.Int64 // attempts beyond the first, across calls
	redials atomic.Int64 // successful dials beyond the first
}

func newRClient(tr Transport, addr string, pol RetryPolicy, done <-chan struct{}) *rclient {
	pol = pol.withDefaults()
	seed := pol.Seed
	if seed == 0 {
		// Unseeded clients must NOT share a jitter stream: synchronized
		// backoff across a fleet is the thundering herd jitter exists to
		// break. Tests pin Seed for reproducibility.
		seed = time.Now().UnixNano()
	}
	return &rclient{
		tr:   tr,
		addr: addr,
		pol:  pol,
		done: done,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Stats reports the retry/redial counters.
func (rc *rclient) Stats() (retries, redials int64) {
	return rc.retries.Load(), rc.redials.Load()
}

// conn returns the live connection, dialing when there is none.
func (rc *rclient) conn() (*rpc.Client, error) {
	rc.mu.Lock()
	if rc.c != nil {
		c := rc.c
		rc.mu.Unlock()
		return c, nil
	}
	rc.mu.Unlock()
	c, err := dialRPC(rc.tr, rc.addr)
	if err != nil {
		return nil, err
	}
	rc.mu.Lock()
	if rc.c != nil { // raced with another caller's dial; keep theirs
		old := rc.c
		rc.mu.Unlock()
		c.Close()
		return old, nil
	}
	rc.c = c
	if rc.dialed {
		rc.redials.Add(1)
	}
	rc.dialed = true
	rc.mu.Unlock()
	return c, nil
}

// drop forgets a connection after a transport error so the next attempt
// re-dials instead of reusing a pipe stuck in ErrShutdown.
func (rc *rclient) drop(c *rpc.Client) {
	rc.mu.Lock()
	if rc.c == c {
		rc.c = nil
	}
	rc.mu.Unlock()
	c.Close()
}

// Close tears down the current connection; in-flight calls fail.
func (rc *rclient) Close() {
	rc.mu.Lock()
	c := rc.c
	rc.c = nil
	rc.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// backoff draws the full-jitter sleep before retry number n (0-based).
func (rc *rclient) backoff(n int) time.Duration {
	d := rc.pol.BaseBackoff
	for i := 0; i < n && d < rc.pol.MaxBackoff; i++ {
		d *= 2
	}
	if d > rc.pol.MaxBackoff || d <= 0 {
		d = rc.pol.MaxBackoff
	}
	rc.mu.Lock()
	j := time.Duration(rc.rng.Int63n(int64(d))) + 1
	rc.mu.Unlock()
	return j
}

func (rc *rclient) doneCh() <-chan struct{} {
	return rc.done // nil channel blocks forever — exactly what "no owner" means
}

// sleep waits d, abandoning early when the context or the owner dies.
func (rc *rclient) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-rc.doneCh():
		return errClientClosed
	case <-t.C:
		return nil
	}
}

// callOnce performs one attempt: (re)dial if needed, issue the call, wait.
func (rc *rclient) callOnce(ctx context.Context, method string, args, reply any) error {
	c, err := rc.conn()
	if err != nil {
		return err
	}
	call := c.Go(method, args, reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-rc.doneCh():
		return errClientClosed
	case <-call.Done:
	}
	if call.Error != nil {
		if isTransportErr(call.Error) {
			rc.drop(c)
		}
		return call.Error
	}
	return nil
}

// call runs the retry loop with an explicit attempt bound.
func (rc *rclient) call(ctx context.Context, method string, args, reply any, maxAttempts int) error {
	var deadline time.Time
	if rc.pol.Budget > 0 {
		deadline = time.Now().Add(rc.pol.Budget)
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			rc.retries.Add(1)
			if err := rc.sleep(ctx, rc.backoff(attempt-1)); err != nil {
				return fmt.Errorf("cluster: %s to %s abandoned: %w (last transport error: %v)", method, rc.addr, err, lastErr)
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				break
			}
		}
		err := rc.callOnce(ctx, method, args, reply)
		if err == nil {
			return nil
		}
		if !isTransportErr(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("cluster: %s to %s failed after retries: %w", method, rc.addr, lastErr)
}

// Call issues method with the policy's full retry budget.
func (rc *rclient) Call(ctx context.Context, method string, args, reply any) error {
	return rc.call(ctx, method, args, reply, rc.pol.MaxAttempts)
}

// CallNoRetry issues method exactly once — for calls whose side effects
// must not be replayed blindly (query submission: the caller decides what a
// broken wire means).
func (rc *rclient) CallNoRetry(ctx context.Context, method string, args, reply any) error {
	return rc.call(ctx, method, args, reply, 1)
}
