package cluster

import (
	"context"
	"fmt"

	"ntga/internal/ingest"
	"ntga/internal/mapreduce"
)

// ErrMasterLost marks a front-end call that could not reach the master (or
// lost it mid-call): the cluster substrate is unavailable, not the query
// wrong. It wraps mapreduce.ErrClusterUnavailable so servers can match the
// whole family with errors.Is and degrade — 503 the request, or fall back
// to local execution — instead of reporting a query failure.
var ErrMasterLost = fmt.Errorf("cluster: master lost: %w", mapreduce.ErrClusterUnavailable)

// Client is a front-end connection to a master: query submission and
// cluster status, used by ntga-run -cluster and ntga-serve -cluster. The
// underlying connection re-dials lazily, so a client outlives master
// restarts and healed partitions.
type Client struct {
	rc   *rclient
	addr string
}

// Dial connects to the master at addr (nil transport defaults to TCP).
// Dialing is verified eagerly so a bad address fails here, but the returned
// client re-dials on demand after any later connection loss.
func Dial(tr Transport, addr string) (*Client, error) {
	return DialRetry(tr, addr, RetryPolicy{})
}

// DialRetry is Dial with an explicit retry policy for Status (and the
// re-dial backoff of all calls).
func DialRetry(tr Transport, addr string, pol RetryPolicy) (*Client, error) {
	if tr == nil {
		tr = TCP()
	}
	rc := newRClient(tr, addr, pol, nil)
	if _, err := rc.conn(); err != nil {
		return nil, err
	}
	return &Client{rc: rc, addr: addr}, nil
}

// Addr is the master address this client dialed.
func (c *Client) Addr() string { return c.addr }

// Stats reports the transport-recovery counters this client has absorbed:
// retried calls and re-dials after connection loss.
func (c *Client) Stats() (retries, redials int64) { return c.rc.Stats() }

// Run submits a query and waits for the result. Submission is never
// replayed blindly — a query is not idempotent from out here (the master
// would run it twice) — so a broken wire before or during the call maps to
// ErrMasterLost and the caller decides (the serve layer turns it into 503 +
// Retry-After, or a local fallback). A cancelled context abandons the wait
// client-side; the master also enforces args.TimeoutMS on its own clock, so
// pass the deadline there to stop the actual work.
func (c *Client) Run(ctx context.Context, args *RunArgs) (*RunReply, error) {
	reply := new(RunReply)
	if err := c.rc.CallNoRetry(ctx, "Master.Run", args, reply); err != nil {
		if isTransportErr(err) {
			return nil, fmt.Errorf("%w: %v", ErrMasterLost, err)
		}
		return nil, err
	}
	return reply, nil
}

// Ingest submits one raw N-Triples batch to the master's versioned dataset
// store. Like Run, the call is never replayed blindly — appending a batch is
// not idempotent (a replay would double-ingest it) — so a broken wire maps
// to ErrMasterLost and the caller decides whether the batch landed (compare
// dataset versions via Status).
func (c *Client) Ingest(ctx context.Context, batch []byte) (*IngestReply, error) {
	reply := new(IngestReply)
	if err := c.rc.CallNoRetry(ctx, "Master.Ingest", &IngestArgs{Batch: batch}, reply); err != nil {
		if isTransportErr(err) {
			return nil, fmt.Errorf("%w: %v", ErrMasterLost, err)
		}
		return nil, err
	}
	return reply, nil
}

// Compact asks the master to fold its delta chain into a new base
// generation. Not retried for the same reason as Ingest: a replay would
// race the compaction it already triggered.
func (c *Client) Compact(ctx context.Context) (*ingest.CompactResult, error) {
	reply := new(CompactReply)
	if err := c.rc.CallNoRetry(ctx, "Master.Compact", &CompactArgs{}, reply); err != nil {
		if isTransportErr(err) {
			return nil, fmt.Errorf("%w: %v", ErrMasterLost, err)
		}
		return nil, err
	}
	return &reply.Result, nil
}

// Status fetches the master's cluster snapshot, retrying transient
// transport failures (status is idempotent). Exhausted retries map to
// ErrMasterLost — the health prober's "down" signal.
func (c *Client) Status(ctx context.Context) (*StatusReply, error) {
	reply := new(StatusReply)
	if err := c.rc.Call(ctx, "Master.Status", &StatusArgs{}, reply); err != nil {
		if isTransportErr(err) {
			return nil, fmt.Errorf("%w: %v", ErrMasterLost, err)
		}
		return nil, err
	}
	return reply, nil
}

// Close tears down the connection.
func (c *Client) Close() { c.rc.Close() }
