package cluster

import (
	"context"
	"net/rpc"
)

// Client is a front-end connection to a master: query submission and
// cluster status, used by ntga-run -cluster and ntga-serve -cluster.
type Client struct {
	c    *rpc.Client
	addr string
}

// Dial connects to the master at addr (nil transport defaults to TCP).
func Dial(tr Transport, addr string) (*Client, error) {
	if tr == nil {
		tr = TCP()
	}
	c, err := dialRPC(tr, addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, addr: addr}, nil
}

// Addr is the master address this client dialed.
func (c *Client) Addr() string { return c.addr }

// Run submits a query and waits for the result. A cancelled context
// abandons the wait client-side; the master also enforces args.TimeoutMS
// on its own clock, so pass the deadline there to stop the actual work.
func (c *Client) Run(ctx context.Context, args *RunArgs) (*RunReply, error) {
	reply := new(RunReply)
	call := c.c.Go("Master.Run", args, reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	case <-call.Done:
	}
	if call.Error != nil {
		return nil, call.Error
	}
	return reply, nil
}

// Status fetches the master's cluster snapshot.
func (c *Client) Status(ctx context.Context) (*StatusReply, error) {
	reply := new(StatusReply)
	call := c.c.Go("Master.Status", &StatusArgs{}, reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	case <-call.Done:
	}
	if call.Error != nil {
		return nil, call.Error
	}
	return reply, nil
}

// Close tears down the connection.
func (c *Client) Close() { c.c.Close() }
