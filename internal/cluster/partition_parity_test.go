// Partitioned-layout execution over the distributed cluster: the same query
// run flat (NoPartition) and over the master's bucketed layout must agree
// row-for-row, the map-only cycles must move zero shuffle bytes, and the
// lease scheduler must show bucket affinity.
package cluster_test

import (
	"context"
	"sort"
	"testing"
	"time"

	"ntga/internal/cluster"
	"ntga/internal/enginetest"
	"ntga/internal/query"
	"ntga/internal/refengine"
)

var partitionQueries = []struct {
	name string
	src  string
	// mapOnlyJobs is how many leading workflow jobs must be shuffle-free
	// on the partitioned path (group cycle + served joins).
	mapOnlyJobs int
	// allMapOnly marks a fully-served SELECT chain: zero shuffle overall.
	allMapOnly bool
}{
	{"OS join chain", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ex:xGO ?go .
  ?go ex:label ?gol . ?go ex:type ?t .
}`, 2, true},
	{"OO join falls back", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?a ex:label ?al . ?a ex:xGO ?x .
  ?b ex:synonym ?bs . ?b ex:xGO ?x .
}`, 1, false},
	{"unbound-object join", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ?p ?x .
  ?x ex:type ?t . ?x ex:label ?xl .
}`, 2, true},
	{"count over served join", `
PREFIX ex: <http://ex/>
SELECT (COUNT(*) AS ?n) WHERE {
  ?g ex:label ?gl . ?g ex:xGO ?go .
  ?go ex:type ?t .
}`, 2, false},
}

func sortedText(rows []string) []string {
	out := append([]string(nil), rows...)
	sort.Strings(out)
	return out
}

func TestClusterPartitionedParity(t *testing.T) {
	ctx := context.Background()
	g := enginetest.BioGraph()
	tc := startTestCluster(t, g, 3,
		cluster.WorkerConfig{MapSlots: 2, ReduceSlots: 2},
		cluster.MasterConfig{Reducers: parityReducers, SplitRecords: paritySplit, PartitionBuckets: 4})

	for _, pq := range partitionQueries {
		t.Run(pq.name, func(t *testing.T) {
			flat, err := tc.client.Run(ctx, &cluster.RunArgs{
				Query: pq.src, Engine: "ntga-lazy", TimeoutMS: 60_000, NoPartition: true,
			})
			if err != nil {
				t.Fatalf("flat run: %v", err)
			}
			part, err := tc.client.Run(ctx, &cluster.RunArgs{
				Query: pq.src, Engine: "ntga-lazy", TimeoutMS: 60_000,
			})
			if err != nil {
				t.Fatalf("partitioned run: %v", err)
			}
			if flat.IsCount != part.IsCount || flat.Count != part.Count {
				t.Errorf("count mismatch: flat %d, partitioned %d", flat.Count, part.Count)
			}
			if !query.RowsEqual(flat.Rows, part.Rows) {
				t.Errorf("rows differ:\n%s", query.DiffRows(flat.Rows, part.Rows, 5))
			}
			ft, pt := sortedText(flat.RowsText), sortedText(part.RowsText)
			if len(ft) != len(pt) {
				t.Fatalf("rendered rows: flat %d, partitioned %d", len(ft), len(pt))
			}
			for i := range ft {
				if ft[i] != pt[i] {
					t.Fatalf("rendered row %d differs:\n flat: %s\n part: %s", i, ft[i], pt[i])
				}
			}
			if !part.IsCount {
				q := enginetest.Compile(t, g, pq.src)
				if !query.RowsEqual(refengine.Evaluate(q, g), part.Rows) {
					t.Error("partitioned rows diverge from reference")
				}
			}
			for i := 0; i < pq.mapOnlyJobs && i < len(part.Workflow.Jobs); i++ {
				jm := part.Workflow.Jobs[i]
				if !jm.MapOnly {
					t.Errorf("job %d (%s) not map-only", i, jm.Job)
				}
				if jm.MapOutputBytes != 0 {
					t.Errorf("job %d (%s) shuffled %d bytes", i, jm.Job, jm.MapOutputBytes)
				}
			}
			if pq.allMapOnly {
				if got := part.Workflow.TotalMapOutputBytes(); got != 0 {
					t.Errorf("TotalMapOutputBytes = %d, want 0", got)
				}
			}
			if flat.Workflow.TotalMapOutputBytes() == 0 && !flat.IsCount {
				t.Error("flat baseline moved no shuffle bytes; test is vacuous")
			}
		})
	}
}

// TestClusterBucketAffinity runs a partitioned multi-join query on a single
// worker: every bucket of the join cycles was already processed by that
// worker in the group cycle, so the scheduler must record affine leases.
func TestClusterBucketAffinity(t *testing.T) {
	ctx := context.Background()
	g := enginetest.BioGraph()
	tc := startTestCluster(t, g, 1,
		cluster.WorkerConfig{MapSlots: 2, ReduceSlots: 2},
		cluster.MasterConfig{Reducers: parityReducers, SplitRecords: paritySplit, PartitionBuckets: 4})

	if _, err := tc.client.Run(ctx, &cluster.RunArgs{
		Query:     partitionQueries[0].src,
		Engine:    "ntga-lazy",
		TimeoutMS: 60_000,
	}); err != nil {
		t.Fatal(err)
	}
	st, err := tc.client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.AffineLeases == 0 {
		t.Error("no affine leases recorded for bucket-aligned join cycles")
	}
}

// TestClusterPartitionedKillRecovery kills a worker while a partitioned
// query is in flight; the run must still match the flat answer.
func TestClusterPartitionedKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed kill round")
	}
	ctx := context.Background()
	g := enginetest.BioGraph()
	tc := startTestCluster(t, g, 3,
		cluster.WorkerConfig{MapSlots: 1, ReduceSlots: 1, TaskDelay: 10 * time.Millisecond},
		cluster.MasterConfig{Reducers: parityReducers, SplitRecords: paritySplit, PartitionBuckets: 8})

	src := partitionQueries[0].src
	q := enginetest.Compile(t, g, src)
	want := refengine.Evaluate(q, g)

	type outcome struct {
		reply *cluster.RunReply
		err   error
	}
	resCh := make(chan outcome, 1)
	go func() {
		reply, err := tc.client.Run(ctx, &cluster.RunArgs{
			Query: src, Engine: "ntga-lazy", TimeoutMS: 120_000,
		})
		resCh <- outcome{reply, err}
	}()
	// Land the kill mid-query when the timing allows; if the query wins the
	// race the run is still a (vacuous) parity check.
	time.Sleep(30 * time.Millisecond)
	tc.workers[2].Close()

	o := <-resCh
	if o.err != nil {
		t.Fatalf("partitioned query did not survive the worker kill: %v", o.err)
	}
	if !query.RowsEqual(want, o.reply.Rows) {
		t.Errorf("post-kill partitioned rows diverge from reference:\n%s", query.DiffRows(want, o.reply.Rows, 5))
	}
}
