// Distributed ingest parity: a live 3-worker cluster accepts N-Triples
// batches mid-serving, queries see base ∪ delta rows byte-identical to a
// local run over the same versioned store, workers learn newly minted
// dictionary terms lazily (Master.Sync), and delta-merge compaction leaves
// the servable content — and every row — unchanged.
package cluster_test

import (
	"context"
	"strings"
	"testing"

	"ntga/internal/bench"
	"ntga/internal/cluster"
	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/hdfs"
	"ntga/internal/ingest"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
)

const ingestParityBatch = `<http://ex/gene1> <http://ex/xGO> <http://ex/go0> .
<http://ex/gene9> <http://ex/label> "gene 9 label" .
<http://ex/gene9> <http://ex/xGO> <http://ex/go7> .
<http://ex/go7> <http://ex/label> "go term 7" .
<http://ex/go7> <http://ex/type> <http://ex/GOTerm> .
`

const ingestParityQuery = `PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?gl . ?g ex:xGO ?go . ?go ex:label ?gol . }`

// newTermQuery pins a constant minted by the batch: a worker that has not
// synced the ingested dictionary terms cannot even compile it correctly.
const newTermQuery = `PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:xGO ex:go7 . ?g ex:label ?gl . }`

// runLocalDeltas is the local reference for the distributed delta overlay:
// an identically-built graph (same construction order, so the dictionaries
// assign identical IDs), the same versioned store, the same engine knobs.
func runLocalDeltas(t *testing.T, src string, batches []string) *engine.Result {
	t.Helper()
	g := enginetest.BioGraph()
	mr := mapreduce.NewEngine(
		hdfs.New(hdfs.Config{Nodes: 8}),
		mapreduce.EngineConfig{DefaultReducers: parityReducers, SplitRecords: paritySplit},
	)
	const input = "data/triples"
	if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
		t.Fatal(err)
	}
	st, err := ingest.Init(mr.DFS(), input, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := st.Ingest(strings.NewReader(b)); err != nil {
			t.Fatal(err)
		}
	}
	q := enginetest.Compile(t, g, src)
	eng, err := bench.EngineByName("ntga-lazy", 0)
	if err != nil {
		t.Fatal(err)
	}
	man := st.Manifest()
	res, err := engine.RunWithDeltas(eng, mr, q, man.Base, man.DeltaFiles(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDistributedIngestParity(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed ingest round")
	}
	ctx := context.Background()
	g := enginetest.BioGraph()
	tc := startTestCluster(t, g, 3,
		cluster.WorkerConfig{MapSlots: 2, ReduceSlots: 2},
		cluster.MasterConfig{Reducers: parityReducers, SplitRecords: paritySplit})

	run := func(src string) *cluster.RunReply {
		t.Helper()
		reply, err := tc.client.Run(ctx, &cluster.RunArgs{
			Query:        src,
			Engine:       "ntga-lazy",
			Reducers:     parityReducers,
			SplitRecords: paritySplit,
			TimeoutMS:    120_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return reply
	}

	// Prime the fleet on the boot version so the ingest lands on workers
	// holding cached plans and a pre-ingest dictionary.
	before := run(ingestParityQuery)
	st, err := tc.client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bootVer := st.DatasetVersion

	reply, err := tc.client.Ingest(ctx, []byte(ingestParityBatch))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Triples != 5 || reply.DeltaBlocks != 1 {
		t.Fatalf("ingest reply = %+v, want 5 triples / 1 block", reply)
	}
	if reply.DatasetVersion == bootVer {
		t.Error("ingest did not move the cluster dataset version")
	}
	st, err = tc.client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DatasetVersion != reply.DatasetVersion {
		t.Errorf("status version %s != ingest version %s", st.DatasetVersion, reply.DatasetVersion)
	}

	// The overlay query sees the delta rows, byte-identical to the local
	// versioned store.
	after := run(ingestParityQuery)
	localAfter := runLocalDeltas(t, ingestParityQuery, []string{ingestParityBatch})
	if len(after.Rows) <= len(before.Rows) {
		t.Errorf("rows %d -> %d across ingest, want growth from the delta", len(before.Rows), len(after.Rows))
	}
	if !sameRows(localAfter.Rows, after.Rows) {
		t.Errorf("distributed delta rows not byte-identical to local (local %d, distributed %d)",
			len(localAfter.Rows), len(after.Rows))
	}

	// A query pinning a term the batch minted forces every worker through
	// the dictionary sync path before it can rebuild the plan.
	newTerm := run(newTermQuery)
	localNew := runLocalDeltas(t, newTermQuery, []string{ingestParityBatch})
	if len(newTerm.Rows) == 0 {
		t.Error("query over the ingested term returned no rows (stale worker dictionaries?)")
	}
	if !sameRows(localNew.Rows, newTerm.Rows) {
		t.Errorf("new-term rows not byte-identical to local (local %d, distributed %d)",
			len(localNew.Rows), len(newTerm.Rows))
	}

	// Compaction folds the chain without changing content: the version and
	// every row stay put, and the plan goes back to map-only-eligible shape.
	cres, err := tc.client.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Folded != 1 || cres.FoldedTriples != 5 {
		t.Errorf("compaction = %+v, want 1 block / 5 triples folded", cres)
	}
	st, err = tc.client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DatasetVersion != reply.DatasetVersion {
		t.Errorf("compaction moved the dataset version %s -> %s", reply.DatasetVersion, st.DatasetVersion)
	}
	compacted := run(ingestParityQuery)
	if !sameRows(after.Rows, compacted.Rows) {
		t.Error("post-compaction rows differ from delta-overlay rows")
	}

	// A second ingest on top of the compacted base keeps the chain going.
	second, err := tc.client.Ingest(ctx, []byte("<http://ex/gene9> <http://ex/xGO> <http://ex/go0> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	if second.DeltaBlocks != 1 {
		t.Errorf("post-compaction ingest chain length = %d, want 1", second.DeltaBlocks)
	}
	final := run(ingestParityQuery)
	localFinal := runLocalDeltas(t, ingestParityQuery, []string{ingestParityBatch, "<http://ex/gene9> <http://ex/xGO> <http://ex/go0> .\n"})
	if !sameRows(localFinal.Rows, final.Rows) {
		t.Error("second-generation delta rows not byte-identical to local")
	}
	if !query.RowsEqual(localFinal.Rows, final.Rows) {
		t.Error("second-generation delta rows diverge as multisets")
	}
}
