package cluster

import (
	"context"
	"errors"
	"net/rpc"
	"testing"
	"time"
)

// fastRetry keeps test retry loops snappy and reproducible.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 1}

func TestRClientRedialsAcrossSeveredConnection(t *testing.T) {
	n := NewChaosNetwork(NetFaultPlan{})
	addr := serveEcho(t, n.Transport("srv", nil))
	rc := newRClient(n.Transport("cli", nil), addr, fastRetry, nil)
	defer rc.Close()

	call := func(ctx context.Context) error {
		in, out := "ping", ""
		return rc.Call(ctx, "Echo.Echo", &in, &out)
	}
	if err := call(context.Background()); err != nil {
		t.Fatalf("first call: %v", err)
	}

	// Cut the edge under the live connection: calls must fail with a
	// transport error while partitioned (net/rpc would stay poisoned with
	// ErrShutdown forever).
	n.Partition("cli", "srv")
	if err := call(context.Background()); err == nil {
		t.Fatal("call succeeded across a partition")
	}

	// Heal: the same client must recover by re-dialing — the whole point
	// of the retrying layer.
	n.Heal("cli", "srv")
	if err := call(context.Background()); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
	retries, redials := rc.Stats()
	if retries == 0 {
		t.Error("no retries recorded though the partition forced failures")
	}
	if redials == 0 {
		t.Error("no redials recorded though the connection was severed")
	}
}

func TestRClientDoesNotRetryServerErrors(t *testing.T) {
	addr := serveEcho(t, TCP())
	rc := newRClient(TCP(), addr, fastRetry, nil)
	defer rc.Close()
	in, out := "nope", ""
	err := rc.Call(context.Background(), "Echo.Fail", &in, &out)
	var se rpc.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want rpc.ServerError", err)
	}
	if retries, _ := rc.Stats(); retries != 0 {
		t.Errorf("server-side method error was retried %d times; the wire worked", retries)
	}
}

func TestRClientContextCancelAborts(t *testing.T) {
	// Dialing a partitioned edge fails every attempt; a cancelled context
	// must cut the backoff sleeps short instead of serving the full budget.
	n := NewChaosNetwork(NetFaultPlan{})
	addr := serveEcho(t, n.Transport("srv", nil))
	n.Partition("cli", "srv")
	pol := fastRetry
	pol.BaseBackoff = 50 * time.Millisecond
	pol.MaxBackoff = time.Second
	rc := newRClient(n.Transport("cli", nil), addr, pol, nil)
	defer rc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	in, out := "ping", ""
	err := rc.Call(ctx, "Echo.Echo", &in, &out)
	if err == nil {
		t.Fatal("call succeeded across a partition")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if e := time.Since(start); e > time.Second {
		t.Errorf("cancelled call still took %v", e)
	}
}

func TestRClientTransportErrClassification(t *testing.T) {
	if isTransportErr(nil) {
		t.Error("nil classified as transport error")
	}
	if isTransportErr(rpc.ServerError("cluster: unknown worker 3")) {
		t.Error("rpc.ServerError classified as transport error")
	}
	if isTransportErr(context.Canceled) || isTransportErr(context.DeadlineExceeded) {
		t.Error("context errors classified as transport errors")
	}
	if !isTransportErr(rpc.ErrShutdown) {
		t.Error("rpc.ErrShutdown not classified as transport error")
	}
	if !isTransportErr(errors.New("read tcp: connection reset by peer")) {
		t.Error("net error not classified as transport error")
	}
}
