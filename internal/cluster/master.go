package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"time"

	"ntga/internal/engine"
	"ntga/internal/hdfs"
	"ntga/internal/ingest"
	"ntga/internal/mapreduce"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/sparql"
	"ntga/internal/trace"
)

// MasterConfig tunes the coordinator.
type MasterConfig struct {
	// Nodes/Replication shape the master-resident simulated DFS.
	Nodes       int
	Replication int
	// Reducers and SplitRecords are the per-query defaults (a RunArgs can
	// override both).
	Reducers     int
	SplitRecords int
	// DefaultEngine answers RunArgs with an empty engine name.
	DefaultEngine string
	// PartitionBuckets, when > 0, makes the master build the partitioned
	// triple layout at boot (a one-time load job over its own DFS) and run
	// queries against it by default (RunArgs.NoPartition opts out per query).
	PartitionBuckets int
	// LeaseTimeout bounds one task attempt: a lease not reported back in
	// time is re-queued (the worker may still be alive but stuck).
	LeaseTimeout time.Duration
	// HeartbeatTimeout declares a silent worker dead; its leases and its
	// committed map outputs for unfinished jobs are re-queued.
	HeartbeatTimeout time.Duration
	// SweepEvery is the liveness/deadline sweep interval.
	SweepEvery time.Duration
	// HeartbeatEvery/LeaseEvery are advertised to workers at registration:
	// how often to ping, and how long to idle between empty lease polls.
	HeartbeatEvery time.Duration
	LeaseEvery     time.Duration
	// MaxTaskAttempts is the per-task attempt budget; a task whose budget
	// is spent fails its job.
	MaxTaskAttempts int
	// Tracer, when non-nil, records per-lease task spans under each job's
	// span, with the worker ID in the node column.
	Tracer *trace.Tracer
	// Transport carries all cluster RPC; nil defaults to TCP.
	Transport Transport
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.Replication == 0 {
		c.Replication = 1
	}
	if c.Reducers == 0 {
		c.Reducers = 8
	}
	if c.SplitRecords == 0 {
		c.SplitRecords = 8192
	}
	if c.DefaultEngine == "" {
		c.DefaultEngine = "ntga-lazy"
	}
	if c.LeaseTimeout == 0 {
		c.LeaseTimeout = 10 * time.Second
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 2 * time.Second
	}
	if c.SweepEvery == 0 {
		c.SweepEvery = 100 * time.Millisecond
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.LeaseEvery == 0 {
		c.LeaseEvery = 25 * time.Millisecond
	}
	if c.MaxTaskAttempts == 0 {
		c.MaxTaskAttempts = 4
	}
	if c.Transport == nil {
		c.Transport = TCP()
	}
	return c
}

// workerState is the master's view of one registered worker.
type workerState struct {
	id          int
	addr        string
	mapSlots    int
	reduceSlots int
	mapBusy     int
	reduceBusy  int
	alive       bool
	lastBeat    time.Time
	tasksDone   int64
	tasksFailed int64
	// Transport-recovery totals shipped in heartbeats. Cumulative on the
	// worker and max-merged here (heartbeats can arrive out of order).
	rpcRetries   int64
	redials      int64
	fetchRetries int64
}

// queryState tracks one in-flight query: its rebuild spec (shipped inside
// every TaskSpec) and the latest engine-counter snapshot per worker.
type queryState struct {
	id       string
	spec     QuerySpec
	counters map[int]map[string]int64
	// bucketHolder remembers, per layout bucket, the worker that last
	// completed a whole-file task over it in this query — later bucket
	// jobs of the same query lease those buckets back to it (affinity).
	bucketHolder map[int]int
}

// taskState is one task of one job instance.
type taskState struct {
	done     bool
	leased   bool
	worker   int // current lease holder (valid while leased)
	holder   int // worker holding committed map output (-1 = none)
	attempts int
	deadline time.Time
	span     *trace.Span
	dur      time.Duration
	inPairs  int64
	inBytes  int64
	groups   int64
}

// jobState is one job instance being scheduled across the workers. It is
// the distributed counterpart of the local engine's per-job run state.
type jobState struct {
	qid    string
	id     int64
	job    *mapreduce.Job
	jsp    *trace.Span
	splits []SplitSpec
	// mapKind is "map" or "maponly"; nReducers is 0 for map-only jobs.
	// wholeFile marks bucket-aligned jobs (task index == bucket index).
	wholeFile bool
	mapKind   string
	nReducers int
	maps      []*taskState
	reduces   []*taskState
	mapsDone  int

	finished bool
	err      error
	doneCh   chan struct{}

	// written tracks the part files committed so far, for failure cleanup.
	written map[string]bool

	mapRecords, mapBytes int64
	outRecords, outBytes int64
	groups               int64
	retries, recoveries  int64
}

// settleLocked finishes the job exactly once (m.mu held).
func (js *jobState) settleLocked(err error) {
	if js.finished || js.err != nil {
		return
	}
	if err == nil {
		js.finished = true
	} else {
		js.err = err
	}
	close(js.doneCh)
}

// Master is the coordinator: it owns the DFS and the dataset dictionary,
// compiles and plans queries, and leases task attempts to workers.
type Master struct {
	cfg     MasterConfig
	dfs     *hdfs.DFS
	dict    *rdf.Dict
	input   string
	catalog *plan.Catalog
	version string
	triples int64
	part    *plan.Partitioning

	// store owns the versioned dataset manifest and delta-block write path;
	// catState is the mergeable catalog accumulator ingests fold into.
	// lineage remembers every dataset version this master has ever served
	// (boot plus each ingest), so a worker returning from a partition that
	// missed some ingests can still prove it holds a prefix of this dataset.
	// ingestMu serializes Ingest/Compact against each other.
	store    *ingest.Store
	catState *plan.CatalogState
	lineage  map[string]bool
	ingestMu sync.Mutex

	ln     net.Listener
	conns  *connSet
	ctx    context.Context
	cancel context.CancelFunc

	mu              sync.Mutex
	workers         map[int]*workerState
	queries         map[string]*queryState
	jobs            []*jobState // registration order: earlier jobs lease first
	workerSeq       int
	querySeq        int64
	jobSeq          int64
	workersLost     int64
	tasksDispatched int64
	reregistrations int64
	affineLeases    int64
}

// NewMaster builds a coordinator over the given graph: the triples are
// loaded into a fresh master-resident DFS and the statistics catalog is
// built for the "auto" engine advisor.
func NewMaster(cfg MasterConfig, g *rdf.Graph) (*Master, error) {
	cfg = cfg.withDefaults()
	dfs := hdfs.New(hdfs.Config{Nodes: cfg.Nodes, Replication: cfg.Replication})
	const input = "data/triples"
	if err := engine.LoadGraph(dfs, input, g); err != nil {
		return nil, fmt.Errorf("cluster: loading graph: %w", err)
	}
	var part *plan.Partitioning
	if cfg.PartitionBuckets > 0 {
		loadMR := mapreduce.NewEngine(dfs, mapreduce.EngineConfig{
			DefaultReducers: cfg.Reducers, SplitRecords: cfg.SplitRecords,
		})
		var err error
		part, err = plan.BuildPartitionLayout(loadMR, input, "part/T", cfg.PartitionBuckets, g.Version())
		if err != nil {
			return nil, fmt.Errorf("cluster: building partition layout: %w", err)
		}
	}
	store, err := ingest.Init(dfs, input, g)
	if err != nil {
		return nil, fmt.Errorf("cluster: initializing dataset manifest: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Master{
		cfg:      cfg,
		dfs:      dfs,
		dict:     g.Dict,
		input:    input,
		catalog:  plan.FromGraph(g),
		version:  g.Version(),
		triples:  int64(g.Len()),
		part:     part,
		store:    store,
		catState: plan.StateFromGraph(g),
		lineage:  map[string]bool{g.Version(): true},
		ctx:      ctx,
		cancel:   cancel,
		workers:  make(map[int]*workerState),
		queries:  make(map[string]*queryState),
	}, nil
}

// Serve starts the master's RPC endpoint and its liveness sweeper. It
// returns once listening; Addr reports the bound address.
func (m *Master) Serve(addr string) error {
	ln, err := m.cfg.Transport.Listen(addr)
	if err != nil {
		return err
	}
	m.ln = ln
	m.conns = newConnSet()
	srv := rpc.NewServer()
	if err := srv.RegisterName("Master", &masterRPC{m}); err != nil {
		ln.Close()
		return err
	}
	go serveRPCTracked(srv, ln, m.conns)
	go m.sweeper()
	return nil
}

// Addr is the bound RPC address (valid after Serve).
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Close stops the master like a process death: in-flight jobs fail, the
// sweeper exits, the listener closes, and every accepted connection is
// severed — workers and front-ends see transport errors immediately instead
// of talking to a ghost over surviving pipes.
func (m *Master) Close() {
	m.cancel()
	if m.ln != nil {
		m.ln.Close()
	}
	if m.conns != nil {
		m.conns.closeAll()
	}
}

// DFS exposes the master-resident file system (status/metrics surfaces).
func (m *Master) DFS() *hdfs.DFS { return m.dfs }

func (m *Master) sweeper() {
	t := time.NewTicker(m.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-t.C:
			m.sweep(time.Now())
		}
	}
}

// sweep expires silent workers and overdue leases.
func (m *Master) sweep(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.workers {
		if w.alive && now.Sub(w.lastBeat) > m.cfg.HeartbeatTimeout {
			w.alive = false
			w.mapBusy, w.reduceBusy = 0, 0
			m.workersLost++
			m.requeueWorkerLocked(w.id)
		}
	}
	for _, js := range m.jobs {
		if js.finished || js.err != nil {
			continue
		}
		for i, ts := range js.maps {
			if ts.leased && now.After(ts.deadline) {
				m.expireLeaseLocked(js, ts, js.mapKind, i)
			}
		}
		for p, ts := range js.reduces {
			if ts.leased && now.After(ts.deadline) {
				m.expireLeaseLocked(js, ts, "reduce", p)
			}
		}
	}
}

// expireLeaseLocked re-queues one overdue lease, failing the job when the
// task's attempt budget is spent.
func (m *Master) expireLeaseLocked(js *jobState, ts *taskState, kind string, idx int) {
	ts.leased = false
	ts.span.Finish()
	ts.span = nil
	if w := m.workers[ts.worker]; w != nil && w.alive {
		decBusy(w, kind)
	}
	if ts.attempts >= m.cfg.MaxTaskAttempts {
		js.settleLocked(fmt.Errorf("cluster: %s task %d: lease expired after %d attempts", kind, idx, ts.attempts))
	}
}

// requeueWorkerLocked returns a dead worker's work to the queue: its
// current leases, and — for unfinished shuffle jobs — the committed map
// outputs only it can serve, which must be re-executed elsewhere before any
// remaining reduce can run (Hadoop's map-output re-execution).
func (m *Master) requeueWorkerLocked(id int) {
	for _, js := range m.jobs {
		if js.finished || js.err != nil {
			continue
		}
		fail := func(ts *taskState, kind string, idx int) {
			if ts.leased && ts.worker == id {
				ts.leased = false
				ts.span.Finish()
				ts.span = nil
				if ts.attempts >= m.cfg.MaxTaskAttempts {
					js.settleLocked(fmt.Errorf("cluster: %s task %d: worker %d lost after %d attempts", kind, idx, id, ts.attempts))
				}
			}
		}
		for i, ts := range js.maps {
			fail(ts, js.mapKind, i)
			if js.mapKind == "map" && ts.done && ts.holder == id {
				ts.done = false
				ts.holder = -1
				js.mapsDone--
				js.recoveries++
			}
		}
		for p, ts := range js.reduces {
			fail(ts, "reduce", p)
		}
	}
}

func decBusy(w *workerState, kind string) {
	switch kind {
	case "reduce":
		if w.reduceBusy > 0 {
			w.reduceBusy--
		}
	default:
		if w.mapBusy > 0 {
			w.mapBusy--
		}
	}
}

// ---- RPC surface ----

// masterRPC is the net/rpc receiver; it keeps the RPC method set separate
// from the Master's own API.
type masterRPC struct {
	m *Master
}

func (r *masterRPC) Register(args *RegisterArgs, reply *RegisterReply) error {
	m := r.m
	m.mu.Lock()
	if args.KnownVersion != "" && !m.lineage[args.KnownVersion] {
		// The worker's dictionary was built against a dataset this master
		// has never served — not even as an ancestor version. Its IDs would
		// silently mean different terms; refuse loudly.
		m.mu.Unlock()
		return fmt.Errorf("cluster: worker holds dataset %s, which is not in this master's version lineage (different dataset)", args.KnownVersion)
	}
	var w *workerState
	if args.PrevWorker != 0 {
		m.reregistrations++
		// A returning worker after a healed partition: revive the existing
		// record in place — same ID, so slots are not double-counted and its
		// committed map outputs stay addressed. Busy counters were zeroed
		// when the sweep declared it dead; if the sweep never fired (the
		// partition healed fast), the leases it still holds settle normally.
		// The address must match: a restarted master reassigns ids from 1,
		// so another returning worker's stale id could otherwise collide
		// with — and silently steal — a freshly created record.
		if prev := m.workers[args.PrevWorker]; prev != nil && prev.addr == args.Addr {
			w = prev
		}
	}
	if w != nil {
		w.addr = args.Addr
		w.mapSlots = args.MapSlots
		w.reduceSlots = args.ReduceSlots
		w.alive = true
		w.lastBeat = time.Now()
	} else {
		// First registration — or a PrevWorker this master does not know
		// (it restarted and lost its fleet table): assign a fresh ID.
		m.workerSeq++
		w = &workerState{
			id:          m.workerSeq,
			addr:        args.Addr,
			mapSlots:    args.MapSlots,
			reduceSlots: args.ReduceSlots,
			alive:       true,
			lastBeat:    time.Now(),
		}
		m.workers[w.id] = w
	}
	m.mu.Unlock()

	// ingestMu keeps (terms, version) consistent: an ingest extends the
	// dictionary and moves the version under the same lock.
	m.ingestMu.Lock()
	terms := make([]rdf.Term, 0, m.dict.Len())
	m.dict.Range(func(_ rdf.ID, t rdf.Term) bool {
		terms = append(terms, t)
		return true
	})
	m.mu.Lock()
	ver := m.version
	m.mu.Unlock()
	m.ingestMu.Unlock()
	reply.Worker = w.id
	reply.Terms = terms
	reply.DatasetVersion = ver
	reply.Input = m.input
	reply.HeartbeatEvery = m.cfg.HeartbeatEvery
	reply.LeaseEvery = m.cfg.LeaseEvery
	return nil
}

func (r *masterRPC) Heartbeat(args *HeartbeatArgs, reply *HeartbeatReply) error {
	m := r.m
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[args.Worker]
	if w == nil {
		return fmt.Errorf("cluster: unknown worker %d", args.Worker)
	}
	w.lastBeat = time.Now()
	// A worker that was declared dead and then reappears stays lost: its
	// map outputs were already re-queued, so resurrecting it as a lease
	// target is fine — just mark it alive again.
	if !w.alive {
		w.alive = true
	}
	if args.RPCRetries > w.rpcRetries {
		w.rpcRetries = args.RPCRetries
	}
	if args.Redials > w.redials {
		w.redials = args.Redials
	}
	if args.FetchRetries > w.fetchRetries {
		w.fetchRetries = args.FetchRetries
	}
	for qid := range m.queries {
		reply.LiveQueries = append(reply.LiveQueries, qid)
	}
	reply.DatasetVersion = m.version
	return nil
}

// Sync ships the dictionary terms from index Have onward plus the current
// dataset version — how a worker catches up after ingests minted terms it
// has never seen. ingestMu keeps (terms, version) consistent against a
// concurrent ingest, exactly as in Register.
func (r *masterRPC) Sync(args *SyncArgs, reply *SyncReply) error {
	m := r.m
	m.ingestMu.Lock()
	defer m.ingestMu.Unlock()
	i := 0
	m.dict.Range(func(_ rdf.ID, t rdf.Term) bool {
		if i >= args.Have {
			reply.Terms = append(reply.Terms, t)
		}
		i++
		return true
	})
	reply.From = args.Have
	m.mu.Lock()
	reply.DatasetVersion = m.version
	m.mu.Unlock()
	return nil
}

func (r *masterRPC) Ingest(args *IngestArgs, reply *IngestReply) error {
	res, err := r.m.Ingest(bytes.NewReader(args.Batch))
	if err != nil {
		return err
	}
	*reply = *res
	return nil
}

func (r *masterRPC) Compact(args *CompactArgs, reply *CompactReply) error {
	res, err := r.m.Compact()
	if err != nil {
		return err
	}
	reply.Result = *res
	return nil
}

// Ingest appends one N-Triples batch to the master's versioned store and
// folds it into the catalog the "auto" advisor consults. The fleet learns
// the new version via heartbeats and the new dictionary terms lazily via
// Master.Sync at plan-rebuild time; nothing is pushed — delta blocks live
// on the master's DFS, which workers already read splits through.
func (m *Master) Ingest(r io.Reader) (*IngestReply, error) {
	m.ingestMu.Lock()
	defer m.ingestMu.Unlock()
	res, err := m.store.Ingest(r)
	if err != nil {
		return nil, err
	}
	reply := &IngestReply{
		Triples:        len(res.Triples),
		Seq:            res.Seq,
		DatasetVersion: res.Version,
		DeltaBlocks:    len(m.store.DeltaFiles()),
	}
	if len(res.Triples) == 0 {
		return reply, nil
	}
	for _, t := range res.Triples {
		m.catState.AddTriple(m.dict, t)
	}
	newCat := m.catState.Catalog()
	m.mu.Lock()
	m.catalog = newCat
	m.version = res.Version
	m.triples += int64(len(res.Triples))
	m.lineage[res.Version] = true
	m.mu.Unlock()
	return reply, nil
}

// Compact folds the delta chain into a fresh base generation on the
// master's own in-process MR engine — the master owns the DFS, so no worker
// is involved — and maintains the partition layout in the same pass when
// one exists. The dataset version (and the fleet's dictionaries) are
// untouched: content is unchanged.
func (m *Master) Compact() (*ingest.CompactResult, error) {
	m.ingestMu.Lock()
	defer m.ingestMu.Unlock()
	mr := mapreduce.NewEngine(m.dfs, mapreduce.EngineConfig{
		DefaultReducers: m.cfg.Reducers,
		SplitRecords:    m.cfg.SplitRecords,
	})
	var opts ingest.CompactOptions
	if m.part != nil {
		opts.LayoutDir = m.part.Dir
	}
	res, err := m.store.Compact(mr, opts)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.part != nil {
		// The layout manifest was re-stamped at the current dataset version;
		// keep the in-memory handle's notion in step.
		m.part.Version = res.Version
	}
	m.mu.Unlock()
	return res, nil
}

func (r *masterRPC) Lease(args *LeaseArgs, reply *LeaseReply) error {
	m := r.m
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[args.Worker]
	if w == nil {
		return fmt.Errorf("cluster: unknown worker %d", args.Worker)
	}
	if !w.alive {
		// Leasing is as good as a heartbeat.
		w.alive = true
		w.lastBeat = time.Now()
	}
	reply.Task = m.leaseLocked(w, args.Kind)
	return nil
}

// leaseLocked grants the first pending task of the kind, scanning jobs in
// registration order. Map-kind slots run both "map" and "maponly" specs;
// reduce tasks only unlock once every map output of their job is committed.
func (m *Master) leaseLocked(w *workerState, kind string) *TaskSpec {
	for _, js := range m.jobs {
		if js.finished || js.err != nil {
			continue
		}
		qs := m.queries[js.qid]
		if qs == nil {
			continue
		}
		switch kind {
		case "map":
			grant := func(i int, affine bool) *TaskSpec {
				spec := &TaskSpec{
					QueryID:     js.qid,
					Spec:        qs.spec,
					JobID:       js.id,
					JobName:     js.job.Name,
					Kind:        js.mapKind,
					Task:        i,
					NumReducers: js.nReducers,
					JobInputs:   js.job.Inputs,
					Split:       js.splits[i],
				}
				if i < len(js.job.TaskSideInputs) {
					spec.SideInput = js.job.TaskSideInputs[i]
				}
				m.grantLocked(js, js.maps[i], w, js.mapKind, spec, i, i)
				if affine {
					m.affineLeases++
				}
				return spec
			}
			// Bucket affinity: on bucket-aligned jobs, hand this worker the
			// pending buckets it already processed earlier in the query
			// before falling back to an arbitrary pending task.
			if js.wholeFile {
				for i, ts := range js.maps {
					if !ts.done && !ts.leased && qs.bucketHolder[i] == w.id {
						return grant(i, true)
					}
				}
			}
			for i, ts := range js.maps {
				if ts.done || ts.leased {
					continue
				}
				return grant(i, false)
			}
		case "reduce":
			if js.mapKind != "map" || js.mapsDone != len(js.maps) {
				continue
			}
			for p, ts := range js.reduces {
				if ts.done || ts.leased {
					continue
				}
				locs := make([]MapLoc, len(js.maps))
				ok := true
				for t, mt := range js.maps {
					hw := m.workers[mt.holder]
					if hw == nil {
						ok = false
						break
					}
					locs[t] = MapLoc{Task: t, Worker: mt.holder, Addr: hw.addr}
				}
				if !ok {
					continue
				}
				spec := &TaskSpec{
					QueryID:     js.qid,
					Spec:        qs.spec,
					JobID:       js.id,
					JobName:     js.job.Name,
					Kind:        "reduce",
					Task:        p,
					NumReducers: js.nReducers,
					JobInputs:   js.job.Inputs,
					Partition:   p,
					Maps:        locs,
				}
				m.grantLocked(js, ts, w, "reduce", spec, p, len(js.splits)+p)
				return spec
			}
		}
	}
	return nil
}

// grantLocked marks the lease: attempt numbers are drawn here (a re-queued
// task's next grant counts as a retry), the deadline starts ticking, and a
// task span opens with the worker ID as the node.
func (m *Master) grantLocked(js *jobState, ts *taskState, w *workerState, kind string, spec *TaskSpec, task, group int) {
	spec.Attempt = ts.attempts
	if ts.attempts > 0 {
		js.retries++
	}
	ts.attempts++
	ts.leased = true
	ts.worker = w.id
	ts.deadline = time.Now().Add(m.cfg.LeaseTimeout)
	spanKind := kind
	if spanKind == "maponly" {
		spanKind = "map"
	}
	ts.span = js.jsp.ChildTask(spanKind, group, task, w.id, spec.Attempt)
	if kind == "reduce" {
		w.reduceBusy++
	} else {
		w.mapBusy++
	}
	m.tasksDispatched++
}

func (r *masterRPC) Report(args *ReportArgs, reply *ReportReply) error {
	r.m.report(args)
	return nil
}

func (m *Master) report(args *ReportArgs) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w := m.workers[args.Worker]; w != nil && w.alive {
		decBusy(w, args.Kind)
		if args.OK {
			w.tasksDone++
		} else {
			w.tasksFailed++
		}
	}
	if qs := m.queries[args.QueryID]; qs != nil && args.Counters != nil {
		// Snapshots from one worker are cumulative but can arrive out of
		// order (two executors snapshot and report concurrently), so
		// last-write-wins would lose counts. Counters only grow, so the
		// element-wise max per worker is the latest true value.
		wc := qs.counters[args.Worker]
		if wc == nil {
			wc = make(map[string]int64)
			qs.counters[args.Worker] = wc
		}
		for k, v := range args.Counters {
			if v > wc[k] {
				wc[k] = v
			}
		}
	}
	var js *jobState
	for _, j := range m.jobs {
		if j.id == args.JobID {
			js = j
			break
		}
	}
	if js == nil || js.finished || js.err != nil {
		return // job settled or gone; late report
	}
	var ts *taskState
	switch args.Kind {
	case "reduce":
		if args.Task >= len(js.reduces) {
			return
		}
		ts = js.reduces[args.Task]
	default:
		if args.Task >= len(js.maps) {
			return
		}
		ts = js.maps[args.Task]
	}
	if ts.leased && ts.worker == args.Worker {
		ts.leased = false
		ts.span.Finish()
		ts.span = nil
	}
	if ts.done {
		return // a rival attempt already committed; deterministic outputs make this report redundant
	}
	if !args.OK {
		m.reportFailureLocked(js, ts, args)
		return
	}
	ts.done = true
	ts.holder = args.Worker
	ts.dur = args.Duration
	switch args.Kind {
	case "map":
		js.mapsDone++
		js.mapRecords += args.Records
		js.mapBytes += args.Bytes
		if js.mapsDone == len(js.maps) && js.mapKind == "maponly" {
			js.settleLocked(nil)
		}
	default: // reduce, maponly: commit the shipped output as part files
		if err := m.commitTaskLocked(js, args); err != nil {
			js.settleLocked(err)
			return
		}
		ts.groups = args.Groups
		ts.inPairs = args.InPairs
		ts.inBytes = args.InBytes
		js.groups += args.Groups
		js.outRecords += args.Records
		js.outBytes += args.Bytes
		if args.Kind == "maponly" {
			js.mapsDone++
			js.mapRecords += args.Records
			js.mapBytes += args.Bytes
			if js.wholeFile {
				if qs := m.queries[js.qid]; qs != nil {
					qs.bucketHolder[args.Task] = args.Worker
				}
			}
			if js.mapsDone == len(js.maps) {
				js.settleLocked(nil)
			}
		} else {
			done := 0
			for _, rt := range js.reduces {
				if rt.done {
					done++
				}
			}
			if done == len(js.reduces) {
				js.settleLocked(nil)
			}
		}
	}
}

// commitTaskLocked writes one task's shipped output records as the job's
// part files (the distributed stand-in for the local attempt-commit rename;
// every record is written here, so DFS capacity failures surface exactly
// like a local mid-reduce disk-full).
func (m *Master) commitTaskLocked(js *jobState, args *ReportArgs) error {
	bases := js.job.OutputBases()
	if len(args.Outputs) != len(bases) {
		return fmt.Errorf("cluster: %s task %d shipped %d outputs, job %s has %d", args.Kind, args.Task, len(args.Outputs), js.job.Name, len(bases))
	}
	for b, base := range bases {
		name := mapreduce.PartName(base, args.Task)
		if err := m.dfs.WriteFile(name, args.Outputs[b]); err != nil {
			return fmt.Errorf("committing %s: %w", name, err)
		}
		js.written[name] = true
	}
	return nil
}

// reportFailureLocked handles a failed attempt: fetch-failure LostMaps
// re-queue the dead holder's map tasks (and implicitly this reduce), and a
// task whose attempt budget is spent fails the job.
func (m *Master) reportFailureLocked(js *jobState, ts *taskState, args *ReportArgs) {
	for _, t := range args.LostMaps {
		if t >= len(js.maps) {
			continue
		}
		mt := js.maps[t]
		if !mt.done {
			continue
		}
		if hw := m.workers[mt.holder]; hw != nil && hw.alive {
			continue // holder looks fine; treat the fetch failure as transient
		}
		mt.done = false
		mt.holder = -1
		js.mapsDone--
		js.recoveries++
	}
	if ts.attempts >= m.cfg.MaxTaskAttempts {
		js.settleLocked(fmt.Errorf("cluster: %s task %d failed after %d attempts: %s", args.Kind, args.Task, ts.attempts, args.Err))
	}
	// Otherwise the task is already back to pending (lease released above).
}

func (r *masterRPC) ReadRange(args *ReadRangeArgs, reply *ReadRangeReply) error {
	recs, err := r.m.dfs.ReadRange(args.Name, args.Off, args.N)
	if err != nil {
		return err
	}
	reply.Records = recs
	return nil
}

func (r *masterRPC) Run(args *RunArgs, reply *RunReply) error {
	rep, err := r.m.RunQuery(r.m.ctx, args)
	if err != nil {
		return err
	}
	*reply = *rep
	return nil
}

func (r *masterRPC) Status(args *StatusArgs, reply *StatusReply) error {
	*reply = r.m.Status()
	return nil
}

// Status snapshots the cluster.
func (m *Master) Status() StatusReply {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := StatusReply{
		Triples:               m.triples,
		DatasetVersion:        m.version,
		WorkersLost:           m.workersLost,
		ActiveQueries:         len(m.queries),
		TasksDispatched:       m.tasksDispatched,
		WorkerReregistrations: m.reregistrations,
		AffineLeases:          m.affineLeases,
	}
	for _, w := range m.workers {
		st.RPCRetries += w.rpcRetries
		st.Redials += w.redials
		st.FetchTransientRetries += w.fetchRetries
		st.Workers = append(st.Workers, WorkerStatus{
			ID:              w.id,
			Addr:            w.addr,
			Alive:           w.alive,
			MapSlots:        w.mapSlots,
			ReduceSlots:     w.reduceSlots,
			MapBusy:         w.mapBusy,
			ReduceBusy:      w.reduceBusy,
			LastHeartbeatMS: time.Since(w.lastBeat).Milliseconds(),
			TasksDone:       w.tasksDone,
			TasksFailed:     w.tasksFailed,
		})
	}
	for i := range st.Workers {
		for j := i + 1; j < len(st.Workers); j++ {
			if st.Workers[j].ID < st.Workers[i].ID {
				st.Workers[i], st.Workers[j] = st.Workers[j], st.Workers[i]
			}
		}
	}
	return st
}

// ---- query execution ----

// remoteCluster is the mapreduce.JobRunner the master plugs into its own
// engine: the engine does all planning and workflow orchestration, and
// every validated job lands in runJob to be scheduled across the workers.
type remoteCluster struct {
	m   *Master
	qid string
}

func (rc *remoteCluster) Name() string { return "distributed" }

func (rc *remoteCluster) RunJob(ctx context.Context, jsp *trace.Span, job *mapreduce.Job, cfg mapreduce.EngineConfig) (mapreduce.JobMetrics, error) {
	return rc.m.runJob(ctx, rc.qid, jsp, job, cfg)
}

// runJob schedules one job: plan splits from DFS metadata, enqueue the
// job's tasks for the lease loop, wait for the reports to finish it, then
// splice the committed part files into the job outputs. On failure every
// written part and output base is removed — the JobRunner cleanup contract.
func (m *Master) runJob(ctx context.Context, qid string, jsp *trace.Span, job *mapreduce.Job, cfg mapreduce.EngineConfig) (mapreduce.JobMetrics, error) {
	var jm mapreduce.JobMetrics
	var splits []SplitSpec
	for _, in := range job.Inputs {
		n, err := m.dfs.RecordCount(in)
		if err != nil {
			return jm, fmt.Errorf("reading input: %w", err)
		}
		size, err := m.dfs.FileSize(in)
		if err != nil {
			return jm, fmt.Errorf("sizing input: %w", err)
		}
		jm.MapInputBytes += size
		jm.MapInputRecords += int64(n)
		if job.WholeFileSplits {
			// Bucket-aligned: task i scans exactly Inputs[i] (empty buckets
			// included), so task index == bucket index for affinity.
			splits = append(splits, SplitSpec{Input: in, Off: 0, N: n})
			continue
		}
		for off := 0; off < n; off += cfg.SplitRecords {
			cnt := cfg.SplitRecords
			if off+cnt > n {
				cnt = n - off
			}
			splits = append(splits, SplitSpec{Input: in, Off: off, N: cnt})
		}
		if n == 0 {
			splits = append(splits, SplitSpec{Input: in}) // keep empty inputs visible
		}
	}
	jm.MapTasks = len(splits)

	js := &jobState{
		qid:       qid,
		job:       job,
		jsp:       jsp,
		splits:    splits,
		wholeFile: job.WholeFileSplits,
		mapKind:   "map",
		doneCh:    make(chan struct{}),
		written:   make(map[string]bool),
	}
	if job.MapOnly != nil || job.MapOnlyFactory != nil {
		js.mapKind = "maponly"
	} else {
		js.nReducers = job.NumReducers
		if js.nReducers == 0 {
			js.nReducers = cfg.DefaultReducers
		}
		js.reduces = make([]*taskState, js.nReducers)
		for p := range js.reduces {
			js.reduces[p] = &taskState{holder: -1}
		}
	}
	js.maps = make([]*taskState, len(splits))
	for i := range js.maps {
		js.maps[i] = &taskState{holder: -1}
	}

	m.mu.Lock()
	m.jobSeq++
	js.id = m.jobSeq
	m.jobs = append(m.jobs, js)
	m.mu.Unlock()
	defer m.dropJob(js)

	select {
	case <-js.doneCh:
	case <-ctx.Done():
		m.mu.Lock()
		js.settleLocked(context.Cause(ctx))
		m.mu.Unlock()
	case <-m.ctx.Done():
		m.mu.Lock()
		js.settleLocked(fmt.Errorf("cluster: master shutting down"))
		m.mu.Unlock()
	}

	m.mu.Lock()
	err := js.err
	nParts := js.nReducers
	if js.mapKind == "maponly" {
		nParts = len(splits)
	}
	jm.MapOutputRecords = js.mapRecords
	jm.MapOutputBytes = js.mapBytes
	jm.TaskRetries = js.retries
	jm.MapOutputRecoveries = js.recoveries
	if js.mapKind == "maponly" {
		jm.MapOutputRecords, jm.MapOutputBytes = 0, 0
	} else {
		jm.ReduceTasks = js.nReducers
	}
	jm.ReduceInputGroups = js.groups
	jm.ReduceOutputRecords = js.outRecords
	jm.ReduceOutputBytes = js.outBytes
	var mapDurs, reduceDurs []time.Duration
	for _, ts := range js.maps {
		if ts.done {
			mapDurs = append(mapDurs, ts.dur)
		}
	}
	perGroups := make([]int64, len(js.reduces))
	perBytes := make([]int64, len(js.reduces))
	for p, ts := range js.reduces {
		if ts.done {
			reduceDurs = append(reduceDurs, ts.dur)
			perGroups[p] = ts.groups
			perBytes[p] = ts.inBytes
			if ts.inPairs > jm.MaxReducePartitionRecords {
				jm.MaxReducePartitionRecords = ts.inPairs
			}
		}
	}
	m.mu.Unlock()
	jm.MapTaskStats = mapreduce.SummarizeTaskDurations(mapDurs)
	jm.ReduceTaskStats = mapreduce.SummarizeTaskDurations(reduceDurs)
	jm.ReduceKeySkew = mapreduce.SkewOf(perGroups)
	jm.ReduceByteSkew = mapreduce.SkewOf(perBytes)
	if jm.MapOutputRecords > 0 && js.nReducers > 0 {
		jm.ReduceSkew = float64(jm.MaxReducePartitionRecords) * float64(js.nReducers) / float64(jm.MapOutputRecords)
	}

	cleanup := func() {
		m.mu.Lock()
		parts := make([]string, 0, len(js.written))
		for p := range js.written {
			parts = append(parts, p)
		}
		m.mu.Unlock()
		for _, p := range parts {
			m.dfs.DeleteIfExists(p)
		}
		for _, base := range job.OutputBases() {
			m.dfs.DeleteIfExists(base)
		}
	}
	if err != nil {
		cleanup()
		return jm, err
	}
	for _, base := range job.OutputBases() {
		names := make([]string, nParts)
		for i := range names {
			names[i] = mapreduce.PartName(base, i)
		}
		if err := m.dfs.Concat(base, names); err != nil {
			cleanup()
			return jm, fmt.Errorf("committing output %s: %w", base, err)
		}
	}
	return jm, nil
}

// dropJob unlists a settled job and finishes any dangling lease spans.
// Workers still running its tasks will report into the void (ignored) and
// prune their caches at the next heartbeat after the query ends.
func (m *Master) dropJob(js *jobState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, j := range m.jobs {
		if j == js {
			m.jobs = append(m.jobs[:i], m.jobs[i+1:]...)
			break
		}
	}
	for _, ts := range js.maps {
		ts.span.Finish()
		ts.span = nil
	}
	for _, ts := range js.reduces {
		ts.span.Finish()
		ts.span = nil
	}
}

// RunQuery compiles, plans, and executes one query across the cluster: the
// master's own MR engine runs the full workflow with the remoteCluster
// JobRunner plugged into the seam, so planning, plan-IR lowering, output
// decoding, and metrics work exactly as a local run — only task execution
// moves to the workers.
func (m *Master) RunQuery(ctx context.Context, args *RunArgs) (*RunReply, error) {
	if args.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(args.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	pq, err := sparql.Parse(args.Query)
	if err != nil {
		return nil, err
	}
	q, err := query.Compile(pq, m.dict)
	if err != nil {
		return nil, err
	}
	if args.HasOrder {
		joins, err := q.JoinsForOrder(args.Order)
		if err != nil {
			return nil, fmt.Errorf("cluster: applying join order: %w", err)
		}
		q.Joins = joins
	}
	engName := args.Engine
	phiM := args.PhiM
	if engName == "" {
		engName = m.cfg.DefaultEngine
	}
	m.mu.Lock()
	cat := m.catalog
	m.mu.Unlock()
	if engName == "auto" {
		ua, err := plan.AdviseUnnest(cat.AvgTriplesPerSubject(), cat.Objects, q, m.cfg.Reducers)
		if err != nil {
			return nil, err
		}
		if ua.Lazy {
			engName = "ntga-lazy"
		} else {
			engName = "ntga-eager"
		}
		if phiM == 0 {
			phiM = ua.PhiM
		}
	}
	eng, err := engineByName(engName, phiM)
	if err != nil {
		return nil, err
	}

	// One consistent dataset snapshot per query: the manifest copy carries
	// base generation and delta chain together, and the files it names are
	// immutable (compaction retains old generations), so a query admitted
	// here finishes on its pinned version even if an ingest lands mid-run.
	man := m.store.Manifest()
	base, deltas := man.Base, man.DeltaFiles()
	var part *plan.Partitioning
	if m.part != nil && !args.NoPartition && len(deltas) == 0 {
		// Any uncompacted delta makes the layout stale by definition; the
		// flat plan with the delta overlay runs instead until compaction.
		part = m.part
	}
	spec := QuerySpec{
		Query:    args.Query,
		Engine:   engName,
		PhiM:     phiM,
		Order:    args.Order,
		HasOrder: args.HasOrder,
		Input:    base,
		Deltas:   deltas,
		DictLen:  m.dict.Len(),
	}
	if part != nil {
		spec.PartDir = part.Dir
		spec.PartBuckets = part.Buckets
	}
	qs := m.registerQuery(spec)
	defer m.releaseQuery(qs.id)

	reducers := args.Reducers
	if reducers == 0 {
		reducers = m.cfg.Reducers
	}
	splitRecords := args.SplitRecords
	if splitRecords == 0 {
		splitRecords = m.cfg.SplitRecords
	}
	mr := mapreduce.NewEngine(m.dfs, mapreduce.EngineConfig{
		DefaultReducers: reducers,
		SplitRecords:    splitRecords,
		Cluster:         &remoteCluster{m: m, qid: qs.id},
		Tracer:          m.cfg.Tracer,
	}).WithContext(ctx)

	res, err := engine.RunWithDeltas(eng, mr, q, base, deltas, part)
	if err != nil {
		return nil, err
	}

	// The master's mapper/reducer closures never ran, so its counters are
	// empty; the real counts live in the workers' snapshots. Sum them.
	m.mu.Lock()
	sum := make(map[string]int64)
	for _, wc := range qs.counters {
		for k, v := range wc {
			sum[k] += v
		}
	}
	m.mu.Unlock()
	if res.Counters == nil {
		res.Counters = sum
	} else {
		for k, v := range sum {
			res.Counters[k] += v
		}
	}

	reply := &RunReply{
		Engine:        res.Engine,
		IsCount:       res.IsCount,
		Count:         res.Count,
		Rows:          res.Rows,
		Counters:      res.Counters,
		OutputRecords: res.OutputRecords,
		OutputBytes:   res.OutputBytes,
		PeakDFSUsed:   res.PeakDFSUsed,
		Workflow:      res.Workflow,
	}
	// Render header and text rows master-side for dictionary-less callers,
	// exactly as a local ntga-run would print them.
	if res.IsCount {
		reply.Header = []string{"?" + q.Src.CountVar}
	} else {
		projected := q.ProjectAll(res.Rows)
		reply.TotalRows = len(projected)
		reply.Header = make([]string, len(q.Select))
		for i, v := range q.Select {
			reply.Header[i] = "?" + v
		}
		reply.RowsText = make([]string, len(projected))
		for i, r := range projected {
			reply.RowsText[i] = q.FormatRow(r)
		}
	}
	return reply, nil
}

func (m *Master) registerQuery(spec QuerySpec) *queryState {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.querySeq++
	qs := &queryState{
		id:           fmt.Sprintf("q-%06d", m.querySeq),
		spec:         spec,
		counters:     make(map[int]map[string]int64),
		bucketHolder: make(map[int]int),
	}
	m.queries[qs.id] = qs
	return qs
}

func (m *Master) releaseQuery(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.queries, id)
}
