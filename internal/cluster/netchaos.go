package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"ntga/internal/core/hash64"
)

// This file extends the PR-3 fault model to the wire: where
// mapreduce.FaultPlan fires failures inside task phases, NetFaultPlan fires
// them inside RPC connections — refused dials, injected latency, and
// connections severed mid-message — plus *directed partitions* that cut
// whole edges of the master/worker topology, exactly the failures a real
// network serves a long-lived cluster. Like the task-level plan, every
// injection is a seeded fnv64a draw over a per-edge checkpoint sequence, so
// a given (plan, topology, call sequence) replays the same chaos.

// NetFaultPlan is a deterministic network chaos schedule. Rates are
// per-checkpoint probabilities: DropRate is drawn once per dial, SeverRate
// and DelayRate once per message checkpoint (each Write on a chaos
// connection). A zero plan injects nothing.
type NetFaultPlan struct {
	// Seed varies which checkpoints fire.
	Seed int64
	// DropRate refuses dials: the connection never establishes.
	DropRate float64
	// SeverRate closes an established connection mid-message, so the
	// in-flight RPC (and everything else multiplexed on the pipe) fails
	// with a transport error — the ErrShutdown path.
	SeverRate float64
	// MaxSevers bounds sever injections (0 = unlimited).
	MaxSevers int
	// DelayRate stalls a message by Delay before it is written — transient
	// slowness a retrying caller must wait out rather than escalate.
	DelayRate float64
	Delay     time.Duration
}

func (p NetFaultPlan) active() bool {
	return p.DropRate > 0 || p.SeverRate > 0 || (p.DelayRate > 0 && p.Delay > 0)
}

// netDraw maps a seeded edge checkpoint to [0,1) deterministically, with
// the same fnv64a generator (hash64) the task-level FaultPlan uses.
func netDraw(from, to string, seq int, which string, seed int64) float64 {
	return float64(hash64.Mod(100000, "%s|%s|%d|%s|%d", from, to, seq, which, seed)) / 100000
}

// edge is one directed (dialer → listener) pair, identified by labels.
type edge struct {
	from, to string
}

// NetChaosStats is a snapshot of what a ChaosNetwork has injected so far.
type NetChaosStats struct {
	DroppedDials int64
	Severed      int64
	Delayed      int64
}

// ChaosNetwork is the shared fault surface of one simulated network: every
// process of a test topology wraps its Transport through the same network,
// which tracks listener addresses (so a dialed address resolves back to the
// peer's label), draws the seeded faults per directed edge, and maintains
// the manual partition set tests and the chaos binaries use to cut edges
// mid-query. Severing a partitioned edge is immediate: open connections on
// it are closed, not just future dials refused.
type ChaosNetwork struct {
	plan NetFaultPlan

	mu         sync.Mutex
	labels     map[string]string // listener addr → label
	seq        map[edge]int      // per-edge checkpoint sequence
	blocked    map[edge]bool     // manual directed partitions
	conns      map[*chaosConn]struct{}
	seversLeft int
	unlimited  bool
	stats      NetChaosStats
}

// NewChaosNetwork builds the shared fault surface for one topology.
func NewChaosNetwork(plan NetFaultPlan) *ChaosNetwork {
	return &ChaosNetwork{
		plan:       plan,
		labels:     make(map[string]string),
		seq:        make(map[edge]int),
		blocked:    make(map[edge]bool),
		conns:      make(map[*chaosConn]struct{}),
		seversLeft: plan.MaxSevers,
		unlimited:  plan.MaxSevers == 0,
	}
}

// Stats snapshots the injection counters.
func (n *ChaosNetwork) Stats() NetChaosStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Transport wraps an inner transport (nil = TCP) for the process labeled
// label. Listeners register their bound address so peers dialing it resolve
// the label; dials from this transport draw faults on the (label → peer)
// edge.
func (n *ChaosNetwork) Transport(label string, inner Transport) Transport {
	if inner == nil {
		inner = TCP()
	}
	return &chaosTransport{net: n, label: label, inner: inner}
}

// Partition cuts the directed edge from → to: dials are refused and open
// connections on the edge are severed immediately. Labels are the ones
// given to Transport; an unregistered peer is addressed by its dial
// address. PartitionBoth cuts both directions.
func (n *ChaosNetwork) Partition(from, to string) {
	n.mu.Lock()
	n.blocked[edge{from, to}] = true
	var victims []*chaosConn
	for c := range n.conns {
		if c.from == from && c.to == to {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.Conn.Close()
	}
}

// Heal reopens the directed edge from → to.
func (n *ChaosNetwork) Heal(from, to string) {
	n.mu.Lock()
	delete(n.blocked, edge{from, to})
	n.mu.Unlock()
}

// PartitionBoth cuts both directions of an edge.
func (n *ChaosNetwork) PartitionBoth(a, b string) {
	n.Partition(a, b)
	n.Partition(b, a)
}

// HealBoth reopens both directions of an edge.
func (n *ChaosNetwork) HealBoth(a, b string) {
	n.Heal(a, b)
	n.Heal(b, a)
}

// Isolate cuts every edge touching label, in both directions — the whole
// process drops off the network.
func (n *ChaosNetwork) Isolate(label string) {
	n.mu.Lock()
	peers := make(map[string]bool)
	for _, l := range n.labels {
		if l != label {
			peers[l] = true
		}
	}
	for c := range n.conns {
		if c.from == label {
			peers[c.to] = true
		}
		if c.to == label {
			peers[c.from] = true
		}
	}
	n.mu.Unlock()
	for p := range peers {
		n.PartitionBoth(label, p)
	}
}

// Rejoin reopens every edge touching label.
func (n *ChaosNetwork) Rejoin(label string) {
	n.mu.Lock()
	var edges []edge
	for e := range n.blocked {
		if e.from == label || e.to == label {
			edges = append(edges, e)
		}
	}
	n.mu.Unlock()
	for _, e := range edges {
		n.Heal(e.from, e.to)
	}
}

// labelFor resolves a dialed address to the peer's label (the address
// itself when the peer never registered a listener — chaos binaries use the
// master's address as its label this way).
func (n *ChaosNetwork) labelFor(addr string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.labels[addr]; ok {
		return l
	}
	return addr
}

func (n *ChaosNetwork) register(addr, label string) {
	n.mu.Lock()
	n.labels[addr] = label
	n.mu.Unlock()
}

// checkDial draws the dial checkpoint on an edge; a non-nil error means the
// dial is refused (partitioned or dropped).
func (n *ChaosNetwork) checkDial(e edge) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.blocked[e] {
		return fmt.Errorf("cluster: chaos: edge %s -> %s partitioned", e.from, e.to)
	}
	if n.plan.DropRate <= 0 {
		return nil
	}
	n.seq[e]++
	if netDraw(e.from, e.to, n.seq[e], "drop", n.plan.Seed) < n.plan.DropRate {
		n.stats.DroppedDials++
		return fmt.Errorf("cluster: chaos: dial %s -> %s dropped", e.from, e.to)
	}
	return nil
}

// checkMessage draws the per-message checkpoint: it returns the delay to
// impose (0 = none), whether the connection must be severed instead, or a
// partition error when the edge was cut under the connection.
func (n *ChaosNetwork) checkMessage(e edge) (delay time.Duration, sever bool, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.blocked[e] {
		return 0, false, fmt.Errorf("cluster: chaos: edge %s -> %s partitioned", e.from, e.to)
	}
	if !n.plan.active() {
		return 0, false, nil
	}
	n.seq[e]++
	s := n.seq[e]
	if n.plan.DelayRate > 0 && n.plan.Delay > 0 &&
		netDraw(e.from, e.to, s, "delay", n.plan.Seed) < n.plan.DelayRate {
		delay = n.plan.Delay
		n.stats.Delayed++
	}
	if n.plan.SeverRate > 0 &&
		netDraw(e.from, e.to, s, "sever", n.plan.Seed) < n.plan.SeverRate &&
		(n.unlimited || n.seversLeft > 0) {
		if !n.unlimited {
			n.seversLeft--
		}
		n.stats.Severed++
		return delay, true, nil
	}
	return delay, false, nil
}

func (n *ChaosNetwork) track(c *chaosConn) {
	n.mu.Lock()
	n.conns[c] = struct{}{}
	n.mu.Unlock()
}

func (n *ChaosNetwork) untrack(c *chaosConn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// chaosTransport is one process's view of the chaos network.
type chaosTransport struct {
	net   *ChaosNetwork
	label string
	inner Transport
}

func (t *chaosTransport) Listen(addr string) (net.Listener, error) {
	ln, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	t.net.register(ln.Addr().String(), t.label)
	return ln, nil
}

func (t *chaosTransport) Dial(addr string) (net.Conn, error) {
	e := edge{from: t.label, to: t.net.labelFor(addr)}
	if err := t.net.checkDial(e); err != nil {
		return nil, err
	}
	conn, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	cc := &chaosConn{Conn: conn, net: t.net, from: e.from, to: e.to}
	t.net.track(cc)
	return cc, nil
}

// chaosConn draws a fault checkpoint per written message. Only writes are
// checkpointed: every RPC round trip writes on the dialer's conn first, so
// one side of the pipe drawing is enough to make any call fail, and leaving
// reads untouched keeps response latency attribution simple.
type chaosConn struct {
	net.Conn
	net      *ChaosNetwork
	from, to string

	mu     sync.Mutex
	closed bool
}

func (c *chaosConn) Write(b []byte) (int, error) {
	delay, sever, err := c.net.checkMessage(edge{c.from, c.to})
	if err != nil {
		c.Close()
		return 0, err
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if sever {
		c.Close()
		return 0, fmt.Errorf("cluster: chaos: connection %s -> %s severed", c.from, c.to)
	}
	return c.Conn.Write(b)
}

func (c *chaosConn) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if already {
		return nil
	}
	c.net.untrack(c)
	return c.Conn.Close()
}
