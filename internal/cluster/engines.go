package cluster

import (
	"fmt"

	"ntga/internal/engine"
	"ntga/internal/ntgamr"
	"ntga/internal/relmr"
)

// engineByName maps a concrete engine name to a fresh instance. The master
// and every worker resolve through this same table, so a shipped engine
// name rebuilds the identical physical plan everywhere. (bench and server
// keep equivalent tables; cluster cannot import bench — bench drives the
// server, which executes here.)
func engineByName(name string, phiM int) (engine.QueryEngine, error) {
	switch name {
	case "pig":
		return relmr.NewPig(), nil
	case "hive":
		return relmr.NewHive(), nil
	case "sj-per-cycle":
		return relmr.NewSJPerCycle(), nil
	case "sel-sj-first":
		return relmr.NewSelSJFirst(), nil
	case "ntga-eager":
		return ntgamr.NewEager(), nil
	case "ntga-lazy":
		return ntgamr.New(ntgamr.LazyAuto, phiM), nil
	case "ntga-lazy-full":
		return ntgamr.New(ntgamr.LazyFull, phiM), nil
	case "ntga-lazy-partial":
		return ntgamr.New(ntgamr.LazyPartial, phiM), nil
	default:
		return nil, fmt.Errorf("cluster: unknown engine %q (want pig, hive, sj-per-cycle, sel-sj-first, ntga-eager, ntga-lazy, ntga-lazy-full, ntga-lazy-partial)", name)
	}
}
