// Cross-transport parity: every catalog query, on every engine family,
// executed once on the in-process LocalCluster and once on a real 3-worker
// distributed cluster (workers as goroutine-hosted RPC servers over
// loopback TCP), must produce byte-identical results — same rows in the
// same order, same output file shape, same engine counters. A second suite
// kills a worker mid-job and requires the run to recover and still match.
package cluster_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"ntga/internal/bench"
	"ntga/internal/cluster"
	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/refengine"
)

// parityEngines is the chaos-suite line-up plus the remaining relational
// baselines — every engine family the repo ships.
var parityEngines = []string{"pig", "hive", "sj-per-cycle", "sel-sj-first", "ntga-eager", "ntga-lazy"}

const (
	parityReducers = 4
	paritySplit    = 512
)

// testCluster is one in-test master + N loopback workers + a client.
type testCluster struct {
	master  *cluster.Master
	workers []*cluster.Worker
	client  *cluster.Client
}

func startTestCluster(t *testing.T, g *rdf.Graph, nWorkers int, wcfg cluster.WorkerConfig, mcfg cluster.MasterConfig) *testCluster {
	t.Helper()
	// Tight intervals keep the lease/heartbeat machinery honest without
	// slowing the suite.
	if mcfg.HeartbeatTimeout == 0 {
		mcfg.HeartbeatTimeout = 400 * time.Millisecond
	}
	if mcfg.SweepEvery == 0 {
		mcfg.SweepEvery = 25 * time.Millisecond
	}
	if mcfg.HeartbeatEvery == 0 {
		mcfg.HeartbeatEvery = 50 * time.Millisecond
	}
	if mcfg.LeaseEvery == 0 {
		mcfg.LeaseEvery = 2 * time.Millisecond
	}
	if mcfg.LeaseTimeout == 0 {
		mcfg.LeaseTimeout = 5 * time.Second
	}
	m, err := cluster.NewMaster(mcfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{master: m}
	t.Cleanup(func() {
		for _, w := range tc.workers {
			w.Close()
		}
		if tc.client != nil {
			tc.client.Close()
		}
		m.Close()
	})
	for i := 0; i < nWorkers; i++ {
		w := cluster.NewWorker(wcfg, nil, m.Addr())
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		tc.workers = append(tc.workers, w)
	}
	c, err := cluster.Dial(nil, m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	tc.client = c
	return tc
}

// runLocal executes the query on a fresh in-process engine with the same
// reducer and split settings the distributed run uses.
func runLocal(t *testing.T, g *rdf.Graph, q *query.Query, engName string) (*engine.Result, error) {
	t.Helper()
	eng, err := bench.EngineByName(engName, 0)
	if err != nil {
		t.Fatal(err)
	}
	mr := mapreduce.NewEngine(
		hdfs.New(hdfs.Config{Nodes: 8}),
		mapreduce.EngineConfig{DefaultReducers: parityReducers, SplitRecords: paritySplit},
	)
	const input = "data/triples"
	if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
		t.Fatal(err)
	}
	return eng.Run(mr, q, input)
}

func sameRows(a, b []query.Row) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func sameCounters(a, b map[string]int64) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestCrossTransportParity(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed parity sweep")
	}
	ctx := context.Background()
	byDataset := make(map[string][]bench.CatalogQuery)
	for _, cq := range bench.Catalog() {
		byDataset[cq.Dataset] = append(byDataset[cq.Dataset], cq)
	}
	for ds, cqs := range byDataset {
		t.Run(ds, func(t *testing.T) {
			g, err := bench.Dataset(ds, 1, 42)
			if err != nil {
				t.Fatal(err)
			}
			tc := startTestCluster(t, g, 3, cluster.WorkerConfig{MapSlots: 2, ReduceSlots: 2}, cluster.MasterConfig{Reducers: parityReducers, SplitRecords: paritySplit})
			for _, cq := range cqs {
				q := enginetest.Compile(t, g, cq.Src)
				want := refengine.Evaluate(q, g)
				for _, en := range parityEngines {
					local, lerr := runLocal(t, g, q, en)
					reply, derr := tc.client.Run(ctx, &cluster.RunArgs{
						Query:        cq.Src,
						Engine:       en,
						Reducers:     parityReducers,
						SplitRecords: paritySplit,
						TimeoutMS:    120_000,
					})
					if lerr != nil {
						// Engines that cannot plan a query (e.g.
						// Sel-SJ-first on unbound stars) must refuse it
						// identically on both substrates.
						if derr == nil {
							t.Errorf("%s/%s: local refused (%v) but distributed ran", cq.ID, en, lerr)
						}
						continue
					}
					if derr != nil {
						t.Errorf("%s/%s: distributed run failed: %v", cq.ID, en, derr)
						continue
					}
					if local.IsCount != reply.IsCount || local.Count != reply.Count {
						t.Errorf("%s/%s: count mismatch: local (%v, %d) vs distributed (%v, %d)",
							cq.ID, en, local.IsCount, local.Count, reply.IsCount, reply.Count)
					}
					if !sameRows(local.Rows, reply.Rows) {
						t.Errorf("%s/%s: rows not byte-identical (local %d rows, distributed %d rows)",
							cq.ID, en, len(local.Rows), len(reply.Rows))
					}
					if !local.IsCount && !query.RowsEqual(want, reply.Rows) {
						t.Errorf("%s/%s: distributed rows diverge from reference", cq.ID, en)
					}
					if local.OutputRecords != reply.OutputRecords || local.OutputBytes != reply.OutputBytes {
						t.Errorf("%s/%s: output file mismatch: local (%d recs, %d B) vs distributed (%d recs, %d B)",
							cq.ID, en, local.OutputRecords, local.OutputBytes, reply.OutputRecords, reply.OutputBytes)
					}
					if !sameCounters(local.Counters, reply.Counters) {
						t.Errorf("%s/%s: counters mismatch: local %v vs distributed %v",
							cq.ID, en, local.Counters, reply.Counters)
					}
					if len(local.Workflow.Jobs) != len(reply.Workflow.Jobs) {
						t.Errorf("%s/%s: cycle count mismatch: local %d vs distributed %d",
							cq.ID, en, len(local.Workflow.Jobs), len(reply.Workflow.Jobs))
					}
				}
			}
		})
	}
}

// TestDistributedWorkerKillRecovery kills one worker while a query is mid
// flight. The master must declare it dead, re-queue its leases and its
// committed map outputs, and finish the query with results identical to a
// local run.
func TestDistributedWorkerKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed kill round")
	}
	cq := bench.Catalog()[0]
	g, err := bench.Dataset(cq.Dataset, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Size splits so the first job has plenty of map tasks, and stretch
	// each task, so the kill lands mid-job with work both done and owed.
	splitRecords := g.Len() / 24
	if splitRecords < 1 {
		splitRecords = 1
	}
	tc := startTestCluster(t, g, 3,
		cluster.WorkerConfig{MapSlots: 2, ReduceSlots: 2, TaskDelay: 15 * time.Millisecond},
		cluster.MasterConfig{Reducers: parityReducers, SplitRecords: splitRecords})

	q := enginetest.Compile(t, g, cq.Src)
	local, err := runLocalSplit(t, g, q, "ntga-lazy", splitRecords)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		reply *cluster.RunReply
		err   error
	}
	resCh := make(chan outcome, 1)
	go func() {
		reply, err := tc.client.Run(context.Background(), &cluster.RunArgs{
			Query:        cq.Src,
			Engine:       "ntga-lazy",
			Reducers:     parityReducers,
			SplitRecords: splitRecords,
			TimeoutMS:    120_000,
		})
		resCh <- outcome{reply, err}
	}()

	// Kill the victim once it has finished at least two tasks, so it holds
	// committed map output the survivors must regenerate.
	victim := tc.workers[2]
	killed := false
	deadline := time.After(60 * time.Second)
	for !killed {
		select {
		case o := <-resCh:
			t.Fatalf("query finished before the kill landed (err=%v); shrink TaskDelay tuning", o.err)
		case <-deadline:
			t.Fatal("victim never accumulated tasks")
		case <-time.After(5 * time.Millisecond):
		}
		st, err := tc.client.Status(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, ws := range st.Workers {
			if ws.ID == victim.ID() && ws.TasksDone >= 2 {
				victim.Close()
				killed = true
				break
			}
		}
	}

	o := <-resCh
	if o.err != nil {
		t.Fatalf("query did not survive the worker kill: %v", o.err)
	}
	if !sameRows(local.Rows, o.reply.Rows) {
		t.Errorf("post-kill rows not identical to local run (local %d, distributed %d)", len(local.Rows), len(o.reply.Rows))
	}
	if !query.RowsEqual(refengine.Evaluate(q, g), o.reply.Rows) {
		t.Error("post-kill rows diverge from reference")
	}
	st, err := tc.client.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkersLost < 1 {
		t.Errorf("master never declared the killed worker lost (workersLost=%d)", st.WorkersLost)
	}
	recovered := o.reply.Workflow.TotalTaskRetries() + o.reply.Workflow.TotalMapOutputRecoveries()
	if recovered < 1 {
		t.Errorf("no recovery work recorded (retries+mapOutputRecoveries=%d); the kill was a no-op", recovered)
	}
}

// runLocalSplit is runLocal with an explicit split size (the kill test
// shrinks splits to stretch the job).
func runLocalSplit(t *testing.T, g *rdf.Graph, q *query.Query, engName string, splitRecords int) (*engine.Result, error) {
	t.Helper()
	eng, err := bench.EngineByName(engName, 0)
	if err != nil {
		t.Fatal(err)
	}
	mr := mapreduce.NewEngine(
		hdfs.New(hdfs.Config{Nodes: 8}),
		mapreduce.EngineConfig{DefaultReducers: parityReducers, SplitRecords: splitRecords},
	)
	const input = "data/triples"
	if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
		t.Fatal(err)
	}
	return eng.Run(mr, q, input)
}
