package cluster

import (
	"net"
	"net/rpc"
	"time"
)

// Transport abstracts how cluster processes reach each other, so tests can
// host a whole master/worker topology over loopback (or, in principle, an
// in-memory pipe network) while production uses TCP. All RPC traffic —
// registration, leases, reports, split reads, and shuffle fetches — flows
// through connections made here.
type Transport interface {
	// Listen opens a server endpoint. addr may carry port 0; the
	// listener's Addr() reports the bound address peers should dial.
	Listen(addr string) (net.Listener, error)
	// Dial connects to a peer endpoint.
	Dial(addr string) (net.Conn, error)
}

// tcpTransport is the production transport: plain TCP.
type tcpTransport struct {
	dialTimeout time.Duration
}

// TCP returns the TCP transport.
func TCP() Transport {
	return &tcpTransport{dialTimeout: 5 * time.Second}
}

func (t *tcpTransport) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

func (t *tcpTransport) Dial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, t.dialTimeout)
}

// serveRPC accepts connections until the listener closes, serving each on
// its own goroutine. net/rpc itself runs every request in a fresh
// goroutine, so one client connection can keep a long Master.Run call in
// flight while issuing Status or Lease calls concurrently.
func serveRPC(srv *rpc.Server, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go srv.ServeConn(conn)
	}
}

// dialRPC opens an RPC client over the transport.
func dialRPC(tr Transport, addr string) (*rpc.Client, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(conn), nil
}
