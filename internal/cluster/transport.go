package cluster

import (
	"net"
	"net/rpc"
	"sync"
	"time"
)

// Transport abstracts how cluster processes reach each other, so tests can
// host a whole master/worker topology over loopback (or, in principle, an
// in-memory pipe network) while production uses TCP. All RPC traffic —
// registration, leases, reports, split reads, and shuffle fetches — flows
// through connections made here.
type Transport interface {
	// Listen opens a server endpoint. addr may carry port 0; the
	// listener's Addr() reports the bound address peers should dial.
	Listen(addr string) (net.Listener, error)
	// Dial connects to a peer endpoint.
	Dial(addr string) (net.Conn, error)
}

// tcpTransport is the production transport: plain TCP.
type tcpTransport struct {
	dialTimeout time.Duration
}

// TCP returns the TCP transport.
func TCP() Transport {
	return &tcpTransport{dialTimeout: 5 * time.Second}
}

func (t *tcpTransport) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

func (t *tcpTransport) Dial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, t.dialTimeout)
}

// serveRPC accepts connections until the listener closes, serving each on
// its own goroutine. net/rpc itself runs every request in a fresh
// goroutine, so one client connection can keep a long Master.Run call in
// flight while issuing Status or Lease calls concurrently.
func serveRPC(srv *rpc.Server, ln net.Listener) {
	serveRPCTracked(srv, ln, nil)
}

// connSet tracks a server's accepted connections so Close can sever live
// pipes, not just refuse new dials: a process that "dies" must stop
// answering peers whose connections were already established, or the fleet
// never notices the death (heartbeats would keep succeeding over the old
// pipe while new dials are refused).
type connSet struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func newConnSet() *connSet {
	return &connSet{conns: make(map[net.Conn]struct{})}
}

// add registers an accepted connection; false means the set is already
// closed and the connection must not be served.
func (s *connSet) add(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *connSet) remove(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// closeAll severs every tracked connection and refuses future ones.
func (s *connSet) closeAll() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// serveRPCTracked is serveRPC with every accepted connection registered in
// cs (nil cs serves untracked).
func serveRPCTracked(srv *rpc.Server, ln net.Listener, cs *connSet) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if cs != nil && !cs.add(conn) {
			conn.Close()
			return
		}
		go func() {
			srv.ServeConn(conn)
			if cs != nil {
				cs.remove(conn)
			}
		}()
	}
}

// dialRPC opens an RPC client over the transport.
func dialRPC(tr Transport, addr string) (*rpc.Client, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(conn), nil
}
