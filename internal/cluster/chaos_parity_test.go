// Network-chaos acceptance: the distributed substrate under a seeded
// NetFaultPlan (dropped dials, injected latency, severed connections) and
// under manual directed partitions must still produce results byte-identical
// to a local run — the retrying transport, shuffle-fetch escalation, and
// worker re-registration absorb the failures instead of surfacing them.
package cluster_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ntga/internal/bench"
	"ntga/internal/cluster"
	"ntga/internal/enginetest"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/refengine"
)

// chaosRetry is aggressive enough to out-retry the seeded fault rates
// without stretching the suite.
var chaosRetry = cluster.RetryPolicy{
	MaxAttempts: 5,
	BaseBackoff: 2 * time.Millisecond,
	MaxBackoff:  25 * time.Millisecond,
	Seed:        1,
}

func chaosWorkerConfig() cluster.WorkerConfig {
	return cluster.WorkerConfig{
		MapSlots:            2,
		ReduceSlots:         2,
		Retry:               chaosRetry,
		FetchRetries:        3,
		MasterLossThreshold: 2,
		MaxPeerConns:        1,
		PeerIdleTimeout:     250 * time.Millisecond,
	}
}

func chaosMasterConfig(splitRecords int) cluster.MasterConfig {
	return cluster.MasterConfig{
		Reducers:         parityReducers,
		SplitRecords:     splitRecords,
		HeartbeatTimeout: 500 * time.Millisecond,
		SweepEvery:       20 * time.Millisecond,
		HeartbeatEvery:   40 * time.Millisecond,
		LeaseEvery:       2 * time.Millisecond,
		LeaseTimeout:     5 * time.Second,
		MaxTaskAttempts:  8,
	}
}

// startChaosTestCluster is startTestCluster with every master/worker edge
// routed through one ChaosNetwork (labels "master", "w1", ..). The
// front-end client dials plain TCP — the chaos transport only wraps its own
// dials, so the submission edge stays clean and every run's outcome
// isolates the master/worker edges under test.
func startChaosTestCluster(t *testing.T, net *cluster.ChaosNetwork, g *rdf.Graph, nWorkers int, wcfg cluster.WorkerConfig, mcfg cluster.MasterConfig) *testCluster {
	t.Helper()
	mcfg.Transport = net.Transport("master", nil)
	m, err := cluster.NewMaster(mcfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{master: m}
	t.Cleanup(func() {
		for _, w := range tc.workers {
			w.Close()
		}
		if tc.client != nil {
			tc.client.Close()
		}
		m.Close()
	})
	for i := 0; i < nWorkers; i++ {
		label := workerLabel(i)
		w := cluster.NewWorker(wcfg, net.Transport(label, nil), m.Addr())
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		tc.workers = append(tc.workers, w)
	}
	c, err := cluster.Dial(nil, m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	tc.client = c
	return tc
}

func workerLabel(i int) string {
	return fmt.Sprintf("w%d", i+1)
}

// TestCrossTransportChaosParity runs catalog queries on a 3-worker cluster
// whose every master/worker edge suffers seeded drops, delays, and severs,
// and requires byte-identical rows, counts, and output shape versus a clean
// local run. -short trims to the first dataset on one engine; the full run
// sweeps every catalog query.
func TestCrossTransportChaosParity(t *testing.T) {
	ctx := context.Background()
	plan := cluster.NetFaultPlan{
		Seed:      20260808,
		DropRate:  0.03,
		SeverRate: 0.01,
		DelayRate: 0.05,
		Delay:     time.Millisecond,
	}
	engines := []string{"ntga-lazy", "ntga-eager"}
	byDataset := make(map[string][]bench.CatalogQuery)
	for _, cq := range bench.Catalog() {
		byDataset[cq.Dataset] = append(byDataset[cq.Dataset], cq)
	}
	datasets := make([]string, 0, len(byDataset))
	for ds := range byDataset {
		datasets = append(datasets, ds)
	}
	if testing.Short() {
		datasets = datasets[:1]
		engines = engines[:1]
	}
	for _, ds := range datasets {
		cqs := byDataset[ds]
		if testing.Short() && len(cqs) > 2 {
			cqs = cqs[:2]
		}
		t.Run(ds, func(t *testing.T) {
			g, err := bench.Dataset(ds, 1, 42)
			if err != nil {
				t.Fatal(err)
			}
			net := cluster.NewChaosNetwork(plan)
			tc := startChaosTestCluster(t, net, g, 3, chaosWorkerConfig(), chaosMasterConfig(paritySplit))
			for _, cq := range cqs {
				q := enginetest.Compile(t, g, cq.Src)
				for _, en := range engines {
					local, lerr := runLocal(t, g, q, en)
					reply, derr := tc.client.Run(ctx, &cluster.RunArgs{
						Query:        cq.Src,
						Engine:       en,
						Reducers:     parityReducers,
						SplitRecords: paritySplit,
						TimeoutMS:    120_000,
					})
					if lerr != nil {
						if derr == nil {
							t.Errorf("%s/%s: local refused (%v) but distributed ran", cq.ID, en, lerr)
						}
						continue
					}
					if derr != nil {
						t.Errorf("%s/%s: chaos run failed: %v", cq.ID, en, derr)
						continue
					}
					if local.IsCount != reply.IsCount || local.Count != reply.Count {
						t.Errorf("%s/%s: count mismatch under chaos: local (%v, %d) vs distributed (%v, %d)",
							cq.ID, en, local.IsCount, local.Count, reply.IsCount, reply.Count)
					}
					if !sameRows(local.Rows, reply.Rows) {
						t.Errorf("%s/%s: rows not byte-identical under chaos (local %d, distributed %d)",
							cq.ID, en, len(local.Rows), len(reply.Rows))
					}
					if local.OutputRecords != reply.OutputRecords || local.OutputBytes != reply.OutputBytes {
						t.Errorf("%s/%s: output shape mismatch under chaos: local (%d recs, %d B) vs distributed (%d recs, %d B)",
							cq.ID, en, local.OutputRecords, local.OutputBytes, reply.OutputRecords, reply.OutputBytes)
					}
					if !sameCounters(local.Counters, reply.Counters) {
						t.Errorf("%s/%s: counters mismatch under chaos", cq.ID, en)
					}
				}
			}
			// The peer pool bound must hold after the sweep (satellite:
			// bounded shuffle connections).
			for i, w := range tc.workers {
				if pc := w.PeerConns(); pc > 1 {
					t.Errorf("worker %d pools %d peer conns, bound is 1", i+1, pc)
				}
			}
			if st := net.Stats(); st.DroppedDials == 0 && st.Severed == 0 && st.Delayed == 0 {
				t.Error("chaos plan injected nothing; the parity sweep proved nothing")
			}
		})
	}
}

// TestDistributedPartitionRecovery cuts one worker off the network (master
// and peers, both directions) mid-query, lets the master declare it dead and
// re-execute its work, then heals the partition and requires (a) the query
// to finish byte-identical to local, and (b) the returning worker to be
// alive again and serving follow-up queries.
func TestDistributedPartitionRecovery(t *testing.T) {
	cq := bench.Catalog()[0]
	g, err := bench.Dataset(cq.Dataset, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	splitRecords := g.Len() / 24
	if splitRecords < 1 {
		splitRecords = 1
	}
	net := cluster.NewChaosNetwork(cluster.NetFaultPlan{})
	wcfg := chaosWorkerConfig()
	wcfg.TaskDelay = 10 * time.Millisecond
	mcfg := chaosMasterConfig(splitRecords)
	mcfg.HeartbeatTimeout = 300 * time.Millisecond
	tc := startChaosTestCluster(t, net, g, 3, wcfg, mcfg)

	q := enginetest.Compile(t, g, cq.Src)
	local, err := runLocalSplit(t, g, q, "ntga-lazy", splitRecords)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		reply *cluster.RunReply
		err   error
	}
	resCh := make(chan outcome, 1)
	go func() {
		reply, err := tc.client.Run(context.Background(), &cluster.RunArgs{
			Query:        cq.Src,
			Engine:       "ntga-lazy",
			Reducers:     parityReducers,
			SplitRecords: splitRecords,
			TimeoutMS:    120_000,
		})
		resCh <- outcome{reply, err}
	}()

	// Cut w3 off once it has finished work (so it holds committed map
	// output the survivors must regenerate), keep it dark past the
	// heartbeat timeout, then heal.
	victim := tc.workers[2]
	partitioned := false
	deadline := time.After(60 * time.Second)
	for !partitioned {
		select {
		case o := <-resCh:
			t.Fatalf("query finished before the partition landed (err=%v)", o.err)
		case <-deadline:
			t.Fatal("victim never accumulated tasks")
		case <-time.After(5 * time.Millisecond):
		}
		st, err := tc.client.Status(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, ws := range st.Workers {
			if ws.ID == victim.ID() && ws.TasksDone >= 2 {
				net.Isolate("w3")
				partitioned = true
				break
			}
		}
	}
	time.Sleep(2 * mcfg.HeartbeatTimeout)
	net.Rejoin("w3")

	o := <-resCh
	if o.err != nil {
		t.Fatalf("query did not survive the partition: %v", o.err)
	}
	if !sameRows(local.Rows, o.reply.Rows) {
		t.Errorf("post-partition rows not identical to local (local %d, distributed %d)", len(local.Rows), len(o.reply.Rows))
	}
	if !query.RowsEqual(refengine.Evaluate(q, g), o.reply.Rows) {
		t.Error("post-partition rows diverge from reference")
	}

	// The healed worker must rejoin the fleet — via a revived heartbeat or
	// a full re-registration, whichever won the race.
	healDeadline := time.Now().Add(15 * time.Second)
	for {
		st, err := tc.client.Status(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		alive := 0
		for _, ws := range st.Workers {
			if ws.Alive {
				alive++
			}
		}
		if alive == 3 {
			if st.WorkersLost < 1 {
				t.Errorf("partitioned worker was never declared lost (workersLost=%d)", st.WorkersLost)
			}
			break
		}
		if time.Now().After(healDeadline) {
			t.Fatalf("fleet never healed: %d/3 alive", alive)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// And it must do real work again: a fresh query, same parity bar.
	reply, err := tc.client.Run(context.Background(), &cluster.RunArgs{
		Query:        cq.Src,
		Engine:       "ntga-lazy",
		Reducers:     parityReducers,
		SplitRecords: splitRecords,
		TimeoutMS:    120_000,
	})
	if err != nil {
		t.Fatalf("post-heal query failed: %v", err)
	}
	if !sameRows(local.Rows, reply.Rows) {
		t.Error("post-heal rows not identical to local")
	}

	// Idle peer eviction: with no traffic, the bounded shuffle pools must
	// drain to zero — the fd-leak fix observable from the outside.
	drainDeadline := time.Now().Add(10 * time.Second)
	for {
		open := 0
		for _, w := range tc.workers {
			open += w.PeerConns()
		}
		if open == 0 {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatalf("peer pools never drained: %d conns still open", open)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestWorkerReregistersAfterMasterRestart kills the master outright, brings
// a fresh one up on the same address over the same dataset, and requires the
// surviving worker to re-register on its own (new ID, dictionary intact) and
// execute queries for the new master.
func TestWorkerReregistersAfterMasterRestart(t *testing.T) {
	cq := bench.Catalog()[0]
	g, err := bench.Dataset(cq.Dataset, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := chaosMasterConfig(paritySplit)
	m1, err := cluster.NewMaster(mcfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := m1.Addr()

	wcfg := chaosWorkerConfig()
	w := cluster.NewWorker(wcfg, nil, addr)
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	m1.Close()

	// Same address, same dataset: the worker's re-dialing master link finds
	// the new master, its re-registration gets a fresh ID, and its shipped
	// dictionary stays valid (same dataset version).
	m2, err := cluster.NewMaster(mcfg, g)
	if err != nil {
		t.Fatal(err)
	}
	var serveErr error
	for i := 0; i < 100; i++ {
		if serveErr = m2.Serve(addr); serveErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if serveErr != nil {
		t.Fatalf("restarting master on %s: %v", addr, serveErr)
	}
	defer m2.Close()

	deadline := time.Now().Add(20 * time.Second)
	for {
		st := m2.Status()
		alive := 0
		for _, ws := range st.Workers {
			if ws.Alive {
				alive++
			}
		}
		if alive == 1 {
			if st.WorkerReregistrations < 1 {
				t.Errorf("master accepted the worker without counting a re-registration (%d)", st.WorkerReregistrations)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never re-registered with the restarted master (workers=%d)", len(st.Workers))
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("worker failed permanently instead of re-registering: %v", err)
	}

	// The re-registered worker must carry real queries for the new master.
	c, err := cluster.Dial(nil, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := enginetest.Compile(t, g, cq.Src)
	local, err := runLocal(t, g, q, "ntga-lazy")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := c.Run(context.Background(), &cluster.RunArgs{
		Query:        cq.Src,
		Engine:       "ntga-lazy",
		Reducers:     parityReducers,
		SplitRecords: paritySplit,
		TimeoutMS:    120_000,
	})
	if err != nil {
		t.Fatalf("query after master restart: %v", err)
	}
	if !sameRows(local.Rows, reply.Rows) {
		t.Error("post-restart rows not identical to local")
	}
}
