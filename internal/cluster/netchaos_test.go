package cluster

import (
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"testing"
	"time"
)

func TestNetDrawDeterministicAndSeedSensitive(t *testing.T) {
	a := netDraw("w1", "master", 3, "sever", 42)
	if b := netDraw("w1", "master", 3, "sever", 42); b != a {
		t.Fatalf("netDraw not deterministic: %v vs %v", a, b)
	}
	if a < 0 || a >= 1 {
		t.Fatalf("netDraw out of [0,1): %v", a)
	}
	// Across seeds, checkpoints, and directions the draws must decorrelate;
	// identical values for every probe would mean the identity tuple is not
	// feeding the hash.
	same := 0
	for i := 0; i < 100; i++ {
		if netDraw("w1", "master", i, "sever", 42) == netDraw("w1", "master", i, "sever", 43) {
			same++
		}
		if netDraw("w1", "master", i, "sever", 42) == netDraw("master", "w1", i, "sever", 42) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("netDraw draws collide across seeds/directions %d/200 times", same)
	}
}

// echoSvc is a minimal RPC service for transport-level tests.
type echoSvc struct{}

func (echoSvc) Echo(args *string, reply *string) error {
	*reply = *args
	return nil
}

func (echoSvc) Fail(args *string, reply *string) error {
	return fmt.Errorf("echo: refusing %q", *args)
}

// serveEcho starts an Echo RPC server on tr and returns its address.
func serveEcho(t *testing.T, tr Transport) string {
	t.Helper()
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := rpc.NewServer()
	if err := srv.RegisterName("Echo", echoSvc{}); err != nil {
		t.Fatal(err)
	}
	go serveRPC(srv, ln)
	return ln.Addr().String()
}

func TestChaosPartitionIsDirected(t *testing.T) {
	n := NewChaosNetwork(NetFaultPlan{})
	addrA := serveEcho(t, n.Transport("a", nil))
	addrB := serveEcho(t, n.Transport("b", nil))

	callVia := func(tr Transport, addr string) error {
		c, err := dialRPC(tr, addr)
		if err != nil {
			return err
		}
		defer c.Close()
		var out string
		in := "ping"
		return c.Call("Echo.Echo", &in, &out)
	}

	n.Partition("b", "a")
	if err := callVia(n.Transport("b", nil), addrA); err == nil {
		t.Fatal("b -> a call succeeded across a partition")
	}
	// The reverse direction must be untouched: partitions are directed.
	if err := callVia(n.Transport("a", nil), addrB); err != nil {
		t.Fatalf("a -> b call failed though only b -> a is partitioned: %v", err)
	}
	n.Heal("b", "a")
	if err := callVia(n.Transport("b", nil), addrA); err != nil {
		t.Fatalf("b -> a call failed after heal: %v", err)
	}
}

func TestChaosPartitionSeversOpenConns(t *testing.T) {
	n := NewChaosNetwork(NetFaultPlan{})
	trA := n.Transport("a", nil)
	ln, err := trA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := n.Transport("b", nil).Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	srvConn := <-accepted
	defer srvConn.Close()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatalf("write before partition: %v", err)
	}

	n.Partition("b", "a")
	// The open connection must be dead, not just future dials: either the
	// chaos layer already closed the underlying conn, or the next write
	// draws the partition error.
	if _, err := conn.Write([]byte("y")); err == nil {
		t.Fatal("write on a partitioned connection succeeded")
	}
}

func TestChaosSeededDropsAreDeterministic(t *testing.T) {
	pattern := func(seed int64) string {
		n := NewChaosNetwork(NetFaultPlan{Seed: seed, DropRate: 0.5})
		var sb strings.Builder
		for i := 0; i < 64; i++ {
			if err := n.checkDial(edge{"w1", "master"}); err != nil {
				sb.WriteByte('x')
			} else {
				sb.WriteByte('.')
			}
		}
		return sb.String()
	}
	p1, p2 := pattern(7), pattern(7)
	if p1 != p2 {
		t.Fatalf("same seed produced different drop patterns:\n%s\n%s", p1, p2)
	}
	if !strings.Contains(p1, "x") || !strings.Contains(p1, ".") {
		t.Fatalf("DropRate=0.5 produced a degenerate pattern %s", p1)
	}
	if p1 == pattern(8) {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func TestChaosDelayAndSeverStats(t *testing.T) {
	n := NewChaosNetwork(NetFaultPlan{Seed: 3, SeverRate: 1, MaxSevers: 2, DelayRate: 1, Delay: time.Millisecond})
	e := edge{"a", "b"}
	for i := 0; i < 4; i++ {
		n.checkMessage(e)
	}
	st := n.Stats()
	if st.Severed != 2 {
		t.Errorf("MaxSevers=2 but severed %d", st.Severed)
	}
	if st.Delayed != 4 {
		t.Errorf("DelayRate=1 over 4 messages delayed %d", st.Delayed)
	}
}
