package rdf

import (
	"fmt"
	"sync"
	"testing"
)

func TestDictEncodeDecodeRoundtrip(t *testing.T) {
	d := NewDict()
	terms := []Term{
		NewIRI("http://ex.org/s1"),
		NewIRI("http://ex.org/p1"),
		NewLiteral("v"),
		NewLangLiteral("v", "en"),
		NewTypedLiteral("1", "http://xsd/int"),
		NewBlank("b0"),
	}
	ids := make([]ID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Encode(tm)
		if ids[i] == NoID {
			t.Fatalf("Encode(%v) returned NoID", tm)
		}
	}
	for i, tm := range terms {
		if got := d.Decode(ids[i]); got != tm {
			t.Errorf("Decode(%d) = %v, want %v", ids[i], got, tm)
		}
	}
	if d.Len() != len(terms) {
		t.Errorf("Len = %d, want %d", d.Len(), len(terms))
	}
}

func TestDictEncodeIdempotent(t *testing.T) {
	d := NewDict()
	a := d.Encode(NewIRI("x"))
	b := d.Encode(NewIRI("x"))
	if a != b {
		t.Errorf("same term encoded to %d and %d", a, b)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d after duplicate encode, want 1", d.Len())
	}
}

func TestDictLookup(t *testing.T) {
	d := NewDict()
	id := d.Encode(NewIRI("x"))
	got, ok := d.Lookup(NewIRI("x"))
	if !ok || got != id {
		t.Errorf("Lookup = (%d,%v), want (%d,true)", got, ok, id)
	}
	if _, ok := d.Lookup(NewIRI("absent")); ok {
		t.Error("Lookup(absent) reported present")
	}
	if d.Len() != 1 {
		t.Error("Lookup must not intern")
	}
}

func TestDictMustLookupPanics(t *testing.T) {
	d := NewDict()
	defer func() {
		if recover() == nil {
			t.Error("MustLookup(absent) did not panic")
		}
	}()
	d.MustLookup(NewIRI("absent"))
}

func TestDictFreeze(t *testing.T) {
	d := NewDict()
	d.Encode(NewIRI("known"))
	d.Freeze()
	// Known terms still encode fine.
	if d.Encode(NewIRI("known")) != 1 {
		t.Error("frozen dict failed to encode known term")
	}
	defer func() {
		if recover() == nil {
			t.Error("Encode of new term on frozen dict did not panic")
		}
	}()
	d.Encode(NewIRI("new"))
}

func TestDictDecodePanicsOnInvalid(t *testing.T) {
	d := NewDict()
	d.Encode(NewIRI("x"))
	for _, id := range []ID{NoID, 2, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Decode(%d) did not panic", id)
				}
			}()
			d.Decode(id)
		}()
	}
}

func TestDictConcurrentEncode(t *testing.T) {
	d := NewDict()
	const goroutines = 8
	const terms = 200
	var wg sync.WaitGroup
	results := make([][]ID, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			ids := make([]ID, terms)
			for i := 0; i < terms; i++ {
				ids[i] = d.Encode(NewIRI(fmt.Sprintf("http://ex.org/t%d", i)))
			}
			results[gi] = ids
		}(gi)
	}
	wg.Wait()
	if d.Len() != terms {
		t.Fatalf("Len = %d, want %d", d.Len(), terms)
	}
	for gi := 1; gi < goroutines; gi++ {
		for i := 0; i < terms; i++ {
			if results[gi][i] != results[0][i] {
				t.Fatalf("goroutine %d got id %d for term %d, goroutine 0 got %d",
					gi, results[gi][i], i, results[0][i])
			}
		}
	}
}

func TestTripleLess(t *testing.T) {
	cases := []struct {
		a, b Triple
		want bool
	}{
		{Triple{1, 1, 1}, Triple{2, 1, 1}, true},
		{Triple{1, 1, 1}, Triple{1, 2, 1}, true},
		{Triple{1, 1, 1}, Triple{1, 1, 2}, true},
		{Triple{1, 1, 1}, Triple{1, 1, 1}, false},
		{Triple{2, 1, 1}, Triple{1, 9, 9}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
