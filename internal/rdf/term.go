// Package rdf provides the core RDF data model used throughout the system:
// terms (IRIs, literals, blank nodes), triples, dictionary encoding of terms
// to dense integer IDs, and an N-Triples reader/writer.
//
// All higher layers (the MapReduce engines, the TripleGroup algebra, the
// benchmark harness) operate on dictionary-encoded triples for compactness;
// the Dict maps back to lexical form only at result-presentation time.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

// The three RDF term kinds.
const (
	IRI TermKind = iota
	Literal
	Blank
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a single RDF term. Value holds the lexical form without
// serialization syntax: the IRI string for IRIs (no angle brackets), the
// label for blank nodes (no "_:" prefix), and the literal value for
// literals. Literals may carry a language tag or a datatype IRI (at most
// one of the two, per RDF 1.1).
type Term struct {
	Kind     TermKind
	Value    string
	Lang     string // non-empty only for language-tagged literals
	Datatype string // non-empty only for typed literals
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(v, lang string) Term { return Term{Kind: Literal, Value: v, Lang: lang} }

// NewTypedLiteral returns a datatyped literal term.
func NewTypedLiteral(v, datatype string) Term {
	return Term{Kind: Literal, Value: v, Datatype: datatype}
}

// NewBlank returns a blank-node term with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		var sb strings.Builder
		sb.WriteByte('"')
		sb.WriteString(escapeLiteral(t.Value))
		sb.WriteByte('"')
		if t.Lang != "" {
			sb.WriteByte('@')
			sb.WriteString(t.Lang)
		} else if t.Datatype != "" {
			sb.WriteString("^^<")
			sb.WriteString(t.Datatype)
			sb.WriteByte('>')
		}
		return sb.String()
	default:
		return fmt.Sprintf("?!term(%d,%q)", t.Kind, t.Value)
	}
}

// Key returns a canonical string that uniquely identifies the term; it is
// used as the dictionary key. It is cheaper than String for literals that
// need no escaping and is injective across kinds.
func (t Term) Key() string {
	switch t.Kind {
	case IRI:
		return "i" + t.Value
	case Blank:
		return "b" + t.Value
	default:
		if t.Lang != "" {
			return "l" + t.Lang + "\x00" + t.Value
		}
		if t.Datatype != "" {
			return "t" + t.Datatype + "\x00" + t.Value
		}
		return "p" + t.Value
	}
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
