package rdf

import (
	"fmt"
	"sync"
)

// ID is a dense dictionary-encoded identifier for an RDF term. ID 0 is
// reserved as the zero/invalid value; valid IDs start at 1.
type ID uint32

// NoID is the invalid/absent term identifier.
const NoID ID = 0

// Dict is a bidirectional, concurrency-safe dictionary mapping RDF terms to
// dense IDs. Encoding the same term twice yields the same ID.
type Dict struct {
	mu     sync.RWMutex
	byKey  map[string]ID
	terms  []Term // terms[id-1] is the term for id
	frozen bool
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byKey: make(map[string]ID)}
}

// Encode interns the term and returns its ID, allocating a fresh ID if the
// term has not been seen before. Encode panics if the dictionary has been
// frozen and the term is unknown: freezing exists to catch accidental
// dictionary growth during query execution, which must never mint terms.
func (d *Dict) Encode(t Term) ID {
	key := t.Key()
	d.mu.RLock()
	id, ok := d.byKey[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byKey[key]; ok {
		return id
	}
	if d.frozen {
		panic(fmt.Sprintf("rdf: Encode(%s) on frozen dictionary", t))
	}
	d.terms = append(d.terms, t)
	id = ID(len(d.terms))
	d.byKey[key] = id
	return id
}

// Lookup returns the ID for a term without interning it. The second result
// reports whether the term was present.
func (d *Dict) Lookup(t Term) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byKey[t.Key()]
	return id, ok
}

// MustLookup returns the ID for a term, panicking if absent. It is intended
// for tests and for query compilation against a known dataset.
func (d *Dict) MustLookup(t Term) ID {
	id, ok := d.Lookup(t)
	if !ok {
		panic(fmt.Sprintf("rdf: term %s not in dictionary", t))
	}
	return id
}

// Decode returns the term for an ID. It panics on NoID or an out-of-range ID;
// IDs are only produced by Encode, so an invalid ID is a programming error.
func (d *Dict) Decode(id ID) Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == NoID || int(id) > len(d.terms) {
		panic(fmt.Sprintf("rdf: Decode(%d) out of range (size %d)", id, len(d.terms)))
	}
	return d.terms[id-1]
}

// Len reports the number of distinct terms interned.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// Range calls f for every (id, term) pair in id order, stopping early if f
// returns false. The dictionary must not be mutated from within f.
func (d *Dict) Range(f func(ID, Term) bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for i, t := range d.terms {
		if !f(ID(i+1), t) {
			return
		}
	}
}

// Freeze marks the dictionary read-only: subsequent Encode calls for unknown
// terms panic. Query execution over a loaded dataset should never mint terms.
func (d *Dict) Freeze() {
	d.mu.Lock()
	d.frozen = true
	d.mu.Unlock()
}

// Extend appends terms in order, ignoring the frozen flag. It exists for
// replication, not for query execution: a cluster worker whose dictionary is
// frozen must still be able to append the master's newly ingested terms, in
// the master's ID order, so both sides keep identical ID assignments. A term
// that is already interned must sit exactly where the append would have put
// it (replicas extending from a shared prefix); anything else means the two
// dictionaries have diverged and the extension is refused.
func (d *Dict) Extend(terms []Term) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range terms {
		key := t.Key()
		if id, ok := d.byKey[key]; ok {
			return fmt.Errorf("rdf: Extend: term %s already interned as ID %d", t, id)
		}
		d.terms = append(d.terms, t)
		d.byKey[key] = ID(len(d.terms))
	}
	return nil
}

// Triple is a dictionary-encoded RDF triple.
type Triple struct {
	S, P, O ID
}

// Less orders triples by (S, P, O); used for canonical sorting in tests and
// deterministic output.
func (t Triple) Less(u Triple) bool {
	if t.S != u.S {
		return t.S < u.S
	}
	if t.P != u.P {
		return t.P < u.P
	}
	return t.O < u.O
}

func (t Triple) String() string {
	return fmt.Sprintf("(%d %d %d)", t.S, t.P, t.O)
}
