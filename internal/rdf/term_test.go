package rdf

import (
	"testing"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://ex.org/a"), "<http://ex.org/a>"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("bonjour", "fr"), `"bonjour"@fr`},
		{NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"), `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewLiteral("line1\nline2"), `"line1\nline2"`},
		{NewLiteral(`quote " and \ back`), `"quote \" and \\ back"`},
		{NewLiteral("tab\there"), `"tab\there"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermKeyInjective(t *testing.T) {
	// Terms with the same Value but different kinds or tags must have
	// distinct dictionary keys.
	terms := []Term{
		NewIRI("x"),
		NewBlank("x"),
		NewLiteral("x"),
		NewLangLiteral("x", "en"),
		NewLangLiteral("x", "fr"),
		NewTypedLiteral("x", "http://dt/1"),
		NewTypedLiteral("x", "http://dt/2"),
	}
	seen := make(map[string]Term)
	for _, tm := range terms {
		k := tm.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision: %v and %v both map to %q", prev, tm, k)
		}
		seen[k] = tm
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "IRI" || Literal.String() != "Literal" || Blank.String() != "Blank" {
		t.Errorf("TermKind.String mismatch: %s %s %s", IRI, Literal, Blank)
	}
	if got := TermKind(9).String(); got != "TermKind(9)" {
		t.Errorf("unknown kind = %q", got)
	}
}
