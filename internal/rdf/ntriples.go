package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError describes a syntax error in an N-Triples input, with the
// 1-based line number at which it occurred.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s", e.Line, e.Msg)
}

// ReadNTriples parses N-Triples from r into a new Graph. Comment lines
// (starting with '#') and blank lines are skipped. The subset supported is
// the full N-Triples grammar except IRIs containing escaped code points.
func ReadNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	if err := ReadNTriplesInto(r, g); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadNTriplesInto parses N-Triples from r, appending to an existing graph.
func ReadNTriplesInto(r io.Reader, g *Graph) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		s, p, o, err := parseTripleLine(line)
		if err != nil {
			return &ParseError{Line: lineNo, Msg: err.Error()}
		}
		g.Add(s, p, o)
	}
	return sc.Err()
}

// ParseTriple parses a single N-Triples statement (terminated by '.').
func ParseTriple(line string) (s, p, o Term, err error) {
	return parseTripleLine(strings.TrimSpace(line))
}

// ParseTermText parses a single term in N-Triples syntax, requiring the
// whole input to be consumed. It is the inverse of Term.String.
func ParseTermText(s string) (Term, error) {
	t, rest, err := parseTerm(s)
	if err != nil {
		return Term{}, err
	}
	if strings.TrimSpace(rest) != "" {
		return Term{}, fmt.Errorf("ntriples: trailing input %q after term", rest)
	}
	return t, nil
}

func parseTripleLine(line string) (s, p, o Term, err error) {
	rest := line
	if s, rest, err = parseTerm(rest); err != nil {
		return s, p, o, fmt.Errorf("subject: %w", err)
	}
	if s.Kind == Literal {
		return s, p, o, fmt.Errorf("subject must not be a literal")
	}
	if p, rest, err = parseTerm(rest); err != nil {
		return s, p, o, fmt.Errorf("predicate: %w", err)
	}
	if p.Kind != IRI {
		return s, p, o, fmt.Errorf("predicate must be an IRI")
	}
	if o, rest, err = parseTerm(rest); err != nil {
		return s, p, o, fmt.Errorf("object: %w", err)
	}
	rest = strings.TrimSpace(rest)
	if rest != "." {
		return s, p, o, fmt.Errorf("expected terminating '.', got %q", rest)
	}
	return s, p, o, nil
}

// parseTerm consumes one term from the front of s and returns the remainder.
func parseTerm(s string) (Term, string, error) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return Term{}, "", fmt.Errorf("unexpected end of statement")
	}
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return Term{}, "", fmt.Errorf("unterminated IRI")
		}
		return NewIRI(s[1:end]), s[end+1:], nil
	case '_':
		if len(s) < 2 || s[1] != ':' {
			return Term{}, "", fmt.Errorf("malformed blank node")
		}
		end := 2
		for end < len(s) && !isWS(s[end]) {
			end++
		}
		if end == 2 {
			return Term{}, "", fmt.Errorf("empty blank node label")
		}
		return NewBlank(s[2:end]), s[end:], nil
	case '"':
		val, rest, err := parseQuoted(s)
		if err != nil {
			return Term{}, "", err
		}
		// Optional language tag or datatype.
		if strings.HasPrefix(rest, "@") {
			end := 1
			for end < len(rest) && !isWS(rest[end]) {
				end++
			}
			return NewLangLiteral(val, rest[1:end]), rest[end:], nil
		}
		if strings.HasPrefix(rest, "^^<") {
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return Term{}, "", fmt.Errorf("unterminated datatype IRI")
			}
			return NewTypedLiteral(val, rest[3:end]), rest[end+1:], nil
		}
		return NewLiteral(val), rest, nil
	default:
		return Term{}, "", fmt.Errorf("unexpected character %q", s[0])
	}
}

// parseQuoted consumes a double-quoted string with backslash escapes from
// the front of s (which must start with '"').
func parseQuoted(s string) (val, rest string, err error) {
	var sb strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return sb.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in literal")
			}
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case 't':
				sb.WriteByte('\t')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				return "", "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
		default:
			sb.WriteByte(c)
		}
		i++
	}
	return "", "", fmt.Errorf("unterminated literal")
}

func isWS(c byte) bool { return c == ' ' || c == '\t' }

// WriteNTriples serializes the graph in canonical N-Triples form, one triple
// per line, in the graph's current triple order.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples {
		if _, err := fmt.Fprintf(bw, "%s %s %s .\n",
			g.Dict.Decode(t.S), g.Dict.Decode(t.P), g.Dict.Decode(t.O)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
