package rdf

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadNTriplesBasic(t *testing.T) {
	input := `# a comment
<http://ex.org/gene9> <http://ex.org/xGO> <http://ex.org/go1> .
<http://ex.org/gene9> <http://ex.org/label> "retinoid X receptor" .

<http://ex.org/gene9> <http://ex.org/synonym> "RCoR-1"@en .
_:b1 <http://ex.org/score> "3.5"^^<http://www.w3.org/2001/XMLSchema#double> .
`
	g, err := ReadNTriples(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if g.Len() != 4 {
		t.Fatalf("parsed %d triples, want 4", g.Len())
	}
	// Spot-check the language-tagged literal and the blank node.
	tr := g.Triples[2]
	if got := g.Dict.Decode(tr.O); got != NewLangLiteral("RCoR-1", "en") {
		t.Errorf("triple 2 object = %v", got)
	}
	tr = g.Triples[3]
	if got := g.Dict.Decode(tr.S); got != NewBlank("b1") {
		t.Errorf("triple 3 subject = %v", got)
	}
	if got := g.Dict.Decode(tr.O); got != NewTypedLiteral("3.5", "http://www.w3.org/2001/XMLSchema#double") {
		t.Errorf("triple 3 object = %v", got)
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"missing dot", `<http://a> <http://b> <http://c>`},
		{"literal subject", `"lit" <http://b> <http://c> .`},
		{"blank predicate", `<http://a> _:b <http://c> .`},
		{"literal predicate", `<http://a> "p" <http://c> .`},
		{"unterminated iri", `<http://a <http://b> <http://c> .`},
		{"unterminated literal", `<http://a> <http://b> "oops .`},
		{"garbage", `hello world .`},
		{"dangling escape", `<http://a> <http://b> "x\` + `" .`},
		{"bad escape", `<http://a> <http://b> "x\q" .`},
		{"truncated", `<http://a> <http://b>`},
		{"trailing garbage", `<http://a> <http://b> <http://c> . extra`},
		{"empty blank label", `_: <http://b> <http://c> .`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadNTriples(strings.NewReader(c.input))
			if err == nil {
				t.Errorf("input %q parsed without error", c.input)
			}
			var pe *ParseError
			if !errorsAs(err, &pe) {
				t.Errorf("error %v is not a *ParseError", err)
			} else if pe.Line != 1 {
				t.Errorf("error line = %d, want 1", pe.Line)
			}
		})
	}
}

// errorsAs is a tiny local wrapper to avoid importing errors just for tests.
func errorsAs(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestNTriplesRoundtrip(t *testing.T) {
	g := NewGraph()
	g.Add(NewIRI("http://ex/s"), NewIRI("http://ex/p"), NewLiteral("plain"))
	g.Add(NewIRI("http://ex/s"), NewIRI("http://ex/p"), NewLangLiteral("hi", "en"))
	g.Add(NewBlank("n0"), NewIRI("http://ex/q"), NewTypedLiteral("7", "http://xsd/int"))
	g.Add(NewIRI("http://ex/s"), NewIRI("http://ex/p"), NewLiteral("with \"quotes\" and \\slash\n"))

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatalf("WriteNTriples: %v", err)
	}
	g2, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("roundtrip triple count %d, want %d", g2.Len(), g.Len())
	}
	for i := range g.Triples {
		for _, pair := range [][2]Term{
			{g.Dict.Decode(g.Triples[i].S), g2.Dict.Decode(g2.Triples[i].S)},
			{g.Dict.Decode(g.Triples[i].P), g2.Dict.Decode(g2.Triples[i].P)},
			{g.Dict.Decode(g.Triples[i].O), g2.Dict.Decode(g2.Triples[i].O)},
		} {
			if pair[0] != pair[1] {
				t.Errorf("triple %d term mismatch: %v vs %v", i, pair[0], pair[1])
			}
		}
	}
}

// TestNTriplesLiteralRoundtripQuick property-tests that any literal value
// survives a serialize/parse cycle.
func TestNTriplesLiteralRoundtripQuick(t *testing.T) {
	f := func(val string) bool {
		// Scanner-based reader is line-oriented; embedded newlines are
		// escaped by the writer so they are safe.
		g := NewGraph()
		g.Add(NewIRI("http://s"), NewIRI("http://p"), NewLiteral(val))
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			return false
		}
		g2, err := ReadNTriples(&buf)
		if err != nil || g2.Len() != 1 {
			return false
		}
		return g2.Dict.Decode(g2.Triples[0].O) == NewLiteral(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGraphDedup(t *testing.T) {
	g := NewGraph()
	s, p, o := NewIRI("s"), NewIRI("p"), NewIRI("o")
	g.Add(s, p, o)
	g.Add(s, p, o)
	g.Add(s, p, NewIRI("o2"))
	if removed := g.Dedup(); removed != 1 {
		t.Errorf("Dedup removed %d, want 1", removed)
	}
	if g.Len() != 2 {
		t.Errorf("Len after dedup = %d, want 2", g.Len())
	}
	if !sort.SliceIsSorted(g.Triples, func(i, j int) bool { return g.Triples[i].Less(g.Triples[j]) }) {
		t.Error("Dedup did not leave triples sorted")
	}
}

func TestGraphPropertiesAndSubjects(t *testing.T) {
	g := NewGraph()
	g.Add(NewIRI("s1"), NewIRI("p1"), NewIRI("o1"))
	g.Add(NewIRI("s1"), NewIRI("p2"), NewIRI("o2"))
	g.Add(NewIRI("s2"), NewIRI("p1"), NewIRI("o3"))
	props := g.Properties()
	subs := g.Subjects()
	if len(props) != 2 {
		t.Errorf("Properties = %v, want 2 entries", props)
	}
	if len(subs) != 2 {
		t.Errorf("Subjects = %v, want 2 entries", subs)
	}
}

func TestPropertyMultiplicity(t *testing.T) {
	g := NewGraph()
	s1, s2 := NewIRI("s1"), NewIRI("s2")
	p, q := NewIRI("p"), NewIRI("q")
	// s1 has 3 p-triples, s2 has 1; q has 1 each.
	g.Add(s1, p, NewIRI("a"))
	g.Add(s1, p, NewIRI("b"))
	g.Add(s1, p, NewIRI("c"))
	g.Add(s2, p, NewIRI("d"))
	g.Add(s1, q, NewIRI("e"))
	g.Add(s2, q, NewIRI("f"))
	mult := g.PropertyMultiplicity()
	pid := g.Dict.MustLookup(p)
	qid := g.Dict.MustLookup(q)
	want := map[ID]int{pid: 3, qid: 1}
	if !reflect.DeepEqual(mult, want) {
		t.Errorf("PropertyMultiplicity = %v, want %v", mult, want)
	}
}
