package rdf

import (
	"sort"

	"ntga/internal/core/hash64"
)

// Graph is a dictionary-encoded triple multiset together with its dictionary.
// It is the in-memory representation of a dataset before it is loaded into
// the simulated DFS, and the working representation for the reference engine.
type Graph struct {
	Dict    *Dict
	Triples []Triple
}

// NewGraph returns an empty graph with a fresh dictionary.
func NewGraph() *Graph {
	return &Graph{Dict: NewDict()}
}

// Add interns the three terms and appends the resulting triple.
func (g *Graph) Add(s, p, o Term) Triple {
	t := Triple{g.Dict.Encode(s), g.Dict.Encode(p), g.Dict.Encode(o)}
	g.Triples = append(g.Triples, t)
	return t
}

// AddID appends an already-encoded triple.
func (g *Graph) AddID(t Triple) { g.Triples = append(g.Triples, t) }

// Version content-hashes the graph's triples. IDs are stable for one
// dictionary, which lives exactly as long as the loaded dataset, so two
// processes that built their graphs the same way (or shipped the dictionary
// over the wire in ID order) agree on the version — the handshake the
// distributed cluster uses to refuse mixed datasets.
func (g *Graph) Version() string {
	h := hash64.New()
	for _, t := range g.Triples {
		h.Addf("%d,%d,%d;", t.S, t.P, t.O)
	}
	return h.Hex()
}

// Len reports the number of triples.
func (g *Graph) Len() int { return len(g.Triples) }

// Dedup sorts the triples canonically and removes exact duplicates, matching
// RDF set semantics. It returns the number of duplicates removed.
func (g *Graph) Dedup() int {
	sort.Slice(g.Triples, func(i, j int) bool { return g.Triples[i].Less(g.Triples[j]) })
	out := g.Triples[:0]
	var prev Triple
	removed := 0
	for i, t := range g.Triples {
		if i > 0 && t == prev {
			removed++
			continue
		}
		out = append(out, t)
		prev = t
	}
	g.Triples = out
	return removed
}

// Properties returns the set of distinct property IDs in the graph, sorted.
func (g *Graph) Properties() []ID {
	seen := make(map[ID]struct{})
	for _, t := range g.Triples {
		seen[t.P] = struct{}{}
	}
	out := make([]ID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subjects returns the set of distinct subject IDs in the graph, sorted.
func (g *Graph) Subjects() []ID {
	seen := make(map[ID]struct{})
	for _, t := range g.Triples {
		seen[t.S] = struct{}{}
	}
	out := make([]ID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PropertyMultiplicity returns, for each property, the maximum number of
// triples sharing one subject with that property — the "multiplicity" the
// paper identifies as the driver of intermediate-result redundancy.
func (g *Graph) PropertyMultiplicity() map[ID]int {
	counts := make(map[[2]ID]int)
	for _, t := range g.Triples {
		counts[[2]ID{t.S, t.P}]++
	}
	max := make(map[ID]int)
	for sp, n := range counts {
		if n > max[sp[1]] {
			max[sp[1]] = n
		}
	}
	return max
}
