package refengine

import (
	"testing"

	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

func ex(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

func bioGraph() *rdf.Graph {
	g := rdf.NewGraph()
	g.Add(ex("gene9"), ex("label"), rdf.NewLiteral("retinoid X receptor"))
	g.Add(ex("gene9"), ex("xGO"), ex("go1"))
	g.Add(ex("gene9"), ex("xGO"), ex("go9"))
	g.Add(ex("gene9"), ex("synonym"), rdf.NewLiteral("RCoR-1"))
	g.Add(ex("gene9"), ex("xRef"), ex("hs2131"))
	g.Add(ex("gene3"), ex("label"), rdf.NewLiteral("hexokinase"))
	g.Add(ex("gene3"), ex("xGO"), ex("go1"))
	g.Add(ex("go1"), ex("type"), ex("GOTerm"))
	g.Add(ex("go1"), ex("label"), rdf.NewLiteral("transcription"))
	g.Add(ex("go9"), ex("type"), ex("GOTerm"))
	return g
}

func eval(t *testing.T, g *rdf.Graph, src string) (*query.Query, []query.Row) {
	t.Helper()
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := query.Compile(pq, g.Dict)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return q, Evaluate(q, g)
}

func TestSingleBoundPattern(t *testing.T) {
	g := bioGraph()
	_, rows := eval(t, g, `SELECT * WHERE { ?s <http://ex/xGO> ?o . }`)
	if len(rows) != 3 {
		t.Errorf("rows = %d, want 3", len(rows))
	}
}

func TestStarJoinMultiValued(t *testing.T) {
	g := bioGraph()
	// gene9 has 2 xGO values × 1 label = 2 rows; gene3 has 1×1 = 1 row.
	_, rows := eval(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?go . }`)
	if len(rows) != 3 {
		t.Errorf("rows = %d, want 3", len(rows))
	}
}

func TestUnboundPropertyAllTriples(t *testing.T) {
	g := bioGraph()
	// ?s ?p ?o matches every triple.
	_, rows := eval(t, g, `SELECT * WHERE { ?s ?p ?o . }`)
	if len(rows) != g.Len() {
		t.Errorf("rows = %d, want %d", len(rows), g.Len())
	}
}

func TestUnboundPropertyStarRedundancy(t *testing.T) {
	g := bioGraph()
	// The paper's running example: bound {label, xGO} plus one unbound
	// pattern. gene9: 1 label × 2 xGO × 5 triples = 10 rows; gene3:
	// 1 × 1 × 2 = 2 rows.
	_, rows := eval(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?go . ?g ?p ?o . }`)
	if len(rows) != 12 {
		t.Errorf("rows = %d, want 12", len(rows))
	}
}

func TestUnboundMatchesBoundTripleToo(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(ex("s"), ex("label"), rdf.NewLiteral("only"))
	// SPARQL semantics: ?p may bind to label even though label is also a
	// bound pattern.
	_, rows := eval(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?s ex:label ?l . ?s ?p ?o . }`)
	if len(rows) != 1 {
		t.Errorf("rows = %d, want 1 (unbound binds the bound triple)", len(rows))
	}
}

func TestObjectSubjectJoin(t *testing.T) {
	g := bioGraph()
	_, rows := eval(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?l .
  ?g ex:xGO ?go .
  ?go ex:type ?t .
}`)
	// gene9→go1, gene9→go9, gene3→go1; all three go terms have type.
	if len(rows) != 3 {
		t.Errorf("rows = %d, want 3", len(rows))
	}
}

func TestJoinOnUnboundObject(t *testing.T) {
	g := bioGraph()
	// B1-style: unbound pattern's object is the join variable.
	q, rows := eval(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl .
  ?g ?p ?x .
  ?x ex:type ?t .
}`)
	// Matches where some triple of ?g points at a typed node:
	// gene9 --xGO--> go1, gene9 --xGO--> go9, gene3 --xGO--> go1.
	if len(rows) != 3 {
		t.Errorf("rows = %d, want 3\n%s", len(rows), dump(q, rows))
	}
}

func TestFilterEqAndConstObject(t *testing.T) {
	g := bioGraph()
	_, r1 := eval(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:xGO ?go . FILTER(?go = ex:go1) }`)
	_, r2 := eval(t, g, `
PREFIX ex: <http://ex/>
SELECT ?g WHERE { ?g ex:xGO ex:go1 . }`)
	if len(r1) != 2 || len(r2) != 2 {
		t.Errorf("filter rows = %d, const rows = %d, want 2 and 2", len(r1), len(r2))
	}
}

func TestFilterNeq(t *testing.T) {
	g := bioGraph()
	_, rows := eval(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:xGO ?go . FILTER(?go != ex:go1) }`)
	if len(rows) != 1 {
		t.Errorf("rows = %d, want 1", len(rows))
	}
}

func TestFilterContains(t *testing.T) {
	g := bioGraph()
	// A6-style: unbound property with object partially bound by substring.
	_, rows := eval(t, g, `
SELECT * WHERE { ?s ?p ?o . FILTER(CONTAINS(?o, "hexokinase")) }`)
	if len(rows) != 1 {
		t.Errorf("rows = %d, want 1", len(rows))
	}
}

func TestConstantSubject(t *testing.T) {
	g := bioGraph()
	_, rows := eval(t, g, `SELECT ?p ?o WHERE { <http://ex/gene9> ?p ?o . }`)
	if len(rows) != 5 {
		t.Errorf("rows = %d, want 5", len(rows))
	}
}

func TestSharedVariableAcrossStars(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(ex("a"), ex("p"), ex("x"))
	g.Add(ex("x"), ex("q"), ex("y"))
	g.Add(ex("x"), ex("q"), ex("z"))
	// The join variable must bind consistently across stars.
	_, rows := eval(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?s ex:p ?x . ?x ex:q ?y . }`)
	if len(rows) != 2 {
		t.Errorf("rows = %d, want 2", len(rows))
	}
}

func TestEmptyResult(t *testing.T) {
	g := bioGraph()
	_, rows := eval(t, g, `SELECT * WHERE { ?s <http://ex/absent> ?o . }`)
	if len(rows) != 0 {
		t.Errorf("rows = %d, want 0", len(rows))
	}
}

func TestTwoUnboundSlotsCrossProduct(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(ex("s"), ex("a"), ex("1"))
	g.Add(ex("s"), ex("b"), ex("2"))
	g.Add(ex("s"), ex("c"), ex("3"))
	// B3-style: two unbound patterns on the same subject: 3 × 3 = 9 rows.
	_, rows := eval(t, g, `SELECT * WHERE { ?s ?p ?o . ?s ?q ?r . }`)
	if len(rows) != 9 {
		t.Errorf("rows = %d, want 9", len(rows))
	}
}

func TestProjectionAndDistinct(t *testing.T) {
	g := bioGraph()
	q, rows := eval(t, g, `
PREFIX ex: <http://ex/>
SELECT DISTINCT ?g WHERE { ?g ex:xGO ?go . }`)
	proj := q.ProjectAll(rows)
	if len(proj) != 2 {
		t.Errorf("distinct projected rows = %d, want 2", len(proj))
	}
}

func dump(q *query.Query, rows []query.Row) string {
	s := ""
	for _, r := range rows {
		s += q.FormatRow(r) + "\n"
	}
	return s
}
