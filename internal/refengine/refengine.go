// Package refengine evaluates basic graph patterns directly over an
// in-memory graph with pattern-at-a-time backtracking. It is the semantic
// ground truth every MapReduce engine (relational-style and NTGA) is tested
// against: slow, obviously correct, and free of the structural restrictions
// the distributed planners impose.
package refengine

import (
	"strings"

	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

// Evaluate returns all full binding rows (indexed by q.AllVars) of the
// query's WHERE clause over the graph, with FILTERs applied. Projection and
// DISTINCT are left to the caller (query.ProjectAll), so that engines can be
// compared on complete rows.
func Evaluate(q *query.Query, g *rdf.Graph) []query.Row {
	ev := &evaluator{q: q, g: g, bySubject: make(map[rdf.ID][]rdf.Triple)}
	for _, t := range g.Triples {
		ev.bySubject[t.S] = append(ev.bySubject[t.S], t)
	}
	binding := make(query.Row, len(q.AllVars))
	ev.match(0, binding)
	return ev.rows
}

type evaluator struct {
	q         *query.Query
	g         *rdf.Graph
	bySubject map[rdf.ID][]rdf.Triple
	rows      []query.Row
}

// resolve returns the concrete ID a pattern term requires under the current
// binding, or NoID if the position is free.
func (ev *evaluator) resolve(t sparql.PatternTerm, binding query.Row) (rdf.ID, bool) {
	if t.IsVar {
		if id := binding[ev.q.VarIdx[t.Var]]; id != rdf.NoID {
			return id, true
		}
		return rdf.NoID, true
	}
	id, ok := ev.q.Dict.Lookup(t.Term)
	if !ok {
		return rdf.NoID, false // constant absent from data: no match possible
	}
	return id, true
}

func (ev *evaluator) match(pi int, binding query.Row) {
	if pi == len(ev.q.Src.Where) {
		ev.rows = append(ev.rows, binding.Clone())
		return
	}
	tp := ev.q.Src.Where[pi]
	s, ok := ev.resolve(tp.S, binding)
	if !ok {
		return
	}
	p, ok := ev.resolve(tp.P, binding)
	if !ok {
		return
	}
	o, ok := ev.resolve(tp.O, binding)
	if !ok {
		return
	}

	candidates := ev.g.Triples
	if s != rdf.NoID {
		candidates = ev.bySubject[s]
	}
	for _, tr := range candidates {
		if s != rdf.NoID && tr.S != s {
			continue
		}
		if p != rdf.NoID && tr.P != p {
			continue
		}
		if o != rdf.NoID && tr.O != o {
			continue
		}
		// Bind free variables, checking filters eagerly.
		var bound []int
		ok := true
		bind := func(t sparql.PatternTerm, id rdf.ID) {
			if !ok || !t.IsVar {
				return
			}
			idx := ev.q.VarIdx[t.Var]
			if binding[idx] != rdf.NoID {
				if binding[idx] != id {
					ok = false
				}
				return
			}
			if !ev.filterOK(t.Var, id) {
				ok = false
				return
			}
			binding[idx] = id
			bound = append(bound, idx)
		}
		bind(tp.S, tr.S)
		bind(tp.P, tr.P)
		bind(tp.O, tr.O)
		if ok {
			ev.match(pi+1, binding)
		}
		for _, idx := range bound {
			binding[idx] = rdf.NoID
		}
	}
}

// filterOK applies every FILTER mentioning the variable to a candidate ID.
func (ev *evaluator) filterOK(v string, id rdf.ID) bool {
	for _, f := range ev.q.Src.Filters {
		if f.Var != v {
			continue
		}
		switch f.Op {
		case sparql.FilterEq:
			want, ok := ev.q.Dict.Lookup(f.Value)
			if !ok || id != want {
				return false
			}
		case sparql.FilterNeq:
			if want, ok := ev.q.Dict.Lookup(f.Value); ok && id == want {
				return false
			}
		case sparql.FilterContains:
			if !strings.Contains(ev.q.Dict.Decode(id).Value, f.Value.Value) {
				return false
			}
		}
	}
	return true
}
