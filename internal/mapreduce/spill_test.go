package mapreduce

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"ntga/internal/hdfs"
)

// spillEngine builds an engine with a bounded sort buffer over a fresh DFS.
func spillEngine(sortBuffer int64, mergeFactor int) *Engine {
	return NewEngine(hdfs.New(hdfs.Config{Nodes: 4}), EngineConfig{
		SplitRecords: 8, DefaultReducers: 3,
		SortBufferBytes: sortBuffer, MergeFactor: mergeFactor,
	})
}

func wordLines(n int) [][]byte {
	var lines [][]byte
	for j := 0; j < n; j++ {
		lines = append(lines, []byte(fmt.Sprintf("w%d w%d w%d w%d", j%7, j%13, j%3, j%29)))
	}
	return lines
}

func readWords(t *testing.T, d *hdfs.DFS, name string) [][]byte {
	t.Helper()
	recs, err := d.ReadAll(name)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestSpillProducesIdenticalOutput(t *testing.T) {
	// The same wordcount with an unbounded buffer and with a buffer far
	// below the map output size must produce byte-identical output files.
	lines := wordLines(200)
	var outputs [2][][]byte
	var metrics [2]JobMetrics
	for i, buf := range []int64{0, 64} {
		e := spillEngine(buf, 4)
		if err := e.DFS().WriteFile("in", lines); err != nil {
			t.Fatal(err)
		}
		m, err := e.Run(wordCountJob("in", "out"))
		if err != nil {
			t.Fatalf("buffer %d: %v", buf, err)
		}
		metrics[i] = m
		outputs[i] = readWords(t, e.DFS(), "out")
		if got := e.DFS().SpillUsed(); got != 0 {
			t.Errorf("buffer %d: SpillUsed after job = %d, want 0", buf, got)
		}
	}
	if len(outputs[0]) == 0 || len(outputs[0]) != len(outputs[1]) {
		t.Fatalf("output lengths: %d vs %d", len(outputs[0]), len(outputs[1]))
	}
	for i := range outputs[0] {
		if !bytes.Equal(outputs[0][i], outputs[1][i]) {
			t.Fatalf("record %d differs: %q vs %q", i, outputs[0][i], outputs[1][i])
		}
	}
	if metrics[0].SpilledBytes != 0 || metrics[0].MergePasses != 0 {
		t.Errorf("unbounded run spilled: %+v", metrics[0])
	}
	if metrics[1].SpilledBytes == 0 || metrics[1].SpilledRecords == 0 {
		t.Errorf("bounded run did not spill: %+v", metrics[1])
	}
	if metrics[1].MergePasses == 0 {
		t.Errorf("bounded run reported no merge passes: %+v", metrics[1])
	}
	if metrics[0].PeakSortBufferBytes <= metrics[1].PeakSortBufferBytes {
		t.Errorf("peak buffer not reduced: unbounded %d vs bounded %d",
			metrics[0].PeakSortBufferBytes, metrics[1].PeakSortBufferBytes)
	}
	// Shuffle metrics are pre-spill and must be unaffected by the budget.
	if metrics[0].MapOutputRecords != metrics[1].MapOutputRecords ||
		metrics[0].MapOutputBytes != metrics[1].MapOutputBytes {
		t.Errorf("map output metrics changed under spilling: %+v vs %+v", metrics[0], metrics[1])
	}
}

func TestSpillMergeFactorForcesIntermediatePasses(t *testing.T) {
	// A tiny merge factor with many runs per partition forces multi-pass
	// external merges; output must still be correct.
	e := spillEngine(48, 2)
	lines := wordLines(300)
	if err := e.DFS().WriteFile("in", lines); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run(wordCountJob("in", "out"))
	if err != nil {
		t.Fatal(err)
	}
	// Every partition's final merge is one pass; intermediate passes must
	// appear on top of that with factor 2.
	if m.MergePasses <= int64(m.ReduceTasks) {
		t.Errorf("MergePasses = %d, want > %d (intermediate passes with factor 2)",
			m.MergePasses, m.ReduceTasks)
	}
	if e.DFS().SpillUsed() != 0 {
		t.Errorf("SpillUsed after job = %d, want 0", e.DFS().SpillUsed())
	}
	// Cross-check against an unbounded run.
	ref := spillEngine(0, 0)
	if err := ref.DFS().WriteFile("in", lines); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(wordCountJob("in", "out")); err != nil {
		t.Fatal(err)
	}
	got, want := readWords(t, e.DFS(), "out"), readWords(t, ref.DFS(), "out")
	if len(got) != len(want) {
		t.Fatalf("output lengths: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d differs: %q vs %q", i, got[i], want[i])
		}
	}
}

// sumCombiner folds uvarint-encoded counts, the classic wordcount combiner.
func sumCombiner() Combiner {
	return CombinerFunc(func(_ []byte, values [][]byte) ([][]byte, error) {
		var total uint64
		for _, v := range values {
			n, k := binary.Uvarint(v)
			if k <= 0 {
				return nil, errors.New("bad count")
			}
			total += n
		}
		return [][]byte{binary.AppendUvarint(nil, total)}, nil
	})
}

func countingJob(input, output string) *Job {
	return &Job{
		Name:   "count",
		Inputs: []string{input},
		Output: output,
		Mapper: MapperFunc(func(_ string, record []byte, out Emitter) error {
			one := binary.AppendUvarint(nil, 1)
			for _, w := range strings.Fields(string(record)) {
				if err := out.Emit([]byte(w), one); err != nil {
					return err
				}
			}
			return nil
		}),
		Combiner: sumCombiner(),
		Reducer: ReducerFunc(func(key []byte, values [][]byte, out Collector) error {
			var total uint64
			for _, v := range values {
				n, k := binary.Uvarint(v)
				if k <= 0 {
					return errors.New("bad count")
				}
				total += n
			}
			return out.Collect([]byte(fmt.Sprintf("%s\t%d", key, total)))
		}),
	}
}

func TestCombinerFoldsAtSpillTime(t *testing.T) {
	lines := wordLines(200)
	// Same job with and without the combiner at the same tight budget: the
	// combined run must spill strictly fewer records (folding happens at
	// spill time), and an unbounded combined run must match its output.
	withoutCombiner := func() *Job {
		j := countingJob("in", "out")
		j.Combiner = nil
		return j
	}
	plain := spillEngine(64, 4)
	if err := plain.DFS().WriteFile("in", lines); err != nil {
		t.Fatal(err)
	}
	pm, err := plain.Run(withoutCombiner())
	if err != nil {
		t.Fatal(err)
	}
	var outputs [2][][]byte
	var metrics [2]JobMetrics
	for i, buf := range []int64{0, 64} {
		e := spillEngine(buf, 4)
		if err := e.DFS().WriteFile("in", lines); err != nil {
			t.Fatal(err)
		}
		m, err := e.Run(countingJob("in", "out"))
		if err != nil {
			t.Fatal(err)
		}
		metrics[i] = m
		outputs[i] = readWords(t, e.DFS(), "out")
		// Map output counters are pre-combine and budget-independent.
		if m.MapOutputRecords != int64(200*4) {
			t.Errorf("buffer %d: MapOutputRecords = %d, want %d", buf, m.MapOutputRecords, 200*4)
		}
	}
	if metrics[1].SpilledRecords == 0 || metrics[1].SpilledRecords >= pm.SpilledRecords {
		t.Errorf("combiner did not fold at spill time: spilled %d with combiner vs %d without",
			metrics[1].SpilledRecords, pm.SpilledRecords)
	}
	if len(outputs[0]) == 0 || len(outputs[0]) != len(outputs[1]) {
		t.Fatalf("output lengths: %d vs %d", len(outputs[0]), len(outputs[1]))
	}
	for i := range outputs[0] {
		if !bytes.Equal(outputs[0][i], outputs[1][i]) {
			t.Fatalf("record %d differs: %q vs %q", i, outputs[0][i], outputs[1][i])
		}
	}
	// Sanity: totals must match the input (200 lines × 4 words).
	var total int
	for _, r := range outputs[1] {
		parts := strings.Split(string(r), "\t")
		n, _ := strconv.Atoi(parts[1])
		total += n
	}
	if total != 200*4 {
		t.Errorf("combined counts sum to %d, want %d", total, 200*4)
	}
}

func TestSpillWithFaultInjectionLeaksNothing(t *testing.T) {
	// A spilling job under heavy fault injection must release every spill
	// file (failed attempts discard theirs) and still produce output
	// identical to a failure-free run.
	lines := wordLines(120)
	clean := spillEngine(64, 3)
	faulty := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}), EngineConfig{
		SplitRecords: 8, DefaultReducers: 3,
		SortBufferBytes: 64, MergeFactor: 3,
		TaskMaxAttempts: 8, TaskFailureRate: 0.3, TaskFailureSeed: 11,
	})
	var outputs [2][][]byte
	for i, e := range []*Engine{clean, faulty} {
		if err := e.DFS().WriteFile("in", lines); err != nil {
			t.Fatal(err)
		}
		m, err := e.Run(wordCountJob("in", "out"))
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
		if i == 1 && m.TaskRetries == 0 {
			t.Error("faulty engine recorded no retries at 30% failure rate")
		}
		if got := e.DFS().SpillUsed(); got != 0 {
			t.Errorf("engine %d: SpillUsed after job = %d, want 0 (leaked spill files)", i, got)
		}
		sm := e.DFS().Metrics()
		if sm.SpillFilesCreated != sm.SpillFilesReleased {
			t.Errorf("engine %d: spill files created %d != released %d",
				i, sm.SpillFilesCreated, sm.SpillFilesReleased)
		}
		outputs[i] = readWords(t, e.DFS(), "out")
	}
	if len(outputs[0]) != len(outputs[1]) {
		t.Fatalf("output sizes differ: %d vs %d", len(outputs[0]), len(outputs[1]))
	}
	for i := range outputs[0] {
		if !bytes.Equal(outputs[0][i], outputs[1][i]) {
			t.Fatalf("record %d differs after retries: %q vs %q", i, outputs[0][i], outputs[1][i])
		}
	}
}

func TestSpillReleasedOnFailedJob(t *testing.T) {
	// A job that spills and then fails outright must leave no spill bytes
	// and no output or part files.
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 2}), EngineConfig{
		SplitRecords: 8, DefaultReducers: 2, SortBufferBytes: 32,
	})
	if err := e.DFS().WriteFile("in", wordLines(50)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	job := wordCountJob("in", "out")
	job.Reducer = ReducerFunc(func([]byte, [][]byte, Collector) error { return boom })
	if _, err := e.Run(job); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := e.DFS().SpillUsed(); got != 0 {
		t.Errorf("SpillUsed after failed job = %d, want 0", got)
	}
	for _, f := range e.DFS().List() {
		if f != "in" {
			t.Errorf("failed job left file %q", f)
		}
	}
}

func TestStreamReducerSeesSortedValues(t *testing.T) {
	// A StreamReducer job: values must arrive through the iterator in
	// nondecreasing byte order, under spilling and across many runs.
	e := spillEngine(20, 2)
	var lines [][]byte
	for j := 0; j < 90; j++ {
		lines = append(lines, []byte(fmt.Sprintf("k%d,v%02d", j%4, 99-j)))
	}
	if err := e.DFS().WriteFile("in", lines); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name: "streamed", Inputs: []string{"in"}, Output: "out",
		Mapper: MapperFunc(func(_ string, r []byte, out Emitter) error {
			parts := strings.SplitN(string(r), ",", 2)
			return out.Emit([]byte(parts[0]), []byte(parts[1]))
		}),
		StreamReducer: StreamReducerFunc(func(key []byte, values ValueIter, out Collector) error {
			var prev []byte
			n := 0
			for {
				v, ok, err := values.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if prev != nil && bytes.Compare(prev, v) > 0 {
					return fmt.Errorf("values out of order for %s: %q after %q", key, v, prev)
				}
				prev = append(prev[:0], v...)
				n++
			}
			return out.Collect([]byte(fmt.Sprintf("%s:%d", key, n)))
		}),
	}
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.SpilledBytes == 0 {
		t.Error("test meant to exercise the spill path but nothing spilled")
	}
	counts := map[string]int{}
	for _, r := range readWords(t, e.DFS(), "out") {
		parts := strings.Split(string(r), ":")
		counts[parts[0]], _ = strconv.Atoi(parts[1])
	}
	for k := 0; k < 4; k++ {
		key := fmt.Sprintf("k%d", k)
		want := 90 / 4
		if k < 90%4 {
			want++
		}
		if counts[key] != want {
			t.Errorf("group %s: %d values, want %d", key, counts[key], want)
		}
	}
}

func TestStreamReducerMayStopEarly(t *testing.T) {
	// A reducer that abandons the iterator mid-group must not derail
	// grouping of subsequent keys.
	e := spillEngine(32, 2)
	var lines [][]byte
	for j := 0; j < 60; j++ {
		lines = append(lines, []byte(fmt.Sprintf("k%d v", j%3)))
	}
	if err := e.DFS().WriteFile("in", lines); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name: "early", Inputs: []string{"in"}, Output: "out",
		Mapper: MapperFunc(func(_ string, r []byte, out Emitter) error {
			parts := strings.Fields(string(r))
			return out.Emit([]byte(parts[0]), []byte(parts[1]))
		}),
		StreamReducer: StreamReducerFunc(func(key []byte, values ValueIter, out Collector) error {
			// Consume exactly one value, ignore the rest of the group.
			if _, ok, err := values.Next(); err != nil || !ok {
				return fmt.Errorf("first value: ok=%v err=%v", ok, err)
			}
			return out.Collect(key)
		}),
	}
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.ReduceInputGroups != 3 {
		t.Errorf("ReduceInputGroups = %d, want 3", m.ReduceInputGroups)
	}
	if m.ReduceOutputRecords != 3 {
		t.Errorf("ReduceOutputRecords = %d, want 3 (one per group)", m.ReduceOutputRecords)
	}
}

func TestBothReducerFormsRejected(t *testing.T) {
	e := spillEngine(0, 0)
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	job := wordCountJob("in", "out")
	job.StreamReducer = StreamReducerFunc(func([]byte, ValueIter, Collector) error { return nil })
	if _, err := e.Run(job); err == nil {
		t.Error("job with both Reducer and StreamReducer accepted")
	}
}

func TestWorkflowFailureCleansUpstreamOutputs(t *testing.T) {
	// When a workflow fails partway, the outputs of jobs that had already
	// succeeded must be deleted so capacity-limited retry loops (fig9/12)
	// do not leak simulated disk.
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("a b"), []byte("c")}); err != nil {
		t.Fatal(err)
	}
	identity := func(name, in, out string) *Job {
		return &Job{
			Name: name, Inputs: []string{in}, Output: out,
			MapOnly: MapOnlyFunc(func(_ string, r []byte, c Collector) error { return c.Collect(r) }),
		}
	}
	failing := &Job{
		Name: "fails", Inputs: []string{"o1"}, Output: "o3",
		ExtraOutputs: []string{"o3x"},
		MapOnly: MapOnlyFunc(func(string, []byte, Collector) error {
			return errors.New("boom")
		}),
	}
	usedBefore := e.DFS().Used()
	wf, err := e.RunWorkflow([]Stage{
		{identity("ok1", "in", "o1"), identity("ok2", "in", "o2")},
		{failing},
	})
	if err == nil {
		t.Fatal("workflow with failing job succeeded")
	}
	if !wf.Failed || wf.FailedJob != "fails" {
		t.Errorf("wf = %+v", wf)
	}
	for _, f := range []string{"o1", "o2", "o3", "o3x"} {
		if e.DFS().Exists(f) {
			t.Errorf("failed workflow left %s behind", f)
		}
	}
	if got := e.DFS().Used(); got != usedBefore {
		t.Errorf("failed workflow leaked %d bytes of simulated disk", got-usedBefore)
	}
	if files := e.DFS().List(); len(files) != 1 || files[0] != "in" {
		t.Errorf("files after failed workflow = %v, want [in]", files)
	}
}

func TestMapOnlySpillConfigIrrelevant(t *testing.T) {
	// Map-only jobs have no shuffle; a tiny sort buffer must not affect
	// them or create spill files.
	e := spillEngine(16, 2)
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("aaaa"), []byte("bbbb")}); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name: "copy", Inputs: []string{"in"}, Output: "out",
		MapOnly: MapOnlyFunc(func(_ string, r []byte, c Collector) error { return c.Collect(r) }),
	}
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.SpilledBytes != 0 || e.DFS().Metrics().SpillFilesCreated != 0 {
		t.Errorf("map-only job spilled: %+v", m)
	}
}
