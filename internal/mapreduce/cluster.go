package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ntga/internal/hdfs"
	"ntga/internal/trace"
)

// ErrClusterUnavailable marks execution failures where the substrate the
// engine runs on — a remote coordinator, its worker fleet — is unreachable,
// rather than the job itself being at fault. Remote Cluster implementations
// wrap it (e.g. cluster.ErrMasterLost) so callers up the stack can
// distinguish "the network ate my cluster" (retry later, degrade, fall back
// to local execution) from a genuinely failed query. The in-process
// LocalCluster never returns it.
var ErrClusterUnavailable = errors.New("mapreduce: cluster unavailable")

// Cluster is the execution substrate a mapreduce Engine runs on. The engine
// itself owns job semantics — split planning, the attempt/commit protocol,
// speculation, metrics — and delegates the "where does work run" questions
// to its cluster:
//
//   - a Dispatcher runs task bodies in-process (today's goroutine pools —
//     see LocalCluster);
//   - a JobRunner instead takes over whole jobs, shipping them to remote
//     workers (see internal/cluster for the RPC coordinator).
//
// Every implementation satisfies at least the base interface; the engine
// type-switches on the two capability interfaces at the corresponding seams.
type Cluster interface {
	// Name identifies the cluster implementation in errors and health
	// output ("local", "distributed", ...).
	Name() string
}

// Dispatcher is a cluster that executes task bodies in this process: the
// engine hands it closures and the dispatcher decides width, slot leasing,
// and node placement. The in-process engine path (LocalCluster) implements
// it; remote clusters do not — they take jobs whole via JobRunner instead.
type Dispatcher interface {
	Cluster
	// Dispatch runs the tasks fn(0..n-1) of the given kind ("map" or
	// "reduce"), returning the first error encountered; all started tasks
	// run to completion. ctx bounds slot waits.
	Dispatch(ctx context.Context, kind string, n int, fn func(int) error) error
	// TaskNode assigns a task attempt to a simulated data node; spills are
	// pinned to the attempt's node and traces want a stable attribution.
	TaskNode(task, attempt int) int
}

// JobRunner is a cluster that executes whole jobs elsewhere: the engine
// validates the job and then hands it over — split planning, task
// scheduling, shuffle movement, and part commits all happen on the other
// side of the seam. The returned metrics slot into the workflow exactly
// where the local run's would.
type JobRunner interface {
	Cluster
	// RunJob executes the job to completion against the cluster's DFS,
	// attaching any task spans under jsp (nil-safe). On failure the job's
	// output files must be removed, mirroring the local engine's failure
	// contract.
	RunJob(ctx context.Context, jsp *trace.Span, job *Job, cfg EngineConfig) (JobMetrics, error)
}

// LocalCluster is the default, in-process cluster: map and reduce tasks run
// on goroutine pools (or lease slots from a shared SlotPool), and task
// attempts are round-robined over the DFS's simulated data nodes. It
// preserves the engine's pre-seam behavior exactly.
type LocalCluster struct {
	dfs         *hdfs.DFS
	mapWidth    int
	reduceWidth int
	slots       SlotPool
}

// NewLocalCluster builds the in-process cluster: fixed per-run pool widths
// for map and reduce tasks (already defaults-resolved by the caller), or —
// when slots is non-nil — per-task leases from the shared pool instead.
func NewLocalCluster(dfs *hdfs.DFS, mapWidth, reduceWidth int, slots SlotPool) *LocalCluster {
	return &LocalCluster{dfs: dfs, mapWidth: mapWidth, reduceWidth: reduceWidth, slots: slots}
}

// Name implements Cluster.
func (c *LocalCluster) Name() string { return "local" }

// TaskNode implements Dispatcher: round-robin over (task + attempt) so a
// retried attempt lands on a different node than the one that just failed
// it, skipping dead nodes. The engine has no locality model, but spills are
// pinned to the attempt's node and traces want a stable attribution.
func (c *LocalCluster) TaskNode(task, attempt int) int {
	n := c.dfs.Config().Nodes
	start := (task + attempt) % n
	for k := 0; k < n; k++ {
		if cand := (start + k) % n; c.dfs.NodeAlive(cand) {
			return cand
		}
	}
	return start
}

// Dispatch implements Dispatcher. Without a SlotPool the concurrency is a
// fixed per-run worker pool of the kind's width; with one, every task
// instead leases a slot from the shared pool, so cluster-wide concurrency
// is governed by the pool rather than this run.
func (c *LocalCluster) Dispatch(ctx context.Context, kind string, n int, fn func(int) error) error {
	if c.slots != nil {
		return c.dispatchSlots(ctx, kind, n, fn)
	}
	width := c.mapWidth
	if kind == "reduce" {
		width = c.reduceWidth
	}
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		next  int64 = -1
		errMu sync.Mutex
		first error
	)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// dispatchSlots runs every task under a lease from the shared slot pool:
// each task blocks until the pool grants a slot of its kind, runs to
// completion (retries and speculative backups included — runTask owns the
// whole task), and releases the slot. A task that cannot obtain a slot
// because the engine context died reports the cancellation as its error;
// once one task has failed, still-queued tasks skip their work (mirroring
// the fixed-pool path, which stops dispatching after the first error).
func (c *LocalCluster) dispatchSlots(ctx context.Context, kind string, n int, fn func(int) error) error {
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return first != nil
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			release, err := c.slots.Acquire(ctx, kind)
			if err == nil {
				if failed() {
					release()
					return
				}
				err = fn(i)
				release()
			}
			if err != nil {
				errMu.Lock()
				if first == nil {
					first = err
				}
				errMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return first
}

// dispatch routes a phase's tasks through the engine's cluster. A cluster
// that cannot dispatch in-process (a pure JobRunner) never reaches here —
// run() delegates the whole job first — so a miss is a programming error.
func (e *Engine) dispatch(kind string, n int, fn func(int) error) error {
	d, ok := e.cluster.(Dispatcher)
	if !ok {
		return fmt.Errorf("mapreduce: cluster %q cannot dispatch tasks in-process", e.cluster.Name())
	}
	return d.Dispatch(e.ctx, kind, n, fn)
}

// taskNode resolves task placement through the cluster; a cluster without a
// placement model pins everything to node 0.
func (e *Engine) taskNode(task, attempt int) int {
	if d, ok := e.cluster.(Dispatcher); ok {
		return d.TaskNode(task, attempt)
	}
	return 0
}

// PartName is the per-task part file a reduce (or map-only) task's winning
// attempt promotes its output to; parts are spliced into the job output via
// hdfs.Concat once every task has committed. Exported for JobRunner
// implementations, which write and splice parts on the coordinator side.
func PartName(base string, i int) string { return partName(base, i) }
