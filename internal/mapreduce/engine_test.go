package mapreduce

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"ntga/internal/hdfs"
)

func newTestEngine(t *testing.T, cfg hdfs.Config) *Engine {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	return NewEngine(hdfs.New(cfg), EngineConfig{SplitRecords: 4, DefaultReducers: 3})
}

// wordCount splits records on spaces and counts words.
func wordCountJob(input, output string) *Job {
	return &Job{
		Name:   "wordcount",
		Inputs: []string{input},
		Output: output,
		Mapper: MapperFunc(func(_ string, record []byte, out Emitter) error {
			for _, w := range strings.Fields(string(record)) {
				if err := out.Emit([]byte(w), []byte{1}); err != nil {
					return err
				}
			}
			return nil
		}),
		Reducer: ReducerFunc(func(key []byte, values [][]byte, out Collector) error {
			return out.Collect([]byte(fmt.Sprintf("%s\t%d", key, len(values))))
		}),
	}
}

func TestWordCount(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	lines := [][]byte{
		[]byte("the quick brown fox"),
		[]byte("the lazy dog"),
		[]byte("the fox"),
	}
	if err := e.DFS().WriteFile("in", lines); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run(wordCountJob("in", "out"))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs, err := e.DFS().ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range recs {
		parts := strings.Split(string(r), "\t")
		n, _ := strconv.Atoi(parts[1])
		counts[parts[0]] = n
	}
	want := map[string]int{"the": 3, "quick": 1, "brown": 1, "fox": 2, "lazy": 1, "dog": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("counts = %v, want %v", counts, want)
	}
	if m.MapInputRecords != 3 {
		t.Errorf("MapInputRecords = %d, want 3", m.MapInputRecords)
	}
	if m.MapOutputRecords != 9 {
		t.Errorf("MapOutputRecords = %d, want 9", m.MapOutputRecords)
	}
	if m.ReduceInputGroups != int64(len(want)) {
		t.Errorf("ReduceInputGroups = %d, want %d", m.ReduceInputGroups, len(want))
	}
	if m.ReduceOutputRecords != int64(len(want)) {
		t.Errorf("ReduceOutputRecords = %d, want %d", m.ReduceOutputRecords, len(want))
	}
	if m.MapOutputBytes == 0 || m.ReduceOutputBytes == 0 || m.MapInputBytes == 0 {
		t.Errorf("byte counters not populated: %+v", m)
	}
}

func TestDeterministicOutput(t *testing.T) {
	// The same job run twice (with different parallelism) must produce
	// byte-identical output files, because reduce input is fully sorted.
	mkEngine := func(par int) *Engine {
		return NewEngine(hdfs.New(hdfs.Config{Nodes: 2}),
			EngineConfig{SplitRecords: 2, DefaultReducers: 4, MapParallelism: par, ReduceParallelism: par})
	}
	var outputs [2][][]byte
	for i, par := range []int{1, 8} {
		e := mkEngine(par)
		var lines [][]byte
		for j := 0; j < 100; j++ {
			lines = append(lines, []byte(fmt.Sprintf("w%d w%d w%d", j%7, j%13, j%3)))
		}
		if err := e.DFS().WriteFile("in", lines); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(wordCountJob("in", "out")); err != nil {
			t.Fatal(err)
		}
		outputs[i], _ = e.DFS().ReadAll("out")
	}
	if len(outputs[0]) != len(outputs[1]) {
		t.Fatalf("output lengths differ: %d vs %d", len(outputs[0]), len(outputs[1]))
	}
	for i := range outputs[0] {
		if !bytes.Equal(outputs[0][i], outputs[1][i]) {
			t.Fatalf("record %d differs: %q vs %q", i, outputs[0][i], outputs[1][i])
		}
	}
}

func TestTaggedJoin(t *testing.T) {
	// Classic reduce-side equi-join across two inputs; the mapper tags
	// records by input file.
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("users", [][]byte{
		[]byte("1,alice"), []byte("2,bob"), []byte("3,carol"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.DFS().WriteFile("orders", [][]byte{
		[]byte("1,book"), []byte("1,pen"), []byte("3,mug"), []byte("9,ghost"),
	}); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name:   "join",
		Inputs: []string{"users", "orders"},
		Output: "joined",
		Mapper: MapperFunc(func(input string, record []byte, out Emitter) error {
			parts := strings.SplitN(string(record), ",", 2)
			tag := "U:"
			if input == "orders" {
				tag = "O:"
			}
			return out.Emit([]byte(parts[0]), []byte(tag+parts[1]))
		}),
		Reducer: ReducerFunc(func(key []byte, values [][]byte, out Collector) error {
			var users, orders []string
			for _, v := range values {
				s := string(v)
				if strings.HasPrefix(s, "U:") {
					users = append(users, s[2:])
				} else {
					orders = append(orders, s[2:])
				}
			}
			for _, u := range users {
				for _, o := range orders {
					if err := out.Collect([]byte(fmt.Sprintf("%s:%s:%s", key, u, o))); err != nil {
						return err
					}
				}
			}
			return nil
		}),
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	recs, _ := e.DFS().ReadAll("joined")
	var got []string
	for _, r := range recs {
		got = append(got, string(r))
	}
	sort.Strings(got)
	want := []string{"1:alice:book", "1:alice:pen", "3:carol:mug"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("join = %v, want %v", got, want)
	}
}

func TestMapOnlyJob(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name:   "lengths",
		Inputs: []string{"in"},
		Output: "out",
		MapOnly: MapOnlyFunc(func(_ string, record []byte, out Collector) error {
			return out.Collect([]byte(strconv.Itoa(len(record))))
		}),
	}
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !m.MapOnly {
		t.Error("metrics not flagged MapOnly")
	}
	if m.MapOutputBytes != 0 || m.MapOutputRecords != 0 {
		t.Errorf("map-only job recorded shuffle traffic: %+v", m)
	}
	recs, _ := e.DFS().ReadAll("out")
	var got []string
	for _, r := range recs {
		got = append(got, string(r))
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"1", "2", "3"}) {
		t.Errorf("output = %v", got)
	}
}

func TestEmptyInput(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", nil); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run(wordCountJob("in", "out"))
	if err != nil {
		t.Fatalf("Run on empty input: %v", err)
	}
	if m.ReduceOutputRecords != 0 {
		t.Errorf("ReduceOutputRecords = %d, want 0", m.ReduceOutputRecords)
	}
	if !e.DFS().Exists("out") {
		t.Error("empty output file not created")
	}
}

func TestJobValidation(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	cases := []*Job{
		{Inputs: []string{"x"}, Output: "y", MapOnly: MapOnlyFunc(nil)},          // no name
		{Name: "j", Output: "y", MapOnly: MapOnlyFunc(nil)},                      // no inputs
		{Name: "j", Inputs: []string{"x"}, MapOnly: MapOnlyFunc(nil)},            // no output
		{Name: "j", Inputs: []string{"x"}, Output: "y"},                          // no mapper
		{Name: "j", Inputs: []string{"x"}, Output: "y", Mapper: MapperFunc(nil)}, // no reducer
	}
	for i, job := range cases {
		if _, err := e.Run(job); err == nil {
			t.Errorf("case %d: invalid job ran without error", i)
		}
	}
}

func TestMissingInputFails(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	_, err := e.Run(wordCountJob("missing", "out"))
	if !errors.Is(err, hdfs.ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	job := &Job{
		Name: "failmap", Inputs: []string{"in"}, Output: "out",
		Mapper:  MapperFunc(func(string, []byte, Emitter) error { return boom }),
		Reducer: ReducerFunc(func([]byte, [][]byte, Collector) error { return nil }),
	}
	m, err := e.Run(job)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if !m.Failed {
		t.Error("metrics not flagged Failed")
	}
	if e.DFS().Exists("out") {
		t.Error("failed job left output file")
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	job := &Job{
		Name: "failred", Inputs: []string{"in"}, Output: "out",
		Mapper: MapperFunc(func(_ string, r []byte, out Emitter) error {
			return out.Emit(r, r)
		}),
		Reducer: ReducerFunc(func([]byte, [][]byte, Collector) error { return boom }),
	}
	if _, err := e.Run(job); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestDiskFullFailsJob(t *testing.T) {
	// Tiny cluster: amplifying mapper/reducer overflows the disk on write.
	dfs := hdfs.New(hdfs.Config{Nodes: 2, CapacityPerNode: 2048, BlockSize: 256, Replication: 2})
	e := NewEngine(dfs, EngineConfig{SplitRecords: 4, DefaultReducers: 2})
	if err := dfs.WriteFile("in", [][]byte{[]byte("seed")}); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name: "amplify", Inputs: []string{"in"}, Output: "out",
		Mapper: MapperFunc(func(_ string, r []byte, out Emitter) error {
			for i := 0; i < 64; i++ {
				if err := out.Emit([]byte{byte(i)}, bytes.Repeat([]byte("x"), 100)); err != nil {
					return err
				}
			}
			return nil
		}),
		Reducer: ReducerFunc(func(key []byte, values [][]byte, out Collector) error {
			for _, v := range values {
				if err := out.Collect(v); err != nil {
					return err
				}
			}
			return nil
		}),
	}
	m, err := e.Run(job)
	if !ErrIsDiskFull(err) {
		t.Fatalf("err = %v, want disk-full", err)
	}
	if !m.Failed {
		t.Error("metrics not flagged Failed")
	}
	if dfs.Exists("out") {
		t.Error("failed job left partial output")
	}
}

func TestCustomPartitionerAndReducers(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("a b c d e f")}); err != nil {
		t.Fatal(err)
	}
	var maxPart int
	job := wordCountJob("in", "out")
	job.NumReducers = 5
	job.Partitioner = func(key []byte, n int) int {
		if n != 5 {
			return -1 // trigger engine error if NumReducers not honored
		}
		p := int(key[0]) % n
		if p > maxPart {
			maxPart = p
		}
		return p
	}
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.ReduceTasks != 5 {
		t.Errorf("ReduceTasks = %d, want 5", m.ReduceTasks)
	}
}

func TestPartitionerRangeChecked(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	job := wordCountJob("in", "out")
	job.Partitioner = func([]byte, int) int { return 99 }
	if _, err := e.Run(job); err == nil {
		t.Error("out-of-range partition accepted")
	}
}

func TestWorkflowStages(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("b a c"), []byte("a c")}); err != nil {
		t.Fatal(err)
	}
	// Stage 1: two independent jobs; stage 2: consumes both.
	identity := func(name, in, out string) *Job {
		return &Job{
			Name: name, Inputs: []string{in}, Output: out,
			MapOnly: MapOnlyFunc(func(_ string, r []byte, c Collector) error { return c.Collect(r) }),
		}
	}
	concat := &Job{
		Name: "concat", Inputs: []string{"o1", "o2"}, Output: "final",
		Mapper: MapperFunc(func(_ string, r []byte, out Emitter) error {
			return out.Emit([]byte("k"), r)
		}),
		Reducer: ReducerFunc(func(_ []byte, values [][]byte, out Collector) error {
			return out.Collect([]byte(strconv.Itoa(len(values))))
		}),
	}
	stages := []Stage{
		{identity("copy1", "in", "o1"), identity("copy2", "in", "o2")},
		{concat},
	}
	wf, err := e.RunWorkflow(stages)
	if err != nil {
		t.Fatal(err)
	}
	if wf.Cycles != 3 {
		t.Errorf("Cycles = %d, want 3", wf.Cycles)
	}
	if len(wf.Jobs) != 3 {
		t.Errorf("len(Jobs) = %d, want 3", len(wf.Jobs))
	}
	recs, _ := e.DFS().ReadAll("final")
	if len(recs) != 1 || string(recs[0]) != "4" {
		t.Errorf("final = %q, want [4]", recs)
	}
	if got := CountScansOf(stages, "in"); got != 2 {
		t.Errorf("CountScansOf(in) = %d, want 2", got)
	}
	if wf.TotalMapInputBytes() == 0 || wf.TotalReduceOutputBytes() == 0 {
		t.Error("workflow byte totals not populated")
	}
}

func TestWorkflowFailureStopsLaterStages(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	failJob := &Job{
		Name: "fails", Inputs: []string{"in"}, Output: "o1",
		MapOnly: MapOnlyFunc(func(string, []byte, Collector) error {
			return errors.New("boom")
		}),
	}
	neverRuns := &Job{
		Name: "never", Inputs: []string{"o1"}, Output: "o2",
		MapOnly: MapOnlyFunc(func(_ string, r []byte, c Collector) error { return c.Collect(r) }),
	}
	wf, err := e.RunWorkflow([]Stage{{failJob}, {neverRuns}})
	if err == nil {
		t.Fatal("workflow with failing job succeeded")
	}
	if !wf.Failed || wf.FailedJob != "fails" {
		t.Errorf("wf = %+v", wf)
	}
	if len(wf.Jobs) != 1 {
		t.Errorf("executed %d jobs, want 1", len(wf.Jobs))
	}
	if e.DFS().Exists("o2") {
		t.Error("later stage ran after failure")
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("a", 2)
	c.Inc("a", 3)
	c.Inc("b", 1)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("zero") != 0 {
		t.Errorf("counters = %v", c.Snapshot())
	}
	snap := c.Snapshot()
	snap["a"] = 99
	if c.Get("a") != 5 {
		t.Error("Snapshot did not copy")
	}
}

func TestHashPartitionerInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		key := make([]byte, 8)
		binary.LittleEndian.PutUint64(key, uint64(i*2654435761))
		p := HashPartitioner(key, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partition %d out of range", p)
		}
	}
}

func TestCompareBytes(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "a", -1},
		{"abc", "abd", -1}, {"abd", "abc", 1}, {"abc", "abc", 0},
		{"ab", "abc", -1}, {"abc", "ab", 1},
	}
	for _, c := range cases {
		if got := compareBytes([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("compareBytes(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMultipleOutputs(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", [][]byte{
		[]byte("a 1"), []byte("b 2"), []byte("a 3"), []byte("c 4"),
	}); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name: "demux", Inputs: []string{"in"}, Output: "out-main",
		ExtraOutputs: []string{"out-a", "out-b"},
		Mapper: MapperFunc(func(_ string, r []byte, out Emitter) error {
			return out.Emit(r[:1], r[2:])
		}),
		Reducer: ReducerFunc(func(key []byte, values [][]byte, out Collector) error {
			nc := out.(NamedCollector)
			for _, v := range values {
				switch key[0] {
				case 'a':
					if err := nc.CollectTo("out-a", v); err != nil {
						return err
					}
				case 'b':
					if err := nc.CollectTo("out-b", v); err != nil {
						return err
					}
				default:
					if err := out.Collect(v); err != nil {
						return err
					}
				}
			}
			return nil
		}),
	}
	m, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	count := func(name string) int {
		recs, err := e.DFS().ReadAll(name)
		if err != nil {
			t.Fatalf("ReadAll(%s): %v", name, err)
		}
		return len(recs)
	}
	if count("out-a") != 2 || count("out-b") != 1 || count("out-main") != 1 {
		t.Errorf("outputs = a:%d b:%d main:%d", count("out-a"), count("out-b"), count("out-main"))
	}
	if m.ReduceOutputRecords != 4 {
		t.Errorf("ReduceOutputRecords = %d, want 4 across all outputs", m.ReduceOutputRecords)
	}
}

func TestMultipleOutputsValidation(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	// Undeclared CollectTo target fails the job and cleans everything up.
	job := &Job{
		Name: "bad", Inputs: []string{"in"}, Output: "out",
		ExtraOutputs: []string{"declared"},
		MapOnly: MapOnlyFunc(func(_ string, r []byte, out Collector) error {
			return out.(NamedCollector).CollectTo("undeclared", r)
		}),
	}
	if _, err := e.Run(job); err == nil {
		t.Error("undeclared CollectTo accepted")
	}
	for _, f := range []string{"out", "declared"} {
		if e.DFS().Exists(f) {
			t.Errorf("failed job left %s", f)
		}
	}
	// Duplicate output names rejected.
	dup := &Job{
		Name: "dup", Inputs: []string{"in"}, Output: "out",
		ExtraOutputs: []string{"out"},
		MapOnly:      MapOnlyFunc(func(_ string, r []byte, c Collector) error { return c.Collect(r) }),
	}
	if _, err := e.Run(dup); err == nil {
		t.Error("duplicate output name accepted")
	}
	empty := &Job{
		Name: "empty", Inputs: []string{"in"}, Output: "out",
		ExtraOutputs: []string{""},
		MapOnly:      MapOnlyFunc(func(_ string, r []byte, c Collector) error { return c.Collect(r) }),
	}
	if _, err := e.Run(empty); err == nil {
		t.Error("empty extra output name accepted")
	}
}

func TestMultipleOutputsCreatedEvenIfEmpty(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name: "quiet", Inputs: []string{"in"}, Output: "out",
		ExtraOutputs: []string{"never-used"},
		MapOnly:      MapOnlyFunc(func(_ string, r []byte, c Collector) error { return c.Collect(r) }),
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	if !e.DFS().Exists("never-used") {
		t.Error("unused extra output not created")
	}
}

func TestTaskRetryRecoversInjectedFailures(t *testing.T) {
	// With a 20% injected failure rate and a 6-attempt budget, the job
	// completes, counts its retries, and produces exactly the same output
	// as a failure-free run.
	clean := NewEngine(hdfs.New(hdfs.Config{Nodes: 2}),
		EngineConfig{SplitRecords: 2, DefaultReducers: 3})
	faulty := NewEngine(hdfs.New(hdfs.Config{Nodes: 2}),
		EngineConfig{SplitRecords: 2, DefaultReducers: 3,
			TaskMaxAttempts: 6, TaskFailureRate: 0.2, TaskFailureSeed: 7})
	var lines [][]byte
	for j := 0; j < 40; j++ {
		lines = append(lines, []byte(fmt.Sprintf("w%d w%d", j%5, j%11)))
	}
	var outputs [2][][]byte
	for i, e := range []*Engine{clean, faulty} {
		if err := e.DFS().WriteFile("in", lines); err != nil {
			t.Fatal(err)
		}
		m, err := e.Run(wordCountJob("in", "out"))
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
		if i == 1 && m.TaskRetries == 0 {
			t.Error("faulty engine recorded no retries at 20% failure rate")
		}
		if i == 0 && m.TaskRetries != 0 {
			t.Errorf("clean engine recorded %d retries", m.TaskRetries)
		}
		outputs[i], _ = e.DFS().ReadAll("out")
	}
	if len(outputs[0]) != len(outputs[1]) {
		t.Fatalf("output sizes differ: %d vs %d", len(outputs[0]), len(outputs[1]))
	}
	for i := range outputs[0] {
		if !bytes.Equal(outputs[0][i], outputs[1][i]) {
			t.Fatalf("record %d differs after retries: %q vs %q", i, outputs[0][i], outputs[1][i])
		}
	}
}

func TestTaskRetryBudgetExhaustion(t *testing.T) {
	// Certain failure with a single attempt: the job must fail cleanly.
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 1}),
		EngineConfig{SplitRecords: 4, TaskMaxAttempts: 1, TaskFailureRate: 1.0})
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run(wordCountJob("in", "out"))
	if err == nil {
		t.Fatal("job with certain task failure succeeded")
	}
	if !errors.Is(err, errInjectedFailure) {
		t.Errorf("err = %v, want injected failure", err)
	}
	if !m.Failed {
		t.Error("metrics not marked failed")
	}
	if e.DFS().Exists("out") {
		t.Error("failed job left output")
	}
}

func TestReduceSkewMetric(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	// All map output lands on a single key → one reducer gets everything.
	if err := e.DFS().WriteFile("in", [][]byte{
		[]byte("k k k k"), []byte("k k k k"),
	}); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run(wordCountJob("in", "out"))
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxReducePartitionRecords != 8 {
		t.Errorf("MaxReducePartitionRecords = %d, want 8", m.MaxReducePartitionRecords)
	}
	// Skew = max/avg = 8 / (8/3 reducers) = 3 (the reducer count).
	if m.ReduceSkew < 2.9 || m.ReduceSkew > 3.1 {
		t.Errorf("ReduceSkew = %v, want ≈3 (all records on one of 3 reducers)", m.ReduceSkew)
	}
}

func TestSortKVsProperties(t *testing.T) {
	// Property: sortKVs yields a non-decreasing (key, value) sequence and
	// preserves the multiset of pairs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		kvs := make([]kv, n)
		count := map[string]int{}
		for i := range kvs {
			k := make([]byte, rng.Intn(6))
			v := make([]byte, rng.Intn(6))
			rng.Read(k)
			rng.Read(v)
			kvs[i] = kv{k, v}
			count[string(k)+"\x00"+string(v)]++
		}
		sortKVs(kvs)
		for i := 1; i < len(kvs); i++ {
			c := compareBytes(kvs[i-1].key, kvs[i].key)
			if c > 0 || (c == 0 && compareBytes(kvs[i-1].value, kvs[i].value) > 0) {
				return false
			}
		}
		for _, p := range kvs {
			count[string(p.key)+"\x00"+string(p.value)]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
