package mapreduce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ntga/internal/hdfs"
)

// EngineConfig tunes the execution engine.
type EngineConfig struct {
	// MapParallelism is the number of concurrent map tasks; 0 defaults to
	// GOMAXPROCS.
	MapParallelism int
	// ReduceParallelism is the number of concurrent reduce tasks; 0
	// defaults to GOMAXPROCS.
	ReduceParallelism int
	// DefaultReducers is the reduce partition count used when a job does
	// not set NumReducers; 0 defaults to 8.
	DefaultReducers int
	// SplitRecords is the number of records per map split; 0 defaults to
	// 8192. Smaller splits increase map-task parallelism.
	SplitRecords int
	// SortBufferBytes bounds each map task's in-memory output buffer
	// (Hadoop's io.sort.mb): when the buffered key+value bytes reach the
	// budget the task sorts the buffer, applies the job's combiner, and
	// spills a run to node-local disk. 0 means unbounded — no spilling,
	// the pre-refactor in-memory behavior.
	SortBufferBytes int64
	// MergeFactor bounds how many on-disk runs one external merge reads at
	// once (Hadoop's io.sort.factor); more runs force intermediate merge
	// passes. In-memory segments never count against it. 0 defaults to 10.
	MergeFactor int
	// TaskMaxAttempts is the per-task retry budget (Hadoop's
	// mapreduce.map.maxattempts); 0 defaults to 1 (no retries).
	TaskMaxAttempts int
	// TaskFailureRate injects deterministic pseudo-random task failures
	// with the given probability (0 disables), for fault-tolerance
	// testing. A failed attempt is retried until TaskMaxAttempts is
	// exhausted, at which point the job fails — mirroring Hadoop's task
	// retry semantics.
	TaskFailureRate float64
	// TaskFailureSeed varies which (job, task, attempt) triples fail.
	TaskFailureSeed int64
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.MapParallelism == 0 {
		c.MapParallelism = runtime.GOMAXPROCS(0)
	}
	if c.ReduceParallelism == 0 {
		c.ReduceParallelism = runtime.GOMAXPROCS(0)
	}
	if c.DefaultReducers == 0 {
		c.DefaultReducers = 8
	}
	if c.SplitRecords == 0 {
		c.SplitRecords = 8192
	}
	if c.MergeFactor == 0 {
		c.MergeFactor = 10
	}
	if c.TaskMaxAttempts == 0 {
		c.TaskMaxAttempts = 1
	}
	return c
}

// Engine executes jobs and workflows against a simulated DFS.
type Engine struct {
	dfs *hdfs.DFS
	cfg EngineConfig
}

// NewEngine returns an engine over the given DFS.
func NewEngine(dfs *hdfs.DFS, cfg EngineConfig) *Engine {
	return &Engine{dfs: dfs, cfg: cfg.withDefaults()}
}

// DFS returns the engine's file system.
func (e *Engine) DFS() *hdfs.DFS { return e.dfs }

// partName is the per-task part file a reduce (or map-only) task streams
// its output into; parts are spliced into the job output via hdfs.Concat
// once every task has committed.
func partName(base string, i int) string {
	return fmt.Sprintf("%s._part-%05d", base, i)
}

// streamCollector streams one task's output records straight into DFS part
// files as they are collected, so a job that overruns cluster capacity
// fails mid-reduce (hdfs.ErrDiskFull while records are produced), not at a
// commit step afterwards.
type streamCollector struct {
	main    *hdfs.Writer
	extras  map[string]*hdfs.Writer
	records int64
	bytes   int64
}

// openParts creates the part files for task index i of the job: one for
// the main output and one per declared extra output.
func (e *Engine) openParts(job *Job, i int) (*streamCollector, error) {
	col := &streamCollector{}
	w, err := e.dfs.Create(partName(job.Output, i))
	if err != nil {
		return nil, fmt.Errorf("creating output %s: %w", job.Output, err)
	}
	col.main = w
	if len(job.ExtraOutputs) > 0 {
		col.extras = make(map[string]*hdfs.Writer, len(job.ExtraOutputs))
		for _, eo := range job.ExtraOutputs {
			w, err := e.dfs.Create(partName(eo, i))
			if err != nil {
				col.abort()
				return nil, fmt.Errorf("creating output %s: %w", eo, err)
			}
			col.extras[eo] = w
		}
	}
	return col, nil
}

func (c *streamCollector) Collect(record []byte) error {
	if err := c.main.Append(record); err != nil {
		return err
	}
	c.records++
	c.bytes += int64(len(record))
	return nil
}

func (c *streamCollector) CollectTo(output string, record []byte) error {
	w, ok := c.extras[output]
	if !ok {
		return fmt.Errorf("mapreduce: CollectTo(%q): not a declared extra output", output)
	}
	if err := w.Append(record); err != nil {
		return err
	}
	c.records++
	c.bytes += int64(len(record))
	return nil
}

// close seals every part file; on error the caller should abort.
func (c *streamCollector) close() error {
	if err := c.main.Close(); err != nil {
		return err
	}
	for _, w := range c.extras {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// abort discards every part file written by this task attempt.
func (c *streamCollector) abort() {
	if c.main != nil {
		c.main.Abort()
	}
	for _, w := range c.extras {
		w.Abort()
	}
}

// split is one map task's input assignment: a record range of one file,
// read through a streaming hdfs.FileReader so only scanned bytes are
// charged (and a retried task re-charges its re-read).
type split struct {
	input string
	off   int
	n     int
}

// errInjectedFailure marks a fault-injection task failure.
var errInjectedFailure = errors.New("mapreduce: injected task failure")

// shouldInjectFailure decides deterministically whether a given task
// attempt fails under the configured failure rate.
func (e *Engine) shouldInjectFailure(job string, kind string, task, attempt int) bool {
	if e.cfg.TaskFailureRate <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d", job, kind, task, attempt, e.cfg.TaskFailureSeed)
	return float64(h.Sum64()%10000) < e.cfg.TaskFailureRate*10000
}

// runTask executes one task attempt loop: injected or real failures are
// retried with a fresh attempt until the attempt budget is exhausted. The
// body must clean up its own partial state (spill runs, part files) before
// returning an error.
func (e *Engine) runTask(job, kind string, task int, retries *int64, body func() error) error {
	var lastErr error
	for attempt := 0; attempt < e.cfg.TaskMaxAttempts; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(retries, 1)
		}
		if e.shouldInjectFailure(job, kind, task, attempt) {
			lastErr = fmt.Errorf("%w (%s task %d attempt %d)", errInjectedFailure, kind, task, attempt)
			continue
		}
		if err := body(); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("%s task %d failed after %d attempts: %w", kind, task, e.cfg.TaskMaxAttempts, lastErr)
}

// Run executes one job to completion. On failure the job's output files
// (including any committed part files) are removed and the returned
// metrics carry the error.
func (e *Engine) Run(job *Job) (JobMetrics, error) {
	start := time.Now()
	m := JobMetrics{Job: job.Name, MapOnly: job.MapOnly != nil}
	nParts := 0 // part files per output base once tasks are planned
	fail := func(err error) (JobMetrics, error) {
		m.Failed = true
		m.Err = err.Error()
		m.Duration = time.Since(start)
		for _, base := range append([]string{job.Output}, job.ExtraOutputs...) {
			e.dfs.DeleteIfExists(base)
			for i := 0; i < nParts; i++ {
				e.dfs.DeleteIfExists(partName(base, i))
			}
		}
		return m, fmt.Errorf("job %s: %w", job.Name, err)
	}
	if err := job.validate(); err != nil {
		return fail(err)
	}

	// Plan map splits from file metadata; the records themselves are
	// streamed by the map tasks.
	var splits []split
	for _, in := range job.Inputs {
		n, err := e.dfs.RecordCount(in)
		if err != nil {
			return fail(fmt.Errorf("reading input: %w", err))
		}
		size, err := e.dfs.FileSize(in)
		if err != nil {
			return fail(fmt.Errorf("sizing input: %w", err))
		}
		m.MapInputBytes += size
		m.MapInputRecords += int64(n)
		for off := 0; off < n; off += e.cfg.SplitRecords {
			cnt := e.cfg.SplitRecords
			if off+cnt > n {
				cnt = n - off
			}
			splits = append(splits, split{input: in, off: off, n: cnt})
		}
		if n == 0 {
			splits = append(splits, split{input: in}) // keep empty inputs visible
		}
	}
	m.MapTasks = len(splits)

	if job.MapOnly != nil {
		return e.runMapOnly(job, splits, m, start, &nParts, fail)
	}

	nReducers := job.NumReducers
	if nReducers == 0 {
		nReducers = e.cfg.DefaultReducers
	}
	partitioner := job.Partitioner
	if partitioner == nil {
		partitioner = HashPartitioner
	}

	// ---- Map phase ----
	// Each task streams its split through a spilling emitter; sealed
	// emitters hold the sorted in-memory segments and spill runs the
	// reduce phase merges. All spill runs are released when Run returns.
	emitters := make([]*taskEmitter, len(splits))
	defer func() {
		for _, te := range emitters {
			if te != nil {
				te.discard()
			}
		}
	}()
	var retries int64
	if err := e.parallel(e.cfg.MapParallelism, len(splits), func(i int) error {
		return e.runTask(job.Name, "map", i, &retries, func() error {
			te := newTaskEmitter(e.dfs, partitioner, nReducers, job.Combiner, e.cfg.SortBufferBytes)
			committed := false
			defer func() {
				if !committed {
					te.discard()
				}
			}()
			r, err := e.dfs.OpenRange(splits[i].input, splits[i].off, splits[i].n)
			if err != nil {
				return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
			}
			for {
				rec, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
				}
				if err := job.Mapper.Map(splits[i].input, rec, te); err != nil {
					return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
				}
			}
			if err := te.seal(); err != nil {
				return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
			}
			emitters[i] = te
			committed = true
			return nil
		})
	}); err != nil {
		return fail(err)
	}
	m.TaskRetries += retries
	for _, te := range emitters {
		m.MapOutputRecords += te.records
		m.MapOutputBytes += te.bytes
		m.SpilledRecords += te.spilledRecords
		m.SpilledBytes += te.spilledBytes
		if te.peakBuffered > m.PeakSortBufferBytes {
			m.PeakSortBufferBytes = te.peakBuffered
		}
	}

	// ---- Shuffle-merge + reduce phase ----
	// Each reduce task merges its partition's sorted segments (in-memory
	// and spilled) into one stream, groups by key, and feeds the reducer,
	// streaming output records straight into its part files.
	reducer := job.StreamReducer
	if reducer == nil {
		reducer = adaptedReducer{job.Reducer}
	}
	nParts = nReducers
	var groups, reduceRetries, maxPartition int64
	var outRecords, outBytes int64
	var spilledRecs, spilledBytes, mergePasses int64
	if err := e.parallel(e.cfg.ReduceParallelism, nReducers, func(p int) error {
		return e.runTask(job.Name, "reduce", p, &reduceRetries, func() error {
			var sources []kvSource
			var runSrcs []*runSource
			for _, te := range emitters {
				if len(te.parts[p]) > 0 {
					sources = append(sources, &memSource{kvs: te.parts[p]})
				}
				for _, run := range te.runs {
					if seg := run.segs[p]; seg.records > 0 {
						runSrcs = append(runSrcs, newRunSource(run.spill, seg))
					}
				}
			}
			// Intermediate merges are attempt-local: their temporary runs
			// are released when this attempt finishes, success or not.
			var localPasses, localSpilledRecs, localSpilledBytes int64
			var temps []*spillRun
			defer func() {
				for _, r := range temps {
					r.release()
				}
			}()
			if len(runSrcs) > e.cfg.MergeFactor {
				var err error
				runSrcs, temps, err = e.mergeRuns(runSrcs, e.cfg.MergeFactor,
					&localPasses, &localSpilledRecs, &localSpilledBytes)
				if err != nil {
					return fmt.Errorf("reduce partition %d merge: %w", p, err)
				}
			}
			if len(runSrcs) > 0 {
				localPasses++ // the final merge reads at least one on-disk run
			}
			for _, rs := range runSrcs {
				sources = append(sources, rs)
			}
			mi, err := newMergeIter(sources)
			if err != nil {
				return fmt.Errorf("reduce partition %d: %w", p, err)
			}
			col, err := e.openParts(job, p)
			if err != nil {
				return err
			}
			committed := false
			defer func() {
				if !committed {
					col.abort()
				}
			}()
			g, err := newGroupIter(mi)
			if err != nil {
				return fmt.Errorf("reduce partition %d: %w", p, err)
			}
			var localGroups int64
			for g.ok {
				vals := &groupValues{g: g, key: g.cur.key, head: true}
				localGroups++
				if err := reducer.Reduce(g.cur.key, vals, col); err != nil {
					return fmt.Errorf("reduce partition %d: %w", p, err)
				}
				if err := vals.drain(); err != nil {
					return fmt.Errorf("reduce partition %d: %w", p, err)
				}
			}
			if err := col.close(); err != nil {
				return fmt.Errorf("reduce partition %d: %w", p, err)
			}
			committed = true
			atomic.AddInt64(&groups, localGroups)
			atomic.AddInt64(&outRecords, col.records)
			atomic.AddInt64(&outBytes, col.bytes)
			atomic.AddInt64(&spilledRecs, localSpilledRecs)
			atomic.AddInt64(&spilledBytes, localSpilledBytes)
			atomic.AddInt64(&mergePasses, localPasses)
			for n := g.pairs; ; {
				cur := atomic.LoadInt64(&maxPartition)
				if n <= cur || atomic.CompareAndSwapInt64(&maxPartition, cur, n) {
					break
				}
			}
			return nil
		})
	}); err != nil {
		return fail(err)
	}
	m.TaskRetries += reduceRetries
	m.ReduceTasks = nReducers
	m.ReduceInputGroups = groups
	m.ReduceOutputRecords = outRecords
	m.ReduceOutputBytes = outBytes
	m.SpilledRecords += spilledRecs
	m.SpilledBytes += spilledBytes
	m.MergePasses = mergePasses
	m.MaxReducePartitionRecords = maxPartition
	if m.MapOutputRecords > 0 && nReducers > 0 {
		m.ReduceSkew = float64(maxPartition) * float64(nReducers) / float64(m.MapOutputRecords)
	}

	// ---- Commit: splice part files into the job outputs ----
	if err := e.commitParts(job, nReducers); err != nil {
		return fail(err)
	}
	m.Duration = time.Since(start)
	return m, nil
}

// commitParts assembles each output from its per-task part files in task
// order — a pure block splice (hdfs.Concat), since every record was already
// written (and paid for) by the task that produced it.
func (e *Engine) commitParts(job *Job, nParts int) error {
	for _, base := range append([]string{job.Output}, job.ExtraOutputs...) {
		names := make([]string, nParts)
		for i := range names {
			names[i] = partName(base, i)
		}
		if err := e.dfs.Concat(base, names); err != nil {
			return fmt.Errorf("committing output %s: %w", base, err)
		}
	}
	return nil
}

func (e *Engine) runMapOnly(job *Job, splits []split, m JobMetrics, start time.Time,
	nParts *int, fail func(error) (JobMetrics, error)) (JobMetrics, error) {
	*nParts = len(splits)
	var retries int64
	var outRecords, outBytes int64
	if err := e.parallel(e.cfg.MapParallelism, len(splits), func(i int) error {
		return e.runTask(job.Name, "map", i, &retries, func() error {
			col, err := e.openParts(job, i)
			if err != nil {
				return err
			}
			committed := false
			defer func() {
				if !committed {
					col.abort()
				}
			}()
			r, err := e.dfs.OpenRange(splits[i].input, splits[i].off, splits[i].n)
			if err != nil {
				return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
			}
			for {
				rec, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
				}
				if err := job.MapOnly.MapRecord(splits[i].input, rec, col); err != nil {
					return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
				}
			}
			if err := col.close(); err != nil {
				return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
			}
			committed = true
			atomic.AddInt64(&outRecords, col.records)
			atomic.AddInt64(&outBytes, col.bytes)
			return nil
		})
	}); err != nil {
		return fail(err)
	}
	m.TaskRetries += retries
	m.ReduceOutputRecords = outRecords
	m.ReduceOutputBytes = outBytes
	if err := e.commitParts(job, len(splits)); err != nil {
		return fail(err)
	}
	m.Duration = time.Since(start)
	return m, nil
}

// parallel runs fn(0..n-1) on at most width goroutines, returning the first
// error encountered (all started tasks run to completion).
func (e *Engine) parallel(width, n int, fn func(int) error) error {
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		next  int64 = -1
		errMu sync.Mutex
		first error
	)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Stage is a set of jobs with no mutual dependencies; the workflow runner
// executes a stage's jobs concurrently (Pig submits independent MR jobs in
// parallel; Hive runs them serially — engines model that by using
// one-job stages).
type Stage []*Job

// RunWorkflow executes stages sequentially, jobs within a stage
// concurrently. On the first failed job the workflow stops after the
// current stage completes, deletes the outputs of every job that had
// succeeded (so repeated capacity-limited runs do not leak simulated
// disk), and reports the failure. Metrics for every executed job are
// returned in submission order.
func (e *Engine) RunWorkflow(stages []Stage) (WorkflowMetrics, error) {
	start := time.Now()
	var wf WorkflowMetrics
	for _, st := range stages {
		wf.Cycles += len(st)
	}
	var done []*Job // successfully completed jobs, for failure cleanup
	for _, st := range stages {
		jms := make([]JobMetrics, len(st))
		errs := make([]error, len(st))
		var wg sync.WaitGroup
		for i, job := range st {
			wg.Add(1)
			go func(i int, job *Job) {
				defer wg.Done()
				jms[i], errs[i] = e.Run(job)
			}(i, job)
		}
		wg.Wait()
		wf.Jobs = append(wf.Jobs, jms...)
		for i := range st {
			if errs[i] == nil {
				done = append(done, st[i])
			}
		}
		for i, err := range errs {
			if err != nil {
				wf.Failed = true
				wf.FailedJob = st[i].Name
				wf.Err = err.Error()
				wf.Duration = time.Since(start)
				for _, job := range done {
					e.dfs.DeleteIfExists(job.Output)
					for _, eo := range job.ExtraOutputs {
						e.dfs.DeleteIfExists(eo)
					}
				}
				return wf, err
			}
		}
	}
	wf.Duration = time.Since(start)
	return wf, nil
}

// CountScansOf reports how many jobs in the plan scan the named file — the
// paper's "number of full scans of the triple relation" metric (Figure 3).
func CountScansOf(stages []Stage, name string) int {
	n := 0
	for _, st := range stages {
		for _, job := range st {
			for _, in := range job.Inputs {
				if in == name {
					n++
					break
				}
			}
		}
	}
	return n
}

// ErrIsDiskFull reports whether err is rooted in DFS capacity exhaustion.
func ErrIsDiskFull(err error) bool { return errors.Is(err, hdfs.ErrDiskFull) }
