package mapreduce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ntga/internal/hdfs"
)

// EngineConfig tunes the execution engine.
type EngineConfig struct {
	// MapParallelism is the number of concurrent map tasks; 0 defaults to
	// GOMAXPROCS.
	MapParallelism int
	// ReduceParallelism is the number of concurrent reduce tasks; 0
	// defaults to GOMAXPROCS.
	ReduceParallelism int
	// DefaultReducers is the reduce partition count used when a job does
	// not set NumReducers; 0 defaults to 8.
	DefaultReducers int
	// SplitRecords is the number of records per map split; 0 defaults to
	// 8192. Smaller splits increase map-task parallelism.
	SplitRecords int
	// TaskMaxAttempts is the per-task retry budget (Hadoop's
	// mapreduce.map.maxattempts); 0 defaults to 1 (no retries).
	TaskMaxAttempts int
	// TaskFailureRate injects deterministic pseudo-random task failures
	// with the given probability (0 disables), for fault-tolerance
	// testing. A failed attempt is retried until TaskMaxAttempts is
	// exhausted, at which point the job fails — mirroring Hadoop's task
	// retry semantics.
	TaskFailureRate float64
	// TaskFailureSeed varies which (job, task, attempt) triples fail.
	TaskFailureSeed int64
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.MapParallelism == 0 {
		c.MapParallelism = runtime.GOMAXPROCS(0)
	}
	if c.ReduceParallelism == 0 {
		c.ReduceParallelism = runtime.GOMAXPROCS(0)
	}
	if c.DefaultReducers == 0 {
		c.DefaultReducers = 8
	}
	if c.SplitRecords == 0 {
		c.SplitRecords = 8192
	}
	if c.TaskMaxAttempts == 0 {
		c.TaskMaxAttempts = 1
	}
	return c
}

// Engine executes jobs and workflows against a simulated DFS.
type Engine struct {
	dfs *hdfs.DFS
	cfg EngineConfig
}

// NewEngine returns an engine over the given DFS.
func NewEngine(dfs *hdfs.DFS, cfg EngineConfig) *Engine {
	return &Engine{dfs: dfs, cfg: cfg.withDefaults()}
}

// DFS returns the engine's file system.
func (e *Engine) DFS() *hdfs.DFS { return e.dfs }

// taskEmitter buffers one map task's output, partitioned by reducer.
type taskEmitter struct {
	partitioner Partitioner
	nReducers   int
	parts       [][]kv
	records     int64
	bytes       int64
}

func (t *taskEmitter) Emit(key, value []byte) error {
	p := t.partitioner(key, t.nReducers)
	if p < 0 || p >= t.nReducers {
		return fmt.Errorf("mapreduce: partitioner returned %d for %d reducers", p, t.nReducers)
	}
	k := make([]byte, len(key))
	copy(k, key)
	v := make([]byte, len(value))
	copy(v, value)
	t.parts[p] = append(t.parts[p], kv{k, v})
	t.records++
	t.bytes += int64(len(key) + len(value))
	return nil
}

// sliceCollector buffers output records in memory, including records routed
// to declared extra outputs (MultipleOutputs).
type sliceCollector struct {
	allowed map[string]bool
	records [][]byte
	bytes   int64
	named   map[string][][]byte
}

func newSliceCollector(job *Job) *sliceCollector {
	c := &sliceCollector{}
	if len(job.ExtraOutputs) > 0 {
		c.allowed = make(map[string]bool, len(job.ExtraOutputs))
		for _, eo := range job.ExtraOutputs {
			c.allowed[eo] = true
		}
		c.named = make(map[string][][]byte)
	}
	return c
}

func (c *sliceCollector) Collect(record []byte) error {
	r := make([]byte, len(record))
	copy(r, record)
	c.records = append(c.records, r)
	c.bytes += int64(len(r))
	return nil
}

func (c *sliceCollector) CollectTo(output string, record []byte) error {
	if !c.allowed[output] {
		return fmt.Errorf("mapreduce: CollectTo(%q): not a declared extra output", output)
	}
	r := make([]byte, len(record))
	copy(r, record)
	c.named[output] = append(c.named[output], r)
	c.bytes += int64(len(r))
	return nil
}

type split struct {
	input   string
	records [][]byte
}

// errInjectedFailure marks a fault-injection task failure.
var errInjectedFailure = errors.New("mapreduce: injected task failure")

// shouldInjectFailure decides deterministically whether a given task
// attempt fails under the configured failure rate.
func (e *Engine) shouldInjectFailure(job string, kind string, task, attempt int) bool {
	if e.cfg.TaskFailureRate <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d", job, kind, task, attempt, e.cfg.TaskFailureSeed)
	return float64(h.Sum64()%10000) < e.cfg.TaskFailureRate*10000
}

// runTask executes one task attempt loop: injected or real failures are
// retried with a fresh attempt (the reset callback discards any partial
// task output) until the attempt budget is exhausted.
func (e *Engine) runTask(job, kind string, task int, retries *int64,
	reset func(), body func() error) error {
	var lastErr error
	for attempt := 0; attempt < e.cfg.TaskMaxAttempts; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(retries, 1)
			reset()
		}
		if e.shouldInjectFailure(job, kind, task, attempt) {
			lastErr = fmt.Errorf("%w (%s task %d attempt %d)", errInjectedFailure, kind, task, attempt)
			continue
		}
		if err := body(); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("%s task %d failed after %d attempts: %w", kind, task, e.cfg.TaskMaxAttempts, lastErr)
}

// Run executes one job to completion. On failure the job's output file is
// removed and the returned metrics carry the error.
func (e *Engine) Run(job *Job) (JobMetrics, error) {
	start := time.Now()
	m := JobMetrics{Job: job.Name, Name: job.Name, MapOnly: job.MapOnly != nil}
	fail := func(err error) (JobMetrics, error) {
		m.Failed = true
		m.Err = err.Error()
		m.Duration = time.Since(start)
		e.dfs.DeleteIfExists(job.Output)
		for _, eo := range job.ExtraOutputs {
			e.dfs.DeleteIfExists(eo)
		}
		return m, fmt.Errorf("job %s: %w", job.Name, err)
	}
	if err := job.validate(); err != nil {
		return fail(err)
	}

	// Plan map splits, scanning each input once.
	var splits []split
	for _, in := range job.Inputs {
		records, err := e.dfs.ReadAll(in)
		if err != nil {
			return fail(fmt.Errorf("reading input: %w", err))
		}
		size, _ := e.dfs.FileSize(in)
		m.MapInputBytes += size
		m.MapInputRecords += int64(len(records))
		for off := 0; off < len(records); off += e.cfg.SplitRecords {
			end := off + e.cfg.SplitRecords
			if end > len(records) {
				end = len(records)
			}
			splits = append(splits, split{input: in, records: records[off:end]})
		}
		if len(records) == 0 {
			splits = append(splits, split{input: in}) // keep empty inputs visible
		}
	}
	m.MapTasks = len(splits)

	if job.MapOnly != nil {
		return e.runMapOnly(job, splits, m, start, fail)
	}

	nReducers := job.NumReducers
	if nReducers == 0 {
		nReducers = e.cfg.DefaultReducers
	}
	partitioner := job.Partitioner
	if partitioner == nil {
		partitioner = HashPartitioner
	}

	// ---- Map phase ----
	emitters := make([]*taskEmitter, len(splits))
	var retries int64
	if err := e.parallel(e.cfg.MapParallelism, len(splits), func(i int) error {
		newAttempt := func() {
			emitters[i] = &taskEmitter{partitioner: partitioner, nReducers: nReducers,
				parts: make([][]kv, nReducers)}
		}
		newAttempt()
		return e.runTask(job.Name, "map", i, &retries, newAttempt, func() error {
			te := emitters[i]
			for _, rec := range splits[i].records {
				if err := job.Mapper.Map(splits[i].input, rec, te); err != nil {
					return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
				}
			}
			return nil
		})
	}); err != nil {
		return fail(err)
	}
	m.TaskRetries += retries
	for _, te := range emitters {
		m.MapOutputRecords += te.records
		m.MapOutputBytes += te.bytes
	}

	// ---- Shuffle & sort ----
	partitions := make([][]kv, nReducers)
	for p := 0; p < nReducers; p++ {
		var total int
		for _, te := range emitters {
			total += len(te.parts[p])
		}
		part := make([]kv, 0, total)
		for _, te := range emitters {
			part = append(part, te.parts[p]...)
		}
		partitions[p] = part
	}
	if err := e.parallel(e.cfg.ReduceParallelism, nReducers, func(p int) error {
		sortKVs(partitions[p])
		return nil
	}); err != nil {
		return fail(err)
	}

	// ---- Reduce phase ----
	outputs := make([]*sliceCollector, nReducers)
	var groups int64
	var reduceRetries int64
	var maxPartition int64
	if err := e.parallel(e.cfg.ReduceParallelism, nReducers, func(p int) error {
		part := partitions[p]
		for n := int64(len(part)); ; {
			cur := atomic.LoadInt64(&maxPartition)
			if n <= cur || atomic.CompareAndSwapInt64(&maxPartition, cur, n) {
				break
			}
		}
		newAttempt := func() { outputs[p] = newSliceCollector(job) }
		newAttempt()
		return e.runTask(job.Name, "reduce", p, &reduceRetries, newAttempt, func() error {
			col := outputs[p]
			var localGroups int64
			for i := 0; i < len(part); {
				j := i + 1
				for j < len(part) && compareBytes(part[j].key, part[i].key) == 0 {
					j++
				}
				values := make([][]byte, 0, j-i)
				for k := i; k < j; k++ {
					values = append(values, part[k].value)
				}
				localGroups++
				if err := job.Reducer.Reduce(part[i].key, values, col); err != nil {
					return fmt.Errorf("reduce partition %d: %w", p, err)
				}
				i = j
			}
			atomic.AddInt64(&groups, localGroups)
			return nil
		})
	}); err != nil {
		return fail(err)
	}
	m.TaskRetries += reduceRetries
	m.ReduceTasks = nReducers
	m.ReduceInputGroups = groups
	m.MaxReducePartitionRecords = maxPartition
	if m.MapOutputRecords > 0 && nReducers > 0 {
		m.ReduceSkew = float64(maxPartition) * float64(nReducers) / float64(m.MapOutputRecords)
	}

	// ---- Commit output ----
	if err := e.commit(job, outputs, &m); err != nil {
		return fail(err)
	}
	m.Duration = time.Since(start)
	return m, nil
}

// commit writes the collectors' buffered records to the job's output file
// and every declared extra output (MultipleOutputs), updating the metrics.
func (e *Engine) commit(job *Job, collectors []*sliceCollector, m *JobMetrics) error {
	writeAll := func(name string, pick func(*sliceCollector) [][]byte) error {
		w, err := e.dfs.Create(name)
		if err != nil {
			return fmt.Errorf("creating output %s: %w", name, err)
		}
		for _, col := range collectors {
			if col == nil {
				continue
			}
			for _, rec := range pick(col) {
				if err := w.Append(rec); err != nil {
					w.Abort()
					return fmt.Errorf("writing output %s: %w", name, err)
				}
				m.ReduceOutputRecords++
				m.ReduceOutputBytes += int64(len(rec))
			}
		}
		if err := w.Close(); err != nil {
			w.Abort()
			return fmt.Errorf("closing output %s: %w", name, err)
		}
		return nil
	}
	if err := writeAll(job.Output, func(c *sliceCollector) [][]byte { return c.records }); err != nil {
		return err
	}
	for _, eo := range job.ExtraOutputs {
		eo := eo
		if err := writeAll(eo, func(c *sliceCollector) [][]byte { return c.named[eo] }); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) runMapOnly(job *Job, splits []split, m JobMetrics, start time.Time,
	fail func(error) (JobMetrics, error)) (JobMetrics, error) {
	collectors := make([]*sliceCollector, len(splits))
	var retries int64
	if err := e.parallel(e.cfg.MapParallelism, len(splits), func(i int) error {
		newAttempt := func() { collectors[i] = newSliceCollector(job) }
		newAttempt()
		return e.runTask(job.Name, "map", i, &retries, newAttempt, func() error {
			col := collectors[i]
			for _, rec := range splits[i].records {
				if err := job.MapOnly.MapRecord(splits[i].input, rec, col); err != nil {
					return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
				}
			}
			return nil
		})
	}); err != nil {
		return fail(err)
	}
	m.TaskRetries += retries
	if err := e.commit(job, collectors, &m); err != nil {
		return fail(err)
	}
	m.Duration = time.Since(start)
	return m, nil
}

// parallel runs fn(0..n-1) on at most width goroutines, returning the first
// error encountered (all started tasks run to completion).
func (e *Engine) parallel(width, n int, fn func(int) error) error {
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		next  int64 = -1
		errMu sync.Mutex
		first error
	)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Stage is a set of jobs with no mutual dependencies; the workflow runner
// executes a stage's jobs concurrently (Pig submits independent MR jobs in
// parallel; Hive runs them serially — engines model that by using
// one-job stages).
type Stage []*Job

// RunWorkflow executes stages sequentially, jobs within a stage
// concurrently. On the first failed job the workflow stops after the
// current stage completes and reports the failure. Metrics for every
// executed job are returned in submission order.
func (e *Engine) RunWorkflow(stages []Stage) (WorkflowMetrics, error) {
	start := time.Now()
	var wf WorkflowMetrics
	for _, st := range stages {
		wf.Cycles += len(st)
	}
	for _, st := range stages {
		jms := make([]JobMetrics, len(st))
		errs := make([]error, len(st))
		var wg sync.WaitGroup
		for i, job := range st {
			wg.Add(1)
			go func(i int, job *Job) {
				defer wg.Done()
				jms[i], errs[i] = e.Run(job)
			}(i, job)
		}
		wg.Wait()
		wf.Jobs = append(wf.Jobs, jms...)
		for i, err := range errs {
			if err != nil {
				wf.Failed = true
				wf.FailedJob = st[i].Name
				wf.Err = err.Error()
				wf.Duration = time.Since(start)
				return wf, err
			}
		}
	}
	wf.Duration = time.Since(start)
	return wf, nil
}

// CountScansOf reports how many jobs in the plan scan the named file — the
// paper's "number of full scans of the triple relation" metric (Figure 3).
func CountScansOf(stages []Stage, name string) int {
	n := 0
	for _, st := range stages {
		for _, job := range st {
			for _, in := range job.Inputs {
				if in == name {
					n++
					break
				}
			}
		}
	}
	return n
}

// ErrIsDiskFull reports whether err is rooted in DFS capacity exhaustion.
func ErrIsDiskFull(err error) bool { return errors.Is(err, hdfs.ErrDiskFull) }
