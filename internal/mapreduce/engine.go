package mapreduce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ntga/internal/hdfs"
	"ntga/internal/trace"
)

// EngineConfig tunes the execution engine.
type EngineConfig struct {
	// MapParallelism is the number of concurrent map tasks; 0 defaults to
	// GOMAXPROCS.
	MapParallelism int
	// ReduceParallelism is the number of concurrent reduce tasks; 0
	// defaults to GOMAXPROCS.
	ReduceParallelism int
	// DefaultReducers is the reduce partition count used when a job does
	// not set NumReducers; 0 defaults to 8.
	DefaultReducers int
	// SplitRecords is the number of records per map split; 0 defaults to
	// 8192. Smaller splits increase map-task parallelism.
	SplitRecords int
	// SortBufferBytes bounds each map task's in-memory output buffer
	// (Hadoop's io.sort.mb): when the buffered key+value bytes reach the
	// budget the task sorts the buffer, applies the job's combiner, and
	// spills a run to node-local disk. 0 means unbounded — no spilling,
	// the pre-refactor in-memory behavior.
	SortBufferBytes int64
	// MergeFactor bounds how many on-disk runs one external merge reads at
	// once (Hadoop's io.sort.factor); more runs force intermediate merge
	// passes. In-memory segments never count against it. 0 defaults to 10.
	MergeFactor int
	// TaskMaxAttempts is the per-task retry budget (Hadoop's
	// mapreduce.map.maxattempts); 0 defaults to 1 (no retries).
	TaskMaxAttempts int
	// TaskFailureRate injects deterministic pseudo-random task failures
	// with the given probability (0 disables), for fault-tolerance
	// testing. A failed attempt is retried until TaskMaxAttempts is
	// exhausted, at which point the job fails — mirroring Hadoop's task
	// retry semantics.
	TaskFailureRate float64
	// TaskFailureSeed varies which (job, task, attempt) triples fail.
	TaskFailureSeed int64
	// Tracer, when non-nil, records every workflow/job/task/phase as a
	// typed span tree (see internal/trace): per-task scan/map/sort/spill/
	// merge/reduce/DFS-write intervals with record and byte counts,
	// exportable as a Chrome trace_event profile or a plain-text timeline.
	// A nil Tracer is a zero-overhead no-op — the engine skips all
	// fine-grained timing.
	Tracer *trace.Tracer
}

// validate rejects configurations that would silently misbehave: an
// external merge needs at least two-way fan-in to make progress, and a
// negative sort budget would spill on every emitted pair. Called (on the
// defaults-applied config) at Run time so the error carries context.
func (c EngineConfig) validate() error {
	if c.MergeFactor < 2 {
		return fmt.Errorf("mapreduce: EngineConfig.MergeFactor must be >= 2 (got %d); 0 selects the default", c.MergeFactor)
	}
	if c.SortBufferBytes < 0 {
		return fmt.Errorf("mapreduce: EngineConfig.SortBufferBytes must be >= 0 (got %d); 0 disables spilling", c.SortBufferBytes)
	}
	return nil
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.MapParallelism == 0 {
		c.MapParallelism = runtime.GOMAXPROCS(0)
	}
	if c.ReduceParallelism == 0 {
		c.ReduceParallelism = runtime.GOMAXPROCS(0)
	}
	if c.DefaultReducers == 0 {
		c.DefaultReducers = 8
	}
	if c.SplitRecords == 0 {
		c.SplitRecords = 8192
	}
	if c.MergeFactor == 0 {
		c.MergeFactor = 10
	}
	if c.TaskMaxAttempts == 0 {
		c.TaskMaxAttempts = 1
	}
	return c
}

// Engine executes jobs and workflows against a simulated DFS.
type Engine struct {
	dfs *hdfs.DFS
	cfg EngineConfig
}

// NewEngine returns an engine over the given DFS.
func NewEngine(dfs *hdfs.DFS, cfg EngineConfig) *Engine {
	return &Engine{dfs: dfs, cfg: cfg.withDefaults()}
}

// DFS returns the engine's file system.
func (e *Engine) DFS() *hdfs.DFS { return e.dfs }

// partName is the per-task part file a reduce (or map-only) task streams
// its output into; parts are spliced into the job output via hdfs.Concat
// once every task has committed.
func partName(base string, i int) string {
	return fmt.Sprintf("%s._part-%05d", base, i)
}

// streamCollector streams one task's output records straight into DFS part
// files as they are collected, so a job that overruns cluster capacity
// fails mid-reduce (hdfs.ErrDiskFull while records are produced), not at a
// commit step afterwards.
type streamCollector struct {
	main    *hdfs.Writer
	extras  map[string]*hdfs.Writer
	records int64
	bytes   int64
	// timed accumulates the wall-clock spent inside DFS appends so a traced
	// task can split its fused loop into reduce-vs-write phases; off (the
	// default) when no tracer is configured.
	timed    bool
	writeDur time.Duration
}

// openParts creates the part files for task index i of the job: one for
// the main output and one per declared extra output.
func (e *Engine) openParts(job *Job, i int) (*streamCollector, error) {
	col := &streamCollector{}
	w, err := e.dfs.Create(partName(job.Output, i))
	if err != nil {
		return nil, fmt.Errorf("creating output %s: %w", job.Output, err)
	}
	col.main = w
	if len(job.ExtraOutputs) > 0 {
		col.extras = make(map[string]*hdfs.Writer, len(job.ExtraOutputs))
		for _, eo := range job.ExtraOutputs {
			w, err := e.dfs.Create(partName(eo, i))
			if err != nil {
				col.abort()
				return nil, fmt.Errorf("creating output %s: %w", eo, err)
			}
			col.extras[eo] = w
		}
	}
	return col, nil
}

func (c *streamCollector) Collect(record []byte) error {
	var t0 time.Time
	if c.timed {
		t0 = time.Now()
	}
	err := c.main.Append(record)
	if c.timed {
		c.writeDur += time.Since(t0)
	}
	if err != nil {
		return err
	}
	c.records++
	c.bytes += int64(len(record))
	return nil
}

func (c *streamCollector) CollectTo(output string, record []byte) error {
	w, ok := c.extras[output]
	if !ok {
		return fmt.Errorf("mapreduce: CollectTo(%q): not a declared extra output", output)
	}
	var t0 time.Time
	if c.timed {
		t0 = time.Now()
	}
	err := w.Append(record)
	if c.timed {
		c.writeDur += time.Since(t0)
	}
	if err != nil {
		return err
	}
	c.records++
	c.bytes += int64(len(record))
	return nil
}

// written sums the records and bytes actually appended through the part
// writers (hdfs-attributed, so a failed Append that partially streamed is
// still accounted to the task's write span).
func (c *streamCollector) written() (records, bytes int64) {
	r, b := c.main.Written()
	for _, w := range c.extras {
		wr, wb := w.Written()
		r += wr
		b += wb
	}
	return r, b
}

// close seals every part file; on error the caller should abort.
func (c *streamCollector) close() error {
	if err := c.main.Close(); err != nil {
		return err
	}
	for _, w := range c.extras {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// abort discards every part file written by this task attempt.
func (c *streamCollector) abort() {
	if c.main != nil {
		c.main.Abort()
	}
	for _, w := range c.extras {
		w.Abort()
	}
}

// split is one map task's input assignment: a record range of one file,
// read through a streaming hdfs.FileReader so only scanned bytes are
// charged (and a retried task re-charges its re-read).
type split struct {
	input string
	off   int
	n     int
}

// errInjectedFailure marks a fault-injection task failure.
var errInjectedFailure = errors.New("mapreduce: injected task failure")

// shouldInjectFailure decides deterministically whether a given task
// attempt fails under the configured failure rate.
func (e *Engine) shouldInjectFailure(job string, kind string, task, attempt int) bool {
	if e.cfg.TaskFailureRate <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d", job, kind, task, attempt, e.cfg.TaskFailureSeed)
	return float64(h.Sum64()%10000) < e.cfg.TaskFailureRate*10000
}

// runTask executes one task attempt loop: injected or real failures are
// retried with a fresh attempt until the attempt budget is exhausted. The
// body must clean up its own partial state (spill runs, part files) before
// returning an error. The successful attempt's wall-clock duration is
// recorded in durs[task] for the per-job task-timing summaries.
func (e *Engine) runTask(job, kind string, task int, retries *int64, durs []time.Duration, body func(attempt int) error) error {
	var lastErr error
	for attempt := 0; attempt < e.cfg.TaskMaxAttempts; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(retries, 1)
		}
		if e.shouldInjectFailure(job, kind, task, attempt) {
			lastErr = fmt.Errorf("%w (%s task %d attempt %d)", errInjectedFailure, kind, task, attempt)
			continue
		}
		start := time.Now()
		if err := body(attempt); err != nil {
			lastErr = err
			continue
		}
		durs[task] = time.Since(start)
		return nil
	}
	return fmt.Errorf("%s task %d failed after %d attempts: %w", kind, task, e.cfg.TaskMaxAttempts, lastErr)
}

// taskNode assigns a task index to a simulated data node (round-robin — the
// engine has no locality model, but traces and timelines want a stable
// node attribution).
func (e *Engine) taskNode(task int) int {
	return task % e.dfs.Config().Nodes
}

// Run executes one job to completion. On failure the job's output files
// (including any committed part files) are removed and the returned
// metrics carry the error. With a Tracer configured the job becomes a root
// span (jobs executed via RunWorkflow nest under the workflow span
// instead).
func (e *Engine) Run(job *Job) (JobMetrics, error) {
	jsp := e.cfg.Tracer.Start(trace.KindJob, job.Name)
	defer jsp.Finish()
	return e.run(job, jsp)
}

// run is the body of Run with an explicit (possibly nil) parent job span.
func (e *Engine) run(job *Job, jsp *trace.Span) (JobMetrics, error) {
	start := time.Now()
	m := JobMetrics{Job: job.Name, MapOnly: job.MapOnly != nil}
	nParts := 0 // part files per output base once tasks are planned
	fail := func(err error) (JobMetrics, error) {
		m.Failed = true
		m.Err = err.Error()
		m.Duration = time.Since(start)
		for _, base := range append([]string{job.Output}, job.ExtraOutputs...) {
			e.dfs.DeleteIfExists(base)
			for i := 0; i < nParts; i++ {
				e.dfs.DeleteIfExists(partName(base, i))
			}
		}
		return m, fmt.Errorf("job %s: %w", job.Name, err)
	}
	if err := e.cfg.validate(); err != nil {
		return fail(err)
	}
	if err := job.validate(); err != nil {
		return fail(err)
	}

	// Plan map splits from file metadata; the records themselves are
	// streamed by the map tasks.
	var splits []split
	for _, in := range job.Inputs {
		n, err := e.dfs.RecordCount(in)
		if err != nil {
			return fail(fmt.Errorf("reading input: %w", err))
		}
		size, err := e.dfs.FileSize(in)
		if err != nil {
			return fail(fmt.Errorf("sizing input: %w", err))
		}
		m.MapInputBytes += size
		m.MapInputRecords += int64(n)
		for off := 0; off < n; off += e.cfg.SplitRecords {
			cnt := e.cfg.SplitRecords
			if off+cnt > n {
				cnt = n - off
			}
			splits = append(splits, split{input: in, off: off, n: cnt})
		}
		if n == 0 {
			splits = append(splits, split{input: in}) // keep empty inputs visible
		}
	}
	m.MapTasks = len(splits)

	if job.MapOnly != nil {
		return e.runMapOnly(job, jsp, splits, m, start, &nParts, fail)
	}

	nReducers := job.NumReducers
	if nReducers == 0 {
		nReducers = e.cfg.DefaultReducers
	}
	partitioner := job.Partitioner
	if partitioner == nil {
		partitioner = HashPartitioner
	}

	// ---- Map phase ----
	// Each task streams its split through a spilling emitter; sealed
	// emitters hold the sorted in-memory segments and spill runs the
	// reduce phase merges. All spill runs are released when Run returns.
	emitters := make([]*taskEmitter, len(splits))
	defer func() {
		for _, te := range emitters {
			if te != nil {
				te.discard()
			}
		}
	}()
	var retries int64
	mapDurs := make([]time.Duration, len(splits))
	if err := e.parallel(e.cfg.MapParallelism, len(splits), func(i int) error {
		return e.runTask(job.Name, "map", i, &retries, mapDurs, func(attempt int) error {
			tsp := jsp.ChildTask("map", i, i, e.taskNode(i), attempt)
			defer tsp.Finish()
			traced := tsp != nil
			te := newTaskEmitter(e.dfs, partitioner, nReducers, job.Combiner, e.cfg.SortBufferBytes)
			te.traced = traced
			committed := false
			defer func() {
				if !committed {
					te.discard()
				}
			}()
			r, err := e.dfs.OpenRange(splits[i].input, splits[i].off, splits[i].n)
			if err != nil {
				return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
			}
			// The loop fuses scanning and mapping; when traced, each side's
			// time is accumulated separately (plus the input bytes for the
			// scan span).
			var scanDur, mapDur time.Duration
			var scanBytes int64
			for {
				var rec []byte
				var err error
				if traced {
					t0 := time.Now()
					rec, err = r.Next()
					scanDur += time.Since(t0)
				} else {
					rec, err = r.Next()
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
				}
				if traced {
					scanBytes += int64(len(rec))
					t0 := time.Now()
					err = job.Mapper.Map(splits[i].input, rec, te)
					mapDur += time.Since(t0)
				} else {
					err = job.Mapper.Map(splits[i].input, rec, te)
				}
				if err != nil {
					return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
				}
			}
			sortStart := time.Now()
			if err := te.seal(); err != nil {
				return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
			}
			if traced {
				// Spill time happened inside Mapper.Map calls (the emitter
				// spills when the buffer crosses the budget); carve it out of
				// the map phase so the two aren't double-counted.
				var spillDur time.Duration
				for _, sp := range te.spills {
					spillDur += sp.dur
				}
				tsp.AddPhase(trace.KindScan, "scan", scanDur, int64(splits[i].n), scanBytes)
				tsp.AddPhase(trace.KindMap, "map", mapDur-spillDur, te.records, te.bytes)
				for _, sp := range te.spills {
					tsp.AddPhase(trace.KindSpill, "spill", sp.dur, sp.records, sp.bytes)
				}
				tsp.AddPhase(trace.KindSort, "sort", time.Since(sortStart), te.records, te.bytes)
				tsp.SetIO(te.records, te.bytes)
			}
			emitters[i] = te
			committed = true
			return nil
		})
	}); err != nil {
		return fail(err)
	}
	m.TaskRetries += retries
	m.MapTaskStats = summarizeTasks(mapDurs)
	for _, te := range emitters {
		m.MapOutputRecords += te.records
		m.MapOutputBytes += te.bytes
		m.SpilledRecords += te.spilledRecords
		m.SpilledBytes += te.spilledBytes
		if te.peakBuffered > m.PeakSortBufferBytes {
			m.PeakSortBufferBytes = te.peakBuffered
		}
	}

	// ---- Shuffle-merge + reduce phase ----
	// Each reduce task merges its partition's sorted segments (in-memory
	// and spilled) into one stream, groups by key, and feeds the reducer,
	// streaming output records straight into its part files.
	reducer := job.StreamReducer
	if reducer == nil {
		reducer = adaptedReducer{job.Reducer}
	}
	nParts = nReducers
	var groups, reduceRetries, maxPartition int64
	var outRecords, outBytes int64
	var spilledRecs, spilledBytes, mergePasses int64
	reduceDurs := make([]time.Duration, nReducers)
	perGroups := make([]int64, nReducers)
	perBytes := make([]int64, nReducers)
	if err := e.parallel(e.cfg.ReduceParallelism, nReducers, func(p int) error {
		return e.runTask(job.Name, "reduce", p, &reduceRetries, reduceDurs, func(attempt int) error {
			tsp := jsp.ChildTask("reduce", len(splits)+p, p, e.taskNode(p), attempt)
			defer tsp.Finish()
			var sources []kvSource
			var runSrcs []*runSource
			for _, te := range emitters {
				if len(te.parts[p]) > 0 {
					sources = append(sources, &memSource{kvs: te.parts[p]})
				}
				for _, run := range te.runs {
					if seg := run.segs[p]; seg.records > 0 {
						runSrcs = append(runSrcs, newRunSource(run.spill, seg))
					}
				}
			}
			// Intermediate merges are attempt-local: their temporary runs
			// are released when this attempt finishes, success or not.
			var localPasses, localSpilledRecs, localSpilledBytes int64
			var temps []*spillRun
			defer func() {
				for _, r := range temps {
					r.release()
				}
			}()
			if len(runSrcs) > e.cfg.MergeFactor {
				var err error
				runSrcs, temps, err = e.mergeRuns(runSrcs, e.cfg.MergeFactor, tsp,
					&localPasses, &localSpilledRecs, &localSpilledBytes)
				if err != nil {
					return fmt.Errorf("reduce partition %d merge: %w", p, err)
				}
			}
			if len(runSrcs) > 0 {
				localPasses++ // the final merge reads at least one on-disk run
			}
			for _, rs := range runSrcs {
				sources = append(sources, rs)
			}
			mi, err := newMergeIter(sources)
			if err != nil {
				return fmt.Errorf("reduce partition %d: %w", p, err)
			}
			col, err := e.openParts(job, p)
			if err != nil {
				return err
			}
			col.timed = tsp != nil
			committed := false
			defer func() {
				if !committed {
					col.abort()
				}
			}()
			g, err := newGroupIter(mi)
			if err != nil {
				return fmt.Errorf("reduce partition %d: %w", p, err)
			}
			// The reduce loop fuses reducing with streaming the output; the
			// collector times its DFS appends so the two phases can be split.
			loopStart := time.Now()
			var localGroups int64
			for g.ok {
				vals := &groupValues{g: g, key: g.cur.key, head: true}
				localGroups++
				if err := reducer.Reduce(g.cur.key, vals, col); err != nil {
					return fmt.Errorf("reduce partition %d: %w", p, err)
				}
				if err := vals.drain(); err != nil {
					return fmt.Errorf("reduce partition %d: %w", p, err)
				}
			}
			if err := col.close(); err != nil {
				return fmt.Errorf("reduce partition %d: %w", p, err)
			}
			if tsp != nil {
				loopDur := time.Since(loopStart)
				wRecs, wBytes := col.written()
				tsp.AddPhase(trace.KindReduce, "reduce", loopDur-col.writeDur, g.pairs, g.bytes)
				tsp.AddPhase(trace.KindWrite, "write", col.writeDur, wRecs, wBytes)
				tsp.SetIO(wRecs, wBytes)
			}
			committed = true
			atomic.AddInt64(&groups, localGroups)
			atomic.AddInt64(&outRecords, col.records)
			atomic.AddInt64(&outBytes, col.bytes)
			atomic.AddInt64(&spilledRecs, localSpilledRecs)
			atomic.AddInt64(&spilledBytes, localSpilledBytes)
			atomic.AddInt64(&mergePasses, localPasses)
			perGroups[p] = localGroups
			perBytes[p] = g.bytes
			for n := g.pairs; ; {
				cur := atomic.LoadInt64(&maxPartition)
				if n <= cur || atomic.CompareAndSwapInt64(&maxPartition, cur, n) {
					break
				}
			}
			return nil
		})
	}); err != nil {
		return fail(err)
	}
	m.TaskRetries += reduceRetries
	m.ReduceTasks = nReducers
	m.ReduceTaskStats = summarizeTasks(reduceDurs)
	m.ReduceKeySkew = skewOf(perGroups)
	m.ReduceByteSkew = skewOf(perBytes)
	m.ReduceInputGroups = groups
	m.ReduceOutputRecords = outRecords
	m.ReduceOutputBytes = outBytes
	m.SpilledRecords += spilledRecs
	m.SpilledBytes += spilledBytes
	m.MergePasses = mergePasses
	m.MaxReducePartitionRecords = maxPartition
	if m.MapOutputRecords > 0 && nReducers > 0 {
		m.ReduceSkew = float64(maxPartition) * float64(nReducers) / float64(m.MapOutputRecords)
	}

	// ---- Commit: splice part files into the job outputs ----
	csp := jsp.Child(trace.KindCommit, "commit", len(splits)+nReducers)
	err := e.commitParts(job, nReducers)
	csp.Finish()
	if err != nil {
		return fail(err)
	}
	jsp.SetIO(m.ReduceOutputRecords, m.ReduceOutputBytes)
	m.Duration = time.Since(start)
	return m, nil
}

// commitParts assembles each output from its per-task part files in task
// order — a pure block splice (hdfs.Concat), since every record was already
// written (and paid for) by the task that produced it.
func (e *Engine) commitParts(job *Job, nParts int) error {
	for _, base := range append([]string{job.Output}, job.ExtraOutputs...) {
		names := make([]string, nParts)
		for i := range names {
			names[i] = partName(base, i)
		}
		if err := e.dfs.Concat(base, names); err != nil {
			return fmt.Errorf("committing output %s: %w", base, err)
		}
	}
	return nil
}

func (e *Engine) runMapOnly(job *Job, jsp *trace.Span, splits []split, m JobMetrics, start time.Time,
	nParts *int, fail func(error) (JobMetrics, error)) (JobMetrics, error) {
	*nParts = len(splits)
	var retries int64
	var outRecords, outBytes int64
	mapDurs := make([]time.Duration, len(splits))
	if err := e.parallel(e.cfg.MapParallelism, len(splits), func(i int) error {
		return e.runTask(job.Name, "map", i, &retries, mapDurs, func(attempt int) error {
			tsp := jsp.ChildTask("map", i, i, e.taskNode(i), attempt)
			defer tsp.Finish()
			traced := tsp != nil
			col, err := e.openParts(job, i)
			if err != nil {
				return err
			}
			col.timed = traced
			committed := false
			defer func() {
				if !committed {
					col.abort()
				}
			}()
			r, err := e.dfs.OpenRange(splits[i].input, splits[i].off, splits[i].n)
			if err != nil {
				return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
			}
			// As in the shuffle path: the fused loop's scan and map sides are
			// timed separately when traced, and the collector's append time
			// is carved out of the map phase as a DFS-write phase.
			var scanDur, mapDur time.Duration
			var scanBytes int64
			for {
				var rec []byte
				var err error
				if traced {
					t0 := time.Now()
					rec, err = r.Next()
					scanDur += time.Since(t0)
				} else {
					rec, err = r.Next()
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
				}
				if traced {
					scanBytes += int64(len(rec))
					t0 := time.Now()
					err = job.MapOnly.MapRecord(splits[i].input, rec, col)
					mapDur += time.Since(t0)
				} else {
					err = job.MapOnly.MapRecord(splits[i].input, rec, col)
				}
				if err != nil {
					return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
				}
			}
			if err := col.close(); err != nil {
				return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
			}
			if traced {
				wRecs, wBytes := col.written()
				tsp.AddPhase(trace.KindScan, "scan", scanDur, int64(splits[i].n), scanBytes)
				tsp.AddPhase(trace.KindMap, "map", mapDur-col.writeDur, col.records, col.bytes)
				tsp.AddPhase(trace.KindWrite, "write", col.writeDur, wRecs, wBytes)
				tsp.SetIO(wRecs, wBytes)
			}
			committed = true
			atomic.AddInt64(&outRecords, col.records)
			atomic.AddInt64(&outBytes, col.bytes)
			return nil
		})
	}); err != nil {
		return fail(err)
	}
	m.TaskRetries += retries
	m.MapTaskStats = summarizeTasks(mapDurs)
	m.ReduceOutputRecords = outRecords
	m.ReduceOutputBytes = outBytes
	csp := jsp.Child(trace.KindCommit, "commit", len(splits))
	err := e.commitParts(job, len(splits))
	csp.Finish()
	if err != nil {
		return fail(err)
	}
	jsp.SetIO(outRecords, outBytes)
	m.Duration = time.Since(start)
	return m, nil
}

// parallel runs fn(0..n-1) on at most width goroutines, returning the first
// error encountered (all started tasks run to completion).
func (e *Engine) parallel(width, n int, fn func(int) error) error {
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		next  int64 = -1
		errMu sync.Mutex
		first error
	)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Stage is a set of jobs with no mutual dependencies; the workflow runner
// executes a stage's jobs concurrently (Pig submits independent MR jobs in
// parallel; Hive runs them serially — engines model that by using
// one-job stages).
type Stage []*Job

// RunWorkflow executes stages sequentially, jobs within a stage
// concurrently. On the first failed job the workflow stops after the
// current stage completes, deletes the outputs of every job that had
// succeeded (so repeated capacity-limited runs do not leak simulated
// disk), and reports the failure. Metrics for every executed job are
// returned in submission order.
func (e *Engine) RunWorkflow(stages []Stage) (WorkflowMetrics, error) {
	return e.RunWorkflowNamed("workflow", stages)
}

// RunWorkflowNamed is RunWorkflow with an explicit workflow name: with a
// Tracer configured the whole run becomes one workflow span (named after the
// engine or query that built the plan) with every job span nested under it,
// in submission order.
func (e *Engine) RunWorkflowNamed(name string, stages []Stage) (WorkflowMetrics, error) {
	wsp := e.cfg.Tracer.Start(trace.KindWorkflow, name)
	defer wsp.Finish()
	start := time.Now()
	var wf WorkflowMetrics
	for _, st := range stages {
		wf.Cycles += len(st)
	}
	var done []*Job // successfully completed jobs, for failure cleanup
	for _, st := range stages {
		jms := make([]JobMetrics, len(st))
		errs := make([]error, len(st))
		order := len(wf.Jobs) // submission-order base for this stage's job spans
		var wg sync.WaitGroup
		for i, job := range st {
			wg.Add(1)
			go func(i int, job *Job) {
				defer wg.Done()
				jsp := wsp.Child(trace.KindJob, job.Name, order+i)
				defer jsp.Finish()
				jms[i], errs[i] = e.run(job, jsp)
			}(i, job)
		}
		wg.Wait()
		wf.Jobs = append(wf.Jobs, jms...)
		for i := range st {
			if errs[i] == nil {
				done = append(done, st[i])
			}
		}
		for i, err := range errs {
			if err != nil {
				wf.Failed = true
				wf.FailedJob = st[i].Name
				wf.Err = err.Error()
				wf.Duration = time.Since(start)
				for _, job := range done {
					e.dfs.DeleteIfExists(job.Output)
					for _, eo := range job.ExtraOutputs {
						e.dfs.DeleteIfExists(eo)
					}
				}
				return wf, err
			}
		}
	}
	wf.Duration = time.Since(start)
	return wf, nil
}

// CountScansOf reports how many jobs in the plan scan the named file — the
// paper's "number of full scans of the triple relation" metric (Figure 3).
func CountScansOf(stages []Stage, name string) int {
	n := 0
	for _, st := range stages {
		for _, job := range st {
			for _, in := range job.Inputs {
				if in == name {
					n++
					break
				}
			}
		}
	}
	return n
}

// ErrIsDiskFull reports whether err is rooted in DFS capacity exhaustion.
func ErrIsDiskFull(err error) bool { return errors.Is(err, hdfs.ErrDiskFull) }
