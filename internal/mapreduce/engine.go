package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ntga/internal/core/hash64"
	"ntga/internal/hdfs"
	"ntga/internal/trace"
)

// EngineConfig tunes the execution engine.
type EngineConfig struct {
	// MapParallelism is the number of concurrent map tasks; 0 defaults to
	// GOMAXPROCS.
	MapParallelism int
	// ReduceParallelism is the number of concurrent reduce tasks; 0
	// defaults to GOMAXPROCS.
	ReduceParallelism int
	// DefaultReducers is the reduce partition count used when a job does
	// not set NumReducers; 0 defaults to 8.
	DefaultReducers int
	// SplitRecords is the number of records per map split; 0 defaults to
	// 8192. Smaller splits increase map-task parallelism.
	SplitRecords int
	// SortBufferBytes bounds each map task's in-memory output buffer
	// (Hadoop's io.sort.mb): when the buffered key+value bytes reach the
	// budget the task sorts the buffer, applies the job's combiner, and
	// spills a run to node-local disk. 0 means unbounded — no spilling,
	// the pre-refactor in-memory behavior.
	SortBufferBytes int64
	// MergeFactor bounds how many on-disk runs one external merge reads at
	// once (Hadoop's io.sort.factor); more runs force intermediate merge
	// passes. In-memory segments never count against it. 0 defaults to 10.
	MergeFactor int
	// TaskMaxAttempts is the per-task retry budget (Hadoop's
	// mapreduce.map.maxattempts); 0 defaults to 1 (no retries).
	TaskMaxAttempts int
	// TaskFailureRate injects deterministic pseudo-random task failures
	// with the given probability (0 disables), for fault-tolerance
	// testing. A failed attempt is retried until TaskMaxAttempts is
	// exhausted, at which point the job fails — mirroring Hadoop's task
	// retry semantics. This legacy mode fires *before* the attempt body
	// runs; use Faults for failures that interrupt an attempt mid-phase.
	TaskFailureRate float64
	// TaskFailureSeed varies which (job, task, attempt) triples fail.
	TaskFailureSeed int64
	// Faults, when non-nil, is the seeded chaos schedule: mid-phase
	// failures inside scan/map/sort/spill/merge/reduce/write, simulated
	// node deaths (losing local spill disks and every attempt pinned to
	// the node), and straggler delays. See FaultPlan.
	Faults *FaultPlan
	// Speculation enables backup attempts for straggling tasks: when a
	// task has run longer than SpeculationRatio × the median completed
	// duration of its phase (and at least SpeculationMinRuntime), one
	// backup attempt launches; the first attempt to commit wins and the
	// loser is killed and its temporaries reclaimed.
	Speculation bool
	// SpeculationRatio is the straggler threshold multiplier; 0 defaults
	// to 2.0.
	SpeculationRatio float64
	// SpeculationMinRuntime is the minimum elapsed time before a task can
	// be speculated; 0 defaults to 5ms.
	SpeculationMinRuntime time.Duration
	// Tracer, when non-nil, records every workflow/job/task/phase as a
	// typed span tree (see internal/trace): per-task scan/map/sort/spill/
	// merge/reduce/DFS-write intervals with record and byte counts,
	// exportable as a Chrome trace_event profile or a plain-text timeline.
	// A nil Tracer is a zero-overhead no-op — the engine skips all
	// fine-grained timing.
	Tracer *trace.Tracer
	// Slots, when non-nil, supersedes MapParallelism/ReduceParallelism:
	// instead of fixed per-run worker pools, every task attempt leases one
	// slot of its kind ("map" or "reduce") from this shared pool for the
	// task's whole lifetime, so concurrent workflows over one DFS divide
	// cluster capacity under the pool's policy. See SlotPool.
	Slots SlotPool
	// Cluster selects the execution substrate. Nil defaults to the
	// in-process LocalCluster (goroutine pools over the engine's DFS,
	// honoring MapParallelism/ReduceParallelism/Slots). A JobRunner cluster
	// takes over whole jobs instead — see internal/cluster for the
	// master/worker RPC implementation.
	Cluster Cluster
}

// validate rejects configurations that would silently misbehave: an
// external merge needs at least two-way fan-in to make progress, a
// negative sort budget would spill on every emitted pair, and negative
// parallelism or attempt budgets would deadlock the worker pools or make
// every task fail before its first attempt. Called (on the
// defaults-applied config) at Run time so the error carries context —
// zeros select defaults, so only genuinely negative values reach here.
func (c EngineConfig) validate() error {
	if c.MapParallelism < 0 {
		return fmt.Errorf("mapreduce: EngineConfig.MapParallelism must be >= 0 (got %d); 0 selects the default", c.MapParallelism)
	}
	if c.ReduceParallelism < 0 {
		return fmt.Errorf("mapreduce: EngineConfig.ReduceParallelism must be >= 0 (got %d); 0 selects the default", c.ReduceParallelism)
	}
	if c.TaskMaxAttempts < 0 {
		return fmt.Errorf("mapreduce: EngineConfig.TaskMaxAttempts must be >= 0 (got %d); 0 selects the default", c.TaskMaxAttempts)
	}
	if c.MergeFactor < 2 {
		return fmt.Errorf("mapreduce: EngineConfig.MergeFactor must be >= 2 (got %d); 0 selects the default", c.MergeFactor)
	}
	if c.SortBufferBytes < 0 {
		return fmt.Errorf("mapreduce: EngineConfig.SortBufferBytes must be >= 0 (got %d); 0 disables spilling", c.SortBufferBytes)
	}
	if c.DefaultReducers < 0 {
		return fmt.Errorf("mapreduce: EngineConfig.DefaultReducers must be >= 0 (got %d); 0 selects the default", c.DefaultReducers)
	}
	if c.SplitRecords < 0 {
		return fmt.Errorf("mapreduce: EngineConfig.SplitRecords must be >= 0 (got %d); 0 selects the default", c.SplitRecords)
	}
	return nil
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.MapParallelism == 0 {
		c.MapParallelism = runtime.GOMAXPROCS(0)
	}
	if c.ReduceParallelism == 0 {
		c.ReduceParallelism = runtime.GOMAXPROCS(0)
	}
	if c.DefaultReducers == 0 {
		c.DefaultReducers = 8
	}
	if c.SplitRecords == 0 {
		c.SplitRecords = 8192
	}
	if c.MergeFactor == 0 {
		c.MergeFactor = 10
	}
	if c.TaskMaxAttempts == 0 {
		c.TaskMaxAttempts = 1
	}
	if c.SpeculationRatio == 0 {
		c.SpeculationRatio = 2.0
	}
	if c.SpeculationMinRuntime == 0 {
		c.SpeculationMinRuntime = 5 * time.Millisecond
	}
	return c
}

// Engine executes jobs and workflows against a simulated DFS.
type Engine struct {
	dfs     *hdfs.DFS
	cfg     EngineConfig
	ctx     context.Context
	cluster Cluster
}

// NewEngine returns an engine over the given DFS.
func NewEngine(dfs *hdfs.DFS, cfg EngineConfig) *Engine {
	cfg = cfg.withDefaults()
	cl := cfg.Cluster
	if cl == nil {
		cl = NewLocalCluster(dfs, cfg.MapParallelism, cfg.ReduceParallelism, cfg.Slots)
	}
	return &Engine{dfs: dfs, cfg: cfg, ctx: context.Background(), cluster: cl}
}

// DFS returns the engine's file system.
func (e *Engine) DFS() *hdfs.DFS { return e.dfs }

// WithContext returns a shallow copy of the engine whose runs observe ctx:
// when ctx is cancelled or its deadline passes, every in-flight task attempt
// stops at its next checkpoint, no further attempts or stages launch, slot
// leases are released, and the failing run sweeps its attempt-scoped
// temporaries exactly as any other failed job would — a cancelled query
// leaks zero bytes. The original engine is unchanged, so one resident
// engine can serve many queries each under its own deadline.
func (e *Engine) WithContext(ctx context.Context) *Engine {
	if ctx == nil {
		ctx = context.Background()
	}
	e2 := *e
	e2.ctx = ctx
	return &e2
}

// ctxErr reports the engine context's cancellation cause, or nil while the
// context is live. Engines constructed without WithContext never cancel.
func (e *Engine) ctxErr() error {
	select {
	case <-e.ctx.Done():
		return context.Cause(e.ctx)
	default:
		return nil
	}
}

// wfSeq numbers workflows process-wide so every run — even two runs of the
// same engine over the same DFS — gets a private temp namespace.
var wfSeq atomic.Int64

// newWorkflowID mints the temp-namespace token for one workflow (or one
// standalone job run).
func newWorkflowID() string {
	return fmt.Sprintf("wf-%06d", wfSeq.Add(1))
}

// partName is the per-task part file a reduce (or map-only) task's winning
// attempt promotes its output to; parts are spliced into the job output
// via hdfs.Concat once every task has committed.
func partName(base string, i int) string {
	return fmt.Sprintf("%s._part-%05d", base, i)
}

// wfTmpRoot is the temp namespace of one whole workflow; a failed or
// cancelled workflow may sweep the entire prefix.
func wfTmpRoot(wf string) string {
	return "_tmp/" + wf + "/"
}

// tmpRoot is the attempt-scoped temporary namespace of one job within one
// workflow; a failed job sweeps the whole prefix so no attempt can leak
// partial output. Scoping by workflow ID (not just job name) is what lets
// concurrent workflows share a DFS: engines reuse fixed job names
// ("ntga-group", "hive-join0", ...), so two in-flight queries would
// otherwise race on the same attempt paths.
func tmpRoot(wf, job string) string {
	return fmt.Sprintf("_tmp/%s/%s/", wf, job)
}

// tmpPartName is the attempt-private name a task attempt streams its
// output into. Keeping every attempt's bytes under its own name is what
// turns at-least-once execution into exactly-once output: rival attempts
// never touch each other's files, the winner's are promoted atomically by
// rename, and losers' are deleted wholesale.
func tmpPartName(wf, job, kind string, task, attempt int, base string, part int) string {
	return fmt.Sprintf("%s%s-%05d/%d/%s._part-%05d", tmpRoot(wf, job), kind, task, attempt, base, part)
}

// partOut is one output base's attempt-temp part file with the final name
// the commit step promotes it to.
type partOut struct {
	w          *hdfs.Writer
	tmp, final string
}

// streamCollector streams one task attempt's output records straight into
// attempt-private DFS part files as they are collected, so a job that
// overruns cluster capacity fails mid-reduce (hdfs.ErrDiskFull while
// records are produced), not at a commit step afterwards. commit renames
// the temps to their final part names; abort deletes them.
type streamCollector struct {
	files   []partOut // files[0] is the main output
	extras  map[string]*hdfs.Writer
	records int64
	bytes   int64
	// timed accumulates the wall-clock spent inside DFS appends so a traced
	// task can split its fused loop into reduce-vs-write phases; off (the
	// default) when no tracer is configured.
	timed    bool
	writeDur time.Duration
}

// openParts creates the attempt-private part files for task index i of the
// job: one for the main output and one per declared extra output.
func (e *Engine) openParts(job *Job, ac *attemptCtx, i int) (*streamCollector, error) {
	col := &streamCollector{}
	for _, base := range append([]string{job.Output}, job.ExtraOutputs...) {
		tmp := tmpPartName(ac.js.wf, job.Name, ac.kind, ac.task, ac.attempt, base, i)
		w, err := e.dfs.Create(tmp)
		if err != nil {
			col.abort(ac.js)
			return nil, fmt.Errorf("creating output %s: %w", base, err)
		}
		col.files = append(col.files, partOut{w: w, tmp: tmp, final: partName(base, i)})
		if base != job.Output {
			if col.extras == nil {
				col.extras = make(map[string]*hdfs.Writer, len(job.ExtraOutputs))
			}
			col.extras[base] = w
		}
	}
	return col, nil
}

func (c *streamCollector) Collect(record []byte) error {
	var t0 time.Time
	if c.timed {
		t0 = time.Now()
	}
	err := c.files[0].w.Append(record)
	if c.timed {
		c.writeDur += time.Since(t0)
	}
	if err != nil {
		return err
	}
	c.records++
	c.bytes += int64(len(record))
	return nil
}

func (c *streamCollector) CollectTo(output string, record []byte) error {
	w, ok := c.extras[output]
	if !ok {
		return fmt.Errorf("mapreduce: CollectTo(%q): not a declared extra output", output)
	}
	var t0 time.Time
	if c.timed {
		t0 = time.Now()
	}
	err := w.Append(record)
	if c.timed {
		c.writeDur += time.Since(t0)
	}
	if err != nil {
		return err
	}
	c.records++
	c.bytes += int64(len(record))
	return nil
}

// written sums the records and bytes actually appended through the part
// writers (hdfs-attributed, so a failed Append that partially streamed is
// still accounted to the task's write span).
func (c *streamCollector) written() (records, bytes int64) {
	var r, b int64
	for _, f := range c.files {
		wr, wb := f.w.Written()
		r += wr
		b += wb
	}
	return r, b
}

// close seals every part file; on error the caller should abort.
func (c *streamCollector) close() error {
	for _, f := range c.files {
		if err := f.w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// commit atomically promotes the attempt's temp part files to their final
// names. Only the attempt that won the task's claim may call it.
func (c *streamCollector) commit(d *hdfs.DFS) error {
	for _, f := range c.files {
		if err := d.Rename(f.tmp, f.final); err != nil {
			return fmt.Errorf("committing %s: %w", f.final, err)
		}
	}
	return nil
}

// abort discards every attempt-private part file written by this task
// attempt, accounting the reclaimed bytes to the job's recovery counters.
func (c *streamCollector) abort(js *jobRunState) {
	var reclaimed int64
	for _, f := range c.files {
		if f.w != nil {
			_, b := f.w.Written()
			reclaimed += b
			f.w.Abort()
		}
	}
	js.reclaim(reclaimed)
}

// split is one map task's input assignment: a record range of one file,
// read through a streaming hdfs.FileReader so only scanned bytes are
// charged (and a retried task re-charges its re-read).
type split struct {
	input string
	off   int
	n     int
}

// errInjectedFailure marks a fault-injection task failure.
var errInjectedFailure = errors.New("mapreduce: injected task failure")

// shouldInjectFailure decides deterministically whether a given task
// attempt fails under the configured failure rate.
func (e *Engine) shouldInjectFailure(job string, kind string, task, attempt int) bool {
	if e.cfg.TaskFailureRate <= 0 {
		return false
	}
	return float64(hash64.Mod(10000, "%s|%s|%d|%d|%d",
		job, kind, task, attempt, e.cfg.TaskFailureSeed)) < e.cfg.TaskFailureRate*10000
}

// Run executes one job to completion. On failure the job's output files
// (including any committed part files) are removed and the returned
// metrics carry the error. With a Tracer configured the job becomes a root
// span (jobs executed via RunWorkflow nest under the workflow span
// instead).
func (e *Engine) Run(job *Job) (JobMetrics, error) {
	jsp := e.cfg.Tracer.Start(trace.KindJob, job.Name)
	defer jsp.Finish()
	return e.run(job, jsp, newWorkflowID())
}

// run is the body of Run with an explicit (possibly nil) parent job span
// and the workflow ID scoping this job's temp namespace.
func (e *Engine) run(job *Job, jsp *trace.Span, wf string) (JobMetrics, error) {
	start := time.Now()
	m := JobMetrics{Job: job.Name, MapOnly: job.mapOnly()}
	js := newJobRunState(e, wf, job.Name)
	nParts := 0                 // part files per output base once tasks are planned
	var emitters []*taskEmitter // committed map winners (set once the map phase plans)
	fail := func(err error) (JobMetrics, error) {
		m.Failed = true
		m.Err = err.Error()
		for _, base := range append([]string{job.Output}, job.ExtraOutputs...) {
			e.dfs.DeleteIfExists(base)
			for i := 0; i < nParts; i++ {
				e.dfs.DeleteIfExists(partName(base, i))
			}
		}
		// A dead job's committed map outputs are garbage too: the spill runs
		// its winning map attempts parked on local disk will never be merged,
		// so tearing them down is reclamation (failed attempts already
		// accounted their own spills; emitters holds only claim winners).
		for _, te := range emitters {
			if te != nil {
				js.reclaim(te.spilledBytes)
			}
		}
		e.sweepTemps(wf, job.Name, js)
		js.fold(&m)
		m.Duration = time.Since(start)
		return m, fmt.Errorf("job %s: %w", job.Name, err)
	}
	if err := e.cfg.validate(); err != nil {
		return fail(err)
	}
	if err := job.validate(); err != nil {
		return fail(err)
	}
	if err := e.ctxErr(); err != nil {
		return fail(err)
	}

	// A JobRunner cluster takes the validated job whole: split planning,
	// task scheduling, shuffle movement, and part commits happen on the
	// other side of the seam, which also owns output cleanup on failure.
	if jr, ok := e.cluster.(JobRunner); ok {
		rm, err := jr.RunJob(e.ctx, jsp, job, e.cfg)
		rm.Job = job.Name
		rm.MapOnly = job.mapOnly()
		rm.Duration = time.Since(start)
		if err != nil {
			rm.Failed = true
			rm.Err = err.Error()
			return rm, fmt.Errorf("job %s: %w", job.Name, err)
		}
		jsp.SetIO(rm.ReduceOutputRecords, rm.ReduceOutputBytes)
		return rm, nil
	}

	// Plan map splits from file metadata; the records themselves are
	// streamed by the map tasks.
	var splits []split
	for _, in := range job.Inputs {
		n, err := e.dfs.RecordCount(in)
		if err != nil {
			return fail(fmt.Errorf("reading input: %w", err))
		}
		size, err := e.dfs.FileSize(in)
		if err != nil {
			return fail(fmt.Errorf("sizing input: %w", err))
		}
		m.MapInputBytes += size
		m.MapInputRecords += int64(n)
		if job.WholeFileSplits {
			// Bucket-aligned jobs: task i scans exactly Inputs[i] (empty
			// buckets included), so task index == bucket index.
			splits = append(splits, split{input: in, off: 0, n: n})
			continue
		}
		for off := 0; off < n; off += e.cfg.SplitRecords {
			cnt := e.cfg.SplitRecords
			if off+cnt > n {
				cnt = n - off
			}
			splits = append(splits, split{input: in, off: off, n: cnt})
		}
		if n == 0 {
			splits = append(splits, split{input: in}) // keep empty inputs visible
		}
	}
	m.MapTasks = len(splits)

	if job.mapOnly() {
		return e.runMapOnly(job, jsp, splits, m, start, js, &nParts, fail)
	}

	nReducers := job.NumReducers
	if nReducers == 0 {
		nReducers = e.cfg.DefaultReducers
	}
	partitioner := job.Partitioner
	if partitioner == nil {
		partitioner = HashPartitioner
	}

	// ---- Map phase ----
	// Each task streams its split through a spilling emitter; sealed
	// emitters hold the sorted in-memory segments and spill runs the
	// reduce phase merges. All spill runs are released when Run returns.
	emitters = make([]*taskEmitter, len(splits))
	defer func() {
		for _, te := range emitters {
			if te != nil {
				te.discard()
			}
		}
	}()
	mapDurs := make([]time.Duration, len(splits))
	if err := e.dispatch("map", len(splits), func(i int) error {
		return e.runTask(js, "map", i, mapDurs, nil, func(ac *attemptCtx) error {
			te, err := e.mapAttempt(job, jsp, splits[i], partitioner, nReducers, ac)
			if err != nil {
				return err
			}
			if !ac.claim() {
				js.reclaim(te.spilledBytes)
				te.discard()
				return errLostRace
			}
			emitters[i] = te
			return nil
		})
	}); err != nil {
		return fail(err)
	}
	m.MapTaskStats = summarizeTasks(mapDurs)
	for _, te := range emitters {
		m.MapOutputRecords += te.records
		m.MapOutputBytes += te.bytes
		m.SpilledRecords += te.spilledRecords
		m.SpilledBytes += te.spilledBytes
		if te.peakBuffered > m.PeakSortBufferBytes {
			m.PeakSortBufferBytes = te.peakBuffered
		}
	}

	// ---- Shuffle-merge + reduce phase ----
	// Each reduce task merges its partition's sorted segments (in-memory
	// and spilled) into one stream, groups by key, and feeds the reducer,
	// streaming output records into its attempt-private part files.
	reducer := job.StreamReducer
	if reducer == nil {
		reducer = adaptedReducer{job.Reducer}
	}
	nParts = nReducers
	var groups, maxPartition int64
	var outRecords, outBytes int64
	var spilledRecs, spilledBytes, mergePasses int64
	reduceDurs := make([]time.Duration, nReducers)
	perGroups := make([]int64, nReducers)
	perBytes := make([]int64, nReducers)

	// Map-output recovery: a node death loses the spill runs pinned to it.
	// A reduce attempt that trips over a lost run fails with a wrapped
	// hdfs.ErrNodeLost; before its retry, recoverMaps re-executes every map
	// task whose output died, on a live node, with fresh attempt numbers —
	// Hadoop's "map output lost, re-running map task" path. emMu guards the
	// emitters slice against reduce attempts reading it concurrently.
	var emMu sync.RWMutex
	recNext := make([]int, len(splits))
	for i := range recNext {
		recNext[i] = e.cfg.TaskMaxAttempts
	}
	recoverMaps := func() error {
		emMu.Lock()
		defer emMu.Unlock()
		for i, te := range emitters {
			if te == nil || !te.lost() {
				continue
			}
			te.discard()
			var lastErr error
			recovered := false
			for r := 0; r < e.cfg.TaskMaxAttempts; r++ {
				a := recNext[i]
				recNext[i]++
				atomic.AddInt64(&js.taskRetries, 1)
				if e.shouldInjectFailure(job.Name, "map", i, a) {
					lastErr = fmt.Errorf("%w (map task %d attempt %d)", errInjectedFailure, i, a)
					continue
				}
				ac := &attemptCtx{
					e: e, js: js, ctl: newTaskCtl(), kind: "map", task: i,
					attempt: a, node: e.taskNode(i, a), killed: make(chan struct{}),
				}
				nte, err := e.mapAttempt(job, jsp, splits[i], partitioner, nReducers, ac)
				if err != nil {
					lastErr = err
					continue
				}
				emitters[i] = nte
				atomic.AddInt64(&js.mapRecoveries, 1)
				recovered = true
				break
			}
			if !recovered {
				return fmt.Errorf("recovering lost map output for task %d: %w", i, lastErr)
			}
		}
		return nil
	}

	if err := e.dispatch("reduce", nReducers, func(p int) error {
		return e.runTask(js, "reduce", p, reduceDurs, recoverMaps, func(ac *attemptCtx) error {
			tsp := jsp.ChildTask("reduce", len(splits)+p, p, ac.node, ac.attempt)
			defer tsp.Finish()
			if err := ac.checkpoint("reduce"); err != nil {
				return err
			}
			var sources []kvSource
			var runSrcs []*runSource
			var lostErr error
			emMu.RLock()
			for _, te := range emitters {
				if len(te.parts[p]) > 0 {
					sources = append(sources, &memSource{kvs: te.parts[p]})
				}
				for _, run := range te.runs {
					if seg := run.segs[p]; seg.records > 0 {
						if run.spill.Lost() {
							lostErr = fmt.Errorf("reduce partition %d: map output run lost: %w", p, hdfs.ErrNodeLost)
							break
						}
						runSrcs = append(runSrcs, newRunSource(run.spill, seg))
					}
				}
				if lostErr != nil {
					break
				}
			}
			emMu.RUnlock()
			if lostErr != nil {
				return lostErr
			}
			// Intermediate merges are attempt-local: their temporary runs
			// are released when this attempt finishes, success or not.
			var localPasses, localSpilledRecs, localSpilledBytes int64
			var temps []*spillRun
			defer func() {
				for _, r := range temps {
					r.release()
				}
			}()
			if len(runSrcs) > e.cfg.MergeFactor {
				var err error
				runSrcs, temps, err = e.mergeRuns(runSrcs, e.cfg.MergeFactor, tsp, ac,
					&localPasses, &localSpilledRecs, &localSpilledBytes)
				if err != nil {
					return fmt.Errorf("reduce partition %d merge: %w", p, err)
				}
			}
			if len(runSrcs) > 0 {
				localPasses++ // the final merge reads at least one on-disk run
			}
			for _, rs := range runSrcs {
				sources = append(sources, rs)
			}
			mi, err := newMergeIter(sources)
			if err != nil {
				return fmt.Errorf("reduce partition %d: %w", p, err)
			}
			col, err := e.openParts(job, ac, p)
			if err != nil {
				return err
			}
			col.timed = tsp != nil
			committed := false
			defer func() {
				if !committed {
					col.abort(js)
				}
			}()
			g, err := newGroupIter(mi)
			if err != nil {
				return fmt.Errorf("reduce partition %d: %w", p, err)
			}
			// The reduce loop fuses reducing with streaming the output; the
			// collector times its DFS appends so the two phases can be split.
			loopStart := time.Now()
			var localGroups int64
			for g.ok {
				if localGroups%64 == 0 {
					if err := ac.checkpoint("reduce"); err != nil {
						return err
					}
				}
				vals := &groupValues{g: g, key: g.cur.key, head: true}
				localGroups++
				if err := reducer.Reduce(g.cur.key, vals, col); err != nil {
					return fmt.Errorf("reduce partition %d: %w", p, err)
				}
				if err := vals.drain(); err != nil {
					return fmt.Errorf("reduce partition %d: %w", p, err)
				}
			}
			if err := ac.checkpoint("write"); err != nil {
				return err
			}
			if err := col.close(); err != nil {
				return fmt.Errorf("reduce partition %d: %w", p, err)
			}
			if !ac.claim() {
				col.abort(js)
				committed = true // abort already done; skip the deferred one
				return errLostRace
			}
			if err := col.commit(e.dfs); err != nil {
				return fmt.Errorf("reduce partition %d: %w", p, err)
			}
			if tsp != nil {
				loopDur := time.Since(loopStart)
				wRecs, wBytes := col.written()
				tsp.AddPhase(trace.KindReduce, "reduce", loopDur-col.writeDur, g.pairs, g.bytes)
				tsp.AddPhase(trace.KindWrite, "write", col.writeDur, wRecs, wBytes)
				tsp.SetIO(wRecs, wBytes)
			}
			committed = true
			atomic.AddInt64(&groups, localGroups)
			atomic.AddInt64(&outRecords, col.records)
			atomic.AddInt64(&outBytes, col.bytes)
			atomic.AddInt64(&spilledRecs, localSpilledRecs)
			atomic.AddInt64(&spilledBytes, localSpilledBytes)
			atomic.AddInt64(&mergePasses, localPasses)
			perGroups[p] = localGroups
			perBytes[p] = g.bytes
			for n := g.pairs; ; {
				cur := atomic.LoadInt64(&maxPartition)
				if n <= cur || atomic.CompareAndSwapInt64(&maxPartition, cur, n) {
					break
				}
			}
			return nil
		})
	}); err != nil {
		return fail(err)
	}
	m.ReduceTasks = nReducers
	m.ReduceTaskStats = summarizeTasks(reduceDurs)
	m.ReduceKeySkew = skewOf(perGroups)
	m.ReduceByteSkew = skewOf(perBytes)
	m.ReduceInputGroups = groups
	m.ReduceOutputRecords = outRecords
	m.ReduceOutputBytes = outBytes
	m.SpilledRecords += spilledRecs
	m.SpilledBytes += spilledBytes
	m.MergePasses = mergePasses
	m.MaxReducePartitionRecords = maxPartition
	if m.MapOutputRecords > 0 && nReducers > 0 {
		m.ReduceSkew = float64(maxPartition) * float64(nReducers) / float64(m.MapOutputRecords)
	}

	// ---- Commit: splice part files into the job outputs ----
	csp := jsp.Child(trace.KindCommit, "commit", len(splits)+nReducers)
	err := e.commitParts(job, nReducers)
	csp.Finish()
	if err != nil {
		return fail(err)
	}
	js.fold(&m)
	jsp.SetIO(m.ReduceOutputRecords, m.ReduceOutputBytes)
	m.Duration = time.Since(start)
	return m, nil
}

// mapAttempt is the body of one map task attempt: stream the split through
// a spilling emitter pinned to the attempt's node, with fault checkpoints
// threaded through every phase (scan, the fused map loop, each spill, and
// the final sort). On error the attempt's spill runs are discarded before
// returning, so a retry starts clean. The caller publishes the returned
// emitter only after winning the task's commit claim.
func (e *Engine) mapAttempt(job *Job, jsp *trace.Span, sp split, partitioner Partitioner, nReducers int, ac *attemptCtx) (te *taskEmitter, err error) {
	tsp := jsp.ChildTask("map", ac.task, ac.task, ac.node, ac.attempt)
	defer tsp.Finish()
	traced := tsp != nil
	te = newTaskEmitter(e.dfs, partitioner, nReducers, job.Combiner, e.cfg.SortBufferBytes, ac.node, ac.checkpoint)
	te.traced = traced
	defer func() {
		if err != nil {
			ac.js.reclaim(te.spilledBytes)
			te.discard()
		}
	}()
	if err := ac.checkpoint("scan"); err != nil {
		return te, err
	}
	r, err := e.dfs.OpenRange(sp.input, sp.off, sp.n)
	if err != nil {
		return te, fmt.Errorf("map task %d (%s): %w", ac.task, sp.input, err)
	}
	// The loop fuses scanning and mapping; when traced, each side's time is
	// accumulated separately (plus the input bytes for the scan span).
	var scanDur, mapDur time.Duration
	var scanBytes int64
	for n := 0; ; n++ {
		if n%64 == 0 {
			if err := ac.checkpoint("map"); err != nil {
				return te, err
			}
		}
		var rec []byte
		var err error
		if traced {
			t0 := time.Now()
			rec, err = r.Next()
			scanDur += time.Since(t0)
		} else {
			rec, err = r.Next()
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return te, fmt.Errorf("map task %d (%s): %w", ac.task, sp.input, err)
		}
		if traced {
			scanBytes += int64(len(rec))
			t0 := time.Now()
			err = job.Mapper.Map(sp.input, rec, te)
			mapDur += time.Since(t0)
		} else {
			err = job.Mapper.Map(sp.input, rec, te)
		}
		if err != nil {
			return te, fmt.Errorf("map task %d (%s): %w", ac.task, sp.input, err)
		}
	}
	if err := ac.checkpoint("sort"); err != nil {
		return te, err
	}
	sortStart := time.Now()
	if err := te.seal(); err != nil {
		return te, fmt.Errorf("map task %d (%s): %w", ac.task, sp.input, err)
	}
	if traced {
		// Spill time happened inside Mapper.Map calls (the emitter spills
		// when the buffer crosses the budget); carve it out of the map
		// phase so the two aren't double-counted.
		var spillDur time.Duration
		for _, s := range te.spills {
			spillDur += s.dur
		}
		tsp.AddPhase(trace.KindScan, "scan", scanDur, int64(sp.n), scanBytes)
		tsp.AddPhase(trace.KindMap, "map", mapDur-spillDur, te.records, te.bytes)
		for _, s := range te.spills {
			tsp.AddPhase(trace.KindSpill, "spill", s.dur, s.records, s.bytes)
		}
		tsp.AddPhase(trace.KindSort, "sort", time.Since(sortStart), te.records, te.bytes)
		tsp.SetIO(te.records, te.bytes)
	}
	return te, nil
}

// sweepTemps deletes every attempt-scoped temporary of a failed job (the
// whole "_tmp/<wf>/<job>/" prefix), accounting the reclaimed bytes. Absent
// files are benign — a rival cleanup may have raced us here (hdfs.ErrNotExist).
func (e *Engine) sweepTemps(wf, job string, js *jobRunState) {
	for _, name := range e.dfs.ListPrefix(tmpRoot(wf, job)) {
		size, err := e.dfs.FileSize(name)
		if err != nil {
			continue // already gone
		}
		if err := e.dfs.Delete(name); err != nil {
			if errors.Is(err, hdfs.ErrNotExist) {
				continue
			}
			panic(err) // Delete only errors with ErrNotExist
		}
		js.reclaim(size)
	}
}

// fold adds the run's fault-tolerance counters into the job metrics. It is
// called on both the success and failure paths, so even a job that exhausted
// its attempt budget reports the retries it burned getting there.
func (js *jobRunState) fold(m *JobMetrics) {
	m.TaskRetries += atomic.LoadInt64(&js.taskRetries)
	m.SpeculativeLaunched += atomic.LoadInt64(&js.specLaunched)
	m.SpeculativeWins += atomic.LoadInt64(&js.specWins)
	m.KilledAttempts += atomic.LoadInt64(&js.killedAttempts)
	m.NodeKills += atomic.LoadInt64(&js.nodeKills)
	m.MapOutputRecoveries += atomic.LoadInt64(&js.mapRecoveries)
	m.TempBytesReclaimed += atomic.LoadInt64(&js.tempBytesReclaimed)
}

// commitParts assembles each output from its per-task part files in task
// order — a pure block splice (hdfs.Concat), since every record was already
// written (and paid for) by the task that produced it.
func (e *Engine) commitParts(job *Job, nParts int) error {
	for _, base := range append([]string{job.Output}, job.ExtraOutputs...) {
		names := make([]string, nParts)
		for i := range names {
			names[i] = partName(base, i)
		}
		if err := e.dfs.Concat(base, names); err != nil {
			return fmt.Errorf("committing output %s: %w", base, err)
		}
	}
	return nil
}

func (e *Engine) runMapOnly(job *Job, jsp *trace.Span, splits []split, m JobMetrics, start time.Time,
	js *jobRunState, nParts *int, fail func(error) (JobMetrics, error)) (JobMetrics, error) {
	*nParts = len(splits)
	var outRecords, outBytes int64
	mapDurs := make([]time.Duration, len(splits))
	if err := e.dispatch("map", len(splits), func(i int) error {
		return e.runTask(js, "map", i, mapDurs, nil, func(ac *attemptCtx) error {
			tsp := jsp.ChildTask("map", i, i, ac.node, ac.attempt)
			defer tsp.Finish()
			traced := tsp != nil
			if err := ac.checkpoint("scan"); err != nil {
				return err
			}
			// Each attempt gets a fresh TaskMapper (retries must never see
			// another attempt's accumulated state) and fetches its side input
			// up front, so a fault during the fetch is an attempt fault.
			var side [][]byte
			if i < len(job.TaskSideInputs) && job.TaskSideInputs[i] != "" {
				s, err := e.dfs.ReadAll(job.TaskSideInputs[i])
				if err != nil {
					return fmt.Errorf("map task %d side input %s: %w", i, job.TaskSideInputs[i], err)
				}
				side = s
			}
			tm, err := job.taskMapper(i, side)
			if err != nil {
				return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
			}
			col, err := e.openParts(job, ac, i)
			if err != nil {
				return err
			}
			col.timed = traced
			committed := false
			defer func() {
				if !committed {
					col.abort(js)
				}
			}()
			r, err := e.dfs.OpenRange(splits[i].input, splits[i].off, splits[i].n)
			if err != nil {
				return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
			}
			// As in the shuffle path: the fused loop's scan and map sides are
			// timed separately when traced, and the collector's append time
			// is carved out of the map phase as a DFS-write phase.
			var scanDur, mapDur time.Duration
			var scanBytes int64
			for n := 0; ; n++ {
				if n%64 == 0 {
					if err := ac.checkpoint("map"); err != nil {
						return err
					}
				}
				var rec []byte
				var err error
				if traced {
					t0 := time.Now()
					rec, err = r.Next()
					scanDur += time.Since(t0)
				} else {
					rec, err = r.Next()
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
				}
				if traced {
					scanBytes += int64(len(rec))
					t0 := time.Now()
					err = tm.MapRecord(splits[i].input, rec, col)
					mapDur += time.Since(t0)
				} else {
					err = tm.MapRecord(splits[i].input, rec, col)
				}
				if err != nil {
					return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
				}
			}
			// End-of-input flush: stateful task mappers (streaming group
			// builders, map-side joins) emit their trailing state here, still
			// inside the attempt so a fault retries the whole task.
			if traced {
				t0 := time.Now()
				err = tm.Flush(col)
				mapDur += time.Since(t0)
			} else {
				err = tm.Flush(col)
			}
			if err != nil {
				return fmt.Errorf("map task %d (%s) flush: %w", i, splits[i].input, err)
			}
			if err := ac.checkpoint("write"); err != nil {
				return err
			}
			if err := col.close(); err != nil {
				return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
			}
			if !ac.claim() {
				col.abort(js)
				committed = true // abort already done; skip the deferred one
				return errLostRace
			}
			if err := col.commit(e.dfs); err != nil {
				return fmt.Errorf("map task %d (%s): %w", i, splits[i].input, err)
			}
			if traced {
				wRecs, wBytes := col.written()
				tsp.AddPhase(trace.KindScan, "scan", scanDur, int64(splits[i].n), scanBytes)
				tsp.AddPhase(trace.KindMap, "map", mapDur-col.writeDur, col.records, col.bytes)
				tsp.AddPhase(trace.KindWrite, "write", col.writeDur, wRecs, wBytes)
				tsp.SetIO(wRecs, wBytes)
			}
			committed = true
			atomic.AddInt64(&outRecords, col.records)
			atomic.AddInt64(&outBytes, col.bytes)
			return nil
		})
	}); err != nil {
		return fail(err)
	}
	m.MapTaskStats = summarizeTasks(mapDurs)
	m.ReduceOutputRecords = outRecords
	m.ReduceOutputBytes = outBytes
	csp := jsp.Child(trace.KindCommit, "commit", len(splits))
	err := e.commitParts(job, len(splits))
	csp.Finish()
	if err != nil {
		return fail(err)
	}
	js.fold(&m)
	jsp.SetIO(outRecords, outBytes)
	m.Duration = time.Since(start)
	return m, nil
}

// Stage is a set of jobs with no mutual dependencies; the workflow runner
// executes a stage's jobs concurrently (Pig submits independent MR jobs in
// parallel; Hive runs them serially — engines model that by using
// one-job stages).
type Stage []*Job

// RunWorkflow executes stages sequentially, jobs within a stage
// concurrently. On the first failed job the workflow stops after the
// current stage completes, deletes the outputs of every job that had
// succeeded (so repeated capacity-limited runs do not leak simulated
// disk), and reports the failure. Metrics for every executed job are
// returned in submission order.
func (e *Engine) RunWorkflow(stages []Stage) (WorkflowMetrics, error) {
	return e.RunWorkflowNamed("workflow", stages)
}

// RunWorkflowNamed is RunWorkflow with an explicit workflow name: with a
// Tracer configured the whole run becomes one workflow span (named after the
// engine or query that built the plan) with every job span nested under it,
// in submission order.
func (e *Engine) RunWorkflowNamed(name string, stages []Stage) (WorkflowMetrics, error) {
	wsp := e.cfg.Tracer.Start(trace.KindWorkflow, name)
	defer wsp.Finish()
	wfid := newWorkflowID()
	start := time.Now()
	var wf WorkflowMetrics
	for _, st := range stages {
		wf.Cycles += len(st)
	}
	var done []*Job // successfully completed jobs, for failure cleanup
	// abort deletes the outputs of every completed job and sweeps any
	// temporary still under the workflow's namespace (belt-and-braces: job
	// failure paths sweep their own prefix, so this is normally a no-op).
	abort := func(failedJob string, err error) (WorkflowMetrics, error) {
		wf.Failed = true
		wf.FailedJob = failedJob
		wf.Err = err.Error()
		wf.Duration = time.Since(start)
		for _, job := range done {
			e.dfs.DeleteIfExists(job.Output)
			for _, eo := range job.ExtraOutputs {
				e.dfs.DeleteIfExists(eo)
			}
		}
		e.dfs.DeletePrefix(wfTmpRoot(wfid))
		return wf, err
	}
	for _, st := range stages {
		// A cancelled workflow stops between stages too — without this, a
		// deadline that fires while no task is at a checkpoint would still
		// launch the next stage's jobs.
		if err := e.ctxErr(); err != nil {
			return abort("", err)
		}
		jms := make([]JobMetrics, len(st))
		errs := make([]error, len(st))
		order := len(wf.Jobs) // submission-order base for this stage's job spans
		var wg sync.WaitGroup
		for i, job := range st {
			wg.Add(1)
			go func(i int, job *Job) {
				defer wg.Done()
				jsp := wsp.Child(trace.KindJob, job.Name, order+i)
				defer jsp.Finish()
				jms[i], errs[i] = e.run(job, jsp, wfid)
			}(i, job)
		}
		wg.Wait()
		wf.Jobs = append(wf.Jobs, jms...)
		for i := range st {
			if errs[i] == nil {
				done = append(done, st[i])
			}
		}
		for i, err := range errs {
			if err != nil {
				return abort(st[i].Name, err)
			}
		}
	}
	wf.Duration = time.Since(start)
	return wf, nil
}

// CountScansOf reports how many jobs in the plan scan the named file — the
// paper's "number of full scans of the triple relation" metric (Figure 3).
func CountScansOf(stages []Stage, name string) int {
	n := 0
	for _, st := range stages {
		for _, job := range st {
			for _, in := range job.Inputs {
				if in == name {
					n++
					break
				}
			}
		}
	}
	return n
}

// ErrIsDiskFull reports whether err is rooted in DFS capacity exhaustion.
func ErrIsDiskFull(err error) bool { return errors.Is(err, hdfs.ErrDiskFull) }
