package mapreduce

import (
	"fmt"
	"math/rand"
	"testing"

	"ntga/internal/hdfs"
)

func benchInput(b *testing.B, records, width int) *Engine {
	b.Helper()
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 8}), EngineConfig{SplitRecords: 4096})
	rng := rand.New(rand.NewSource(7))
	recs := make([][]byte, records)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("key%d value-%0*d", rng.Intn(records/10+1), width, i))
	}
	if err := e.DFS().WriteFile("in", recs); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkShuffleThroughput measures a full map-shuffle-reduce cycle over
// 100k small records (identity mapper keyed on the first token, counting
// reducer).
func BenchmarkShuffleThroughput(b *testing.B) {
	e := benchInput(b, 100000, 8)
	job := func(out string) *Job {
		return &Job{
			Name: "bench", Inputs: []string{"in"}, Output: out,
			Mapper: MapperFunc(func(_ string, r []byte, out Emitter) error {
				for i, c := range r {
					if c == ' ' {
						return out.Emit(r[:i], r[i+1:])
					}
				}
				return out.Emit(r, nil)
			}),
			Reducer: ReducerFunc(func(key []byte, values [][]byte, out Collector) error {
				return out.Collect([]byte(fmt.Sprintf("%s=%d", key, len(values))))
			}),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := fmt.Sprintf("out%d", i)
		m, err := e.Run(job(out))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(m.MapOutputBytes)
		e.DFS().DeleteIfExists(out)
	}
}

// BenchmarkMapOnlyThroughput measures a filter-style map-only pass.
func BenchmarkMapOnlyThroughput(b *testing.B) {
	e := benchInput(b, 100000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := fmt.Sprintf("out%d", i)
		m, err := e.Run(&Job{
			Name: "filter", Inputs: []string{"in"}, Output: out,
			MapOnly: MapOnlyFunc(func(_ string, r []byte, c Collector) error {
				if len(r) > 0 && r[len(r)-1]%2 == 0 {
					return c.Collect(r)
				}
				return nil
			}),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(m.MapInputBytes)
		e.DFS().DeleteIfExists(out)
	}
}

// benchmarkSpill runs the shuffle benchmark job under a fixed map sort-buffer
// budget, reporting how much of the map output spilled to local disk and how
// many merge passes the bounded buffer forced.
func benchmarkSpill(b *testing.B, sortBufferBytes int64) {
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 8}), EngineConfig{
		SplitRecords:    4096,
		SortBufferBytes: sortBufferBytes,
	})
	rng := rand.New(rand.NewSource(7))
	recs := make([][]byte, 100000)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("key%d value-%08d", rng.Intn(len(recs)/10+1), i))
	}
	if err := e.DFS().WriteFile("in", recs); err != nil {
		b.Fatal(err)
	}
	job := func(out string) *Job {
		return &Job{
			Name: "bench-spill", Inputs: []string{"in"}, Output: out,
			Mapper: MapperFunc(func(_ string, r []byte, out Emitter) error {
				for i, c := range r {
					if c == ' ' {
						return out.Emit(r[:i], r[i+1:])
					}
				}
				return out.Emit(r, nil)
			}),
			StreamReducer: StreamReducerFunc(func(key []byte, values ValueIter, out Collector) error {
				n := 0
				for {
					_, ok, err := values.Next()
					if err != nil {
						return err
					}
					if !ok {
						break
					}
					n++
				}
				return out.Collect([]byte(fmt.Sprintf("%s=%d", key, n)))
			}),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var spilled, merges int64
	for i := 0; i < b.N; i++ {
		out := fmt.Sprintf("out%d", i)
		m, err := e.Run(job(out))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(m.MapOutputBytes)
		spilled, merges = m.SpilledBytes, m.MergePasses
		e.DFS().DeleteIfExists(out)
	}
	b.ReportMetric(float64(spilled), "spilledB/op")
	b.ReportMetric(float64(merges), "mergePasses/op")
}

// BenchmarkSpill_* sweep the sort-buffer budget from unbounded down to a few
// KB over the same 100k-record shuffle, exposing the cost of spilling and
// external merging.
func BenchmarkSpill_Unbounded(b *testing.B) { benchmarkSpill(b, 0) }
func BenchmarkSpill_256KB(b *testing.B)     { benchmarkSpill(b, 256<<10) }
func BenchmarkSpill_64KB(b *testing.B)      { benchmarkSpill(b, 64<<10) }
func BenchmarkSpill_16KB(b *testing.B)      { benchmarkSpill(b, 16<<10) }
func BenchmarkSpill_4KB(b *testing.B)       { benchmarkSpill(b, 4<<10) }

// BenchmarkSortKVs isolates the shuffle sort.
func BenchmarkSortKVs(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	base := make([]kv, 200000)
	for i := range base {
		k := make([]byte, 8)
		v := make([]byte, 16)
		rng.Read(k)
		rng.Read(v)
		base[i] = kv{k, v}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([]kv, len(base))
		copy(cp, base)
		sortKVs(cp)
	}
}
