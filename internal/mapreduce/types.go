// Package mapreduce implements the MapReduce execution engine that all
// query engines in this repository compile to. It reproduces the cost
// structure of Hadoop MapReduce that the paper's evaluation depends on:
//
//   - a job reads its inputs from the simulated DFS (full scans are visible
//     in the DFS read counters);
//   - map output is partitioned by key, sorted, and "shuffled" — the total
//     map-output bytes are the shuffle cost the lazy β-unnesting strategies
//     target;
//   - reduce output is materialized back to the DFS between cycles (write
//     counters, replication amplification, disk-full failures);
//   - a workflow is a sequence of stages; jobs within a stage may run
//     concurrently (Pig-style independent-job parallelism).
//
// Map and reduce tasks execute in parallel on goroutine pools, so wall-clock
// measurements of a workflow reflect genuine parallel dataflow execution.
//
// # Bounded-memory shuffle
//
// EngineConfig.SortBufferBytes bounds each map task's in-memory sort buffer
// (Hadoop's io.sort.mb). When the buffered map output for a task exceeds the
// budget, the buffer is sorted, pre-folded by the job's optional Combiner,
// and spilled as a sorted codec-framed run to node-local disk; at reduce
// time the runs of each partition are merge-sorted MergeFactor at a time
// (multi-pass when there are many runs — see JobMetrics.MergePasses).
// Reducers that implement StreamReducer consume each group's values through
// a ValueIter fed straight from the merge, so neither the map output nor a
// reduce group need ever be resident in memory; slice Reducers are adapted
// transparently. Reduce output streams into the DFS writer record by record,
// which means hdfs.ErrDiskFull can surface mid-reduce, exactly where a real
// cluster hits it. A zero budget (the default) disables spilling; results
// are byte-identical either way.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Emitter receives key/value pairs from map tasks.
type Emitter interface {
	// Emit hands one intermediate pair to the shuffle. The engine copies
	// both slices; callers may reuse their buffers.
	Emit(key, value []byte) error
}

// Collector receives final output records from reduce tasks (or from map
// tasks in a map-only job).
type Collector interface {
	// Collect appends one record to the job output. The engine copies the
	// slice; callers may reuse their buffers.
	Collect(record []byte) error
}

// NamedCollector is the Hadoop MultipleOutputs facility: reduce (or
// map-only) functions of a job that declares ExtraOutputs can route records
// to those outputs by name. Collectors passed by the engine always
// implement it.
type NamedCollector interface {
	Collector
	// CollectTo appends one record to the named extra output, which must
	// be listed in the job's ExtraOutputs.
	CollectTo(output string, record []byte) error
}

// Mapper transforms one input record into zero or more key/value pairs.
// The input file name is passed so that one mapper can serve several tagged
// inputs (relational join mappers need to know which side a record is from).
type Mapper interface {
	Map(input string, record []byte, out Emitter) error
}

// MapOnlyMapper is implemented by mappers used in map-only jobs; output
// records bypass the shuffle entirely.
type MapOnlyMapper interface {
	MapRecord(input string, record []byte, out Collector) error
}

// Reducer folds all values sharing one key into zero or more output records.
// It is the fully-materialized form: the engine buffers every value of the
// group in memory before the call. Large groups should implement
// StreamReducer instead.
type Reducer interface {
	Reduce(key []byte, values [][]byte, out Collector) error
}

// ValueIter streams the values of one reduce group in sorted order. Next
// returns ok=false once the group is exhausted. Returned slices alias
// engine-owned storage that stays valid until the job completes; they must
// not be mutated.
type ValueIter interface {
	Next() (value []byte, ok bool, err error)
}

// StreamReducer is the streaming form of Reducer: values arrive through an
// iterator instead of a materialized slice, so a group larger than memory
// can be folded incrementally. The engine feeds it from a merge of sorted
// in-memory segments and on-disk spill runs; values within a group arrive
// in nondecreasing byte order (the engine's deterministic shuffle order).
type StreamReducer interface {
	Reduce(key []byte, values ValueIter, out Collector) error
}

// Combiner pre-folds the values of one key on the map side, before pairs
// are spilled or shuffled (Hadoop's combiner). It must be associative and
// commutative: the engine applies it to arbitrary sub-groups — at every
// spill and again on the final in-memory segment — and the reducer then
// sees the combined values. The returned value slices become engine-owned.
type Combiner interface {
	Combine(key []byte, values [][]byte) ([][]byte, error)
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(input string, record []byte, out Emitter) error

// Map implements Mapper.
func (f MapperFunc) Map(input string, record []byte, out Emitter) error {
	return f(input, record, out)
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key []byte, values [][]byte, out Collector) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key []byte, values [][]byte, out Collector) error {
	return f(key, values, out)
}

// StreamReducerFunc adapts a function to the StreamReducer interface.
type StreamReducerFunc func(key []byte, values ValueIter, out Collector) error

// Reduce implements StreamReducer.
func (f StreamReducerFunc) Reduce(key []byte, values ValueIter, out Collector) error {
	return f(key, values, out)
}

// CombinerFunc adapts a function to the Combiner interface.
type CombinerFunc func(key []byte, values [][]byte) ([][]byte, error)

// Combine implements Combiner.
func (f CombinerFunc) Combine(key []byte, values [][]byte) ([][]byte, error) {
	return f(key, values)
}

// TaskMapper is a per-task map-only operator with end-of-input state: after
// the task's whole split has streamed through MapRecord, Flush is called
// once so operators that accumulate runs (e.g. building a triplegroup from
// subject-contiguous bucket records) can emit their tail. Each task attempt
// gets a fresh TaskMapper, so retried or speculated attempts never see a
// rival attempt's state.
type TaskMapper interface {
	MapOnlyMapper
	// Flush emits whatever the mapper is still holding after the last
	// record of the split.
	Flush(out Collector) error
}

// TaskMapperFactory builds the TaskMapper for one map-only task attempt.
// The side argument carries the records of the task's side input
// (Job.TaskSideInputs), already fetched by the engine; nil when the task
// has none.
type TaskMapperFactory interface {
	NewTask(task int, side [][]byte) (TaskMapper, error)
}

// MapOnlyFunc adapts a function to the MapOnlyMapper interface.
type MapOnlyFunc func(input string, record []byte, out Collector) error

// MapRecord implements MapOnlyMapper.
func (f MapOnlyFunc) MapRecord(input string, record []byte, out Collector) error {
	return f(input, record, out)
}

// Partitioner assigns an intermediate key to one of n reduce partitions.
type Partitioner func(key []byte, n int) int

// HashPartitioner is Hadoop's default: hash(key) mod n.
func HashPartitioner(key []byte, n int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(n))
}

// Job describes one MapReduce cycle.
type Job struct {
	// Name identifies the job in metrics and error messages.
	Name string
	// Inputs are DFS file names scanned by the map phase. A job with
	// several inputs models a shared scan / multi-relation map.
	Inputs []string
	// Output is the DFS file the job writes.
	Output string
	// ExtraOutputs lists additional DFS files the job may write via
	// NamedCollector.CollectTo (Hadoop's MultipleOutputs). Every extra
	// output file is created even if no record is routed to it.
	ExtraOutputs []string
	// Mapper runs in the map phase (ignored if MapOnly is set).
	Mapper Mapper
	// MapOnly, when non-nil, makes this a map-only job (no shuffle, no
	// reduce); Mapper and Reducer are ignored.
	MapOnly MapOnlyMapper
	// MapOnlyFactory is the per-task form of MapOnly for jobs whose tasks
	// need attempt-private state, a Flush at end of split, or a side input:
	// the engine calls NewTask once per task attempt. Exclusive with
	// MapOnly; implies a map-only job.
	MapOnlyFactory TaskMapperFactory
	// WholeFileSplits pins map-task granularity to whole input files: task
	// i scans exactly Inputs[i], never a sub-range. This is how
	// co-partitioned jobs keep task index == bucket index (the no-shuffle
	// star-join path reads bucket i as task i).
	WholeFileSplits bool
	// TaskSideInputs, indexed like Inputs under WholeFileSplits, names a
	// DFS file whose full contents are handed to task i's MapOnlyFactory
	// as the side argument ("" = no side input). The cascading map-side
	// join routes the previous cycle's per-bucket join-left records here.
	TaskSideInputs []string
	// Reducer runs in the reduce phase (exclusive with StreamReducer).
	Reducer Reducer
	// StreamReducer runs in the reduce phase consuming values through an
	// iterator; exactly one of Reducer and StreamReducer must be set for a
	// job with a reduce phase.
	StreamReducer StreamReducer
	// Combiner, when non-nil, pre-folds map output per key at spill time
	// and on each map task's final in-memory segment. It must be
	// associative and commutative. Ignored for map-only jobs.
	Combiner Combiner
	// NumReducers is the reduce-task parallelism; 0 defaults to the
	// engine's configured reducer count.
	NumReducers int
	// Partitioner routes keys to reducers; nil defaults to HashPartitioner.
	Partitioner Partitioner
}

func (j *Job) validate() error {
	if j.Name == "" {
		return fmt.Errorf("mapreduce: job has no name")
	}
	if len(j.Inputs) == 0 {
		return fmt.Errorf("mapreduce: job %s has no inputs", j.Name)
	}
	if j.Output == "" {
		return fmt.Errorf("mapreduce: job %s has no output", j.Name)
	}
	seen := map[string]bool{j.Output: true}
	for _, eo := range j.ExtraOutputs {
		if eo == "" {
			return fmt.Errorf("mapreduce: job %s has an empty extra output name", j.Name)
		}
		if seen[eo] {
			return fmt.Errorf("mapreduce: job %s declares output %q twice", j.Name, eo)
		}
		seen[eo] = true
	}
	if j.MapOnly != nil && j.MapOnlyFactory != nil {
		return fmt.Errorf("mapreduce: job %s sets both MapOnly and MapOnlyFactory", j.Name)
	}
	if j.MapOnly == nil && j.MapOnlyFactory == nil {
		if j.Mapper == nil {
			return fmt.Errorf("mapreduce: job %s has no mapper", j.Name)
		}
		if j.Reducer == nil && j.StreamReducer == nil {
			return fmt.Errorf("mapreduce: job %s has no reducer", j.Name)
		}
		if j.Reducer != nil && j.StreamReducer != nil {
			return fmt.Errorf("mapreduce: job %s sets both Reducer and StreamReducer", j.Name)
		}
	}
	if len(j.TaskSideInputs) > 0 {
		if j.MapOnlyFactory == nil {
			return fmt.Errorf("mapreduce: job %s sets TaskSideInputs without a MapOnlyFactory", j.Name)
		}
		if !j.WholeFileSplits {
			return fmt.Errorf("mapreduce: job %s sets TaskSideInputs without WholeFileSplits", j.Name)
		}
		if len(j.TaskSideInputs) != len(j.Inputs) {
			return fmt.Errorf("mapreduce: job %s has %d side inputs for %d inputs",
				j.Name, len(j.TaskSideInputs), len(j.Inputs))
		}
	}
	if j.WholeFileSplits && j.MapOnly == nil && j.MapOnlyFactory == nil {
		return fmt.Errorf("mapreduce: job %s sets WholeFileSplits on a shuffle job", j.Name)
	}
	return nil
}

// mapOnly reports whether the job elides the shuffle and reduce phases.
func (j *Job) mapOnly() bool { return j.MapOnly != nil || j.MapOnlyFactory != nil }

// taskMapper builds the map-only operator for one task attempt: the
// factory's per-attempt TaskMapper, or the shared MapOnly wrapped with a
// no-op Flush.
func (j *Job) taskMapper(task int, side [][]byte) (TaskMapper, error) {
	if j.MapOnlyFactory != nil {
		return j.MapOnlyFactory.NewTask(task, side)
	}
	return noFlushMapper{j.MapOnly}, nil
}

type noFlushMapper struct{ MapOnlyMapper }

func (noFlushMapper) Flush(Collector) error { return nil }

// kv is one intermediate pair.
type kv struct {
	key, value []byte
}

// sortKVs orders pairs by key then value, giving deterministic reduce input
// regardless of map-task scheduling.
func sortKVs(kvs []kv) {
	sort.Slice(kvs, func(i, j int) bool {
		c := compareBytes(kvs[i].key, kvs[j].key)
		if c != 0 {
			return c < 0
		}
		return compareBytes(kvs[i].value, kvs[j].value) < 0
	})
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Counters is a concurrency-safe named-counter set, available to operators
// for domain-specific accounting (e.g. triplegroups unnested).
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the value of the named counter (zero if never incremented).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}
