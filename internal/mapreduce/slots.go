package mapreduce

import "context"

// SlotPool arbitrates cluster-wide task slots among concurrent workflows.
// When EngineConfig.Slots is set, the engine stops sizing its own worker
// pools from MapParallelism/ReduceParallelism: every task attempt instead
// acquires one slot of its kind ("map" or "reduce") before it runs and
// releases the slot when it finishes, so the total number of in-flight
// tasks across every engine sharing the pool never exceeds the pool's
// capacity. Speculative backup attempts run under their task's slot — a
// task holds exactly one slot from first launch to final commit.
//
// Acquire blocks until a slot is granted or ctx is done; the returned
// release function is idempotent. internal/server provides the
// weighted-fair implementation used by the query service; tests may supply
// simple channel-based pools.
type SlotPool interface {
	Acquire(ctx context.Context, kind string) (release func(), err error)
}
