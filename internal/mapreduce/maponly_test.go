package mapreduce

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ntga/internal/hdfs"
)

// sumMapper is a stateful TaskMapper: it accumulates its split's integer
// records and emits one "task:sum" record at Flush, plus routes every record
// it saw into a declared extra output. It exists to exercise the factory,
// side-input, and Flush paths of whole-file map-only jobs.
type sumMapper struct {
	task  int
	side  [][]byte
	extra string
	sum   int
	seen  int
}

func (m *sumMapper) MapRecord(_ string, record []byte, out Collector) error {
	var v int
	if _, err := fmt.Sscanf(string(record), "%d", &v); err != nil {
		return err
	}
	m.sum += v
	m.seen++
	if m.extra != "" {
		nc := out.(NamedCollector)
		return nc.CollectTo(m.extra, record)
	}
	return nil
}

func (m *sumMapper) Flush(out Collector) error {
	base := 0
	for _, s := range m.side {
		var v int
		fmt.Sscanf(string(s), "%d", &v)
		base += v
	}
	return out.Collect([]byte(fmt.Sprintf("task%d:%d", m.task, base+m.sum)))
}

type sumFactory struct {
	extras []string
}

func (f *sumFactory) NewTask(task int, side [][]byte) (TaskMapper, error) {
	extra := ""
	if task < len(f.extras) {
		extra = f.extras[task]
	}
	return &sumMapper{task: task, side: side, extra: extra}, nil
}

func writeInts(t *testing.T, dfs *hdfs.DFS, name string, vals ...int) {
	t.Helper()
	recs := make([][]byte, len(vals))
	for i, v := range vals {
		recs[i] = []byte(fmt.Sprintf("%d", v))
	}
	if err := dfs.WriteFile(name, recs); err != nil {
		t.Fatal(err)
	}
}

func TestWholeFileMapOnlyFactory(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	writeInts(t, e.DFS(), "in0", 1, 2, 3, 4, 5, 6) // > SplitRecords: must stay one task
	writeInts(t, e.DFS(), "in1", 10, 20)
	writeInts(t, e.DFS(), "in2") // empty bucket still gets a task
	writeInts(t, e.DFS(), "side1", 100)

	job := &Job{
		Name:            "bucket-sum",
		Inputs:          []string{"in0", "in1", "in2"},
		Output:          "out",
		ExtraOutputs:    []string{"copy0", "copy1", "copy2"},
		WholeFileSplits: true,
		TaskSideInputs:  []string{"", "side1", ""},
		MapOnlyFactory:  &sumFactory{extras: []string{"copy0", "copy1", "copy2"}},
	}
	m, err := e.Run(job)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !m.MapOnly {
		t.Error("metrics not flagged map-only")
	}
	if m.MapTasks != 3 {
		t.Errorf("MapTasks = %d, want 3 (one per whole file)", m.MapTasks)
	}
	if m.MapOutputBytes != 0 {
		t.Errorf("MapOutputBytes = %d, want 0 (nothing shuffles)", m.MapOutputBytes)
	}
	recs, err := e.DFS().ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(recs))
	for i, r := range recs {
		got[i] = string(r)
	}
	// Task order == input order; task 1 folds its side input into the sum.
	want := []string{"task0:21", "task1:130", "task2:0"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("out = %v, want %v", got, want)
	}
	// Extra-output routing: each task's records land in its own copy file.
	copy1, err := e.DFS().ReadAll("copy1")
	if err != nil {
		t.Fatal(err)
	}
	if len(copy1) != 2 || !bytes.Equal(copy1[0], []byte("10")) {
		t.Errorf("copy1 = %q", copy1)
	}
	if copy2, _ := e.DFS().ReadAll("copy2"); len(copy2) != 0 {
		t.Errorf("copy2 holds %d records, want 0", len(copy2))
	}
}

func TestWholeFileMapOnlyUnderFaults(t *testing.T) {
	// Retried attempts must see a fresh TaskMapper: the sums come out right
	// even when attempts are killed mid-task, and the job's commit discipline
	// keeps exactly one winner per task.
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}), EngineConfig{
		SplitRecords:    4,
		DefaultReducers: 3,
		TaskMaxAttempts: 8,
		Faults:          &FaultPlan{Rate: 0.3, Seed: 7, MidPhase: true},
	})
	writeInts(t, e.DFS(), "in0", 1, 2, 3, 4, 5, 6, 7, 8)
	writeInts(t, e.DFS(), "in1", 10, 20, 30)
	job := &Job{
		Name:            "bucket-sum-faulty",
		Inputs:          []string{"in0", "in1"},
		Output:          "out",
		WholeFileSplits: true,
		MapOnlyFactory:  &sumFactory{},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs, err := e.DFS().ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "task0:36" || string(recs[1]) != "task1:60" {
		t.Errorf("out = %q, want [task0:36 task1:60]", recs)
	}
}

func TestExecMapOnlyTaskN(t *testing.T) {
	// The remote-execution entry point honors task index, side input, and
	// Flush, matching the local engine's semantics.
	job := &Job{
		Name:            "remote-sum",
		Inputs:          []string{"in0", "in1"},
		Output:          "out",
		WholeFileSplits: true,
		MapOnlyFactory:  &sumFactory{},
	}
	out, err := ExecMapOnlyTaskN(job, 1, "in1", [][]byte{[]byte("5")},
		SliceRecords([][]byte{[]byte("1"), []byte("2")}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Outputs[0]) != 1 || string(out.Outputs[0][0]) != "task1:8" {
		t.Errorf("outputs = %q, want [task1:8]", out.Outputs[0])
	}
	// The wrapper keeps the legacy MapOnly path intact.
	legacy := &Job{
		Name:    "legacy",
		Inputs:  []string{"in"},
		Output:  "out",
		MapOnly: MapOnlyFunc(func(_ string, rec []byte, out Collector) error { return out.Collect(rec) }),
	}
	lo, err := ExecMapOnlyTask(legacy, "in", SliceRecords([][]byte{[]byte("x")}))
	if err != nil {
		t.Fatal(err)
	}
	if len(lo.Outputs[0]) != 1 || string(lo.Outputs[0][0]) != "x" {
		t.Errorf("legacy outputs = %q", lo.Outputs[0])
	}
}

func TestJobValidateMapOnlyShapes(t *testing.T) {
	base := func() *Job {
		return &Job{Name: "j", Inputs: []string{"a"}, Output: "o"}
	}
	mo := MapOnlyFunc(func(string, []byte, Collector) error { return nil })

	j := base()
	j.MapOnly = mo
	j.MapOnlyFactory = &sumFactory{}
	if err := j.validate(); err == nil {
		t.Error("MapOnly+MapOnlyFactory accepted")
	}

	j = base()
	j.WholeFileSplits = true
	j.Mapper = MapperFunc(func(string, []byte, Emitter) error { return nil })
	j.Reducer = ReducerFunc(func([]byte, [][]byte, Collector) error { return nil })
	if err := j.validate(); err == nil {
		t.Error("WholeFileSplits on a shuffle job accepted")
	}

	j = base()
	j.MapOnly = mo
	j.TaskSideInputs = []string{"s"}
	if err := j.validate(); err == nil {
		t.Error("TaskSideInputs without factory accepted")
	}

	j = base()
	j.MapOnlyFactory = &sumFactory{}
	j.WholeFileSplits = true
	j.TaskSideInputs = []string{"s", "t"}
	if err := j.validate(); err == nil {
		t.Error("mismatched TaskSideInputs length accepted")
	}
}

func TestEngineConfigValidateRejections(t *testing.T) {
	dfs := hdfs.New(hdfs.Config{Nodes: 1})
	mo := MapOnlyFunc(func(string, []byte, Collector) error { return nil })
	for _, cfg := range []EngineConfig{
		{DefaultReducers: -1},
		{SplitRecords: -4},
	} {
		e := NewEngine(dfs, cfg)
		dfs.DeleteIfExists("in")
		dfs.WriteFile("in", [][]byte{[]byte("x")})
		_, err := e.Run(&Job{Name: "j", Inputs: []string{"in"}, Output: "out", MapOnly: mo})
		if err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
