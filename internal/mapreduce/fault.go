package mapreduce

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ntga/internal/core/hash64"
	"ntga/internal/hdfs"
)

// This file implements the engine's fault-tolerance machinery: the seeded
// FaultPlan that fires failures *inside* task phases (and can take a whole
// simulated node down), the attempt context whose checkpoints every phase
// threads through, the per-task control block that arbitrates the commit
// race between a primary and a speculative backup attempt, and the
// job-level state that carries the speculation policy and the recovery
// counters into JobMetrics.

// FaultPlan is a deterministic chaos schedule. Every checkpoint a task
// attempt passes (one per phase boundary, plus periodic checkpoints inside
// the record loops, plus one per spill and per merge pass) draws a seeded
// hash over (job, kind, task, attempt, phase, sequence) and fails the
// attempt when the draw lands under Rate. Unlike the legacy pre-body
// injection (EngineConfig.TaskFailureRate), a mid-phase fault interrupts an
// attempt that has already produced partial side effects — buffered map
// output, spill runs on local disk, partially-written DFS part files — so
// retries exercise the engine's cleanup and the attempt-scoped commit
// protocol for real.
type FaultPlan struct {
	// Rate is the per-checkpoint failure probability (0 disables).
	Rate float64
	// Seed varies which checkpoints fail.
	Seed int64
	// MidPhase routes injection through the phase checkpoints. When false
	// the plan only contributes straggler injection (failures stay with the
	// legacy pre-body TaskFailureRate model).
	MidPhase bool
	// NodeFailureRate is the probability that a firing fault escalates to
	// killing the attempt's data node (losing its local spill disk and
	// failing every attempt pinned to it) instead of just the attempt.
	NodeFailureRate float64
	// MaxNodeKills bounds how many nodes the plan may take down (the DFS
	// additionally refuses to kill the last live node).
	MaxNodeKills int
	// StragglerRate injects seeded slowdowns: a checkpoint that draws under
	// it sleeps StragglerDelay (interruptibly, so a speculative winner can
	// kill the sleeping loser). The draw is attempt-scoped — a backup
	// attempt of the same task re-draws — which is what lets speculative
	// execution beat an unlucky first attempt.
	StragglerRate  float64
	StragglerDelay time.Duration
}

func (p *FaultPlan) active() bool {
	return p != nil && (p.MidPhase && p.Rate > 0 || p.StragglerRate > 0)
}

// errAttemptKilled marks an attempt stopped because a rival attempt of the
// same task committed first (speculation) — not a task failure.
var errAttemptKilled = errors.New("mapreduce: attempt killed by committed rival")

// errLostRace marks an attempt that finished its work but lost the commit
// claim to a rival — also not a task failure.
var errLostRace = errors.New("mapreduce: attempt lost commit race")

// attemptNeutral reports whether an attempt error means "a rival attempt
// won", i.e. the task as a whole is fine.
func attemptNeutral(err error) bool {
	return errors.Is(err, errAttemptKilled) || errors.Is(err, errLostRace)
}

// chaosDraw maps a seeded identity to [0,1) deterministically (fnv64a via
// hash64, the same generator the legacy pre-body injection uses).
func chaosDraw(job, kind string, task, attempt int, phase string, seq int, which string, seed int64) float64 {
	return float64(hash64.Mod(100000, "%s|%s|%d|%d|%s|%d|%s|%d",
		job, kind, task, attempt, phase, seq, which, seed)) / 100000
}

// taskCtl arbitrates the commit race between concurrent attempts of one
// task: exactly one attempt claims the right to publish its output; the
// moment it does, every rival's kill channel closes so stragglers stop at
// their next checkpoint and clean up their temporaries.
type taskCtl struct {
	mu      sync.Mutex
	claimed bool
	winner  int
	kills   map[int]chan struct{}
}

func newTaskCtl() *taskCtl {
	return &taskCtl{winner: -1, kills: make(map[int]chan struct{})}
}

// killCh registers an attempt and returns its kill channel.
func (c *taskCtl) killCh(attempt int) chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan struct{})
	if c.claimed {
		close(ch) // born dead: a rival already committed
	} else {
		c.kills[attempt] = ch
	}
	return ch
}

// claim tries to win the commit race for attempt. The winner's rivals are
// killed; a false return means some rival already committed and the caller
// must discard its own output.
func (c *taskCtl) claim(attempt int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.claimed {
		return false
	}
	c.claimed = true
	c.winner = attempt
	for a, ch := range c.kills {
		if a != attempt {
			close(ch)
		}
		delete(c.kills, a)
	}
	return true
}

// drop unregisters a finished attempt's kill channel.
func (c *taskCtl) drop(attempt int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.kills, attempt)
}

func (c *taskCtl) winnerAttempt() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.winner
}

// jobRunState is the per-job-run fault and speculation state shared by
// every task of the run: the resolved fault plan, the node-kill budget,
// the per-phase duration samples the speculation policy consults, and the
// recovery counters folded into JobMetrics when the run finishes.
type jobRunState struct {
	e    *Engine
	wf   string // workflow ID scoping this run's temp namespace
	job  string
	plan *FaultPlan

	nodeKillsLeft int64 // atomic

	specMu   sync.Mutex
	specDone map[string][]time.Duration // completed task durations per kind

	// Counters (atomics), folded into JobMetrics at job end — on the
	// failure path too, so a failed job's metrics still report how hard
	// the machinery tried before giving up.
	taskRetries        int64
	specLaunched       int64
	specWins           int64
	killedAttempts     int64
	nodeKills          int64
	mapRecoveries      int64
	tempBytesReclaimed int64
}

func newJobRunState(e *Engine, wf, job string) *jobRunState {
	js := &jobRunState{e: e, wf: wf, job: job, plan: e.cfg.Faults, specDone: make(map[string][]time.Duration)}
	if js.plan != nil {
		js.nodeKillsLeft = int64(js.plan.MaxNodeKills)
	}
	return js
}

// reclaim accounts bytes of attempt-private state (temp part files, spill
// runs) deleted because their attempt failed, was killed, or lost the race.
func (js *jobRunState) reclaim(bytes int64) {
	if js != nil && bytes > 0 {
		atomic.AddInt64(&js.tempBytesReclaimed, bytes)
	}
}

// noteDone records a winning attempt's duration for the speculation policy.
func (js *jobRunState) noteDone(kind string, d time.Duration) {
	js.specMu.Lock()
	js.specDone[kind] = append(js.specDone[kind], d)
	js.specMu.Unlock()
}

// shouldSpeculate decides whether a task of the given kind that has been
// running for elapsed is straggling enough to deserve a backup attempt:
// longer than SpeculationRatio × the median completed duration of its
// phase, with a floor so micro-tasks are never speculated.
func (js *jobRunState) shouldSpeculate(kind string, elapsed time.Duration) bool {
	if elapsed < js.e.cfg.SpeculationMinRuntime {
		return false
	}
	js.specMu.Lock()
	done := append([]time.Duration(nil), js.specDone[kind]...)
	js.specMu.Unlock()
	if len(done) == 0 {
		return false
	}
	sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
	median := done[len(done)/2]
	threshold := time.Duration(js.e.cfg.SpeculationRatio * float64(median))
	if threshold < js.e.cfg.SpeculationMinRuntime {
		threshold = js.e.cfg.SpeculationMinRuntime
	}
	return elapsed > threshold
}

// attemptCtx is one task attempt's identity and fault surface. Every phase
// of the attempt body calls checkpoint, which is where kill signals are
// observed, node death is noticed, and the fault plan's mid-phase failures,
// node kills, and straggler delays fire.
type attemptCtx struct {
	e       *Engine
	js      *jobRunState
	ctl     *taskCtl
	kind    string
	task    int
	attempt int
	node    int
	killed  chan struct{}
	seq     int
}

// checkpoint is called at phase boundaries and inside the record loops of
// a task attempt. It returns errAttemptKilled if a rival attempt has
// committed, a wrapped hdfs.ErrNodeLost if the attempt's node has died (or
// the fault plan kills it right now), or errInjectedFailure for a plain
// mid-phase fault.
func (a *attemptCtx) checkpoint(phase string) error {
	// Cancellation outranks everything: a dead engine context stops the
	// attempt at the next phase boundary (or every 64 records inside the
	// loops), and runTask treats the error as non-retryable.
	if err := a.e.ctxErr(); err != nil {
		return fmt.Errorf("%s task %d attempt %d in %s: %w", a.kind, a.task, a.attempt, phase, err)
	}
	select {
	case <-a.killed:
		return fmt.Errorf("%w (%s task %d attempt %d in %s)", errAttemptKilled, a.kind, a.task, a.attempt, phase)
	default:
	}
	if !a.e.dfs.NodeAlive(a.node) {
		return fmt.Errorf("%s task %d attempt %d: node %d died: %w", a.kind, a.task, a.attempt, a.node, hdfs.ErrNodeLost)
	}
	p := a.js.plan
	if !p.active() {
		return nil
	}
	a.seq++
	if p.StragglerRate > 0 && p.StragglerDelay > 0 &&
		chaosDraw(a.js.job, a.kind, a.task, a.attempt, phase, a.seq, "straggle", p.Seed) < p.StragglerRate {
		if err := a.sleep(p.StragglerDelay); err != nil {
			return err
		}
	}
	if !p.MidPhase || p.Rate <= 0 {
		return nil
	}
	if chaosDraw(a.js.job, a.kind, a.task, a.attempt, phase, a.seq, "fail", p.Seed) >= p.Rate {
		return nil
	}
	if p.NodeFailureRate > 0 &&
		chaosDraw(a.js.job, a.kind, a.task, a.attempt, phase, a.seq, "node", p.Seed) < p.NodeFailureRate &&
		atomic.AddInt64(&a.js.nodeKillsLeft, -1) >= 0 {
		if lost, ok := a.e.dfs.KillNode(a.node); ok {
			atomic.AddInt64(&a.js.nodeKills, 1)
			a.js.reclaim(lost)
			return fmt.Errorf("%s task %d attempt %d in %s: injected node %d failure: %w",
				a.kind, a.task, a.attempt, phase, a.node, hdfs.ErrNodeLost)
		}
		atomic.AddInt64(&a.js.nodeKillsLeft, 1) // kill refused (last live node)
	}
	return fmt.Errorf("%w (%s task %d attempt %d in %s)", errInjectedFailure, a.kind, a.task, a.attempt, phase)
}

// sleep waits for d in small slices, returning errAttemptKilled early if a
// rival attempt commits — a straggling loser must not hold the phase
// barrier for its full injected delay.
func (a *attemptCtx) sleep(d time.Duration) error {
	const slice = time.Millisecond
	deadline := time.Now().Add(d)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil
		}
		if remaining > slice {
			remaining = slice
		}
		select {
		case <-a.killed:
			return fmt.Errorf("%w (%s task %d attempt %d, straggling)", errAttemptKilled, a.kind, a.task, a.attempt)
		case <-time.After(remaining):
		}
	}
}

// claim races for the task's commit right.
func (a *attemptCtx) claim() bool { return a.ctl.claim(a.attempt) }

// runTask executes one task with retries and (optionally) speculative
// backup attempts. The body runs under an attemptCtx; it must clean up its
// own partial state (spill runs, temp part files) before returning an
// error, publish its results only after ac.claim() succeeds, and return
// errLostRace after discarding them if the claim fails. Failed attempts
// are retried with fresh attempt numbers until the attempt budget is
// exhausted. An attempt failing with hdfs.ErrNodeLost triggers the recover
// callback (if any) before the next attempt — the reduce phase uses it to
// regenerate map output that died with a node. The winning attempt's
// wall-clock duration lands in durs[task].
func (e *Engine) runTask(js *jobRunState, kind string, task int, durs []time.Duration,
	recover func() error, body func(*attemptCtx) error) error {

	ctl := newTaskCtl()
	budget := e.cfg.TaskMaxAttempts
	next := 0
	var lastErr error
	type result struct {
		attempt int
		err     error
		dur     time.Duration
	}
	resCh := make(chan result, budget+1)
	running := 0

	// launch starts the next attempt that passes the legacy pre-body
	// injection gate; it returns false when the budget is exhausted.
	launch := func() bool {
		for next < budget {
			a := next
			next++
			if a > 0 {
				atomic.AddInt64(&js.taskRetries, 1)
			}
			if e.shouldInjectFailure(js.job, kind, task, a) {
				lastErr = fmt.Errorf("%w (%s task %d attempt %d)", errInjectedFailure, kind, task, a)
				continue
			}
			ac := &attemptCtx{
				e: e, js: js, ctl: ctl, kind: kind, task: task,
				attempt: a, node: e.taskNode(task, a), killed: ctl.killCh(a),
			}
			running++
			go func() {
				t0 := time.Now()
				err := body(ac)
				resCh <- result{a, err, time.Since(t0)}
			}()
			return true
		}
		return false
	}

	exhausted := func() error {
		return fmt.Errorf("%s task %d failed after %d attempts: %w", kind, task, budget, lastErr)
	}
	if !launch() {
		return exhausted()
	}

	var tick <-chan time.Time
	if e.cfg.Speculation {
		t := time.NewTicker(500 * time.Microsecond)
		defer t.Stop()
		tick = t.C
	}
	started := time.Now()
	backupAttempt := -1
	won := false

	for {
		select {
		case r := <-resCh:
			running--
			ctl.drop(r.attempt)
			switch {
			case r.err == nil:
				won = true
				durs[task] = r.dur
				js.noteDone(kind, r.dur)
				if r.attempt == backupAttempt && backupAttempt >= 0 {
					atomic.AddInt64(&js.specWins, 1)
				}
			case attemptNeutral(r.err):
				// A rival committed (or will commit) — this attempt's
				// temporaries are already reclaimed by the body.
				atomic.AddInt64(&js.killedAttempts, 1)
			default:
				lastErr = r.err
				// A dead engine context makes the failure non-retryable:
				// relaunching an attempt that will cancel at its first
				// checkpoint only burns the budget. Drain any rival still
				// running (it owns temp state to clean up) and report.
				if e.ctxErr() != nil {
					for running > 0 {
						<-resCh
						running--
					}
					return fmt.Errorf("%s task %d: %w", kind, task, r.err)
				}
				if errors.Is(r.err, hdfs.ErrNodeLost) && recover != nil {
					if rerr := recover(); rerr != nil {
						for running > 0 {
							<-resCh
							running--
						}
						return fmt.Errorf("%s task %d: %w", kind, task, rerr)
					}
				}
			}
			if won && running == 0 {
				return nil
			}
			if !won && running == 0 {
				if !launch() {
					return exhausted()
				}
			}
		case <-tick:
			if backupAttempt < 0 && !won && running == 1 && next < budget &&
				js.shouldSpeculate(kind, time.Since(started)) {
				if launch() {
					backupAttempt = next - 1
					atomic.AddInt64(&js.specLaunched, 1)
				}
			}
		}
	}
}
