package mapreduce

import (
	"fmt"
	"time"
)

// This file is the worker-side half of the Cluster seam: exported,
// DFS-free task execution built from the same sorting, combining, merging,
// and grouping internals the in-process engine uses, so a task executed on
// a remote worker produces byte-identical output to the same task executed
// locally. Workers always run the in-memory (no-spill) map path — the
// merge comparator orders pairs by (key, value), so any correct merge of
// the per-task sorted segments feeds reducers the exact same stream
// regardless of where (or how often) the maps ran.

// KV is one intermediate key/value pair in wire form: committed map output
// crosses the transport as ordered []KV segments, one per reduce partition.
type KV struct {
	Key, Value []byte
}

// RecordIter feeds input records to a remote task one at a time; ok=false
// ends the stream.
type RecordIter func() (record []byte, ok bool, err error)

// SliceRecords adapts an in-memory record slice (e.g. an RPC-fetched split)
// to a RecordIter.
func SliceRecords(recs [][]byte) RecordIter {
	i := 0
	return func() ([]byte, bool, error) {
		if i >= len(recs) {
			return nil, false, nil
		}
		r := recs[i]
		i++
		return r, true, nil
	}
}

// MapTaskResult is one executed map task's committed output: per-partition
// (key, value)-sorted, combiner-folded segments, plus the pre-combine
// map-output counters (Hadoop's "Map output records").
type MapTaskResult struct {
	Parts   [][]KV
	Records int64
	Bytes   int64
}

// ExecMapTask runs the map side of one task exactly as the local engine's
// in-memory path does: every record of the split goes through job.Mapper
// under the given input name, output pairs are partitioned, and each
// partition is sorted by (key, value) and folded through the job's
// combiner. The input name must be the name the job's Mapper expects —
// for a rebuilt plan, the worker-local input name in the split's position.
func ExecMapTask(job *Job, input string, nReducers int, next RecordIter) (*MapTaskResult, error) {
	partitioner := job.Partitioner
	if partitioner == nil {
		partitioner = HashPartitioner
	}
	// Budget 0 disables spilling, so the nil DFS is never touched.
	te := newTaskEmitter(nil, partitioner, nReducers, job.Combiner, 0, 0, nil)
	for {
		rec, ok, err := next()
		if err != nil {
			return nil, fmt.Errorf("map task (%s): %w", input, err)
		}
		if !ok {
			break
		}
		if err := job.Mapper.Map(input, rec, te); err != nil {
			return nil, fmt.Errorf("map task (%s): %w", input, err)
		}
	}
	if err := te.seal(); err != nil {
		return nil, fmt.Errorf("map task (%s): %w", input, err)
	}
	res := &MapTaskResult{Parts: make([][]KV, nReducers), Records: te.records, Bytes: te.bytes}
	for p, part := range te.parts {
		if len(part) == 0 {
			continue
		}
		out := make([]KV, len(part))
		for i, pair := range part {
			out[i] = KV{Key: pair.key, Value: pair.value}
		}
		res.Parts[p] = out
	}
	return res, nil
}

// TaskOutput is one reduce (or map-only) task's collected output records,
// ordered [job.Output, job.ExtraOutputs...] by output base. For reduce
// tasks, InPairs/InBytes count the merged shuffle input the task consumed —
// the per-partition load the skew metrics are computed from.
type TaskOutput struct {
	Outputs [][][]byte
	Groups  int64
	Records int64
	Bytes   int64
	InPairs int64
	InBytes int64
}

// memCollector buffers a task's output records per output base, keyed by
// the job's own (worker-local) output names. Records are copied — mappers
// and reducers may reuse their buffers, exactly as the DFS writers copy on
// Append in the local path.
type memCollector struct {
	out     *TaskOutput
	slots   map[string]int
	records int64
	bytes   int64
}

func newMemCollector(job *Job) *memCollector {
	c := &memCollector{
		out:   &TaskOutput{Outputs: make([][][]byte, 1+len(job.ExtraOutputs))},
		slots: make(map[string]int, len(job.ExtraOutputs)),
	}
	for i, eo := range job.ExtraOutputs {
		c.slots[eo] = i + 1
	}
	return c
}

func (c *memCollector) add(slot int, record []byte) {
	cp := make([]byte, len(record))
	copy(cp, record)
	c.out.Outputs[slot] = append(c.out.Outputs[slot], cp)
	c.records++
	c.bytes += int64(len(cp))
}

func (c *memCollector) Collect(record []byte) error {
	c.add(0, record)
	return nil
}

func (c *memCollector) CollectTo(output string, record []byte) error {
	slot, ok := c.slots[output]
	if !ok {
		return fmt.Errorf("mapreduce: CollectTo(%q): not a declared extra output", output)
	}
	c.add(slot, record)
	return nil
}

// ExecReduceTask runs the reduce side of one partition over the fetched map
// outputs: parts[t] is map task t's sorted segment for this partition (nil
// or empty when the map emitted nothing here). The merge, grouping, and
// reducer feed replicate the local engine's reduce loop, so the collected
// records match a local run byte for byte and in order.
func ExecReduceTask(job *Job, parts [][]KV) (*TaskOutput, error) {
	var sources []kvSource
	for _, part := range parts {
		if len(part) == 0 {
			continue
		}
		kvs := make([]kv, len(part))
		for i, p := range part {
			kvs[i] = kv{key: p.Key, value: p.Value}
		}
		sources = append(sources, &memSource{kvs: kvs})
	}
	reducer := job.StreamReducer
	if reducer == nil {
		reducer = adaptedReducer{job.Reducer}
	}
	mi, err := newMergeIter(sources)
	if err != nil {
		return nil, err
	}
	col := newMemCollector(job)
	g, err := newGroupIter(mi)
	if err != nil {
		return nil, err
	}
	for g.ok {
		vals := &groupValues{g: g, key: g.cur.key, head: true}
		col.out.Groups++
		if err := reducer.Reduce(g.cur.key, vals, col); err != nil {
			return nil, err
		}
		if err := vals.drain(); err != nil {
			return nil, err
		}
	}
	col.out.Records = col.records
	col.out.Bytes = col.bytes
	col.out.InPairs = g.pairs
	col.out.InBytes = g.bytes
	return col.out, nil
}

// ExecMapOnlyTask runs one map-only task: every record goes through
// job.MapOnly under the given (worker-local) input name, collecting
// straight into the task's output slots — the shuffle-free path.
func ExecMapOnlyTask(job *Job, input string, next RecordIter) (*TaskOutput, error) {
	return ExecMapOnlyTaskN(job, 0, input, nil, next)
}

// ExecMapOnlyTaskN is ExecMapOnlyTask with the task index and side input
// threaded through, for jobs using a per-task MapOnlyFactory (bucket-aligned
// map-only joins): the factory sees the real task index (== bucket index
// under WholeFileSplits) and the pre-fetched side-input records, and its
// Flush runs after the last record, exactly as in the local engine.
func ExecMapOnlyTaskN(job *Job, task int, input string, side [][]byte, next RecordIter) (*TaskOutput, error) {
	tm, err := job.taskMapper(task, side)
	if err != nil {
		return nil, fmt.Errorf("map task %d (%s): %w", task, input, err)
	}
	col := newMemCollector(job)
	for {
		rec, ok, err := next()
		if err != nil {
			return nil, fmt.Errorf("map task %d (%s): %w", task, input, err)
		}
		if !ok {
			break
		}
		if err := tm.MapRecord(input, rec, col); err != nil {
			return nil, fmt.Errorf("map task %d (%s): %w", task, input, err)
		}
	}
	if err := tm.Flush(col); err != nil {
		return nil, fmt.Errorf("map task %d (%s) flush: %w", task, input, err)
	}
	col.out.Records = col.records
	col.out.Bytes = col.bytes
	return col.out, nil
}

// OutputBases lists the job's output files in part order — the main output
// followed by the declared extra outputs — matching the Outputs slots of
// TaskOutput and the part files commitParts splices.
func (j *Job) OutputBases() []string {
	return append([]string{j.Output}, j.ExtraOutputs...)
}

// SummarizeTaskDurations condenses per-task wall-clock durations into a
// TaskSummary — exported so JobRunner implementations report the same
// phase-timing shape the local engine does.
func SummarizeTaskDurations(durs []time.Duration) TaskSummary {
	return summarizeTasks(durs)
}

// SkewOf reports max/mean over a per-partition load vector (0 when the
// total is 0) — exported so JobRunner implementations fill the same
// ReduceKeySkew/ReduceByteSkew metrics the local engine does.
func SkewOf(per []int64) float64 {
	return skewOf(per)
}
