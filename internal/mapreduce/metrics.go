package mapreduce

import (
	"time"
)

// JobMetrics records the cost profile of one executed job.
type JobMetrics struct {
	// Job is the job's name (Job.Name at submission).
	Job string

	// Map phase.
	MapInputRecords int64
	MapInputBytes   int64 // bytes scanned from the DFS
	MapTasks        int

	// Shuffle (map output). For map-only jobs these stay zero.
	MapOutputRecords int64
	MapOutputBytes   int64 // the paper's "shuffle cost": Σ len(key)+len(value)

	// Reduce phase.
	ReduceTasks         int
	ReduceInputGroups   int64
	ReduceOutputRecords int64
	ReduceOutputBytes   int64 // bytes written to the DFS

	// MaxReducePartitionRecords is the largest reduce partition's input
	// size; ReduceSkew normalizes it against a perfectly balanced shuffle
	// (1.0 = balanced, nReducers = everything on one reducer). The paper's
	// related work on reducer-routing strategies targets exactly this.
	MaxReducePartitionRecords int64
	ReduceSkew                float64

	// Spill (bounded-memory shuffle). All four stay zero when
	// EngineConfig.SortBufferBytes is unbounded except PeakSortBufferBytes,
	// which always reports the largest in-memory map-output buffer any
	// single map task held.
	SpilledRecords      int64 // records written to local-disk spill runs (post-combine)
	SpilledBytes        int64 // bytes written to local-disk spill runs
	MergePasses         int64 // external merge passes over spilled runs
	PeakSortBufferBytes int64

	// TaskRetries counts task attempts beyond the first (fault injection
	// or real failures recovered by the retry budget).
	TaskRetries int64

	Duration time.Duration
	MapOnly  bool
	Failed   bool
	Err      string
}

// Name returns the job's name.
//
// Deprecated: JobMetrics used to carry a Name field duplicating Job; use
// the Job field.
func (m JobMetrics) Name() string { return m.Job }

// WorkflowMetrics aggregates the jobs of one workflow run.
type WorkflowMetrics struct {
	Jobs []JobMetrics

	// Cycles is the number of MR cycles (jobs) executed, the paper's
	// workflow-length metric.
	Cycles int
	// FullScans counts jobs×inputs that scanned the main triple relation;
	// engines set this via CountScansOf.
	FullScans int

	Duration  time.Duration
	Failed    bool
	FailedJob string
	Err       string
}

// TotalMapOutputBytes sums shuffle bytes across jobs.
func (w *WorkflowMetrics) TotalMapOutputBytes() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.MapOutputBytes
	}
	return t
}

// TotalReduceOutputBytes sums DFS-write bytes across jobs (logical).
func (w *WorkflowMetrics) TotalReduceOutputBytes() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.ReduceOutputBytes
	}
	return t
}

// TotalMapInputBytes sums DFS-read bytes across jobs.
func (w *WorkflowMetrics) TotalMapInputBytes() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.MapInputBytes
	}
	return t
}

// TotalSpilledBytes sums local-disk spill bytes across jobs.
func (w *WorkflowMetrics) TotalSpilledBytes() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.SpilledBytes
	}
	return t
}

// TotalSpilledRecords sums spilled records across jobs.
func (w *WorkflowMetrics) TotalSpilledRecords() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.SpilledRecords
	}
	return t
}

// TotalMergePasses sums external merge passes across jobs.
func (w *WorkflowMetrics) TotalMergePasses() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.MergePasses
	}
	return t
}

// MaxPeakSortBufferBytes reports the largest sort buffer any map task of
// any job held — the workflow's per-task memory high-water mark.
func (w *WorkflowMetrics) MaxPeakSortBufferBytes() int64 {
	var t int64
	for _, j := range w.Jobs {
		if j.PeakSortBufferBytes > t {
			t = j.PeakSortBufferBytes
		}
	}
	return t
}
