package mapreduce

import (
	"sort"
	"time"
)

// TaskSummary condenses the wall-clock durations of one phase's tasks into
// the distribution shape that explains a slow job: the fastest, median, and
// slowest task, plus the straggler ratio (slowest ÷ median — ~1.0 means the
// phase was evenly balanced, large values mean one task gated the barrier).
type TaskSummary struct {
	Tasks            int
	Min, Median, Max time.Duration
	StragglerRatio   float64
}

// summarizeTasks computes a TaskSummary from per-task durations.
func summarizeTasks(durs []time.Duration) TaskSummary {
	if len(durs) == 0 {
		return TaskSummary{}
	}
	sorted := make([]time.Duration, len(durs))
	copy(sorted, durs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := TaskSummary{
		Tasks: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
	}
	if n := len(sorted); n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	if s.Median > 0 {
		s.StragglerRatio = float64(s.Max) / float64(s.Median)
	} else if s.Max > 0 {
		// Median below clock resolution: treat it as one nanosecond so the
		// ratio stays finite while still flagging the imbalance.
		s.StragglerRatio = float64(s.Max)
	} else {
		s.StragglerRatio = 1
	}
	return s
}

// skewOf normalizes the largest per-partition load against a perfectly
// balanced split: 1.0 = even, len(per) = everything on one partition.
func skewOf(per []int64) float64 {
	var total, max int64
	for _, v := range per {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(per)) / float64(total)
}

// JobMetrics records the cost profile of one executed job.
type JobMetrics struct {
	// Job is the job's name (Job.Name at submission).
	Job string

	// Map phase.
	MapInputRecords int64
	MapInputBytes   int64 // bytes scanned from the DFS
	MapTasks        int

	// Shuffle (map output). For map-only jobs these stay zero.
	MapOutputRecords int64
	MapOutputBytes   int64 // the paper's "shuffle cost": Σ len(key)+len(value)

	// Reduce phase.
	ReduceTasks         int
	ReduceInputGroups   int64
	ReduceOutputRecords int64
	ReduceOutputBytes   int64 // bytes written to the DFS

	// MaxReducePartitionRecords is the largest reduce partition's input
	// size; ReduceSkew normalizes it against a perfectly balanced shuffle
	// (1.0 = balanced, nReducers = everything on one reducer). The paper's
	// related work on reducer-routing strategies targets exactly this.
	MaxReducePartitionRecords int64
	ReduceSkew                float64

	// Spill (bounded-memory shuffle). All four stay zero when
	// EngineConfig.SortBufferBytes is unbounded except PeakSortBufferBytes,
	// which always reports the largest in-memory map-output buffer any
	// single map task held.
	SpilledRecords      int64 // records written to local-disk spill runs (post-combine)
	SpilledBytes        int64 // bytes written to local-disk spill runs
	MergePasses         int64 // external merge passes over spilled runs
	PeakSortBufferBytes int64

	// Per-task timing profiles. MapTaskStats covers the map (or map-only)
	// tasks, ReduceTaskStats the reduce tasks; both are populated on every
	// run (tracing not required).
	MapTaskStats    TaskSummary
	ReduceTaskStats TaskSummary

	// Per-reducer skew, normalized like ReduceSkew (1.0 = balanced,
	// ReduceTasks = everything on one reducer): ReduceKeySkew over distinct
	// key groups per reducer, ReduceByteSkew over reduce-input bytes per
	// reducer. Together with the record-based ReduceSkew these separate
	// "one hot key" from "many small keys hashed together".
	ReduceKeySkew  float64
	ReduceByteSkew float64

	// TaskRetries counts task attempts beyond the first (fault injection
	// or real failures recovered by the retry budget).
	TaskRetries int64

	// Fault-tolerance counters (see FaultPlan and EngineConfig.Speculation).
	// SpeculativeLaunched counts backup attempts started for straggling
	// tasks; SpeculativeWins counts tasks whose backup attempt committed
	// first; KilledAttempts counts attempts stopped (or finished too late)
	// because a rival attempt of the same task had already committed.
	SpeculativeLaunched int64
	SpeculativeWins     int64
	KilledAttempts      int64
	// NodeKills counts simulated data-node deaths injected during the job;
	// MapOutputRecoveries counts map tasks re-executed because their spill
	// runs died with a node; TempBytesReclaimed sums the attempt-private
	// bytes (temp part files, spill runs) deleted for failed, killed, or
	// race-losing attempts.
	NodeKills           int64
	MapOutputRecoveries int64
	TempBytesReclaimed  int64

	Duration time.Duration
	MapOnly  bool
	Failed   bool
	Err      string
}

// Name returns the job's name.
//
// Deprecated: JobMetrics used to carry a Name field duplicating Job; use
// the Job field.
func (m JobMetrics) Name() string { return m.Job }

// WorkflowMetrics aggregates the jobs of one workflow run.
type WorkflowMetrics struct {
	Jobs []JobMetrics

	// Cycles is the number of MR cycles (jobs) executed, the paper's
	// workflow-length metric.
	Cycles int
	// FullScans counts jobs×inputs that scanned the main triple relation;
	// engines set this via CountScansOf.
	FullScans int

	Duration  time.Duration
	Failed    bool
	FailedJob string
	Err       string
}

// TotalMapOutputBytes sums shuffle bytes across jobs.
func (w *WorkflowMetrics) TotalMapOutputBytes() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.MapOutputBytes
	}
	return t
}

// TotalReduceOutputBytes sums DFS-write bytes across jobs (logical).
func (w *WorkflowMetrics) TotalReduceOutputBytes() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.ReduceOutputBytes
	}
	return t
}

// TotalMapInputBytes sums DFS-read bytes across jobs.
func (w *WorkflowMetrics) TotalMapInputBytes() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.MapInputBytes
	}
	return t
}

// TotalSpilledBytes sums local-disk spill bytes across jobs.
func (w *WorkflowMetrics) TotalSpilledBytes() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.SpilledBytes
	}
	return t
}

// TotalSpilledRecords sums spilled records across jobs.
func (w *WorkflowMetrics) TotalSpilledRecords() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.SpilledRecords
	}
	return t
}

// TotalMergePasses sums external merge passes across jobs.
func (w *WorkflowMetrics) TotalMergePasses() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.MergePasses
	}
	return t
}

// TotalTaskRetries sums task attempts beyond the first across jobs.
func (w *WorkflowMetrics) TotalTaskRetries() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.TaskRetries
	}
	return t
}

// TotalSpeculativeLaunched sums speculative backup attempts across jobs.
func (w *WorkflowMetrics) TotalSpeculativeLaunched() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.SpeculativeLaunched
	}
	return t
}

// TotalSpeculativeWins sums backup attempts that won their race across jobs.
func (w *WorkflowMetrics) TotalSpeculativeWins() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.SpeculativeWins
	}
	return t
}

// TotalKilledAttempts sums attempts killed by a committed rival across jobs.
func (w *WorkflowMetrics) TotalKilledAttempts() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.KilledAttempts
	}
	return t
}

// TotalNodeKills sums injected node deaths across jobs.
func (w *WorkflowMetrics) TotalNodeKills() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.NodeKills
	}
	return t
}

// TotalMapOutputRecoveries sums map tasks re-executed after losing their
// spill runs to a node death, across jobs.
func (w *WorkflowMetrics) TotalMapOutputRecoveries() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.MapOutputRecoveries
	}
	return t
}

// TotalTempBytesReclaimed sums attempt-private bytes reclaimed from failed,
// killed, or race-losing attempts across jobs.
func (w *WorkflowMetrics) TotalTempBytesReclaimed() int64 {
	var t int64
	for _, j := range w.Jobs {
		t += j.TempBytesReclaimed
	}
	return t
}

// MaxStragglerRatio reports the worst task-duration straggler ratio of any
// phase of any job — the workflow's load-balance low point.
func (w *WorkflowMetrics) MaxStragglerRatio() float64 {
	var t float64
	for _, j := range w.Jobs {
		if j.MapTaskStats.StragglerRatio > t {
			t = j.MapTaskStats.StragglerRatio
		}
		if j.ReduceTaskStats.StragglerRatio > t {
			t = j.ReduceTaskStats.StragglerRatio
		}
	}
	return t
}

// MaxReduceKeySkew reports the worst per-reducer key skew of any job.
func (w *WorkflowMetrics) MaxReduceKeySkew() float64 {
	var t float64
	for _, j := range w.Jobs {
		if j.ReduceKeySkew > t {
			t = j.ReduceKeySkew
		}
	}
	return t
}

// MaxReduceByteSkew reports the worst per-reducer input-byte skew of any job.
func (w *WorkflowMetrics) MaxReduceByteSkew() float64 {
	var t float64
	for _, j := range w.Jobs {
		if j.ReduceByteSkew > t {
			t = j.ReduceByteSkew
		}
	}
	return t
}

// MaxPeakSortBufferBytes reports the largest sort buffer any map task of
// any job held — the workflow's per-task memory high-water mark.
func (w *WorkflowMetrics) MaxPeakSortBufferBytes() int64 {
	var t int64
	for _, j := range w.Jobs {
		if j.PeakSortBufferBytes > t {
			t = j.PeakSortBufferBytes
		}
	}
	return t
}
