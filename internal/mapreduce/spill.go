package mapreduce

import (
	"fmt"
	"time"

	"ntga/internal/codec"
	"ntga/internal/hdfs"
	"ntga/internal/trace"
)

// This file implements the bounded-memory half of the shuffle: map tasks
// buffer emitted pairs up to EngineConfig.SortBufferBytes (io.sort.mb),
// then sort, combine, and spill a run to node-local disk; reduce tasks
// external-merge the spilled runs with the surviving in-memory segments
// (io.sort.factor) and feed the reducer through a streaming group iterator.
//
// Run format: each record is codec-framed as PutBytes(key) PutBytes(value),
// concatenated per reduce partition; a runSeg records each partition's byte
// range and record count within the run.

// runSeg locates one reduce partition's slice of a spill run.
type runSeg struct {
	off     int
	len     int
	records int
}

// spillRun is one sorted, partitioned run on node-local disk.
type spillRun struct {
	spill *hdfs.Spill
	segs  []runSeg // indexed by reduce partition
}

func (r *spillRun) release() { r.spill.Release() }

// taskEmitter buffers one map task's output, partitioned by reducer,
// spilling sorted runs to local disk whenever the buffer exceeds the sort
// budget. A budget of zero keeps everything in memory (no spilling).
type taskEmitter struct {
	dfs         *hdfs.DFS
	partitioner Partitioner
	nReducers   int
	combiner    Combiner
	budget      int64
	// node pins the attempt's spill runs to its own data node, so a node
	// death loses exactly that node's map output; cp (nil-safe) is the
	// attempt's fault checkpoint, fired inside every buffer spill.
	node int
	cp   func(phase string) error

	parts        [][]kv
	buffered     int64 // bytes currently in parts
	peakBuffered int64

	// Map-output counters are pre-combine (Hadoop's "Map output records"),
	// spill counters post-combine ("Spilled Records").
	records        int64
	bytes          int64
	spilledRecords int64
	spilledBytes   int64

	runs   []*spillRun
	sealed bool

	// traced turns on per-spill wall-clock profiling; the engine replays the
	// recorded profiles as spill phases on the map task's span.
	traced bool
	spills []spillProfile
}

// spillProfile is the timing/IO record of one buffer spill, kept so the
// engine can emit spill phases (and subtract their time from the fused map
// phase) after the task finishes.
type spillProfile struct {
	dur     time.Duration
	records int64
	bytes   int64
}

func newTaskEmitter(dfs *hdfs.DFS, p Partitioner, nReducers int, combiner Combiner, budget int64, node int, cp func(string) error) *taskEmitter {
	return &taskEmitter{
		dfs: dfs, partitioner: p, nReducers: nReducers,
		combiner: combiner, budget: budget, node: node, cp: cp,
		parts: make([][]kv, nReducers),
	}
}

func (t *taskEmitter) Emit(key, value []byte) error {
	p := t.partitioner(key, t.nReducers)
	if p < 0 || p >= t.nReducers {
		return fmt.Errorf("mapreduce: partitioner returned %d for %d reducers", p, t.nReducers)
	}
	k := make([]byte, len(key))
	copy(k, key)
	v := make([]byte, len(value))
	copy(v, value)
	t.parts[p] = append(t.parts[p], kv{k, v})
	t.records++
	t.bytes += int64(len(k) + len(v))
	t.buffered += int64(len(k) + len(v))
	if t.buffered > t.peakBuffered {
		t.peakBuffered = t.buffered
	}
	if t.budget > 0 && t.buffered >= t.budget {
		return t.spillBuffer()
	}
	return nil
}

// combine folds a (key,value)-sorted segment through the job's combiner;
// without one the segment passes through unchanged.
func (t *taskEmitter) combine(part []kv) ([]kv, error) {
	if t.combiner == nil || len(part) == 0 {
		return part, nil
	}
	combined := make([]kv, 0, len(part))
	for i := 0; i < len(part); {
		j := i + 1
		for j < len(part) && compareBytes(part[j].key, part[i].key) == 0 {
			j++
		}
		values := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, part[k].value)
		}
		folded, err := t.combiner.Combine(part[i].key, values)
		if err != nil {
			return nil, err
		}
		for _, v := range folded {
			combined = append(combined, kv{part[i].key, v})
		}
		i = j
	}
	// Combiner output order within a key is the combiner's business; re-sort
	// so segments stay (key, value)-ordered for the merge.
	sortKVs(combined)
	return combined, nil
}

// spillBuffer sorts, combines, and writes every buffered partition as one
// run on node-local disk, then resets the buffer.
func (t *taskEmitter) spillBuffer() error {
	if t.buffered == 0 {
		return nil
	}
	if t.cp != nil {
		if err := t.cp("spill"); err != nil {
			return err
		}
	}
	var spillStart time.Time
	var recsBefore int64
	if t.traced {
		spillStart = time.Now()
		recsBefore = t.spilledRecords
	}
	w := t.dfs.CreateSpillOn(t.node)
	run := &spillRun{segs: make([]runSeg, t.nReducers)}
	buf := codec.NewBuffer(256)
	off := 0
	for p := range t.parts {
		sortKVs(t.parts[p])
		part, err := t.combine(t.parts[p])
		if err != nil {
			w.Abort()
			return err
		}
		start := off
		for _, pair := range part {
			buf.Reset()
			buf.PutBytes(pair.key)
			buf.PutBytes(pair.value)
			n, err := w.Write(buf.Bytes())
			if err != nil {
				w.Abort()
				return err
			}
			off += n
		}
		run.segs[p] = runSeg{off: start, len: off - start, records: len(part)}
		t.spilledRecords += int64(len(part))
		t.parts[p] = nil
	}
	t.spilledBytes += int64(off)
	run.spill = w.Close()
	t.runs = append(t.runs, run)
	t.buffered = 0
	if t.traced {
		t.spills = append(t.spills, spillProfile{
			dur:     time.Since(spillStart),
			records: t.spilledRecords - recsBefore,
			bytes:   int64(off),
		})
	}
	return nil
}

// seal sorts (and combines) the final in-memory segment of every partition.
// Called once at the end of a successful map attempt; the reduce phase then
// merges t.parts with t.runs.
func (t *taskEmitter) seal() error {
	for p := range t.parts {
		sortKVs(t.parts[p])
		part, err := t.combine(t.parts[p])
		if err != nil {
			return err
		}
		t.parts[p] = part
	}
	t.sealed = true
	return nil
}

// discard releases every spill run the task wrote — called when a spilled
// attempt fails (so retries do not leak local disk) and at job end.
// Releasing a run lost to a node death is a no-op.
func (t *taskEmitter) discard() {
	for _, r := range t.runs {
		r.release()
	}
	t.runs = nil
}

// lost reports whether any of the emitter's spill runs died with its node
// — the task's map output is incomplete and must be regenerated.
func (t *taskEmitter) lost() bool {
	for _, r := range t.runs {
		if r.spill.Lost() {
			return true
		}
	}
	return false
}

// kvSource yields (key,value) pairs in nondecreasing (key,value) order.
type kvSource interface {
	next() (kv, bool, error)
}

// memSource iterates a sorted in-memory segment.
type memSource struct {
	kvs []kv
	i   int
}

func (s *memSource) next() (kv, bool, error) {
	if s.i >= len(s.kvs) {
		return kv{}, false, nil
	}
	p := s.kvs[s.i]
	s.i++
	return p, true, nil
}

// runSource decodes one partition segment of an on-disk run, charging
// spill-read accounting as records are consumed.
type runSource struct {
	spill     *hdfs.Spill
	r         *codec.Reader
	remaining int
}

func newRunSource(spill *hdfs.Spill, seg runSeg) *runSource {
	return &runSource{
		spill:     spill,
		r:         codec.NewReader(spill.Slice(seg.off, seg.len)),
		remaining: seg.records,
	}
}

func (s *runSource) next() (kv, bool, error) {
	if s.remaining == 0 {
		return kv{}, false, nil
	}
	if s.spill.Lost() {
		return kv{}, false, fmt.Errorf("mapreduce: spill run read: %w", hdfs.ErrNodeLost)
	}
	before := s.r.Remaining()
	key, err := s.r.Bytes()
	if err != nil {
		return kv{}, false, fmt.Errorf("mapreduce: corrupt spill run: %w", err)
	}
	value, err := s.r.Bytes()
	if err != nil {
		return kv{}, false, fmt.Errorf("mapreduce: corrupt spill run: %w", err)
	}
	s.remaining--
	s.spill.ChargeRead(int64(before - s.r.Remaining()))
	return kv{key, value}, true, nil
}

// mergeIter is a loser-free binary-heap merge of sorted kv sources.
type mergeIter struct {
	h []mergeItem
}

type mergeItem struct {
	head kv
	src  kvSource
}

func newMergeIter(sources []kvSource) (*mergeIter, error) {
	m := &mergeIter{h: make([]mergeItem, 0, len(sources))}
	for _, s := range sources {
		p, ok, err := s.next()
		if err != nil {
			return nil, err
		}
		if ok {
			m.h = append(m.h, mergeItem{p, s})
		}
	}
	for i := len(m.h)/2 - 1; i >= 0; i-- {
		m.down(i)
	}
	return m, nil
}

func (m *mergeIter) less(a, b int) bool {
	c := compareBytes(m.h[a].head.key, m.h[b].head.key)
	if c != 0 {
		return c < 0
	}
	return compareBytes(m.h[a].head.value, m.h[b].head.value) < 0
}

func (m *mergeIter) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(m.h) && m.less(l, least) {
			least = l
		}
		if r < len(m.h) && m.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		m.h[i], m.h[least] = m.h[least], m.h[i]
		i = least
	}
}

func (m *mergeIter) next() (kv, bool, error) {
	if len(m.h) == 0 {
		return kv{}, false, nil
	}
	top := m.h[0].head
	p, ok, err := m.h[0].src.next()
	if err != nil {
		return kv{}, false, err
	}
	if ok {
		m.h[0].head = p
	} else {
		m.h[0] = m.h[len(m.h)-1]
		m.h = m.h[:len(m.h)-1]
	}
	if len(m.h) > 1 {
		m.down(0)
	}
	return top, true, nil
}

// groupIter slices a sorted kv stream into reduce groups.
type groupIter struct {
	m   *mergeIter
	cur kv
	ok  bool
	// pairs counts every pair consumed from the merge (the partition's
	// post-combine record count, for the skew metric); bytes sums their
	// key+value sizes (for the byte-skew metric and reduce-span IO).
	pairs int64
	bytes int64
}

func newGroupIter(m *mergeIter) (*groupIter, error) {
	g := &groupIter{m: m}
	var err error
	g.cur, g.ok, err = m.next()
	if g.ok {
		g.pairs++
		g.bytes += int64(len(g.cur.key) + len(g.cur.value))
	}
	return g, err
}

// groupValues is the ValueIter for the current group. The engine drains it
// after the reducer returns, so a reducer may stop early.
type groupValues struct {
	g    *groupIter
	key  []byte
	head bool // g.cur is this group's next unconsumed value
	done bool
}

func (v *groupValues) Next() ([]byte, bool, error) {
	if v.done {
		return nil, false, nil
	}
	g := v.g
	if v.head {
		v.head = false
		return g.cur.value, true, nil
	}
	p, ok, err := g.m.next()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		g.ok = false
		v.done = true
		return nil, false, nil
	}
	g.cur = p
	g.pairs++
	g.bytes += int64(len(p.key) + len(p.value))
	if compareBytes(p.key, v.key) != 0 {
		v.done = true
		return nil, false, nil
	}
	return p.value, true, nil
}

func (v *groupValues) drain() error {
	for {
		_, ok, err := v.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// adaptedReducer presents a slice-based Reducer as a StreamReducer by
// materializing each group's values.
type adaptedReducer struct{ r Reducer }

func (a adaptedReducer) Reduce(key []byte, values ValueIter, out Collector) error {
	var vals [][]byte
	for {
		v, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		vals = append(vals, v)
	}
	return a.r.Reduce(key, vals, out)
}

// mergeRuns reduces the number of on-disk runs to at most factor by
// merging batches of runs into new single-segment runs on the attempt's
// local disk, one merge pass per batch (Hadoop's multi-pass external merge
// under io.sort.factor). It returns the surviving sources plus the
// temporary runs it created, which the caller must release when the reduce
// attempt finishes. In-memory segments never count against the factor.
// Each batch merged is recorded as a merge phase on tsp (nil-safe no-op)
// and passes one fault checkpoint.
func (e *Engine) mergeRuns(srcs []*runSource, factor int, tsp *trace.Span, ac *attemptCtx, passes, spilledRecs, spilledBytes *int64) ([]*runSource, []*spillRun, error) {
	var temps []*spillRun
	traced := tsp != nil
	for len(srcs) > factor {
		if err := ac.checkpoint("merge"); err != nil {
			return srcs, temps, err
		}
		var passStart time.Time
		if traced {
			passStart = time.Now()
		}
		batch := make([]kvSource, factor)
		for i, s := range srcs[:factor] {
			batch[i] = s
		}
		mi, err := newMergeIter(batch)
		if err != nil {
			return srcs, temps, err
		}
		w := e.dfs.CreateSpillOn(ac.node)
		buf := codec.NewBuffer(256)
		off, nrec := 0, 0
		for {
			p, ok, err := mi.next()
			if err != nil {
				w.Abort()
				return srcs, temps, err
			}
			if !ok {
				break
			}
			buf.Reset()
			buf.PutBytes(p.key)
			buf.PutBytes(p.value)
			n, err := w.Write(buf.Bytes())
			if err != nil {
				w.Abort()
				return srcs, temps, err
			}
			off += n
			nrec++
		}
		run := &spillRun{
			spill: w.Close(),
			segs:  []runSeg{{off: 0, len: off, records: nrec}},
		}
		temps = append(temps, run)
		*passes++
		*spilledRecs += int64(nrec)
		*spilledBytes += int64(off)
		if traced {
			tsp.AddPhase(trace.KindMerge, "merge", time.Since(passStart), int64(nrec), int64(off))
		}
		srcs = append([]*runSource{newRunSource(run.spill, run.segs[0])}, srcs[factor:]...)
	}
	return srcs, temps, nil
}
