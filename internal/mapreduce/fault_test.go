package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"ntga/internal/hdfs"
	"ntga/internal/trace"
)

// chaosLines builds a seeded wordcount corpus big enough for several map
// splits and non-trivial reduce partitions.
func chaosLines(n int) [][]byte {
	var lines [][]byte
	for j := 0; j < n; j++ {
		lines = append(lines, []byte(fmt.Sprintf("w%d w%d w%d", j%7, j%13, j%3)))
	}
	return lines
}

// runWordCount writes the corpus, runs the job, and returns the metrics and
// output records.
func runWordCount(t *testing.T, e *Engine, lines [][]byte) (JobMetrics, [][]byte) {
	t.Helper()
	if err := e.DFS().WriteFile("in", lines); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run(wordCountJob("in", "out"))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out, err := e.DFS().ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	return m, out
}

// assertNoResidue fails if a finished run left attempt-scoped temporaries in
// the DFS namespace or bytes on the node-local spill disks.
func assertNoResidue(t *testing.T, e *Engine) {
	t.Helper()
	if tmps := e.DFS().ListPrefix("_tmp/"); len(tmps) != 0 {
		t.Errorf("leaked attempt temporaries: %v", tmps)
	}
	if used := e.DFS().SpillUsed(); used != 0 {
		t.Errorf("residual local spill bytes: %d", used)
	}
}

func sameRecords(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestMidPhaseChaosByteIdenticalOutput(t *testing.T) {
	// Mid-phase faults interrupt attempts that already hold partial state —
	// buffered map output, spill runs, half-written temp part files. With a
	// generous attempt budget the job must still complete with output
	// byte-identical to a fault-free run, and every attempt-private byte
	// must be reclaimed.
	lines := chaosLines(40)
	clean := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}),
		EngineConfig{SplitRecords: 8, DefaultReducers: 3, SortBufferBytes: 64, MergeFactor: 2})
	_, want := runWordCount(t, clean, lines)

	sawRetries := false
	sawReclaim := false
	for seed := int64(1); seed <= 8; seed++ {
		e := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}),
			EngineConfig{SplitRecords: 8, DefaultReducers: 3, SortBufferBytes: 64,
				MergeFactor: 2, TaskMaxAttempts: 8,
				Faults: &FaultPlan{Rate: 0.08, Seed: seed, MidPhase: true}})
		m, got := runWordCount(t, e, lines)
		if !sameRecords(want, got) {
			t.Fatalf("seed %d: chaos output differs from fault-free run", seed)
		}
		assertNoResidue(t, e)
		sawRetries = sawRetries || m.TaskRetries > 0
		sawReclaim = sawReclaim || m.TempBytesReclaimed > 0
	}
	if !sawRetries {
		t.Error("no seed triggered a mid-phase retry — fault plan is not firing")
	}
	if !sawReclaim {
		t.Error("no seed reclaimed attempt-private bytes — failed attempts left no cleanup work")
	}
}

func TestMidPhaseChaosBudgetExhaustionFailsClean(t *testing.T) {
	// Certain mid-phase failure: every attempt dies at its first checkpoint.
	// The job must fail with the injected error and sweep every temporary.
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 2}),
		EngineConfig{SplitRecords: 4, DefaultReducers: 2, TaskMaxAttempts: 2,
			Faults: &FaultPlan{Rate: 1.0, Seed: 3, MidPhase: true}})
	if err := e.DFS().WriteFile("in", chaosLines(8)); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run(wordCountJob("in", "out"))
	if err == nil {
		t.Fatal("job with certain mid-phase failure succeeded")
	}
	if !errors.Is(err, errInjectedFailure) {
		t.Errorf("err = %v, want injected failure", err)
	}
	if !m.Failed {
		t.Error("metrics not marked failed")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Errorf("err = %v, want exhaustion after the full 2-attempt budget", err)
	}
	// Failure-path metrics still fold the recovery counters: exhausting a
	// 2-attempt budget means at least one retry was burned and recorded.
	if m.TaskRetries == 0 {
		t.Error("failed job folded no task retries")
	}
	if e.DFS().Exists("out") {
		t.Error("failed job left output")
	}
	assertNoResidue(t, e)
}

func TestNodeFailureRecoversMapOutput(t *testing.T) {
	// A fault that escalates to a node kill takes the node's local spill
	// disk with it. A reduce attempt that trips over the lost map output
	// must trigger map re-execution (on a live node, with fresh attempt
	// numbers), and the job must still produce byte-identical output.
	// Serial task execution keeps each seeded run fully deterministic; the
	// seed scan finds one whose kill lands after map output was spilled.
	lines := chaosLines(40)
	clean := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}),
		EngineConfig{SplitRecords: 8, DefaultReducers: 3, SortBufferBytes: 64, MergeFactor: 2})
	_, want := runWordCount(t, clean, lines)

	recovered := false
	for seed := int64(1); seed <= 200 && !recovered; seed++ {
		e := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}),
			EngineConfig{SplitRecords: 8, DefaultReducers: 3, SortBufferBytes: 64,
				MergeFactor: 2, TaskMaxAttempts: 8, MapParallelism: 1, ReduceParallelism: 1,
				Faults: &FaultPlan{Rate: 0.02, Seed: seed, MidPhase: true,
					NodeFailureRate: 1.0, MaxNodeKills: 1}})
		m, got := runWordCount(t, e, lines)
		if !sameRecords(want, got) {
			t.Fatalf("seed %d: output differs from fault-free run after node failure", seed)
		}
		assertNoResidue(t, e)
		if m.NodeKills > 0 {
			if int64(e.DFS().NodesKilled()) != m.NodeKills {
				t.Errorf("seed %d: metrics report %d node kills, DFS reports %d",
					seed, m.NodeKills, e.DFS().NodesKilled())
			}
			if m.NodeKills > 0 && m.MapOutputRecoveries > 0 {
				recovered = true
			}
		}
	}
	if !recovered {
		t.Fatal("no seed produced a node kill that forced map-output recovery")
	}
}

// specPlanWorks reports whether, under the given straggler plan, reduce task
// straggler's first attempt sleeps at its entry checkpoint while its backup
// attempt and every other first attempt run clean — the shape that lets a
// speculative backup win. The draw simulation mirrors checkpoint():
// maps see (scan,1)(map,2)(sort,3); reduces see (reduce,1) then either
// (reduce,2)(write,3) or, for an empty partition, (write,2).
func specPlanWorks(job string, nMaps, nReduces int, straggler int, p *FaultPlan) bool {
	draw := func(kind string, task, attempt int, phase string, seq int) float64 {
		return chaosDraw(job, kind, task, attempt, phase, seq, "straggle", p.Seed)
	}
	for t := 0; t < nMaps; t++ {
		for _, c := range []struct {
			phase string
			seq   int
		}{{"scan", 1}, {"map", 2}, {"sort", 3}} {
			if draw("map", t, 0, c.phase, c.seq) < p.StragglerRate {
				return false
			}
		}
	}
	cleanAttempt := func(task, attempt int) bool {
		for _, c := range []struct {
			phase string
			seq   int
		}{{"reduce", 1}, {"reduce", 2}, {"write", 2}, {"write", 3}} {
			if draw("reduce", task, attempt, c.phase, c.seq) < p.StragglerRate {
				return false
			}
		}
		return true
	}
	for t := 0; t < nReduces; t++ {
		if t == straggler {
			continue
		}
		if !cleanAttempt(t, 0) {
			return false
		}
	}
	// The straggler's first attempt must sleep before doing any work, and
	// its backup must run clean.
	return draw("reduce", straggler, 0, "reduce", 1) < p.StragglerRate &&
		cleanAttempt(straggler, 1)
}

func TestSpeculationBeatsStragglingReducer(t *testing.T) {
	// One reduce attempt draws a 120ms injected straggle; its siblings
	// finish in microseconds. Without speculation the job waits out the full
	// sleep; with speculation a backup attempt commits first and the sleeper
	// is killed, strictly reducing wall-clock.
	const nReduces = 3
	lines := chaosLines(40)
	clean := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}),
		EngineConfig{SplitRecords: 8, DefaultReducers: nReduces})
	cm, want := runWordCount(t, clean, lines)

	plan := &FaultPlan{StragglerRate: 0.15, StragglerDelay: 120 * time.Millisecond}
	found := false
	for seed := int64(1); seed <= 2000 && !found; seed++ {
		plan.Seed = seed
		for s := 0; s < nReduces; s++ {
			if specPlanWorks("wordcount", cm.MapTasks, nReduces, s, plan) {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no seed isolates a single straggling reduce attempt")
	}

	mk := func(speculate bool) *Engine {
		return NewEngine(hdfs.New(hdfs.Config{Nodes: 4}),
			EngineConfig{SplitRecords: 8, DefaultReducers: nReduces, TaskMaxAttempts: 4,
				MapParallelism: 4, ReduceParallelism: 4,
				Faults: plan, Speculation: speculate})
	}
	off, offOut := runWordCount(t, mk(false), lines)
	on, onOut := runWordCount(t, mk(true), lines)

	if !sameRecords(want, offOut) || !sameRecords(want, onOut) {
		t.Fatal("straggler runs changed the output")
	}
	if off.Duration < plan.StragglerDelay {
		t.Fatalf("speculation-off run finished in %v, expected to wait out the %v straggle",
			off.Duration, plan.StragglerDelay)
	}
	if on.SpeculativeLaunched == 0 || on.SpeculativeWins == 0 {
		t.Fatalf("speculation did not engage: launched=%d wins=%d",
			on.SpeculativeLaunched, on.SpeculativeWins)
	}
	if on.KilledAttempts == 0 {
		t.Error("winning backup did not kill the straggling attempt")
	}
	if on.Duration >= off.Duration {
		t.Errorf("speculation did not reduce wall-clock: on=%v off=%v", on.Duration, off.Duration)
	}
	if off.SpeculativeLaunched != 0 {
		t.Errorf("speculation-off run launched %d backups", off.SpeculativeLaunched)
	}
}

func TestStageFailureLeavesEarlierStageIntact(t *testing.T) {
	// A job that dies mid-flight — including one whose attempts were killed
	// inside their write phase — must not corrupt the committed outputs of
	// an earlier stage: temp-scoped writes never touch published names.
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}),
		EngineConfig{SplitRecords: 2, DefaultReducers: 3, TaskMaxAttempts: 2})
	if err := e.DFS().WriteFile("in", chaosLines(24)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(wordCountJob("in", "mid")); err != nil {
		t.Fatal(err)
	}
	midBefore, err := e.DFS().ReadAll("mid")
	if err != nil {
		t.Fatal(err)
	}

	e.cfg.Faults = &FaultPlan{Rate: 1.0, Seed: 9, MidPhase: true}
	if _, err := e.Run(wordCountJob("mid", "out")); err == nil {
		t.Fatal("stage 2 with certain failure succeeded")
	}
	if e.DFS().Exists("out") {
		t.Error("failed stage left partial output under its final name")
	}
	midAfter, err := e.DFS().ReadAll("mid")
	if err != nil {
		t.Fatalf("stage 1 output unreadable after stage 2 failure: %v", err)
	}
	if !sameRecords(midBefore, midAfter) {
		t.Error("stage 2 failure corrupted stage 1 output")
	}
	assertNoResidue(t, e)
}

func TestNodeDeathPreservesCommittedDFSFiles(t *testing.T) {
	// DFS blocks are replicated; only node-local spill disks die with a
	// node. A later stage that loses a node must still read the earlier
	// stage's committed output — and its own output must match a clean run.
	lines := chaosLines(32)
	clean := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}),
		EngineConfig{SplitRecords: 2, DefaultReducers: 3, SortBufferBytes: 64})
	if err := clean.DFS().WriteFile("in", lines); err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Run(wordCountJob("in", "mid")); err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Run(wordCountJob("mid", "out")); err != nil {
		t.Fatal(err)
	}
	wantMid, _ := clean.DFS().ReadAll("mid")
	wantOut, _ := clean.DFS().ReadAll("out")

	killed := false
	for seed := int64(1); seed <= 200 && !killed; seed++ {
		e := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}),
			EngineConfig{SplitRecords: 2, DefaultReducers: 3, SortBufferBytes: 64,
				TaskMaxAttempts: 8, MapParallelism: 1, ReduceParallelism: 1})
		if err := e.DFS().WriteFile("in", lines); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(wordCountJob("in", "mid")); err != nil {
			t.Fatal(err)
		}
		e.cfg.Faults = &FaultPlan{Rate: 0.02, Seed: seed, MidPhase: true,
			NodeFailureRate: 1.0, MaxNodeKills: 1}
		m, err := e.Run(wordCountJob("mid", "out"))
		if err != nil {
			t.Fatalf("seed %d: stage 2 failed: %v", seed, err)
		}
		if m.NodeKills == 0 {
			continue
		}
		killed = true
		gotMid, err := e.DFS().ReadAll("mid")
		if err != nil {
			t.Fatalf("seed %d: stage 1 output unreadable after node death: %v", seed, err)
		}
		if !sameRecords(wantMid, gotMid) {
			t.Errorf("seed %d: node death corrupted stage 1 output", seed)
		}
		gotOut, _ := e.DFS().ReadAll("out")
		if !sameRecords(wantOut, gotOut) {
			t.Errorf("seed %d: stage 2 output differs after node death", seed)
		}
		assertNoResidue(t, e)
	}
	if !killed {
		t.Fatal("no seed produced a node kill in stage 2")
	}
}

func TestChaosTraceDeterministicSpanTree(t *testing.T) {
	// Mid-phase chaos produces partial attempt spans (an attempt that died
	// in its sort phase traces scan+map but no sort). The span tree must
	// still be identical across runs of the same seeded plan, with retried
	// attempts visible by number.
	run := func(seed int64) string {
		tr := trace.New()
		e := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}), EngineConfig{
			SplitRecords: 8, DefaultReducers: 3, SortBufferBytes: 64, MergeFactor: 2,
			TaskMaxAttempts: 8, Tracer: tr,
			Faults: &FaultPlan{Rate: 0.05, Seed: seed, MidPhase: true},
		})
		if err := e.DFS().WriteFile("in", chaosLines(64)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.RunWorkflowNamed("chaos-wf", []Stage{
			{wordCountJob("in", "mid")},
			{wordCountJob("mid", "out")},
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return trace.TreeString(tr.Roots())
	}
	for seed := int64(1); seed <= 20; seed++ {
		s1 := run(seed)
		if !strings.Contains(s1, "attempt=1") {
			continue // this seed injected no mid-phase failure; try the next
		}
		s2 := run(seed)
		if s1 != s2 {
			t.Fatalf("seed %d: span trees differ between identical chaos runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
				seed, s1, s2)
		}
		return
	}
	t.Fatal("no seed produced a retried (attempt=1) span")
}
