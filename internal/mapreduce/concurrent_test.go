package mapreduce

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ntga/internal/hdfs"
)

// Tests for the serving-era engine features: per-workflow temp
// namespacing, context cancellation, slot-pool scheduling, and the
// extended config validation.

func TestEngineConfigValidateNegative(t *testing.T) {
	cases := []struct {
		name string
		cfg  EngineConfig
		want string
	}{
		{"map parallelism", EngineConfig{MapParallelism: -1}, "MapParallelism"},
		{"reduce parallelism", EngineConfig{ReduceParallelism: -3}, "ReduceParallelism"},
		{"task max attempts", EngineConfig{TaskMaxAttempts: -2}, "TaskMaxAttempts"},
		{"merge factor", EngineConfig{MergeFactor: 1}, "MergeFactor"},
		{"sort buffer", EngineConfig{SortBufferBytes: -1}, "SortBufferBytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(hdfs.New(hdfs.Config{Nodes: 2}), tc.cfg)
			if err := e.DFS().WriteFile("in", [][]byte{[]byte("a b")}); err != nil {
				t.Fatal(err)
			}
			m, err := e.Run(wordCountJob("in", "out"))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Run with %s = %v, want error mentioning %q", tc.name, err, tc.want)
			}
			if !m.Failed {
				t.Error("metrics not marked failed")
			}
		})
	}
	// Zeros select defaults and must stay valid.
	if err := (EngineConfig{}).withDefaults().validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
}

// TestFailedJobSweepsOnlyItsOwnWorkflow is the temp-namespace collision
// regression: engines reuse fixed job names ("ntga-group", ...), so before
// temps were scoped by workflow ID, a failing job's sweep of
// "_tmp/<job>/" would delete the attempt files of every OTHER in-flight
// workflow running a job with the same name, breaking its commit renames.
// The test holds one workflow's task open mid-write, fails a same-named
// job on a second engine over the same DFS, and requires the survivor to
// commit untouched.
func TestFailedJobSweepsOnlyItsOwnWorkflow(t *testing.T) {
	dfs := hdfs.New(hdfs.Config{Nodes: 2})
	if err := dfs.WriteFile("in", [][]byte{[]byte("x"), []byte("y")}); err != nil {
		t.Fatal(err)
	}

	proceed := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	blockingJob := &Job{
		Name:   "shared-name",
		Inputs: []string{"in"},
		Output: "out-a",
		MapOnly: MapOnlyFunc(func(_ string, rec []byte, col Collector) error {
			// Announce that attempt temp files exist, then hold them open
			// until the rival job has failed and swept.
			once.Do(func() { close(started) })
			<-proceed
			return col.Collect(rec)
		}),
	}
	a := NewEngine(dfs, EngineConfig{SplitRecords: 64, MapParallelism: 1})
	aErr := make(chan error, 1)
	go func() {
		_, err := a.Run(blockingJob)
		aErr <- err
	}()
	<-started
	if temps := dfs.ListPrefix("_tmp/"); len(temps) == 0 {
		t.Fatal("blocked attempt left no temp files — test premise broken")
	}

	// Same job name, same DFS, guaranteed failure (attempt budget 1 with a
	// 100% pre-body injection rate). Its failure path sweeps its own
	// workflow prefix — and must not touch workflow A's files.
	b := NewEngine(dfs, EngineConfig{TaskFailureRate: 1.0})
	failing := &Job{
		Name:    "shared-name",
		Inputs:  []string{"in"},
		Output:  "out-b",
		MapOnly: MapOnlyFunc(func(_ string, rec []byte, col Collector) error { return col.Collect(rec) }),
	}
	if _, err := b.Run(failing); err == nil {
		t.Fatal("injected-failure job unexpectedly succeeded")
	}
	if temps := dfs.ListPrefix("_tmp/"); len(temps) == 0 {
		t.Fatal("rival job's failure sweep deleted the in-flight workflow's attempt temps")
	}

	close(proceed)
	if err := <-aErr; err != nil {
		t.Fatalf("surviving workflow failed: %v", err)
	}
	recs, err := dfs.ReadAll("out-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("survivor output has %d records, want 2", len(recs))
	}
	if temps := dfs.ListPrefix("_tmp/"); len(temps) != 0 {
		t.Errorf("temp files leaked: %v", temps)
	}
}

// TestConcurrentSameNameWorkflows runs many same-named jobs concurrently
// over one DFS and requires every output to be byte-identical to a serial
// run — the serving scenario where independent queries reuse engine job
// names.
func TestConcurrentSameNameWorkflows(t *testing.T) {
	input := make([][]byte, 60)
	for i := range input {
		input[i] = []byte(fmt.Sprintf("w%d w%d", i%7, i%3))
	}
	serial := func() [][]byte {
		e := newTestEngine(t, hdfs.Config{})
		if err := e.DFS().WriteFile("in", input); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(wordCountJob("in", "out")); err != nil {
			t.Fatal(err)
		}
		recs, _ := e.DFS().ReadAll("out")
		return recs
	}()

	dfs := hdfs.New(hdfs.Config{Nodes: 4})
	if err := dfs.WriteFile("in", input); err != nil {
		t.Fatal(err)
	}
	const n = 8
	outs := make([][][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := NewEngine(dfs, EngineConfig{SplitRecords: 4, DefaultReducers: 3})
			out := fmt.Sprintf("out-%d", i)
			if _, err := e.Run(wordCountJob("in", out)); err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = dfs.ReadAll(out)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if len(outs[i]) != len(serial) {
			t.Fatalf("run %d: %d records, serial %d", i, len(outs[i]), len(serial))
		}
		for j := range serial {
			if !bytes.Equal(outs[i][j], serial[j]) {
				t.Fatalf("run %d record %d = %q, serial %q", i, j, outs[i][j], serial[j])
			}
		}
	}
	if temps := dfs.ListPrefix("_tmp/"); len(temps) != 0 {
		t.Errorf("temp files leaked: %v", temps)
	}
}

// TestCancelMidMapReclaimsSpills cancels a run from inside the map phase
// (after spill runs exist) and requires: the context error surfaces, no
// retries are burned on a dead context, the spilled bytes are accounted as
// reclaimed, and the DFS is left with only the input.
func TestCancelMidMapReclaimsSpills(t *testing.T) {
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 2}), EngineConfig{
		SplitRecords:    200,
		MapParallelism:  2,
		SortBufferBytes: 64, // spill every few records
		TaskMaxAttempts: 5,
	})
	input := make([][]byte, 1000)
	for i := range input {
		input[i] = []byte(fmt.Sprintf("w%d w%d w%d", i%17, i%13, i%7))
	}
	if err := e.DFS().WriteFile("in", input); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	job := wordCountJob("in", "out")
	base := job.Mapper
	job.Mapper = MapperFunc(func(name string, rec []byte, out Emitter) error {
		// Cancel once enough records flowed that in-flight attempts have
		// spilled; they notice at their next periodic checkpoint.
		if seen.Add(1) == 300 {
			cancel()
		}
		return base.Map(name, rec, out)
	})
	m, err := e.WithContext(ctx).Run(job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if !m.Failed {
		t.Error("metrics not marked failed")
	}
	if m.TaskRetries != 0 {
		t.Errorf("TaskRetries = %d after cancellation, want 0 (cancellation must not be retried)", m.TaskRetries)
	}
	if m.TempBytesReclaimed == 0 {
		t.Error("TempBytesReclaimed = 0, want the cancelled attempts' spill bytes accounted")
	}
	if temps := e.DFS().ListPrefix("_tmp/"); len(temps) != 0 {
		t.Errorf("temp files leaked: %v", temps)
	}
	if files := e.DFS().List(); len(files) != 1 || files[0] != "in" {
		t.Errorf("DFS after cancelled run = %v, want only the input", files)
	}
}

// TestCancelMidReduceSweepsPartFiles cancels from inside a reduce task —
// after attempt-private DFS part files hold bytes — and requires the
// commit protocol to reclaim them all.
func TestCancelMidReduceSweepsPartFiles(t *testing.T) {
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 2}), EngineConfig{
		SplitRecords: 16, DefaultReducers: 4, TaskMaxAttempts: 3,
	})
	input := make([][]byte, 64)
	for i := range input {
		input[i] = []byte(fmt.Sprintf("w%d", i)) // 64 distinct keys
	}
	if err := e.DFS().WriteFile("in", input); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var reduced atomic.Int64
	job := wordCountJob("in", "out")
	base := job.Reducer
	job.Reducer = ReducerFunc(func(key []byte, vals [][]byte, out Collector) error {
		if err := base.Reduce(key, vals, out); err != nil {
			return err
		}
		// Every reduce task has now streamed at least one record into its
		// attempt-private part file; cancel and let the checkpoints stop
		// the tasks mid-write.
		if reduced.Add(1) == 8 {
			cancel()
		}
		return nil
	})
	m, err := e.WithContext(ctx).Run(job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if m.TempBytesReclaimed == 0 {
		t.Error("TempBytesReclaimed = 0, want aborted part-file bytes accounted")
	}
	if temps := e.DFS().ListPrefix("_tmp/"); len(temps) != 0 {
		t.Errorf("temp files leaked: %v", temps)
	}
	if files := e.DFS().List(); len(files) != 1 || files[0] != "in" {
		t.Errorf("DFS after cancelled run = %v, want only the input", files)
	}
}

func TestWorkflowCancelledBetweenStages(t *testing.T) {
	e := newTestEngine(t, hdfs.Config{})
	if err := e.DFS().WriteFile("in", [][]byte{[]byte("a b c")}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before the first stage
	wf, err := e.WithContext(ctx).RunWorkflow([]Stage{{wordCountJob("in", "out")}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunWorkflow = %v, want context.Canceled", err)
	}
	if !wf.Failed {
		t.Error("workflow not marked failed")
	}
	if files := e.DFS().List(); len(files) != 1 || files[0] != "in" {
		t.Errorf("DFS after cancelled workflow = %v, want only the input", files)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 2}), EngineConfig{SplitRecords: 8, MapParallelism: 2})
	input := make([][]byte, 64)
	for i := range input {
		input[i] = []byte("x y z")
	}
	if err := e.DFS().WriteFile("in", input); err != nil {
		t.Fatal(err)
	}
	job := wordCountJob("in", "out")
	base := job.Mapper
	job.Mapper = MapperFunc(func(name string, rec []byte, out Emitter) error {
		time.Sleep(2 * time.Millisecond) // guarantee the deadline fires mid-run
		return base.Map(name, rec, out)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := e.WithContext(ctx).Run(job); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want context.DeadlineExceeded", err)
	}
	if temps := e.DFS().ListPrefix("_tmp/"); len(temps) != 0 {
		t.Errorf("temp files leaked: %v", temps)
	}
}

// countingPool is a minimal SlotPool that enforces a hard cap and records
// the high-water mark of concurrently held slots.
type countingPool struct {
	sem  chan struct{}
	mu   sync.Mutex
	held int
	peak int
}

func newCountingPool(capacity int) *countingPool {
	return &countingPool{sem: make(chan struct{}, capacity)}
}

func (p *countingPool) Acquire(ctx context.Context, kind string) (func(), error) {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	p.mu.Lock()
	p.held++
	if p.held > p.peak {
		p.peak = p.held
	}
	p.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.held--
			p.mu.Unlock()
			<-p.sem
		})
	}, nil
}

func TestSlotPoolGovernsTaskConcurrency(t *testing.T) {
	pool := newCountingPool(2)
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}), EngineConfig{
		SplitRecords:    4,
		DefaultReducers: 6,
		// With Slots set these widths are ignored; make them large so a
		// regression (falling back to worker pools) would show up as
		// peak > 2.
		MapParallelism:    32,
		ReduceParallelism: 32,
		Slots:             pool,
	})
	input := make([][]byte, 64)
	for i := range input {
		input[i] = []byte(fmt.Sprintf("w%d w%d", i%11, i%5))
	}
	if err := e.DFS().WriteFile("in", input); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(wordCountJob("in", "out")); err != nil {
		t.Fatal(err)
	}
	if pool.peak > 2 {
		t.Errorf("slot pool exceeded: peak concurrent slots = %d, cap 2", pool.peak)
	}
	if pool.held != 0 {
		t.Errorf("%d slots still held after run", pool.held)
	}
	recs, err := e.DFS().ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 { // 11 distinct words
		t.Errorf("output groups = %d, want 11", len(recs))
	}
}
