package mapreduce

import (
	"fmt"
	"strings"
	"testing"

	"ntga/internal/hdfs"
	"ntga/internal/trace"
)

// tracedWorkload builds a seeded wordcount-style workload big enough to
// exercise spilling, retries, and multiple reduce partitions, runs it as a
// two-stage workflow on a fresh cluster, and returns the tracer.
func tracedWorkload(t *testing.T) (*trace.Tracer, WorkflowMetrics) {
	t.Helper()
	tr := trace.New()
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 4}), EngineConfig{
		SplitRecords:    8,
		DefaultReducers: 3,
		SortBufferBytes: 64,  // force several spills per map task
		MergeFactor:     2,   // force intermediate merge passes
		TaskFailureRate: 0.2, // deterministic injected retries
		TaskFailureSeed: 7,
		TaskMaxAttempts: 4,
		Tracer:          tr,
	})
	var lines [][]byte
	for j := 0; j < 64; j++ {
		lines = append(lines, []byte(fmt.Sprintf("w%d w%d w%d w%d", j%7, j%13, j%3, j%5)))
	}
	if err := e.DFS().WriteFile("in", lines); err != nil {
		t.Fatal(err)
	}
	wf, err := e.RunWorkflowNamed("test-wf", []Stage{
		{wordCountJob("in", "mid")},
		{wordCountJob("mid", "out")},
	})
	if err != nil {
		t.Fatalf("RunWorkflowNamed: %v", err)
	}
	return tr, wf
}

func TestTraceDeterministicSpanTree(t *testing.T) {
	// Two runs of the same seeded workload must produce identical span
	// trees — names, nesting, task/node/attempt attribution, record and
	// byte counts — differing only in timestamps (which TreeString omits).
	// The engine's goroutine pools make span *creation* order racy; the
	// engine-assigned ordering groups must absorb that.
	tr1, _ := tracedWorkload(t)
	tr2, _ := tracedWorkload(t)
	s1, s2 := trace.TreeString(tr1.Roots()), trace.TreeString(tr2.Roots())
	if s1 != s2 {
		t.Fatalf("span trees differ between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", s1, s2)
	}
	if !strings.Contains(s1, "attempt=1") {
		t.Fatal("workload was expected to exercise task retries (attempt=1 spans)")
	}
}

func TestTraceCoversJobsTasksAndPhases(t *testing.T) {
	tr, wf := tracedWorkload(t)
	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Kind != trace.KindWorkflow || roots[0].Name != "test-wf" {
		t.Fatalf("want a single workflow root, got %d roots", len(roots))
	}
	jobs := roots[0].Children()
	if len(jobs) != len(wf.Jobs) {
		t.Fatalf("workflow has %d job spans, metrics report %d jobs", len(jobs), len(wf.Jobs))
	}
	kinds := map[trace.Kind]int{}
	for ji, job := range jobs {
		if job.Kind != trace.KindJob || job.Name != wf.Jobs[ji].Job {
			t.Fatalf("job span %d = (%s, %q), want (job, %q)", ji, job.Kind, job.Name, wf.Jobs[ji].Job)
		}
		// Injected failures skip the task body entirely, so a retried task
		// may have no attempt-0 span; count distinct task indices instead.
		mapTasks, reduceTasks := map[int]bool{}, map[int]bool{}
		commits := 0
		for _, c := range job.Children() {
			switch {
			case c.Kind == trace.KindTask && c.Name == "map":
				mapTasks[c.Task] = true
				var hasScan, hasMap, hasSort bool
				for _, p := range c.Children() {
					kinds[p.Kind]++
					switch p.Kind {
					case trace.KindScan:
						hasScan = true
					case trace.KindMap:
						hasMap = true
					case trace.KindSort:
						hasSort = true
					}
				}
				if !hasScan || !hasMap || !hasSort {
					t.Fatalf("map task span missing a scan/map/sort phase (job %q task %d)", job.Name, c.Task)
				}
			case c.Kind == trace.KindTask && c.Name == "reduce":
				reduceTasks[c.Task] = true
				var hasReduce, hasWrite bool
				for _, p := range c.Children() {
					kinds[p.Kind]++
					switch p.Kind {
					case trace.KindReduce:
						hasReduce = true
					case trace.KindWrite:
						hasWrite = true
					}
				}
				if !hasReduce || !hasWrite {
					t.Fatalf("reduce task span missing a reduce/write phase (job %q task %d)", job.Name, c.Task)
				}
			case c.Kind == trace.KindCommit:
				commits++
			default:
				t.Fatalf("unexpected job child: kind=%s name=%q", c.Kind, c.Name)
			}
			if c.Kind == trace.KindTask && (c.Node < 0 || c.Node >= 4) {
				t.Fatalf("task span node = %d, want 0..3", c.Node)
			}
		}
		if len(mapTasks) != wf.Jobs[ji].MapTasks {
			t.Errorf("job %q: %d traced map tasks, metrics say %d", job.Name, len(mapTasks), wf.Jobs[ji].MapTasks)
		}
		if len(reduceTasks) != wf.Jobs[ji].ReduceTasks {
			t.Errorf("job %q: %d traced reduce tasks, metrics say %d", job.Name, len(reduceTasks), wf.Jobs[ji].ReduceTasks)
		}
		if commits != 1 {
			t.Errorf("job %q: %d commit spans, want 1", job.Name, commits)
		}
	}
	// The workload spills and over-runs the merge factor, so spill and
	// merge phases must appear somewhere.
	if kinds[trace.KindSpill] == 0 {
		t.Error("no spill phases recorded despite a 64-byte sort buffer")
	}
	if kinds[trace.KindMerge] == 0 {
		t.Error("no merge phases recorded despite MergeFactor=2")
	}
}

func TestTraceChromeExportBalanced(t *testing.T) {
	// Every B event from a real engine run must be closed by a matching E
	// on the same (pid, tid) track, LIFO order — the invariant Perfetto
	// needs to reconstruct the flame graph.
	tr, _ := tracedWorkload(t)
	events := trace.ChromeEvents(tr.Roots(), tr.Epoch())
	type track struct{ pid, tid int }
	stacks := map[track][]string{}
	for i, ev := range events {
		k := track{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "M":
		case "B":
			stacks[k] = append(stacks[k], ev.Name)
		case "E":
			st := stacks[k]
			if len(st) == 0 || st[len(st)-1] != ev.Name {
				t.Fatalf("event %d: E %q does not close the open B on track %v (stack %v)", i, ev.Name, k, st)
			}
			stacks[k] = st[:len(st)-1]
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ev.Ph)
		}
		if ev.Ph != "M" && ev.Ts < 0 {
			t.Fatalf("event %d: negative timestamp %v", i, ev.Ts)
		}
	}
	for k, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("track %v left unclosed spans: %v", k, st)
		}
	}
}

func TestTraceTimelineRenders(t *testing.T) {
	tr, _ := tracedWorkload(t)
	out := trace.Timeline(tr.Roots())
	for _, want := range []string{"timeline: job wordcount", "map[0]", "reduce[0]", "commit", "scan", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestRunUntracedHasNoSpansButFullMetrics(t *testing.T) {
	e := NewEngine(hdfs.New(hdfs.Config{Nodes: 2}), EngineConfig{SplitRecords: 4, DefaultReducers: 2})
	lines := [][]byte{[]byte("a b"), []byte("b c"), []byte("c a"), []byte("a c")}
	if err := e.DFS().WriteFile("in", lines); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run(wordCountJob("in", "out"))
	if err != nil {
		t.Fatal(err)
	}
	// Task-timing summaries are populated even without a tracer.
	if m.MapTaskStats.Tasks != m.MapTasks || m.ReduceTaskStats.Tasks != m.ReduceTasks {
		t.Errorf("task stats = %+v / %+v, want %d map and %d reduce tasks",
			m.MapTaskStats, m.ReduceTaskStats, m.MapTasks, m.ReduceTasks)
	}
	if m.MapTaskStats.StragglerRatio <= 0 || m.ReduceTaskStats.StragglerRatio <= 0 {
		t.Errorf("straggler ratios not populated: %+v / %+v", m.MapTaskStats, m.ReduceTaskStats)
	}
	if m.ReduceKeySkew <= 0 || m.ReduceByteSkew <= 0 {
		t.Errorf("reduce skew not populated: key=%v byte=%v", m.ReduceKeySkew, m.ReduceByteSkew)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	lines := [][]byte{[]byte("a b c")}
	newEng := func(cfg EngineConfig) *Engine {
		e := NewEngine(hdfs.New(hdfs.Config{Nodes: 2}), cfg)
		if err := e.DFS().WriteFile("in", lines); err != nil {
			t.Fatal(err)
		}
		return e
	}

	e := newEng(EngineConfig{MergeFactor: 1})
	m, err := e.Run(wordCountJob("in", "out"))
	if err == nil || !strings.Contains(err.Error(), "MergeFactor") {
		t.Fatalf("MergeFactor=1 error = %v, want a MergeFactor validation error", err)
	}
	if !m.Failed {
		t.Error("metrics for a rejected config must be marked Failed")
	}

	e = newEng(EngineConfig{SortBufferBytes: -1})
	_, err = e.Run(wordCountJob("in", "out"))
	if err == nil || !strings.Contains(err.Error(), "SortBufferBytes") {
		t.Fatalf("SortBufferBytes=-1 error = %v, want a SortBufferBytes validation error", err)
	}

	// The zero config (defaults) and a valid explicit config must pass.
	for _, cfg := range []EngineConfig{{}, {MergeFactor: 2, SortBufferBytes: 128}} {
		e = newEng(cfg)
		if _, err := e.Run(wordCountJob("in", "out")); err != nil {
			t.Fatalf("valid config %+v rejected: %v", cfg, err)
		}
	}
}
