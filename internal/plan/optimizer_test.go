package plan_test

import (
	"testing"

	"ntga/internal/bench"
	"ntga/internal/enginetest"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

// threeStarChain is offer → product ← review, with the review star made
// tiny by a selective rating filter: joining product⋈review first beats the
// compile-time offer⋈product-first order.
const threeStarChain = `PREFIX bsbm: <http://bsbm.example.org/>
SELECT * WHERE {
  ?o bsbm:product ?prod . ?o bsbm:vendor ?v . ?o bsbm:price ?price .
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f .
  ?r bsbm:reviewFor ?prod . ?r bsbm:rating ?rt .
  FILTER(?rt = "10")
}`

func compileOn(t *testing.T, g *rdf.Graph, src string) *query.Query {
	t.Helper()
	return enginetest.Compile(t, g, src)
}

func bsbmGraph(t *testing.T) *rdf.Graph {
	t.Helper()
	g, err := bench.Dataset("bsbm", 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestJoinsForOrderRoundTrip(t *testing.T) {
	g := bsbmGraph(t)
	q := compileOn(t, g, threeStarChain)
	if len(q.Stars) != 3 || len(q.Joins) != 2 {
		t.Fatalf("compiled to %d stars / %d joins, want 3 / 2", len(q.Stars), len(q.Joins))
	}

	legacy := query.JoinOrder(q.Joins, len(q.Stars))
	joins, err := q.JoinsForOrder(legacy)
	if err != nil {
		t.Fatalf("legacy order %v rejected: %v", legacy, err)
	}
	for i, j := range joins {
		if j.Var != q.Joins[i].Var || j.Left != q.Joins[i].Left || j.Right != q.Joins[i].Right {
			t.Errorf("join %d differs after legacy-order round trip: %+v vs %+v", i, j, q.Joins[i])
		}
	}

	// Invalid permutations are rejected, not misplanned.
	for _, bad := range [][]int{{0, 1}, {0, 1, 1}, {0, 1, 3}} {
		if _, err := q.JoinsForOrder(bad); err == nil {
			t.Errorf("order %v: want error, got none", bad)
		}
	}
}

func TestJoinsForOrderRejectsDisconnectedPrefix(t *testing.T) {
	// A genuine chain a–b–c on distinct variables: visiting a then c leaves
	// a disconnected prefix.
	g := bsbmGraph(t)
	q := compileOn(t, g, `PREFIX bsbm: <http://bsbm.example.org/>
SELECT * WHERE {
  ?o bsbm:product ?prod . ?o bsbm:vendor ?v .
  ?prod bsbm:label ?l . ?prod bsbm:producer ?pr .
  ?pr bsbm:country ?c . ?pr bsbm:label ?prl .
}`)
	if len(q.Stars) != 3 {
		t.Fatalf("compiled to %d stars, want 3", len(q.Stars))
	}
	if _, err := q.JoinsForOrder([]int{0, 2, 1}); err == nil {
		t.Error("disconnected order [0 2 1] accepted")
	}
	if _, err := q.JoinsForOrder([]int{1, 0, 2}); err != nil {
		t.Errorf("connected order [1 0 2] rejected: %v", err)
	}
}

func TestReorderJoinsKeepsTwoStarOrder(t *testing.T) {
	g := bsbmGraph(t)
	q := compileOn(t, g, `PREFIX bsbm: <http://bsbm.example.org/>
SELECT * WHERE {
  ?o bsbm:product ?prod . ?o bsbm:vendor ?v .
  ?prod bsbm:label ?l . ?prod bsbm:productFeature ?f .
}`)
	r, err := plan.ReorderJoins(plan.FromGraph(g), q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Changed {
		t.Errorf("two-star query reordered: %+v", r)
	}
	if r.Est != r.LegacyEst {
		t.Errorf("Est %d != LegacyEst %d on unchanged plan", r.Est, r.LegacyEst)
	}
}

func TestReorderJoinsPicksCheaperChain(t *testing.T) {
	g := bsbmGraph(t)
	cat := plan.FromGraph(g)
	q := compileOn(t, g, threeStarChain)

	r, err := plan.ReorderJoins(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Changed {
		t.Fatalf("optimizer kept legacy order %v (est %d)", r.Order, r.LegacyEst)
	}
	if r.Est >= r.LegacyEst {
		t.Errorf("chosen est %d not cheaper than legacy %d", r.Est, r.LegacyEst)
	}
	// The win comes from joining the filtered review star (2) earlier than
	// the compile-time order does (it visits reviews last).
	if pos(r.Order, 2) >= pos(query.JoinOrder(q.Joins, len(q.Stars)), 2) {
		t.Errorf("chosen order %v does not pull the filtered review star forward", r.Order)
	}
	// ReorderJoins never mutates; Optimize rewrites in place.
	legacy := query.JoinOrder(q.Joins, len(q.Stars))
	if legacy[0] != 0 {
		t.Fatalf("q.Joins mutated by ReorderJoins: order now %v", legacy)
	}
	if _, err := plan.Optimize(cat, q); err != nil {
		t.Fatal(err)
	}
	got := query.JoinOrder(q.Joins, len(q.Stars))
	for i := range got {
		if got[i] != r.Order[i] {
			t.Fatalf("Optimize applied order %v, want %v", got, r.Order)
		}
	}
}

// TestReorderNeverWorseAcrossCatalog is the optimizer's safety property:
// over every benchmark query on seeded generator datasets, the chosen
// order's estimated join-chain shuffle never exceeds the compile-time
// order's, and any changed order is strictly cheaper.
func TestReorderNeverWorseAcrossCatalog(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		graphs := map[string]*rdf.Graph{}
		for _, cq := range bench.Catalog() {
			g, ok := graphs[cq.Dataset]
			if !ok {
				var err error
				g, err = bench.Dataset(cq.Dataset, 1, seed)
				if err != nil {
					t.Fatal(err)
				}
				graphs[cq.Dataset] = g
			}
			cat := plan.FromGraph(g)
			pq, err := sparql.Parse(cq.Src)
			if err != nil {
				t.Fatalf("%s: %v", cq.ID, err)
			}
			q, err := query.Compile(pq, g.Dict)
			if err != nil {
				t.Fatalf("%s: %v", cq.ID, err)
			}
			r, err := plan.ReorderJoins(cat, q)
			if err != nil {
				t.Fatalf("%s seed %d: %v", cq.ID, seed, err)
			}
			if r.Est > r.LegacyEst {
				t.Errorf("%s seed %d: chosen est %d exceeds legacy %d",
					cq.ID, seed, r.Est, r.LegacyEst)
			}
			if r.Changed && r.Est >= r.LegacyEst {
				t.Errorf("%s seed %d: reorder without strict gain (%d vs %d)",
					cq.ID, seed, r.Est, r.LegacyEst)
			}
			if !r.Changed && r.Est != r.LegacyEst {
				t.Errorf("%s seed %d: unchanged order with diverging estimate (%d vs %d)",
					cq.ID, seed, r.Est, r.LegacyEst)
			}
			// The reported order and joins must agree with each other.
			if len(q.Stars) > 1 {
				joins, err := q.JoinsForOrder(r.Order)
				if err != nil {
					t.Fatalf("%s seed %d: chosen order %v invalid: %v", cq.ID, seed, r.Order, err)
				}
				if got := plan.JoinChainShuffle(cat, q, joins); got != r.Est {
					t.Errorf("%s seed %d: order %v re-prices to %d, reported %d",
						cq.ID, seed, r.Order, got, r.Est)
				}
			}
		}
	}
}

func pos(order []int, star int) int {
	for i, s := range order {
		if s == star {
			return i
		}
	}
	return -1
}
