package plan_test

import (
	"strings"
	"testing"

	"ntga/internal/enginetest"
	"ntga/internal/plan"
	"ntga/internal/query"
)

const advBound = `SELECT * WHERE {
  ?g <http://ex/label> ?l . ?g <http://ex/type> ?ty .
}`

const advUnbound = `SELECT * WHERE {
  ?g <http://ex/label> ?l . ?g ?p ?x .
}`

func TestAdviseUnnestRejectsBadReducers(t *testing.T) {
	g := enginetest.BioGraph()
	q := enginetest.Compile(t, g, advBound)
	for _, reducers := range []int{0, -1, -100} {
		_, err := plan.AdviseUnnest(3, 100, q, reducers)
		if err == nil {
			t.Fatalf("reducers=%d: want error, got none", reducers)
		}
		if !strings.Contains(err.Error(), "positive reducer count") {
			t.Errorf("reducers=%d: unexpected error %v", reducers, err)
		}
	}
}

func TestAdviseUnnestRejectsEmptyQuery(t *testing.T) {
	for _, q := range []*query.Query{nil, {}} {
		_, err := plan.AdviseUnnest(3, 100, q, 4)
		if err == nil {
			t.Fatal("want error for star-less query, got none")
		}
		if !strings.Contains(err.Error(), "at least one star") {
			t.Errorf("unexpected error %v", err)
		}
	}
}

func TestAdviseUnnestHeuristics(t *testing.T) {
	g := enginetest.BioGraph()
	bound := enginetest.Compile(t, g, advBound)
	unbound := enginetest.Compile(t, g, advUnbound)

	// No unbound-property patterns: nothing to delay, eager wins.
	a, err := plan.AdviseUnnest(8, 1000, bound, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Lazy || a.Expected != 0 {
		t.Errorf("bound query: got Lazy=%v Expected=%g, want eager with 0 candidates", a.Lazy, a.Expected)
	}

	// High subject degree with an unbound slot: delay the unnest.
	a, err = plan.AdviseUnnest(8, 1000, unbound, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Lazy {
		t.Errorf("unbound query at degree 8: want lazy, got %+v", a)
	}
	if a.PhiM < 4 || a.PhiM > plan.DefaultPhiM {
		t.Errorf("PhiM = %d, want within [reducers, DefaultPhiM]", a.PhiM)
	}

	// Tiny candidate sets: lazy machinery saves nothing.
	a, err = plan.AdviseUnnest(1.2, 1000, unbound, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Lazy {
		t.Errorf("degree 1.2: want eager, got %+v", a)
	}

	// φ_m clamps up to the reducer count.
	a, err = plan.AdviseUnnest(8, 10, unbound, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.PhiM != 64 {
		t.Errorf("PhiM = %d, want clamp to 64 reducers", a.PhiM)
	}
}
