package plan

import (
	"errors"
	"fmt"

	"ntga/internal/hdfs"
)

// This file is the planner's side of the physical data-properties layer:
// the Partitioning property carried by plan nodes (and propagated through
// the IR), and the single place PhiM / bucket-count configuration is
// validated. Engines receive a *Partitioning describing a pre-bucketed
// relation (hdfs.Layout written by BuildPartitionLayout) and may rewrite
// shuffle cycles into map-only cycles when the partitioning matches the
// join key; when it doesn't, the node records an EXPLAIN-visible reason.

// PartitionKeySubject is the only partitioning key the loader writes:
// hash-of-subject, the γ_Sub grouping key.
const PartitionKeySubject = "subject"

// Bucket-count and φ_m guard rails. The upper bounds reject configurations
// that would allocate absurd numbers of files or β-unnest buckets long
// before any job runs.
const (
	MaxBuckets = 1 << 14
	MaxPhiM    = 1 << 20
)

// BadPhiMError reports an out-of-range φ_m partition range.
type BadPhiMError struct{ PhiM int }

func (e *BadPhiMError) Error() string {
	return fmt.Sprintf("plan: phiM must be in 0..%d (got %d); 0 selects the default (%d)",
		MaxPhiM, e.PhiM, DefaultPhiM)
}

// BadBucketsError reports an out-of-range partition bucket count.
type BadBucketsError struct{ Buckets int }

func (e *BadBucketsError) Error() string {
	return fmt.Sprintf("plan: partition buckets must be in 1..%d (got %d)", MaxBuckets, e.Buckets)
}

// CheckPhiM validates a φ_m partition range. Zero is allowed (it selects
// DefaultPhiM); negative or absurdly large values are typed errors — the
// engines used to clamp these silently, which hid misconfigured runs.
func CheckPhiM(phiM int) error {
	if phiM < 0 || phiM > MaxPhiM {
		return &BadPhiMError{PhiM: phiM}
	}
	return nil
}

// CheckBuckets validates a partition bucket count. Unlike φ_m there is no
// "default" sentinel: a layout must say how many buckets it has.
func CheckBuckets(buckets int) error {
	if buckets < 1 || buckets > MaxBuckets {
		return &BadBucketsError{Buckets: buckets}
	}
	return nil
}

// Partitioning is the physical data property: the relation a node reads is
// hash-partitioned into Buckets files under Dir, on Key. It mirrors
// hdfs.Layout (the persisted manifest) in planner terms.
type Partitioning struct {
	// Key is the partitioning column (PartitionKeySubject).
	Key string
	// Buckets is the bucket-file count.
	Buckets int
	// Dir is the DFS directory holding the bucket files.
	Dir string
	// Version is the dataset content hash the layout was built from (empty
	// in stats-only plans that never touch a DFS).
	Version string
}

// NewPartitioning validates and builds the property.
func NewPartitioning(key string, buckets int, dir, version string) (*Partitioning, error) {
	if key != PartitionKeySubject {
		return nil, fmt.Errorf("plan: unsupported partitioning key %q (only %q)", key, PartitionKeySubject)
	}
	if err := CheckBuckets(buckets); err != nil {
		return nil, err
	}
	if dir == "" {
		return nil, errors.New("plan: partitioning needs a layout dir")
	}
	return &Partitioning{Key: key, Buckets: buckets, Dir: dir, Version: version}, nil
}

// FromLayout converts a validated hdfs.Layout manifest into the planner
// property.
func FromLayout(l hdfs.Layout) (*Partitioning, error) {
	return NewPartitioning(l.Key, l.Buckets, l.Dir, l.Version)
}

// Layout returns the hdfs view of the property (the bucket-file naming
// authority).
func (p *Partitioning) Layout() hdfs.Layout {
	return hdfs.Layout{Key: p.Key, Buckets: p.Buckets, Version: p.Version, Dir: p.Dir}
}

// BucketFile returns the DFS name of bucket i.
func (p *Partitioning) BucketFile(i int) string { return p.Layout().BucketFile(i) }

// Files returns every bucket file, in bucket order.
func (p *Partitioning) Files() []string { return p.Layout().Files() }

// Matches reports whether the partitioning serves joins on the given key —
// the map-only rewrite's precondition.
func (p *Partitioning) Matches(key string) bool {
	return p != nil && p.Key == key && p.Buckets >= 1
}

// String renders the property the way EXPLAIN shows it.
func (p *Partitioning) String() string {
	if p == nil {
		return "none"
	}
	return fmt.Sprintf("%s/%d", p.Key, p.Buckets)
}
