package plan

import (
	"fmt"

	"ntga/internal/codec"
	"ntga/internal/core/hash64"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
)

// This file holds the layout loader: the one-time MR job that rewrites the
// flat triple relation into the partitioned/bucketed layout the map-only
// rewrite reads. It is a full shuffle job on purpose — the point of paying
// it once is that every later join over the layout pays nothing.

// partitionLoadMapper keys each triple by its subject ID (the γ_Sub grouping
// key) with the (P,O) tail as the value — the exact key/value encoding the
// NTGA grouping cycle shuffles, so the engine's byte-wise (key, value)
// shuffle sort leaves each bucket file subject-contiguous with (P,O) pairs
// in the same order a flat grouping reducer would see them.
func partitionLoadMapper(_ string, record []byte, out mapreduce.Emitter) error {
	t, err := codec.DecodeTriple(record)
	if err != nil {
		return err
	}
	var val codec.Buffer
	val.PutID(t.P)
	val.PutID(t.O)
	return out.Emit(codec.EncodeID(t.S), val.Bytes())
}

// partitionLoadPartitioner routes each subject to its bucket: the same
// hash64.Bucket the planner and the map-only join use, so a record's bucket
// can be recomputed from the key anywhere.
func partitionLoadPartitioner(key []byte, n int) int {
	s, err := codec.DecodeID(key)
	if err != nil {
		return 0 // validate() rejects malformed keys before they get here
	}
	return hash64.Bucket(uint64(s), n)
}

// BuildPartitionLayout runs the loader job over the flat triple relation and
// writes the bucketed layout under dir: Buckets bucket files (hash-of-subject,
// subject-contiguous, duplicate triples preserved) plus the persisted layout
// manifest carrying the dataset content-hash version. The returned
// Partitioning is the planner property ready to hand to a partition-aware
// engine. An existing layout under dir is replaced atomically enough for this
// simulator: manifest last, so a half-written layout never validates.
func BuildPartitionLayout(mr *mapreduce.Engine, input, dir string, buckets int, datasetVersion string) (*Partitioning, error) {
	if err := CheckBuckets(buckets); err != nil {
		return nil, err
	}
	if dir == "" {
		return nil, fmt.Errorf("plan: BuildPartitionLayout needs a layout dir")
	}
	layout := hdfs.Layout{Key: PartitionKeySubject, Buckets: buckets, Version: datasetVersion, Dir: dir}
	dfs := mr.DFS()
	// Stale manifest first: a crash mid-load must leave a layout that fails
	// ReadLayout, not one that validates against the old manifest.
	dfs.DeleteIfExists(dir + "/" + hdfs.LayoutManifestName)
	scan := dir + "/_scan"
	job := &mapreduce.Job{
		Name:         "partition-load",
		Inputs:       []string{input},
		Output:       scan,
		ExtraOutputs: layout.Files(),
		Mapper:       mapreduce.MapperFunc(partitionLoadMapper),
		Partitioner:  partitionLoadPartitioner,
		NumReducers:  buckets,
		StreamReducer: mapreduce.StreamReducerFunc(func(key []byte, values mapreduce.ValueIter, out mapreduce.Collector) error {
			s, err := codec.DecodeID(key)
			if err != nil {
				return err
			}
			bucket := layout.BucketFile(hash64.Bucket(uint64(s), buckets))
			nc, ok := out.(mapreduce.NamedCollector)
			if !ok {
				return fmt.Errorf("plan: partition-load collector lacks MultipleOutputs support")
			}
			// Re-assemble the triple record: key ++ value is PutID(S) PutID(P)
			// PutID(O), the codec triple encoding. Duplicates are kept — the
			// bucket files hold the exact multiset of input triples.
			for {
				v, ok, err := values.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				rec := make([]byte, 0, len(key)+len(v))
				rec = append(rec, key...)
				rec = append(rec, v...)
				if err := nc.CollectTo(bucket, rec); err != nil {
					return err
				}
			}
		}),
	}
	defer dfs.DeleteIfExists(scan)
	if _, err := mr.RunWorkflowNamed("partition-load", []mapreduce.Stage{{job}}); err != nil {
		return nil, err
	}
	if err := dfs.WriteLayout(layout); err != nil {
		return nil, err
	}
	return FromLayout(layout)
}

// RewritePartitionBuckets incrementally maintains an existing layout after
// new data arrived: only the buckets the delta subjects hash into are
// rebuilt — the loader shuffle re-runs over those buckets' old files plus
// the delta files, the rebuilt buckets are swapped in, and the manifest is
// re-stamped at datasetVersion. Unaffected buckets are never read or
// written, so the cost scales with the delta, not the relation. The manifest
// is deleted first and rewritten last: a crash mid-rewrite leaves a layout
// that fails ReadLayout instead of one that validates against stale buckets.
// Returns the number of buckets rebuilt.
func RewritePartitionBuckets(mr *mapreduce.Engine, dir string, deltas []string, datasetVersion string) (int, error) {
	dfs := mr.DFS()
	layout, err := dfs.ReadLayout(dir)
	if err != nil {
		return 0, err
	}

	// Affected buckets: every bucket some delta subject hashes into.
	affected := make(map[int]bool)
	for _, d := range deltas {
		recs, err := dfs.ReadAll(d)
		if err != nil {
			return 0, err
		}
		for _, rec := range recs {
			t, err := codec.DecodeTriple(rec)
			if err != nil {
				return 0, err
			}
			affected[hash64.Bucket(uint64(t.S), layout.Buckets)] = true
		}
	}
	layout.Version = datasetVersion
	dfs.DeleteIfExists(dir + "/" + hdfs.LayoutManifestName)
	if len(affected) == 0 {
		if err := dfs.WriteLayout(layout); err != nil {
			return 0, err
		}
		return 0, nil
	}

	// Re-shuffle old affected buckets plus the deltas into rebuild temps.
	// The (key, value) shuffle sort makes each rebuilt bucket byte-identical
	// to the bucket a full reload over the merged relation would produce.
	temps := make(map[int]string, len(affected))
	var inputs, extra []string
	for b := range affected {
		old := layout.BucketFile(b)
		if dfs.Exists(old) {
			inputs = append(inputs, old)
		}
		temps[b] = old + ".rebuild"
		extra = append(extra, temps[b])
	}
	inputs = append(inputs, deltas...)
	scan := dir + "/_rebuild-scan"
	job := &mapreduce.Job{
		Name:         "partition-rewrite",
		Inputs:       inputs,
		Output:       scan,
		ExtraOutputs: extra,
		Mapper:       mapreduce.MapperFunc(partitionLoadMapper),
		Partitioner:  partitionLoadPartitioner,
		NumReducers:  layout.Buckets,
		StreamReducer: mapreduce.StreamReducerFunc(func(key []byte, values mapreduce.ValueIter, out mapreduce.Collector) error {
			s, err := codec.DecodeID(key)
			if err != nil {
				return err
			}
			temp := temps[hash64.Bucket(uint64(s), layout.Buckets)]
			if temp == "" {
				return fmt.Errorf("plan: partition-rewrite saw subject %d outside the rebuilt buckets", s)
			}
			nc, ok := out.(mapreduce.NamedCollector)
			if !ok {
				return fmt.Errorf("plan: partition-rewrite collector lacks MultipleOutputs support")
			}
			for {
				v, ok, err := values.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				rec := make([]byte, 0, len(key)+len(v))
				rec = append(rec, key...)
				rec = append(rec, v...)
				if err := nc.CollectTo(temp, rec); err != nil {
					return err
				}
			}
		}),
	}
	defer dfs.DeleteIfExists(scan)
	if _, err := mr.RunWorkflowNamed("partition-rewrite", []mapreduce.Stage{{job}}); err != nil {
		return 0, err
	}
	for b, temp := range temps {
		dst := layout.BucketFile(b)
		dfs.DeleteIfExists(dst)
		if err := dfs.Rename(temp, dst); err != nil {
			return 0, err
		}
	}
	if err := dfs.WriteLayout(layout); err != nil {
		return 0, err
	}
	return len(affected), nil
}

// LoadPartitioning reads and validates the layout manifest under dir against
// the dataset version the caller is about to query. A missing or corrupt
// manifest surfaces as the hdfs error; a version mismatch surfaces as
// hdfs.ErrLayoutStale — callers are expected to fall back to the flat path.
func LoadPartitioning(dfs *hdfs.DFS, dir, datasetVersion string) (*Partitioning, error) {
	l, err := dfs.ReadLayout(dir)
	if err != nil {
		return nil, err
	}
	if err := l.Validate(datasetVersion); err != nil {
		return nil, err
	}
	return FromLayout(l)
}
