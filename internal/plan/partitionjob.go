package plan

import (
	"fmt"

	"ntga/internal/codec"
	"ntga/internal/core/hash64"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
)

// This file holds the layout loader: the one-time MR job that rewrites the
// flat triple relation into the partitioned/bucketed layout the map-only
// rewrite reads. It is a full shuffle job on purpose — the point of paying
// it once is that every later join over the layout pays nothing.

// partitionLoadMapper keys each triple by its subject ID (the γ_Sub grouping
// key) with the (P,O) tail as the value — the exact key/value encoding the
// NTGA grouping cycle shuffles, so the engine's byte-wise (key, value)
// shuffle sort leaves each bucket file subject-contiguous with (P,O) pairs
// in the same order a flat grouping reducer would see them.
func partitionLoadMapper(_ string, record []byte, out mapreduce.Emitter) error {
	t, err := codec.DecodeTriple(record)
	if err != nil {
		return err
	}
	var val codec.Buffer
	val.PutID(t.P)
	val.PutID(t.O)
	return out.Emit(codec.EncodeID(t.S), val.Bytes())
}

// partitionLoadPartitioner routes each subject to its bucket: the same
// hash64.Bucket the planner and the map-only join use, so a record's bucket
// can be recomputed from the key anywhere.
func partitionLoadPartitioner(key []byte, n int) int {
	s, err := codec.DecodeID(key)
	if err != nil {
		return 0 // validate() rejects malformed keys before they get here
	}
	return hash64.Bucket(uint64(s), n)
}

// BuildPartitionLayout runs the loader job over the flat triple relation and
// writes the bucketed layout under dir: Buckets bucket files (hash-of-subject,
// subject-contiguous, duplicate triples preserved) plus the persisted layout
// manifest carrying the dataset content-hash version. The returned
// Partitioning is the planner property ready to hand to a partition-aware
// engine. An existing layout under dir is replaced atomically enough for this
// simulator: manifest last, so a half-written layout never validates.
func BuildPartitionLayout(mr *mapreduce.Engine, input, dir string, buckets int, datasetVersion string) (*Partitioning, error) {
	if err := CheckBuckets(buckets); err != nil {
		return nil, err
	}
	if dir == "" {
		return nil, fmt.Errorf("plan: BuildPartitionLayout needs a layout dir")
	}
	layout := hdfs.Layout{Key: PartitionKeySubject, Buckets: buckets, Version: datasetVersion, Dir: dir}
	dfs := mr.DFS()
	// Stale manifest first: a crash mid-load must leave a layout that fails
	// ReadLayout, not one that validates against the old manifest.
	dfs.DeleteIfExists(dir + "/" + hdfs.LayoutManifestName)
	scan := dir + "/_scan"
	job := &mapreduce.Job{
		Name:         "partition-load",
		Inputs:       []string{input},
		Output:       scan,
		ExtraOutputs: layout.Files(),
		Mapper:       mapreduce.MapperFunc(partitionLoadMapper),
		Partitioner:  partitionLoadPartitioner,
		NumReducers:  buckets,
		StreamReducer: mapreduce.StreamReducerFunc(func(key []byte, values mapreduce.ValueIter, out mapreduce.Collector) error {
			s, err := codec.DecodeID(key)
			if err != nil {
				return err
			}
			bucket := layout.BucketFile(hash64.Bucket(uint64(s), buckets))
			nc, ok := out.(mapreduce.NamedCollector)
			if !ok {
				return fmt.Errorf("plan: partition-load collector lacks MultipleOutputs support")
			}
			// Re-assemble the triple record: key ++ value is PutID(S) PutID(P)
			// PutID(O), the codec triple encoding. Duplicates are kept — the
			// bucket files hold the exact multiset of input triples.
			for {
				v, ok, err := values.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				rec := make([]byte, 0, len(key)+len(v))
				rec = append(rec, key...)
				rec = append(rec, v...)
				if err := nc.CollectTo(bucket, rec); err != nil {
					return err
				}
			}
		}),
	}
	defer dfs.DeleteIfExists(scan)
	if _, err := mr.RunWorkflowNamed("partition-load", []mapreduce.Stage{{job}}); err != nil {
		return nil, err
	}
	if err := dfs.WriteLayout(layout); err != nil {
		return nil, err
	}
	return FromLayout(layout)
}

// LoadPartitioning reads and validates the layout manifest under dir against
// the dataset version the caller is about to query. A missing or corrupt
// manifest surfaces as the hdfs error; a version mismatch surfaces as
// hdfs.ErrLayoutStale — callers are expected to fall back to the flat path.
func LoadPartitioning(dfs *hdfs.DFS, dir, datasetVersion string) (*Partitioning, error) {
	l, err := dfs.ReadLayout(dir)
	if err != nil {
		return nil, err
	}
	if err := l.Validate(datasetVersion); err != nil {
		return nil, err
	}
	return FromLayout(l)
}
