package plan

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ntga/internal/hdfs"
	"ntga/internal/rdf"
)

// PropStats summarizes one property of the triple relation.
type PropStats struct {
	// Triples is the number of triples carrying the property.
	Triples int64 `json:"triples"`
	// Subjects is the number of distinct subjects carrying it; Triples /
	// Subjects is the property's average multiplicity (the paper reports
	// Uniprot multiplicities up to 13K — the driver of the redundancy
	// factor).
	Subjects int64 `json:"subjects"`
	// Objects is the number of distinct object values.
	Objects int64 `json:"objects"`
}

// Multiplicity is the property's average triples-per-subject (≥ 1 whenever
// the property occurs).
func (p PropStats) Multiplicity() float64 {
	if p.Subjects <= 0 {
		return 0
	}
	return float64(p.Triples) / float64(p.Subjects)
}

// Catalog is the warehouse statistics catalog the planner consumes. It is
// keyed by property term keys (rdf.Term.Key), not dictionary IDs, so a
// persisted catalog remains meaningful in a process that never loaded the
// dataset — the `ntga-explain -stats` path.
type Catalog struct {
	// Triples / Subjects / Objects are the relation's global counts
	// (distinct subjects and objects).
	Triples  int64 `json:"triples"`
	Subjects int64 `json:"subjects"`
	Objects  int64 `json:"objects"`
	// Bytes is the encoded size of the triple relation in the DFS.
	Bytes int64 `json:"bytes"`
	// Props maps property term keys to per-property statistics.
	Props map[string]PropStats `json:"props"`
}

// AvgTriplesPerSubject is the mean subject degree — the advisor's estimate
// of an unbound slot's candidate-set size.
func (c *Catalog) AvgTriplesPerSubject() float64 {
	if c.Subjects <= 0 {
		return 0
	}
	return float64(c.Triples) / float64(c.Subjects)
}

// AvgTripleBytes is the mean encoded triple size, used to convert record
// estimates into shuffle-byte estimates.
func (c *Catalog) AvgTripleBytes() float64 {
	if c.Triples <= 0 || c.Bytes <= 0 {
		return 6 // three small varint IDs
	}
	return float64(c.Bytes) / float64(c.Triples)
}

// Prop returns the statistics for the property with the given term key.
func (c *Catalog) Prop(key string) (PropStats, bool) {
	p, ok := c.Props[key]
	return p, ok
}

// Selectivity is the fraction of the triple relation carrying the property
// (zero for a property absent from the catalog — it matches nothing).
func (c *Catalog) Selectivity(key string) float64 {
	if c.Triples <= 0 {
		return 0
	}
	return float64(c.Props[key].Triples) / float64(c.Triples)
}

// FromGraph computes the exact catalog of an in-memory graph. The MR
// builder (BuildCatalog) produces the same catalog from the DFS-resident
// relation, with sketch-estimated distinct counts.
func FromGraph(g *rdf.Graph) *Catalog {
	c := &Catalog{Props: make(map[string]PropStats)}
	subjects := make(map[rdf.ID]struct{})
	objects := make(map[rdf.ID]struct{})
	type propSets struct {
		triples  int64
		subjects map[rdf.ID]struct{}
		objects  map[rdf.ID]struct{}
	}
	perProp := make(map[rdf.ID]*propSets)
	for _, t := range g.Triples {
		c.Triples++
		c.Bytes += int64(tripleLen(t))
		subjects[t.S] = struct{}{}
		objects[t.O] = struct{}{}
		ps, ok := perProp[t.P]
		if !ok {
			ps = &propSets{subjects: make(map[rdf.ID]struct{}), objects: make(map[rdf.ID]struct{})}
			perProp[t.P] = ps
		}
		ps.triples++
		ps.subjects[t.S] = struct{}{}
		ps.objects[t.O] = struct{}{}
	}
	c.Subjects = int64(len(subjects))
	c.Objects = int64(len(objects))
	for pid, ps := range perProp {
		c.Props[g.Dict.Decode(pid).Key()] = PropStats{
			Triples:  ps.triples,
			Subjects: int64(len(ps.subjects)),
			Objects:  int64(len(ps.objects)),
		}
	}
	return c
}

// Write serializes the catalog as JSON.
func (c *Catalog) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Read deserializes a catalog written by Write.
func Read(r io.Reader) (*Catalog, error) {
	var c Catalog
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("plan: reading catalog: %w", err)
	}
	if c.Props == nil {
		c.Props = make(map[string]PropStats)
	}
	return &c, nil
}

// WriteFile persists the catalog to an OS file (the cross-process form
// ntga-explain -stats loads).
func (c *Catalog) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a catalog persisted with WriteFile.
func ReadFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// SaveDFS persists the catalog as a single-record DFS file — the
// warehouse-resident form loadable at plan time.
func (c *Catalog) SaveDFS(dfs *hdfs.DFS, name string) error {
	b, err := json.Marshal(c)
	if err != nil {
		return err
	}
	dfs.DeleteIfExists(name)
	return dfs.WriteFile(name, [][]byte{b})
}

// LoadDFS loads a catalog persisted with SaveDFS.
func LoadDFS(dfs *hdfs.DFS, name string) (*Catalog, error) {
	recs, err := dfs.ReadAll(name)
	if err != nil {
		return nil, err
	}
	if len(recs) != 1 {
		return nil, fmt.Errorf("plan: catalog file %s has %d records, want 1", name, len(recs))
	}
	var c Catalog
	if err := json.Unmarshal(recs[0], &c); err != nil {
		return nil, fmt.Errorf("plan: parsing catalog %s: %w", name, err)
	}
	if c.Props == nil {
		c.Props = make(map[string]PropStats)
	}
	return &c, nil
}

// tripleLen computes the encoded length of a triple without allocating —
// the same varint framing codec.Buffer.PutTriple produces.
func tripleLen(t rdf.Triple) int {
	return uvarintLen(uint64(t.S)) + uvarintLen(uint64(t.P)) + uvarintLen(uint64(t.O))
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
