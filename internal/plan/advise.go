package plan

import (
	"fmt"

	"ntga/internal/query"
	"ntga/internal/rdf"
)

// DefaultPhiM is the partition range the paper's experiments settle on for
// partial unnesting (μ^β_φm). ntgamr re-exports it as its default.
const DefaultPhiM = 1024

// UnnestAdvice is the unnesting recommendation for an NTGA run: whether to
// delay β-unnest (lazy/auto) or apply it eagerly during grouping, and the
// φ_m partition range for partial unnesting.
type UnnestAdvice struct {
	// Lazy selects delayed β-unnest (the paper's TG_UnbJoin/TG_OptUnbJoin
	// path, auto-chosen per join); false selects eager unnest at grouping.
	Lazy bool
	// PhiM is the recommended μ^β_φm partition range.
	PhiM int
	// Expected is the estimated worst-case candidate-set size per subject
	// across the query's unbound slots (0 when the query has none).
	Expected float64
	// Reasons spells out the decision.
	Reasons []string
}

// AdviseUnnest recommends an unnesting strategy and partition range,
// following §4.1 of the paper: "The partition factor used by φ depends on
// the size of input, potential redundancy factor, and average number of
// tuples that can be processed by a reducer."
//
// The heuristics:
//
//   - no unbound patterns, or unbound patterns whose expected candidate
//     sets are tiny (selective objects, low subject degree): the implicit
//     representation saves nothing, so eager unnest avoids the join-time
//     unnest machinery;
//   - otherwise lazy — delay β-unnest, choosing partial unnest per join
//     exactly as the paper's final policy does;
//   - φ_m targets an average of ~2 slot candidates per (group, bucket):
//     fewer buckets than that forfeits no shuffle savings but concentrates
//     reducer work; more buckets degenerate toward full unnest. It is
//     clamped to [reducers, DefaultPhiM].
//
// avgTriplesPerSubject and distinctObjects come from the statistics catalog
// (Catalog.AvgTriplesPerSubject, Catalog.Objects) or any other source of
// the same counts. Invalid inputs are errors, not silent defaults.
func AdviseUnnest(avgTriplesPerSubject float64, distinctObjects int64, q *query.Query, reducers int) (UnnestAdvice, error) {
	if reducers <= 0 {
		return UnnestAdvice{}, fmt.Errorf("plan: AdviseUnnest needs a positive reducer count, got %d", reducers)
	}
	if q == nil || len(q.Stars) == 0 {
		return UnnestAdvice{}, fmt.Errorf("plan: AdviseUnnest needs a compiled query with at least one star")
	}
	var a UnnestAdvice
	a.Expected = expectedSlotCandidates(avgTriplesPerSubject, distinctObjects, q)
	switch {
	case a.Expected == 0:
		a.Reasons = append(a.Reasons, "no unbound-property patterns: nothing to delay")
	case a.Expected <= 1.5:
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"expected ≤%.1f candidates per unbound pattern: no redundancy to avoid", a.Expected))
	default:
		a.Lazy = true
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"expected ≈%.1f candidates per unbound pattern: delay β-unnest", a.Expected))
	}

	// φ_m: distinct join keys spread so a group's candidates share buckets.
	phi := int(float64(distinctObjects) / maxf(1, a.Expected/2))
	if phi < reducers {
		phi = reducers
	}
	if phi > DefaultPhiM {
		phi = DefaultPhiM
	}
	if phi < 1 {
		phi = 1
	}
	a.PhiM = phi
	a.Reasons = append(a.Reasons, fmt.Sprintf(
		"φ_m = %d for %d distinct objects across %d reducers", phi, distinctObjects, reducers))
	return a, nil
}

// expectedSlotCandidates estimates the worst-case candidate-set size of the
// query's unbound slots: the subject degree, discounted for selective
// object predicates (a CONTAINS/equality filter admits only its matching
// ID set).
func expectedSlotCandidates(avgTriplesPerSubject float64, distinctObjects int64, q *query.Query) float64 {
	var worst float64
	for _, st := range q.Stars {
		for _, sl := range st.Slots {
			est := avgTriplesPerSubject
			if id, ok := sl.Obj.Exact(); ok && id != rdf.NoID {
				est = 1
			} else if sl.Obj.In != nil && distinctObjects > 0 {
				frac := float64(len(sl.Obj.In)) / float64(distinctObjects)
				if frac > 1 {
					frac = 1
				}
				est *= frac
			}
			if est > worst {
				worst = est
			}
		}
	}
	return worst
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
