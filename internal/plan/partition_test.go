package plan_test

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"ntga/internal/codec"
	"ntga/internal/core/hash64"
	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/hdfs"
	"ntga/internal/plan"
	"ntga/internal/query"
)

func TestCheckPhiMRejections(t *testing.T) {
	for _, ok := range []int{0, 1, 64, plan.MaxPhiM} {
		if err := plan.CheckPhiM(ok); err != nil {
			t.Errorf("CheckPhiM(%d) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []int{-1, -100, plan.MaxPhiM + 1} {
		err := plan.CheckPhiM(bad)
		var be *plan.BadPhiMError
		if !errors.As(err, &be) {
			t.Errorf("CheckPhiM(%d) = %v, want *BadPhiMError", bad, err)
		} else if be.PhiM != bad {
			t.Errorf("CheckPhiM(%d) carries PhiM=%d", bad, be.PhiM)
		}
	}
}

func TestCheckBucketsRejections(t *testing.T) {
	for _, ok := range []int{1, 8, plan.MaxBuckets} {
		if err := plan.CheckBuckets(ok); err != nil {
			t.Errorf("CheckBuckets(%d) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []int{0, -3, plan.MaxBuckets + 1} {
		err := plan.CheckBuckets(bad)
		var be *plan.BadBucketsError
		if !errors.As(err, &be) {
			t.Errorf("CheckBuckets(%d) = %v, want *BadBucketsError", bad, err)
		} else if be.Buckets != bad {
			t.Errorf("CheckBuckets(%d) carries Buckets=%d", bad, be.Buckets)
		}
	}
}

func TestNewPartitioningValidates(t *testing.T) {
	if _, err := plan.NewPartitioning("object", 8, "part/T", "v"); err == nil {
		t.Error("unsupported key accepted")
	}
	if _, err := plan.NewPartitioning(plan.PartitionKeySubject, 0, "part/T", "v"); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := plan.NewPartitioning(plan.PartitionKeySubject, 8, "", "v"); err == nil {
		t.Error("empty dir accepted")
	}
	p, err := plan.NewPartitioning(plan.PartitionKeySubject, 8, "part/T", "v")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches(plan.PartitionKeySubject) {
		t.Error("valid partitioning does not match its own key")
	}
	if p.String() != "subject/8" {
		t.Errorf("String() = %q", p.String())
	}
	var nilPart *plan.Partitioning
	if nilPart.Matches(plan.PartitionKeySubject) {
		t.Error("nil partitioning matches")
	}
	if nilPart.String() != "none" {
		t.Errorf("nil String() = %q", nilPart.String())
	}
}

// subjectJoinQuery compiles a two-star query whose join binds the second
// star through its subject — the shape the subject partitioning serves.
func subjectJoinQuery(t *testing.T) (*plan.Catalog, *query.Query) {
	t.Helper()
	g := bsbmGraph(t)
	q := compileOn(t, g, `PREFIX bsbm: <http://bsbm.example.org/>
		SELECT * WHERE {
			?o bsbm:product ?prod . ?o bsbm:vendor ?v .
			?prod bsbm:label ?l .
		}`)
	return plan.FromGraph(g), q
}

func TestPartitionServes(t *testing.T) {
	_, q := subjectJoinQuery(t)
	part, err := plan.NewPartitioning(plan.PartitionKeySubject, 4, "part/T", "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) == 0 {
		t.Fatal("query has no joins")
	}
	j0 := q.Joins[0]
	if j0.Right.Role != query.RoleSubject {
		t.Fatalf("test query join 0 right role = %v, want subject", j0.Right.Role)
	}
	if !plan.PartitionServes(part, q.Joins, 0) {
		t.Error("subject-bound join not served by subject partitioning")
	}
	if plan.PartitionServes(nil, q.Joins, 0) {
		t.Error("nil partitioning serves a join")
	}
	// Break the chain: a non-subject right side at join 0 blocks every join.
	broken := append([]query.Join(nil), q.Joins...)
	broken[0].Right.Role = query.RoleBoundObj
	if plan.PartitionServes(part, broken, 0) {
		t.Error("object-bound join served by subject partitioning")
	}
}

func TestJoinChainShufflePartitioned(t *testing.T) {
	cat, q := subjectJoinQuery(t)
	flat := plan.JoinChainShuffle(cat, q, q.Joins)
	if flat <= 0 {
		t.Fatalf("flat chain shuffle = %d, want > 0", flat)
	}
	if got := plan.JoinChainShufflePartitioned(cat, q, q.Joins, nil); got != flat {
		t.Errorf("nil partitioning: %d, want flat %d", got, flat)
	}
	part, _ := plan.NewPartitioning(plan.PartitionKeySubject, 4, "part/T", "v")
	if got := plan.JoinChainShufflePartitioned(cat, q, q.Joins, part); got != 0 {
		t.Errorf("served chain shuffle = %d, want 0", got)
	}
	// An unserved chain prices exactly like the flat estimate.
	broken := append([]query.Join(nil), q.Joins...)
	broken[0].Right.Role = query.RoleBoundObj
	if got := plan.JoinChainShufflePartitioned(cat, q, broken, part); got != plan.JoinChainShuffle(cat, q, broken) {
		t.Errorf("unserved chain = %d, want flat %d", got, plan.JoinChainShuffle(cat, q, broken))
	}
}

func TestReorderJoinsPartitionedNilMatchesFlat(t *testing.T) {
	cat, q := subjectJoinQuery(t)
	flat, err := plan.ReorderJoins(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	part, err := plan.ReorderJoinsPartitioned(cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Est != part.Est || flat.Changed != part.Changed {
		t.Errorf("nil-partitioned reorder (%d, %v) != flat (%d, %v)",
			part.Est, part.Changed, flat.Est, flat.Changed)
	}
}

func TestBuildPartitionLayout(t *testing.T) {
	g := enginetest.RandomGraph(11, 3000, 200, 10, 400)
	mr := enginetest.NewMR()
	const input = "data/triples"
	if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
		t.Fatal(err)
	}
	const buckets = 5
	part, err := plan.BuildPartitionLayout(mr, input, "part/T", buckets, g.Version())
	if err != nil {
		t.Fatal(err)
	}
	if part.Buckets != buckets || part.Key != plan.PartitionKeySubject {
		t.Fatalf("partitioning = %+v", part)
	}

	// The bucket files hold the exact multiset of input triples, each routed
	// by hash-of-subject, subject-contiguous within its bucket.
	flat, err := mr.DFS().ReadAll(input)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	for b := 0; b < buckets; b++ {
		recs, err := mr.DFS().ReadAll(part.BucketFile(b))
		if err != nil {
			t.Fatal(err)
		}
		lastSubj := -1
		seen := map[int]bool{}
		for _, rec := range recs {
			tr, err := codec.DecodeTriple(rec)
			if err != nil {
				t.Fatal(err)
			}
			if hash64.Bucket(uint64(tr.S), buckets) != b {
				t.Fatalf("bucket %d holds subject %d routed elsewhere", b, tr.S)
			}
			if int(tr.S) != lastSubj {
				if seen[int(tr.S)] {
					t.Fatalf("bucket %d: subject %d not contiguous", b, tr.S)
				}
				seen[int(tr.S)] = true
				lastSubj = int(tr.S)
			}
		}
		got = append(got, recs...)
	}
	if len(got) != len(flat) {
		t.Fatalf("layout holds %d records, input has %d", len(got), len(flat))
	}
	sortRecords(got)
	sortRecords(flat)
	for i := range got {
		if !bytes.Equal(got[i], flat[i]) {
			t.Fatalf("record %d differs between layout and flat input", i)
		}
	}

	// The manifest round-trips and validates against the dataset version.
	loaded, err := plan.LoadPartitioning(mr.DFS(), "part/T", g.Version())
	if err != nil {
		t.Fatal(err)
	}
	if *loaded != *part {
		t.Errorf("loaded partitioning %+v != built %+v", loaded, part)
	}
	// A stale manifest (dataset changed since the load) is a typed error.
	if _, err := plan.LoadPartitioning(mr.DFS(), "part/T", "other-version"); !errors.Is(err, hdfs.ErrLayoutStale) {
		t.Errorf("stale load error = %v, want ErrLayoutStale", err)
	}
	// Bad bucket counts are rejected before any job runs.
	if _, err := plan.BuildPartitionLayout(mr, input, "part/T2", 0, g.Version()); err == nil {
		t.Error("zero-bucket load accepted")
	}
}

func sortRecords(recs [][]byte) {
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i], recs[j]) < 0 })
}
