// Package plan is the unified physical-plan layer between the query
// compiler and the MapReduce engines. Every query engine in this repository
// (the relational baselines in relmr and the NTGA engines in ntgamr)
// *produces* a plan.Physical — a staged sequence of typed plan nodes, each
// describing one MR cycle — and a single lowering pass (Physical.Lower)
// turns it into the []mapreduce.Stage the executor runs.
//
// The point of the layer is that the paper's argument is a *cost* argument:
// NTGA wins because grouping computes every star subpattern in one cycle
// and lazy/partial β-unnest (μ^β, μ^β_φm) shrinks the shuffled intermediate
// footprint. The typed nodes carry exactly the attributes that accounting
// needs — which star a cycle computes, which join it performs, how the
// joining slot is unnested (UnnestMode), the partition range φ_m — so a
// catalog-driven cost model (cost.go) can price any plan without executing
// it, and an optimizer (optimizer.go) can compare join orders and engines.
package plan

import (
	"fmt"
	"strings"

	"ntga/internal/mapreduce"
	"ntga/internal/query"
)

// Kind classifies a plan node (one MR cycle) by the physical operator it
// executes.
type Kind int

// The plan-node kinds. Each node is one MR cycle; the paper's operators map
// onto kinds plus the UnnestMode attribute:
//
//	Scan            — implicit: every node's Inputs that name the plan's
//	                  base relation are full scans of T (ScanCount).
//	KindSplit       — Pig's SPLIT/compress: map-only filter of T.
//	KindStarJoin    — relational star-join of one star's VP relations.
//	KindGroupFilter — NTGA Job1: TG_GroupByMap + TG_GroupByReduce +
//	                  TG_UnbGrpFilter (β group-filter); with
//	                  UnnestEager it also applies eager μ^β.
//	KindTGJoin      — triplegroup join cycle: TG_Join (UnnestNone),
//	                  TG_UnbJoin (UnnestLazy: map-side full μ^β), or
//	                  TG_OptUnbJoin (UnnestPartial: μ^β_φm, bucketed).
//	KindRelJoin     — relational reduce-side equi-join of tuple files.
//	KindEdgeJoin    — Sel-SJ-first's selective edge join (cycle 1, O-O).
//	KindCompletion  — Sel-SJ-first's combined star-join + join cycle.
//	KindCountFold   — COUNT(*) aggregation over the implicit
//	                  representation (sum of expansion counts).
const (
	KindSplit Kind = iota
	KindStarJoin
	KindGroupFilter
	KindTGJoin
	KindRelJoin
	KindEdgeJoin
	KindCompletion
	KindCountFold
	// KindDeltaUnion is the virtual input node the ingest overlay prepends:
	// it declares that the logical relation T is the union of the base file
	// and an ordered delta chain. It lowers to no MR job — the union is
	// realized by widening the Inputs of every T-scanning node — so it is
	// excluded from Cycles, ScanCount, and cost accounting.
	KindDeltaUnion
)

func (k Kind) String() string {
	switch k {
	case KindSplit:
		return "Split"
	case KindStarJoin:
		return "StarJoin"
	case KindGroupFilter:
		return "GroupFilter"
	case KindTGJoin:
		return "TGJoin"
	case KindRelJoin:
		return "RelJoin"
	case KindEdgeJoin:
		return "EdgeJoin"
	case KindCompletion:
		return "Completion"
	case KindCountFold:
		return "CountFold"
	case KindDeltaUnion:
		return "DeltaUnion"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// UnnestMode says when (and how) a node β-unnests unbound-property slots.
type UnnestMode int

// The unnesting modes of §4 of the paper.
const (
	// UnnestNone: nothing is unnested (bound joins, lazy grouping).
	UnnestNone UnnestMode = iota
	// UnnestEager: μ^β during the grouping reduce (EagerUnnest).
	UnnestEager
	// UnnestLazy: map-side full μ^β of the joining slot (TG_UnbJoin).
	UnnestLazy
	// UnnestPartial: partial μ^β_φm keyed by bucket (TG_OptUnbJoin).
	UnnestPartial
)

func (m UnnestMode) String() string {
	switch m {
	case UnnestNone:
		return "none"
	case UnnestEager:
		return "eager"
	case UnnestLazy:
		return "lazy-full"
	case UnnestPartial:
		return "partial"
	default:
		return fmt.Sprintf("UnnestMode(%d)", int(m))
	}
}

// Node is one typed physical-plan node — one MR cycle. The descriptive
// fields drive cost estimation and EXPLAIN rendering; Job is the lowered
// MapReduce job the executor runs (bound by the engine that produced the
// plan, nil in stats-only plans built without a dataset).
type Node struct {
	// Kind is the physical operator.
	Kind Kind
	// Name is the MR job name (matches Job.Name when Job is set).
	Name string
	// Inputs and Output are DFS file names; Inputs naming the plan's Input
	// are full scans of the triple relation.
	Inputs []string
	Output string

	// Star is the star index a StarJoin/Completion node computes, or -1.
	Star int
	// Join is the inter-star join a TGJoin/RelJoin/EdgeJoin node performs.
	Join *query.Join
	// Unnest says how the node treats unbound slots (see UnnestMode).
	Unnest UnnestMode
	// PhiM is the μ^β_φm partition range (UnnestPartial nodes).
	PhiM int
	// DoubleCopy marks a Split that materializes the relation twice (the
	// Pig unbound-query pattern the paper calls out).
	DoubleCopy bool

	// MapSide marks a cycle rewritten to the no-shuffle map-only form: the
	// node reads co-partitioned inputs, its map attempts commit final
	// output directly, and the reduce phase is elided (shuffle bytes 0).
	MapSide bool
	// Part is the physical partitioning property of the node's input (and,
	// for partition-preserving operators, of its output). Nil means the
	// input is an unpartitioned flat file.
	Part *Partitioning
	// PartReason, on a shuffle node planned while a partitioned layout was
	// available, says why the map-only rewrite could not fire (EXPLAIN
	// renders it).
	PartReason string

	// Job is the lowered MapReduce job. Plans produced by an engine always
	// carry one; plans built only for cost inspection may not.
	Job *mapreduce.Job
}

// Stage is a set of nodes that may execute concurrently (Pig-style
// independent jobs); stages run in sequence.
type Stage []*Node

// Physical is a complete physical plan: the staged node DAG from the base
// triple relation to the final output file.
type Physical struct {
	// Engine names the engine that produced the plan.
	Engine string
	// Input is the DFS name of the base triple relation T.
	Input string
	// PartInput, when set, is the partitioned layout directory the plan
	// reads in place of full scans of Input; Summary renders it as "P".
	PartInput string
	// Deltas, when non-empty, is the ordered delta chain overlaid on Input
	// (ApplyDeltaOverlay): every scan of T reads base ∪ deltas. Summary
	// renders the chain as "D1", "D2", ....
	Deltas []string
	// Stages is the plan body, in execution order.
	Stages []Stage
	// Final is the DFS file holding the plan's result.
	Final string
}

// Nodes returns every node in execution order (stage by stage).
func (p *Physical) Nodes() []*Node {
	var out []*Node
	for _, st := range p.Stages {
		out = append(out, st...)
	}
	return out
}

// Cycles counts the MR cycles (jobs) in the plan — the paper's
// workflow-length metric.
func (p *Physical) Cycles() int {
	n := 0
	for _, st := range p.Stages {
		for _, node := range st {
			if node.Kind != KindDeltaUnion {
				n++
			}
		}
	}
	return n
}

// ScanCount counts how many jobs scan the base triple relation — the
// Figure 3 "full scans of T" metric.
func (p *Physical) ScanCount() int {
	n := 0
	for _, node := range p.Nodes() {
		if node.Kind == KindDeltaUnion {
			continue
		}
		for _, in := range node.Inputs {
			if in == p.Input {
				n++
				break
			}
		}
	}
	return n
}

// ApplyDeltaOverlay rewrites the plan to read base ∪ deltas wherever it
// scans the base relation: a virtual KindDeltaUnion node is prepended to
// document the overlay, and every node whose Inputs name p.Input gains the
// delta files on both the node and its lowered Job. Because the MR engine
// plans splits per input in order and totally orders shuffled (key, value)
// pairs, the overlaid plan's outputs are byte-identical to running the
// original plan over a compacted (or freshly reloaded) merged relation —
// the invariant the ingest parity suite pins down. A nil/empty chain is a
// no-op. The overlay must not be combined with a partitioned plan: an
// uncompacted delta makes any layout stale by definition, so planners fall
// back to the flat path first.
func (p *Physical) ApplyDeltaOverlay(deltas []string) {
	if len(deltas) == 0 {
		return
	}
	p.Deltas = append([]string(nil), deltas...)
	for _, node := range p.Nodes() {
		scansT := false
		for _, in := range node.Inputs {
			if in == p.Input {
				scansT = true
				break
			}
		}
		if !scansT {
			continue
		}
		node.Inputs = append(node.Inputs, p.Deltas...)
		if node.Job != nil {
			node.Job.Inputs = append(node.Job.Inputs, p.Deltas...)
		}
	}
	union := &Node{
		Kind:   KindDeltaUnion,
		Name:   "delta-union",
		Inputs: append([]string{p.Input}, p.Deltas...),
		Output: p.Input,
		Star:   -1,
	}
	p.Stages = append([]Stage{{union}}, p.Stages...)
}

// Lower turns the plan into executable MapReduce stages. It fails if any
// node lacks a bound Job (a stats-only plan cannot execute).
func (p *Physical) Lower() ([]mapreduce.Stage, error) {
	stages := make([]mapreduce.Stage, 0, len(p.Stages))
	for si, st := range p.Stages {
		stage := make(mapreduce.Stage, 0, len(st))
		for _, node := range st {
			if node.Kind == KindDeltaUnion {
				continue // virtual: realized by the widened scan inputs
			}
			if node.Job == nil {
				return nil, fmt.Errorf("plan: node %s (%v, stage %d) has no lowered job", node.Name, node.Kind, si)
			}
			stage = append(stage, node.Job)
		}
		if len(stage) == 0 {
			continue
		}
		stages = append(stages, stage)
	}
	return stages, nil
}

// Summary renders a compact one-node-per-line description of the plan with
// intermediate file names normalized ($1, $2, ... in order of appearance),
// so the output is deterministic across processes — the form the EXPLAIN
// goldens pin down.
func (p *Physical) Summary() string {
	names := map[string]string{p.Input: "T"}
	if p.PartInput != "" {
		names[p.PartInput] = "P"
	}
	for i, d := range p.Deltas {
		names[d] = fmt.Sprintf("D%d", i+1)
	}
	norm := func(f string) string {
		if n, ok := names[f]; ok {
			return n
		}
		n := fmt.Sprintf("$%d", len(names))
		names[f] = n
		return n
	}
	var sb strings.Builder
	for si, st := range p.Stages {
		for _, node := range st {
			attrs := []string{}
			if node.Star >= 0 {
				attrs = append(attrs, fmt.Sprintf("star=%d", node.Star))
			}
			if node.Join != nil {
				attrs = append(attrs, fmt.Sprintf("join=?%s", node.Join.Var))
			}
			if node.Unnest != UnnestNone {
				attrs = append(attrs, "unnest="+node.Unnest.String())
			}
			if node.Unnest == UnnestPartial && node.PhiM > 0 {
				attrs = append(attrs, fmt.Sprintf("phi=%d", node.PhiM))
			}
			if node.DoubleCopy {
				attrs = append(attrs, "copies=2")
			}
			if node.MapSide {
				attrs = append(attrs, "map-only")
			}
			if node.Part != nil {
				attrs = append(attrs, "part="+node.Part.String())
			}
			if node.PartReason != "" {
				attrs = append(attrs, fmt.Sprintf("part-miss=%q", node.PartReason))
			}
			ins := make([]string, len(node.Inputs))
			for i, in := range node.Inputs {
				ins[i] = norm(in)
			}
			a := ""
			if len(attrs) > 0 {
				a = " [" + strings.Join(attrs, " ") + "]"
			}
			fmt.Fprintf(&sb, "stage %d: %-12s %s <- %s%s\n",
				si+1, node.Kind.String(), norm(node.Output), strings.Join(ins, "+"), a)
		}
	}
	return sb.String()
}
