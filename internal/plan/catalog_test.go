package plan_test

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/plan"
	"ntga/internal/rdf"
)

func TestFromGraphExact(t *testing.T) {
	g := enginetest.BioGraph()
	cat := plan.FromGraph(g)

	if cat.Triples != int64(g.Len()) {
		t.Errorf("Triples = %d, want %d", cat.Triples, g.Len())
	}
	if want := int64(len(g.Subjects())); cat.Subjects != want {
		t.Errorf("Subjects = %d, want %d", cat.Subjects, want)
	}
	if cat.Bytes <= 0 {
		t.Errorf("Bytes = %d, want > 0", cat.Bytes)
	}

	// Per-property triple counts must partition the relation.
	var sum int64
	for _, ps := range cat.Props {
		sum += ps.Triples
	}
	if sum != cat.Triples {
		t.Errorf("per-property triples sum to %d, want %d", sum, cat.Triples)
	}

	// Spot-check one property against a direct scan.
	label := rdf.NewIRI("http://ex/label")
	labelID, ok := g.Dict.Lookup(label)
	if !ok {
		t.Fatal("BioGraph has no ex:label property")
	}
	var n int64
	subj := map[rdf.ID]struct{}{}
	for _, tr := range g.Triples {
		if tr.P == labelID {
			n++
			subj[tr.S] = struct{}{}
		}
	}
	ps, ok := cat.Prop(label.Key())
	if !ok {
		t.Fatalf("catalog has no stats for %s", label.Key())
	}
	if ps.Triples != n || ps.Subjects != int64(len(subj)) {
		t.Errorf("label stats = %+v, want triples=%d subjects=%d", ps, n, len(subj))
	}
	if cat.AvgTriplesPerSubject() <= 0 {
		t.Error("AvgTriplesPerSubject should be positive")
	}
}

func TestCatalogRoundTrips(t *testing.T) {
	cat := plan.FromGraph(enginetest.BioGraph())

	var buf bytes.Buffer
	if err := cat.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := plan.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertCatalogsEqual(t, "Write/Read", cat, got)

	path := filepath.Join(t.TempDir(), "catalog.json")
	if err := cat.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err = plan.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertCatalogsEqual(t, "WriteFile/ReadFile", cat, got)

	mr := enginetest.NewMR()
	if err := cat.SaveDFS(mr.DFS(), "data/catalog"); err != nil {
		t.Fatal(err)
	}
	got, err = plan.LoadDFS(mr.DFS(), "data/catalog")
	if err != nil {
		t.Fatal(err)
	}
	assertCatalogsEqual(t, "SaveDFS/LoadDFS", cat, got)
}

func assertCatalogsEqual(t *testing.T, via string, want, got *plan.Catalog) {
	t.Helper()
	if got.Triples != want.Triples || got.Subjects != want.Subjects ||
		got.Objects != want.Objects || got.Bytes != want.Bytes {
		t.Errorf("%s: totals %+v, want %+v", via,
			[4]int64{got.Triples, got.Subjects, got.Objects, got.Bytes},
			[4]int64{want.Triples, want.Subjects, want.Objects, want.Bytes})
	}
	if len(got.Props) != len(want.Props) {
		t.Fatalf("%s: %d properties, want %d", via, len(got.Props), len(want.Props))
	}
	for k, ps := range want.Props {
		if got.Props[k] != ps {
			t.Errorf("%s: prop %s = %+v, want %+v", via, k, got.Props[k], ps)
		}
	}
}

// TestBuildCatalogMatchesExact runs the map-only statistics job over the
// DFS-resident triple relation and checks it against the exact in-memory
// scan: triple counts and byte sizes are exact, distinct counts (linear
// counting sketches) land within 2%.
func TestBuildCatalogMatchesExact(t *testing.T) {
	g := enginetest.RandomGraph(7, 6000, 400, 12, 900)
	exact := plan.FromGraph(g)

	mr := enginetest.NewMR()
	const input = "data/triples"
	if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
		t.Fatal(err)
	}
	cat, err := plan.BuildCatalog(mr, input, "data/catalog", g.Dict)
	if err != nil {
		t.Fatal(err)
	}

	if cat.Triples != exact.Triples {
		t.Errorf("Triples = %d, want %d", cat.Triples, exact.Triples)
	}
	if cat.Bytes != exact.Bytes {
		t.Errorf("Bytes = %d, want %d", cat.Bytes, exact.Bytes)
	}
	checkWithin(t, "Subjects", cat.Subjects, exact.Subjects, 0.02)
	checkWithin(t, "Objects", cat.Objects, exact.Objects, 0.02)
	if len(cat.Props) != len(exact.Props) {
		t.Fatalf("%d properties, want %d", len(cat.Props), len(exact.Props))
	}
	for k, want := range exact.Props {
		got, ok := cat.Prop(k)
		if !ok {
			t.Fatalf("missing property %s", k)
		}
		if got.Triples != want.Triples {
			t.Errorf("prop %s triples = %d, want %d", k, got.Triples, want.Triples)
		}
		checkWithin(t, "prop "+k+" subjects", got.Subjects, want.Subjects, 0.02)
		checkWithin(t, "prop "+k+" objects", got.Objects, want.Objects, 0.02)
	}

	// The job persisted the catalog to the DFS for later plan-time loads.
	fromDFS, err := plan.LoadDFS(mr.DFS(), "data/catalog")
	if err != nil {
		t.Fatal(err)
	}
	assertCatalogsEqual(t, "BuildCatalog DFS persistence", cat, fromDFS)

	// The scan temporary must not linger.
	if _, err := mr.DFS().Open(input + ".catalog-scan"); err == nil {
		t.Error("catalog scan output was not cleaned up")
	}
}

func checkWithin(t *testing.T, what string, got, want int64, tol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %d, want 0", what, got)
		}
		return
	}
	if math.Abs(float64(got-want))/float64(want) > tol {
		t.Errorf("%s = %d, want %d ±%.0f%%", what, got, want, tol*100)
	}
}
