package plan_test

import (
	"math"
	"reflect"
	"testing"

	"ntga/internal/enginetest"
	"ntga/internal/plan"
	"ntga/internal/rdf"
)

// TestCatalogStateMergeEqualsSingleScan: folding a dataset in as a base
// plus a chain of delta batches — in any chunking — produces exactly the
// state one scan of the merged dataset would, so the incremental ingest
// path loses nothing against a full catalog rebuild.
func TestCatalogStateMergeEqualsSingleScan(t *testing.T) {
	g := enginetest.RandomGraph(11, 4000, 300, 25, 400)

	single := plan.StateFromGraph(g)

	// Base load plus four "ingested" delta batches, each folded into its own
	// mergeable state first (the shape the delta-scan MR job produces).
	chunk := (len(g.Triples) + 4) / 5
	folded := plan.NewCatalogState()
	for off := 0; off < len(g.Triples); off += chunk {
		end := off + chunk
		if end > len(g.Triples) {
			end = len(g.Triples)
		}
		part := plan.NewCatalogState()
		for _, tr := range g.Triples[off:end] {
			part.AddTriple(g.Dict, tr)
		}
		if err := folded.Merge(part); err != nil {
			t.Fatal(err)
		}
	}

	if !reflect.DeepEqual(folded.Catalog(), single.Catalog()) {
		t.Error("chunk-merged catalog differs from single-scan catalog")
	}
	if folded.Triples != single.Triples || folded.Bytes != single.Bytes {
		t.Errorf("merged sums = (%d, %d), want (%d, %d)",
			folded.Triples, folded.Bytes, single.Triples, single.Bytes)
	}
}

// TestCatalogStateDriftBound: the sketch-estimated distinct counts of an
// incrementally maintained catalog stay within the linear-counting error
// bound of the exact counts — the drift an ingest-heavy daemon accumulates
// is bounded by the sketch, not by how many batches it folded.
func TestCatalogStateDriftBound(t *testing.T) {
	g := enginetest.RandomGraph(23, 6000, 500, 30, 700)
	exact := plan.FromGraph(g)

	// Fold in many small batches, the worst case for accumulated drift.
	st := plan.NewCatalogState()
	const batch = 97
	for off := 0; off < len(g.Triples); off += batch {
		end := off + batch
		if end > len(g.Triples) {
			end = len(g.Triples)
		}
		part := plan.NewCatalogState()
		for _, tr := range g.Triples[off:end] {
			part.AddTriple(g.Dict, tr)
		}
		if err := st.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	got := st.Catalog()

	check := func(name string, est, want int64, bound float64) {
		t.Helper()
		// Collisions are Poisson-distributed; when the expected count is
		// below 1 the Gaussian 4σ bound understates the discrete tail, so a
		// small additive floor keeps sparse properties from flaking.
		bound += 3
		if diff := math.Abs(float64(est - want)); diff > bound {
			t.Errorf("%s estimate %d drifted %.1f from exact %d, want <= %.1f",
				name, est, diff, want, bound)
		}
	}
	// 4 standard deviations: astronomically unlikely to trip unless the
	// merge path genuinely corrupts the bitmaps.
	check("subjects", got.Subjects, exact.Subjects, 4*st.Subjects.ErrorBound(exact.Subjects))
	check("objects", got.Objects, exact.Objects, 4*st.Objects.ErrorBound(exact.Objects))

	if got.Triples != exact.Triples {
		t.Errorf("triples = %d, want exact %d (counts are not estimated)", got.Triples, exact.Triples)
	}
	for key, eps := range exact.Props {
		gps, ok := got.Prop(key)
		if !ok {
			t.Errorf("property %s missing from folded catalog", key)
			continue
		}
		if gps.Triples != eps.Triples {
			t.Errorf("%s triples = %d, want exact %d", key, gps.Triples, eps.Triples)
		}
		pstate := st.Props[key]
		check(key+" subjects", gps.Subjects, eps.Subjects, 4*pstate.Subjects.ErrorBound(eps.Subjects))
		check(key+" objects", gps.Objects, eps.Objects, 4*pstate.Objects.ErrorBound(eps.Objects))
	}
}

// TestStateFromGraphMatchesFreshDict: folding the same logical triples
// through two independently built dictionaries yields the same catalog —
// the state keys properties by term, not by dictionary ID.
func TestStateFromGraphMatchesFreshDict(t *testing.T) {
	a := enginetest.BioGraph()
	b := rdf.NewGraph()
	// Re-add a's triples in reverse so b's dictionary assigns different IDs.
	for i := len(a.Triples) - 1; i >= 0; i-- {
		tr := a.Triples[i]
		b.Add(a.Dict.Decode(tr.S), a.Dict.Decode(tr.P), a.Dict.Decode(tr.O))
	}
	b.Dedup()

	ca, cb := plan.StateFromGraph(a).Catalog(), plan.StateFromGraph(b).Catalog()
	if ca.Triples != cb.Triples || ca.Bytes != cb.Bytes {
		t.Errorf("sums differ across dictionaries: (%d, %d) vs (%d, %d)",
			ca.Triples, ca.Bytes, cb.Triples, cb.Bytes)
	}
	for key, pa := range ca.Props {
		if pb, ok := cb.Prop(key); !ok || pa.Triples != pb.Triples {
			t.Errorf("property %s differs across dictionaries: %+v vs %+v", key, pa, pb)
		}
	}
}
