package plan

import (
	"fmt"

	"ntga/internal/query"
)

// maxSearchStars caps the exhaustive join-order search; beyond it the
// optimizer keeps the compile-time order (n! orders — 8 stars is already
// 40320 candidate orders, far past the paper's query shapes).
const maxSearchStars = 8

// Reorder is the outcome of a join-order search.
type Reorder struct {
	// Order is the chosen star visit order; Joins the matching sequence.
	Order []int
	Joins []query.Join
	// Est and LegacyEst are the estimated join-chain shuffle bytes of the
	// chosen and the compile-time order.
	Est       int64
	LegacyEst int64
	// Changed reports whether the chosen order differs from the legacy one
	// (strictly cheaper — ties keep the legacy order).
	Changed bool
}

// ReorderJoins searches all valid star visit orders for the one minimizing
// the estimated inter-star join-chain shuffle (JoinChainShuffle). It never
// mutates q. The legacy (compile-time) order wins ties, so a catalog with
// no discriminating statistics reproduces the legacy plan exactly.
func ReorderJoins(cat *Catalog, q *query.Query) (*Reorder, error) {
	return ReorderJoinsPartitioned(cat, q, nil)
}

// ReorderJoinsPartitioned is ReorderJoins pricing each candidate order with
// the partition-reuse term (JoinChainShufflePartitioned): when the input is
// subject-partitioned, orders whose join chains keep binding through star
// subjects run map-only for longer and estimate cheaper, so the search
// prefers partition-preserving orders. A nil partitioning reproduces
// ReorderJoins exactly.
func ReorderJoinsPartitioned(cat *Catalog, q *query.Query, part *Partitioning) (*Reorder, error) {
	if cat == nil {
		return nil, fmt.Errorf("plan: ReorderJoins needs a catalog")
	}
	if len(q.Stars) <= 1 && part != nil {
		// Nothing to reorder, but validate the property anyway so callers
		// passing a hand-built Partitioning fail loudly.
		if err := CheckBuckets(part.Buckets); err != nil {
			return nil, err
		}
	}
	legacy := query.JoinOrder(q.Joins, len(q.Stars))
	r := &Reorder{
		Order:     legacy,
		Joins:     q.Joins,
		LegacyEst: JoinChainShufflePartitioned(cat, q, q.Joins, part),
	}
	r.Est = r.LegacyEst
	if len(q.Stars) <= 2 || len(q.Stars) > maxSearchStars {
		// One join (or none): every order shuffles the same two stars.
		return r, nil
	}
	base := make([]int, len(q.Stars))
	for i := range base {
		base[i] = i
	}
	permute(base, 0, func(order []int) {
		joins, err := q.JoinsForOrder(order)
		if err != nil {
			return // disconnected prefix or cyclic — not a valid order
		}
		est := JoinChainShufflePartitioned(cat, q, joins, part)
		if est < r.Est {
			r.Est = est
			r.Order = append([]int(nil), order...)
			r.Joins = joins
			r.Changed = true
		}
	})
	return r, nil
}

// Optimize runs the join-order search and, when a strictly cheaper order
// exists, rewrites q.Joins in place. Both ntgamr and relmr route join sides
// through Join.Left/Right positions, so the rewritten sequence flows
// through every engine unchanged.
func Optimize(cat *Catalog, q *query.Query) (*Reorder, error) {
	r, err := ReorderJoins(cat, q)
	if err != nil {
		return nil, err
	}
	if r.Changed {
		q.Joins = r.Joins
	}
	return r, nil
}

// permute calls f with every permutation of a[k:] (Heap's-style recursive
// swap; a is reused across calls — f must copy to retain).
func permute(a []int, k int, f func([]int)) {
	if k == len(a) {
		f(a)
		return
	}
	for i := k; i < len(a); i++ {
		a[k], a[i] = a[i], a[k]
		permute(a, k+1, f)
		a[k], a[i] = a[i], a[k]
	}
}
