package plan

import (
	"encoding/json"
	"fmt"

	"ntga/internal/hdfs"
	"ntga/internal/rdf"
	"ntga/internal/stats"
)

// PropState is the mergeable per-property accumulator behind PropStats: the
// exact triple count plus the distinct-subject/object sketch bitmaps.
type PropState struct {
	Triples  int64         `json:"triples"`
	Subjects *stats.Sketch `json:"subjects"`
	Objects  *stats.Sketch `json:"objects"`
}

// CatalogState is the mergeable form of the statistics catalog: exact sums
// (triples, bytes, per-property triple counts) plus linear-counting sketch
// bitmaps for every distinct count. A Catalog is a pure projection of this
// state (Catalog()), and two states over disjoint data merge into exactly
// the state a single scan of the union would produce — the property the
// incremental ingest path leans on: scan only the delta block, merge, and
// the resulting catalog is identical to a full rebuild.
type CatalogState struct {
	Triples  int64                 `json:"triples"`
	Bytes    int64                 `json:"bytes"`
	Subjects *stats.Sketch         `json:"subjects"`
	Objects  *stats.Sketch         `json:"objects"`
	Props    map[string]*PropState `json:"props"`
}

// NewCatalogState returns an empty state with full-size sketches.
func NewCatalogState() *CatalogState {
	return &CatalogState{
		Subjects: stats.NewSketch(globalSketchLogM),
		Objects:  stats.NewSketch(globalSketchLogM),
		Props:    make(map[string]*PropState),
	}
}

// StateFromGraph accumulates the state of an in-memory graph directly —
// the seed the resident daemons build at boot so later delta merges have a
// base to fold into. It uses the same sketches and the same triple byte
// accounting as the MR scan (BuildCatalogState), so the two construction
// paths produce identical states over identical data.
func StateFromGraph(g *rdf.Graph) *CatalogState {
	st := NewCatalogState()
	st.AddGraph(g)
	return st
}

// AddGraph folds every triple of a graph into the state. Used both to seed
// the state (StateFromGraph) and to fold a parsed delta batch in without an
// MR scan.
func (st *CatalogState) AddGraph(g *rdf.Graph) {
	for _, t := range g.Triples {
		st.AddTriple(g.Dict, t)
	}
}

// AddTriple folds one triple into the state. The byte accounting matches
// the DFS-resident record encoding (tripleLen), keeping graph-built and
// scan-built states identical.
func (st *CatalogState) AddTriple(dict *rdf.Dict, t rdf.Triple) {
	st.Triples++
	st.Bytes += int64(tripleLen(t))
	st.Subjects.Add(uint64(t.S))
	st.Objects.Add(uint64(t.O))
	key := dict.Decode(t.P).Key()
	ps, ok := st.Props[key]
	if !ok {
		ps = &PropState{
			Subjects: stats.NewSketch(perPropSketchLogM),
			Objects:  stats.NewSketch(perPropSketchLogM),
		}
		st.Props[key] = ps
	}
	ps.Triples++
	ps.Subjects.Add(uint64(t.S))
	ps.Objects.Add(uint64(t.O))
}

// Merge folds another state into this one: exact sums add, sketch bitmaps
// OR. Afterwards this state equals the state of a single scan over the
// concatenation of the two inputs.
func (st *CatalogState) Merge(o *CatalogState) error {
	if o == nil {
		return nil
	}
	st.Triples += o.Triples
	st.Bytes += o.Bytes
	if err := st.Subjects.Merge(o.Subjects); err != nil {
		return err
	}
	if err := st.Objects.Merge(o.Objects); err != nil {
		return err
	}
	for key, ops := range o.Props {
		ps, ok := st.Props[key]
		if !ok {
			st.Props[key] = &PropState{
				Triples:  ops.Triples,
				Subjects: ops.Subjects.Clone(),
				Objects:  ops.Objects.Clone(),
			}
			continue
		}
		ps.Triples += ops.Triples
		if err := ps.Subjects.Merge(ops.Subjects); err != nil {
			return err
		}
		if err := ps.Objects.Merge(ops.Objects); err != nil {
			return err
		}
	}
	return nil
}

// Catalog projects the state down to the estimate-bearing catalog the
// planner and the cost model consume.
func (st *CatalogState) Catalog() *Catalog {
	c := &Catalog{
		Triples:  st.Triples,
		Subjects: st.Subjects.Estimate(),
		Objects:  st.Objects.Estimate(),
		Bytes:    st.Bytes,
		Props:    make(map[string]PropStats, len(st.Props)),
	}
	for key, ps := range st.Props {
		c.Props[key] = PropStats{
			Triples:  ps.Triples,
			Subjects: ps.Subjects.Estimate(),
			Objects:  ps.Objects.Estimate(),
		}
	}
	return c
}

// SaveDFS persists the state as a single JSON record (sketch bitmaps
// base64-encoded), mirroring Catalog.SaveDFS.
func (st *CatalogState) SaveDFS(dfs *hdfs.DFS, name string) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	dfs.DeleteIfExists(name)
	return dfs.WriteFile(name, [][]byte{data})
}

// LoadCatalogState reads a state persisted by SaveDFS.
func LoadCatalogState(dfs *hdfs.DFS, name string) (*CatalogState, error) {
	recs, err := dfs.ReadAll(name)
	if err != nil {
		return nil, err
	}
	if len(recs) != 1 {
		return nil, fmt.Errorf("plan: catalog state %s has %d records, want 1", name, len(recs))
	}
	st := &CatalogState{}
	if err := json.Unmarshal(recs[0], st); err != nil {
		return nil, fmt.Errorf("plan: catalog state %s: %w", name, err)
	}
	return st, nil
}
