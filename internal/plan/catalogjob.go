package plan

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"ntga/internal/codec"
	"ntga/internal/mapreduce"
	"ntga/internal/rdf"
)

// distinctSketch is a linear-counting sketch (Whang et al.): a bitmap
// indexed by a hash of the element, with the distinct count estimated from
// the fraction of zero bits. It is order-independent and mergeable — any
// interleaving of Add calls across concurrent map tasks yields the same
// bitmap — which is what makes the catalog builder a pure map-only job. At
// the scales the builder sees relative to the bitmap size the estimate is
// within a couple of percent of exact.
type distinctSketch struct {
	bits []uint64
	m    uint64 // bitmap size in bits (power of two)
}

func newSketch(logM uint) *distinctSketch {
	m := uint64(1) << logM
	return &distinctSketch{bits: make([]uint64, m/64), m: m}
}

// Add records one element by its 64-bit value.
func (s *distinctSketch) Add(v uint64) {
	h := mix64(v)
	i := h & (s.m - 1)
	s.bits[i/64] |= 1 << (i % 64)
}

// Estimate returns the linear-counting estimate n̂ = m·ln(m/z), where z is
// the number of zero bits.
func (s *distinctSketch) Estimate() int64 {
	ones := 0
	for _, w := range s.bits {
		ones += bits.OnesCount64(w)
	}
	zeros := s.m - uint64(ones)
	if zeros == 0 {
		return int64(s.m) // saturated; the caller chose m too small
	}
	if ones == 0 {
		return 0
	}
	return int64(math.Round(float64(s.m) * math.Log(float64(s.m)/float64(zeros))))
}

// mix64 is SplitMix64's finalizer — a cheap, deterministic bijection that
// spreads small dictionary IDs across the hash space.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Bitmap sizes: the global subject/object sketches see up to the full
// relation's cardinality, the per-property ones a fraction of it.
const (
	globalSketchLogM  = 17 // 128K bits = 16KB
	perPropSketchLogM = 14 // 16K bits = 2KB
)

// catalogMapper is the stateful map-only scan that accumulates the catalog.
// Exact counters (triples, bytes, per-property triple counts) are plain
// sums; distinct counts use linear-counting sketches. All accumulation is
// commutative, so concurrent map tasks and retried attempts produce
// identical state. The mapper collects no output records — the job exists
// for its scan.
type catalogMapper struct {
	mu       sync.Mutex
	triples  int64
	bytes    int64
	subjects *distinctSketch
	objects  *distinctSketch
	perProp  map[rdf.ID]*propAcc
}

type propAcc struct {
	triples  int64
	subjects *distinctSketch
	objects  *distinctSketch
}

func newCatalogMapper() *catalogMapper {
	return &catalogMapper{
		subjects: newSketch(globalSketchLogM),
		objects:  newSketch(globalSketchLogM),
		perProp:  make(map[rdf.ID]*propAcc),
	}
}

// MapRecord implements mapreduce.MapOnlyMapper.
func (m *catalogMapper) MapRecord(_ string, record []byte, _ mapreduce.Collector) error {
	t, err := codec.DecodeTriple(record)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.triples++
	m.bytes += int64(len(record))
	m.subjects.Add(uint64(t.S))
	m.objects.Add(uint64(t.O))
	pa, ok := m.perProp[t.P]
	if !ok {
		pa = &propAcc{subjects: newSketch(perPropSketchLogM), objects: newSketch(perPropSketchLogM)}
		m.perProp[t.P] = pa
	}
	pa.triples++
	pa.subjects.Add(uint64(t.S))
	pa.objects.Add(uint64(t.O))
	return nil
}

// finalize converts the accumulated state into a Catalog, decoding property
// IDs to term keys through the dictionary.
func (m *catalogMapper) finalize(dict *rdf.Dict) *Catalog {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &Catalog{
		Triples:  m.triples,
		Subjects: m.subjects.Estimate(),
		Objects:  m.objects.Estimate(),
		Bytes:    m.bytes,
		Props:    make(map[string]PropStats, len(m.perProp)),
	}
	for pid, pa := range m.perProp {
		c.Props[dict.Decode(pid).Key()] = PropStats{
			Triples:  pa.triples,
			Subjects: pa.subjects.Estimate(),
			Objects:  pa.objects.Estimate(),
		}
	}
	return c
}

// BuildCatalog runs a map-only MR job over the DFS-resident triple relation
// and assembles the statistics catalog from the scan. When dfsOut is
// non-empty the catalog is also persisted to that DFS file (SaveDFS), ready
// to be loaded at plan time by a later workflow. The dictionary is only
// used to translate property IDs into the catalog's term keys; the counts
// come entirely from the scanned relation.
func BuildCatalog(mr *mapreduce.Engine, input, dfsOut string, dict *rdf.Dict) (*Catalog, error) {
	if dict == nil {
		return nil, fmt.Errorf("plan: BuildCatalog needs a dictionary to key properties")
	}
	m := newCatalogMapper()
	scan := input + ".catalog-scan"
	job := &mapreduce.Job{
		Name:    "catalog-build",
		Inputs:  []string{input},
		Output:  scan,
		MapOnly: m,
	}
	defer mr.DFS().DeleteIfExists(scan)
	if _, err := mr.RunWorkflowNamed("catalog-build", []mapreduce.Stage{{job}}); err != nil {
		return nil, err
	}
	c := m.finalize(dict)
	if dfsOut != "" {
		if err := c.SaveDFS(mr.DFS(), dfsOut); err != nil {
			return nil, err
		}
	}
	return c, nil
}
