package plan

import (
	"fmt"
	"sync"

	"ntga/internal/codec"
	"ntga/internal/mapreduce"
	"ntga/internal/rdf"
	"ntga/internal/stats"
)

// Bitmap sizes: the global subject/object sketches see up to the full
// relation's cardinality, the per-property ones a fraction of it. Every
// sketch the catalog machinery builds uses these two sizes, so any two
// catalog states (full build, delta build, persisted state) are mergeable.
const (
	globalSketchLogM  = 17 // 128K bits = 16KB
	perPropSketchLogM = 14 // 16K bits = 2KB
)

// catalogMapper is the stateful map-only scan that accumulates the catalog.
// Exact counters (triples, bytes, per-property triple counts) are plain
// sums; distinct counts use linear-counting sketches (stats.Sketch). All
// accumulation is commutative, so concurrent map tasks and retried attempts
// produce identical state. The mapper collects no output records — the job
// exists for its scan.
type catalogMapper struct {
	mu       sync.Mutex
	triples  int64
	bytes    int64
	subjects *stats.Sketch
	objects  *stats.Sketch
	perProp  map[rdf.ID]*propAcc
}

type propAcc struct {
	triples  int64
	subjects *stats.Sketch
	objects  *stats.Sketch
}

func newCatalogMapper() *catalogMapper {
	return &catalogMapper{
		subjects: stats.NewSketch(globalSketchLogM),
		objects:  stats.NewSketch(globalSketchLogM),
		perProp:  make(map[rdf.ID]*propAcc),
	}
}

// MapRecord implements mapreduce.MapOnlyMapper.
func (m *catalogMapper) MapRecord(_ string, record []byte, _ mapreduce.Collector) error {
	t, err := codec.DecodeTriple(record)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.triples++
	m.bytes += int64(len(record))
	m.subjects.Add(uint64(t.S))
	m.objects.Add(uint64(t.O))
	pa, ok := m.perProp[t.P]
	if !ok {
		pa = &propAcc{subjects: stats.NewSketch(perPropSketchLogM), objects: stats.NewSketch(perPropSketchLogM)}
		m.perProp[t.P] = pa
	}
	pa.triples++
	pa.subjects.Add(uint64(t.S))
	pa.objects.Add(uint64(t.O))
	return nil
}

// state converts the accumulated scan into a mergeable CatalogState,
// decoding property IDs to term keys through the dictionary.
func (m *catalogMapper) state(dict *rdf.Dict) *CatalogState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := &CatalogState{
		Triples:  m.triples,
		Bytes:    m.bytes,
		Subjects: m.subjects.Clone(),
		Objects:  m.objects.Clone(),
		Props:    make(map[string]*PropState, len(m.perProp)),
	}
	for pid, pa := range m.perProp {
		st.Props[dict.Decode(pid).Key()] = &PropState{
			Triples:  pa.triples,
			Subjects: pa.subjects.Clone(),
			Objects:  pa.objects.Clone(),
		}
	}
	return st
}

// BuildCatalog runs a map-only MR job over the DFS-resident triple relation
// and assembles the statistics catalog from the scan. When dfsOut is
// non-empty the catalog is also persisted to that DFS file (SaveDFS), ready
// to be loaded at plan time by a later workflow. The dictionary is only
// used to translate property IDs into the catalog's term keys; the counts
// come entirely from the scanned relation.
func BuildCatalog(mr *mapreduce.Engine, input, dfsOut string, dict *rdf.Dict) (*Catalog, error) {
	st, err := BuildCatalogState(mr, input, dict)
	if err != nil {
		return nil, err
	}
	c := st.Catalog()
	if dfsOut != "" {
		if err := c.SaveDFS(mr.DFS(), dfsOut); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// BuildCatalogState is BuildCatalog's mergeable form: it returns the raw
// accumulated state (exact sums plus sketch bitmaps) instead of collapsing
// to estimates. Running it over a delta block and merging into a persisted
// state is how the catalog is maintained incrementally across ingests — no
// rescan of the base relation.
func BuildCatalogState(mr *mapreduce.Engine, input string, dict *rdf.Dict) (*CatalogState, error) {
	if dict == nil {
		return nil, fmt.Errorf("plan: BuildCatalog needs a dictionary to key properties")
	}
	m := newCatalogMapper()
	scan := input + ".catalog-scan"
	job := &mapreduce.Job{
		Name:    "catalog-build",
		Inputs:  []string{input},
		Output:  scan,
		MapOnly: m,
	}
	defer mr.DFS().DeleteIfExists(scan)
	if _, err := mr.RunWorkflowNamed("catalog-build", []mapreduce.Stage{{job}}); err != nil {
		return nil, err
	}
	return m.state(dict), nil
}
