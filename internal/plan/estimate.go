package plan

import (
	"ntga/internal/query"
)

// NodeCost is one node's contribution to the plan estimate.
type NodeCost struct {
	Name            string
	Kind            Kind
	EstShuffleBytes int64
	EstOutRecords   int64
}

// Estimate prices a physical plan against the catalog: cycles and scans are
// structural (counted off the plan), shuffle bytes are estimated node by
// node with the paper's redundancy-factor accounting for unbound slots.
func Estimate(cat *Catalog, q *query.Query, p *Physical) (Cost, []NodeCost) {
	e := NewEstimator(cat, q)
	tb := cat.AvgTripleBytes()
	eager := false
	total := 0.0
	var nodes []NodeCost
	for _, node := range p.Nodes() {
		if node.Kind == KindDeltaUnion {
			continue // virtual input node, no MR cycle to price
		}
		var shuffle float64
		var out fileEst
		switch node.Kind {
		case KindSplit:
			recs := e.relevantTriples()
			if node.DoubleCopy {
				recs *= 2
			}
			out = fileEst{records: recs, bytes: recs * tb}

		case KindStarJoin:
			se := e.stars[node.Star]
			shuffle = se.triples * (tb + keyOverhead)
			out = e.starFile(node.Star, true) // relational output is expanded

		case KindGroupFilter:
			eager = node.Unnest == UnnestEager
			shuffle = e.relevantTriples() * (tb + keyOverhead)
			for i := range e.stars {
				sf := e.starFile(i, eager)
				out.records += sf.records
				out.bytes += sf.bytes
			}

		case KindTGJoin:
			j := node.Join
			var left fileEst
			if len(node.Inputs) == 2 {
				left = e.files[node.Inputs[0]]
			} else {
				left = e.starFile(j.Left.Star, eager)
			}
			right := e.starFile(j.Right.Star, eager)
			shuffle = e.tgSideShuffle(left, j.Left, node) + e.tgSideShuffle(right, j.Right, node)
			out = e.joinOut(left, right, j)

		case KindRelJoin:
			j := node.Join
			left := e.files[node.Inputs[0]]
			right := e.files[node.Inputs[1]]
			shuffle = left.bytes + left.records*keyOverhead +
				right.bytes + right.records*keyOverhead
			out = e.joinOut(left, right, j)

		case KindEdgeJoin:
			j := node.Join
			left := e.edgePattern(j.Left)
			right := e.edgePattern(j.Right)
			shuffle = left.bytes + left.records*keyOverhead +
				right.bytes + right.records*keyOverhead
			out = e.joinOut(left, right, j)

		case KindCompletion:
			se := e.stars[node.Star]
			tuples := e.files[node.Inputs[1]]
			shuffle = se.triples*(tb+keyOverhead) + tuples.bytes + tuples.records*keyOverhead
			joinSel := se.subjects / clampMin(float64(cat.Subjects), 1)
			recs := tuples.records * se.expand * joinSel
			out = fileEst{records: recs, bytes: recs * (tuples.perRecord() + se.tupleBytes)}

		case KindCountFold:
			in := e.files[node.Inputs[0]]
			shuffle = in.records * keyOverhead
			out = fileEst{records: 1, bytes: 8}
		}
		if node.MapSide {
			// The no-shuffle rewrite: co-partitioned inputs make the cycle
			// map-only, so nothing crosses the shuffle regardless of kind.
			shuffle = 0
		}
		e.files[node.Output] = out
		total += shuffle
		nodes = append(nodes, NodeCost{
			Name: node.Name, Kind: node.Kind,
			EstShuffleBytes: f2i(shuffle), EstOutRecords: f2i(out.records),
		})
	}
	return Cost{Cycles: p.Cycles(), Scans: p.ScanCount(), ShuffleBytes: f2i(total)}, nodes
}

// tgSideShuffle prices one side of a triplegroup-join cycle, applying the
// paper's redundancy accounting when the join runs through an unbound slot:
//
//   - lazy full β-unnest (TG_UnbJoin) replicates the rest of the group once
//     per slot candidate — redundancy factor = |candidates|;
//   - partial β-unnest (TG_OptUnbJoin) replicates the rest of the group
//     once per *bucket hit* (≤ min(|candidates|, φ_m)) while each candidate
//     triple crosses the shuffle exactly once.
func (e *Estimator) tgSideShuffle(side fileEst, pos query.Pos, node *Node) float64 {
	tb := e.cat.AvgTripleBytes()
	per := side.perRecord()
	if pos.Role == query.RoleSlotObj && node.Unnest != UnnestNone {
		cands := e.stars[pos.Star].slotCands[pos.Idx]
		switch node.Unnest {
		case UnnestPartial:
			buckets := cands
			if phi := float64(node.PhiM); phi > 0 && phi < buckets {
				buckets = phi
			}
			rest := clampMin(per-cands*tb, 0)
			return side.records * (buckets*(rest+bucketOverhead) + cands*tb)
		default: // UnnestLazy (and eager-at-join fallbacks)
			rest := clampMin(per-(cands-1)*tb, tb)
			return side.records * cands * (rest + keyOverhead)
		}
	}
	if pos.Role == query.RoleBoundObj {
		mult := e.stars[pos.Star].boundMult[pos.Idx]
		return side.records * clampMin(mult, 1) * (per + keyOverhead)
	}
	return side.records * (per + keyOverhead)
}

// edgePattern estimates the triples matching one bound pattern — the map
// output of the Sel-SJ-first edge-join cycle for one side.
func (e *Estimator) edgePattern(pos query.Pos) fileEst {
	b := e.q.Stars[pos.Star].Bound[pos.Idx]
	key, _ := e.propKey(b.PatIdx)
	ps := e.cat.Props[key]
	recs := float64(ps.Triples) * e.objSel(b.PatIdx, float64(ps.Objects))
	return fileEst{records: recs, bytes: recs * (e.cat.AvgTripleBytes() + recOverhead)}
}

// JoinChainShuffle estimates the shuffle bytes of the inter-star join chain
// for a candidate join sequence — the order-dependent part of every
// engine's plan. Each cycle shuffles the accumulated partial result plus
// the newly folded star; the accumulated result grows by the join's
// estimated cardinality. The expanded (relational) representation is used
// for both sides, making the metric engine-agnostic: the ordering decision
// depends on the *relative* size of intermediate results, which nesting
// scales but does not reorder.
func JoinChainShuffle(cat *Catalog, q *query.Query, joins []query.Join) int64 {
	if len(joins) == 0 {
		return 0
	}
	e := NewEstimator(cat, q)
	acc := e.starFile(joins[0].Left.Star, true)
	total := 0.0
	for i := range joins {
		j := &joins[i]
		right := e.starFile(j.Right.Star, true)
		total += acc.bytes + acc.records*keyOverhead +
			right.bytes + right.records*keyOverhead
		acc = e.joinOut(acc, right, j)
	}
	return f2i(total)
}

// PartitionServes reports whether a subject-partitioned layout can serve
// join i of a chain map-side: every join up to and including i must bind its
// right side through the star's subject (the bucket key), because the first
// shuffled join breaks bucket alignment for everything after it.
func PartitionServes(part *Partitioning, joins []query.Join, i int) bool {
	if !part.Matches(PartitionKeySubject) {
		return false
	}
	for k := 0; k <= i && k < len(joins); k++ {
		if joins[k].Right.Role != query.RoleSubject {
			return false
		}
	}
	return true
}

// JoinChainShufflePartitioned is JoinChainShuffle with the partition-reuse
// term: joins the layout serves (PartitionServes) run map-only and
// contribute zero shuffle, so ReorderJoins can prefer orders that keep the
// partition-preserving prefix long. A nil (or mismatched) partitioning
// degenerates to JoinChainShuffle exactly.
func JoinChainShufflePartitioned(cat *Catalog, q *query.Query, joins []query.Join, part *Partitioning) int64 {
	if !part.Matches(PartitionKeySubject) {
		return JoinChainShuffle(cat, q, joins)
	}
	if len(joins) == 0 {
		return 0
	}
	e := NewEstimator(cat, q)
	acc := e.starFile(joins[0].Left.Star, true)
	total := 0.0
	for i := range joins {
		j := &joins[i]
		right := e.starFile(j.Right.Star, true)
		if !PartitionServes(part, joins, i) {
			total += acc.bytes + acc.records*keyOverhead +
				right.bytes + right.records*keyOverhead
		}
		acc = e.joinOut(acc, right, j)
	}
	return f2i(total)
}
