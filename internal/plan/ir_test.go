package plan_test

import (
	"strings"
	"testing"

	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/ntgamr"
	"ntga/internal/relmr"
)

const irQuery = `SELECT * WHERE {
  ?g <http://ex/label> ?l . ?g <http://ex/xGO> ?go .
  ?go <http://ex/label> ?gl . ?go <http://ex/type> <http://ex/GOTerm> .
}`

// TestSummaryNormalizesTempNames plans the same query twice: the
// process-global temp-name counter gives the stages different DFS names,
// but Summary must render both plans identically (that is what makes the
// EXPLAIN goldens stable).
func TestSummaryNormalizesTempNames(t *testing.T) {
	g := enginetest.BioGraph()
	q := enginetest.Compile(t, g, irQuery)
	for _, eng := range []engine.QueryEngine{ntgamr.NewLazy(), relmr.NewPig(), relmr.NewHive()} {
		var cl1, cl2 engine.Cleaner
		p1, err := eng.Plan(q, "T", &cl1, nil)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := eng.Plan(q, "T", &cl2, nil)
		if err != nil {
			t.Fatal(err)
		}
		s1, s2 := p1.Summary(), p2.Summary()
		if s1 != s2 {
			t.Errorf("%s: summaries diverge across plannings:\n%s\nvs\n%s", eng.Name(), s1, s2)
		}
		if strings.Contains(s1, eng.Name()+".") {
			t.Errorf("%s: summary leaks raw temp names:\n%s", eng.Name(), s1)
		}
		if !strings.Contains(s1, "<- T") {
			t.Errorf("%s: summary does not show the normalized input:\n%s", eng.Name(), s1)
		}
	}
}

func TestPhysicalCountsAndLower(t *testing.T) {
	g := enginetest.BioGraph()
	q := enginetest.Compile(t, g, irQuery)
	var cl engine.Cleaner
	p, err := ntgamr.NewLazy().Plan(q, "T", &cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cycles(); got != 2 {
		t.Errorf("Cycles = %d, want 2 (group + one join)", got)
	}
	if got := p.ScanCount(); got != 1 {
		t.Errorf("ScanCount = %d, want 1 (single grouping scan)", got)
	}
	stages, err := p.Lower()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != len(p.Stages) {
		t.Fatalf("Lower produced %d stages, want %d", len(stages), len(p.Stages))
	}

	// A node without a prepared job cannot lower.
	p.Stages[0][0].Job = nil
	if _, err := p.Lower(); err == nil {
		t.Error("Lower accepted a node with no job")
	}
}
