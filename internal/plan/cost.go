package plan

import (
	"ntga/internal/query"
	"ntga/internal/sparql"
)

// Cost is the estimated price of a physical plan in the paper's accounting:
// the number of MR cycles, the number of full scans of the triple relation,
// and the estimated shuffle bytes (map-output bytes summed over cycles —
// the metric the lazy β-unnest strategies attack).
type Cost struct {
	Cycles       int
	Scans        int
	ShuffleBytes int64
}

// ContainsSelectivity is the planner's fixed estimate for the fraction of
// values admitted by a CONTAINS filter. Substring selectivity cannot be
// derived from the catalog's counts, so a conservative constant stands in.
const ContainsSelectivity = 0.1

// shuffle framing overheads (bytes per emitted record), mirroring the
// engines' key/tag encodings.
const (
	keyOverhead    = 5 // join/subject key + side tag
	bucketOverhead = 3 // φ_m bucket key + side tag
	recOverhead    = 4 // record headers (component counts, pattern indexes)
)

// Estimator prices plans against a statistics catalog. All selectivities
// are derived from the query's *source* AST (property IRIs, constants,
// filters) rather than compiled dictionary IDs, so the same estimates come
// out whether or not the dataset was loaded — the `ntga-explain -stats`
// path compiles against an empty dictionary.
type Estimator struct {
	cat   *Catalog
	q     *query.Query
	stars []starEst
	files map[string]fileEst
}

// fileEst is the estimated content of one intermediate DFS file.
type fileEst struct {
	records float64
	bytes   float64
}

func (f fileEst) perRecord() float64 {
	if f.records <= 0 {
		return 0
	}
	return f.bytes / f.records
}

// starEst is the catalog-derived estimate of one star subpattern.
type starEst struct {
	// subjects is the expected number of subjects matching every bound
	// pattern of the star.
	subjects float64
	// triples is the expected number of star-relevant triples per full scan
	// of the relation.
	triples float64
	// boundMult[i] is the expected matching pairs per matching subject for
	// bound pattern i (the property's multiplicity discounted by the
	// object's selectivity, at least 1).
	boundMult []float64
	// slotCands[i] is the expected candidate-set size per subject of
	// unbound slot i — the paper's redundancy factor for that slot.
	slotCands []float64
	// expand is the fully-expanded tuples per matching subject:
	// Π boundMult × Π slotCands.
	expand float64
	// tgBytes is the nested triplegroup's bytes per matching subject
	// (candidates stored once, not cross-multiplied).
	tgBytes float64
	// tupleBytes is the expanded representation's bytes per tuple.
	tupleBytes float64
}

// NewEstimator derives the per-star estimates for a query.
func NewEstimator(cat *Catalog, q *query.Query) *Estimator {
	e := &Estimator{cat: cat, q: q, files: make(map[string]fileEst)}
	for _, st := range q.Stars {
		e.stars = append(e.stars, e.estimateStar(st))
	}
	return e
}

// pattern returns the source triple pattern behind a compiled pattern index.
func (e *Estimator) pattern(pi int) sparql.TriplePattern { return e.q.Src.Where[pi] }

// propKey returns the catalog key of a pattern's property when it is bound.
func (e *Estimator) propKey(pi int) (string, bool) {
	p := e.pattern(pi).P
	if p.IsVar {
		return "", false
	}
	return p.Term.Key(), true
}

// filterSel folds the selectivity of all filters on a variable, against a
// domain of the given cardinality.
func (e *Estimator) filterSel(v string, domain float64) float64 {
	sel := 1.0
	for _, f := range e.q.Src.Filters {
		if f.Var != v {
			continue
		}
		switch f.Op {
		case sparql.FilterEq:
			if domain > 1 {
				sel /= domain
			}
		case sparql.FilterContains:
			sel *= ContainsSelectivity
		case sparql.FilterNeq:
			// ≈ 1 for any non-trivial domain.
		}
	}
	return sel
}

// objSel estimates the fraction of a pattern's candidate objects admitted
// by its object term (constant or filtered variable). domain is the number
// of distinct object values in scope (the property's for bound patterns,
// the relation's for unbound slots).
func (e *Estimator) objSel(pi int, domain float64) float64 {
	o := e.pattern(pi).O
	if domain < 1 {
		domain = 1
	}
	if !o.IsVar {
		return 1 / domain
	}
	return e.filterSel(o.Var, domain)
}

// propSel estimates the fraction of the relation's triples admitted by an
// unbound slot's property variable (filters on the property variable).
func (e *Estimator) propSel(pi int) float64 {
	p := e.pattern(pi).P
	if !p.IsVar {
		return 1
	}
	return e.filterSel(p.Var, float64(len(e.cat.Props)))
}

func (e *Estimator) estimateStar(st *query.Star) starEst {
	cat := e.cat
	se := starEst{subjects: float64(cat.Subjects)}
	if se.subjects < 1 {
		se.subjects = 1
	}
	// A constant (or equality-filtered) subject pins the star to one subject.
	if firstPat := e.firstPatternOf(st); firstPat >= 0 {
		s := e.pattern(firstPat).S
		if !s.IsVar {
			se.subjects = 1
		} else {
			se.subjects *= e.filterSel(s.Var, float64(cat.Subjects))
		}
	}
	for _, b := range st.Bound {
		key, _ := e.propKey(b.PatIdx)
		ps := cat.Props[key]
		objSel := e.objSel(b.PatIdx, float64(ps.Objects))
		// Fraction of subjects carrying the property, thinned by the
		// probability that at least one of the subject's pairs satisfies the
		// object constraint.
		subjFrac := 0.0
		if cat.Subjects > 0 {
			subjFrac = float64(ps.Subjects) / float64(cat.Subjects)
		}
		matchProb := ps.Multiplicity() * objSel
		if matchProb > 1 {
			matchProb = 1
		}
		se.subjects *= subjFrac * matchProb
		mult := clampMin(ps.Multiplicity()*objSel, 1)
		if ps.Triples == 0 {
			mult = 0
		}
		se.boundMult = append(se.boundMult, mult)
		se.triples += float64(ps.Triples) * objSel
	}
	for _, sl := range st.Slots {
		propSel := e.propSel(sl.PatIdx)
		objSel := e.objSel(sl.PatIdx, float64(cat.Objects))
		cands := clampMin(cat.AvgTriplesPerSubject()*propSel*objSel, 1)
		se.slotCands = append(se.slotCands, cands)
		se.triples += float64(cat.Triples) * propSel * objSel
	}
	se.subjects = clampMin(se.subjects, 0)
	if se.subjects > float64(cat.Subjects) && cat.Subjects > 0 {
		se.subjects = float64(cat.Subjects)
	}
	se.expand = 1
	pairs := 0.0
	for _, m := range se.boundMult {
		se.expand *= clampMin(m, 1)
		pairs += m
	}
	for _, c := range se.slotCands {
		se.expand *= c
		pairs += c
	}
	tb := e.cat.AvgTripleBytes()
	se.tgBytes = pairs*tb + recOverhead
	se.tupleBytes = float64(st.NPatterns())*tb + recOverhead
	return se
}

// firstPatternOf returns any source-pattern index of the star (they all
// share the subject term).
func (e *Estimator) firstPatternOf(st *query.Star) int {
	if len(st.Bound) > 0 {
		return st.Bound[0].PatIdx
	}
	if len(st.Slots) > 0 {
		return st.Slots[0].PatIdx
	}
	return -1
}

// relevantTriples sums the star-relevant triples of every star — the
// records surviving the map-side pushdown of a full scan.
func (e *Estimator) relevantTriples() float64 {
	t := 0.0
	for _, se := range e.stars {
		t += se.triples
	}
	if t > float64(e.cat.Triples) {
		t = float64(e.cat.Triples)
	}
	return t
}

// starFile estimates one star's share of the grouping output: nested
// triplegroups, or fully-expanded records under eager unnest.
func (e *Estimator) starFile(star int, eager bool) fileEst {
	se := e.stars[star]
	if eager {
		recs := se.subjects * se.expand
		return fileEst{records: recs, bytes: recs * se.tupleBytes}
	}
	return fileEst{records: se.subjects, bytes: se.subjects * se.tgBytes}
}

// distinctJoinValues estimates the number of distinct values the join
// variable takes at one position.
func (e *Estimator) distinctJoinValues(pos query.Pos) float64 {
	switch pos.Role {
	case query.RoleSubject:
		return clampMin(e.stars[pos.Star].subjects, 1)
	case query.RoleBoundObj:
		b := e.q.Stars[pos.Star].Bound[pos.Idx]
		key, _ := e.propKey(b.PatIdx)
		ps := e.cat.Props[key]
		return clampMin(float64(ps.Objects)*e.objSel(b.PatIdx, float64(ps.Objects)), 1)
	case query.RoleSlotObj:
		sl := e.q.Stars[pos.Star].Slots[pos.Idx]
		return clampMin(float64(e.cat.Objects)*e.objSel(sl.PatIdx, float64(e.cat.Objects)), 1)
	default:
		return 1
	}
}

// joinOut estimates the joined output of two sides on a join edge: the
// classic |L|·|R| / max(V_L, V_R) equi-join cardinality.
func (e *Estimator) joinOut(left, right fileEst, j *query.Join) fileEst {
	vl := e.distinctJoinValues(j.Left)
	vr := e.distinctJoinValues(j.Right)
	v := vl
	if vr > v {
		v = vr
	}
	recs := left.records * right.records / clampMin(v, 1)
	return fileEst{records: recs, bytes: recs * (left.perRecord() + right.perRecord())}
}

func clampMin(v, lo float64) float64 {
	if v < lo {
		return lo
	}
	return v
}

func f2i(v float64) int64 {
	if v < 0 {
		return 0
	}
	return int64(v + 0.5)
}
