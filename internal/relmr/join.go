package relmr

import (
	"fmt"

	"ntga/internal/codec"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
)

const (
	tagLeft  byte = 0
	tagRight byte = 1
)

// joinMapper is the map side of a reduce-side equi-join between the
// accumulated tuple file (left) and one star's tuple file (right). Records
// are keyed by the join variable's value and tagged by side.
type joinMapper struct {
	q         *query.Query
	join      query.Join
	w         wire
	leftFile  string
	rightFile string
}

func (m *joinMapper) Map(input string, record []byte, out mapreduce.Emitter) error {
	t, err := m.w.decodeTuple(m.q, record)
	if err != nil {
		return err
	}
	var tag byte
	var pos query.Pos
	switch input {
	case m.leftFile:
		tag, pos = tagLeft, m.join.Left
	case m.rightFile:
		tag, pos = tagRight, m.join.Right
	default:
		return fmt.Errorf("relmr: join mapper got unexpected input %q", input)
	}
	v, err := t.joinValue(m.q, pos)
	if err != nil {
		return err
	}
	val := make([]byte, 0, len(record)+1)
	val = append(val, tag)
	val = append(val, record...)
	return out.Emit(codec.EncodeID(v), val)
}

// joinReducer cross-concatenates left and right tuples sharing a join key.
// Values arrive in sorted order with the side tag as the leading byte, so
// every left (tag 0) precedes every right (tag 1): only the left side is
// buffered, and each right tuple streams through, joining as it arrives.
type joinReducer struct {
	q *query.Query
	w wire
}

func (r joinReducer) Reduce(_ []byte, values mapreduce.ValueIter, out mapreduce.Collector) error {
	var lefts []Tuple
	for {
		v, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if len(v) == 0 {
			return fmt.Errorf("relmr: empty join value")
		}
		t, err := r.w.decodeTuple(r.q, v[1:])
		if err != nil {
			return err
		}
		switch v[0] {
		case tagLeft:
			lefts = append(lefts, t)
		case tagRight:
			for _, l := range lefts {
				joined := make(Tuple, 0, len(l)+len(t))
				joined = append(joined, l...)
				joined = append(joined, t...)
				rec, err := r.w.encodeTuple(r.q, joined)
				if err != nil {
					return err
				}
				if err := out.Collect(rec); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("relmr: unknown join tag %d", v[0])
		}
	}
}

// joinJob builds the MR job joining the accumulated result with one star's
// tuples.
func joinJob(q *query.Query, name string, join query.Join, w wire, leftFile, rightFile, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:          name,
		Inputs:        []string{leftFile, rightFile},
		Output:        output,
		Mapper:        &joinMapper{q: q, join: join, w: w, leftFile: leftFile, rightFile: rightFile},
		StreamReducer: joinReducer{q: q, w: w},
	}
}
