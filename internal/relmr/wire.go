package relmr

import (
	"fmt"
	"strconv"
	"strings"

	"ntga/internal/codec"
	"ntga/internal/core"
	"ntga/internal/query"
	"ntga/internal/rdf"
)

// Wire selects how intermediate records are serialized between MR cycles.
type Wire int

const (
	// BinaryWire uses the compact dictionary-ID varint encoding.
	BinaryWire Wire = iota
	// TextWire materializes records as tab-separated N-Triples terms —
	// what Pig and Hive actually write between jobs (PigStorage /
	// delimited text). Text records repeat full IRI and literal strings in
	// every tuple, which is the representation the paper's footprint
	// numbers were measured against; the dictionary-ID encoding understates
	// relational redundancy by roughly the average term length.
	TextWire
)

func (w Wire) String() string {
	if w == TextWire {
		return "text"
	}
	return "binary"
}

// wire implements the two serializations behind a common interface. The
// text forms need the dictionary (via the compiled query) to render and
// resolve terms.
type wire struct {
	text bool
}

// ---- (P,O) pair values (star-join shuffle) ----

func (w wire) encodePair(q *query.Query, p core.PO) ([]byte, error) {
	if !w.text {
		var e codec.Buffer
		e.PutID(p.P)
		e.PutID(p.O)
		return e.Bytes(), nil
	}
	ps, err := renderTerm(q, p.P)
	if err != nil {
		return nil, err
	}
	os, err := renderTerm(q, p.O)
	if err != nil {
		return nil, err
	}
	return []byte(ps + "\t" + os), nil
}

func (w wire) decodePair(q *query.Query, b []byte) (core.PO, error) {
	if !w.text {
		r := codec.NewReader(b)
		p, err := r.ID()
		if err != nil {
			return core.PO{}, err
		}
		o, err := r.ID()
		if err != nil {
			return core.PO{}, err
		}
		return core.PO{P: p, O: o}, nil
	}
	fields := strings.Split(string(b), "\t")
	if len(fields) != 2 {
		return core.PO{}, fmt.Errorf("relmr: text pair has %d fields", len(fields))
	}
	p, err := resolveTerm(q, fields[0])
	if err != nil {
		return core.PO{}, err
	}
	o, err := resolveTerm(q, fields[1])
	if err != nil {
		return core.PO{}, err
	}
	return core.PO{P: p, O: o}, nil
}

// ---- tuples (star-join and join outputs) ----

// Text tuple layout, flat tab-separated:
//
//	nSegs { star subjTerm nPats { patIdx Pterm Oterm }* }*
//
// N-Triples term syntax escapes tabs inside literals, so the raw tab is
// free to act as the field separator (IRIs may not contain tabs).
func (w wire) encodeTuple(q *query.Query, t Tuple) ([]byte, error) {
	if !w.text {
		return EncodeTuple(t), nil
	}
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(len(t)))
	for _, seg := range t {
		subj, err := renderTerm(q, seg.Subject)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "\t%d\t%s\t%d", seg.Star, subj, len(seg.PatIdxs))
		for i, pi := range seg.PatIdxs {
			ps, err := renderTerm(q, seg.Pairs[i].P)
			if err != nil {
				return nil, err
			}
			os, err := renderTerm(q, seg.Pairs[i].O)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&sb, "\t%d\t%s\t%s", pi, ps, os)
		}
	}
	return []byte(sb.String()), nil
}

func (w wire) decodeTuple(q *query.Query, b []byte) (Tuple, error) {
	if !w.text {
		return DecodeTuple(b)
	}
	fields := strings.Split(string(b), "\t")
	pos := 0
	nextInt := func() (int, error) {
		if pos >= len(fields) {
			return 0, fmt.Errorf("relmr: truncated text tuple")
		}
		n, err := strconv.Atoi(fields[pos])
		pos++
		return n, err
	}
	nextTerm := func() (rdf.ID, error) {
		if pos >= len(fields) {
			return rdf.NoID, fmt.Errorf("relmr: truncated text tuple")
		}
		id, err := resolveTerm(q, fields[pos])
		pos++
		return id, err
	}
	nSegs, err := nextInt()
	if err != nil {
		return nil, err
	}
	t := make(Tuple, 0, nSegs)
	for s := 0; s < nSegs; s++ {
		star, err := nextInt()
		if err != nil {
			return nil, err
		}
		subj, err := nextTerm()
		if err != nil {
			return nil, err
		}
		nPats, err := nextInt()
		if err != nil {
			return nil, err
		}
		seg := Segment{Star: star, Subject: subj,
			PatIdxs: make([]int, nPats), Pairs: make([]core.PO, nPats)}
		for i := 0; i < nPats; i++ {
			if seg.PatIdxs[i], err = nextInt(); err != nil {
				return nil, err
			}
			if seg.Pairs[i].P, err = nextTerm(); err != nil {
				return nil, err
			}
			if seg.Pairs[i].O, err = nextTerm(); err != nil {
				return nil, err
			}
		}
		t = append(t, seg)
	}
	if pos != len(fields) {
		return nil, fmt.Errorf("relmr: %d trailing fields in text tuple", len(fields)-pos)
	}
	return t, nil
}

func renderTerm(q *query.Query, id rdf.ID) (string, error) {
	term := q.Dict.Decode(id)
	s := term.String()
	if term.Kind != rdf.Literal && strings.ContainsAny(s, "\t\n") {
		return "", fmt.Errorf("relmr: term %q contains separator characters", s)
	}
	return s, nil
}

func resolveTerm(q *query.Query, s string) (rdf.ID, error) {
	term, err := rdf.ParseTermText(s)
	if err != nil {
		return rdf.NoID, err
	}
	id, ok := q.Dict.Lookup(term)
	if !ok {
		return rdf.NoID, fmt.Errorf("relmr: term %s not in dictionary", s)
	}
	return id, nil
}
